package gridpipe

import (
	"context"
	"strings"
	"testing"
)

// A three-event trace: genome twice, image once, arrivals within the
// first second so live replay at high speedup stays fast.
const facadeTrace = `# recorded by gridsim -traffic
{"t":0,"app":"genome","items":30}
{"t":0.4,"app":"image","items":20,"weight":2}
{"t":0.9,"app":"genome","items":25}
`

func TestClusterSubmitTraceSimulated(t *testing.T) {
	g, err := HomogeneousGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{Grid: g, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := cl.SubmitTrace(strings.NewReader(facadeTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("submitted %d jobs, want 3", len(jobs))
	}
	rep, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantDone := []int{30, 20, 25}
	for i, jr := range rep.Jobs {
		if jr.Done != wantDone[i] || jr.State != "done" {
			t.Fatalf("job %d: done=%d state=%s, want %d done", i, jr.Done, jr.State, wantDone[i])
		}
	}
	if rep.Jobs[1].Name != "image-1" {
		t.Fatalf("trace-derived job name %q, want image-1", rep.Jobs[1].Name)
	}
}

func TestClusterSubmitTraceErrors(t *testing.T) {
	g, err := HomogeneousGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitTrace(strings.NewReader(`{"t":0,"app":"bogus","items":5}`)); err == nil {
		t.Fatal("unknown app accepted")
	}
	live, err := NewCluster(ClusterConfig{MaxWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.SubmitTrace(strings.NewReader(facadeTrace)); err == nil {
		t.Fatal("SubmitTrace on a grid-less cluster accepted")
	}
}

// Live replay: every trace event runs a fresh pipeline against the
// shared worker budget, open loop, in scaled wall-clock time.
func TestClusterProcessTraceLive(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{MaxWorkers: 8, Interval: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	results, err := cl.ProcessTrace(context.Background(), strings.NewReader(facadeTrace), ReplayOptions{
		Speedup: 50,
		Build: func(app string, items int) (*Pipeline, []any, error) {
			p := livePipeline(t)
			inputs := make([]any, items)
			for i := range inputs {
				inputs[i] = i
			}
			return p, inputs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	wantItems := []int{30, 20, 25}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("event %d (%s): %v", i, r.App, r.Err)
		}
		if r.Index != i || len(r.Outputs) != wantItems[i] {
			t.Fatalf("event %d: index=%d outputs=%d, want %d", i, r.Index, len(r.Outputs), wantItems[i])
		}
		for j, v := range r.Outputs {
			if v != j {
				t.Fatalf("event %d: out[%d]=%v (order broken)", i, j, v)
			}
		}
	}
}

// A cancelled context stops launching and reports the unlaunched tail.
func TestClusterProcessTraceCancel(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{MaxWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Gaps are huge in wall time at speedup 1e-3; the pre-cancelled
	// context must abandon the tail instead of sleeping.
	results, err := cl.ProcessTrace(ctx, strings.NewReader(facadeTrace), ReplayOptions{
		Speedup: 1e-3,
		Build: func(app string, items int) (*Pipeline, []any, error) {
			return livePipeline(t), []any{1}, nil
		},
	})
	if err == nil {
		t.Fatal("cancelled replay reported no error")
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Events after the first gap must carry the context error.
	for _, r := range results[1:] {
		if r.Err == nil {
			t.Fatalf("unlaunched event %d has no error", r.Index)
		}
	}
}
