// Command pipebench regenerates the tables and figures of the
// reconstructed evaluation suite (see DESIGN.md's experiment index).
//
// Usage:
//
//	pipebench -list
//	pipebench -exp F1 [-seed 42] [-csv]
//	pipebench -all [-seed 42]
//
// Each experiment prints its tables; -csv additionally dumps every
// figure series as CSV for offline plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gridpipe/internal/bench"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		exp    = flag.String("exp", "", "experiment id to run (e.g. F1, T2)")
		all    = flag.Bool("all", false, "run every experiment")
		seed   = flag.Uint64("seed", 42, "random seed")
		csv    = flag.Bool("csv", false, "also print figure series as CSV")
		outdir = flag.String("outdir", "", "write every table and series as CSV files into this directory")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, *seed, *csv, *outdir); err != nil {
				fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		if err := runOne(e, *seed, *csv, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e bench.Experiment, seed uint64, csv bool, outdir string) error {
	res, err := e.Run(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if csv {
		for _, s := range res.Series {
			fmt.Printf("\n--- series %s ---\n%s", s.Name, s.CSV())
		}
	}
	if outdir != "" {
		if err := export(res, outdir); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

// export writes the result's tables and series as CSV files named
// <id>_table<i>.csv and <id>_<series>.csv.
func export(res *bench.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", res.ID, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for _, s := range res.Series {
		name := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, s.Name)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", res.ID, name))
		if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
