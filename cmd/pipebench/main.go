// Command pipebench regenerates the tables and figures of the
// reconstructed evaluation suite (see DESIGN.md's experiment index)
// and tracks the hot-path performance trajectory.
//
// Usage:
//
//	pipebench -list
//	pipebench -exp F1 [-seed 42] [-csv] [-json]
//	pipebench -all [-seed 42] [-workers N] [-json]
//	pipebench -bench [-benchout BENCH_1.json] [-maxallocs 0]
//	pipebench -bench -diff BENCH_4.json [-maxregress 0.20]
//	pipebench -bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	pipebench -stress [-stress-process poisson] [-stress-steps 8]
//	pipebench -stress -stress-trace invocations.csv
//	pipebench -grainsweep [-grain 1,8,64] [-grain-items 200000]
//
// -all fans the experiments across a bounded worker pool (default one
// worker per CPU); every experiment seeds its own RNG streams, so the
// tables are identical to a sequential sweep and print in ID order
// (wall-clock experiments such as F11 run sequentially after the pool
// drains, so concurrent sweeps cannot pollute their timings).
//
// Each experiment prints its tables; -csv additionally dumps every
// figure series as CSV for offline plotting. -bench runs the hot-path
// micro-benchmark suite (internal/bench.Micros) and writes a
// machine-readable BENCH_*.json — ns/op, B/op, allocs/op, items/s per
// benchmark, plus the recorded seed baseline the current numbers are
// gated against (format documented in DESIGN.md). -maxallocs N turns
// the run into a gate: it exits non-zero if any hot-path benchmark
// reports more than N allocs/op (the in-tree seed-reference rows,
// which reproduce the seed's allocating designs on purpose, are
// exempt) — the CI allocation-regression job runs -maxallocs 0.
// -cpuprofile/-memprofile write pprof profiles of whatever mode ran
// (bench or experiments), the inputs of the benchmark protocol's
// "profile before optimising" step (DESIGN.md).
//
// -bench also embeds a `batch` section: the batched boundary micro
// against its unbatched and seed counterparts plus a grain sweep
// (saturated items/s and paced p99 sojourn per batch size, ladder set
// by -grain). -grainsweep runs the sweep standalone.
//
// -stress runs the RPS stress ramp (see DESIGN.md, "Traffic engine"):
// offered load walks upward in steps, each step drives an open-loop
// job stream through a fresh admission-controlled cluster, and the
// detected throughput knee lands in the report's `stress` section.
// It combines with -bench (one BENCH_*.json carrying both sections)
// or runs alone (a stress-only report). -stress-trace replays a
// recorded arrival trace instead of generating streams: a .csv file
// goes through workload.TraceFromCSV (long t/app/items rows or wide
// invitro/Azure-style per-bucket invocation counts, auto-detected),
// anything else through workload.ReadTrace; each ramp step rescales
// the recorded arrival times so the offered load matches while the
// burst structure is preserved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gridpipe/internal/bench"
	"gridpipe/internal/workload"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "experiment id to run (e.g. F1, T2)")
		all      = flag.Bool("all", false, "run every experiment")
		seed     = flag.Uint64("seed", 42, "random seed")
		csv      = flag.Bool("csv", false, "also print figure series as CSV")
		jsonOut  = flag.Bool("json", false, "print experiment results as JSON (one document per experiment)")
		outdir   = flag.String("outdir", "", "write every table and series as CSV files into this directory")
		benchRun = flag.Bool("bench", false, "run the hot-path micro-benchmark suite")
		benchOut = flag.String("benchout", "BENCH_1.json", "file the -bench results are written to")
		maxAlloc = flag.Int("maxallocs", -1, "with -bench: fail if any hot-path benchmark exceeds this allocs/op (-1 = no gate)")
		diffPath = flag.String("diff", "", "with -bench: compare against this BENCH_*.json snapshot and fail on regression")
		maxRegr  = flag.Float64("maxregress", 0.20, "with -diff: maximum tolerated ns/op regression ratio")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size for -all (1 = sequential)")
		parts    = flag.String("parts", "", "with -bench: partition count for the parallel scaling sweep (0 = auto from NumCPU; unset = full sweep)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")

		grainSweep = flag.Bool("grainsweep", false, "run the batch-grain sweep standalone (throughput + p99 latency vs grain)")
		grainList  = flag.String("grain", "1,2,4,8,16,32,64,128,256", "grain ladder for the batch sweep (comma-separated; empty skips the sweep in -bench)")
		grainItems = flag.Int("grain-items", 200000, "items per grain-sweep throughput measurement")

		stressRun     = flag.Bool("stress", false, "run the RPS stress ramp (alone or combined with -bench)")
		stressProc    = flag.String("stress-process", "poisson", "stress: arrival-process family (poisson, uniform, bursty, diurnal, pareto)")
		stressApp     = flag.String("stress-app", "genome", "stress: bundled workload every job runs")
		stressNodes   = flag.Int("stress-nodes", 8, "stress: simulated grid size")
		stressItems   = flag.Int("stress-items", 20, "stress: items per job")
		stressStart   = flag.Float64("stress-start", 4, "stress: first step's offered load in items/s")
		stressStep    = flag.Float64("stress-step", 4, "stress: offered-load increment per step in items/s")
		stressSteps   = flag.Int("stress-steps", 8, "stress: number of ramp steps")
		stressHorizon = flag.Float64("stress-horizon", 240, "stress: arrival window per step in virtual seconds")
		stressTrace   = flag.String("stress-trace", "", "stress: replay this recorded trace (.csv invocation trace or .jsonl) rescaled to each step's offered load instead of generating streams")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipebench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pipebench: memprofile: %v\n", err)
			}
		}()
	}

	switch {
	case *list:
		listExperiments(os.Stdout)
	case *grainSweep:
		grains, err := parseGrains(*grainList)
		if err != nil || len(grains) == 0 {
			fmt.Fprintf(os.Stderr, "pipebench: -grainsweep needs a grain ladder (-grain \"1,8,64\"): %v\n", err)
			os.Exit(1)
		}
		if err := runGrainSweep(grains, *grainItems, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: grainsweep: %v\n", err)
			os.Exit(1)
		}
	case *benchRun || *stressRun:
		partsList, err := parseParts(*parts)
		if err != nil {
			// An invalid -parts is most often a typo: show the menu of
			// valid counts rather than an opaque failure.
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			fmt.Fprintf(os.Stderr, "valid -parts values: %s (0 auto-picks from NumCPU, unset runs the full sweep)\n",
				partsMenu())
			os.Exit(1)
		}
		var stressCfg *bench.StressConfig
		if *stressRun {
			stressCfg = &bench.StressConfig{
				Nodes:       *stressNodes,
				App:         *stressApp,
				Process:     *stressProc,
				ItemsPerJob: *stressItems,
				StartRPS:    *stressStart,
				StepRPS:     *stressStep,
				Steps:       *stressSteps,
				Horizon:     *stressHorizon,
				Seed:        *seed,
			}
			if *stressTrace != "" {
				tr, err := loadTrace(*stressTrace, *stressApp, *stressItems)
				if err != nil {
					fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
					os.Exit(1)
				}
				stressCfg.Trace = tr
				fmt.Printf("replaying %s: %d arrivals, %d items over %.4g s (native %.4g items/s)\n",
					*stressTrace, len(tr), tr.TotalItems(), tr.Span(),
					float64(tr.TotalItems())/tr.Span())
			}
		}
		grains, err := parseGrains(*grainList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		if err := runBench(*benchOut, *maxAlloc, *diffPath, *maxRegr, partsList, *benchRun, stressCfg, grains, *grainItems); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: bench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		// Repetitions fan out across the pool; outcomes print in ID
		// order, byte-identical to a sequential sweep.
		failed := false
		for _, out := range bench.RunAll(*seed, *workers) {
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", out.Experiment.ID, out.Err)
				failed = true
				continue
			}
			if err := emitOne(out.Result, *csv, *jsonOut, *outdir); err != nil {
				fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", out.Experiment.ID, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			// An unknown ID is most often a typo: show the menu rather
			// than an opaque failure.
			fmt.Fprintf(os.Stderr, "pipebench: unknown experiment %q; valid experiment IDs:\n", *exp)
			listExperiments(os.Stderr)
			os.Exit(1)
		}
		if err := runOne(e, *seed, *csv, *jsonOut, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// listExperiments prints the experiment menu, one "ID Title" per line.
func listExperiments(w io.Writer) {
	for _, e := range bench.All() {
		fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
	}
}

// benchReport is the schema of a BENCH_*.json file (see DESIGN.md,
// "Benchmark protocol").
type benchReport struct {
	Bench       string `json:"bench"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	// GoMaxProcs records the scheduler width the numbers were taken
	// under; bench-diff warns (informationally) when it or CPUs differ
	// from the baseline's, since wall-clock ratios across machine shapes
	// reflect the machine, not the code.
	GoMaxProcs int                 `json:"gomaxprocs,omitempty"`
	Micro      []bench.MicroResult `json:"micro"`
	// Sched records the branch-and-bound pruning telemetry on the T4
	// validation configuration: candidates an unpruned enumeration
	// would rate vs candidates the model actually evaluated. Absent
	// from snapshots predating the pruned search.
	Sched *bench.SchedSearchStats `json:"sched,omitempty"`
	// Parallel holds the partitioned-engine scaling sweep (events/s per
	// partition/GOMAXPROCS point). Absent from snapshots predating the
	// parallel core; bench-diff treats it as informational either way.
	Parallel []bench.ParallelPoint `json:"parallel,omitempty"`
	// Stress holds the RPS stress ramp (offered vs achieved items/s
	// per step plus the detected knee). Absent from snapshots
	// predating the traffic engine, and from plain -bench runs;
	// bench-diff treats it as informational (the ramp is a
	// virtual-time capacity measurement, not a wall-clock hot path).
	Stress *bench.StressResult `json:"stress,omitempty"`
	// Batch holds the granularity section: the batched-boundary micro
	// against its unbatched and seed counterparts, plus the grain
	// sweep (saturated items/s and paced p99 sojourn per batch size).
	// Absent from snapshots predating batched boundaries; bench-diff
	// treats it as informational (the micro rows are gated as usual).
	Batch *batchSection `json:"batch,omitempty"`
	// Steal holds the work-stealing executor section: the deque and
	// inject micro numbers plus a live handoff profile (how tasks
	// reached workers, per item). Absent from snapshots predating the
	// shared executor; bench-diff gates the micro rows as usual.
	Steal *stealSection `json:"steal,omitempty"`
	// EdgeGrains holds the per-edge granularity sweep: live throughput
	// over boundary grain vectors plus the vector the model's
	// coordinate-descent search picks on an asymmetric spec. Absent
	// from snapshots predating per-edge grains; informational for
	// bench-diff.
	EdgeGrains *bench.EdgeGrainResult `json:"edge_grains,omitempty"`
	// SeedBaseline records the seed commit's (e363cbf) hot-path
	// numbers, measured with the pre-rewrite benchmarks on the same
	// class of machine, so every BENCH file carries the comparison
	// point its allocation-reduction gates refer to.
	SeedBaseline []bench.MicroResult `json:"seed_baseline"`
}

// seedBaseline: measured at the seed commit with
// `go test -bench 'DiscreteEventEngine|LivePipeline|SimExecutor' -benchmem`.
// The engine row is per 64-event batch (seed: one *Event allocation per
// Schedule) to match engine/schedule_step's unit.
var seedBaseline = []bench.MicroResult{
	{Name: "engine/schedule_step", Desc: "seed container/heap calendar, per 64-event batch", NsPerOp: 64.92 * 64, BytesPerOp: 47 * 64, AllocsPerOp: 64},
	{Name: "pipeline/reorder_stage", Desc: "seed goroutine-per-item + map reorderer, per item", NsPerOp: 5524, BytesPerOp: 440, AllocsPerOp: 6},
	{Name: "exec/run_items", Desc: "seed executor, per simulated item", NsPerOp: 2663, BytesPerOp: 1456, AllocsPerOp: 37},
}

// batchSection is the `batch` block of a BENCH_*.json report: the
// acceptance comparison (batched boundary vs the unbatched and seed
// micros, items/s) and the grain sweep behind it.
type batchSection struct {
	// BoundaryItemsPerSec / UnbatchedItemsPerSec / SeedItemsPerSec are
	// the items/s of pipeline/batch_boundary, pipeline/reorder_stage,
	// and pipeline/seed_reorder_stage from this run's micro rows.
	BoundaryItemsPerSec  float64 `json:"boundary_items_per_s"`
	UnbatchedItemsPerSec float64 `json:"unbatched_items_per_s"`
	SeedItemsPerSec      float64 `json:"seed_items_per_s"`
	// SpeedupVsUnbatched and SpeedupVsSeed are the boundary ratios.
	SpeedupVsUnbatched float64 `json:"speedup_vs_unbatched"`
	SpeedupVsSeed      float64 `json:"speedup_vs_seed"`
	// BoundaryAllocsPerOp restates the batched micro's allocs/op: the
	// acceptance criterion requires 0 at steady state.
	BoundaryAllocsPerOp int64 `json:"boundary_allocs_per_op"`
	// Grains is the sweep: saturated throughput and paced p99 item
	// sojourn per batch size.
	Grains []bench.GrainPoint `json:"grains,omitempty"`
}

// stealSection is the `steal` block of a BENCH_*.json report: the
// executor's three micro numbers restated (ns per 64-cycle op and
// allocs/op — the acceptance criterion requires 0) plus the live
// handoff profile of a pipeline run on a dedicated executor.
type stealSection struct {
	LocalPopNsPerOp  float64 `json:"local_pop_ns_per_op"`
	StealHalfNsPerOp float64 `json:"steal_half_ns_per_op"`
	InjectNsPerOp    float64 `json:"inject_ns_per_op"`
	LocalPopAllocs   int64   `json:"local_pop_allocs_per_op"`
	StealHalfAllocs  int64   `json:"steal_half_allocs_per_op"`
	InjectAllocs     int64   `json:"inject_allocs_per_op"`
	// Profile is the handoffs-per-item accounting of a live run (see
	// DESIGN.md, the handoff post-mortem).
	Profile *bench.StealProfileResult `json:"profile,omitempty"`
}

// parseGrains resolves the -grain flag into the sweep's grain ladder;
// an empty flag means "skip the sweep".
func parseGrains(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -grain entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runGrainSweep runs the sweep standalone and prints a table.
func runGrainSweep(grains []int, items int, w io.Writer) error {
	fmt.Fprintf(w, "grain sweep: %d items per point, linger %s\n", items, "1ms")
	points, err := bench.GrainSweep(bench.GrainSweepConfig{Grains: grains, Items: items})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %14s %16s\n", "grain", "items/s", "p99 latency")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %14.0f %16s\n", p.Grain, p.ItemsPerSec,
			time.Duration(int64(p.P99LatencyNs)).Round(time.Microsecond))
	}
	// The per-edge counterpart: measure the corner vectors of the
	// two-boundary lattice and report the vector the coordinate-descent
	// search picks on the asymmetric spec.
	fmt.Fprintf(w, "\nper-edge sweep (two-stage pipeline, %d items per point):\n", items)
	eg, err := bench.EdgeGrainSweep(bench.EdgeGrainSweepConfig{Items: items})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %14s\n", "grains", "items/s")
	for _, p := range eg.Points {
		mark := " "
		if p.Chosen {
			mark = "*"
		}
		fmt.Fprintf(w, "%9s%s %14.0f\n", grainVec(p.Grains), mark, p.ItemsPerSec)
	}
	fmt.Fprintf(w, "per-edge search chose [%s] (* above; model predicts %.1f items/s on the asymmetric spec)\n",
		grainVec(eg.Chosen), eg.PredictedItemsPerSec)
	return nil
}

// grainVec renders a boundary grain vector as "1,64".
func grainVec(v []int) string {
	parts := make([]string, len(v))
	for i, g := range v {
		parts[i] = strconv.Itoa(g)
	}
	return strings.Join(parts, ",")
}

// loadTrace reads a recorded arrival trace for stress replay: .csv
// files go through the invocation-trace importer (long or wide layout,
// auto-detected; app/items fill rows that lack them), anything else is
// parsed as the native JSON-lines format.
func loadTrace(path, app string, items int) (workload.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return workload.TraceFromCSV(f, workload.CSVTraceOptions{App: app, Items: items})
	}
	return workload.ReadTrace(f)
}

// parseParts resolves the -parts flag into the scaling sweep's
// partition list: unset runs the full default sweep, 0 auto-picks the
// largest valid count the machine's CPUs can exercise (and prints the
// choice), and an explicit count must be one of the valid values.
func parseParts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return bench.DefaultParallelParts(), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, fmt.Errorf("invalid -parts %q: not an integer", s)
	}
	valid := bench.DefaultParallelParts()
	if n == 0 {
		pick := 1
		for _, v := range valid {
			if v <= runtime.NumCPU() {
				pick = v
			}
		}
		fmt.Printf("-parts 0: auto-picked %d partitions (NumCPU=%d)\n", pick, runtime.NumCPU())
		return []int{pick}, nil
	}
	for _, v := range valid {
		if n == v {
			return []int{n}, nil
		}
	}
	return nil, fmt.Errorf("invalid -parts %d", n)
}

// partsMenu renders the valid -parts values for the error menu.
func partsMenu() string {
	var vals []string
	for _, v := range bench.DefaultParallelParts() {
		vals = append(vals, strconv.Itoa(v))
	}
	return strings.Join(vals, " ")
}

// runBench executes the micro suite and the parallel scaling sweep
// (micro true), the stress ramp (stress non-nil), or both, writes the
// JSON report, and applies the allocation gate (maxAlloc < 0 disables
// it) and the snapshot-regression gate (diffPath empty disables it).
func runBench(out string, maxAlloc int, diffPath string, maxRegress float64, partsList []int, micro bool, stress *bench.StressConfig, grains []int, grainItems int) error {
	rep := benchReport{
		Bench:        strings.TrimSuffix(filepath.Base(out), ".json"),
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SeedBaseline: seedBaseline,
	}
	if micro {
		fmt.Printf("running %d hot-path micro-benchmarks...\n", len(bench.Micros()))
		rep.Micro = bench.RunMicros()
		for _, m := range rep.Micro {
			fmt.Printf("%-30s %12.1f ns/op %8d B/op %6d allocs/op %14.0f items/s\n",
				m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.ItemsPerSec)
		}
		sched, err := bench.SchedSearchTelemetry()
		if err != nil {
			return err
		}
		rep.Sched = &sched
		fmt.Printf("sched pruning (%s): %d candidates, %d evaluated, %.0fx\n",
			sched.Config, sched.Candidates, sched.Evaluated, sched.PruneRatio)
		fmt.Println("running the partitioned-engine scaling sweep (10k nodes, 16 tenants)...")
		par, err := bench.ParallelScaling(42, partsList, nil)
		if err != nil {
			return err
		}
		rep.Parallel = par
		for _, p := range par {
			fmt.Printf("parallel parts=%-3d procs=%-3d %10d events %12.0f events/s %6.2fx vs 1\n",
				p.Parts, p.Procs, p.Events, p.EventsPerSec, p.SpeedupVs1)
		}
		sec := &batchSection{}
		for _, m := range rep.Micro {
			switch m.Name {
			case "pipeline/batch_boundary":
				sec.BoundaryItemsPerSec = m.ItemsPerSec
				sec.BoundaryAllocsPerOp = m.AllocsPerOp
			case "pipeline/reorder_stage":
				sec.UnbatchedItemsPerSec = m.ItemsPerSec
			case "pipeline/seed_reorder_stage":
				sec.SeedItemsPerSec = m.ItemsPerSec
			}
		}
		if sec.UnbatchedItemsPerSec > 0 {
			sec.SpeedupVsUnbatched = sec.BoundaryItemsPerSec / sec.UnbatchedItemsPerSec
		}
		if sec.SeedItemsPerSec > 0 {
			sec.SpeedupVsSeed = sec.BoundaryItemsPerSec / sec.SeedItemsPerSec
		}
		if len(grains) > 0 {
			fmt.Println("running the batch-grain sweep...")
			points, err := bench.GrainSweep(bench.GrainSweepConfig{Grains: grains, Items: grainItems})
			if err != nil {
				return err
			}
			sec.Grains = points
			for _, p := range points {
				fmt.Printf("grain %-4d %12.0f items/s  p99 %s\n", p.Grain, p.ItemsPerSec,
					time.Duration(int64(p.P99LatencyNs)).Round(time.Microsecond))
			}
		}
		rep.Batch = sec
		fmt.Printf("batch boundary: %.0f items/s, %.2fx vs unbatched, %.2fx vs seed, %d allocs/op\n",
			sec.BoundaryItemsPerSec, sec.SpeedupVsUnbatched, sec.SpeedupVsSeed, sec.BoundaryAllocsPerOp)

		st := &stealSection{}
		for _, m := range rep.Micro {
			switch m.Name {
			case "steal/local_pop":
				st.LocalPopNsPerOp = m.NsPerOp
				st.LocalPopAllocs = m.AllocsPerOp
			case "steal/steal_half":
				st.StealHalfNsPerOp = m.NsPerOp
				st.StealHalfAllocs = m.AllocsPerOp
			case "steal/inject":
				st.InjectNsPerOp = m.NsPerOp
				st.InjectAllocs = m.AllocsPerOp
			}
		}
		fmt.Println("profiling executor handoffs on a live pipeline run...")
		profile, err := bench.StealProfile(grainItems)
		if err != nil {
			return err
		}
		st.Profile = profile
		rep.Steal = st
		fmt.Printf("steal handoffs per item: %.3f injects, %.3f pops, %.3f grabbed, %.3f steals, %.3f parks\n",
			profile.InjectsPerItem, profile.PopsPerItem, profile.GrabbedPerItem,
			profile.StealsPerItem, profile.ParksPerItem)

		fmt.Println("running the per-edge grain sweep...")
		eg, err := bench.EdgeGrainSweep(bench.EdgeGrainSweepConfig{Items: grainItems})
		if err != nil {
			return err
		}
		rep.EdgeGrains = eg
		for _, p := range eg.Points {
			mark := " "
			if p.Chosen {
				mark = "*"
			}
			fmt.Printf("edge grains [%s]%s %12.0f items/s\n", grainVec(p.Grains), mark, p.ItemsPerSec)
		}
		fmt.Printf("per-edge search chose [%s] (model predicts %.1f items/s on the asymmetric spec)\n",
			grainVec(eg.Chosen), eg.PredictedItemsPerSec)
	}
	if stress != nil {
		fmt.Println("running the RPS stress ramp...")
		sres, err := bench.StressRamp(*stress)
		if err != nil {
			return err
		}
		rep.Stress = sres
		fmt.Print(bench.StressTable(sres).String())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if maxAlloc >= 0 {
		var over []string
		for _, m := range rep.Micro {
			// The seed-reference rows reproduce the seed's allocating
			// designs on purpose; the gate covers the current hot paths.
			if strings.Contains(m.Name, "seed") {
				continue
			}
			if m.AllocsPerOp > int64(maxAlloc) {
				over = append(over, fmt.Sprintf("%s (%d allocs/op)", m.Name, m.AllocsPerOp))
			}
		}
		if len(over) > 0 {
			return fmt.Errorf("allocation gate (> %d allocs/op): %s", maxAlloc, strings.Join(over, ", "))
		}
		fmt.Printf("allocation gate passed: every hot path at ≤ %d allocs/op\n", maxAlloc)
	}
	if diffPath != "" {
		if err := diffBench(rep.Micro, diffPath, maxRegress); err != nil {
			return err
		}
	}
	return nil
}

// diffBench compares a fresh micro run against a committed snapshot:
// any benchmark whose ns/op regressed by more than maxRegress, or
// whose allocs/op increased at all, fails the gate. Benchmarks present
// on only one side are reported informationally (a new benchmark is
// not a regression); seed-reference rows are exempt like everywhere
// else.
func diffBench(fresh []bench.MicroResult, diffPath string, maxRegress float64) error {
	data, err := os.ReadFile(diffPath)
	if err != nil {
		return fmt.Errorf("diff baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("diff baseline %s: %w", diffPath, err)
	}
	baseline := map[string]bench.MicroResult{}
	for _, m := range base.Micro {
		baseline[m.Name] = m
	}
	var regressions []string
	fmt.Printf("diff against %s (bench %s, %s):\n", diffPath, base.Bench, base.GeneratedAt)
	// Cross-machine comparisons are warnings, never failures: ns/op
	// ratios taken under a different core count or scheduler width
	// reflect the machine, not the code.
	if base.CPUs != 0 && base.CPUs != runtime.NumCPU() {
		fmt.Printf("  warning: baseline ran on %d CPUs, this machine has %d — ns/op deltas may reflect the machine, not the code\n",
			base.CPUs, runtime.NumCPU())
	}
	if base.GoMaxProcs != 0 && base.GoMaxProcs != runtime.GOMAXPROCS(0) {
		fmt.Printf("  warning: baseline ran at GOMAXPROCS=%d, this run is at %d — ns/op deltas may reflect the scheduler width, not the code\n",
			base.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if len(base.Parallel) == 0 {
		// Snapshots predating the parallel core have no sweep section;
		// the sweep is informational either way (wall-clock scaling
		// depends on the runner's core count, not on the code alone).
		fmt.Println("  parallel sweep: no baseline section (older snapshot); informational only")
	}
	seen := map[string]bool{}
	for _, m := range fresh {
		if strings.Contains(m.Name, "seed") {
			continue
		}
		seen[m.Name] = true
		b, ok := baseline[m.Name]
		if !ok {
			fmt.Printf("  %-30s new benchmark (no baseline)\n", m.Name)
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = m.NsPerOp/b.NsPerOp - 1
		}
		fmt.Printf("  %-30s ns/op %10.1f -> %10.1f (%+5.1f%%)  allocs %d -> %d\n",
			m.Name, b.NsPerOp, m.NsPerOp, 100*ratio, b.AllocsPerOp, m.AllocsPerOp)
		if ratio > maxRegress {
			regressions = append(regressions, fmt.Sprintf(
				"%s ns/op regressed %.1f%% (limit %.0f%%)", m.Name, 100*ratio, 100*maxRegress))
		}
		if m.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/op grew %d -> %d", m.Name, b.AllocsPerOp, m.AllocsPerOp))
		}
	}
	// The other side of the informational report: baseline benchmarks
	// the fresh run no longer has (renamed or deleted hot paths).
	for _, b := range base.Micro {
		if strings.Contains(b.Name, "seed") || seen[b.Name] {
			continue
		}
		fmt.Printf("  %-30s missing from fresh run (renamed or removed?)\n", b.Name)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-diff gate: %s", strings.Join(regressions, "; "))
	}
	fmt.Println("bench-diff gate passed")
	return nil
}

func runOne(e bench.Experiment, seed uint64, csv, jsonOut bool, outdir string) error {
	res, err := e.Run(seed)
	if err != nil {
		return err
	}
	return emitOne(res, csv, jsonOut, outdir)
}

// emitOne prints (and optionally exports) one experiment result. With
// jsonOut the result is one JSON document (tables as cell arrays,
// series as [t, v] point lists) instead of the aligned text tables —
// with -all, one document per experiment in ID order.
func emitOne(res *bench.Result, csv, jsonOut bool, outdir string) error {
	if jsonOut {
		data, err := json.MarshalIndent(res.Doc(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(res.String())
		if csv {
			for _, s := range res.Series {
				fmt.Printf("\n--- series %s ---\n%s", s.Name, s.CSV())
			}
		}
	}
	if outdir != "" {
		if err := export(res, outdir); err != nil {
			return err
		}
	}
	if !jsonOut {
		fmt.Println()
	}
	return nil
}

// export writes the result's tables and series as CSV files named
// <id>_table<i>.csv and <id>_<series>.csv.
func export(res *bench.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", res.ID, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for _, s := range res.Series {
		name := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, s.Name)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", res.ID, name))
		if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
