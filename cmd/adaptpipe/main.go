// Command adaptpipe runs a described pipeline on a described grid and
// reports what the adaptivity engine did — the "try your scenario"
// tool. By default the pipeline's cost model executes on a simulated
// grid in virtual time; -live executes the workload's stages as real
// CPU-bound goroutines on this machine, with the same adaptive
// controller resizing the per-stage worker pools on a wall clock.
//
// Usage:
//
//	adaptpipe -workload genome -nodes 8 -policy reactive -duration 300
//	adaptpipe -workload image -grid grid.json -policy predictive -items 2000
//	adaptpipe -workload video -nodes 6 -policy static -items 1000 -explain
//	adaptpipe -live                                 # genome workload, reactive policy
//	adaptpipe -live -policy predictive -bgload 4    # inject background CPU load mid-run
//
// Built-in workloads: image, genome, video (see internal/workload).
// -live needs no other flags: it defaults to the genome workload
// (every stage replicable — the interesting case for worker
// rebalancing). With -bgload it also runs the static baseline and
// reports the throughput recovery the adaptive policy achieved
// (experiment F11's scenario, reproducible from the command line).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "workload: image | genome | video (default: image simulated, genome live)")
		gridPath = flag.String("grid", "", "grid config JSON (default: -nodes homogeneous LAN)")
		nodes    = flag.Int("nodes", 8, "homogeneous node count when no -grid is given")
		policy   = flag.String("policy", "reactive", "static | periodic | reactive | predictive | oracle")
		items    = flag.Int("items", 0, "run this many items to completion")
		duration = flag.Float64("duration", 0, "or run for this much virtual time (s)")
		seed     = flag.Uint64("seed", 42, "random seed")
		explain  = flag.Bool("explain", false, "print the model's mapping ranking before running")
		kill     = flag.Bool("kill-restart", false, "use the kill-restart remap protocol")
		live     = flag.Bool("live", false, "execute the workload live (real goroutines, wall-clock adaptation)")
		spike    = flag.Float64("spike", 0.6, "live: background load injected on the heaviest stage's resource mid-run (0..0.95; 0 = none)")
		bgload   = flag.Int("bgload", 0, "live: additionally start this many in-process CPU hogs at the injection point")
		workers  = flag.Int("workers", 0, "live: total worker budget (default 16)")
		batch    = flag.Int("batch", 0, "live: boundary batch size (0 = per-item, -1 = adapted by the controller)")
	)
	flag.Parse()
	var err error
	if *live {
		err = runLive(*wl, *policy, *items, *spike, *bgload, *workers, *batch)
	} else {
		err = run(*wl, *gridPath, *nodes, *policy, *items, *duration, *seed, *explain, *kill)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptpipe: %v\n", err)
		os.Exit(1)
	}
}

// workloadByName resolves a workload, listing the menu on a miss (the
// same courtesy pipebench's unknown-experiment path extends).
func workloadByName(name string) (workload.App, error) {
	app, err := workload.ByName(name)
	if err != nil {
		var names []string
		for _, a := range workload.All() {
			names = append(names, a.Name)
		}
		return workload.App{}, fmt.Errorf("unknown workload %q; valid workloads: %s",
			name, strings.Join(names, ", "))
	}
	return app, nil
}

// parsePolicy resolves a policy name, listing the menu on a miss.
func parsePolicy(name string, live bool) (adaptive.Policy, error) {
	pol, err := adaptive.ParsePolicy(name)
	if err != nil {
		var names []string
		for _, p := range adaptive.Policies() {
			names = append(names, p.String())
		}
		return 0, fmt.Errorf("unknown policy %q; valid policies: %s",
			name, strings.Join(names, ", "))
	}
	if live && pol == adaptive.PolicyOracle {
		return 0, fmt.Errorf("policy %q is simulation-only (no ground-truth loads live); valid live policies: static, periodic, reactive, predictive", name)
	}
	return pol, nil
}

func run(wl, gridPath string, nodes int, policyName string, items int, duration float64, seed uint64, explain, kill bool) error {
	if wl == "" {
		wl = "image"
	}
	app, err := workloadByName(wl)
	if err != nil {
		return err
	}
	g, err := buildGrid(gridPath, nodes)
	if err != nil {
		return err
	}
	if items == 0 && duration == 0 {
		duration = 300
	}
	pol, err := parsePolicy(policyName, false)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s: %d stages, total work %.3f ref-s/item\n",
		app.Name, app.Spec.NumStages(), app.Spec.TotalWork())
	fmt.Print(g.String())

	// A churn block in the grid config makes the scenario volatile: the
	// deployment mapping avoids not-yet-joined nodes and the executor
	// replays crash/rejoin/join/drain events in virtual time.
	churn := g.Churn()
	var avail []bool
	if churn != nil {
		fmt.Printf("churn: %d lifecycle events\n", len(churn.Events()))
		avail = churn.InitialAvail(g)
	}
	m0, _, err := sched.SearchAvailable(sched.LocalSearch{Seed: seed}, g, app.Spec, nil, avail)
	if err != nil {
		return err
	}
	m0, pred, err := sched.ImproveWithReplicationAvail(g, app.Spec, m0, nil, 0, avail)
	if err != nil {
		return err
	}
	fmt.Printf("deployment mapping %s — predicted %.3f items/s\n", m0, pred.Throughput)

	if explain {
		if err := explainMappings(g, app.Spec); err != nil {
			return err
		}
	}

	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, app.Spec, m0, exec.Options{
		MaxInFlight: 4 * app.Spec.NumStages(),
		WorkSampler: app.Sampler(seed),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	if err := ex.InstallChurn(churn); err != nil {
		return err
	}
	proto := exec.DrainSafe
	if kill {
		proto = exec.KillRestart
	}
	ctrl, err := simadapt.New(eng, g, ex, app.Spec, simadapt.Config{
		Policy: pol, Interval: 1, Protocol: proto,
		Searcher: sched.LocalSearch{Seed: seed + 1},
	})
	if err != nil {
		return err
	}
	ctrl.Start()

	var elapsed float64
	if items > 0 {
		ms, err := ex.RunItems(items)
		if err != nil {
			return err
		}
		elapsed = ms
		fmt.Printf("\ncompleted %d items in %.2f virtual seconds\n", ex.Done(), ms)
	} else {
		done := ex.RunUntil(duration)
		elapsed = duration
		fmt.Printf("\ncompleted %d items in %.2f virtual seconds\n", done, duration)
	}
	ctrl.Stop()

	st := ctrl.Stats()
	fmt.Printf("throughput %.3f items/s, %d remaps, %d items migrated, %.2f ref-s redone\n",
		float64(ex.Done())/elapsed, st.Remaps, ex.Migrations(), ex.RedoneWork())
	if churn != nil {
		fmt.Printf("churn ledger: %d lost, %d retries, %.2f ref-s of progress destroyed, %d fault remaps, mean availability %.4f\n",
			ex.Lost(), ex.Retries(), ex.LostWork(), st.FaultRemaps, churn.MeanAvailability(g, elapsed))
	}
	fmt.Printf("final mapping %s\n", ex.Mapping())
	if len(st.Events) > 0 {
		tb := stats.NewTable("adaptation events", "t (s)", "from", "to", "pred old", "pred new", "moved", "fault")
		for _, ev := range st.Events {
			tb.AddRowf(ev.Time, ev.From.String(), ev.To.String(),
				ev.PredictedOld, ev.PredictedNew, ev.Stats.Moved, ev.Fault)
		}
		fmt.Println(tb.String())
	}
	return nil
}

// runLive executes the workload on this machine: each stage occupies
// its backing resource for its modelled work, and the live adaptive
// controller rebalances worker pools on a wall clock. One third into
// the run, -spike lands background load on the heaviest stage's
// resource (and -bgload starts real CPU hogs); a static baseline then
// quantifies the recovery the policy bought.
func runLive(wl, policyName string, items int, spike float64, bgload, budget, batch int) error {
	if wl == "" {
		// The sensible live default: every genome stage is replicable,
		// so worker rebalancing has the whole pipeline to play with.
		wl = "genome"
	}
	app, err := workloadByName(wl)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policyName, true)
	if err != nil {
		return err
	}
	if items <= 0 {
		items = 2400
	}
	if budget <= 0 {
		budget = 16
	}

	fmt.Printf("live run: workload %s, policy %s, %d items, budget %d workers on %d CPUs\n",
		app.Name, pol, items, budget, runtime.NumCPU())
	if spike > 0 {
		fmt.Printf("injection at item %d: background load %.2f on the heaviest stage's resource (service ×%.2f)\n",
			items/3, spike, 1/(1-spike))
	}
	if bgload > 0 {
		fmt.Printf("injection at item %d: %d in-process CPU hogs\n", items/3, bgload)
	}

	if batch < 0 {
		batch = workload.Auto
		fmt.Println("boundary batching: grain adapted by the controller")
	} else if batch > 1 {
		fmt.Printf("boundary batching: fixed grain %d\n", batch)
	}
	opts := workload.LiveOptions{
		Policy:       pol,
		Items:        items,
		SpikeLoad:    spike,
		BgLoad:       bgload,
		MaxWorkers:   budget,
		Victim:       workload.Auto,
		InjectAtItem: workload.Auto,
		Batch:        batch,
	}
	out, err := workload.RunLive(app, opts)
	if err != nil {
		return err
	}
	injected := spike > 0 || bgload > 0
	printLive := func(r workload.LiveOutcome, label string) {
		fmt.Printf("\n[%s] %d items in %.2f s — %.1f items/s overall", label, r.Items, r.Elapsed, r.Throughput)
		if injected {
			fmt.Printf(" (%.1f before load, %.1f under load)", r.ThroughputBefore, r.ThroughputUnder)
		}
		fmt.Printf("\n[%s] %d resizes, final workers %v, final grain %d\n", label, len(r.Events), r.Replicas, r.Grain)
		for _, ev := range r.Events {
			fmt.Printf("  t=%5.2fs resize %s -> %s (predicted %.1f -> %.1f items/s)\n",
				ev.Time, ev.From, ev.To, ev.PredictedOld, ev.PredictedNew)
		}
	}
	printLive(out, pol.String())

	if injected && pol != adaptive.PolicyStatic {
		opts.Policy = adaptive.PolicyStatic
		if opts.Batch == workload.Auto {
			// The static baseline cannot walk grain; pin the one the
			// adaptive run settled on so the comparison isolates policy.
			opts.Batch = out.Grain
		}
		base, err := workload.RunLive(app, opts)
		if err != nil {
			return err
		}
		printLive(base, "static baseline")
		if base.ThroughputUnder > 0 {
			fmt.Printf("\nthroughput under load: %s %.1f vs static %.1f items/s — recovery ×%.2f\n",
				pol, out.ThroughputUnder, base.ThroughputUnder, out.ThroughputUnder/base.ThroughputUnder)
		}
	}
	return nil
}

func buildGrid(path string, nodes int) (*grid.Grid, error) {
	if path == "" {
		return grid.Homogeneous(nodes, 1, grid.LANLink)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := grid.LoadConfig(f)
	if err != nil {
		return nil, err
	}
	return cfg.Build()
}

// explainMappings ranks the search strategies' proposals under the
// analytic model, including the latency-objective search at half the
// grid's sustainable rate.
func explainMappings(g *grid.Grid, spec model.PipelineSpec) error {
	tb := stats.NewTable("mapping proposals (idle grid)",
		"strategy", "mapping", "predicted items/s", "mean latency (s)")
	searchers := []sched.Searcher{
		sched.ContiguousDP{}, sched.Greedy{}, sched.LocalSearch{Seed: 7},
	}
	// A conservative probe rate for the latency column: half the best
	// throughput any strategy achieves.
	var bestThr float64
	type rowT struct {
		name string
		m    model.Mapping
		thr  float64
	}
	var rows []rowT
	for _, s := range searchers {
		m, pred, err := s.Search(g, spec, nil)
		if err != nil {
			return err
		}
		rows = append(rows, rowT{s.Name(), m, pred.Throughput})
		if pred.Throughput > bestThr {
			bestThr = pred.Throughput
		}
	}
	rate := bestThr / 2
	if lm, lpred, err := (sched.ForLatency{Rate: rate}).Search(g, spec, nil); err == nil {
		rows = append(rows, rowT{"for-latency", lm, lpred.Throughput})
	}
	for _, r := range rows {
		lat := "-"
		if lp, err := model.PredictLatency(g, spec, r.m, nil, rate, 0); err == nil {
			lat = fmt.Sprintf("%.4f", lp.Mean)
		}
		tb.AddRowf(r.name, r.m.String(), r.thr, lat)
	}
	tb.AddNote("latency column evaluated at %.2f items/s (half the best predicted throughput)", rate)
	fmt.Println(tb.String())
	return nil
}
