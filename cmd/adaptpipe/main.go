// Command adaptpipe runs a described pipeline on a described grid in
// simulation and reports what the adaptivity engine did — the
// "try your scenario" tool.
//
// Usage:
//
//	adaptpipe -workload genome -nodes 8 -policy reactive -duration 300
//	adaptpipe -workload image -grid grid.json -policy predictive -items 2000
//	adaptpipe -workload video -nodes 6 -policy static -items 1000 -explain
//
// Built-in workloads: image, genome, video (see internal/workload).
package main

import (
	"flag"
	"fmt"
	"os"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "image", "workload: image | genome | video")
		gridPath = flag.String("grid", "", "grid config JSON (default: -nodes homogeneous LAN)")
		nodes    = flag.Int("nodes", 8, "homogeneous node count when no -grid is given")
		policy   = flag.String("policy", "reactive", "static | periodic | reactive | predictive | oracle")
		items    = flag.Int("items", 0, "run this many items to completion")
		duration = flag.Float64("duration", 0, "or run for this much virtual time (s)")
		seed     = flag.Uint64("seed", 42, "random seed")
		explain  = flag.Bool("explain", false, "print the model's mapping ranking before running")
		kill     = flag.Bool("kill-restart", false, "use the kill-restart remap protocol")
	)
	flag.Parse()
	if err := run(*wl, *gridPath, *nodes, *policy, *items, *duration, *seed, *explain, *kill); err != nil {
		fmt.Fprintf(os.Stderr, "adaptpipe: %v\n", err)
		os.Exit(1)
	}
}

func run(wl, gridPath string, nodes int, policyName string, items int, duration float64, seed uint64, explain, kill bool) error {
	app, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	g, err := buildGrid(gridPath, nodes)
	if err != nil {
		return err
	}
	if items == 0 && duration == 0 {
		duration = 300
	}
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s: %d stages, total work %.3f ref-s/item\n",
		app.Name, app.Spec.NumStages(), app.Spec.TotalWork())
	fmt.Print(g.String())

	// A churn block in the grid config makes the scenario volatile: the
	// deployment mapping avoids not-yet-joined nodes and the executor
	// replays crash/rejoin/join/drain events in virtual time.
	churn := g.Churn()
	var avail []bool
	if churn != nil {
		fmt.Printf("churn: %d lifecycle events\n", len(churn.Events()))
		avail = churn.InitialAvail(g)
	}
	m0, _, err := sched.SearchAvailable(sched.LocalSearch{Seed: seed}, g, app.Spec, nil, avail)
	if err != nil {
		return err
	}
	m0, pred, err := sched.ImproveWithReplicationAvail(g, app.Spec, m0, nil, 0, avail)
	if err != nil {
		return err
	}
	fmt.Printf("deployment mapping %s — predicted %.3f items/s\n", m0, pred.Throughput)

	if explain {
		if err := explainMappings(g, app.Spec); err != nil {
			return err
		}
	}

	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, app.Spec, m0, exec.Options{
		MaxInFlight: 4 * app.Spec.NumStages(),
		WorkSampler: app.Sampler(seed),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	if err := ex.InstallChurn(churn); err != nil {
		return err
	}
	proto := exec.DrainSafe
	if kill {
		proto = exec.KillRestart
	}
	ctrl, err := adaptive.NewController(eng, g, ex, app.Spec, adaptive.Config{
		Policy: pol, Interval: 1, Protocol: proto,
		Searcher: sched.LocalSearch{Seed: seed + 1},
	})
	if err != nil {
		return err
	}
	ctrl.Start()

	var elapsed float64
	if items > 0 {
		ms, err := ex.RunItems(items)
		if err != nil {
			return err
		}
		elapsed = ms
		fmt.Printf("\ncompleted %d items in %.2f virtual seconds\n", ex.Done(), ms)
	} else {
		done := ex.RunUntil(duration)
		elapsed = duration
		fmt.Printf("\ncompleted %d items in %.2f virtual seconds\n", done, duration)
	}
	ctrl.Stop()

	st := ctrl.Stats()
	fmt.Printf("throughput %.3f items/s, %d remaps, %d items migrated, %.2f ref-s redone\n",
		float64(ex.Done())/elapsed, st.Remaps, ex.Migrations(), ex.RedoneWork())
	if churn != nil {
		fmt.Printf("churn ledger: %d lost, %d retries, %.2f ref-s of progress destroyed, %d fault remaps, mean availability %.4f\n",
			ex.Lost(), ex.Retries(), ex.LostWork(), st.FaultRemaps, churn.MeanAvailability(g, elapsed))
	}
	fmt.Printf("final mapping %s\n", ex.Mapping())
	if len(st.Events) > 0 {
		tb := stats.NewTable("adaptation events", "t (s)", "from", "to", "pred old", "pred new", "moved", "fault")
		for _, ev := range st.Events {
			tb.AddRowf(ev.Time, ev.From.String(), ev.To.String(),
				ev.PredictedOld, ev.PredictedNew, ev.Stats.Moved, ev.Fault)
		}
		fmt.Println(tb.String())
	}
	return nil
}

func buildGrid(path string, nodes int) (*grid.Grid, error) {
	if path == "" {
		return grid.Homogeneous(nodes, 1, grid.LANLink)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := grid.LoadConfig(f)
	if err != nil {
		return nil, err
	}
	return cfg.Build()
}

func parsePolicy(name string) (adaptive.Policy, error) {
	switch name {
	case "static":
		return adaptive.PolicyStatic, nil
	case "periodic":
		return adaptive.PolicyPeriodic, nil
	case "reactive":
		return adaptive.PolicyReactive, nil
	case "predictive":
		return adaptive.PolicyPredictive, nil
	case "oracle":
		return adaptive.PolicyOracle, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

// explainMappings ranks the search strategies' proposals under the
// analytic model, including the latency-objective search at half the
// grid's sustainable rate.
func explainMappings(g *grid.Grid, spec model.PipelineSpec) error {
	tb := stats.NewTable("mapping proposals (idle grid)",
		"strategy", "mapping", "predicted items/s", "mean latency (s)")
	searchers := []sched.Searcher{
		sched.ContiguousDP{}, sched.Greedy{}, sched.LocalSearch{Seed: 7},
	}
	// A conservative probe rate for the latency column: half the best
	// throughput any strategy achieves.
	var bestThr float64
	type rowT struct {
		name string
		m    model.Mapping
		thr  float64
	}
	var rows []rowT
	for _, s := range searchers {
		m, pred, err := s.Search(g, spec, nil)
		if err != nil {
			return err
		}
		rows = append(rows, rowT{s.Name(), m, pred.Throughput})
		if pred.Throughput > bestThr {
			bestThr = pred.Throughput
		}
	}
	rate := bestThr / 2
	if lm, lpred, err := (sched.ForLatency{Rate: rate}).Search(g, spec, nil); err == nil {
		rows = append(rows, rowT{"for-latency", lm, lpred.Throughput})
	}
	for _, r := range rows {
		lat := "-"
		if lp, err := model.PredictLatency(g, spec, r.m, nil, rate, 0); err == nil {
			lat = fmt.Sprintf("%.4f", lp.Mean)
		}
		tb.AddRowf(r.name, r.m.String(), r.thr, lat)
	}
	tb.AddNote("latency column evaluated at %.2f items/s (half the best predicted throughput)", rate)
	fmt.Println(tb.String())
	return nil
}
