// Command gridsim inspects a simulated grid: it loads a JSON grid
// configuration (or a built-in preset), prints the topology, samples
// every node's background-load trace over a horizon, and reports each
// node's effective speed statistics — the "what does the resource pool
// look like" view an operator would consult before mapping a pipeline.
//
// Usage:
//
//	gridsim -preset multisite -horizon 300
//	gridsim -config grid.json -horizon 600 -csv
//	gridsim -preset loaded -json
//	gridsim -traffic bursty -rate 0.5 -traffic-out trace.jsonl
//
// -json emits one machine-readable document (the same tables as cell
// arrays plus every node's sampled load series) instead of the text
// rendering.
//
// -traffic previews an open-loop arrival stream instead of a grid: it
// generates a job trace from the named arrival process (see DESIGN.md,
// "Traffic engine"), prints the realised rate over windows, and with
// -traffic-out records the JSON-lines trace for later replay through
// the cluster (gridpipe.SubmitTrace / cluster.SubmitTrace).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/rng"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func main() {
	var (
		configPath = flag.String("config", "", "grid config JSON file")
		preset     = flag.String("preset", "", "built-in preset: lan | multisite | loaded")
		horizon    = flag.Float64("horizon", 300, "sampling horizon in seconds")
		step       = flag.Float64("step", 1, "sampling step in seconds")
		csv        = flag.Bool("csv", false, "print per-node load series as CSV")
		jsonOut    = flag.Bool("json", false, "emit the grid summary, tables, and load series as JSON")
		seed       = flag.Uint64("seed", 42, "seed for stochastic presets")
		parts      = flag.String("parts", "", "also show the simulation partition plan for this many partitions (0 = auto from NumCPU)")

		traffic      = flag.String("traffic", "", "preview an arrival stream of this family (poisson, uniform, bursty, diurnal, pareto) instead of a grid")
		rate         = flag.Float64("rate", 0.5, "traffic: mean job arrival rate in jobs/s")
		trafficApp   = flag.String("traffic-app", "genome", "traffic: app every generated job runs")
		trafficItems = flag.Int("traffic-items", 50, "traffic: items per generated job")
		trafficOut   = flag.String("traffic-out", "", "traffic: record the generated JSON-lines trace to this file (\"-\" = stdout)")
	)
	flag.Parse()

	if *traffic != "" {
		if err := previewTraffic(*traffic, *rate, *trafficApp, *trafficItems, *horizon, *seed, *trafficOut, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			if strings.Contains(err.Error(), "unknown arrival process") {
				fmt.Fprintf(os.Stderr, "valid -traffic values: %s\n", strings.Join(workload.ArrivalFamilies(), " "))
			}
			os.Exit(1)
		}
		return
	}

	g, err := buildGrid(*configPath, *preset, *seed, *horizon)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		os.Exit(1)
	}

	plan, err := resolvePlan(g, *parts)
	if err != nil {
		// An invalid -parts is most often a typo: show the valid range
		// rather than an opaque failure.
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		fmt.Fprintf(os.Stderr, "valid -parts values for this grid: 1..%d, or 0 to auto-pick from NumCPU\n", g.NumNodes())
		os.Exit(1)
	}

	var tables []*stats.Table
	if churn := g.Churn(); churn != nil {
		ct := stats.NewTable("node lifecycle schedule (churn)",
			"t (s)", "node", "event", "availability over horizon")
		for _, ev := range churn.Events() {
			ct.AddRowf(ev.T, ev.Node, ev.Kind.String(), churn.Availability(ev.Node, *horizon))
		}
		ct.AddNote("mean grid availability over horizon: %.4f", churn.MeanAvailability(g, *horizon))
		tables = append(tables, ct)
	}
	tb := stats.NewTable("node load over horizon",
		"node", "speed", "cores", "mean load", "max load", "mean eff speed")
	var series []*stats.Series
	for _, n := range g.Nodes() {
		s := stats.NewSeries(n.Name + "-load")
		for t := 0.0; t <= *horizon; t += *step {
			l := 0.0
			if n.Load != nil {
				l = n.Load.At(t)
			}
			s.Append(t, l)
		}
		loads := s.Values()
		mean := stats.Mean(loads)
		tb.AddRowf(n.Name, n.Speed, n.Cores, mean, stats.Max(loads), n.Speed*(1-mean))
		series = append(series, s)
	}
	tables = append(tables, tb)

	if *jsonOut {
		doc := struct {
			Nodes  int               `json:"nodes"`
			Plan   *planDoc          `json:"partition_plan,omitempty"`
			Tables []stats.TableDoc  `json:"tables"`
			Series []stats.SeriesDoc `json:"series"`
		}{Nodes: g.NumNodes()}
		if plan != nil {
			doc.Plan = &planDoc{Parts: plan.Parts, LookaheadSec: plan.Lookahead, Assign: plan.Assign}
		}
		for _, t := range tables {
			doc.Tables = append(doc.Tables, t.Doc())
		}
		for _, s := range series {
			doc.Series = append(doc.Series, s.Doc())
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	fmt.Print(g.String())
	if plan != nil {
		fmt.Println(plan.String())
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	if *csv {
		for _, s := range series {
			fmt.Printf("--- %s ---\n%s", s.Name, s.CSV())
		}
	}
}

// previewTraffic generates an arrival stream, summarises its realised
// rate over fixed windows, and optionally records the trace.
func previewTraffic(family string, rate float64, app string, items int, horizon float64, seed uint64, out string, csv bool) error {
	proc, err := workload.NewArrival(family, rate, rng.SeedFor(seed, 0))
	if err != nil {
		return err
	}
	tr, err := workload.GenerateTrace(proc, []workload.MixEntry{{App: app, Share: 1, Items: items}}, horizon, rng.SeedFor(seed, 1))
	if err != nil {
		return err
	}
	times := make([]float64, len(tr))
	totalItems := 0
	for i, ev := range tr {
		times[i] = ev.T
		totalItems += ev.Items
	}
	// Window the realised rate coarsely enough that each window expects
	// several arrivals.
	window := horizon / 10
	if window <= 0 {
		window = 1
	}
	rates := stats.WindowRate(times, 0, horizon, window)
	tb := stats.NewTable(
		fmt.Sprintf("traffic preview: %s arrivals at %.4g jobs/s over %.0f s (%s × %d items)",
			proc.Name(), proc.Rate(), horizon, app, items),
		"window start", "jobs/s")
	for _, p := range rates.Points() {
		tb.AddRowf(p.T-window/2, p.V)
	}
	realised := float64(len(tr)) / horizon
	tb.AddNote("%d jobs (%d items); realised mean rate %.4g jobs/s vs configured %.4g", len(tr), totalItems, realised, proc.Rate())
	fmt.Print(tb.String())
	if csv {
		fmt.Printf("--- arrival rate ---\n%s", rates.CSV())
	}
	if out != "" {
		w := os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := tr.Write(w); err != nil {
			return err
		}
		if out != "-" {
			fmt.Printf("recorded %d-event trace to %s\n", len(tr), out)
		}
	}
	return nil
}

// planDoc is the JSON rendering of a partition plan.
type planDoc struct {
	Parts        int     `json:"parts"`
	LookaheadSec float64 `json:"lookahead_s"`
	Assign       []int   `json:"assign"`
}

// resolvePlan turns the -parts flag into a partition plan: empty means
// no plan view, 0 auto-picks min(NumCPU, nodes) and prints the choice,
// and an explicit count must fit the grid.
func resolvePlan(g *grid.Grid, s string) (*exec.PartitionPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, fmt.Errorf("invalid -parts %q: not an integer", s)
	}
	if n == 0 {
		n = runtime.NumCPU()
		if n > g.NumNodes() {
			n = g.NumNodes()
		}
		fmt.Printf("-parts 0: auto-picked %d partitions (NumCPU=%d, %d nodes)\n",
			n, runtime.NumCPU(), g.NumNodes())
	}
	plan, err := exec.PlanPartitions(g, n)
	if err != nil {
		return nil, err
	}
	return &plan, nil
}

func buildGrid(configPath, preset string, seed uint64, horizon float64) (*grid.Grid, error) {
	if configPath != "" {
		f, err := os.Open(configPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg, err := grid.LoadConfig(f)
		if err != nil {
			return nil, err
		}
		return cfg.Build()
	}
	r := rng.New(seed)
	switch preset {
	case "", "lan":
		return grid.Homogeneous(8, 1, grid.LANLink)
	case "multisite":
		return grid.MultiSite([]grid.Site{
			{Name: "edi", Nodes: 4, Speed: 1},
			{Name: "bcn", Nodes: 4, Speed: 2, Cores: 2},
			{Name: "pis", Nodes: 2, Speed: 1.5},
		}, grid.LANLink, grid.WANLink)
	case "loaded":
		nodes := make([]*grid.Node, 6)
		for i := range nodes {
			nodes[i] = &grid.Node{
				Name:  fmt.Sprintf("node%d", i),
				Speed: 1 + float64(i)*0.5,
				Cores: 1,
				Load: trace.Sum{
					trace.NewRandomWalk(r.Derive(uint64(i)), horizon+60, 1, 0.3, 0.05, 0.1),
					trace.Sine{Base: 0.1, Amp: 0.1, Period: 120},
				},
			}
		}
		return grid.NewGrid(grid.CampusLink, nodes...)
	default:
		return nil, fmt.Errorf("unknown preset %q (have lan, multisite, loaded)", preset)
	}
}
