package gridpipe_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// raceEnabled is set by smoke_race_test.go when the test binary was
// built with -race, so the example binaries get race-instrumented too
// (their live goroutine pipelines are the point of running them).
var raceEnabled bool

// TestExamplesSmoke builds and runs every example binary end to end:
// the examples are living documentation and must keep producing output
// (not just compiling) as the layers under them are refactored. Under
// `go test -race` the examples are built with -race as well.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the example binaries")
	}
	examples := []string{"quickstart", "imagepipeline", "videostream", "genomics", "partitioned"}
	bindir := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, name)
			args := []string{"build", "-o", bin}
			if raceEnabled {
				args = append(args, "-race")
			}
			build := exec.Command("go", append(args, "./examples/"+name)...)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
