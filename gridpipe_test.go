package gridpipe

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func testStages(fail bool) []StageDef {
	return []StageDef{
		Stage("double", func(ctx context.Context, v any) (any, error) {
			return v.(int) * 2, nil
		}, Weight(0.05)),
		Stage("inc", func(ctx context.Context, v any) (any, error) {
			if fail && v.(int) == 6 {
				return nil, errors.New("boom")
			}
			return v.(int) + 1, nil
		}, Weight(0.1), Replicable(), Replicas(3)),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("no stages accepted")
	}
	if _, err := New(Stage("", nil)); err == nil {
		t.Fatal("unnamed stage accepted")
	}
	if _, err := New(Stage("x", nil, Weight(-1))); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestLiveProcess(t *testing.T) {
	p, err := New(testStages(false)...)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 2 {
		t.Fatalf("NumStages = %d", p.NumStages())
	}
	in := []any{1, 2, 3, 4}
	out, err := p.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := (i+1)*2 + 1; v.(int) != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
	st := p.LiveStats()
	if len(st) != 2 || st[0].Count != 4 {
		t.Fatalf("LiveStats = %+v", st)
	}
	if st[1].Replicas != 3 {
		t.Fatalf("replicas = %d", st[1].Replicas)
	}
}

func TestLiveErrorPropagates(t *testing.T) {
	p, err := New(testStages(true)...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Process(context.Background(), []any{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "inc") {
		t.Fatalf("err = %v", err)
	}
}

func TestLiveSingleUse(t *testing.T) {
	p, err := New(testStages(false)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), []any{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), []any{1}); err == nil {
		t.Fatal("second live run accepted")
	}
}

func TestSimulationOnlyPipelineRejectsLive(t *testing.T) {
	p, err := New(Stage("model-only", nil, Weight(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), []any{1}); err == nil {
		t.Fatal("nil-fn stage ran live")
	}
}

func TestSetReplicasRequiresLive(t *testing.T) {
	p, err := New(testStages(false)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetReplicas(1, 2); err == nil {
		t.Fatal("SetReplicas before Run accepted")
	}
}

func TestRunStreaming(t *testing.T) {
	p, err := New(testStages(false)...)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any, 3)
	in <- 1
	in <- 2
	in <- 3
	close(in)
	out, errs, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("streamed %d outputs", count)
	}
	// SetReplicas works after Run started... pipeline already done but
	// the call should at least be accepted.
	if err := p.SetReplicas(1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateOnHomogeneousGrid(t *testing.T) {
	p, err := New(
		Stage("a", nil, Weight(0.1), OutBytes(1e5)),
		Stage("b", nil, Weight(0.1), OutBytes(1e5)),
		Stage("c", nil, Weight(0.1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := HomogeneousGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	rep, err := p.Simulate(g, SimOptions{Items: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 500 || rep.Makespan <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	// One stage per node: ~10 items/s.
	if rep.Throughput < 8 || rep.Throughput > 10.5 {
		t.Fatalf("throughput = %v, want ~10", rep.Throughput)
	}
	if rep.PredictedThroughput < 9 {
		t.Fatalf("predicted = %v", rep.PredictedThroughput)
	}
	if rep.InitialMapping == "" || rep.FinalMapping == "" {
		t.Fatal("mappings missing from report")
	}
}

func TestSimulateAdaptiveOnHeterogeneousGrid(t *testing.T) {
	p, err := New(
		Stage("a", nil, Weight(0.2), Replicable()),
		Stage("b", nil, Weight(0.2), Replicable()),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := HeterogeneousGrid(1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Simulate(g, SimOptions{Duration: 60, Policy: PolicyReactive, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done == 0 {
		t.Fatal("nothing completed")
	}
	if rep.MeanLatency <= 0 {
		t.Fatalf("mean latency = %v", rep.MeanLatency)
	}
}

func TestSimulateOptionValidation(t *testing.T) {
	p, _ := New(Stage("a", nil, Weight(0.1)))
	g, _ := HomogeneousGrid(2)
	if _, err := p.Simulate(nil, SimOptions{Items: 1}); err == nil {
		t.Fatal("nil grid accepted")
	}
	if _, err := p.Simulate(g, SimOptions{}); err == nil {
		t.Fatal("neither Items nor Duration rejected")
	}
	if _, err := p.Simulate(g, SimOptions{Items: 1, Duration: 1}); err == nil {
		t.Fatal("both Items and Duration accepted")
	}
	if _, err := p.Simulate(g, SimOptions{Items: 1, Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestGridFromJSON(t *testing.T) {
	cfg := `{"nodes":[{"name":"a","speed":1},{"name":"b","speed":2}]}`
	g, err := GridFromJSON(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if !strings.Contains(g.Describe(), "2 nodes") {
		t.Fatalf("Describe:\n%s", g.Describe())
	}
	if _, err := GridFromJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestPredictMapping(t *testing.T) {
	p, err := New(
		Stage("a", nil, Weight(0.1)),
		Stage("b", nil, Weight(0.1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := HeterogeneousGrid(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	mapping, thr, err := p.PredictMapping(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mapping, "1") {
		t.Fatalf("mapping %q should use the fast node", mapping)
	}
	if thr < 19 {
		t.Fatalf("predicted throughput = %v, want 20", thr)
	}
	// With the fast node saturated, prediction should shift.
	_, thrLoaded, err := p.PredictMapping(g, []float64{0, 0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if thrLoaded >= thr {
		t.Fatalf("loaded prediction %v should drop below %v", thrLoaded, thr)
	}
}

func TestSpec(t *testing.T) {
	p, err := New(
		Stage("a", nil, Weight(0.3), OutBytes(100), Replicable()),
		Stage("b", nil, Weight(0.1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	info := p.Spec()
	if len(info) != 2 || info[0].Name != "a" || info[0].Weight != 0.3 ||
		info[0].OutBytes != 100 || !info[0].Replicable || info[1].Replicable {
		t.Fatalf("Spec = %+v", info)
	}
}

func TestSimulateKillRestartOption(t *testing.T) {
	p, err := New(
		Stage("a", nil, Weight(0.5), Replicable()),
		Stage("b", nil, Weight(0.5), Replicable()),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := HomogeneousGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Simulate(g, SimOptions{Duration: 60, Policy: PolicyPeriodic, Seed: 5, KillRestart: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done == 0 {
		t.Fatal("nothing completed")
	}
}
