//go:build race

package gridpipe_test

// The examples smoke test propagates the race detector into the
// example binaries it builds (see examples_smoke_test.go).
func init() { raceEnabled = true }
