package farm

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func double(ctx context.Context, v any) (any, error) { return v.(int) * 2, nil }

func ints(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil fn accepted")
	}
	f, err := New(double, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Workers != 1 {
		t.Fatalf("default workers = %d", st.Workers)
	}
}

func TestOrderedProcess(t *testing.T) {
	f, err := New(func(ctx context.Context, v any) (any, error) {
		time.Sleep(time.Duration(v.(int)%5) * time.Millisecond)
		return v.(int) * 2, nil
	}, Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Process(context.Background(), ints(100))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i*2 {
			t.Fatalf("order broken at %d: %v", i, v)
		}
	}
	if st := f.Stats(); st.Done != 100 {
		t.Fatalf("Done = %d", st.Done)
	}
}

func TestUnorderedDeliversAll(t *testing.T) {
	f, err := New(func(ctx context.Context, v any) (any, error) {
		time.Sleep(time.Duration((13*v.(int))%7) * time.Millisecond)
		return v, nil
	}, Options{Workers: 8, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Process(context.Background(), ints(60))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(out))
	for i, v := range out {
		got[i] = v.(int)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("multiset broken: %v", got)
		}
	}
	if st := f.Stats(); st.Done != 60 || st.MeanService <= 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestUnorderedParallelism(t *testing.T) {
	var inFlight, peak int64
	f, err := New(func(ctx context.Context, v any) (any, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(3 * time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return v, nil
	}, Options{Workers: 4, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Process(context.Background(), ints(24)); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p < 2 || p > 4 {
		t.Fatalf("peak parallelism %d outside [2, 4]", p)
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, unordered := range []bool{false, true} {
		f, err := New(func(ctx context.Context, v any) (any, error) {
			if v.(int) == 7 {
				return nil, boom
			}
			return v, nil
		}, Options{Workers: 3, Unordered: unordered})
		if err != nil {
			t.Fatal(err)
		}
		_, err = f.Process(context.Background(), ints(50))
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("unordered=%v: err = %v", unordered, err)
		}
	}
}

func TestContextCancel(t *testing.T) {
	for _, unordered := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		f, err := New(func(ctx context.Context, v any) (any, error) {
			select {
			case <-time.After(50 * time.Millisecond):
				return v, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}, Options{Workers: 2, Unordered: unordered})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		if _, err := f.Process(ctx, ints(100)); err == nil {
			t.Fatalf("unordered=%v: expected cancellation error", unordered)
		}
	}
}

func TestSetWorkersLiveGrow(t *testing.T) {
	release := make(chan struct{})
	var started int64
	f, err := New(func(ctx context.Context, v any) (any, error) {
		atomic.AddInt64(&started, 1)
		select {
		case <-release:
			return v, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, Options{Workers: 1, Unordered: true, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any, 4)
	for i := 0; i < 4; i++ {
		in <- i
	}
	close(in)
	out, errs := f.Run(context.Background(), in)
	waitFor(t, func() bool { return atomic.LoadInt64(&started) == 1 })
	if err := f.SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return atomic.LoadInt64(&started) == 4 })
	close(release)
	n := 0
	for range out {
		n++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("outputs = %d", n)
	}
	if st := f.Stats(); st.Workers != 4 {
		t.Fatalf("Workers = %d", st.Workers)
	}
}

func TestSetWorkersOrderedMode(t *testing.T) {
	f, err := New(double, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any, 2)
	in <- 1
	in <- 2
	close(in)
	out, errs := f.Run(context.Background(), in)
	if err := f.SetWorkers(3); err != nil {
		t.Fatal(err)
	}
	for range out {
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Workers != 3 {
		t.Fatalf("Workers = %d", st.Workers)
	}
}

func TestSetWorkersValidation(t *testing.T) {
	f, _ := New(double, Options{})
	if err := f.SetWorkers(0); err == nil {
		t.Fatal("zero workers accepted")
	}
	// Resizing before Run adjusts the initial count.
	if err := f.SetWorkers(5); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Workers != 5 {
		t.Fatalf("Workers = %d", st.Workers)
	}
}

func TestRunTwicePanics(t *testing.T) {
	f, _ := New(double, Options{})
	in := make(chan any)
	close(in)
	out, errs := f.Run(context.Background(), in)
	for range out {
	}
	<-errs
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Run(context.Background(), in)
}

func TestEmptyInput(t *testing.T) {
	for _, unordered := range []bool{false, true} {
		f, _ := New(double, Options{Unordered: unordered})
		out, err := f.Process(context.Background(), nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("unordered=%v: %v %v", unordered, out, err)
		}
	}
}

// Property: for any worker count and mode, the farm is 1-for-1 on the
// multiset of results.
func TestOneForOneProperty(t *testing.T) {
	f := func(workersRaw, nRaw uint8, unordered bool) bool {
		workers := int(workersRaw%6) + 1
		n := int(nRaw % 60)
		fm, err := New(func(ctx context.Context, v any) (any, error) {
			return v.(int) + 1000, nil
		}, Options{Workers: workers, Unordered: unordered})
		if err != nil {
			return false
		}
		out, err := fm.Process(context.Background(), ints(n))
		if err != nil || len(out) != n {
			return false
		}
		got := make([]int, n)
		for i, v := range out {
			got[i] = v.(int) - 1000
		}
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never became true")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
