// Package farm implements the task-farm skeleton, the pipeline's
// sibling pattern in the eSkel family and the building block behind
// stage replication: a dynamic pool of workers applies one function to
// a stream of independent tasks.
//
// The farm preserves input order on request (the default matches the
// pipeline's 1-for-1 discipline) and its worker count is resizable at
// run time — the live counterpart of the adaptivity engine's replicate
// action, exposed as a standalone skeleton so applications that are a
// single parallel stage need not wrap themselves in a pipeline.
//
// Like the pipeline, the unordered hot path runs persistent workers
// (no goroutine per task) and records service times in an atomic
// meter (no mutex per task). Ordered mode delegates to a one-stage
// pipeline — the degenerate chain of the stage-graph runtime
// (internal/topo), so a farm is literally a single graph node wired
// source→stage→sink.
package farm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/conc"
	"gridpipe/internal/conc/steal"
	"gridpipe/internal/pipeline"
	"gridpipe/internal/ring"
)

// Func is the worker computation. It must be safe for concurrent
// invocation.
type Func func(ctx context.Context, v any) (any, error)

// taskSlab is a pooled batch of tasks in flight to a worker. It is a
// distinct unexported pointer type so the worker can tell slabs from
// single tasks in the shared any-typed pool channel: user code cannot
// construct a value of this type, so the assertion never misfires on
// a task that happens to be a *[]any.
type taskSlab *[]any

// unit is one completed result (or a bare bookkeeping marker) queued
// from an executor task to the farm's drainer: send marks a deliverable
// value, release marks the last unit of its submission — the drainer
// frees the limiter token there, so backpressure releases only when the
// consumer has actually accepted the work.
type unit struct {
	v       any
	send    bool
	release bool
}

// unitQueue is the unordered counterpart of pipeline's result sink:
// executor tasks put completed units without ever blocking, the drainer
// pulls them in completion order via next, blocking there instead.
type unitQueue struct {
	mu     sync.Mutex
	q      ring.FIFO[unit]
	closed bool
	notify chan struct{}
}

func (s *unitQueue) put(u unit) {
	s.mu.Lock()
	s.q.Push(u)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// close marks the stream complete; call only after every outstanding
// put has happened.
func (s *unitQueue) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// next blocks until a unit is available (or the queue is closed and
// drained).
func (s *unitQueue) next() (unit, bool) {
	for {
		s.mu.Lock()
		if u, ok := s.q.Pop(); ok {
			s.mu.Unlock()
			return u, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return unit{}, false
		}
		<-s.notify
	}
}

// Options tune a Farm.
type Options struct {
	// Workers is the initial worker limit (default 1).
	Workers int
	// Buffer is the input buffer capacity (default the worker count).
	Buffer int
	// Unordered delivers results as they complete instead of in input
	// order. Ordered delivery (the default) matches Pipeline1for1.
	Unordered bool
	// Batch is the number of tasks crossing the farm's dispatch
	// boundary together (default 1 = per-task). Larger batches
	// amortise the limiter and channel synchronisation over Batch
	// tasks; SetBatch adjusts it while running.
	Batch int
	// Linger bounds how long a partial batch may wait for more input
	// before being dispatched anyway (default pipeline.DefaultLinger;
	// only meaningful with Batch > 1).
	Linger time.Duration
	// DisableExecutor runs the farm on dedicated workers instead of the
	// shared work-stealing executor — the pre-executor wiring, kept as
	// the oracle half of the executor equivalence property.
	DisableExecutor bool
}

// Stats is a snapshot of the farm's counters.
type Stats struct {
	Workers     int
	Done        int
	MeanService time.Duration
	MaxService  time.Duration
}

// Farm is a runnable task farm. Create with New; single-use like the
// pipeline skeleton.
type Farm struct {
	fn   Func
	opts Options

	mu    sync.Mutex
	ran   bool
	pl    *pipeline.Pipeline // ordered mode delegates to a 1-stage pipeline
	meter conc.Meter         // unordered-mode service times
	limit *conc.Limiter
	batch atomic.Int64 // current dispatch batch size (unordered mode)
}

// New validates and builds a farm.
func New(fn Func, opts Options) (*Farm, error) {
	if fn == nil {
		return nil, fmt.Errorf("farm: nil function")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Buffer <= 0 {
		opts.Buffer = opts.Workers
	}
	if opts.Batch < 0 {
		return nil, fmt.Errorf("farm: negative batch %d", opts.Batch)
	}
	if opts.Batch == 0 {
		opts.Batch = 1
	}
	if opts.Linger <= 0 {
		opts.Linger = pipeline.DefaultLinger
	}
	f := &Farm{fn: fn, opts: opts}
	f.batch.Store(int64(opts.Batch))
	return f, nil
}

// Run starts the farm over the input stream. Semantics mirror
// pipeline.Pipeline.Run: the output channel closes after the inputs
// drain (or on failure/cancellation); the error channel carries at most
// one error.
func (f *Farm) Run(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	f.mu.Lock()
	if f.ran {
		f.mu.Unlock()
		panic("farm: Run called twice")
	}
	f.ran = true

	if !f.opts.Unordered {
		pl, err := pipeline.New(pipeline.Stage{
			Name:     "farm",
			Fn:       pipeline.Func(f.fn),
			Replicas: f.opts.Workers,
			Buffer:   f.opts.Buffer,
		})
		if err != nil {
			// New validated everything that pipeline.New checks.
			panic(fmt.Sprintf("farm: internal construction error: %v", err))
		}
		if f.opts.Batch > 1 {
			if err := pl.EnableBatch(f.opts.Batch, f.opts.Linger); err != nil {
				panic(fmt.Sprintf("farm: internal construction error: %v", err))
			}
		}
		if f.opts.DisableExecutor {
			pl.DisableExecutor()
		}
		f.pl = pl
		f.mu.Unlock()
		return pl.Run(ctx, inputs)
	}

	// Unordered mode: submissions run on the shared work-stealing
	// executor (or, DisableExecutor, a dedicated resizable pool of
	// persistent workers). The option fields are captured under the
	// lock: a concurrent SetWorkers may rewrite opts.Workers the
	// instant Run releases it (the limiter, not the pool buffer,
	// bounds concurrency anyway).
	f.limit = conc.NewLimiter(f.opts.Workers)
	outBuf, poolBuf := f.opts.Buffer, 2*f.opts.Workers
	linger := f.opts.Linger
	noExec := f.opts.DisableExecutor
	f.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	out := make(chan any, outBuf)
	errs := make(chan error, 1)
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// Tasks cross the dispatch boundary either singly (batch 1, the
	// default — no slab machinery on the per-task fast path) or in
	// pooled slabs of up to the current batch size (SetBatch adjusts
	// it live), flushed early when the oldest queued task has
	// lingered. A worker pays the limiter and channel hop once per
	// submission and records its service in one RecordN. Slabs travel
	// as the unexported pointer type taskSlab, which no user task can
	// alias, so the worker's type switch is unambiguous.
	var slabs sync.Pool
	recycle := func(slab taskSlab) {
		clear(*slab)
		*slab = (*slab)[:0]
		slabs.Put(slab)
	}

	// submit hands one task (or slab) to a worker; finish waits for the
	// in-flight work to drain, called once by the dispatcher before the
	// output closes.
	var submit func(x any)
	var finish func()
	if noExec {
		pool := conc.NewPool(f.limit, poolBuf, func(x any) {
			t0 := time.Now()
			slab, ok := x.(taskSlab)
			if !ok {
				r, err := f.fn(ctx, x)
				f.meter.RecordN(1, time.Since(t0))
				if err != nil {
					fail(fmt.Errorf("farm: %w", err))
					return
				}
				select {
				case out <- r:
				case <-ctx.Done():
				}
				return
			}
			done := 0
			for _, v := range *slab {
				r, err := f.fn(ctx, v)
				done++
				if err != nil {
					f.meter.RecordN(int64(done), time.Since(t0))
					fail(fmt.Errorf("farm: %w", err))
					recycle(slab)
					return
				}
				select {
				case out <- r:
				case <-ctx.Done():
					f.meter.RecordN(int64(done), time.Since(t0))
					recycle(slab)
					return
				}
			}
			f.meter.RecordN(int64(done), time.Since(t0))
			recycle(slab)
		})
		submit = pool.Submit
		finish = pool.Close
	} else {
		// Executor mode: tasks never block (see internal/conc/steal) —
		// results land in a completion-order queue and the farm's
		// drainer goroutine owns the blocking sends plus the limiter
		// release, so a slow consumer backpressures the dispatcher
		// without parking a shared worker.
		ex := steal.Default()
		var inFlight sync.WaitGroup
		q := &unitQueue{notify: make(chan struct{}, 1)}
		drainDone := make(chan struct{})
		go func() { // drainer
			defer close(drainDone)
			dead := false // cancellation truncates the stream
			for {
				u, ok := q.next()
				if !ok {
					return
				}
				if u.send && !dead {
					select {
					case out <- u.v:
					case <-ctx.Done():
						dead = true
					}
				}
				if u.release {
					f.limit.Release()
					inFlight.Done()
				}
			}
		}()
		taskFn := func(x any) {
			t0 := time.Now()
			slab, ok := x.(taskSlab)
			if !ok {
				r, err := f.fn(ctx, x)
				f.meter.RecordN(1, time.Since(t0))
				if err != nil {
					fail(fmt.Errorf("farm: %w", err))
					q.put(unit{release: true})
					return
				}
				q.put(unit{v: r, send: true, release: true})
				return
			}
			done, n := 0, len(*slab)
			for i, v := range *slab {
				r, err := f.fn(ctx, v)
				done++
				if err != nil {
					f.meter.RecordN(int64(done), time.Since(t0))
					fail(fmt.Errorf("farm: %w", err))
					recycle(slab)
					q.put(unit{release: true})
					return
				}
				q.put(unit{v: r, send: true, release: i == n-1})
			}
			f.meter.RecordN(int64(done), time.Since(t0))
			recycle(slab)
		}
		submit = func(x any) {
			f.limit.Acquire()
			inFlight.Add(1)
			ex.Submit(steal.Task{Fn: taskFn, Arg: x})
		}
		finish = func() {
			inFlight.Wait()
			q.close()
			<-drainDone
		}
	}
	go func() {
		defer func() {
			finish()
			if firstErr == nil && ctx.Err() != nil {
				firstErr = ctx.Err()
			}
			if firstErr != nil {
				errs <- firstErr
			}
			close(errs)
			close(out)
			cancel()
		}()
		var cur taskSlab
		timer := time.NewTimer(time.Hour)
		timer.Stop()
		defer timer.Stop()
		var timerC <-chan time.Time
		flush := func() {
			submit(cur)
			cur = nil
			timerC = nil
		}
		for {
			// No slab open: the common state, and the whole loop at
			// batch 1. A two-case select (no timer arm) keeps the
			// per-task fast path as cheap as an unbatched dispatcher.
			if cur == nil {
				select {
				case v, ok := <-inputs:
					if !ok {
						return
					}
					batch := int(f.batch.Load())
					if batch <= 1 {
						submit(v)
						continue
					}
					if p, _ := slabs.Get().(taskSlab); p != nil {
						cur = p
					} else {
						cur = taskSlab(new([]any))
						*cur = make([]any, 0, 8)
					}
					*cur = append(*cur, v)
					// The linger clock anchors to the slab's oldest
					// task, which just arrived (batch > 1 here, so the
					// slab cannot already be full).
					timer.Reset(linger)
					timerC = timer.C
				case <-ctx.Done():
					return
				}
				continue
			}
			select {
			case v, ok := <-inputs:
				if !ok {
					flush()
					return
				}
				*cur = append(*cur, v)
				if len(*cur) >= int(f.batch.Load()) {
					timer.Stop()
					flush()
				}
			case <-timerC:
				flush()
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, errs
}

// Process runs the farm over a slice. In ordered mode the outputs align
// with the inputs; in unordered mode they arrive in completion order.
func (f *Farm) Process(ctx context.Context, inputs []any) ([]any, error) {
	in := make(chan any)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, errs := f.Run(ctx, in)
	var results []any
	for v := range out {
		results = append(results, v)
	}
	if err := <-errs; err != nil {
		return nil, err
	}
	if len(results) != len(inputs) {
		return nil, fmt.Errorf("farm: %d outputs for %d inputs", len(results), len(inputs))
	}
	return results, nil
}

// SetBatch changes the dispatch batch size (minimum 1); callable while
// running — the grain counterpart of SetWorkers, used by the live
// adaptive controller's granularity actuator. In ordered mode it
// requires the farm to have been built with Batch > 1 (the batched
// wiring is chosen at Run).
func (f *Farm) SetBatch(n int) error {
	if n < 1 {
		return fmt.Errorf("farm: SetBatch(%d) below 1", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opts.Batch = n
	if f.pl != nil {
		return f.pl.SetGrain(n)
	}
	f.batch.Store(int64(n))
	return nil
}

// Batch returns the current dispatch batch size.
func (f *Farm) Batch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		return f.pl.Grain()
	}
	return int(f.batch.Load())
}

// SetWorkers resizes the pool (minimum 1); callable while running.
func (f *Farm) SetWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("farm: SetWorkers(%d) below 1", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opts.Workers = n
	if f.pl != nil {
		return f.pl.SetReplicas(0, n)
	}
	if f.limit != nil {
		f.limit.SetLimit(n)
	}
	return nil
}

// Workers returns the current worker limit.
func (f *Farm) Workers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		return f.pl.Replicas(0)
	}
	if f.limit != nil {
		return f.limit.Limit()
	}
	return f.opts.Workers
}

// Totals returns the cumulative completed-task count and summed
// service time (see conc.Meter.Totals); the live adaptive sensor
// diffs two readings for windowed means.
func (f *Farm) Totals() (count int64, sum time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		return f.pl.StageTotals(0)
	}
	return f.meter.Totals()
}

// Stats snapshots the farm's counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		st := f.pl.Stats()[0]
		return Stats{
			Workers:     st.Replicas,
			Done:        st.Count,
			MeanService: st.MeanService,
			MaxService:  st.MaxService,
		}
	}
	count, mean, max := f.meter.Snapshot()
	return Stats{
		Workers:     f.opts.Workers,
		Done:        count,
		MeanService: mean,
		MaxService:  max,
	}
}
