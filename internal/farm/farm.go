// Package farm implements the task-farm skeleton, the pipeline's
// sibling pattern in the eSkel family and the building block behind
// stage replication: a dynamic pool of workers applies one function to
// a stream of independent tasks.
//
// The farm preserves input order on request (the default matches the
// pipeline's 1-for-1 discipline) and its worker count is resizable at
// run time — the live counterpart of the adaptivity engine's replicate
// action, exposed as a standalone skeleton so applications that are a
// single parallel stage need not wrap themselves in a pipeline.
//
// Like the pipeline, the unordered hot path runs persistent workers
// (no goroutine per task) and records service times in an atomic
// meter (no mutex per task). Ordered mode delegates to a one-stage
// pipeline — the degenerate chain of the stage-graph runtime
// (internal/topo), so a farm is literally a single graph node wired
// source→stage→sink.
package farm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridpipe/internal/conc"
	"gridpipe/internal/pipeline"
)

// Func is the worker computation. It must be safe for concurrent
// invocation.
type Func func(ctx context.Context, v any) (any, error)

// Options tune a Farm.
type Options struct {
	// Workers is the initial worker limit (default 1).
	Workers int
	// Buffer is the input buffer capacity (default the worker count).
	Buffer int
	// Unordered delivers results as they complete instead of in input
	// order. Ordered delivery (the default) matches Pipeline1for1.
	Unordered bool
}

// Stats is a snapshot of the farm's counters.
type Stats struct {
	Workers     int
	Done        int
	MeanService time.Duration
	MaxService  time.Duration
}

// Farm is a runnable task farm. Create with New; single-use like the
// pipeline skeleton.
type Farm struct {
	fn   Func
	opts Options

	mu    sync.Mutex
	ran   bool
	pl    *pipeline.Pipeline // ordered mode delegates to a 1-stage pipeline
	meter conc.Meter         // unordered-mode service times
	limit *conc.Limiter
}

// New validates and builds a farm.
func New(fn Func, opts Options) (*Farm, error) {
	if fn == nil {
		return nil, fmt.Errorf("farm: nil function")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Buffer <= 0 {
		opts.Buffer = opts.Workers
	}
	return &Farm{fn: fn, opts: opts}, nil
}

// Run starts the farm over the input stream. Semantics mirror
// pipeline.Pipeline.Run: the output channel closes after the inputs
// drain (or on failure/cancellation); the error channel carries at most
// one error.
func (f *Farm) Run(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	f.mu.Lock()
	if f.ran {
		f.mu.Unlock()
		panic("farm: Run called twice")
	}
	f.ran = true

	if !f.opts.Unordered {
		pl, err := pipeline.New(pipeline.Stage{
			Name:     "farm",
			Fn:       pipeline.Func(f.fn),
			Replicas: f.opts.Workers,
			Buffer:   f.opts.Buffer,
		})
		if err != nil {
			// New validated everything that pipeline.New checks.
			panic(fmt.Sprintf("farm: internal construction error: %v", err))
		}
		f.pl = pl
		f.mu.Unlock()
		return pl.Run(ctx, inputs)
	}

	// Unordered mode: a resizable pool of persistent workers. The
	// option fields are captured under the lock: a concurrent
	// SetWorkers may rewrite opts.Workers the instant Run releases it
	// (the limiter, not the pool buffer, bounds concurrency anyway).
	f.limit = conc.NewLimiter(f.opts.Workers)
	outBuf, poolBuf := f.opts.Buffer, 2*f.opts.Workers
	f.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	out := make(chan any, outBuf)
	errs := make(chan error, 1)
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	pool := conc.NewPool(f.limit, poolBuf, func(v any) {
		t0 := time.Now()
		r, err := f.fn(ctx, v)
		f.meter.Record(time.Since(t0))
		if err != nil {
			fail(fmt.Errorf("farm: %w", err))
			return
		}
		select {
		case out <- r:
		case <-ctx.Done():
		}
	})
	go func() {
		defer func() {
			pool.Close()
			if firstErr == nil && ctx.Err() != nil {
				firstErr = ctx.Err()
			}
			if firstErr != nil {
				errs <- firstErr
			}
			close(errs)
			close(out)
			cancel()
		}()
		for {
			var v any
			var ok bool
			select {
			case v, ok = <-inputs:
			case <-ctx.Done():
				ok = false
			}
			if !ok {
				return
			}
			pool.Submit(v)
		}
	}()
	return out, errs
}

// Process runs the farm over a slice. In ordered mode the outputs align
// with the inputs; in unordered mode they arrive in completion order.
func (f *Farm) Process(ctx context.Context, inputs []any) ([]any, error) {
	in := make(chan any)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, errs := f.Run(ctx, in)
	var results []any
	for v := range out {
		results = append(results, v)
	}
	if err := <-errs; err != nil {
		return nil, err
	}
	if len(results) != len(inputs) {
		return nil, fmt.Errorf("farm: %d outputs for %d inputs", len(results), len(inputs))
	}
	return results, nil
}

// SetWorkers resizes the pool (minimum 1); callable while running.
func (f *Farm) SetWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("farm: SetWorkers(%d) below 1", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opts.Workers = n
	if f.pl != nil {
		return f.pl.SetReplicas(0, n)
	}
	if f.limit != nil {
		f.limit.SetLimit(n)
	}
	return nil
}

// Workers returns the current worker limit.
func (f *Farm) Workers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		return f.pl.Replicas(0)
	}
	if f.limit != nil {
		return f.limit.Limit()
	}
	return f.opts.Workers
}

// Totals returns the cumulative completed-task count and summed
// service time (see conc.Meter.Totals); the live adaptive sensor
// diffs two readings for windowed means.
func (f *Farm) Totals() (count int64, sum time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		return f.pl.StageTotals(0)
	}
	return f.meter.Totals()
}

// Stats snapshots the farm's counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pl != nil {
		st := f.pl.Stats()[0]
		return Stats{
			Workers:     st.Replicas,
			Done:        st.Count,
			MeanService: st.MeanService,
			MaxService:  st.MaxService,
		}
	}
	count, mean, max := f.meter.Snapshot()
	return Stats{
		Workers:     f.opts.Workers,
		Done:        count,
		MeanService: mean,
		MaxService:  max,
	}
}
