package farm

// Batched dispatch: tasks cross the farm boundary in slabs without
// changing the skeleton's contract — same outputs, same 1-for-1
// discipline, same error and cancel behaviour — and the linger bound
// keeps sparse streams from waiting on slab fill.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"
)

func TestBatchedUnorderedDeliversAll(t *testing.T) {
	for _, batch := range []int{2, 7, 64} {
		f, err := New(func(_ context.Context, v any) (any, error) {
			return v.(int) * 3, nil
		}, Options{Workers: 4, Unordered: true, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]any, 200)
		for i := range inputs {
			inputs[i] = i
		}
		got, err := f.Process(context.Background(), inputs)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		ints := make([]int, len(got))
		for i, v := range got {
			ints[i] = v.(int)
		}
		sort.Ints(ints)
		for i, v := range ints {
			if v != i*3 {
				t.Fatalf("batch %d: sorted output %d is %d, want %d", batch, i, v, i*3)
			}
		}
	}
}

func TestBatchedOrderedPreservesOrder(t *testing.T) {
	f, err := New(func(_ context.Context, v any) (any, error) {
		return v.(int) + 100, nil
	}, Options{Workers: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 150)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := f.Process(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v.(int) != i+100 {
			t.Fatalf("output %d: got %v, want %d", i, v, i+100)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ident := func(_ context.Context, v any) (any, error) { return v, nil }
	if _, err := New(ident, Options{Batch: -1}); err == nil {
		t.Error("negative batch accepted")
	}
	f, err := New(ident, Options{Batch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.Batch() != 1 {
		t.Errorf("zero batch defaulted to %d, want 1", f.Batch())
	}
	if err := f.SetBatch(0); err == nil {
		t.Error("SetBatch(0) accepted")
	}
	if err := f.SetBatch(8); err != nil {
		t.Fatal(err)
	}
	if f.Batch() != 8 {
		t.Errorf("Batch() = %d after SetBatch(8)", f.Batch())
	}
}

func TestSetBatchWhileRunning(t *testing.T) {
	f, err := New(func(_ context.Context, v any) (any, error) {
		return v, nil
	}, Options{Workers: 2, Unordered: true, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any)
	out, errs := f.Run(context.Background(), in)
	go func() {
		defer close(in)
		for i := 0; i < 300; i++ {
			in <- i
			if i == 100 {
				if err := f.SetBatch(1); err != nil {
					panic(err)
				}
			}
			if i == 200 {
				if err := f.SetBatch(32); err != nil {
					panic(err)
				}
			}
		}
	}()
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if count != 300 {
		t.Fatalf("lost items: %d of 300", count)
	}
}

func TestBatchedErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	f, err := New(func(_ context.Context, v any) (any, error) {
		if v.(int) == 37 {
			return nil, boom
		}
		return v, nil
	}, Options{Workers: 2, Unordered: true, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 100)
	for i := range inputs {
		inputs[i] = i
	}
	if _, err := f.Process(context.Background(), inputs); err == nil {
		t.Fatal("expected mid-slab error to surface")
	}
}

func TestFarmTrickleNeverWaitsLongerThanLinger(t *testing.T) {
	const (
		batch  = 64
		linger = 10 * time.Millisecond
		gap    = 25 * time.Millisecond
		items  = 12
	)
	f, err := New(func(_ context.Context, v any) (any, error) {
		return v, nil
	}, Options{Workers: 4, Unordered: true, Batch: batch, Linger: linger})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any)
	out, errs := f.Run(context.Background(), in)
	sent := make([]time.Time, items)
	go func() {
		defer close(in)
		for i := 0; i < items; i++ {
			sent[i] = time.Now()
			in <- i
			time.Sleep(gap)
		}
	}()
	// One task per 25 ms against a 64-task slab: fill would take
	// ~1.6 s, the linger must flush within ~10 ms. Generous slack for
	// loaded single-CPU runners, still far below fill time.
	const bound = 250 * time.Millisecond
	count := 0
	for v := range out {
		if d := time.Since(sent[v.(int)]); d > bound {
			t.Errorf("task %v waited %v, want < %v (slab fill would be %v)",
				v, d, bound, time.Duration(batch)*gap)
		}
		count++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if count != items {
		t.Fatalf("lost tasks: %d of %d", count, items)
	}
}

// TestFarmBatchWorkersConcurrent is the mid-flight actuation
// regression test (pipeline counterpart:
// TestGrainResizeConcurrentMidFlight): SetBatch racing SetWorkers on a
// running ordered farm must stay race-free and never drop or reorder
// a task.
func TestFarmBatchWorkersConcurrent(t *testing.T) {
	f, err := New(func(_ context.Context, v any) (any, error) {
		return v, nil
	}, Options{Workers: 2, Buffer: 16, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	const items = 30000
	in := make(chan any, 64)
	out, errs := f.Run(context.Background(), in)
	go func() {
		for i := 0; i < items; i++ {
			in <- i
		}
		close(in)
	}()
	stop := make(chan struct{})
	actuated := make(chan struct{})
	go func() {
		defer close(actuated)
		batches := []int{1, 2, 8, 32}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				if err := f.SetBatch(batches[i%len(batches)]); err != nil {
					t.Errorf("SetBatch: %v", err)
					return
				}
			} else {
				if err := f.SetWorkers(1 + i%4); err != nil {
					t.Errorf("SetWorkers: %v", err)
					return
				}
			}
			runtime.Gosched()
		}
	}()
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("output %d: got %v, want %d (dropped or reordered under concurrent actuation)", seen, v, seen)
		}
		seen++
	}
	close(stop)
	<-actuated
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != items {
		t.Fatalf("lost tasks: %d of %d", seen, items)
	}
}
