package farm

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// hammerWorkers drives SetWorkers up and down from a separate
// goroutine until stop closes — the live adaptive controller's
// actuation pattern at a hostile cadence.
func hammerWorkers(t *testing.T, f *Farm, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.SetWorkers(1 + rng.Intn(10)); err != nil {
				panic(err)
			}
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
}

// TestResizeUnderFlightOrdered hammers SetWorkers while an ordered
// farm streams: 1-for-1 in-order delivery must survive (ordered mode
// delegates to the pipeline's reorder ring). Run under -race in CI.
func TestResizeUnderFlightOrdered(t *testing.T) {
	f, err := New(func(ctx context.Context, v any) (any, error) {
		d := time.Duration(v.(int)%5) * time.Microsecond
		t0 := time.Now()
		for time.Since(t0) < d {
		}
		return v, nil
	}, Options{Workers: 3, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammerWorkers(t, f, stop, &wg)

	const tasks = 5000
	in := make(chan any, 32)
	go func() {
		defer close(in)
		for i := 0; i < tasks; i++ {
			in <- i
		}
	}()
	out, errs := f.Run(context.Background(), in)
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("out of order: got %v at position %d", v, seen)
		}
		seen++
	}
	close(stop)
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != tasks {
		t.Fatalf("delivered %d of %d", seen, tasks)
	}
}

// TestResizeUnderFlightUnordered hammers SetWorkers on an unordered
// farm: every task must be delivered exactly once.
func TestResizeUnderFlightUnordered(t *testing.T) {
	f, err := New(func(ctx context.Context, v any) (any, error) {
		return v, nil
	}, Options{Workers: 2, Buffer: 8, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammerWorkers(t, f, stop, &wg)

	const tasks = 5000
	in := make(chan any, 32)
	go func() {
		defer close(in)
		for i := 0; i < tasks; i++ {
			in <- i
		}
	}()
	out, errs := f.Run(context.Background(), in)
	got := make([]bool, tasks)
	n := 0
	for v := range out {
		i := v.(int)
		if got[i] {
			t.Fatalf("task %d delivered twice", i)
		}
		got[i] = true
		n++
	}
	close(stop)
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if n != tasks {
		t.Fatalf("delivered %d of %d", n, tasks)
	}
}

// TestFarmTotals: the live sensor's Totals surface in both modes.
func TestFarmTotals(t *testing.T) {
	for _, unordered := range []bool{false, true} {
		f, err := New(func(ctx context.Context, v any) (any, error) {
			return v, nil
		}, Options{Workers: 2, Unordered: unordered})
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]any, 200)
		for i := range inputs {
			inputs[i] = i
		}
		if _, err := f.Process(context.Background(), inputs); err != nil {
			t.Fatal(err)
		}
		count, sum := f.Totals()
		if count != 200 {
			t.Fatalf("unordered=%t: Totals count = %d, want 200", unordered, count)
		}
		if sum < 0 {
			t.Fatalf("unordered=%t: Totals sum = %v", unordered, sum)
		}
		if w := f.Workers(); w != 2 {
			t.Fatalf("unordered=%t: Workers = %d", unordered, w)
		}
	}
}
