package pipeline

// The executor equivalence property: for any stage graph, any grain,
// and either wiring of the stage workers — dedicated per-stage pools
// (DisableExecutor, the pre-executor oracle) or the shared
// work-stealing executor — the pipeline delivers exactly the same
// ordered output. The executor may only change *where* stage work
// runs, never *what* comes out or in which order. Runs under -race in
// its own named CI step.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gridpipe/internal/conc/steal"
)

func TestExecutorMatchesDedicatedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const items = 300
	inputs := make([]any, items)
	for i := range inputs {
		inputs[i] = i
	}
	for trial := 0; trial < 10; trial++ {
		stages, edges := randTopology(r)
		grain := []int{1, 1, 3, 16}[r.Intn(4)]

		oracle := propBuild(t, stages, edges, grain)
		oracle.DisableExecutor()
		want, err := oracle.Process(context.Background(), inputs)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}

		// Two executor wirings: the process-wide default and a
		// dedicated small worker set (steals and global grabs are far
		// more likely when workers are scarce relative to stages).
		for _, dedicated := range []bool{false, true} {
			p := propBuild(t, stages, edges, grain)
			var ex *steal.Executor
			if dedicated {
				ex = steal.New(2)
				p.UseExecutor(ex)
			}
			got, err := p.Process(context.Background(), inputs)
			if dedicated {
				ex.Close()
			}
			if err != nil {
				t.Fatalf("trial %d executor (dedicated=%v): %v", trial, dedicated, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d (dedicated=%v): %d outputs, oracle delivered %d (edges %v)",
					trial, dedicated, len(got), len(want), edges)
			}
			for i := range got {
				if got[i].(int) != want[i].(int) {
					t.Fatalf("trial %d (dedicated=%v) output %d: got %v, oracle %v (grain %d, edges %v)",
						trial, dedicated, i, got[i], want[i], grain, edges)
				}
			}
		}
	}
}

// TestExecutorCancelPrefixProperty: under mid-stream cancellation the
// executor wiring must deliver an ordered prefix of the oracle's
// output — truncation is allowed, corruption and reordering are not.
func TestExecutorCancelPrefixProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const items = 400
	for trial := 0; trial < 6; trial++ {
		stages, edges := randTopology(r)
		want := make([]int, items)
		for i := range want {
			want[i] = propExpected(stages, edges, i)
		}
		cancelAt := 1 + r.Intn(items/2)
		for _, grain := range []int{1, 16} {
			p := propBuild(t, stages, edges, grain)
			ex := steal.New(2)
			p.UseExecutor(ex)
			ctx, cancel := context.WithCancel(context.Background())
			in := make(chan any, 64)
			out, errs := p.Run(ctx, in)
			go func() {
				defer close(in)
				for i := 0; i < items; i++ {
					select {
					case in <- i:
					case <-ctx.Done():
						return
					}
				}
			}()
			seen := 0
			for v := range out {
				if seen < len(want) && v.(int) != want[seen] {
					t.Fatalf("trial %d grain %d output %d: got %v want %v (cancel at %d, edges %v)",
						trial, grain, seen, v, want[seen], cancelAt, edges)
				}
				seen++
				if seen == cancelAt {
					cancel()
				}
			}
			err := <-errs
			cancel()
			ex.Close()
			if err != nil && err != context.Canceled {
				t.Fatalf("trial %d grain %d: unexpected error %v", trial, grain, err)
			}
		}
	}
}

// TestGrainResizeConcurrentMidFlight is the mid-flight actuation
// regression test: SetGrain/SetGrainAt racing SetReplicas on a running
// batched pipeline must stay race-free and never drop or reorder an
// item. (The farm counterpart is TestFarmBatchWorkersConcurrent.)
func TestGrainResizeConcurrentMidFlight(t *testing.T) {
	ident := func(_ context.Context, v any) (any, error) { return v, nil }
	p, err := New(
		Stage{Name: "a", Fn: ident, Replicas: 2, Buffer: 16},
		Stage{Name: "b", Fn: ident, Replicas: 2, Buffer: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableBatchEdges([]int{4, 8}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	const items = 30000
	in := make(chan any, 64)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < items; i++ {
			in <- i
		}
		close(in)
	}()
	stop := make(chan struct{})
	actuated := make(chan struct{})
	go func() {
		defer close(actuated)
		r := rand.New(rand.NewSource(17))
		grains := []int{1, 2, 4, 16, 64}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				if err := p.SetGrainAt(i%p.GrainBoundaries(), grains[r.Intn(len(grains))]); err != nil {
					t.Errorf("SetGrainAt: %v", err)
					return
				}
			case 1:
				if err := p.SetGrain(grains[r.Intn(len(grains))]); err != nil {
					t.Errorf("SetGrain: %v", err)
					return
				}
			case 2:
				if err := p.SetReplicas(i%2, 1+r.Intn(4)); err != nil {
					t.Errorf("SetReplicas: %v", err)
					return
				}
			}
			runtime.Gosched()
		}
	}()
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("output %d: got %v, want %d (dropped or reordered under concurrent actuation)", seen, v, seen)
		}
		seen++
	}
	close(stop)
	<-actuated
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != items {
		t.Fatalf("lost items: %d of %d", seen, items)
	}
}
