package pipeline

// Per-edge granularity: vector validation, bridge detection (only
// edges on every entry→exit path may re-slab), live per-boundary
// actuation, and the equivalence of arbitrary per-edge grain vectors
// with the sequential oracle.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"gridpipe/internal/topo"
)

func edgeIdent(_ context.Context, v any) (any, error) { return v, nil }

func chain2(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(
		Stage{Name: "a", Fn: edgeIdent, Replicas: 2, Buffer: 8},
		Stage{Name: "b", Fn: edgeIdent, Replicas: 2, Buffer: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnableBatchEdgesValidation(t *testing.T) {
	// Wrong vector length: a 2-stage chain has 1 edge → wants 2 grains.
	if err := chain2(t).EnableBatchEdges([]int{4}, 0); err == nil {
		t.Fatal("short grain vector should fail")
	}
	if err := chain2(t).EnableBatchEdges([]int{4, 8, 16}, 0); err == nil {
		t.Fatal("long grain vector should fail")
	}
	// Grains below 1.
	if err := chain2(t).EnableBatchEdges([]int{4, 0}, 0); err == nil {
		t.Fatal("grain 0 should fail")
	}
	// After Run.
	p := chain2(t)
	in := make(chan any)
	close(in)
	out, errs := p.Run(context.Background(), in)
	for range out {
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := p.EnableBatchEdges([]int{4, 8}, 0); err == nil {
		t.Fatal("EnableBatchEdges after Run should fail")
	}
}

// diamond builds the 4-stage split/merge graph 0→{1,2}→3 in which no
// edge is a bridge: removing any one edge leaves entry connected to
// exit through the other branch.
func diamond(t *testing.T) *Pipeline {
	t.Helper()
	stages := []Stage{
		{Name: "s0", Fn: edgeIdent, Replicas: 1, Buffer: 4},
		{Name: "s1", Fn: edgeIdent, Replicas: 1, Buffer: 4},
		{Name: "s2", Fn: edgeIdent, Replicas: 1, Buffer: 4},
		{Name: "s3", Fn: edgeIdent, Replicas: 1, Buffer: 4},
	}
	edges := []topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}
	p, err := NewGraph(stages, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnableBatchEdgesBridgesOnly(t *testing.T) {
	// On the diamond every edge is a non-bridge: a uniform vector is
	// the only legal one, and no extra boundary becomes adjustable.
	p := diamond(t)
	if err := p.EnableBatchEdges([]int{4, 4, 4, 4, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if nb := p.GrainBoundaries(); nb != 1 {
		t.Fatalf("diamond GrainBoundaries = %d, want 1 (no bridges)", nb)
	}
	// A non-uniform vector on a non-bridge edge must be rejected: it
	// would misalign the zip at the merge.
	if err := diamond(t).EnableBatchEdges([]int{4, 8, 4, 4, 4}, 0); err == nil {
		t.Fatal("re-slabbing a non-bridge edge should fail")
	}

	// On a chain every edge is a bridge: the whole vector is live.
	c, err := New(
		Stage{Name: "a", Fn: edgeIdent, Replicas: 1, Buffer: 4},
		Stage{Name: "b", Fn: edgeIdent, Replicas: 1, Buffer: 4},
		Stage{Name: "c", Fn: edgeIdent, Replicas: 1, Buffer: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableBatchEdges([]int{2, 4, 8}, 0); err != nil {
		t.Fatal(err)
	}
	if nb := c.GrainBoundaries(); nb != 3 {
		t.Fatalf("chain GrainBoundaries = %d, want 3", nb)
	}
	if be := c.BoundaryEdge(0); be != -1 {
		t.Fatalf("BoundaryEdge(0) = %d, want -1 (the head)", be)
	}
	if be := c.BoundaryEdge(1); be != 0 {
		t.Fatalf("BoundaryEdge(1) = %d, want edge 0", be)
	}
	if g := c.GrainAt(2); g != 8 {
		t.Fatalf("GrainAt(2) = %d, want 8", g)
	}
	want := []int{2, 4, 8}
	for i, g := range c.EdgeGrains() {
		if g != want[i] {
			t.Fatalf("EdgeGrains() = %v, want %v", c.EdgeGrains(), want)
		}
	}
}

func TestEnableBatchEdgesLiveSetGrainAt(t *testing.T) {
	p := chain2(t)
	if err := p.EnableBatchEdges([]int{4, 16}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	const items = 5000
	in := make(chan any, 64)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < items; i++ {
			in <- i
			if i == items/3 {
				if err := p.SetGrainAt(0, 8); err != nil {
					t.Errorf("SetGrainAt(0): %v", err)
				}
				if err := p.SetGrainAt(1, 2); err != nil {
					t.Errorf("SetGrainAt(1): %v", err)
				}
			}
		}
		close(in)
	}()
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("output %d: got %v (reordered across a live regrain)", seen, v)
		}
		seen++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != items {
		t.Fatalf("lost items: %d of %d", seen, items)
	}
	if g0, g1 := p.GrainAt(0), p.GrainAt(1); g0 != 8 || g1 != 2 {
		t.Fatalf("grains after SetGrainAt = [%d %d], want [8 2]", g0, g1)
	}
	// Out-of-range boundaries and sub-1 grains are rejected.
	if err := p.SetGrainAt(2, 4); err == nil {
		t.Fatal("SetGrainAt on boundary 2 of 2 should fail")
	}
	if err := p.SetGrainAt(0, 0); err == nil {
		t.Fatal("SetGrainAt grain 0 should fail")
	}
}

// TestEdgeGrainsMatchUnbatchedProperty: random chains under random
// per-edge grain vectors deliver exactly the sequential oracle's
// ordered output — re-slabbing at bridges changes when items cross,
// never what arrives.
func TestEdgeGrainsMatchUnbatchedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const items = 300
	ladder := []int{1, 2, 3, 7, 16, 64}
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(4)
		stages := make([]Stage, n)
		for i := range stages {
			stages[i] = Stage{
				Name:     "s",
				Fn:       propStageFn(i),
				Replicas: 1 + r.Intn(3),
				Buffer:   1 + r.Intn(8),
			}
		}
		var edges []topo.Edge
		for i := 0; i+1 < n; i++ {
			edges = append(edges, topo.Edge{From: i, To: i + 1})
		}
		grains := make([]int, n)
		for i := range grains {
			grains[i] = ladder[r.Intn(len(ladder))]
		}
		want := make([]int, items)
		for i := range want {
			want[i] = propExpected(stages, edges, i)
		}
		inputs := make([]any, items)
		for i := range inputs {
			inputs[i] = i
		}
		p, err := NewGraph(stages, edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.EnableBatchEdges(grains, time.Millisecond); err != nil {
			t.Fatalf("trial %d grains %v: %v", trial, grains, err)
		}
		got, err := p.Process(context.Background(), inputs)
		if err != nil {
			t.Fatalf("trial %d grains %v: %v", trial, grains, err)
		}
		if len(got) != items {
			t.Fatalf("trial %d grains %v: %d outputs for %d inputs", trial, grains, len(got), items)
		}
		for i, v := range got {
			if v.(int) != want[i] {
				t.Fatalf("trial %d grains %v output %d: got %v want %v", trial, grains, i, v, want[i])
			}
		}
	}
}
