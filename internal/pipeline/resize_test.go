package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gridpipe/internal/topo"
)

// hammerReplicas drives SetReplicas on every stage up and down from a
// separate goroutine until stop is closed — the live adaptive
// controller's actuation pattern, compressed to its most hostile
// cadence.
func hammerReplicas(p *Pipeline, stages int, stop <-chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st := i % stages
			n := 1 + rng.Intn(8)
			if err := p.SetReplicas(st, n); err != nil {
				panic(fmt.Sprintf("SetReplicas(%d, %d): %v", st, n, err))
			}
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
}

// runOrdered streams n items through the pipeline and asserts strict
// 1-for-1 in-order delivery.
func runOrdered(t *testing.T, p *Pipeline, n int) {
	t.Helper()
	in := make(chan any, 32)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- i
		}
	}()
	out, errs := p.Run(context.Background(), in)
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("out of order: got %v at position %d", v, seen)
		}
		seen++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("delivered %d of %d items", seen, n)
	}
}

// jitterStage busy-waits a pseudo-random few microseconds so replica
// churn actually overlaps in-flight work.
func jitterStage(seed int) Func {
	return func(ctx context.Context, v any) (any, error) {
		d := time.Duration((v.(int)*seed)%5) * time.Microsecond
		t0 := time.Now()
		for time.Since(t0) < d {
		}
		return v, nil
	}
}

// TestResizeUnderFlightChain hammers every stage's replica limit while
// a chain pipeline streams; ordering must survive any interleaving of
// grows and shrinks. Run with -race (the CI race job does) to check
// the limiter/pool/reorder machinery, not just the observable order.
func TestResizeUnderFlightChain(t *testing.T) {
	p, err := New(
		Stage{Name: "a", Fn: jitterStage(3), Replicas: 2, Buffer: 4},
		Stage{Name: "b", Fn: jitterStage(5), Replicas: 1, Buffer: 4},
		Stage{Name: "c", Fn: jitterStage(7), Replicas: 3, Buffer: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammerReplicas(p, 3, stop, &wg)
	runOrdered(t, p, 5000)
	close(stop)
	wg.Wait()
}

// TestResizeUnderFlightGraph does the same over a diamond
// (split/merge) pipeline: fan-out broadcast, fan-in zip, and the
// merge stage's []any parts must all tolerate concurrent resizes.
func TestResizeUnderFlightGraph(t *testing.T) {
	join := func(ctx context.Context, v any) (any, error) {
		parts := v.([]any)
		if len(parts) != 2 || parts[0].(int) != parts[1].(int) {
			return nil, fmt.Errorf("bad join parts %v", parts)
		}
		return parts[0], nil
	}
	stages := []Stage{
		{Name: "head", Fn: jitterStage(3), Replicas: 2, Buffer: 4},
		{Name: "left", Fn: jitterStage(5), Replicas: 1, Buffer: 4},
		{Name: "right", Fn: jitterStage(7), Replicas: 3, Buffer: 4},
		{Name: "tail", Fn: join, Replicas: 2, Buffer: 4},
	}
	edges := []topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}
	p, err := NewGraph(stages, edges)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammerReplicas(p, 4, stop, &wg)
	runOrdered(t, p, 5000)
	close(stop)
	wg.Wait()
}

// TestResizeExtremesMidStream drives the limits hard in one direction
// at a time: collapse everything to 1 mid-stream, then blow it up to
// 16, with items in flight at each flip.
func TestResizeExtremesMidStream(t *testing.T) {
	p, err := New(
		Stage{Name: "a", Fn: jitterStage(3), Replicas: 8, Buffer: 8},
		Stage{Name: "b", Fn: jitterStage(5), Replicas: 8, Buffer: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	const items = 4000
	in := make(chan any)
	go func() {
		defer close(in)
		for i := 0; i < items; i++ {
			in <- i
		}
	}()
	out, errs := p.Run(context.Background(), in)
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("out of order: got %v at position %d", v, seen)
		}
		seen++
		switch seen {
		case items / 4:
			for st := 0; st < 2; st++ {
				if err := p.SetReplicas(st, 1); err != nil {
					t.Fatal(err)
				}
			}
		case items / 2:
			for st := 0; st < 2; st++ {
				if err := p.SetReplicas(st, 16); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != items {
		t.Fatalf("delivered %d of %d", seen, items)
	}
	if got := p.Replicas(1); got != 16 {
		t.Fatalf("final replicas = %d, want 16", got)
	}
}

// TestStageTotalsMonotonic: the live sensor's Totals surface must be
// cumulative and consistent with Stats.
func TestStageTotalsMonotonic(t *testing.T) {
	p, err := New(Stage{Name: "a", Fn: jitterStage(3), Replicas: 2, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	runOrdered(t, p, 500)
	count, sum := p.StageTotals(0)
	if count != 500 {
		t.Fatalf("StageTotals count = %d, want 500", count)
	}
	if sum < 0 {
		t.Fatalf("StageTotals sum = %v", sum)
	}
	if st := p.Stats()[0]; st.Count != 500 {
		t.Fatalf("Stats count = %d", st.Count)
	}
}
