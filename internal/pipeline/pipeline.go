// Package pipeline is the live (goroutine/channel) implementation of
// the pipeline skeleton: the same 1-for-1 discipline the simulator
// models, executing real Go functions on the local machine.
//
// Semantics (eSkel Pipeline1for1, generalised to a stage graph):
//   - every input passes through every stage (along every edge of the
//     stage graph — see internal/topo);
//   - each stage produces exactly one output per input; a stage with
//     several out-edges broadcasts its output along each (a split), a
//     stage with several in-edges receives a []any holding one part
//     per in-edge, in edge order (a merge);
//   - outputs are delivered in input order, even when a stage is
//     replicated across several concurrent workers: each edge carries
//     a sequence-ordered stream, restored by the producing stage's
//     reorder ring, so a merge joins its in-streams by zipping them —
//     ordering survives fan-in by construction.
//
// Stage parallelism is dynamic: SetReplicas adjusts a stage's worker
// limit while the pipeline runs, which is the live counterpart of the
// simulator's replicate action.
//
// The per-item hot path is allocation-free in steady state: each stage
// runs a pool of persistent workers (spawned lazily up to the replica
// limit's high-water mark, never one goroutine per item), the reorder
// buffer is a sequence-indexed ring rather than a map, and service
// times accumulate in atomic meters rather than under a mutex. Chains
// built with New take exactly the historical linear wiring; only
// graphs with actual splits/merges pay the zip/broadcast goroutines
// (and one []any per item per merge boundary).
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/conc"
	"gridpipe/internal/conc/steal"
	"gridpipe/internal/ring"
	"gridpipe/internal/topo"
)

// Func is the computation of one stage. It must be safe for concurrent
// invocation when the stage is replicated.
type Func func(ctx context.Context, v any) (any, error)

// Stage describes one stage of a live pipeline.
type Stage struct {
	// Name labels the stage in stats; defaults to "stageN".
	Name string
	// Fn is the stage computation (required).
	Fn Func
	// Replicas is the initial worker limit (default 1).
	Replicas int
	// Buffer is the capacity of the stage's input channel (default 1),
	// the bounded inter-stage buffer of the skeleton.
	Buffer int
}

// StageStats is a snapshot of one stage's live measurements.
type StageStats struct {
	Name        string
	Count       int
	Replicas    int
	MeanService time.Duration
	MaxService  time.Duration
}

// Pipeline is a runnable live pipeline. Create with New (a linear
// chain) or NewGraph (an arbitrary stage DAG); a Pipeline is
// single-use: Run (or Process) may be called once.
type Pipeline struct {
	stages []Stage
	edges  []topo.Edge // data-flow arcs; a chain for New
	limits []*conc.Limiter
	meters []*conc.Meter
	ran    bool
	mu     sync.Mutex

	// Batched-boundary state (see batch.go). batchOn selects the wiring
	// at Run; grain and linger are read atomically by the head batcher
	// so SetGrain actuates while the pipeline runs.
	batchOn bool
	grain   atomic.Int64
	linger  atomic.Int64 // nanoseconds
	slabs   sync.Pool    // *batch

	// Per-boundary grain state (see edgegrain.go). Non-nil edgeGrains
	// means EnableBatchEdges: one atomic grain per boundary (0 = head,
	// 1+ei = edge ei), regrain marking the bridge edges whose sinks
	// re-slab, actBounds listing the independently walkable boundaries.
	edgeGrains []atomic.Int64
	regrain    []bool
	actBounds  []int

	// Shared work-stealing executor state. Stage work runs as tasks on
	// the process-wide steal.Default() worker set (replica counts act
	// as in-flight limits); exec overrides the executor, noExec reverts
	// to the historical dedicated per-stage pools.
	exec   *steal.Executor
	noExec bool

	// carriers pools the *seqItem boxes the unbatched executor path
	// submits as task arguments, so the per-item hot path allocates
	// nothing in steady state.
	carriers sync.Pool
}

// UseExecutor points the pipeline at a specific work-stealing executor
// (tests and benchmarks isolate worker sets this way). Call before
// Run; nil reselects the process-wide default.
func (p *Pipeline) UseExecutor(e *steal.Executor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exec = e
	p.noExec = false
}

// DisableExecutor reverts the pipeline to dedicated per-stage worker
// pools — the pre-executor wiring, kept as the oracle half of the
// executor-on == executor-off equivalence property. Call before Run.
func (p *Pipeline) DisableExecutor() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exec = nil
	p.noExec = true
}

// executor resolves the worker set Run dispatches stage tasks to; nil
// means dedicated per-stage pools.
func (p *Pipeline) executor() *steal.Executor {
	if p.noExec {
		return nil
	}
	if p.exec != nil {
		return p.exec
	}
	return steal.Default()
}

// New validates the stage list and builds a linear pipeline: stage i
// feeds stage i+1.
func New(stages ...Stage) (*Pipeline, error) {
	var edges []topo.Edge
	for i := 0; i+1 < len(stages); i++ {
		edges = append(edges, topo.Edge{From: i, To: i + 1})
	}
	return NewGraph(stages, edges)
}

// NewGraph validates the stages and edges and builds a stage-graph
// pipeline. The edge set must satisfy the internal/topo structural
// contract: stages listed in topological order (From < To on every
// edge), one entry (stage 0), one exit (the last stage), every stage
// on an entry→exit path. A stage with several in-edges receives a
// []any of parts in in-edge order.
func NewGraph(stages []Stage, edges []topo.Edge) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	p := &Pipeline{
		stages: make([]Stage, len(stages)),
		edges:  append([]topo.Edge(nil), edges...),
	}
	copy(p.stages, stages)
	tg := &topo.Graph{Stages: make([]topo.Stage, len(stages)), Edges: p.edges}
	for i := range p.stages {
		st := &p.stages[i]
		if st.Fn == nil {
			return nil, fmt.Errorf("pipeline: stage %d has no function", i)
		}
		if st.Name == "" {
			st.Name = fmt.Sprintf("stage%d", i)
		}
		if st.Replicas <= 0 {
			st.Replicas = 1
		}
		if st.Buffer <= 0 {
			st.Buffer = 1
		}
		tg.Stages[i] = topo.Stage{Name: st.Name}
		p.limits = append(p.limits, conc.NewLimiter(st.Replicas))
		p.meters = append(p.meters, &conc.Meter{})
	}
	if err := tg.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NumStages returns the stage count.
func (p *Pipeline) NumStages() int { return len(p.stages) }

// SetReplicas changes the worker limit of stage i (minimum 1). Safe to
// call while the pipeline runs; shrinking takes effect as in-flight
// items finish.
func (p *Pipeline) SetReplicas(i, n int) error {
	if i < 0 || i >= len(p.stages) {
		return fmt.Errorf("pipeline: SetReplicas on invalid stage %d", i)
	}
	if n < 1 {
		return fmt.Errorf("pipeline: SetReplicas(%d) below 1", n)
	}
	p.limits[i].SetLimit(n)
	return nil
}

// Replicas returns the current worker limit of stage i.
func (p *Pipeline) Replicas(i int) int { return p.limits[i].Limit() }

// StageTotals returns stage i's cumulative completed-item count and
// summed service time. The live adaptive sensor diffs two readings to
// get windowed mean service times without the pipeline keeping any
// per-window state.
func (p *Pipeline) StageTotals(i int) (count int64, sum time.Duration) {
	return p.meters[i].Totals()
}

// Stats snapshots per-stage counters.
func (p *Pipeline) Stats() []StageStats {
	out := make([]StageStats, len(p.stages))
	for i := range p.stages {
		count, mean, max := p.meters[i].Snapshot()
		out[i] = StageStats{
			Name:        p.stages[i].Name,
			Count:       count,
			Replicas:    p.limits[i].Limit(),
			MeanService: mean,
			MaxService:  max,
		}
	}
	return out
}

type seqItem struct {
	seq int
	v   any
}

// Run starts the pipeline over the input stream. The returned output
// channel yields results in input order and is closed when the input
// channel is exhausted and drained, the context is cancelled, or a
// stage fails. The error channel delivers at most one error (stage
// failure or ctx.Err) and is closed with the output.
func (p *Pipeline) Run(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	p.mu.Lock()
	if p.ran {
		p.mu.Unlock()
		panic("pipeline: Run called twice")
	}
	p.ran = true
	batched := p.batchOn
	p.mu.Unlock()
	if batched {
		return p.runBatched(ctx, inputs)
	}
	return p.runUnbatched(ctx, inputs)
}

// runUnbatched is Run's historical per-item wiring: every stage
// boundary carries one seqItem per item.
func (p *Pipeline) runUnbatched(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	ctx, cancel := context.WithCancel(ctx)
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Sequence-tag the inputs.
	head := make(chan seqItem, p.stages[0].Buffer)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(head)
		seq := 0
		for {
			select {
			case v, ok := <-inputs:
				if !ok {
					return
				}
				select {
				case head <- seqItem{seq, v}:
					seq++
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Wire one channel per graph edge, each carrying a sequence-
	// ordered stream, buffered by the producing stage's capacity (the
	// historical chain wiring). Splits broadcast through a fan-out
	// goroutine; merges zip their in-streams, which are all ordered
	// 0,1,2,…, so the join is a lockstep read — 1-for-1 ordering
	// survives fan-in by construction.
	n := len(p.stages)
	inEdges := make([][]int, n)
	outEdges := make([][]int, n)
	for ei, e := range p.edges {
		outEdges[e.From] = append(outEdges[e.From], ei)
		inEdges[e.To] = append(inEdges[e.To], ei)
	}
	chans := make([]chan seqItem, len(p.edges))
	for ei, e := range p.edges {
		chans[ei] = make(chan seqItem, p.stages[e.From].Buffer)
	}
	final := make(chan seqItem, p.stages[n-1].Buffer)

	for i := range p.stages {
		var in <-chan seqItem
		switch {
		case len(inEdges[i]) == 0: // entry
			in = head
		case len(inEdges[i]) == 1:
			in = chans[inEdges[i][0]]
		default: // merge: zip the ordered in-streams
			ins := make([]<-chan seqItem, len(inEdges[i]))
			for k, ei := range inEdges[i] {
				ins[k] = chans[ei]
			}
			joined := make(chan seqItem, p.stages[i].Buffer)
			wg.Add(1)
			go zipJoin(ctx, ins, joined, &wg, fail)
			in = joined
		}
		var out chan seqItem
		switch {
		case len(outEdges[i]) == 0: // exit
			out = final
		case len(outEdges[i]) == 1:
			out = chans[outEdges[i][0]]
		default: // split: broadcast to every out-edge
			outs := make([]chan<- seqItem, len(outEdges[i]))
			for k, ei := range outEdges[i] {
				outs[k] = chans[ei]
			}
			spread := make(chan seqItem, p.stages[i].Buffer)
			wg.Add(1)
			go broadcast(ctx, spread, outs, &wg)
			out = spread
		}
		wg.Add(1)
		go p.runStage(ctx, i, in, out, &wg, fail)
	}

	results := make(chan any)
	errs := make(chan error, 1)
	wg.Add(1)
	go func() { // untag and deliver
		defer wg.Done()
		for it := range final {
			select {
			case results <- it.v:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		if firstErr == nil && ctx.Err() != nil {
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			errs <- firstErr
		}
		close(errs)
		close(results)
		cancel()
	}()
	return results, errs
}

// itemSink restores sequence order at a replicated stage's output. The
// worker that completes an item puts it into the ring under the sink
// mutex and drains everything now emittable directly onto the out
// channel. Historically a dedicated reorder goroutine sat behind a
// buffered done channel here; on few-core machines that cost one extra
// channel hop and one extra goroutine wake-up per item, which is how
// the per-item boundary fell behind the seed's goroutine-per-item
// design (see DESIGN.md, "Granularity & batching"). A blocked send
// only ever holds the mutex against sibling workers that would block
// on the same full boundary anyway.
type itemSink struct {
	ctx     context.Context
	out     chan<- seqItem
	mu      sync.Mutex
	pending ring.Reorder[any]
	// dead latches after the first in-order send lost to cancellation:
	// a select with both the send and ctx.Done ready picks randomly, so
	// without the latch a sink could drop item N yet deliver N+1 —
	// cancellation must truncate the ordered stream, never puncture it.
	dead bool
}

func (s *itemSink) put(seq int, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.Put(seq, v)
	if s.dead {
		return
	}
	for {
		seq2, v2, ok := s.pending.PopNext()
		if !ok {
			return
		}
		select {
		case s.out <- seqItem{seq2, v2}:
		case <-s.ctx.Done():
			s.dead = true
			return
		}
	}
}

// dropped is the tombstone a failed task leaves in its sink so the
// sequence stays gap-free while cancellation unwinds.
type dropped struct{}

// taskSink is the executor-mode counterpart of itemSink/batchSink:
// completed tasks put their result into the reorder ring without ever
// blocking (executor workers must stay runnable — see runStage), and
// the stage's drainer goroutine pulls results in sequence order via
// next, blocking there instead. notify is a buffered(1) edge trigger:
// a put that finds it full loses nothing, because the drainer re-scans
// the ring before sleeping.
type taskSink struct {
	mu      sync.Mutex
	pending ring.Reorder[any]
	closed  bool
	notify  chan struct{}
}

func (s *taskSink) put(seq int, v any) {
	s.mu.Lock()
	s.pending.Put(seq, v)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// close marks the stream complete; next returns false once the ring is
// empty. Call only after every outstanding put has happened.
func (s *taskSink) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// next blocks until the next in-sequence result is available (or the
// sink is closed and drained).
func (s *taskSink) next() (int, any, bool) {
	for {
		s.mu.Lock()
		if seq, v, ok := s.pending.PopNext(); ok {
			s.mu.Unlock()
			return seq, v, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return 0, nil, false
		}
		<-s.notify
	}
}

// runStage dispatches items of stage i to the shared work-stealing
// executor (or, executor-off, to a dedicated pool of persistent
// workers) bounded by the stage's replica limit, and restores output
// order. Either way, steady-state dispatch costs no goroutine spawn
// and no closure allocation per item.
func (p *Pipeline) runStage(ctx context.Context, i int, in <-chan seqItem, out chan<- seqItem, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	lim := p.limits[i]
	met := p.meters[i]
	fn := p.stages[i].Fn
	name := p.stages[i].Name

	sink := itemSink{ctx: ctx, out: out}
	process := func(it seqItem) {
		t0 := time.Now()
		v, err := fn(ctx, it.v)
		met.Record(time.Since(t0))
		if err != nil {
			fail(fmt.Errorf("pipeline: stage %s item %d: %w", name, it.seq, err))
			return
		}
		sink.put(it.seq, v)
	}

	if ex := p.executor(); ex != nil {
		// Shared-executor mode: the replica limit is an in-flight
		// bound, acquired before the item is handed to the fleet and
		// released when the drainer hands the result downstream. Items
		// travel in pooled carriers so boxing them into the task's any
		// costs nothing in steady state.
		//
		// Executor tasks must never block: with a shared worker set a
		// task stuck in a channel send can occupy the worker that would
		// have run the downstream task draining that very channel (on a
		// 1-worker set this deadlocks outright). So tasks finish into
		// the sink's reorder ring — a mutex-guarded put, no send — and
		// this stage's drainer goroutine, which may block freely, owns
		// the ordered sends and the limiter release. Releasing only on
		// downstream accept keeps end-to-end backpressure: at most
		// Replicas items sit computed-but-undelivered per stage.
		var inFlight sync.WaitGroup
		sink := &taskSink{notify: make(chan struct{}, 1)}
		wg.Add(1)
		go func() { // drainer: the only executor-mode blocking point
			defer wg.Done()
			dead := false // see itemSink.dead: truncate, never puncture
			for {
				seq, v, ok := sink.next()
				if !ok {
					return
				}
				if _, gone := v.(dropped); !gone && !dead {
					select {
					case out <- seqItem{seq, v}:
					case <-ctx.Done():
						dead = true
					}
				}
				lim.Release()
				inFlight.Done()
			}
		}()
		taskFn := func(arg any) {
			c := arg.(*seqItem)
			it := *c
			*c = seqItem{}
			p.carriers.Put(c)
			t0 := time.Now()
			v, err := fn(ctx, it.v)
			met.Record(time.Since(t0))
			if err != nil {
				fail(fmt.Errorf("pipeline: stage %s item %d: %w", name, it.seq, err))
				// A tombstone keeps the sequence gap-free so the
				// drainer can keep releasing in-flight tokens while
				// the cancellation unwinds.
				v = dropped{}
			}
			sink.put(it.seq, v)
		}
		for {
			var it seqItem
			var ok bool
			select {
			case it, ok = <-in:
			case <-ctx.Done():
				ok = false
			}
			if !ok {
				break
			}
			lim.Acquire()
			c, _ := p.carriers.Get().(*seqItem)
			if c == nil {
				c = new(seqItem)
			}
			*c = it
			inFlight.Add(1)
			ex.Submit(steal.Task{Fn: taskFn, Arg: c})
		}
		inFlight.Wait()
		sink.close()
		close(out)
		return
	}

	// The pool buffer absorbs a full complement of replicas between
	// dispatcher and workers — sized from the stage's initial replica
	// limit rather than hard-coded. Channel capacity cannot resize,
	// so a stage grown far beyond its initial Replicas keeps this
	// startup capacity; that only adds backpressure, never deadlock.
	poolCap := 2 * p.stages[i].Replicas
	if poolCap < 8 {
		poolCap = 8
	}
	pool := conc.NewPool(lim, poolCap, process)
	for {
		var it seqItem
		var ok bool
		select {
		case it, ok = <-in:
		case <-ctx.Done():
			ok = false
		}
		if !ok {
			break
		}
		pool.Submit(it)
	}
	pool.Close()
	close(out)
}

// zipJoin merges the in-streams of a fan-in stage. Every in-stream is
// sequence-ordered (0,1,2,…) and 1-for-1, so the join reads one item
// per stream in lockstep and emits a []any of the parts in in-edge
// order under the shared sequence number.
func zipJoin(ctx context.Context, ins []<-chan seqItem, out chan<- seqItem, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	defer close(out)
	for {
		parts := make([]any, len(ins))
		seq := -1
		for k, ch := range ins {
			select {
			case it, ok := <-ch:
				if !ok {
					// Streams carry identical sequences; the first to
					// close ends the join (its siblings close with the
					// same count unless the run is already failing).
					return
				}
				if seq >= 0 && it.seq != seq {
					fail(fmt.Errorf("pipeline: fan-in sequence skew (%d vs %d)", it.seq, seq))
					return
				}
				seq = it.seq
				parts[k] = it.v
			case <-ctx.Done():
				return
			}
		}
		select {
		case out <- seqItem{seq, parts}:
		case <-ctx.Done():
			return
		}
	}
}

// broadcast fans a split stage's ordered output onto every out-edge.
func broadcast(ctx context.Context, in <-chan seqItem, outs []chan<- seqItem, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		for _, ch := range outs {
			close(ch)
		}
	}()
	for {
		var it seqItem
		var ok bool
		select {
		case it, ok = <-in:
		case <-ctx.Done():
			return
		}
		if !ok {
			return
		}
		for _, ch := range outs {
			select {
			case ch <- it:
			case <-ctx.Done():
				return
			}
		}
	}
}

// Process runs the pipeline over a slice and returns the outputs in
// input order.
func (p *Pipeline) Process(ctx context.Context, inputs []any) ([]any, error) {
	in := make(chan any)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, errs := p.Run(ctx, in)
	var results []any
	for v := range out {
		results = append(results, v)
	}
	if err := <-errs; err != nil {
		return nil, err
	}
	if len(results) != len(inputs) {
		return nil, fmt.Errorf("pipeline: %d outputs for %d inputs", len(results), len(inputs))
	}
	return results, nil
}
