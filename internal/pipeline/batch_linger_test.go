package pipeline

// The linger bound: the head batcher is the only boundary where an
// item ever waits for more input, and that wait is capped by the
// linger timeout. Under a trickle far slower than the batch-fill rate
// every item must flush on the timer, not sit until grain items
// accumulate — the regression this guards is a batched pipeline adding
// seconds of latency to sparse streams.

import (
	"context"
	"testing"
	"time"
)

func TestTrickleNeverWaitsLongerThanLinger(t *testing.T) {
	const (
		grain  = 64
		linger = 10 * time.Millisecond
		gap    = 25 * time.Millisecond
		items  = 12
	)
	ident := func(_ context.Context, v any) (any, error) { return v, nil }
	p, err := New(Stage{Name: "r", Fn: ident, Replicas: 4, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableBatch(grain, linger); err != nil {
		t.Fatal(err)
	}
	in := make(chan any)
	out, errs := p.Run(context.Background(), in)
	sent := make([]time.Time, items)
	go func() {
		defer close(in)
		for i := 0; i < items; i++ {
			sent[i] = time.Now()
			in <- i
			time.Sleep(gap)
		}
	}()
	// At one item per 25 ms, filling a 64-item batch would take ~1.6 s;
	// the linger must flush each item within ~10 ms instead. The bound
	// leaves generous scheduling slack for a loaded single-CPU runner
	// while staying an order of magnitude below the fill time.
	const bound = 250 * time.Millisecond
	i := 0
	for v := range out {
		sojourn := time.Since(sent[i])
		if v.(int) != i {
			t.Fatalf("output %d: got %v", i, v)
		}
		if sojourn > bound {
			t.Errorf("item %d waited %v, want < %v (linger %v, batch fill would be %v)",
				i, sojourn, bound, linger, time.Duration(grain)*gap)
		}
		i++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if i != items {
		t.Fatalf("lost items: %d of %d", i, items)
	}
}
