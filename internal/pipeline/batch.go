// Batched stage boundaries: the granularity-adaptation half of the
// live runtime (the paper's central knob, applied to goroutines and
// channels instead of grid transfers).
//
// With batching enabled (EnableBatch), the unit that crosses every
// stage boundary is a *batch — a pooled slab of consecutively-
// sequenced items — instead of one seqItem per item. Every boundary
// cost that the per-item path pays per item (channel send/receive,
// limiter acquire/release, reorder-ring bookkeeping, worker wake-up)
// is then paid once per batch and amortised over its items, which is
// exactly the fixed-overhead amortisation argument the cost model's
// BatchOverhead term captures (internal/model).
//
// Invariants:
//
//   - batches are formed exactly once, at the head; every stage maps
//     one input batch to one output batch of the same index, first
//     sequence number, and length, so batch boundaries stay aligned
//     along every path of the stage graph and a fan-in zips its
//     in-streams batch-by-batch;
//   - the head flushes a batch when it reaches the current grain
//     (SetGrain, readable while running — the adaptive controller's
//     second actuator dimension) or when the oldest item in it has
//     lingered for the linger timeout, so a trickle input keeps
//     bounded latency: downstream boundaries never hold a batch, which
//     makes the head's linger the only batching wait anywhere;
//   - slabs are reference-counted (a broadcast shares one batch among
//     all out-edges) and recycled through a sync.Pool, so the steady-
//     state boundary performs no per-item and no per-batch heap
//     allocation;
//   - ordered output is byte-identical to the per-item path: stages
//     process a batch's items in sequence order and batches are
//     restored to index order at every boundary, so Run/Process emit
//     the same values in the same order for every grain and linger.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/conc"
	"gridpipe/internal/ring"
)

// DefaultLinger bounds how long a partial batch may wait at the head
// for more input before it is flushed anyway.
const DefaultLinger = time.Millisecond

// batch is a pooled slab of consecutively-sequenced items crossing a
// stage boundary together. seq is the sequence number of items[0];
// idx counts batches 0,1,2,… in head order (the reorder key). refs is
// the number of consumers still holding the slab — a broadcast hands
// the same batch to every out-edge.
type batch struct {
	idx   int
	seq   int
	items []any
	refs  int32
}

// newBatch takes a slab from the pool (or allocates the first time a
// fresh high-water mark is reached) and resets it for one consumer.
func (p *Pipeline) newBatch(idx, seq int) *batch {
	b, _ := p.slabs.Get().(*batch)
	if b == nil {
		b = &batch{}
	}
	b.idx, b.seq = idx, seq
	b.items = b.items[:0]
	atomic.StoreInt32(&b.refs, 1)
	return b
}

// releaseBatch drops one reference and recycles the slab when the last
// consumer is done. Items are zeroed so the pool does not retain user
// values.
func (p *Pipeline) releaseBatch(b *batch) {
	if atomic.AddInt32(&b.refs, -1) != 0 {
		return
	}
	clear(b.items)
	b.items = b.items[:0]
	p.slabs.Put(b)
}

// EnableBatch arms batched stage boundaries before Run: items cross
// boundaries in slabs of up to grain items, flushed early when the
// oldest item has waited linger (linger <= 0 picks DefaultLinger).
// The grain is adjustable while running via SetGrain; the wiring
// choice (batched vs per-item) is fixed at Run.
func (p *Pipeline) EnableBatch(grain int, linger time.Duration) error {
	if grain < 1 {
		return fmt.Errorf("pipeline: EnableBatch grain %d below 1", grain)
	}
	if linger <= 0 {
		linger = DefaultLinger
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ran {
		return fmt.Errorf("pipeline: EnableBatch after Run")
	}
	p.batchOn = true
	p.grain.Store(int64(grain))
	p.linger.Store(int64(linger))
	return nil
}

// SetGrain adjusts the batch size items travel in (minimum 1). Safe to
// call while the pipeline runs — the head applies it to the next batch
// it opens — which makes grain a live actuator dimension alongside
// SetReplicas. It requires EnableBatch: the per-item wiring has no
// batch boundary to resize.
func (p *Pipeline) SetGrain(n int) error {
	if n < 1 {
		return fmt.Errorf("pipeline: SetGrain(%d) below 1", n)
	}
	if !p.batchOn {
		return fmt.Errorf("pipeline: SetGrain without EnableBatch")
	}
	p.grain.Store(int64(n))
	return nil
}

// Grain returns the current batch size (1 when batching is off).
func (p *Pipeline) Grain() int {
	if !p.batchOn {
		return 1
	}
	return int(p.grain.Load())
}

// Batched reports whether Run will use batched stage boundaries.
func (p *Pipeline) Batched() bool { return p.batchOn }

// runBatched is Run's batched wiring: the same stage graph, with every
// edge carrying *batch instead of seqItem.
func (p *Pipeline) runBatched(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	ctx, cancel := context.WithCancel(ctx)
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Head batcher: sequence-tag the inputs and pack them into slabs,
	// flushed on grain or linger. This is the only place batches are
	// formed, so it is the only boundary where an item ever waits.
	head := make(chan *batch, p.stages[0].Buffer)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(head)
		seq, idx := 0, 0
		var cur *batch
		timer := time.NewTimer(time.Hour)
		timer.Stop()
		defer timer.Stop()
		var timerC <-chan time.Time
		flush := func() bool {
			select {
			case head <- cur:
			case <-ctx.Done():
				return false
			}
			cur = nil
			timerC = nil
			idx++
			return true
		}
		for {
			select {
			case v, ok := <-inputs:
				if !ok {
					if cur != nil {
						flush()
					}
					return
				}
				if cur == nil {
					cur = p.newBatch(idx, seq)
					timer.Reset(time.Duration(p.linger.Load()))
					timerC = timer.C
				}
				cur.items = append(cur.items, v)
				seq++
				if len(cur.items) >= int(p.grain.Load()) {
					timer.Stop()
					if !flush() {
						return
					}
				}
			case <-timerC:
				if !flush() {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Wire one *batch channel per graph edge — the same topology as the
	// per-item path, with zip and broadcast operating batch-wise.
	n := len(p.stages)
	inEdges := make([][]int, n)
	outEdges := make([][]int, n)
	for ei, e := range p.edges {
		outEdges[e.From] = append(outEdges[e.From], ei)
		inEdges[e.To] = append(inEdges[e.To], ei)
	}
	chans := make([]chan *batch, len(p.edges))
	for ei, e := range p.edges {
		chans[ei] = make(chan *batch, p.stages[e.From].Buffer)
	}
	final := make(chan *batch, p.stages[n-1].Buffer)

	for i := range p.stages {
		var in <-chan *batch
		switch {
		case len(inEdges[i]) == 0: // entry
			in = head
		case len(inEdges[i]) == 1:
			in = chans[inEdges[i][0]]
		default: // merge: zip the batch streams
			ins := make([]<-chan *batch, len(inEdges[i]))
			for k, ei := range inEdges[i] {
				ins[k] = chans[ei]
			}
			joined := make(chan *batch, p.stages[i].Buffer)
			wg.Add(1)
			go p.zipJoinBatched(ctx, ins, joined, &wg, fail)
			in = joined
		}
		var out chan *batch
		switch {
		case len(outEdges[i]) == 0: // exit
			out = final
		case len(outEdges[i]) == 1:
			out = chans[outEdges[i][0]]
		default: // split: share the batch across every out-edge
			outs := make([]chan<- *batch, len(outEdges[i]))
			for k, ei := range outEdges[i] {
				outs[k] = chans[ei]
			}
			spread := make(chan *batch, p.stages[i].Buffer)
			wg.Add(1)
			go p.broadcastBatched(ctx, spread, outs, &wg)
			out = spread
		}
		wg.Add(1)
		go p.runStageBatched(ctx, i, in, out, &wg, fail)
	}

	results := make(chan any)
	errs := make(chan error, 1)
	wg.Add(1)
	go func() { // unpack batches and deliver items in order
		defer wg.Done()
		for b := range final {
			for _, v := range b.items {
				select {
				case results <- v:
				case <-ctx.Done():
					p.releaseBatch(b)
					return
				}
			}
			p.releaseBatch(b)
		}
	}()
	go func() {
		wg.Wait()
		if firstErr == nil && ctx.Err() != nil {
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			errs <- firstErr
		}
		close(errs)
		close(results)
		cancel()
	}()
	return results, errs
}

// batchSink restores batch-index order at a replicated stage's output.
// The worker that completes a batch drains everything now emittable,
// so no separate reorder goroutine (and no done-channel hop) sits on
// the boundary; see itemSink for the same shape per item.
type batchSink struct {
	ctx     context.Context
	out     chan<- *batch
	mu      sync.Mutex
	pending ring.Reorder[*batch]
}

func (s *batchSink) put(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.Put(b.idx, b)
	for {
		_, nb, ok := s.pending.PopNext()
		if !ok {
			return
		}
		select {
		case s.out <- nb:
		case <-s.ctx.Done():
			return
		}
	}
}

// runStageBatched dispatches whole batches to the stage's persistent
// worker pool: one limiter acquire, one channel hop, and one reorder
// operation per batch, with the stage function applied to each item in
// sequence order so ordered output is identical to the per-item path.
func (p *Pipeline) runStageBatched(ctx context.Context, i int, in <-chan *batch, out chan<- *batch, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	lim := p.limits[i]
	met := p.meters[i]
	fn := p.stages[i].Fn
	name := p.stages[i].Name

	poolCap := 2 * p.stages[i].Replicas
	if poolCap < 8 {
		poolCap = 8
	}
	sink := batchSink{ctx: ctx, out: out}
	pool := conc.NewPool(lim, poolCap, func(b *batch) {
		ob := p.newBatch(b.idx, b.seq)
		t0 := time.Now()
		for k, v := range b.items {
			r, err := fn(ctx, v)
			if err != nil {
				fail(fmt.Errorf("pipeline: stage %s item %d: %w", name, b.seq+k, err))
				p.releaseBatch(ob)
				p.releaseBatch(b)
				return
			}
			ob.items = append(ob.items, r)
		}
		met.RecordN(int64(len(ob.items)), time.Since(t0))
		p.releaseBatch(b)
		sink.put(ob)
	})
	for {
		var b *batch
		var ok bool
		select {
		case b, ok = <-in:
		case <-ctx.Done():
			ok = false
		}
		if !ok {
			break
		}
		pool.Submit(b)
	}
	pool.Close()
	close(out)
}

// zipJoinBatched merges the in-streams of a fan-in stage batch-wise.
// Batches are formed once at the head and preserved 1-for-1 by every
// stage, so the k-th batch of every in-stream has the same index,
// first sequence number, and length; the join reads one batch per
// stream in lockstep and emits a batch of []any part vectors.
func (p *Pipeline) zipJoinBatched(ctx context.Context, ins []<-chan *batch, out chan<- *batch, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	defer close(out)
	for {
		var ob *batch
		for k, ch := range ins {
			select {
			case b, ok := <-ch:
				if !ok {
					// Streams carry identical batch sequences; the first
					// to close ends the join.
					if ob != nil {
						p.releaseBatch(ob)
					}
					return
				}
				if ob == nil {
					ob = p.newBatch(b.idx, b.seq)
					for range b.items {
						ob.items = append(ob.items, make([]any, len(ins)))
					}
				} else if b.idx != ob.idx || len(b.items) != len(ob.items) {
					fail(fmt.Errorf("pipeline: fan-in batch skew (batch %d vs %d, %d vs %d items)",
						b.idx, ob.idx, len(b.items), len(ob.items)))
					p.releaseBatch(b)
					p.releaseBatch(ob)
					return
				}
				for j, v := range b.items {
					ob.items[j].([]any)[k] = v
				}
				p.releaseBatch(b)
			case <-ctx.Done():
				if ob != nil {
					p.releaseBatch(ob)
				}
				return
			}
		}
		select {
		case out <- ob:
		case <-ctx.Done():
			p.releaseBatch(ob)
			return
		}
	}
}

// broadcastBatched fans a split stage's batch stream onto every
// out-edge. The slab is shared, not copied: the reference count grows
// by one per extra consumer and each downstream stage releases its
// reference after reading (no consumer mutates a batch it received).
func (p *Pipeline) broadcastBatched(ctx context.Context, in <-chan *batch, outs []chan<- *batch, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		for _, ch := range outs {
			close(ch)
		}
	}()
	for {
		var b *batch
		var ok bool
		select {
		case b, ok = <-in:
		case <-ctx.Done():
			return
		}
		if !ok {
			return
		}
		atomic.AddInt32(&b.refs, int32(len(outs)-1))
		for _, ch := range outs {
			select {
			case ch <- b:
			case <-ctx.Done():
				return
			}
		}
	}
}
