// Batched stage boundaries: the granularity-adaptation half of the
// live runtime (the paper's central knob, applied to goroutines and
// channels instead of grid transfers).
//
// With batching enabled (EnableBatch), the unit that crosses every
// stage boundary is a *batch — a pooled slab of consecutively-
// sequenced items — instead of one seqItem per item. Every boundary
// cost that the per-item path pays per item (channel send/receive,
// limiter acquire/release, reorder-ring bookkeeping, worker wake-up)
// is then paid once per batch and amortised over its items, which is
// exactly the fixed-overhead amortisation argument the cost model's
// BatchOverhead term captures (internal/model).
//
// Invariants:
//
//   - batches are formed exactly once, at the head; every stage maps
//     one input batch to one output batch of the same index, first
//     sequence number, and length, so batch boundaries stay aligned
//     along every path of the stage graph and a fan-in zips its
//     in-streams batch-by-batch;
//   - the head flushes a batch when it reaches the current grain
//     (SetGrain, readable while running — the adaptive controller's
//     second actuator dimension) or when the oldest item in it has
//     lingered for the linger timeout, so a trickle input keeps
//     bounded latency: downstream boundaries never hold a batch, which
//     makes the head's linger the only batching wait anywhere;
//   - slabs are reference-counted (a broadcast shares one batch among
//     all out-edges) and recycled through a sync.Pool, so the steady-
//     state boundary performs no per-item and no per-batch heap
//     allocation;
//   - ordered output is byte-identical to the per-item path: stages
//     process a batch's items in sequence order and batches are
//     restored to index order at every boundary, so Run/Process emit
//     the same values in the same order for every grain and linger.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/conc"
	"gridpipe/internal/conc/steal"
	"gridpipe/internal/ring"
)

// DefaultLinger bounds how long a partial batch may wait at the head
// for more input before it is flushed anyway.
const DefaultLinger = time.Millisecond

// batch is a pooled slab of consecutively-sequenced items crossing a
// stage boundary together. seq is the sequence number of items[0];
// idx counts batches 0,1,2,… in head order (the reorder key). refs is
// the number of consumers still holding the slab — a broadcast hands
// the same batch to every out-edge. eager marks a batch flushed by
// linger, end-of-input, or an idle input: every stage propagates it,
// and a coarsening per-edge boundary (edgegrain.go) flushes its
// accumulator on seeing it instead of waiting to fill — which keeps
// the head's linger the dominant batching wait even when a downstream
// boundary re-slabs to a larger grain.
type batch struct {
	idx   int
	seq   int
	items []any
	refs  int32
	eager bool
}

// newBatch takes a slab from the pool (or allocates the first time a
// fresh high-water mark is reached) and resets it for one consumer.
func (p *Pipeline) newBatch(idx, seq int) *batch {
	b, _ := p.slabs.Get().(*batch)
	if b == nil {
		b = &batch{}
	}
	b.idx, b.seq = idx, seq
	b.items = b.items[:0]
	b.eager = false
	atomic.StoreInt32(&b.refs, 1)
	return b
}

// releaseBatch drops one reference and recycles the slab when the last
// consumer is done. Items are zeroed so the pool does not retain user
// values.
func (p *Pipeline) releaseBatch(b *batch) {
	if atomic.AddInt32(&b.refs, -1) != 0 {
		return
	}
	clear(b.items)
	b.items = b.items[:0]
	p.slabs.Put(b)
}

// EnableBatch arms batched stage boundaries before Run: items cross
// boundaries in slabs of up to grain items, flushed early when the
// oldest item has waited linger (linger <= 0 picks DefaultLinger).
// The grain is adjustable while running via SetGrain; the wiring
// choice (batched vs per-item) is fixed at Run.
func (p *Pipeline) EnableBatch(grain int, linger time.Duration) error {
	if grain < 1 {
		return fmt.Errorf("pipeline: EnableBatch grain %d below 1", grain)
	}
	if linger <= 0 {
		linger = DefaultLinger
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ran {
		return fmt.Errorf("pipeline: EnableBatch after Run")
	}
	p.batchOn = true
	p.grain.Store(int64(grain))
	p.linger.Store(int64(linger))
	return nil
}

// SetGrain adjusts the batch size items travel in (minimum 1). Safe to
// call while the pipeline runs — the head applies it to the next batch
// it opens — which makes grain a live actuator dimension alongside
// SetReplicas. It requires EnableBatch: the per-item wiring has no
// batch boundary to resize.
func (p *Pipeline) SetGrain(n int) error {
	if n < 1 {
		return fmt.Errorf("pipeline: SetGrain(%d) below 1", n)
	}
	if !p.batchOn {
		return fmt.Errorf("pipeline: SetGrain without EnableBatch")
	}
	p.grain.Store(int64(n))
	// On a per-edge pipeline a single global SetGrain means "uniform":
	// every boundary moves together, which is always a valid vector.
	if p.edgeGrains != nil {
		for b := range p.edgeGrains {
			p.edgeGrains[b].Store(int64(n))
		}
	}
	return nil
}

// Grain returns the current batch size (1 when batching is off).
func (p *Pipeline) Grain() int {
	if !p.batchOn {
		return 1
	}
	return int(p.grain.Load())
}

// Batched reports whether Run will use batched stage boundaries.
func (p *Pipeline) Batched() bool { return p.batchOn }

// runBatched is Run's batched wiring: the same stage graph, with every
// edge carrying *batch instead of seqItem.
func (p *Pipeline) runBatched(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error) {
	ctx, cancel := context.WithCancel(ctx)
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Head batcher: sequence-tag the inputs and pack them into slabs,
	// flushed on grain or linger. This is the only place batches are
	// formed, so it is the only boundary where an item ever waits.
	head := make(chan *batch, p.stages[0].Buffer)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(head)
		seq, idx := 0, 0
		var cur *batch
		timer := time.NewTimer(time.Hour)
		timer.Stop()
		defer timer.Stop()
		var timerC <-chan time.Time
		flush := func(eager bool) bool {
			cur.eager = eager
			select {
			case head <- cur:
			case <-ctx.Done():
				return false
			}
			cur = nil
			timerC = nil
			idx++
			return true
		}
		for {
			select {
			case v, ok := <-inputs:
				if !ok {
					if cur != nil {
						flush(true)
					}
					return
				}
				if cur == nil {
					cur = p.newBatch(idx, seq)
					timer.Reset(time.Duration(p.linger.Load()))
					timerC = timer.C
				}
				cur.items = append(cur.items, v)
				seq++
				if len(cur.items) >= int(p.headGrain()) {
					timer.Stop()
					// A grain-full flush with nothing else queued may be
					// the last traffic for a while; marking it eager lets
					// coarsening downstream boundaries drain instead of
					// parking its items until the next input burst.
					if !flush(len(inputs) == 0) {
						return
					}
				}
			case <-timerC:
				if !flush(true) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Wire one *batch channel per graph edge — the same topology as the
	// per-item path, with zip and broadcast operating batch-wise.
	n := len(p.stages)
	inEdges := make([][]int, n)
	outEdges := make([][]int, n)
	for ei, e := range p.edges {
		outEdges[e.From] = append(outEdges[e.From], ei)
		inEdges[e.To] = append(inEdges[e.To], ei)
	}
	chans := make([]chan *batch, len(p.edges))
	for ei, e := range p.edges {
		chans[ei] = make(chan *batch, p.stages[e.From].Buffer)
	}
	final := make(chan *batch, p.stages[n-1].Buffer)

	for i := range p.stages {
		var in <-chan *batch
		switch {
		case len(inEdges[i]) == 0: // entry
			in = head
		case len(inEdges[i]) == 1:
			in = chans[inEdges[i][0]]
		default: // merge: zip the batch streams
			ins := make([]<-chan *batch, len(inEdges[i]))
			for k, ei := range inEdges[i] {
				ins[k] = chans[ei]
			}
			joined := make(chan *batch, p.stages[i].Buffer)
			wg.Add(1)
			go p.zipJoinBatched(ctx, ins, joined, &wg, fail)
			in = joined
		}
		var out chan *batch
		switch {
		case len(outEdges[i]) == 0: // exit
			out = final
		case len(outEdges[i]) == 1:
			out = chans[outEdges[i][0]]
		default: // split: share the batch across every out-edge
			outs := make([]chan<- *batch, len(outEdges[i]))
			for k, ei := range outEdges[i] {
				outs[k] = chans[ei]
			}
			spread := make(chan *batch, p.stages[i].Buffer)
			wg.Add(1)
			go p.broadcastBatched(ctx, spread, outs, &wg)
			out = spread
		}
		// A bridge edge with its own grain (EnableBatchEdges) re-slabs at
		// the producing stage's sink; bridge edges always leave a
		// single-out stage, so a split never re-slabs (its consumers
		// share one slab and must agree on its shape).
		var edgeGrain *atomic.Int64
		if len(outEdges[i]) == 1 {
			if ei := outEdges[i][0]; p.regrain != nil && p.regrain[ei] {
				edgeGrain = &p.edgeGrains[1+ei]
			}
		}
		wg.Add(1)
		go p.runStageBatched(ctx, i, in, out, edgeGrain, &wg, fail)
	}

	results := make(chan any)
	errs := make(chan error, 1)
	wg.Add(1)
	go func() { // unpack batches and deliver items in order
		defer wg.Done()
		for b := range final {
			for _, v := range b.items {
				select {
				case results <- v:
				case <-ctx.Done():
					p.releaseBatch(b)
					return
				}
			}
			p.releaseBatch(b)
		}
	}()
	go func() {
		wg.Wait()
		if firstErr == nil && ctx.Err() != nil {
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			errs <- firstErr
		}
		close(errs)
		close(results)
		cancel()
	}()
	return results, errs
}

// batchSink restores batch-index order at a replicated stage's output.
// The worker that completes a batch drains everything now emittable,
// so no separate reorder goroutine (and no done-channel hop) sits on
// the boundary; see itemSink for the same shape per item.
//
// When the stage's out-edge is a regraining boundary (EnableBatchEdges
// on a bridge edge), the sink additionally re-slabs the ordered stream
// to the edge's own grain: items of each in-order batch are appended
// to an accumulator that flushes whenever it reaches the edge grain,
// when an eager batch passes (linger/end-of-input pressure propagated
// from the head), and at stream close (flushTail). The re-slabbed
// stream gets fresh contiguous indices, so the downstream reorder ring
// sees exactly the 0,1,2,… it requires.
type batchSink struct {
	ctx     context.Context
	out     chan<- *batch
	p       *Pipeline
	grain   *atomic.Int64 // non-nil: re-slab to this edge grain
	mu      sync.Mutex
	pending ring.Reorder[*batch]
	acc     *batch // regrain accumulator (guarded by mu)
	nextIdx int    // next re-slabbed batch index on this edge
	nextSeq int    // first sequence number of the next re-slabbed batch
	dead    bool   // see itemSink.dead: truncate, never puncture
}

func (s *batchSink) put(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.Put(b.idx, b)
	for {
		_, nb, ok := s.pending.PopNext()
		if !ok {
			return
		}
		if s.dead {
			s.p.releaseBatch(nb)
			continue
		}
		s.emit(nb)
	}
}

// emit hands one in-order batch downstream — directly, or through the
// re-slab accumulator when the out-edge regrains. Runs under s.mu and
// owns the batch either way; false (also latched into s.dead) means
// the context cancelled mid-send.
func (s *batchSink) emit(nb *batch) bool {
	ok := s.deliver(nb)
	if !ok {
		s.dead = true
	}
	return ok
}

func (s *batchSink) deliver(nb *batch) bool {
	if s.grain == nil {
		select {
		case s.out <- nb:
			return true
		case <-s.ctx.Done():
			s.p.releaseBatch(nb)
			return false
		}
	}
	return s.regrain(nb)
}

// regrain folds one in-order batch into the accumulator, flushing at
// the edge grain and on eager pressure. Runs under s.mu; false means
// the context cancelled mid-send.
func (s *batchSink) regrain(nb *batch) bool {
	tgt := int(s.grain.Load())
	if tgt < 1 {
		tgt = 1
	}
	eager := nb.eager
	for _, v := range nb.items {
		if s.acc == nil {
			s.acc = s.p.newBatch(s.nextIdx, s.nextSeq)
		}
		s.acc.items = append(s.acc.items, v)
		if len(s.acc.items) >= tgt {
			if !s.flushAcc(eager) {
				s.p.releaseBatch(nb)
				return false
			}
		}
	}
	s.p.releaseBatch(nb)
	if eager && s.acc != nil {
		return s.flushAcc(true)
	}
	return true
}

// flushAcc emits the accumulator downstream. Runs under s.mu.
func (s *batchSink) flushAcc(eager bool) bool {
	s.acc.eager = eager
	s.nextIdx++
	s.nextSeq += len(s.acc.items)
	b := s.acc
	s.acc = nil
	select {
	case s.out <- b:
		return true
	case <-s.ctx.Done():
		s.p.releaseBatch(b)
		return false
	}
}

// flushTail drains a partial accumulator at stream close, so an item
// count not divisible by the edge grain still delivers every item. A
// dead sink drops the tail instead — it already truncated the stream.
func (s *batchSink) flushTail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acc == nil || len(s.acc.items) == 0 {
		return
	}
	if s.dead {
		s.p.releaseBatch(s.acc)
		s.acc = nil
		return
	}
	if !s.flushAcc(true) {
		s.dead = true
	}
}

// runStageBatched dispatches whole batches — as tasks on the shared
// work-stealing executor, or (executor-off) to a dedicated persistent
// worker pool: one limiter acquire, one handoff, and one reorder
// operation per batch, with the stage function applied to each item in
// sequence order so ordered output is identical to the per-item path.
// edgeGrain, when non-nil, makes the sink re-slab the stage's out-edge
// to that grain (see batchSink).
func (p *Pipeline) runStageBatched(ctx context.Context, i int, in <-chan *batch, out chan<- *batch, edgeGrain *atomic.Int64, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	lim := p.limits[i]
	met := p.meters[i]
	fn := p.stages[i].Fn
	name := p.stages[i].Name

	sink := batchSink{ctx: ctx, out: out, p: p, grain: edgeGrain}
	process := func(b *batch) {
		ob := p.newBatch(b.idx, b.seq)
		ob.eager = b.eager
		t0 := time.Now()
		for k, v := range b.items {
			r, err := fn(ctx, v)
			if err != nil {
				fail(fmt.Errorf("pipeline: stage %s item %d: %w", name, b.seq+k, err))
				p.releaseBatch(ob)
				p.releaseBatch(b)
				return
			}
			ob.items = append(ob.items, r)
		}
		met.RecordN(int64(len(ob.items)), time.Since(t0))
		p.releaseBatch(b)
		sink.put(ob)
	}

	if ex := p.executor(); ex != nil {
		// Shared-executor mode: the pooled slab itself is the task
		// argument, so submission boxes nothing. As in runStage,
		// executor tasks never block — a processed batch lands in a
		// taskSink ring and this stage's drainer goroutine owns the
		// ordered (and possibly re-slabbing) sends plus the limiter
		// release, so a full downstream boundary backpressures the
		// dispatcher without ever parking a shared worker.
		var inFlight sync.WaitGroup
		tsink := &taskSink{notify: make(chan struct{}, 1)}
		wg.Add(1)
		go func() { // drainer
			defer wg.Done()
			for {
				_, v, ok := tsink.next()
				if !ok {
					return
				}
				if ob, _ := v.(*batch); ob != nil { // nil = failed-task tombstone
					sink.mu.Lock()
					if sink.dead {
						p.releaseBatch(ob)
					} else {
						sink.emit(ob)
					}
					sink.mu.Unlock()
				}
				lim.Release()
				inFlight.Done()
			}
		}()
		taskFn := func(arg any) {
			b := arg.(*batch)
			idx := b.idx
			ob := p.newBatch(b.idx, b.seq)
			ob.eager = b.eager
			t0 := time.Now()
			for k, v := range b.items {
				r, err := fn(ctx, v)
				if err != nil {
					fail(fmt.Errorf("pipeline: stage %s item %d: %w", name, b.seq+k, err))
					p.releaseBatch(ob)
					p.releaseBatch(b)
					tsink.put(idx, (*batch)(nil))
					return
				}
				ob.items = append(ob.items, r)
			}
			met.RecordN(int64(len(ob.items)), time.Since(t0))
			p.releaseBatch(b)
			tsink.put(idx, ob)
		}
		for {
			var b *batch
			var ok bool
			select {
			case b, ok = <-in:
			case <-ctx.Done():
				ok = false
			}
			if !ok {
				break
			}
			lim.Acquire()
			inFlight.Add(1)
			ex.Submit(steal.Task{Fn: taskFn, Arg: b})
		}
		inFlight.Wait()
		tsink.close()
		sink.flushTail()
		close(out)
		return
	}

	poolCap := 2 * p.stages[i].Replicas
	if poolCap < 8 {
		poolCap = 8
	}
	pool := conc.NewPool(lim, poolCap, process)
	for {
		var b *batch
		var ok bool
		select {
		case b, ok = <-in:
		case <-ctx.Done():
			ok = false
		}
		if !ok {
			break
		}
		pool.Submit(b)
	}
	pool.Close()
	sink.flushTail()
	close(out)
}

// zipJoinBatched merges the in-streams of a fan-in stage batch-wise.
// Batches are formed once at the head and preserved 1-for-1 by every
// stage, so the k-th batch of every in-stream has the same index,
// first sequence number, and length; the join reads one batch per
// stream in lockstep and emits a batch of []any part vectors.
func (p *Pipeline) zipJoinBatched(ctx context.Context, ins []<-chan *batch, out chan<- *batch, wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	defer close(out)
	for {
		var ob *batch
		for k, ch := range ins {
			select {
			case b, ok := <-ch:
				if !ok {
					// Streams carry identical batch sequences; the first
					// to close ends the join.
					if ob != nil {
						p.releaseBatch(ob)
					}
					return
				}
				if ob == nil {
					ob = p.newBatch(b.idx, b.seq)
					ob.eager = b.eager
					for range b.items {
						ob.items = append(ob.items, make([]any, len(ins)))
					}
				} else if b.idx != ob.idx || len(b.items) != len(ob.items) {
					fail(fmt.Errorf("pipeline: fan-in batch skew (batch %d vs %d, %d vs %d items)",
						b.idx, ob.idx, len(b.items), len(ob.items)))
					p.releaseBatch(b)
					p.releaseBatch(ob)
					return
				}
				for j, v := range b.items {
					ob.items[j].([]any)[k] = v
				}
				p.releaseBatch(b)
			case <-ctx.Done():
				if ob != nil {
					p.releaseBatch(ob)
				}
				return
			}
		}
		select {
		case out <- ob:
		case <-ctx.Done():
			p.releaseBatch(ob)
			return
		}
	}
}

// broadcastBatched fans a split stage's batch stream onto every
// out-edge. The slab is shared, not copied: the reference count grows
// by one per extra consumer and each downstream stage releases its
// reference after reading (no consumer mutates a batch it received).
func (p *Pipeline) broadcastBatched(ctx context.Context, in <-chan *batch, outs []chan<- *batch, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		for _, ch := range outs {
			close(ch)
		}
	}()
	for {
		var b *batch
		var ok bool
		select {
		case b, ok = <-in:
		case <-ctx.Done():
			return
		}
		if !ok {
			return
		}
		atomic.AddInt32(&b.refs, int32(len(outs)-1))
		for _, ch := range outs {
			select {
			case ch <- b:
			case <-ctx.Done():
				return
			}
		}
	}
}
