package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func double(ctx context.Context, v any) (any, error) { return v.(int) * 2, nil }
func inc(ctx context.Context, v any) (any, error)    { return v.(int) + 1, nil }

func ints(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestProcessBasic(t *testing.T) {
	p, err := New(
		Stage{Name: "double", Fn: double},
		Stage{Name: "inc", Fn: inc},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Process(context.Background(), ints(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i*2+1 {
			t.Fatalf("out[%d] = %v, want %d", i, v, i*2+1)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("no stages accepted")
	}
	if _, err := New(Stage{Name: "x"}); err == nil {
		t.Fatal("nil Fn accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p, err := New(Stage{Fn: double})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st[0].Name != "stage0" || st[0].Replicas != 1 {
		t.Fatalf("defaults wrong: %+v", st[0])
	}
}

func TestOrderPreservedUnderReplication(t *testing.T) {
	// Random per-item delays in a replicated stage must not reorder
	// outputs.
	p, err := New(Stage{
		Name:     "jitter",
		Replicas: 8,
		Fn: func(ctx context.Context, v any) (any, error) {
			time.Sleep(time.Duration(v.(int)%7) * time.Millisecond)
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Process(context.Background(), ints(200))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i {
			t.Fatalf("order broken at %d: got %v", i, v)
		}
	}
}

func TestReplicationActuallyParallel(t *testing.T) {
	var inFlight, peak int64
	p, err := New(Stage{
		Name:     "slow",
		Replicas: 4,
		Fn: func(ctx context.Context, v any) (any, error) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), ints(32)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&peak) < 2 {
		t.Fatalf("replicated stage never ran concurrently (peak %d)", peak)
	}
	if atomic.LoadInt64(&peak) > 4 {
		t.Fatalf("replica limit exceeded (peak %d)", peak)
	}
}

func TestErrorPropagatesAndStops(t *testing.T) {
	boom := errors.New("boom")
	var processed int64
	p, err := New(
		Stage{Name: "a", Fn: func(ctx context.Context, v any) (any, error) {
			atomic.AddInt64(&processed, 1)
			if v.(int) == 5 {
				return nil, boom
			}
			return v, nil
		}},
		Stage{Name: "b", Fn: inc},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Process(context.Background(), ints(1000))
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost cause: %v", err)
	}
	if atomic.LoadInt64(&processed) > 900 {
		t.Fatalf("pipeline did not stop early (%d processed)", processed)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p, err := New(Stage{Name: "slow", Fn: func(ctx context.Context, v any) (any, error) {
		select {
		case <-time.After(50 * time.Millisecond):
			return v, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.Process(ctx, ints(100))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not propagate promptly")
	}
}

func TestRunStreaming(t *testing.T) {
	p, err := New(Stage{Fn: double})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < 5; i++ {
			in <- i
		}
		close(in)
	}()
	var got []int
	for v := range out {
		got = append(got, v.(int))
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4] != 8 {
		t.Fatalf("got %v", got)
	}
}

func TestRunTwicePanics(t *testing.T) {
	p, err := New(Stage{Fn: double})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any)
	close(in)
	out, errs := p.Run(context.Background(), in)
	for range out {
	}
	<-errs
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	p.Run(context.Background(), in)
}

func TestSetReplicasLive(t *testing.T) {
	release := make(chan struct{})
	var started int64
	p, err := New(Stage{
		Name:     "gate",
		Replicas: 1,
		Fn: func(ctx context.Context, v any) (any, error) {
			atomic.AddInt64(&started, 1)
			select {
			case <-release:
				return v, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any, 8)
	for i := 0; i < 4; i++ {
		in <- i
	}
	close(in)
	out, errs := p.Run(context.Background(), in)

	// With 1 replica only one item starts.
	deadline := time.After(2 * time.Second)
	for atomic.LoadInt64(&started) < 1 {
		select {
		case <-deadline:
			t.Fatal("first item never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if n := atomic.LoadInt64(&started); n != 1 {
		t.Fatalf("replicas=1 but %d items in flight", n)
	}
	// Growing the limit lets more items start while the first is stuck.
	if err := p.SetReplicas(0, 4); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(2 * time.Second)
	for atomic.LoadInt64(&started) < 4 {
		select {
		case <-deadline:
			t.Fatalf("grow did not take effect (started=%d)", started)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("got %d outputs", count)
	}
}

func TestSetReplicasValidation(t *testing.T) {
	p, err := New(Stage{Fn: double})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetReplicas(5, 1); err == nil {
		t.Fatal("invalid stage accepted")
	}
	if err := p.SetReplicas(0, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestStatsCountAndTiming(t *testing.T) {
	p, err := New(Stage{Name: "work", Fn: func(ctx context.Context, v any) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return v, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), ints(20)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()[0]
	if st.Count != 20 {
		t.Fatalf("Count = %d", st.Count)
	}
	if st.MeanService < time.Millisecond {
		t.Fatalf("MeanService = %v implausibly small", st.MeanService)
	}
	if st.MaxService < st.MeanService {
		t.Fatalf("Max %v < Mean %v", st.MaxService, st.MeanService)
	}
}

func TestEmptyInput(t *testing.T) {
	p, err := New(Stage{Fn: double})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Process(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %v", out)
	}
}

// Property: for any replica counts and stage count, the pipeline is
// 1-for-1 and order preserving.
func TestOneForOneProperty(t *testing.T) {
	f := func(nStagesRaw, replicasRaw, nItemsRaw uint8) bool {
		nStages := int(nStagesRaw%3) + 1
		replicas := int(replicasRaw%4) + 1
		nItems := int(nItemsRaw % 50)
		var stages []Stage
		for s := 0; s < nStages; s++ {
			stages = append(stages, Stage{
				Replicas: replicas,
				Fn: func(ctx context.Context, v any) (any, error) {
					return v.(int) + 1, nil
				},
			})
		}
		p, err := New(stages...)
		if err != nil {
			return false
		}
		out, err := p.Process(context.Background(), ints(nItems))
		if err != nil {
			return false
		}
		if len(out) != nItems {
			return false
		}
		for i, v := range out {
			if v.(int) != i+nStages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyItemsStress(t *testing.T) {
	p, err := New(
		Stage{Name: "a", Replicas: 4, Fn: inc},
		Stage{Name: "b", Replicas: 2, Fn: double},
		Stage{Name: "c", Fn: inc},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	out, err := p.Process(context.Background(), ints(n))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := (i+1)*2 + 1; v.(int) != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestErrorIdentifiesStageAndItem(t *testing.T) {
	p, err := New(Stage{Name: "checker", Fn: func(ctx context.Context, v any) (any, error) {
		if v.(int) == 3 {
			return nil, fmt.Errorf("bad item")
		}
		return v, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Process(context.Background(), ints(10))
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if want := "checker"; !contains(msg, want) {
		t.Fatalf("error %q does not name the stage", msg)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
