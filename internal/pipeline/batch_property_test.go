package pipeline

// The batching equivalence property: for any stage graph, any grain,
// and any cancellation point, the batched wiring delivers exactly the
// per-item wiring's ordered output — batching may only change *when*
// items cross boundaries, never *what* comes out or in which order.
// Random topologies (chains with random extra split/merge edges),
// random replica counts and buffers, a grain ladder spanning
// non-divisor sizes, and mid-stream cancels all run under -race in CI.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gridpipe/internal/topo"
)

// propHash folds an item (int at the head, []any at merges) into an
// int; the per-stage function is a keyed version of it so every stage
// and every merge ordering leaves a distinct fingerprint in the
// output.
func propHash(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case []any:
		h := 7
		for _, part := range x {
			h = h*1000003 + propHash(part)
		}
		return h
	default:
		panic(fmt.Sprintf("unexpected item type %T", v))
	}
}

func propStageFn(id int) Func {
	return func(_ context.Context, v any) (any, error) {
		return id*31 + propHash(v)*3, nil
	}
}

// randTopology builds a valid random stage graph: a chain backbone
// (guaranteeing the single-entry/single-exit path contract) plus
// random extra forward edges that create splits and merges.
func randTopology(r *rand.Rand) ([]Stage, []topo.Edge) {
	n := 2 + r.Intn(5) // 2..6 stages
	stages := make([]Stage, n)
	for i := range stages {
		stages[i] = Stage{
			Name:     fmt.Sprintf("s%d", i),
			Fn:       propStageFn(i),
			Replicas: 1 + r.Intn(4),
			Buffer:   1 + r.Intn(8),
		}
	}
	var edges []topo.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, topo.Edge{From: i, To: i + 1})
	}
	extra := r.Intn(n)
	for k := 0; k < extra; k++ {
		from := r.Intn(n - 1)
		to := from + 1 + r.Intn(n-1-from)
		dup := false
		for _, e := range edges {
			if e.From == from && e.To == to {
				dup = true
				break
			}
		}
		if !dup {
			edges = append(edges, topo.Edge{From: from, To: to})
		}
	}
	return stages, edges
}

// propExpected evaluates the graph per item in plain sequential code:
// the ordered-output oracle both wirings must match. Merge parts are
// assembled in edge-list order, the order the runtime wires them.
func propExpected(stages []Stage, edges []topo.Edge, input int) int {
	n := len(stages)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		var in any
		if i == 0 {
			in = input
		} else {
			var parts []any
			for _, e := range edges {
				if e.To == i {
					parts = append(parts, vals[e.From])
				}
			}
			if len(parts) == 1 {
				in = parts[0]
			} else {
				in = parts
			}
		}
		out, err := stages[i].Fn(context.Background(), in)
		if err != nil {
			panic(err)
		}
		vals[i] = out
	}
	return vals[n-1].(int)
}

// build constructs a fresh pipeline over shared stage definitions
// (pipelines are single-use; each run needs its own).
func propBuild(t *testing.T, stages []Stage, edges []topo.Edge, grain int) *Pipeline {
	t.Helper()
	p, err := NewGraph(stages, edges)
	if err != nil {
		t.Fatalf("building topology: %v", err)
	}
	if grain > 1 {
		if err := p.EnableBatch(grain, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestBatchedMatchesUnbatchedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	grains := []int{2, 3, 7, 16, 64}
	const items = 300
	for trial := 0; trial < 12; trial++ {
		stages, edges := randTopology(r)
		want := make([]int, items)
		for i := range want {
			want[i] = propExpected(stages, edges, i)
		}
		inputs := make([]any, items)
		for i := range inputs {
			inputs[i] = i
		}

		got, err := propBuild(t, stages, edges, 1).Process(context.Background(), inputs)
		if err != nil {
			t.Fatalf("trial %d unbatched: %v", trial, err)
		}
		for i, v := range got {
			if v.(int) != want[i] {
				t.Fatalf("trial %d unbatched output %d: got %v want %v (edges %v)", trial, i, v, want[i], edges)
			}
		}

		for _, grain := range grains {
			got, err := propBuild(t, stages, edges, grain).Process(context.Background(), inputs)
			if err != nil {
				t.Fatalf("trial %d grain %d: %v", trial, grain, err)
			}
			if len(got) != items {
				t.Fatalf("trial %d grain %d: %d outputs for %d inputs", trial, grain, len(got), items)
			}
			for i, v := range got {
				if v.(int) != want[i] {
					t.Fatalf("trial %d grain %d output %d: got %v want %v (edges %v)",
						trial, grain, i, v, want[i], edges)
				}
			}
		}
	}
}

// TestBatchedCancelPrefixProperty cancels mid-stream at random points:
// whatever both wirings manage to deliver before the cancel must still
// be a correct ordered prefix — cancellation may truncate the stream
// but never corrupt or reorder it.
func TestBatchedCancelPrefixProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const items = 400
	for trial := 0; trial < 8; trial++ {
		stages, edges := randTopology(r)
		want := make([]int, items)
		for i := range want {
			want[i] = propExpected(stages, edges, i)
		}
		cancelAt := 1 + r.Intn(items/2)
		for _, grain := range []int{1, 3, 16} {
			p := propBuild(t, stages, edges, grain)
			ctx, cancel := context.WithCancel(context.Background())
			in := make(chan any, 64)
			out, errs := p.Run(ctx, in)
			go func() {
				defer close(in)
				for i := 0; i < items; i++ {
					select {
					case in <- i:
					case <-ctx.Done():
						return
					}
				}
			}()
			seen := 0
			for v := range out {
				if seen < len(want) && v.(int) != want[seen] {
					t.Fatalf("trial %d grain %d output %d: got %v want %v (cancel at %d, edges %v)",
						trial, grain, seen, v, want[seen], cancelAt, edges)
				}
				seen++
				if seen == cancelAt {
					cancel()
				}
			}
			err := <-errs
			cancel()
			if seen > items {
				t.Fatalf("trial %d grain %d: %d outputs for %d inputs", trial, grain, seen, items)
			}
			// A run that drained everything before the cancel landed
			// reports success; otherwise the cancellation must surface.
			if err != nil && err != context.Canceled {
				t.Fatalf("trial %d grain %d: unexpected error %v", trial, grain, err)
			}
		}
	}
}
