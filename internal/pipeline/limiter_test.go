package pipeline

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestSetReplicasShrinkGrowChurn is the regression test for the
// limiter's resize semantics: a stage's replica limit is hammered up
// and down while items flow. Every item must still come out, in order,
// and the run must not deadlock — in particular, a grow that legalises
// several blocked dispatch slots at once must wake all of them
// (Broadcast on resize), not just one.
func TestSetReplicasShrinkGrowChurn(t *testing.T) {
	const items = 400
	var inFlight, peak atomic.Int64
	p, err := New(Stage{
		Name:     "churn",
		Replicas: 4,
		Fn: func(ctx context.Context, v any) (any, error) {
			c := inFlight.Add(1)
			for {
				hi := peak.Load()
				if c <= hi || peak.CompareAndSwap(hi, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	in := make(chan any)
	go func() {
		defer close(in)
		for i := 0; i < items; i++ {
			in <- i
		}
	}()
	out, errs := p.Run(context.Background(), in)

	// Churn the limit while the run is live: repeated shrink-to-1 and
	// grow-to-16 transitions race against acquire/release.
	stop := make(chan struct{})
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		limits := []int{1, 16, 2, 8, 1, 12}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := p.SetReplicas(0, limits[i%len(limits)]); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var got []int
	deadline := time.After(30 * time.Second)
	for i := 0; i < items; i++ {
		select {
		case v, ok := <-out:
			if !ok {
				t.Fatalf("output closed after %d of %d items", len(got), items)
			}
			got = append(got, v.(int))
		case <-deadline:
			t.Fatalf("deadlock: %d of %d items after 30s", len(got), items)
		}
	}
	close(stop)
	<-churned
	if _, ok := <-out; ok {
		t.Fatal("extra item after the last input")
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
	if p := peak.Load(); p > 16 {
		t.Fatalf("peak concurrency %d exceeded the largest limit 16", p)
	}
}

// TestGrowAdmitsAllAtOnce pins the Broadcast-on-grow behaviour through
// the public API: with the limit at 1 and several items blocked behind
// it, one SetReplicas grow must let them all run concurrently.
func TestGrowAdmitsAllAtOnce(t *testing.T) {
	const burst = 6
	var inFlight atomic.Int64
	reached := make(chan struct{}, burst)
	release := make(chan struct{})
	p, err := New(Stage{
		Name: "grow",
		Fn: func(ctx context.Context, v any) (any, error) {
			if inFlight.Add(1) == burst {
				close(release)
			}
			reached <- struct{}{}
			<-release // hold until all of the burst is in concurrently
			inFlight.Add(-1)
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan any, burst)
	for i := 0; i < burst; i++ {
		in <- i
	}
	close(in)
	out, errs := p.Run(context.Background(), in)

	// Wait until the single replica is wedged in the stage function,
	// then grow. Only a broadcast admits the remaining burst-1 items.
	<-reached
	if err := p.SetReplicas(0, burst); err != nil {
		t.Fatal(err)
	}
	count := 0
	deadline := time.After(10 * time.Second)
	for count < burst {
		select {
		case _, ok := <-out:
			if !ok {
				t.Fatalf("output closed at %d of %d", count, burst)
			}
			count++
		case <-deadline:
			t.Fatalf("grow stranded workers: %d of %d done", count, burst)
		}
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
