// Per-edge granularity: every stage boundary can carry its own batch
// grain, instead of one pipeline-wide knob.
//
// The cost asymmetry this serves: boundaries differ. An edge that
// crosses a high-latency link (or a boundary whose per-batch overhead
// dominates) wants a coarse grain; an edge feeding a latency-sensitive
// or load-imbalanced stage wants a fine one. The cost model prices
// these independently per boundary (model.PipelineSpec.Grains), so the
// live runtime must actuate them independently too.
//
// Not every edge can re-slab, though. Batches are formed once at the
// head and preserved 1-for-1 by every stage, which is what keeps a
// fan-in's zip aligned and lets a broadcast share one slab across its
// out-edges. Changing batch size inside one branch of a diamond would
// break the zip downstream. The edges where re-slabbing is safe are
// exactly the *bridges* of the stage DAG — edges that lie on every
// entry→exit path (removing one disconnects entry from exit). A bridge
// always leaves a single-out stage and enters a single-in stage, sits
// on the trunk every item crosses, and therefore re-slabs the whole
// stream consistently: everything downstream — including any later
// fan-out/fan-in — sees one coherent re-slabbed sequence.
//
// EnableBatchEdges therefore accepts a full grain vector (head + one
// per edge) but only arms re-slab machinery on bridge edges; non-bridge
// edges must declare the grain that already flows on them (validated
// here), which keeps the vector honest as a model input. Bridge grains
// and the head grain are live actuators (SetGrainAt), walked one
// boundary at a time by liveadapt's coordinate-descent grain walker.
package pipeline

import (
	"fmt"
	"sync/atomic"
	"time"
)

// EnableBatchEdges arms batched stage boundaries with a per-boundary
// grain vector before Run: grains[0] is the head batcher's grain and
// grains[1+ei] the grain of edge ei (in the edge order given to
// NewGraph; New's chain edges run 0→1, 1→2, …). Bridge edges — edges
// on every entry→exit path — may differ from the grain arriving at
// them; their producing stage re-slabs the stream (see batchSink).
// Non-bridge edges cannot change batch size (it would misalign zips
// over shared slabs), so their entry must equal the effective grain
// flowing out of their From stage. linger <= 0 picks DefaultLinger.
func (p *Pipeline) EnableBatchEdges(grains []int, linger time.Duration) error {
	if want := 1 + len(p.edges); len(grains) != want {
		return fmt.Errorf("pipeline: EnableBatchEdges wants %d grains (head + one per edge), got %d", want, len(grains))
	}
	for b, g := range grains {
		if g < 1 {
			return fmt.Errorf("pipeline: EnableBatchEdges grain[%d] = %d below 1", b, g)
		}
	}
	if linger <= 0 {
		linger = DefaultLinger
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ran {
		return fmt.Errorf("pipeline: EnableBatchEdges after Run")
	}

	regrain := p.bridgeEdges()

	// Effective-grain walk: compute the batch size flowing into every
	// stage (stages are in topological order — From < To on all edges)
	// and reject vectors a run could not realise.
	inEdges := make([][]int, len(p.stages))
	for ei, e := range p.edges {
		inEdges[e.To] = append(inEdges[e.To], ei)
	}
	eff := make([]int, len(p.stages))
	for i := range p.stages {
		if len(inEdges[i]) == 0 { // entry
			eff[i] = grains[0]
			continue
		}
		val := -1
		for _, ei := range inEdges[i] {
			g := eff[p.edges[ei].From]
			if regrain[ei] {
				g = grains[1+ei]
			} else if grains[1+ei] != eff[p.edges[ei].From] {
				return fmt.Errorf("pipeline: EnableBatchEdges edge %d (%d→%d) is not a bridge: its grain %d cannot differ from the %d flowing out of stage %d",
					ei, p.edges[ei].From, p.edges[ei].To, grains[1+ei], eff[p.edges[ei].From], p.edges[ei].From)
			}
			if val >= 0 && g != val {
				return fmt.Errorf("pipeline: EnableBatchEdges fan-in at stage %d receives conflicting grains %d and %d", i, val, g)
			}
			val = g
		}
		eff[i] = val
	}

	p.batchOn = true
	p.linger.Store(int64(linger))
	p.grain.Store(int64(grains[0]))
	p.edgeGrains = make([]atomic.Int64, len(grains))
	for b, g := range grains {
		p.edgeGrains[b].Store(int64(g))
	}
	p.regrain = regrain
	p.actBounds = p.actBounds[:0]
	for ei, br := range regrain {
		if br {
			p.actBounds = append(p.actBounds, ei)
		}
	}
	return nil
}

// bridgeEdges marks every edge whose removal disconnects entry from
// exit. O(E·(V+E)): one reachability sweep per edge, on graphs that are
// a handful of stages.
func (p *Pipeline) bridgeEdges() []bool {
	n := len(p.stages)
	outEdges := make([][]int, n)
	entry, exit := -1, -1
	hasIn := make([]bool, n)
	for ei, e := range p.edges {
		outEdges[e.From] = append(outEdges[e.From], ei)
		hasIn[e.To] = true
	}
	for i := 0; i < n; i++ {
		if !hasIn[i] && entry < 0 {
			entry = i
		}
		if len(outEdges[i]) == 0 {
			exit = i
		}
	}
	bridges := make([]bool, len(p.edges))
	if n == 1 {
		return bridges
	}
	reach := make([]bool, n)
	for skip := range p.edges {
		for i := range reach {
			reach[i] = false
		}
		reach[entry] = true
		// Stages are topologically ordered, so one ascending pass
		// settles reachability.
		for i := 0; i < n; i++ {
			if !reach[i] {
				continue
			}
			for _, ei := range outEdges[i] {
				if ei != skip {
					reach[p.edges[ei].To] = true
				}
			}
		}
		bridges[skip] = !reach[exit]
	}
	return bridges
}

// headGrain is the grain the head batcher packs to: the head boundary
// of the per-edge vector when EnableBatchEdges armed it, otherwise the
// single pipeline-wide grain.
func (p *Pipeline) headGrain() int64 {
	if p.edgeGrains != nil {
		return p.edgeGrains[0].Load()
	}
	return p.grain.Load()
}

// GrainBoundaries is the number of independently adjustable grain
// boundaries: 1 (the head) for EnableBatch pipelines, 1 + the number
// of bridge edges for EnableBatchEdges pipelines. Boundary 0 is always
// the head; boundaries 1..k-1 are the bridge edges in edge order.
func (p *Pipeline) GrainBoundaries() int {
	if p.edgeGrains == nil {
		return 1
	}
	return 1 + len(p.actBounds)
}

// BoundaryEdge maps an adjustable boundary index to its edge index in
// the pipeline's edge list; boundary 0 (the head) returns -1.
func (p *Pipeline) BoundaryEdge(b int) int {
	if b <= 0 || p.edgeGrains == nil || b > len(p.actBounds) {
		return -1
	}
	return p.actBounds[b-1]
}

// GrainAt returns the current grain of adjustable boundary b.
func (p *Pipeline) GrainAt(b int) int {
	if b == 0 {
		return int(p.headGrain())
	}
	if p.edgeGrains == nil || b < 0 || b > len(p.actBounds) {
		return 1
	}
	return int(p.edgeGrains[1+p.actBounds[b-1]].Load())
}

// SetGrainAt adjusts one boundary's grain (minimum 1) while the
// pipeline runs: boundary 0 resizes the head batcher's slabs, a bridge
// boundary resizes its edge's re-slab accumulator. This is the
// per-boundary counterpart of SetGrain and the actuator liveadapt's
// coordinate-descent grain walker drives.
func (p *Pipeline) SetGrainAt(b, n int) error {
	if n < 1 {
		return fmt.Errorf("pipeline: SetGrainAt(%d, %d) below 1", b, n)
	}
	if !p.batchOn {
		return fmt.Errorf("pipeline: SetGrainAt without EnableBatch")
	}
	if b < 0 || b >= p.GrainBoundaries() {
		return fmt.Errorf("pipeline: SetGrainAt on invalid boundary %d of %d", b, p.GrainBoundaries())
	}
	if b == 0 {
		if p.edgeGrains != nil {
			p.edgeGrains[0].Store(int64(n))
		}
		p.grain.Store(int64(n))
		return nil
	}
	p.edgeGrains[1+p.actBounds[b-1]].Store(int64(n))
	return nil
}

// EdgeGrains snapshots the full per-boundary grain vector (head +
// one per edge), or nil when EnableBatchEdges was not used.
func (p *Pipeline) EdgeGrains() []int {
	if p.edgeGrains == nil {
		return nil
	}
	out := make([]int, len(p.edgeGrains))
	for b := range p.edgeGrains {
		out[b] = int(p.edgeGrains[b].Load())
	}
	return out
}
