package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gridpipe/internal/topo"
)

// diamondStages builds head → {double, negate} → sum over ints: the
// merge receives []any{double(v), negate(v)} and adds them.
func diamondPipeline(t *testing.T, reps int) *Pipeline {
	t.Helper()
	p, err := NewGraph(
		[]Stage{
			{Name: "head", Fn: func(_ context.Context, v any) (any, error) { return v.(int) + 1, nil }},
			{Name: "double", Fn: func(_ context.Context, v any) (any, error) { return v.(int) * 2, nil }, Replicas: reps},
			{Name: "negate", Fn: func(_ context.Context, v any) (any, error) { return -v.(int), nil }, Replicas: reps},
			{Name: "sum", Fn: func(_ context.Context, v any) (any, error) {
				parts := v.([]any)
				return parts[0].(int) + parts[1].(int), nil
			}},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGraphDiamondOrderedResults(t *testing.T) {
	p := diamondPipeline(t, 3)
	var in []any
	for i := 0; i < 200; i++ {
		in = append(in, i)
	}
	out, err := p.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		// head: i+1; branches: 2(i+1) and -(i+1); sum: i+1.
		if want := i + 1; v.(int) != want {
			t.Fatalf("out[%d] = %v, want %d (fan-in order broken)", i, v, want)
		}
	}
	st := p.Stats()
	for i, s := range st {
		if s.Count != 200 {
			t.Fatalf("stage %d (%s) count = %d", i, s.Name, s.Count)
		}
	}
}

func TestGraphBranchErrorPropagates(t *testing.T) {
	p, err := NewGraph(
		[]Stage{
			{Name: "head", Fn: func(_ context.Context, v any) (any, error) { return v, nil }},
			{Name: "ok", Fn: func(_ context.Context, v any) (any, error) { return v, nil }},
			{Name: "bad", Fn: func(_ context.Context, v any) (any, error) {
				if v.(int) == 7 {
					return nil, errors.New("branch boom")
				}
				return v, nil
			}},
			{Name: "join", Fn: func(_ context.Context, v any) (any, error) { return v.([]any)[0], nil }},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var in []any
	for i := 0; i < 20; i++ {
		in = append(in, i)
	}
	if _, err := p.Process(context.Background(), in); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestGraphReplicatedMergeKeepsOrder(t *testing.T) {
	// Replicate the merge stage itself: its reorder ring must restore
	// the zip order downstream.
	p, err := NewGraph(
		[]Stage{
			{Name: "src", Fn: func(_ context.Context, v any) (any, error) { return v, nil }},
			{Name: "a", Fn: func(_ context.Context, v any) (any, error) { return v, nil }, Replicas: 4},
			{Name: "b", Fn: func(_ context.Context, v any) (any, error) { return fmt.Sprintf("#%d", v), nil }, Replicas: 2},
			{Name: "join", Fn: func(_ context.Context, v any) (any, error) {
				parts := v.([]any)
				return fmt.Sprintf("%v/%v", parts[0], parts[1]), nil
			}, Replicas: 4},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var in []any
	for i := 0; i < 300; i++ {
		in = append(in, i)
	}
	out, err := p.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := fmt.Sprintf("%d/#%d", i, i); v.(string) != want {
			t.Fatalf("out[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestNewGraphValidation(t *testing.T) {
	id := func(_ context.Context, v any) (any, error) { return v, nil }
	// Backward edge.
	if _, err := NewGraph(
		[]Stage{{Fn: id}, {Fn: id}},
		[]topo.Edge{{From: 1, To: 0}},
	); err == nil {
		t.Fatal("backward edge accepted")
	}
	// Disconnected interior stage.
	if _, err := NewGraph(
		[]Stage{{Fn: id}, {Fn: id}, {Fn: id}},
		[]topo.Edge{{From: 0, To: 2}},
	); err == nil {
		t.Fatal("disconnected stage accepted")
	}
	// Chain via New still works.
	if _, err := New(Stage{Fn: id}, Stage{Fn: id}); err != nil {
		t.Fatal(err)
	}
}
