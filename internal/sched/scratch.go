// Search scratch: the reusable context behind every strategy's hot
// path. One Scratch owns the buffers a search needs — candidate node
// lists, effective speeds, branch-and-bound state, DP tables, the
// result mapping's storage and a model.PredictScratch for the analytic
// evaluations — so a steady-state caller (the cluster's arbitration
// loop, the adaptation controller, the benchmarks) performs zero
// allocations per search.
//
// Two entry points exist:
//
//   - the classic Searcher/AvailSearcher API, which draws a Scratch
//     from a package pool per call and returns detached (caller-owned)
//     results — the old allocation profile at the call boundary only;
//   - SearchWith, which runs a strategy through a caller-held Scratch
//     and returns results ALIASING that scratch: valid until the next
//     search on it, free of any allocation.
package sched

import (
	"fmt"
	"sync"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// errMaskLen and errNoNodes mirror checkAvail's diagnostics for the
// scratch-path validators.
func errMaskLen(got, np int) error {
	return fmt.Errorf("sched: availability mask covers %d nodes, grid has %d", got, np)
}

func errNoNodes() error { return fmt.Errorf("sched: no nodes available") }

// SearchCounters accumulates candidate-evaluation statistics across
// searches: how large the walked spaces were and how many candidates
// actually reached the analytic model. The difference is the work
// branch-and-bound pruning eliminated.
type SearchCounters struct {
	// Candidates is the total size of the search spaces walked (the
	// np^ns candidates an unpruned enumeration would rate).
	Candidates uint64
	// Evaluated is the number of candidates the analytic model rated.
	Evaluated uint64
}

// Pruned returns the number of candidates cut without evaluation.
func (c SearchCounters) Pruned() uint64 {
	if c.Evaluated > c.Candidates {
		return 0
	}
	return c.Candidates - c.Evaluated
}

// PruneRatio returns Candidates/Evaluated — "the search did N× less
// model work than brute force". 1.0 means no pruning; 0 evaluations
// reports 0.
func (c SearchCounters) PruneRatio() float64 {
	if c.Evaluated == 0 {
		return 0
	}
	return float64(c.Candidates) / float64(c.Evaluated)
}

// bbFlow is one directed link's partial per-item bytes along the
// current branch-and-bound path (the sched-side mirror of the model's
// flow accumulator).
type bbFlow struct {
	a, b  grid.NodeID
	bytes float64
}

// Scratch is the reusable search context. The zero value is ready;
// buffers grow on first use and persist across searches. A Scratch is
// NOT safe for concurrent use.
type Scratch struct {
	ps *model.PredictScratch

	ids []grid.NodeID // candidate node list (checkAvailInto)
	eff []float64     // effective speeds (effInto)

	// Result storage: the mapping and prediction a scratch-path search
	// returns alias these.
	resBacking []grid.NodeID
	resRows    [][]grid.NodeID
	busyKeep   []float64
	busyKeep2  []float64 // second keep buffer (climb/improve interiors)

	// Branch-and-bound state (Exhaustive).
	bbAssign []grid.NodeID // current partial assignment, one node per stage
	bbRows   [][]grid.NodeID
	busy     []float64 // partial per-node busy seconds per item
	cores    []float64 // per-node core counts
	wOverEff []float64 // [stage*np+node] per-stage busy increment
	bbBytes  []float64 // per-depth incoming chain-edge bytes
	flows    []bbFlow  // partial per-pair link bytes along the path

	// ContiguousDP tables (flattened [i*(np+1)+j]).
	prefix []float64
	dp     []float64
	cut    []int32

	// Greedy state.
	order []int
	gBusy []float64

	// LocalSearch climb mapping.
	curBacking []grid.NodeID
	curRows    [][]grid.NodeID

	// Residual-load buffer (reservation-aware searches).
	loads []float64

	// Branch-and-bound incumbent/telemetry for the current search.
	bb bbState
}

// NewScratch returns an empty search scratch (it creates its own
// prediction scratch rather than borrowing a pooled one, so holding a
// Scratch long-term does not starve the model pool).
func NewScratch() *Scratch {
	return &Scratch{ps: model.NewPredictScratch()}
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// AcquireScratch takes a warm scratch from the package pool; pair with
// ReleaseScratch. The classic Search/SearchAvail entry points do this
// internally — hold one explicitly only around SearchWith loops.
func AcquireScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// ReleaseScratch returns a scratch to the pool. Results of SearchWith
// on it must not be used afterwards.
func ReleaseScratch(sc *Scratch) { scratchPool.Put(sc) }

// scratchSearcher is the internal strategy interface: search through a
// caller-owned scratch, returning results that alias it. Every
// built-in strategy implements it.
type scratchSearcher interface {
	searchScratch(sc *Scratch, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error)
}

// SearchWith is the zero-allocation counterpart of SearchAvailable: it
// runs the strategy through the caller's scratch. The returned
// mapping's rows and the prediction's NodeBusy alias scratch-owned
// storage — valid until the next search on sc; Clone/copy to retain.
// Strategies that do not implement the scratch path fall back to
// SearchAvailable (allocating, same results).
func SearchWith(sc *Scratch, s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	excludes := false
	for _, ok := range avail {
		if !ok {
			excludes = true
			break
		}
	}
	if !excludes {
		// Mirror SearchAvailable: a mask that excludes nothing is the
		// plain search (and its length is not validated).
		avail = nil
	}
	if ss, ok := s.(scratchSearcher); ok {
		return ss.searchScratch(sc, g, spec, loads, avail)
	}
	return SearchAvailable(s, g, spec, loads, avail)
}

// detach copies a scratch-aliased result into caller-owned storage —
// the boundary between the pooled internals and the classic API.
func detach(m model.Mapping, p model.Prediction, err error) (model.Mapping, model.Prediction, error) {
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	m = m.Clone()
	p.NodeBusy = append([]float64(nil), p.NodeBusy...)
	return m, p, nil
}

// searchPooled runs a scratch-path strategy through a pooled scratch
// and detaches the result: the classic SearchAvail body.
func searchPooled(ss scratchSearcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	return detach(ss.searchScratch(sc, g, spec, loads, avail))
}

// idsFor fills sc.ids with the available node IDs (nil mask = all).
func (sc *Scratch) idsFor(g *grid.Grid, avail []bool) ([]grid.NodeID, error) {
	np := g.NumNodes()
	if avail != nil && len(avail) != np {
		return nil, errMaskLen(len(avail), np)
	}
	if cap(sc.ids) < np {
		sc.ids = make([]grid.NodeID, 0, np)
	}
	sc.ids = sc.ids[:0]
	for i := 0; i < np; i++ {
		if avail == nil || avail[i] {
			sc.ids = append(sc.ids, grid.NodeID(i))
		}
	}
	if len(sc.ids) == 0 {
		return nil, errNoNodes()
	}
	return sc.ids, nil
}

// effFor fills sc.eff with per-node effective speeds, exactly
// effectiveSpeeds over reused storage.
func (sc *Scratch) effFor(g *grid.Grid, loads []float64) []float64 {
	np := g.NumNodes()
	if cap(sc.eff) < np {
		sc.eff = make([]float64, np)
	}
	sc.eff = sc.eff[:np]
	for n := range sc.eff {
		l := 0.0
		if loads != nil && n < len(loads) {
			l = clamp01(loads[n])
		}
		sc.eff[n] = g.Node(grid.NodeID(n)).Speed * (1 - l)
	}
	return sc.eff
}

// resultRows sizes the result-mapping storage for ns single-node
// stages and returns the backing array (resRows[i] = resBacking[i:i+1]).
func (sc *Scratch) resultRows(ns int) []grid.NodeID {
	sc.resBacking, sc.resRows = sizeRows(sc.resBacking, sc.resRows, ns)
	return sc.resBacking
}

// sizeRows grows a (backing, rows) pair for ns one-node stages with
// rows windowing the backing array.
func sizeRows(backing []grid.NodeID, rows [][]grid.NodeID, ns int) ([]grid.NodeID, [][]grid.NodeID) {
	if cap(backing) < ns {
		backing = make([]grid.NodeID, ns)
	}
	backing = backing[:ns]
	if cap(rows) < ns {
		rows = make([][]grid.NodeID, ns)
	}
	rows = rows[:ns]
	for i := range rows {
		rows[i] = backing[i : i+1 : i+1]
	}
	return backing, rows
}

func clamp01(l float64) float64 {
	if l < 0 {
		return 0
	}
	if l > 0.99 {
		return 0.99
	}
	return l
}
