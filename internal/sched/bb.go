// Branch-and-bound exhaustive search. The enumeration walks the
// assignment tree depth-first (stage 0 outermost, node IDs ascending —
// the exact order model.VisitMappings streams), carrying two partial
// bounds down the path:
//
//   - node bound: per-node busy seconds accumulate stage by stage in
//     the same order Predict sums them, so every partial sum is an FP
//     prefix of the final sum and 1/max(busy/cores) is a true upper
//     bound on the candidate's node-limited throughput;
//   - link bound (chain specs only): per-pair link bytes accumulate
//     edge by edge in Predict's program order, so bandwidth/partial-
//     bytes upper-bounds the final link bound. Stage graphs with an
//     explicit Topo skip this bound — their edge order is not aligned
//     with stage depth, and a reordered partial sum could dip below
//     the final value by an ulp and overprune.
//
// A subtree whose bound cannot STRICTLY beat the incumbent is cut.
// Because the walk visits candidates in enumeration order and the
// incumbent only improves on strict `>`, the surviving winner — and
// its prediction — is bit-identical to rating every candidate with
// model.Best: pruning removes only candidates that could never have
// replaced it.
package sched

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// bbState is the per-search context of the branch-and-bound walk,
// embedded in Scratch so the recursion allocates nothing.
type bbState struct {
	g     *grid.Grid
	spec  model.PipelineSpec
	loads []float64
	ids   []grid.NodeID
	np    int
	ns    int
	chain bool

	maxPC  float64 // running max of partial busy/cores over touched nodes
	linkUB float64 // running min of bandwidth/partial-bytes over touched pairs

	found     bool
	bestThr   float64
	pred      model.Prediction
	evaluated uint64
	err       error
}

// searchScratch implements scratchSearcher: the pruned exhaustive
// search over the available nodes.
func (s Exhaustive) searchScratch(sc *Scratch, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns := spec.NumStages()
	if ns <= 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	ids, err := sc.idsFor(g, avail)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	// Refuse obviously explosive spaces before enumerating.
	if float64(ns)*math.Log(float64(len(ids))) > math.Log(model.EnumerationLimit) {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf(
			"sched: exhaustive search over %d^%d mappings is infeasible", len(ids), ns)
	}
	np := g.NumNodes()
	if loads != nil && len(loads) != np {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf(
			"model: %d load estimates for %d nodes", len(loads), np)
	}

	// Per-(stage, node) busy increments, exactly the terms Predict
	// accumulates: Work/effective-speed (the unreplicated share is 1,
	// and 1.0*w is exact, so the precomputed quotient is bit-identical
	// to Predict's).
	eff := sc.effFor(g, loads)
	if cap(sc.wOverEff) < ns*np {
		sc.wOverEff = make([]float64, ns*np)
	}
	sc.wOverEff = sc.wOverEff[:ns*np]
	for d, st := range spec.Stages {
		for n := 0; n < np; n++ {
			sc.wOverEff[d*np+n] = st.Work / eff[n]
		}
	}
	if cap(sc.cores) < np {
		sc.cores = make([]float64, np)
	}
	sc.cores = sc.cores[:np]
	if cap(sc.busy) < np {
		sc.busy = make([]float64, np)
	}
	sc.busy = sc.busy[:np]
	for n := 0; n < np; n++ {
		sc.cores[n] = float64(g.Node(grid.NodeID(n)).Cores)
		sc.busy[n] = 0
	}
	// Incoming chain-edge bytes per depth: source→stage0, then each
	// stage's OutBytes into its successor. (The exit→sink edge never
	// enters the bound; leaves are rated by the full model anyway.)
	if cap(sc.bbBytes) < ns {
		sc.bbBytes = make([]float64, ns)
	}
	sc.bbBytes = sc.bbBytes[:ns]
	sc.bbBytes[0] = spec.InBytes
	for d := 1; d < ns; d++ {
		sc.bbBytes[d] = spec.Stages[d-1].OutBytes
	}
	sc.bbAssign, sc.bbRows = sizeRows(sc.bbAssign, sc.bbRows, ns)
	sc.resultRows(ns)
	sc.flows = sc.flows[:0]

	sc.bb = bbState{
		g: g, spec: spec, loads: loads, ids: ids,
		np: np, ns: ns, chain: spec.Topo == nil,
		linkUB: math.Inf(1),
	}
	sc.bbRec(0)
	bb := &sc.bb
	if s.Counters != nil {
		total := uint64(1)
		for i := 0; i < ns; i++ {
			total *= uint64(len(ids)) // guarded ≤ EnumerationLimit above
		}
		s.Counters.Candidates += total
		s.Counters.Evaluated += bb.evaluated
	}
	if bb.err != nil {
		return model.Mapping{}, model.Prediction{}, bb.err
	}
	if !bb.found {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("model: no candidate mappings")
	}
	return model.Mapping{Assign: sc.resRows}, bb.pred, nil
}

// bbRec extends the partial assignment at stage depth d with every
// available node, descending only into subtrees whose bound could
// still strictly beat the incumbent.
func (sc *Scratch) bbRec(d int) {
	bb := &sc.bb
	lastDepth := bb.ns - 1
	bytes := sc.bbBytes[d]
	for _, n := range bb.ids {
		ni := int(n)
		sc.bbAssign[d] = n

		// Push the node bound: this stage's busy lands on n in stage
		// order, an exact prefix of Predict's accumulation.
		prevBusy := sc.busy[ni]
		nb := prevBusy + sc.wOverEff[d*bb.np+ni]
		sc.busy[ni] = nb
		prevMax := bb.maxPC
		if pc := nb / sc.cores[ni]; pc > bb.maxPC {
			bb.maxPC = pc
		}

		// Push the link bound (chains only): the edge into stage d.
		prevLink := bb.linkUB
		flowsLen := len(sc.flows)
		touched := -1
		var touchedPrev float64
		if bb.chain && bytes != 0 {
			a := bb.spec.Source
			if d > 0 {
				a = sc.bbAssign[d-1]
			}
			if a != n {
				acc := bytes
				for i := range sc.flows {
					if sc.flows[i].a == a && sc.flows[i].b == n {
						touched, touchedPrev = i, sc.flows[i].bytes
						acc = touchedPrev + bytes
						sc.flows[i].bytes = acc
						break
					}
				}
				if touched < 0 {
					sc.flows = append(sc.flows, bbFlow{a: a, b: n, bytes: bytes})
				}
				if bound := bb.g.Link(a, n).Bandwidth / acc; bound < bb.linkUB {
					bb.linkUB = bound
				}
			}
		}

		ub := bb.linkUB
		if bb.maxPC > 0 {
			if nodeUB := 1 / bb.maxPC; nodeUB < ub {
				ub = nodeUB
			}
		}
		// Prune only when the bound PROVABLY cannot strictly beat the
		// incumbent (the negated form keeps NaN bounds on the evaluate
		// path, where model.Best's semantics apply).
		if !(bb.found && ub <= bb.bestThr) {
			if d == lastDepth {
				sc.bbLeaf()
			} else {
				sc.bbRec(d + 1)
			}
		}

		// Pop.
		sc.busy[ni] = prevBusy
		bb.maxPC = prevMax
		bb.linkUB = prevLink
		if touched >= 0 {
			sc.flows[touched].bytes = touchedPrev
		} else if len(sc.flows) > flowsLen {
			sc.flows = sc.flows[:flowsLen]
		}
		if bb.err != nil {
			return
		}
	}
}

// bbLeaf rates the complete assignment with the full analytic model
// and keeps it if it strictly beats the incumbent — the same strict
// comparison model.Best applies, so ties break to the earlier
// candidate.
func (sc *Scratch) bbLeaf() {
	bb := &sc.bb
	p, err := model.PredictInto(bb.g, bb.spec, model.Mapping{Assign: sc.bbRows}, bb.loads, sc.ps)
	if err != nil {
		bb.err = err
		return
	}
	bb.evaluated++
	if bb.found && !(p.Throughput > bb.bestThr) {
		return
	}
	copy(sc.resBacking, sc.bbAssign)
	sc.busyKeep = p.CloneBusyInto(sc.busyKeep)
	bb.pred = p
	bb.bestThr = p.Throughput
	bb.found = true
}
