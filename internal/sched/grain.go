package sched

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// DefaultGrains is the grain ladder SearchGrain sweeps when the caller
// passes none: powers of two from per-item up to 256, the same walk
// the live controller's hill-climber takes one rung at a time.
var DefaultGrains = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SearchGrain extends a placement search with the granularity axis:
// it runs the searcher once per candidate grain (the spec re-rated at
// that batch size, see model.PipelineSpec.AtGrain) and returns the
// grain whose best mapping predicts the highest throughput, together
// with that mapping and prediction.
//
// Ties break towards the earlier candidate — on the ascending default
// ladder, the smaller grain: batching that buys no predicted
// throughput only costs latency, so per-item transfer wins unless
// amortization actually pays. With a zero BatchOverhead and no
// inter-node latency the sweep therefore degenerates to the plain
// search at grain 1.
func SearchGrain(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, grains []int) (int, model.Mapping, model.Prediction, error) {
	return SearchGrainAvail(s, g, spec, loads, grains, nil)
}

// SearchGrainAvail is SearchGrain restricted to the available nodes —
// the form the simulation-driven adaptivity engine calls when nodes
// have churned out (see SearchAvailable for mask semantics; nil means
// every node).
func SearchGrainAvail(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, grains []int, avail []bool) (int, model.Mapping, model.Prediction, error) {
	if s == nil {
		return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: SearchGrain with nil searcher")
	}
	if len(grains) == 0 {
		grains = DefaultGrains
	}
	bestGrain := 0
	var bestMap model.Mapping
	var bestPred model.Prediction
	for _, gr := range grains {
		if gr < 1 {
			return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain %d below 1", gr)
		}
		m, p, err := SearchAvailable(s, g, spec.AtGrain(gr), loads, avail)
		if err != nil {
			return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain %d: %w", gr, err)
		}
		if bestGrain == 0 || p.Throughput > bestPred.Throughput {
			bestGrain, bestMap, bestPred = gr, m, p
		}
	}
	return bestGrain, bestMap, bestPred, nil
}

// SearchGrainVector extends the granularity axis to one grain per
// stage boundary: it coordinate-descends over the boundaries, sweeping
// each one's ladder while holding the others fixed, and repeats until
// a full pass buys no strict improvement (three passes at most — in
// practice the walk converges in one or two because boundary grains
// couple only through shared links).
//
// The returned vector indexes like model.PipelineSpec.Grains:
// vector[i] is the grain entering stage i, vector[0] the head's. The
// descent starts every boundary at the ladder's first rung and only
// moves on strictly better predictions, so ties keep the earlier
// ladder entry — with the ascending default ladder, the finer grain,
// matching SearchGrain's bias that unpaid batching only costs latency.
// A spec whose topology admits no per-edge benefit therefore comes
// back uniform, equal to what SearchGrain would pick.
func SearchGrainVector(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, grains []int) ([]int, model.Mapping, model.Prediction, error) {
	return SearchGrainVectorAvail(s, g, spec, loads, grains, nil)
}

// SearchGrainVectorAvail is SearchGrainVector restricted to the
// available nodes (nil mask means every node).
func SearchGrainVectorAvail(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, grains []int, avail []bool) ([]int, model.Mapping, model.Prediction, error) {
	if s == nil {
		return nil, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: SearchGrainVector with nil searcher")
	}
	if len(grains) == 0 {
		grains = DefaultGrains
	}
	for _, gr := range grains {
		if gr < 1 {
			return nil, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain %d below 1", gr)
		}
	}
	ns := spec.NumStages()
	vec := make([]int, ns)
	for i := range vec {
		vec[i] = grains[0]
	}
	bestMap, bestPred, err := SearchAvailable(s, g, spec.AtGrains(vec), loads, avail)
	if err != nil {
		return nil, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain vector %v: %w", vec, err)
	}
	for pass := 0; pass < 3; pass++ {
		improved := false
		for b := 0; b < ns; b++ {
			keep := vec[b]
			for _, gr := range grains {
				if gr == keep {
					continue
				}
				vec[b] = gr
				m, p, err := SearchAvailable(s, g, spec.AtGrains(vec), loads, avail)
				if err != nil {
					return nil, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain vector %v: %w", vec, err)
				}
				if p.Throughput > bestPred.Throughput {
					keep, bestMap, bestPred = gr, m, p
					improved = true
				}
			}
			vec[b] = keep
		}
		if !improved {
			break
		}
	}
	return vec, bestMap, bestPred, nil
}
