package sched

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// DefaultGrains is the grain ladder SearchGrain sweeps when the caller
// passes none: powers of two from per-item up to 256, the same walk
// the live controller's hill-climber takes one rung at a time.
var DefaultGrains = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SearchGrain extends a placement search with the granularity axis:
// it runs the searcher once per candidate grain (the spec re-rated at
// that batch size, see model.PipelineSpec.AtGrain) and returns the
// grain whose best mapping predicts the highest throughput, together
// with that mapping and prediction.
//
// Ties break towards the earlier candidate — on the ascending default
// ladder, the smaller grain: batching that buys no predicted
// throughput only costs latency, so per-item transfer wins unless
// amortization actually pays. With a zero BatchOverhead and no
// inter-node latency the sweep therefore degenerates to the plain
// search at grain 1.
func SearchGrain(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, grains []int) (int, model.Mapping, model.Prediction, error) {
	if s == nil {
		return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: SearchGrain with nil searcher")
	}
	if len(grains) == 0 {
		grains = DefaultGrains
	}
	bestGrain := 0
	var bestMap model.Mapping
	var bestPred model.Prediction
	for _, gr := range grains {
		if gr < 1 {
			return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain %d below 1", gr)
		}
		m, p, err := s.Search(g, spec.AtGrain(gr), loads)
		if err != nil {
			return 0, model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: grain %d: %w", gr, err)
		}
		if bestGrain == 0 || p.Throughput > bestPred.Throughput {
			bestGrain, bestMap, bestPred = gr, m, p
		}
	}
	return bestGrain, bestMap, bestPred, nil
}
