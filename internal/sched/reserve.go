// Reservation-aware search: when several jobs share one grid, a
// mapping for one job must be scored against the capacity the other
// jobs' mappings already claim, not against bare nodes. Reservations
// turns a set of co-resident (spec, mapping) pairs into a per-node
// utilisation vector — NodeBusy per item × predicted rate, the
// fraction of each node the tenant saturates — which composes with
// background-load estimates into the residual-capacity load vector the
// ordinary SearchAvail machinery optimises over. The cluster arbiter
// (internal/cluster) rebuilds one per arbitration round.
package sched

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// Reservations is the per-node capacity other tenants have claimed.
type Reservations struct {
	g    *grid.Grid
	used []float64 // fraction of each node's capacity reserved
}

// NewReservations returns an empty reservation ledger for the grid.
func NewReservations(g *grid.Grid) *Reservations {
	return &Reservations{g: g, used: make([]float64, g.NumNodes())}
}

// Reset clears the ledger for a new arbitration round.
func (r *Reservations) Reset() {
	for i := range r.used {
		r.used[i] = 0
	}
}

// Add claims the capacity one tenant's mapping saturates at the given
// background loads: the analytic model rates the mapping, and each
// node is charged its busy-time per item times the predicted rate —
// the utilisation a saturated run imposes.
func (r *Reservations) Add(spec model.PipelineSpec, m model.Mapping, loads []float64) error {
	s := model.AcquirePredictScratch()
	defer model.ReleasePredictScratch(s)
	pred, err := model.PredictInto(r.g, spec, m, loads, s)
	if err != nil {
		return fmt.Errorf("sched: reserve: %w", err)
	}
	for n, busy := range pred.NodeBusy {
		r.used[n] += busy * pred.Throughput
	}
	return nil
}

// UseOf computes the per-node utilisation vector Add would charge for
// the mapping — busy per item × predicted rate — into dst (grown as
// needed) without touching the ledger. Callers that cache placements
// (the incremental arbiter) store this vector once and replay it with
// AddUse on later rounds, skipping the model evaluation entirely; the
// replayed charges are the very floats Add would have produced, so the
// ledger stays bit-identical.
func (r *Reservations) UseOf(dst []float64, spec model.PipelineSpec, m model.Mapping, loads []float64) ([]float64, error) {
	s := model.AcquirePredictScratch()
	defer model.ReleasePredictScratch(s)
	pred, err := model.PredictInto(r.g, spec, m, loads, s)
	if err != nil {
		return dst, fmt.Errorf("sched: reserve: %w", err)
	}
	dst = dst[:0]
	for _, busy := range pred.NodeBusy {
		dst = append(dst, busy*pred.Throughput)
	}
	return dst, nil
}

// AddUse charges a utilisation vector previously computed by UseOf.
func (r *Reservations) AddUse(use []float64) {
	for n, u := range use {
		r.used[n] += u
	}
}

// Used returns the reserved utilisation of node n in [0, 1+].
func (r *Reservations) Used(n grid.NodeID) float64 { return r.used[n] }

// SnapshotInto copies the ledger's per-node used vector into dst
// (grown as needed) and returns it: the upstream-ledger key the
// incremental arbiter caches each tenant's search under.
func (r *Reservations) SnapshotInto(dst []float64) []float64 {
	if cap(dst) < len(r.used) {
		dst = make([]float64, len(r.used))
	}
	dst = dst[:len(r.used)]
	copy(dst, r.used)
	return dst
}

// UsedEquals reports whether the ledger's used vector is bitwise equal
// to v — the cheap revalidation behind cached placements. A NaN entry
// compares unequal to itself, which safely degrades a would-be cache
// hit into a recomputation.
func (r *Reservations) UsedEquals(v []float64) bool {
	if len(v) != len(r.used) {
		return false
	}
	for i, u := range r.used {
		if u != v[i] {
			return false
		}
	}
	return true
}

// Residual folds the ledger into a background-load vector: the
// returned loads[n] is the base estimate plus the reserved fraction,
// clamped to the model's 0.99 saturation cap. base may be nil (idle).
func (r *Reservations) Residual(base []float64) []float64 {
	return r.ResidualInto(nil, base)
}

// ResidualInto is Residual over caller-owned storage: dst is grown as
// needed and returned, so steady-state arbitration loops fold the
// ledger without allocating.
func (r *Reservations) ResidualInto(dst, base []float64) []float64 {
	if cap(dst) < len(r.used) {
		dst = make([]float64, len(r.used))
	}
	dst = dst[:len(r.used)]
	for n := range dst {
		l := r.used[n]
		if base != nil && n < len(base) && base[n] > 0 {
			l += base[n]
		}
		if l > 0.99 {
			l = 0.99
		}
		dst[n] = l
	}
	return dst
}

// SearchResidual runs a fault- and reservation-aware search: the
// strategy sees the residual capacity (background load plus the
// ledger's claims) and only the nodes the availability mask admits.
// A nil ledger degenerates to SearchAvailable — the one-tenant case.
func SearchResidual(s Searcher, g *grid.Grid, spec model.PipelineSpec, base []float64, avail []bool, resv *Reservations) (model.Mapping, model.Prediction, error) {
	loads := base
	if resv != nil {
		loads = resv.Residual(base)
	}
	return SearchAvailable(s, g, spec, loads, avail)
}

// ImproveResidual is the replication pass of SearchResidual: bottleneck
// stages replicate onto additional admitted nodes while the prediction
// under residual capacity improves.
func ImproveResidual(g *grid.Grid, spec model.PipelineSpec, m model.Mapping, base []float64, maxReplicas int, avail []bool, resv *Reservations) (model.Mapping, model.Prediction, error) {
	loads := base
	if resv != nil {
		loads = resv.Residual(base)
	}
	return ImproveWithReplicationAvail(g, spec, m, loads, maxReplicas, avail)
}
