package sched

// Equivalence property: the branch-and-bound Exhaustive search —
// through a caller-held scratch (SearchWith) and through the pooled
// classic API (SearchAvail) — must return EXACTLY the candidate that
// materializing the space with model.EnumerateOver and rating it with
// model.Best selects: same mapping, bit-identical prediction. Pruning
// is a work optimisation, never a result change; this test is the
// fence that keeps it that way, across randomized grids × specs ×
// load vectors × availability masks, chain and DAG topologies.

import (
	"fmt"
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/topo"
)

// equivCase is one randomized topology shape of the sweep.
type equivCase struct {
	name string
	ns   int // stages (chain cases)
	np   int // nodes
	dag  bool
	mask bool // draw a random availability mask
}

func equivCases() []equivCase {
	return []equivCase{
		{name: "chain-4x4", ns: 4, np: 4},
		{name: "chain-6x3", ns: 6, np: 3},
		{name: "chain-3x5-masked", ns: 3, np: 5, mask: true},
		{name: "diamond-dag", np: 4, dag: true},
		{name: "diamond-dag-masked", np: 5, dag: true, mask: true},
	}
}

// buildEquiv draws one randomized (grid, spec, loads, avail) instance.
func buildEquiv(r *rng.Rand, c equivCase) (*grid.Grid, model.PipelineSpec, []float64, []bool, error) {
	speeds := make([]float64, c.np)
	for i := range speeds {
		speeds[i] = 0.5 + 3*r.Float64()
	}
	g, err := grid.Heterogeneous(speeds, grid.CampusLink)
	if err != nil {
		return nil, model.PipelineSpec{}, nil, nil, err
	}
	stage := func(name string) topo.Stage {
		return topo.Stage{Name: name, Work: 0.05 + 0.3*r.Float64(), OutBytes: 1e4 + 2e5*r.Float64()}
	}
	var spec model.PipelineSpec
	if c.dag {
		// Fan-out/fan-in: head → 2 branches → tail (the F8 shape).
		dg, err := topo.Diamond(stage("head"), []topo.Stage{stage("b0"), stage("b1")}, stage("tail"))
		if err != nil {
			return nil, model.PipelineSpec{}, nil, nil, err
		}
		spec, err = model.FromGraph(dg, 1e5)
		if err != nil {
			return nil, model.PipelineSpec{}, nil, nil, err
		}
	} else {
		stages := make([]model.StageSpec, c.ns)
		for i := range stages {
			s := stage(fmt.Sprintf("s%d", i))
			stages[i] = model.StageSpec{Name: s.Name, Work: s.Work, OutBytes: s.OutBytes}
		}
		spec = model.PipelineSpec{Stages: stages, InBytes: 1e5}
	}
	var loads []float64
	if r.Float64() < 0.7 { // sometimes nil: the idle-grid case
		loads = make([]float64, c.np)
		for i := range loads {
			if r.Float64() < 0.6 {
				loads[i] = r.Float64()
			}
		}
	}
	var avail []bool
	if c.mask {
		avail = make([]bool, c.np)
		kept := 0
		for i := range avail {
			if r.Float64() < 0.7 {
				avail[i] = true
				kept++
			}
		}
		if kept == 0 {
			avail[r.Intn(c.np)] = true
		}
	}
	return g, spec, loads, avail, nil
}

// refSearch is the ground truth: materialize every candidate over the
// admitted nodes and rate them all with model.Best.
func refSearch(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	var ids []grid.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		if avail == nil || avail[n] {
			ids = append(ids, grid.NodeID(n))
		}
	}
	mappings, err := model.EnumerateOver(spec.NumStages(), ids)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	idx, pred, err := model.Best(g, spec, mappings, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	return mappings[idx], pred, nil
}

// samePrediction requires bit-identical predictions (NaN-aware: the
// sweep never produces NaN, but a drifting implementation might).
func samePrediction(t *testing.T, label string, got, want model.Prediction) {
	t.Helper()
	if got.Throughput != want.Throughput {
		t.Errorf("%s: throughput %v, want %v", label, got.Throughput, want.Throughput)
	}
	if got.BottleneckNode != want.BottleneckNode {
		t.Errorf("%s: bottleneck %d, want %d", label, got.BottleneckNode, want.BottleneckNode)
	}
	if got.LinkBound != want.LinkBound && !(math.IsInf(got.LinkBound, 1) && math.IsInf(want.LinkBound, 1)) {
		t.Errorf("%s: link bound %v, want %v", label, got.LinkBound, want.LinkBound)
	}
	if len(got.NodeBusy) != len(want.NodeBusy) {
		t.Fatalf("%s: NodeBusy length %d, want %d", label, len(got.NodeBusy), len(want.NodeBusy))
	}
	for n := range want.NodeBusy {
		if got.NodeBusy[n] != want.NodeBusy[n] {
			t.Errorf("%s: NodeBusy[%d] = %v, want %v", label, n, got.NodeBusy[n], want.NodeBusy[n])
		}
	}
}

func TestExhaustiveEquivalence(t *testing.T) {
	sc := NewScratch() // one scratch across every case: stresses reuse
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		for _, c := range equivCases() {
			label := fmt.Sprintf("seed%d/%s", seed, c.name)
			g, spec, loads, avail, err := buildEquiv(r, c)
			if err != nil {
				t.Fatalf("%s: build: %v", label, err)
			}
			wantM, wantP, err := refSearch(g, spec, loads, avail)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}

			gotM, gotP, err := SearchWith(sc, Exhaustive{}, g, spec, loads, avail)
			if err != nil {
				t.Fatalf("%s: SearchWith: %v", label, err)
			}
			if !gotM.Equal(wantM) {
				t.Errorf("%s: SearchWith mapping %s, want %s", label, gotM, wantM)
			}
			samePrediction(t, label+"/scratch", gotP, wantP)

			pm, pp, err := Exhaustive{}.SearchAvail(g, spec, loads, avail)
			if err != nil {
				t.Fatalf("%s: SearchAvail: %v", label, err)
			}
			if !pm.Equal(wantM) {
				t.Errorf("%s: SearchAvail mapping %s, want %s", label, pm, wantM)
			}
			samePrediction(t, label+"/pooled", pp, wantP)
		}
	}
}

// TestExhaustiveCountersPrune pins the pruning telemetry: on a space
// large enough to bound, the walk must evaluate at least 5× fewer
// candidates than the full enumeration — the PR's acceptance floor.
func TestExhaustiveCountersPrune(t *testing.T) {
	r := rng.New(42)
	g, spec, loads, _, err := buildEquiv(r, equivCase{name: "chain-8x4", ns: 8, np: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ctr SearchCounters
	if _, _, err := SearchAvailable(Exhaustive{Counters: &ctr}, g, spec, loads, nil); err != nil {
		t.Fatal(err)
	}
	if ctr.Candidates != 65536 {
		t.Fatalf("candidates = %d, want 4^8", ctr.Candidates)
	}
	if ctr.Evaluated == 0 || ctr.PruneRatio() < 5 {
		t.Fatalf("prune ratio %.1f (evaluated %d of %d), want >= 5x",
			ctr.PruneRatio(), ctr.Evaluated, ctr.Candidates)
	}
}
