package sched

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// ForLatency searches for the mapping that minimises predicted mean
// per-item latency while sustaining a required arrival rate — the
// objective an interactive (open-system) deployment cares about, as
// opposed to the saturated-throughput objective of the other
// strategies.
//
// The search hill-climbs over single-stage moves (like LocalSearch)
// but scores candidates with model.PredictLatency at the given Rate;
// mappings that cannot sustain the rate (a node saturates) are
// infeasible and only accepted if nothing feasible is known yet.
type ForLatency struct {
	// Rate is the offered load in items/s the mapping must sustain.
	Rate float64
	// CV is the service-demand coefficient of variation used in the
	// latency model.
	CV float64
	// MaxIters bounds the climb (default 100).
	MaxIters int
}

// Name implements Searcher.
func (ForLatency) Name() string { return "for-latency" }

// Search implements Searcher. The returned Prediction is the
// throughput-model view of the chosen mapping (so callers can compare
// with the other strategies); the latency objective is available via
// model.PredictLatency.
func (l ForLatency) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return l.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: moves never target unavailable
// nodes.
func (l ForLatency) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := checkAvail(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	if l.Rate <= 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: ForLatency needs a positive rate")
	}
	maxIters := l.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	// Score returns (latency, feasible).
	score := func(m model.Mapping) (float64, bool) {
		p, err := model.PredictLatency(g, spec, m, loads, l.Rate, l.CV)
		if err != nil {
			return math.Inf(1), false
		}
		return p.Mean, true
	}

	// Start from the throughput-greedy solution: it spreads load, which
	// is usually feasible.
	cur, _, err := (Greedy{}).SearchAvail(g, spec, loads, avail)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	curLat, curFeasible := score(cur)

	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for si := 0; si < ns; si++ {
			orig := cur.Assign[si][0]
			for n := 0; n < np; n++ {
				if grid.NodeID(n) == orig || !usable(avail, n) {
					continue
				}
				cur.Assign[si][0] = grid.NodeID(n)
				lat, feasible := score(cur)
				better := (feasible && !curFeasible) ||
					(feasible == curFeasible && lat < curLat*(1-1e-12))
				if better {
					curLat, curFeasible = lat, feasible
					orig = grid.NodeID(n)
					improved = true
				} else {
					cur.Assign[si][0] = orig
				}
			}
			cur.Assign[si][0] = orig
		}
		if !improved {
			break
		}
	}
	if !curFeasible {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf(
			"sched: no mapping sustains %v items/s on this grid", l.Rate)
	}
	pred, err := model.Predict(g, spec, cur, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	return cur, pred, nil
}
