package sched

import (
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// With per-batch overhead dominating per-item work, the grain sweep
// should pick a large grain; with a free boundary it should stay at
// per-item transfer (smallest grain wins ties).
func TestSearchGrainPicksAmortizingGrain(t *testing.T) {
	g, err := grid.Homogeneous(3, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.001, 0)
	spec.BatchOverhead = 0.05

	grain, m, p, err := SearchGrain(Greedy{}, g, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grain < 64 {
		t.Fatalf("overhead-dominated spec picked grain %d, want a large one", grain)
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	// The winning prediction is the searcher's own rating of the spec
	// at the winning grain, not a re-derivation.
	_, direct, err := Greedy{}.Search(g, spec.AtGrain(grain), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput != direct.Throughput {
		t.Fatalf("sweep prediction %v != direct prediction %v at grain %d",
			p.Throughput, direct.Throughput, grain)
	}
	// A single-grain sweep returns that grain.
	g1, _, _, err := SearchGrain(Greedy{}, g, spec, nil, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 1 {
		t.Fatalf("single-grain sweep returned grain %d, want 1", g1)
	}
}

func TestSearchGrainFreeBackplaneStaysPerItem(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LocalLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.01, 0) // no bytes, no overhead
	grain, _, _, err := SearchGrain(Greedy{}, g, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grain != 1 {
		t.Fatalf("free boundary picked grain %d, want 1 (tie to smallest)", grain)
	}
}

// With one boundary's per-batch overhead dominating and the others
// free, the coordinate descent should coarsen exactly the expensive
// boundary and keep the free ones per-item — and do at least as well
// as the uniform sweep.
func TestSearchGrainVectorPerBoundary(t *testing.T) {
	g, err := grid.Homogeneous(3, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.001, 0)
	spec.BatchOverheads = []float64{0, 0.05, 0}

	vec, m, p, err := SearchGrainVector(Greedy{}, g, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != spec.NumStages() {
		t.Fatalf("vector has %d entries, want %d", len(vec), spec.NumStages())
	}
	if vec[1] < 64 {
		t.Fatalf("overhead-dominated boundary got grain %d, want a large one (vector %v)", vec[1], vec)
	}
	if vec[0] != 1 || vec[2] != 1 {
		t.Fatalf("free boundaries should stay per-item, got vector %v", vec)
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	_, direct, err := Greedy{}.Search(g, spec.AtGrains(vec), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput != direct.Throughput {
		t.Fatalf("descent prediction %v != direct prediction %v at vector %v",
			p.Throughput, direct.Throughput, vec)
	}
	_, _, uniform, err := SearchGrain(Greedy{}, g, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput < uniform.Throughput {
		t.Fatalf("per-boundary vector %v predicts %v, below uniform sweep's %v",
			vec, p.Throughput, uniform.Throughput)
	}
}

func TestSearchGrainVectorFreeBoundariesStayUniform(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LocalLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.01, 0)
	vec, _, _, err := SearchGrainVector(Greedy{}, g, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for b, gr := range vec {
		if gr != 1 {
			t.Fatalf("free boundary %d picked grain %d, want 1 (tie to first rung)", b, gr)
		}
	}
}

func TestSearchGrainErrors(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.01, 0)
	if _, _, _, err := SearchGrain(nil, g, spec, nil, nil); err == nil {
		t.Fatal("nil searcher should error")
	}
	if _, _, _, err := SearchGrain(Greedy{}, g, spec, nil, []int{0}); err == nil {
		t.Fatal("grain 0 should error")
	}
	if _, _, _, err := SearchGrainVector(nil, g, spec, nil, nil); err == nil {
		t.Fatal("nil searcher should error for the vector search")
	}
	if _, _, _, err := SearchGrainVector(Greedy{}, g, spec, nil, []int{0}); err == nil {
		t.Fatal("grain 0 should error for the vector search")
	}
}
