package sched

import (
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// availStrategies are every built-in strategy with availability
// support (ForLatency is exercised separately — it needs a rate).
func availStrategies() []AvailSearcher {
	return []AvailSearcher{Exhaustive{}, ContiguousDP{}, Greedy{}, LocalSearch{Seed: 3}}
}

func usesOnly(m model.Mapping, avail []bool) bool {
	for _, nodes := range m.Assign {
		for _, n := range nodes {
			if !avail[n] {
				return false
			}
		}
	}
	return true
}

// TestSearchAvailExcludesDownNodes: no strategy may place a stage on
// an unavailable node, even when it is by far the fastest.
func TestSearchAvailExcludesDownNodes(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 8, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.2, 1e5)
	avail := []bool{true, false, true} // the 8× node is down

	for _, s := range availStrategies() {
		m, pred, err := s.SearchAvail(g, spec, nil, avail)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !usesOnly(m, avail) {
			t.Fatalf("%s mapped onto a down node: %s", s.Name(), m)
		}
		if pred.Throughput <= 0 {
			t.Fatalf("%s: non-positive prediction", s.Name())
		}
	}

	lm, _, err := (ForLatency{Rate: 1}).SearchAvail(g, spec, nil, avail)
	if err != nil {
		t.Fatal(err)
	}
	if !usesOnly(lm, avail) {
		t.Fatalf("for-latency mapped onto a down node: %s", lm)
	}
}

// TestSearchAvailNilMatchesSearch: a nil mask must reproduce the plain
// search exactly (the controller passes nil while all nodes are up, so
// no-churn runs stay bit-identical).
func TestSearchAvailNilMatchesSearch(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 1.5, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(4, 0.2, 1e5)
	for _, s := range availStrategies() {
		m1, p1, err := s.Search(g, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		m2, p2, err := s.SearchAvail(g, spec, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !m1.Equal(m2) || p1.Throughput != p2.Throughput {
			t.Fatalf("%s: nil-mask search diverged: %s vs %s", s.Name(), m1, m2)
		}
	}
}

// TestSearchAvailErrors: an all-false or mis-sized mask fails cleanly.
func TestSearchAvailErrors(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 1e4)
	for _, s := range availStrategies() {
		if _, _, err := s.SearchAvail(g, spec, nil, []bool{false, false}); err == nil {
			t.Fatalf("%s: all-down mask should fail", s.Name())
		}
		if _, _, err := s.SearchAvail(g, spec, nil, []bool{true}); err == nil {
			t.Fatalf("%s: mis-sized mask should fail", s.Name())
		}
	}
}

// plainSearcher implements only Searcher, never AvailSearcher.
type plainSearcher struct{}

func (plainSearcher) Name() string { return "plain" }
func (plainSearcher) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	m := model.SingleNode(spec.NumStages(), 0)
	p, err := model.Predict(g, spec, m, loads)
	return m, p, err
}

// TestSearchAvailableRequiresAvailSearcher: a mask that excludes nodes
// must error loudly for a strategy without availability support
// instead of silently searching the full grid; nil and all-true masks
// still fall back to the plain search.
func TestSearchAvailableRequiresAvailSearcher(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 1e4)
	if _, _, err := SearchAvailable(plainSearcher{}, g, spec, nil, nil); err != nil {
		t.Fatalf("nil mask: %v", err)
	}
	if _, _, err := SearchAvailable(plainSearcher{}, g, spec, nil, []bool{true, true}); err != nil {
		t.Fatalf("all-true mask: %v", err)
	}
	if _, _, err := SearchAvailable(plainSearcher{}, g, spec, nil, []bool{true, false}); err == nil {
		t.Fatal("excluding mask silently ignored by a non-AvailSearcher strategy")
	}
}

// TestImproveWithReplicationAvail: replicas only land on available
// nodes.
func TestImproveWithReplicationAvail(t *testing.T) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.3, 1e4)
	spec.Stages[1].Work = 1.2 // heavy replicable bottleneck
	avail := []bool{true, true, false, true}
	m, _, err := ImproveWithReplicationAvail(g, spec, model.FromNodes(0, 1), nil, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if !usesOnly(m, avail) {
		t.Fatalf("replication used a down node: %s", m)
	}
	if len(m.Assign[1]) < 2 {
		t.Fatalf("bottleneck not replicated: %s", m)
	}
}

// TestSearchAvailSingleSurvivor: with one live node every strategy
// must collapse the whole pipeline onto it.
func TestSearchAvailSingleSurvivor(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 3}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.1, 1e4)
	avail := []bool{false, true, false}
	for _, s := range availStrategies() {
		m, _, err := s.SearchAvail(g, spec, nil, avail)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for si, nodes := range m.Assign {
			if len(nodes) != 1 || nodes[0] != 1 {
				t.Fatalf("%s: stage %d not on the lone survivor: %s", s.Name(), si, m)
			}
		}
	}
}
