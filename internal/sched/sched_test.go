package sched

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

func het(t *testing.T, speeds ...float64) *grid.Grid {
	t.Helper()
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	g := het(t, 1, 4)
	spec := model.Balanced(2, 0.1, 0)
	m, pred, err := (Exhaustive{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both stages on the 4x node: 0.2/4 = 0.05 s/item → 20/s.
	if math.Abs(pred.Throughput-20) > 1e-9 {
		t.Fatalf("throughput = %v (%s), want 20", pred.Throughput, m)
	}
	if !m.Equal(model.SingleNode(2, 1)) {
		t.Fatalf("mapping = %s, want (1,1)", m)
	}
}

func TestExhaustiveRefusesExplosion(t *testing.T) {
	g := het(t, 1, 1, 1, 1, 1, 1, 1, 1)
	spec := model.Balanced(30, 0.1, 0)
	if _, _, err := (Exhaustive{}).Search(g, spec, nil); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestContiguousDPBalancedHomogeneous(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.1, 0)
	m, pred, err := (ContiguousDP{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One stage per node is optimal and contiguous.
	if math.Abs(pred.Throughput-10) > 1e-9 {
		t.Fatalf("throughput = %v (%s), want 10", pred.Throughput, m)
	}
	used := m.NodesUsed()
	if len(used) != 3 {
		t.Fatalf("expected all 3 nodes used, got %v", used)
	}
}

func TestContiguousDPRespectsContiguity(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.1},
		{Name: "b", Work: 0.3},
		{Name: "c", Work: 0.1},
	}}
	m, _, err := (ContiguousDP{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Groups must be contiguous: once the node changes it never goes
	// back.
	seen := map[grid.NodeID]bool{}
	var last grid.NodeID = -1
	for _, ns := range m.Assign {
		n := ns[0]
		if n != last {
			if seen[n] {
				t.Fatalf("mapping %s is not contiguous", m)
			}
			seen[n] = true
			last = n
		}
	}
}

func TestContiguousDPMatchesExhaustiveOnChainFriendlyCase(t *testing.T) {
	// Heavy middle stage, heterogeneous nodes, no communication cost:
	// DP should find the same bottleneck value as exhaustive whenever
	// the optimum happens to be contiguous.
	g := het(t, 1, 2)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.1},
		{Name: "b", Work: 0.1},
		{Name: "c", Work: 0.4},
	}}
	_, dpPred, err := (ContiguousDP{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, exPred, err := (Exhaustive{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dpPred.Throughput-exPred.Throughput) > 1e-9 {
		t.Fatalf("DP %v vs exhaustive %v", dpPred.Throughput, exPred.Throughput)
	}
}

func TestContiguousDPUsesLoadEstimates(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.1, 0)
	// Node 0 heavily loaded: both stages should flee to node 1.
	m, _, err := (ContiguousDP{}).Search(g, spec, []float64{0.9, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range m.Assign {
		if ns[0] != 1 {
			t.Fatalf("stage on loaded node: %s", m)
		}
	}
}

func TestGreedyBalancesLoad(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.3},
		{Name: "b", Work: 0.2},
		{Name: "c", Work: 0.1},
	}}
	m, pred, err := (Greedy{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// LPT: 0.3 → node A; 0.2 → node B; 0.1 → node B. Bottleneck 0.3.
	if math.Abs(pred.Throughput-1/0.3) > 1e-9 {
		t.Fatalf("throughput = %v (%s), want %v", pred.Throughput, m, 1/0.3)
	}
}

func TestGreedyPrefersFastNodes(t *testing.T) {
	g := het(t, 1, 10)
	spec := model.Balanced(4, 0.1, 0)
	m, _, err := (Greedy{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	onFast := 0
	for _, ns := range m.Assign {
		if ns[0] == 1 {
			onFast++
		}
	}
	if onFast < 3 {
		t.Fatalf("greedy should pack most stages on the 10x node: %s", m)
	}
}

func TestLocalSearchAtLeastAsGoodAsGreedy(t *testing.T) {
	g := het(t, 1, 2, 3)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.2},
		{Name: "b", Work: 0.5},
		{Name: "c", Work: 0.1},
		{Name: "d", Work: 0.4},
	}}
	_, gp, err := (Greedy{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, lp, err := (LocalSearch{Seed: 1}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Throughput < gp.Throughput-1e-9 {
		t.Fatalf("local search (%v) worse than its greedy start (%v)", lp.Throughput, gp.Throughput)
	}
}

func TestLocalSearchNearExhaustiveOnSmallCase(t *testing.T) {
	g := het(t, 1, 2)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.1},
		{Name: "b", Work: 0.2},
		{Name: "c", Work: 0.3},
	}}
	_, ex, err := (Exhaustive{}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ls, err := (LocalSearch{Seed: 7, Restarts: 5}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Throughput < 0.95*ex.Throughput {
		t.Fatalf("local search %v far from optimum %v", ls.Throughput, ex.Throughput)
	}
}

func TestLocalSearchDeterministicForSeed(t *testing.T) {
	g := het(t, 1, 2, 3)
	spec := model.Balanced(5, 0.1, 1000)
	m1, p1, err := (LocalSearch{Seed: 42}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, p2, err := (LocalSearch{Seed: 42}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) || p1.Throughput != p2.Throughput {
		t.Fatal("local search not deterministic for fixed seed")
	}
}

func TestSearchersRejectEmptyPipeline(t *testing.T) {
	g := het(t, 1)
	empty := model.PipelineSpec{}
	for _, s := range []Searcher{Exhaustive{}, ContiguousDP{}, Greedy{}, LocalSearch{}} {
		if _, _, err := s.Search(g, empty, nil); err == nil {
			t.Errorf("%s accepted empty pipeline", s.Name())
		}
	}
}

func TestSearcherNames(t *testing.T) {
	names := map[string]Searcher{
		"exhaustive":    Exhaustive{},
		"contiguous-dp": ContiguousDP{},
		"greedy":        Greedy{},
		"local-search":  LocalSearch{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestImproveWithReplication(t *testing.T) {
	g := het(t, 1, 1, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "light", Work: 0.05},
		{Name: "heavy", Work: 0.3, Replicable: true},
	}}
	start := model.FromNodes(0, 1)
	m, pred, err := ImproveWithReplication(g, spec, start, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assign[1]) < 2 {
		t.Fatalf("bottleneck stage not replicated: %s", m)
	}
	base, _ := model.Predict(g, spec, start, nil)
	if pred.Throughput <= base.Throughput {
		t.Fatalf("replication did not help: %v vs %v", pred.Throughput, base.Throughput)
	}
}

func TestImproveWithReplicationRespectsReplicableFlag(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "light", Work: 0.05},
		{Name: "stateful", Work: 0.3, Replicable: false},
	}}
	start := model.FromNodes(0, 1)
	m, _, err := ImproveWithReplication(g, spec, start, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assign[1]) != 1 {
		t.Fatalf("non-replicable stage was replicated: %s", m)
	}
}

func TestImproveWithReplicationHonoursMaxReplicas(t *testing.T) {
	g := het(t, 1, 1, 1, 1, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "heavy", Work: 1, Replicable: true},
	}}
	m, _, err := ImproveWithReplication(g, spec, model.FromNodes(0), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assign[0]) > 3 {
		t.Fatalf("replica cap exceeded: %s", m)
	}
}

func TestImproveWithReplicationStopsWhenLinkBound(t *testing.T) {
	// Replication cannot beat a link bottleneck on input traffic; the
	// loop must terminate and return a finite mapping.
	g := het(t, 1, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 1e-3, Bandwidth: 1e4}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLink(0, 2, grid.Link{Latency: 1e-3, Bandwidth: 1e4}); err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{
		Stages:  []model.StageSpec{{Name: "h", Work: 0.5, Replicable: true}},
		InBytes: 1e4,
		Source:  0,
		Sink:    0,
	}
	m, pred, err := ImproveWithReplication(g, spec, model.FromNodes(1), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput <= 0 || m.NumStages() != 1 {
		t.Fatalf("bad result: %v %s", pred.Throughput, m)
	}
}
