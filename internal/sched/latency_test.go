package sched

import (
	"testing"
	"testing/quick"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
)

func TestForLatencyFeasibleBasic(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.1, 0)
	m, pred, err := (ForLatency{Rate: 5}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(3, 3); err != nil {
		t.Fatal(err)
	}
	// Must sustain the rate.
	if pred.Throughput < 5 {
		t.Fatalf("chosen mapping cannot sustain rate: %v", pred.Throughput)
	}
}

func TestForLatencySpreadsAtHighRate(t *testing.T) {
	// At rho close to 1 on a single node, spreading the stages cuts the
	// waiting dramatically; the search must not co-locate everything.
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.1, 0)
	m, _, err := (ForLatency{Rate: 9}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.NodesUsed()) < 3 {
		t.Fatalf("high-rate mapping under-spread: %s", m)
	}
}

func TestForLatencyCoLocatesAtLowRateWithSlowLinks(t *testing.T) {
	// At trivially low rate the latency is dominated by transfers, so
	// the search should co-locate chatty stages rather than spread.
	g := het(t, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.5, Bandwidth: 1e9}); err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.05, OutBytes: 1000},
		{Name: "b", Work: 0.05},
	}}
	m, _, err := (ForLatency{Rate: 0.5}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.NodesUsed()) != 1 {
		t.Fatalf("low-rate mapping crossed the slow link: %s", m)
	}
}

func TestForLatencyInfeasibleRate(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(2, 0.3, 0) // capacity 1/0.6 ≈ 1.67/s
	if _, _, err := (ForLatency{Rate: 5}).Search(g, spec, nil); err == nil {
		t.Fatal("unsustainable rate accepted")
	}
}

func TestForLatencyValidation(t *testing.T) {
	g := het(t, 1)
	if _, _, err := (ForLatency{}).Search(g, model.Balanced(1, 0.1, 0), nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, _, err := (ForLatency{Rate: 1}).Search(g, model.PipelineSpec{}, nil); err == nil {
		t.Fatal("empty pipeline accepted")
	}
}

func TestForLatencyBeatsThroughputSearchOnLatency(t *testing.T) {
	// The throughput searchers may pick chatty spreads; at a modest
	// rate, the latency search must never be worse on its own
	// objective.
	g := het(t, 1, 1, 2)
	if err := g.SetLink(0, 2, grid.Link{Latency: 0.2, Bandwidth: 1e8}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLink(1, 2, grid.Link{Latency: 0.2, Bandwidth: 1e8}); err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.1, OutBytes: 1e4},
		{Name: "b", Work: 0.1, OutBytes: 1e4},
		{Name: "c", Work: 0.1},
	}}
	const rate = 2.0
	lm, _, err := (ForLatency{Rate: rate}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm, _, err := (LocalSearch{Seed: 3}).Search(g, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	lLat, err := model.PredictLatency(g, spec, lm, nil, rate, 0)
	if err != nil {
		t.Fatal(err)
	}
	tLat, err := model.PredictLatency(g, spec, tm, nil, rate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lLat.Mean > tLat.Mean*1.001 {
		t.Fatalf("latency search (%v) worse than throughput search (%v) on latency",
			lLat.Mean, tLat.Mean)
	}
}

// Property: on random instances where exhaustive search is feasible,
// no heuristic beats it and all return valid mappings.
func TestHeuristicsNeverBeatExhaustiveProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		np := 2 + r.Intn(2)
		ns := 2 + r.Intn(3)
		speeds := make([]float64, np)
		for i := range speeds {
			speeds[i] = 0.5 + 2*r.Float64()
		}
		g, err := grid.Heterogeneous(speeds, grid.LANLink)
		if err != nil {
			return false
		}
		stages := make([]model.StageSpec, ns)
		for i := range stages {
			stages[i] = model.StageSpec{Name: "s", Work: 0.02 + 0.2*r.Float64()}
		}
		spec := model.PipelineSpec{Stages: stages}
		_, ex, err := (Exhaustive{}).Search(g, spec, nil)
		if err != nil {
			return false
		}
		for _, s := range []Searcher{ContiguousDP{}, Greedy{}, LocalSearch{Seed: uint64(seed)}} {
			m, p, err := s.Search(g, spec, nil)
			if err != nil {
				return false
			}
			if m.Validate(ns, np) != nil {
				return false
			}
			if p.Throughput > ex.Throughput*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
