package sched

import (
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

func twoNodeGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReservationsChargeUtilisation(t *testing.T) {
	g := twoNodeGrid(t)
	spec := model.Balanced(1, 0.5, 0)
	r := NewReservations(g)
	// One stage of 0.5s work on node 0: a saturated tenant runs at
	// 2 items/s and keeps node 0 100% busy.
	if err := r.Add(spec, model.FromNodes(0), nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Used(0); got < 0.99 {
		t.Fatalf("node 0 reserved %v, want ~1 (saturated tenant)", got)
	}
	if got := r.Used(1); got != 0 {
		t.Fatalf("node 1 reserved %v, want 0", got)
	}
	res := r.Residual(nil)
	if res[0] != 0.99 {
		t.Fatalf("residual load must clamp at the model's 0.99 cap, got %v", res[0])
	}
}

// TestSearchResidualAvoidsReservedNode: with node 0 fully reserved by
// another tenant, the search must place the new job on node 1.
func TestSearchResidualAvoidsReservedNode(t *testing.T) {
	g := twoNodeGrid(t)
	spec := model.Balanced(1, 0.5, 0)
	r := NewReservations(g)
	if err := r.Add(spec, model.FromNodes(0), nil); err != nil {
		t.Fatal(err)
	}
	m, _, err := SearchResidual(LocalSearch{Seed: 1}, g, spec, nil, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assign[0][0] != 1 {
		t.Fatalf("search placed the job on the saturated node: %s", m)
	}
}

// TestSearchZeroResidualCapacity: every node fully reserved is not an
// error — the model clamps at 0.99 and the search still returns the
// least-bad mapping (the cluster then runs it under proportional
// sharing).
func TestSearchZeroResidualCapacity(t *testing.T) {
	g := twoNodeGrid(t)
	spec := model.Balanced(2, 0.5, 0)
	r := NewReservations(g)
	if err := r.Add(spec, model.FromNodes(0, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(spec, model.FromNodes(1, 0), nil); err != nil {
		t.Fatal(err)
	}
	m, pred, err := SearchResidual(LocalSearch{Seed: 1}, g, spec, nil, nil, r)
	if err != nil {
		t.Fatalf("zero residual capacity must degrade, not fail: %v", err)
	}
	if pred.Throughput <= 0 {
		t.Fatalf("prediction must stay positive under the clamp, got %v", pred.Throughput)
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		t.Fatal(err)
	}
}

// TestSearchAllNodesExcluded: an all-false availability mask (every
// node draining or down) is a clean error on every strategy, never a
// panic.
func TestSearchAllNodesExcluded(t *testing.T) {
	g := twoNodeGrid(t)
	spec := model.Balanced(2, 0.5, 0)
	avail := []bool{false, false}
	for _, s := range []Searcher{Exhaustive{}, ContiguousDP{}, Greedy{}, LocalSearch{Seed: 1}} {
		if _, _, err := SearchAvailable(s, g, spec, nil, avail); err == nil {
			t.Fatalf("strategy %s accepted an empty node set", s.Name())
		}
	}
	if _, _, err := SearchResidual(LocalSearch{Seed: 1}, g, spec, nil, avail, NewReservations(g)); err == nil {
		t.Fatal("SearchResidual accepted an empty node set")
	}
	if _, _, err := ImproveResidual(g, spec, model.FromNodes(0, 1), nil, 0, avail, nil); err == nil {
		t.Fatal("ImproveResidual accepted an empty node set")
	}
}
