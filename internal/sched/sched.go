// Package sched implements mapping search: given a pipeline spec, a
// grid, and per-node load estimates, find a stage→node mapping with
// high predicted throughput under the analytic model.
//
// Specs may carry an arbitrary stage graph (internal/topo): every
// strategy searches over the graph's stages, and the predictions it
// optimises account for per-edge traffic (splits charge every branch,
// merges join), so fan-out/fan-in pipelines are first-class citizens
// of the search space.
//
// Four strategies with different cost/quality trade-offs are provided
// (compared head-to-head in experiment T4):
//
//   - Exhaustive: every unreplicated mapping; exact but exponential.
//   - ContiguousDP: optimal contiguous partition of the stage chain
//     onto the node sequence (chains-on-chains partitioning by dynamic
//     programming); polynomial, communication-light by construction.
//   - Greedy: LPT-style list scheduling of stages onto nodes.
//   - LocalSearch: hill-climbing over single-stage moves from a greedy
//     start, with random restarts.
package sched

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
)

// Searcher is a mapping-search strategy.
type Searcher interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Search returns a mapping for spec on g and its predicted
	// performance. loads[n] estimates background load per node (nil
	// means idle).
	Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error)
}

// AvailSearcher is a strategy that can restrict its search to a subset
// of available nodes — the fault-aware variant the adaptive controller
// uses under node churn. avail[n] false excludes node n from every
// candidate mapping; nil means all nodes are available. Every built-in
// strategy implements it.
type AvailSearcher interface {
	Searcher
	SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error)
}

// SearchAvailable dispatches a search with an availability mask. A nil
// or all-true mask falls back to the plain search. A mask that
// actually excludes nodes requires the strategy to implement
// AvailSearcher (all built-ins do): silently ignoring the exclusion
// would let a "fault-aware" remap re-select a crashed node, so that
// case errors instead.
func SearchAvailable(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	excludes := false
	for _, ok := range avail {
		if !ok {
			excludes = true
			break
		}
	}
	if excludes {
		as, ok := s.(AvailSearcher)
		if !ok {
			return model.Mapping{}, model.Prediction{}, fmt.Errorf(
				"sched: strategy %q cannot exclude unavailable nodes (does not implement AvailSearcher)", s.Name())
		}
		return as.SearchAvail(g, spec, loads, avail)
	}
	return s.Search(g, spec, loads)
}

// checkAvail validates a mask against the grid and returns the list of
// available node IDs (nil mask = every node).
func checkAvail(g *grid.Grid, avail []bool) ([]grid.NodeID, error) {
	np := g.NumNodes()
	if avail == nil {
		ids := make([]grid.NodeID, np)
		for i := range ids {
			ids[i] = grid.NodeID(i)
		}
		return ids, nil
	}
	if len(avail) != np {
		return nil, fmt.Errorf("sched: availability mask covers %d nodes, grid has %d", len(avail), np)
	}
	var ids []grid.NodeID
	for i, ok := range avail {
		if ok {
			ids = append(ids, grid.NodeID(i))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("sched: no nodes available")
	}
	return ids, nil
}

// usable reports whether node n may host stages under the mask.
func usable(avail []bool, n int) bool {
	return avail == nil || avail[n]
}

// Exhaustive enumerates all np^ns unreplicated mappings. Only feasible
// for small pipelines; it is the ground truth the other strategies are
// judged against.
type Exhaustive struct{}

// Name implements Searcher.
func (Exhaustive) Name() string { return "exhaustive" }

// Search implements Searcher.
func (s Exhaustive) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: enumeration runs over the
// available nodes only.
func (Exhaustive) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns := spec.NumStages()
	if ns <= 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	ids, err := checkAvail(g, avail)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	// Refuse obviously explosive spaces before enumerating.
	if float64(ns)*math.Log(float64(len(ids))) > math.Log(model.EnumerationLimit) {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf(
			"sched: exhaustive search over %d^%d mappings is infeasible", len(ids), ns)
	}
	cands := model.EnumerateOver(ns, ids)
	idx, pred, err := model.Best(g, spec, cands, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	return cands[idx], pred, nil
}

// ContiguousDP solves the chains-on-chains partitioning problem: split
// the stage chain into at most np contiguous groups and place group k
// on node k (nodes in ID order), minimising the bottleneck per-item
// busy time max_k (Σ work in group k) / effective-speed(node k).
//
// Contiguity means only adjacent-stage traffic ever crosses a link, the
// same structural restriction the era's mapping tables used. The DP is
// exact within that restriction but ignores link bandwidth (checked
// against Exhaustive in T4). On a non-linear stage graph "contiguous"
// means contiguous in the topological stage order — still a valid
// (work-balancing) heuristic, though edge-adjacency is then only
// approximate.
type ContiguousDP struct{}

// Name implements Searcher.
func (ContiguousDP) Name() string { return "contiguous-dp" }

// Search implements Searcher.
func (s ContiguousDP) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: unavailable nodes never host a
// group (they are "skipped over" in the node sequence).
func (ContiguousDP) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := checkAvail(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	eff := effectiveSpeeds(g, loads)

	// prefix[i] = total work of stages [0, i).
	prefix := make([]float64, ns+1)
	for i, st := range spec.Stages {
		prefix[i+1] = prefix[i] + st.Work
	}
	groupCost := func(from, to, node int) float64 { // stages [from, to) on node
		return (prefix[to] - prefix[from]) / eff[node]
	}

	const inf = math.MaxFloat64
	// dp[i][j]: minimal bottleneck for stages [0, i) using nodes [0, j).
	dp := make([][]float64, ns+1)
	cut := make([][]int, ns+1) // cut[i][j]: start of the last group
	for i := range dp {
		dp[i] = make([]float64, np+1)
		cut[i] = make([]int, np+1)
		for j := range dp[i] {
			dp[i][j] = inf
			cut[i][j] = -1
		}
	}
	dp[0][0] = 0
	for j := 1; j <= np; j++ {
		dp[0][j] = 0 // zero stages need zero groups; extra nodes stay idle
		for i := 1; i <= ns; i++ {
			// Node j-1 either hosts the last group [k, i) or is unused.
			if dp[i][j-1] < dp[i][j] {
				dp[i][j] = dp[i][j-1]
				cut[i][j] = -1 // marker: node j-1 unused
			}
			if !usable(avail, j-1) {
				continue // a down node can only be skipped over
			}
			for k := 0; k < i; k++ {
				if dp[k][j-1] == inf {
					continue
				}
				c := math.Max(dp[k][j-1], groupCost(k, i, j-1))
				if c < dp[i][j] {
					dp[i][j] = c
					cut[i][j] = k
				}
			}
		}
	}
	if dp[ns][np] == inf {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: DP found no feasible partition")
	}

	// Reconstruct stage→node assignment.
	assign := make([]grid.NodeID, ns)
	i, j := ns, np
	for i > 0 {
		k := cut[i][j]
		if k < 0 { // node j-1 unused
			j--
			continue
		}
		for s := k; s < i; s++ {
			assign[s] = grid.NodeID(j - 1)
		}
		i, j = k, j-1
	}
	m := model.FromNodes(assign...)
	pred, err := model.Predict(g, spec, m, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	return m, pred, nil
}

// Greedy is LPT-style list scheduling: stages in decreasing work order,
// each placed on the node whose accumulated per-item busy time (after
// placement) is smallest. Fast and mapping-quality is usually within a
// small factor of optimal, but it ignores communication entirely.
type Greedy struct{}

// Name implements Searcher.
func (Greedy) Name() string { return "greedy" }

// Search implements Searcher.
func (s Greedy) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: unavailable nodes are never
// placement candidates.
func (Greedy) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := checkAvail(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	eff := effectiveSpeeds(g, loads)

	order := make([]int, ns)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by decreasing work (ns is small; avoids pulling in
	// sort for a custom key).
	for i := 1; i < ns; i++ {
		for j := i; j > 0 && spec.Stages[order[j]].Work > spec.Stages[order[j-1]].Work; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	busy := make([]float64, np)
	assign := make([]grid.NodeID, ns)
	for _, si := range order {
		best, bestBusy := -1, math.Inf(1)
		for n := 0; n < np; n++ {
			if !usable(avail, n) {
				continue
			}
			b := busy[n] + spec.Stages[si].Work/eff[n]/float64(g.Node(grid.NodeID(n)).Cores)
			if b < bestBusy {
				best, bestBusy = n, b
			}
		}
		busy[best] = bestBusy
		assign[si] = grid.NodeID(best)
	}
	m := model.FromNodes(assign...)
	pred, err := model.Predict(g, spec, m, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	return m, pred, nil
}

// LocalSearch hill-climbs over single-stage reassignments, starting
// from the greedy solution plus random restarts. It optimises the full
// analytic prediction (including link bounds), unlike Greedy and the
// DP.
type LocalSearch struct {
	// Seed makes restarts reproducible.
	Seed uint64
	// Restarts is the number of random restarts (default 3).
	Restarts int
	// MaxIters bounds the climb length per start (default 200).
	MaxIters int
}

// Name implements Searcher.
func (LocalSearch) Name() string { return "local-search" }

// Search implements Searcher.
func (l LocalSearch) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return l.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: the climb's move set and the
// random restarts draw from the available nodes only.
func (l LocalSearch) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	ids, err := checkAvail(g, avail)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	restarts := l.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	maxIters := l.MaxIters
	if maxIters <= 0 {
		maxIters = 200
	}
	r := rng.New(l.Seed)

	climb := func(start model.Mapping) (model.Mapping, model.Prediction, error) {
		cur := start.Clone()
		pred, err := model.Predict(g, spec, cur, loads)
		if err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
		for iter := 0; iter < maxIters; iter++ {
			improved := false
			for si := 0; si < ns; si++ {
				orig := cur.Assign[si][0]
				for n := 0; n < np; n++ {
					if grid.NodeID(n) == orig || !usable(avail, n) {
						continue
					}
					cur.Assign[si][0] = grid.NodeID(n)
					p, err := model.Predict(g, spec, cur, loads)
					if err != nil {
						return model.Mapping{}, model.Prediction{}, err
					}
					if p.Throughput > pred.Throughput*(1+1e-12) {
						pred = p
						orig = grid.NodeID(n)
						improved = true
					} else {
						cur.Assign[si][0] = orig
					}
				}
				cur.Assign[si][0] = orig
			}
			if !improved {
				break
			}
		}
		return cur, pred, nil
	}

	bestM, bestP, err := func() (model.Mapping, model.Prediction, error) {
		gm, _, err := (Greedy{}).SearchAvail(g, spec, loads, avail)
		if err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
		return climb(gm)
	}()
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	for rs := 0; rs < restarts; rs++ {
		assign := make([]grid.NodeID, ns)
		for i := range assign {
			assign[i] = ids[r.Intn(len(ids))]
		}
		m, p, err := climb(model.FromNodes(assign...))
		if err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
		if p.Throughput > bestP.Throughput {
			bestM, bestP = m, p
		}
	}
	return bestM, bestP, nil
}

// effectiveSpeeds returns per-node speed scaled by the load estimates.
func effectiveSpeeds(g *grid.Grid, loads []float64) []float64 {
	eff := make([]float64, g.NumNodes())
	for n := range eff {
		l := 0.0
		if loads != nil && n < len(loads) {
			l = math.Min(math.Max(loads[n], 0), 0.99)
		}
		eff[n] = g.Node(grid.NodeID(n)).Speed * (1 - l)
	}
	return eff
}

// ImproveWithReplication greedily replicates the predicted bottleneck
// stage onto additional nodes while the analytic prediction improves.
// Only stages marked Replicable are touched; maxReplicas bounds the fan
// width (0 means the grid size). This is the planning primitive behind
// the adaptivity engine's replicate action and experiment F4.
func ImproveWithReplication(g *grid.Grid, spec model.PipelineSpec, m model.Mapping, loads []float64, maxReplicas int) (model.Mapping, model.Prediction, error) {
	return ImproveWithReplicationAvail(g, spec, m, loads, maxReplicas, nil)
}

// ImproveWithReplicationAvail is ImproveWithReplication restricted to
// the available nodes: replicas are never placed on Down or Draining
// nodes. A nil mask allows every node.
func ImproveWithReplicationAvail(g *grid.Grid, spec model.PipelineSpec, m model.Mapping, loads []float64, maxReplicas int, avail []bool) (model.Mapping, model.Prediction, error) {
	if avail != nil {
		if _, err := checkAvail(g, avail); err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
	}
	if maxReplicas <= 0 {
		maxReplicas = g.NumNodes()
	}
	cur := m.Clone()
	pred, err := model.Predict(g, spec, cur, loads)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	for {
		// Find the stage on the bottleneck node with the largest work
		// share that is allowed to replicate.
		si := -1
		var worst float64
		for i, st := range spec.Stages {
			if !st.Replicable || len(cur.Assign[i]) >= maxReplicas {
				continue
			}
			share := st.Work / float64(len(cur.Assign[i]))
			if onNode(cur.Assign[i], pred.BottleneckNode) && share > worst {
				si, worst = i, share
			}
		}
		if si < 0 {
			return cur, pred, nil
		}
		// Try adding each node not already hosting the stage; keep the
		// best improvement.
		bestP := pred
		bestN := grid.NodeID(-1)
		for n := 0; n < g.NumNodes(); n++ {
			id := grid.NodeID(n)
			if onNode(cur.Assign[si], id) || !usable(avail, n) {
				continue
			}
			trial := cur.WithReplicas(si, append(append([]grid.NodeID{}, cur.Assign[si]...), id)...)
			p, err := model.Predict(g, spec, trial, loads)
			if err != nil {
				return model.Mapping{}, model.Prediction{}, err
			}
			if p.Throughput > bestP.Throughput*(1+1e-9) {
				bestP, bestN = p, id
			}
		}
		if bestN < 0 {
			return cur, pred, nil
		}
		cur = cur.WithReplicas(si, append(append([]grid.NodeID{}, cur.Assign[si]...), bestN)...)
		pred = bestP
	}
}

func onNode(nodes []grid.NodeID, id grid.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
