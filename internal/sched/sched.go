// Package sched implements mapping search: given a pipeline spec, a
// grid, and per-node load estimates, find a stage→node mapping with
// high predicted throughput under the analytic model.
//
// Specs may carry an arbitrary stage graph (internal/topo): every
// strategy searches over the graph's stages, and the predictions it
// optimises account for per-edge traffic (splits charge every branch,
// merges join), so fan-out/fan-in pipelines are first-class citizens
// of the search space.
//
// Four strategies with different cost/quality trade-offs are provided
// (compared head-to-head in experiment T4):
//
//   - Exhaustive: every unreplicated mapping; exact but exponential.
//   - ContiguousDP: optimal contiguous partition of the stage chain
//     onto the node sequence (chains-on-chains partitioning by dynamic
//     programming); polynomial, communication-light by construction.
//   - Greedy: LPT-style list scheduling of stages onto nodes.
//   - LocalSearch: hill-climbing over single-stage moves from a greedy
//     start, with random restarts.
package sched

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
)

// Searcher is a mapping-search strategy.
type Searcher interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Search returns a mapping for spec on g and its predicted
	// performance. loads[n] estimates background load per node (nil
	// means idle).
	Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error)
}

// AvailSearcher is a strategy that can restrict its search to a subset
// of available nodes — the fault-aware variant the adaptive controller
// uses under node churn. avail[n] false excludes node n from every
// candidate mapping; nil means all nodes are available. Every built-in
// strategy implements it.
type AvailSearcher interface {
	Searcher
	SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error)
}

// SearchAvailable dispatches a search with an availability mask. A nil
// or all-true mask falls back to the plain search. A mask that
// actually excludes nodes requires the strategy to implement
// AvailSearcher (all built-ins do): silently ignoring the exclusion
// would let a "fault-aware" remap re-select a crashed node, so that
// case errors instead.
func SearchAvailable(s Searcher, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	excludes := false
	for _, ok := range avail {
		if !ok {
			excludes = true
			break
		}
	}
	if excludes {
		as, ok := s.(AvailSearcher)
		if !ok {
			return model.Mapping{}, model.Prediction{}, fmt.Errorf(
				"sched: strategy %q cannot exclude unavailable nodes (does not implement AvailSearcher)", s.Name())
		}
		return as.SearchAvail(g, spec, loads, avail)
	}
	return s.Search(g, spec, loads)
}

// checkAvail validates a mask against the grid and returns the list of
// available node IDs (nil mask = every node).
func checkAvail(g *grid.Grid, avail []bool) ([]grid.NodeID, error) {
	np := g.NumNodes()
	if avail == nil {
		ids := make([]grid.NodeID, np)
		for i := range ids {
			ids[i] = grid.NodeID(i)
		}
		return ids, nil
	}
	if len(avail) != np {
		return nil, fmt.Errorf("sched: availability mask covers %d nodes, grid has %d", len(avail), np)
	}
	var ids []grid.NodeID
	for i, ok := range avail {
		if ok {
			ids = append(ids, grid.NodeID(i))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("sched: no nodes available")
	}
	return ids, nil
}

// usable reports whether node n may host stages under the mask.
func usable(avail []bool, n int) bool {
	return avail == nil || avail[n]
}

// Exhaustive walks all np^ns unreplicated mappings with a
// branch-and-bound cut (bb.go): partial assignments carry the
// bottleneck-stage lower bound down the tree and subtrees that cannot
// strictly beat the incumbent are skipped without evaluation. The
// result — mapping and prediction — is bit-identical to rating every
// candidate; only the work changes. It remains the ground truth the
// other strategies are judged against, and exponential in the worst
// case.
type Exhaustive struct {
	// Counters, when non-nil, accumulates candidate/evaluation totals
	// across searches — the pruning-ratio telemetry the benchmarks
	// report. Nil skips the accounting.
	Counters *SearchCounters
}

// Name implements Searcher.
func (Exhaustive) Name() string { return "exhaustive" }

// Search implements Searcher.
func (s Exhaustive) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: enumeration runs over the
// available nodes only.
func (s Exhaustive) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	return searchPooled(s, g, spec, loads, avail)
}

// ContiguousDP solves the chains-on-chains partitioning problem: split
// the stage chain into at most np contiguous groups and place group k
// on node k (nodes in ID order), minimising the bottleneck per-item
// busy time max_k (Σ work in group k) / effective-speed(node k).
//
// Contiguity means only adjacent-stage traffic ever crosses a link, the
// same structural restriction the era's mapping tables used. The DP is
// exact within that restriction but ignores link bandwidth (checked
// against Exhaustive in T4). On a non-linear stage graph "contiguous"
// means contiguous in the topological stage order — still a valid
// (work-balancing) heuristic, though edge-adjacency is then only
// approximate.
type ContiguousDP struct{}

// Name implements Searcher.
func (ContiguousDP) Name() string { return "contiguous-dp" }

// Search implements Searcher.
func (s ContiguousDP) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: unavailable nodes never host a
// group (they are "skipped over" in the node sequence).
func (s ContiguousDP) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	return searchPooled(s, g, spec, loads, avail)
}

// searchScratch implements scratchSearcher. The DP runs over flattened
// scratch tables with two exact incumbent cuts in the inner loop:
//
//   - the last group's cost (prefix[i]-prefix[k])/eff is nonincreasing
//     in its start k (prefix sums of nonnegative work are monotone
//     under IEEE rounding), so a binary search finds the first k whose
//     group could beat the incumbent and everything before it is
//     skipped;
//   - dp[k][j-1] is nondecreasing in k (a longer stage prefix over the
//     same nodes can only cost more), so once it reaches the incumbent
//     the remaining starts cannot win and the loop breaks.
//
// Both cuts only skip starts whose candidate cost is provably ≥ the
// incumbent under the same FP comparisons the plain loop performs, and
// the surviving iteration order is unchanged (ascending k, strict <),
// so dp values, cut choices and the reconstructed mapping are
// bit-identical to the unpruned DP.
func (ContiguousDP) searchScratch(sc *Scratch, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := sc.idsFor(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	eff := sc.effFor(g, loads)

	// prefix[i] = total work of stages [0, i).
	if cap(sc.prefix) < ns+1 {
		sc.prefix = make([]float64, ns+1)
	}
	prefix := sc.prefix[:ns+1]
	prefix[0] = 0
	for i, st := range spec.Stages {
		prefix[i+1] = prefix[i] + st.Work
	}
	groupCost := func(from, to, node int) float64 { // stages [from, to) on node
		return (prefix[to] - prefix[from]) / eff[node]
	}

	const inf = math.MaxFloat64
	// dp[i*(np+1)+j]: minimal bottleneck for stages [0, i) using nodes
	// [0, j); cut holds the start of the last group (-1: node unused).
	cells := (ns + 1) * (np + 1)
	if cap(sc.dp) < cells {
		sc.dp = make([]float64, cells)
		sc.cut = make([]int32, cells)
	}
	dp, cut := sc.dp[:cells], sc.cut[:cells]
	for i := range dp {
		dp[i] = inf
		cut[i] = -1
	}
	stride := np + 1
	dp[0] = 0 // dp[0][0]
	for j := 1; j <= np; j++ {
		dp[j] = 0 // zero stages need zero groups; extra nodes stay idle
		for i := 1; i <= ns; i++ {
			cur, curCut := dp[i*stride+j], cut[i*stride+j]
			// Node j-1 either hosts the last group [k, i) or is unused.
			if prev := dp[i*stride+j-1]; prev < cur {
				cur, curCut = prev, -1 // marker: node j-1 unused
			}
			if usable(avail, j-1) {
				// Binary search the first start whose last-group cost
				// beats the incumbent; earlier starts cannot win.
				lo, hi := 0, i
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if groupCost(mid, i, j-1) < cur {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				for k := lo; k < i; k++ {
					dkj := dp[k*stride+j-1]
					if dkj >= cur {
						break // nondecreasing in k: no later start can win
					}
					c := dkj
					if gc := groupCost(k, i, j-1); gc > c {
						c = gc
					}
					if c < cur {
						cur, curCut = c, int32(k)
					}
				}
			}
			dp[i*stride+j], cut[i*stride+j] = cur, curCut
		}
	}
	if dp[ns*stride+np] == inf {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: DP found no feasible partition")
	}

	// Reconstruct stage→node assignment into the result storage.
	assign := sc.resultRows(ns)
	i, j := ns, np
	for i > 0 {
		k := cut[i*stride+j]
		if k < 0 { // node j-1 unused
			j--
			continue
		}
		for s := int(k); s < i; s++ {
			assign[s] = grid.NodeID(j - 1)
		}
		i, j = int(k), j-1
	}
	m := model.Mapping{Assign: sc.resRows}
	pred, err := model.PredictInto(g, spec, m, loads, sc.ps)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	sc.busyKeep = pred.CloneBusyInto(sc.busyKeep)
	return m, pred, nil
}

// Greedy is LPT-style list scheduling: stages in decreasing work order,
// each placed on the node whose accumulated per-item busy time (after
// placement) is smallest. Fast and mapping-quality is usually within a
// small factor of optimal, but it ignores communication entirely.
type Greedy struct{}

// Name implements Searcher.
func (Greedy) Name() string { return "greedy" }

// Search implements Searcher.
func (s Greedy) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return s.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: unavailable nodes are never
// placement candidates.
func (s Greedy) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	return searchPooled(s, g, spec, loads, avail)
}

// searchScratch implements scratchSearcher: the list scheduling runs
// over scratch buffers, the same placement math as always.
func (Greedy) searchScratch(sc *Scratch, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := sc.idsFor(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	eff := sc.effFor(g, loads)

	if cap(sc.order) < ns {
		sc.order = make([]int, ns)
	}
	order := sc.order[:ns]
	for i := range order {
		order[i] = i
	}
	// Insertion sort by decreasing work (ns is small; avoids pulling in
	// sort for a custom key).
	for i := 1; i < ns; i++ {
		for j := i; j > 0 && spec.Stages[order[j]].Work > spec.Stages[order[j-1]].Work; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	if cap(sc.gBusy) < np {
		sc.gBusy = make([]float64, np)
	}
	busy := sc.gBusy[:np]
	for n := range busy {
		busy[n] = 0
	}
	assign := sc.resultRows(ns)
	for _, si := range order {
		best, bestBusy := -1, math.Inf(1)
		for n := 0; n < np; n++ {
			if !usable(avail, n) {
				continue
			}
			b := busy[n] + spec.Stages[si].Work/eff[n]/float64(g.Node(grid.NodeID(n)).Cores)
			if b < bestBusy {
				best, bestBusy = n, b
			}
		}
		busy[best] = bestBusy
		assign[si] = grid.NodeID(best)
	}
	m := model.Mapping{Assign: sc.resRows}
	pred, err := model.PredictInto(g, spec, m, loads, sc.ps)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	sc.busyKeep = pred.CloneBusyInto(sc.busyKeep)
	return m, pred, nil
}

// LocalSearch hill-climbs over single-stage reassignments, starting
// from the greedy solution plus random restarts. It optimises the full
// analytic prediction (including link bounds), unlike Greedy and the
// DP.
type LocalSearch struct {
	// Seed makes restarts reproducible.
	Seed uint64
	// Restarts is the number of random restarts (default 3).
	Restarts int
	// MaxIters bounds the climb length per start (default 200).
	MaxIters int
}

// Name implements Searcher.
func (LocalSearch) Name() string { return "local-search" }

// Search implements Searcher.
func (l LocalSearch) Search(g *grid.Grid, spec model.PipelineSpec, loads []float64) (model.Mapping, model.Prediction, error) {
	return l.SearchAvail(g, spec, loads, nil)
}

// SearchAvail implements AvailSearcher: the climb's move set and the
// random restarts draw from the available nodes only.
func (l LocalSearch) SearchAvail(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	return searchPooled(l, g, spec, loads, avail)
}

// searchScratch implements scratchSearcher: the climb mutates one
// scratch-owned mapping in place and the best start's result is kept
// in the scratch's result storage. The evaluation sequence — greedy
// start, per-move predictions, restart draws — is unchanged, so the
// chosen mapping is identical to the allocating implementation's.
func (l LocalSearch) searchScratch(sc *Scratch, g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool) (model.Mapping, model.Prediction, error) {
	ns := spec.NumStages()
	if ns == 0 {
		return model.Mapping{}, model.Prediction{}, fmt.Errorf("sched: empty pipeline")
	}
	if _, err := sc.idsFor(g, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	restarts := l.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	maxIters := l.MaxIters
	if maxIters <= 0 {
		maxIters = 200
	}
	r := rng.New(l.Seed)

	// Greedy start (its result lands in the result storage; copy it
	// into the climb buffer before the climb overwrites anything).
	if _, _, err := (Greedy{}).searchScratch(sc, g, spec, loads, avail); err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	sc.curBacking, sc.curRows = sizeRows(sc.curBacking, sc.curRows, ns)
	copy(sc.curBacking, sc.resBacking)
	bestP, err := sc.climb(g, spec, loads, avail, maxIters)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	copy(sc.resBacking, sc.curBacking)
	sc.busyKeep = bestP.CloneBusyInto(sc.busyKeep)
	ids := sc.ids
	for rs := 0; rs < restarts; rs++ {
		for i := range sc.curBacking {
			sc.curBacking[i] = ids[r.Intn(len(ids))]
		}
		p, err := sc.climb(g, spec, loads, avail, maxIters)
		if err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
		if p.Throughput > bestP.Throughput {
			copy(sc.resBacking, sc.curBacking)
			sc.busyKeep = p.CloneBusyInto(sc.busyKeep)
			bestP = p
		}
	}
	return model.Mapping{Assign: sc.resRows}, bestP, nil
}

// climb hill-climbs sc.curRows in place over single-stage moves,
// returning the final prediction (NodeBusy detached into the scratch's
// secondary keep buffer, so it survives later evaluations).
func (sc *Scratch) climb(g *grid.Grid, spec model.PipelineSpec, loads []float64, avail []bool, maxIters int) (model.Prediction, error) {
	ns, np := spec.NumStages(), g.NumNodes()
	cur := model.Mapping{Assign: sc.curRows}
	pred, err := model.PredictInto(g, spec, cur, loads, sc.ps)
	if err != nil {
		return model.Prediction{}, err
	}
	sc.busyKeep2 = pred.CloneBusyInto(sc.busyKeep2)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for si := 0; si < ns; si++ {
			orig := sc.curBacking[si]
			for n := 0; n < np; n++ {
				if grid.NodeID(n) == orig || !usable(avail, n) {
					continue
				}
				sc.curBacking[si] = grid.NodeID(n)
				p, err := model.PredictInto(g, spec, cur, loads, sc.ps)
				if err != nil {
					return model.Prediction{}, err
				}
				if p.Throughput > pred.Throughput*(1+1e-12) {
					sc.busyKeep2 = p.CloneBusyInto(sc.busyKeep2)
					pred = p
					orig = grid.NodeID(n)
					improved = true
				} else {
					sc.curBacking[si] = orig
				}
			}
			sc.curBacking[si] = orig
		}
		if !improved {
			break
		}
	}
	return pred, nil
}

// ImproveWithReplication greedily replicates the predicted bottleneck
// stage onto additional nodes while the analytic prediction improves.
// Only stages marked Replicable are touched; maxReplicas bounds the fan
// width (0 means the grid size). This is the planning primitive behind
// the adaptivity engine's replicate action and experiment F4.
func ImproveWithReplication(g *grid.Grid, spec model.PipelineSpec, m model.Mapping, loads []float64, maxReplicas int) (model.Mapping, model.Prediction, error) {
	return ImproveWithReplicationAvail(g, spec, m, loads, maxReplicas, nil)
}

// ImproveWithReplicationAvail is ImproveWithReplication restricted to
// the available nodes: replicas are never placed on Down or Draining
// nodes. A nil mask allows every node.
func ImproveWithReplicationAvail(g *grid.Grid, spec model.PipelineSpec, m model.Mapping, loads []float64, maxReplicas int, avail []bool) (model.Mapping, model.Prediction, error) {
	if avail != nil {
		if _, err := checkAvail(g, avail); err != nil {
			return model.Mapping{}, model.Prediction{}, err
		}
	}
	if maxReplicas <= 0 {
		maxReplicas = g.NumNodes()
	}
	// Evaluations run through one pooled scratch; retained predictions
	// hop between two keep buffers (the current incumbent's busy vector
	// and the round's best candidate) so nothing aliases the scratch
	// when it is released.
	ps := model.AcquirePredictScratch()
	defer model.ReleasePredictScratch(ps)
	var keepCur, keepCand []float64
	cur := m.Clone()
	pred, err := model.PredictInto(g, spec, cur, loads, ps)
	if err != nil {
		return model.Mapping{}, model.Prediction{}, err
	}
	keepCur = pred.CloneBusyInto(keepCur)
	detachPred := func(p model.Prediction) model.Prediction {
		p.NodeBusy = append([]float64(nil), p.NodeBusy...)
		return p
	}
	for {
		// Find the stage on the bottleneck node with the largest work
		// share that is allowed to replicate.
		si := -1
		var worst float64
		for i, st := range spec.Stages {
			if !st.Replicable || len(cur.Assign[i]) >= maxReplicas {
				continue
			}
			share := st.Work / float64(len(cur.Assign[i]))
			if onNode(cur.Assign[i], pred.BottleneckNode) && share > worst {
				si, worst = i, share
			}
		}
		if si < 0 {
			return cur, detachPred(pred), nil
		}
		// Try adding each node not already hosting the stage; keep the
		// best improvement.
		bestP := pred
		bestN := grid.NodeID(-1)
		for n := 0; n < g.NumNodes(); n++ {
			id := grid.NodeID(n)
			if onNode(cur.Assign[si], id) || !usable(avail, n) {
				continue
			}
			trial := cur.WithReplicas(si, append(append([]grid.NodeID{}, cur.Assign[si]...), id)...)
			p, err := model.PredictInto(g, spec, trial, loads, ps)
			if err != nil {
				return model.Mapping{}, model.Prediction{}, err
			}
			if p.Throughput > bestP.Throughput*(1+1e-9) {
				keepCand = p.CloneBusyInto(keepCand)
				bestP, bestN = p, id
			}
		}
		if bestN < 0 {
			return cur, detachPred(pred), nil
		}
		cur = cur.WithReplicas(si, append(append([]grid.NodeID{}, cur.Assign[si]...), bestN)...)
		pred = bestP
		keepCur, keepCand = keepCand, keepCur
	}
}

func onNode(nodes []grid.NodeID, id grid.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
