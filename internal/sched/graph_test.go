package sched

import (
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/topo"
)

func diamondSpec(t *testing.T) model.PipelineSpec {
	t.Helper()
	g, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.05, OutBytes: 1e5, Replicable: true},
		[]topo.Stage{
			{Name: "left", Work: 0.25, OutBytes: 1e5, Replicable: true},
			{Name: "right", Work: 0.25, OutBytes: 1e5, Replicable: true},
		},
		topo.Stage{Name: "tail", Work: 0.05, OutBytes: 1e4, Replicable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := model.FromGraph(g, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// Every search strategy must handle a DAG spec: the mapping covers the
// graph's stages and the prediction reflects the graph's bottleneck
// cut (branch stages on separate nodes beat a single node).
func TestSearchersOverDiamond(t *testing.T) {
	spec := diamondSpec(t)
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	searchers := []Searcher{Exhaustive{}, ContiguousDP{}, Greedy{}, LocalSearch{Seed: 5}}
	for _, s := range searchers {
		m, pred, err := s.Search(g, spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if m.NumStages() != 4 {
			t.Fatalf("%s: mapping covers %d stages", s.Name(), m.NumStages())
		}
		// A single-node placement is bounded by the serial work
		// (1/0.6); any sane search separates the two 0.25 branches.
		if pred.Throughput <= 1/0.6+1e-9 {
			t.Fatalf("%s: throughput %v no better than single-node", s.Name(), pred.Throughput)
		}
	}
}

// Replication improvement honours the graph: replicating the heavy
// branch of an asymmetric diamond raises predicted throughput (on a
// symmetric diamond the sibling branch immediately re-binds the rate,
// so single-stage replication cannot help — also the graph-correct
// answer).
func TestImproveWithReplicationOverDiamond(t *testing.T) {
	gd, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.05, OutBytes: 1e5, Replicable: true},
		[]topo.Stage{
			{Name: "heavy", Work: 0.4, OutBytes: 1e5, Replicable: true},
			{Name: "light", Work: 0.1, OutBytes: 1e5, Replicable: true},
		},
		topo.Stage{Name: "tail", Work: 0.05, OutBytes: 1e4, Replicable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := model.FromGraph(gd, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.Homogeneous(8, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	m0 := model.OneToOne(4)
	base, err := model.Predict(g, spec, m0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, pred, err := ImproveWithReplication(g, spec, m0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput <= base.Throughput {
		t.Fatalf("replication did not improve: %v → %v", base.Throughput, pred.Throughput)
	}
	grew := false
	for i := range m.Assign {
		if len(m.Assign[i]) > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no stage was replicated")
	}
}
