package model

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/trace"
)

func testGrid(t *testing.T, speeds ...float64) *grid.Grid {
	t.Helper()
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPredictOneToOneBalanced(t *testing.T) {
	g := testGrid(t, 1, 1, 1)
	spec := Balanced(3, 0.1, 0) // no data movement
	p, err := Predict(g, spec, OneToOne(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each node does 0.1 s per item → 10 items/s.
	if math.Abs(p.Throughput-10) > 1e-9 {
		t.Fatalf("throughput = %v, want 10", p.Throughput)
	}
	if p.BottleneckNode < 0 {
		t.Fatal("compute should be the bottleneck")
	}
	if !math.IsInf(p.LinkBound, 1) {
		t.Fatalf("no traffic should mean infinite link bound, got %v", p.LinkBound)
	}
}

func TestPredictColocationHalvesThroughput(t *testing.T) {
	g := testGrid(t, 1, 1, 1)
	spec := Balanced(3, 0.1, 0)
	all, err := Predict(g, spec, SingleNode(3, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	// One node does 0.3 s per item → 3.33 items/s.
	if math.Abs(all.Throughput-1/0.3) > 1e-9 {
		t.Fatalf("single-node throughput = %v, want %v", all.Throughput, 1/0.3)
	}
}

func TestPredictLoadSlowsNode(t *testing.T) {
	g := testGrid(t, 1, 1)
	spec := Balanced(2, 0.1, 0)
	idle, _ := Predict(g, spec, OneToOne(2), nil)
	loaded, err := Predict(g, spec, OneToOne(2), []float64{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loaded.Throughput-idle.Throughput/2) > 1e-9 {
		t.Fatalf("50%% load should halve throughput: idle=%v loaded=%v", idle.Throughput, loaded.Throughput)
	}
	if loaded.BottleneckNode != 0 {
		t.Fatalf("bottleneck should be the loaded node, got %d", loaded.BottleneckNode)
	}
}

func TestPredictLoadsClamped(t *testing.T) {
	g := testGrid(t, 1)
	spec := Balanced(1, 0.1, 0)
	p, err := Predict(g, spec, SingleNode(1, 0), []float64{5}) // absurd load
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 || math.IsInf(p.Throughput, 0) || math.IsNaN(p.Throughput) {
		t.Fatalf("clamped load should keep throughput finite positive: %v", p.Throughput)
	}
	n, err := Predict(g, spec, SingleNode(1, 0), []float64{-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Throughput-10) > 1e-9 {
		t.Fatalf("negative load should clamp to idle: %v", n.Throughput)
	}
}

func TestPredictReplicationSplitsWork(t *testing.T) {
	g := testGrid(t, 1, 1, 1)
	spec := PipelineSpec{Stages: []StageSpec{
		{Name: "light", Work: 0.05},
		{Name: "heavy", Work: 0.2, Replicable: true},
	}}
	plain, _ := Predict(g, spec, FromNodes(0, 1), nil)
	if math.Abs(plain.Throughput-5) > 1e-9 {
		t.Fatalf("plain = %v, want 5 (heavy stage bound)", plain.Throughput)
	}
	repl, err := Predict(g, spec, FromNodes(0, 1).WithReplicas(1, 1, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy stage split across 2 nodes: each 0.1 s per item → bound 10;
	// light stage bound 20 → overall 10.
	if math.Abs(repl.Throughput-10) > 1e-9 {
		t.Fatalf("replicated = %v, want 10", repl.Throughput)
	}
}

func TestPredictCoresScaleNode(t *testing.T) {
	g, err := grid.NewGrid(grid.LANLink,
		&grid.Node{Name: "quad", Speed: 1, Cores: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := Balanced(2, 0.1, 0)
	p, err := Predict(g, spec, SingleNode(2, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 0.2 s per item over 4 cores → 20 items/s.
	if math.Abs(p.Throughput-20) > 1e-9 {
		t.Fatalf("quad-core throughput = %v, want 20", p.Throughput)
	}
}

func TestPredictLinkBound(t *testing.T) {
	g := testGrid(t, 1, 1)
	// Slow link: 1 MB/s. Items carry 0.5 MB between the stages.
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.001, Bandwidth: 1e6}); err != nil {
		t.Fatal(err)
	}
	spec := PipelineSpec{
		Stages: []StageSpec{
			{Name: "a", Work: 0.01, OutBytes: 0.5e6},
			{Name: "b", Work: 0.01},
		},
	}
	p, err := Predict(g, spec, OneToOne(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Link bound: 1e6 / 0.5e6 = 2 items/s, well below the 100/s compute bound.
	if math.Abs(p.Throughput-2) > 1e-9 {
		t.Fatalf("throughput = %v, want 2 (link-bound)", p.Throughput)
	}
	if p.BottleneckNode != -1 {
		t.Fatalf("bottleneck should be a link, got node %d", p.BottleneckNode)
	}
	// Co-locating both stages removes the traffic entirely.
	co, _ := Predict(g, spec, SingleNode(2, 0), nil)
	if co.Throughput <= p.Throughput {
		t.Fatalf("co-location should beat the slow link: %v vs %v", co.Throughput, p.Throughput)
	}
}

func TestPredictSourceSinkTraffic(t *testing.T) {
	g := testGrid(t, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.001, Bandwidth: 1e6}); err != nil {
		t.Fatal(err)
	}
	// Inputs of 2 MB arrive at node 0 (source) but stage runs on node 1.
	spec := PipelineSpec{
		Stages:  []StageSpec{{Name: "only", Work: 0.001}},
		InBytes: 2e6,
		Source:  0,
		Sink:    0,
	}
	p, err := Predict(g, spec, SingleNode(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Throughput-0.5) > 1e-9 {
		t.Fatalf("ingress-bound throughput = %v, want 0.5", p.Throughput)
	}
	// Running the stage on the source node avoids the transfer.
	local, _ := Predict(g, spec, SingleNode(1, 0), nil)
	if local.Throughput < 100 {
		t.Fatalf("local mapping should be compute-bound: %v", local.Throughput)
	}
}

func TestPredictLatency(t *testing.T) {
	g := testGrid(t, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.5, Bandwidth: 1e9}); err != nil {
		t.Fatal(err)
	}
	spec := PipelineSpec{
		Stages: []StageSpec{
			{Name: "a", Work: 1, OutBytes: 10},
			{Name: "b", Work: 2},
		},
		Source: 0,
		Sink:   0,
	}
	p, err := Predict(g, spec, OneToOne(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Latency: service 1 + link 0.5 + service 2 + link back 0.5 ≈ 4.
	if math.Abs(p.Latency-4) > 0.01 {
		t.Fatalf("latency = %v, want ~4", p.Latency)
	}
}

func TestPredictErrors(t *testing.T) {
	g := testGrid(t, 1)
	spec := Balanced(2, 0.1, 0)
	if _, err := Predict(g, spec, FromNodes(0), nil); err == nil {
		t.Fatal("stage-count mismatch accepted")
	}
	if _, err := Predict(g, spec, FromNodes(0, 5), nil); err == nil {
		t.Fatal("invalid node accepted")
	}
	if _, err := Predict(g, spec, FromNodes(0, 0), []float64{0.1, 0.2}); err == nil {
		t.Fatal("wrong loads length accepted")
	}
	bad := PipelineSpec{Stages: []StageSpec{{Work: -1}}}
	if _, err := Predict(g, bad, FromNodes(0), nil); err == nil {
		t.Fatal("negative work accepted")
	}
	if _, err := Predict(g, PipelineSpec{}, Mapping{}, nil); err == nil {
		t.Fatal("empty pipeline accepted")
	}
}

func TestBestPrefersFasterNode(t *testing.T) {
	g := testGrid(t, 1, 4)
	spec := Balanced(2, 0.1, 0)
	candidates := []Mapping{
		SingleNode(2, 0),
		SingleNode(2, 1),
		OneToOne(2),
	}
	idx, pred, err := Best(g, spec, candidates, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is 4x faster: both stages there give 4/0.2 = 20/s; split
	// gives min(10, 40) = 10/s. Best is SingleNode(2, 1).
	if idx != 1 {
		t.Fatalf("Best picked %d (%s), want 1", idx, candidates[idx])
	}
	if math.Abs(pred.Throughput-20) > 1e-9 {
		t.Fatalf("best throughput = %v, want 20", pred.Throughput)
	}
}

func TestBestDeterministicTieBreak(t *testing.T) {
	g := testGrid(t, 1, 1)
	spec := Balanced(1, 0.1, 0)
	idx, _, err := Best(g, spec, []Mapping{SingleNode(1, 0), SingleNode(1, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("tie should break to the first candidate, got %d", idx)
	}
	if _, _, err := Best(g, spec, nil, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestPredictMatchesHandComputedHeterogeneousCase(t *testing.T) {
	// 3 stages, nodes of speed 1/2/4, mapping (0,1,1):
	//   node0: 0.12/1 = 0.12 s/item → 8.33/s
	//   node1: (0.12+0.12)/2 = 0.12 s/item → 8.33/s
	g := testGrid(t, 1, 2, 4)
	spec := Balanced(3, 0.12, 0)
	p, err := Predict(g, spec, FromNodes(0, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Throughput-1/0.12) > 1e-9 {
		t.Fatalf("throughput = %v, want %v", p.Throughput, 1/0.12)
	}
}

func TestPredictWithLoadedTraceGrid(t *testing.T) {
	// Ensure Predict works against nodes carrying live traces (loads
	// are whatever the caller estimated, traces irrelevant here).
	g, err := grid.NewGrid(grid.LANLink,
		&grid.Node{Name: "a", Speed: 1, Cores: 1, Load: trace.Constant(0.3)},
		&grid.Node{Name: "b", Speed: 1, Cores: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := Balanced(2, 0.1, 0)
	p, err := Predict(g, spec, OneToOne(2), []float64{0.3, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.1 / 0.7)
	if math.Abs(p.Throughput-want) > 1e-9 {
		t.Fatalf("throughput = %v, want %v", p.Throughput, want)
	}
}
