package model

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
)

// LatencyPrediction is the open-system response-time estimate of a
// mapped pipeline under Poisson arrivals.
type LatencyPrediction struct {
	// Mean is the predicted mean per-item traversal time (s).
	Mean float64
	// ServicePart is the no-contention service+transfer floor.
	ServicePart float64
	// WaitPart is the predicted total queueing delay.
	WaitPart float64
	// MaxUtilisation is the highest node utilisation; predictions are
	// returned with an error when any node saturates (ρ >= 1).
	MaxUtilisation float64
}

// PredictLatency estimates the mean per-item latency of the mapped
// pipeline under Poisson arrivals of rate lambda (items/s), using an
// M/G/1 node approximation with the Pollaczek–Khinchine formula:
//
//	Wq(node) = λ_node · E[S²] / (2 (1 − ρ))
//
// where the service moments aggregate every stage visit hosted by the
// node (a replica of a k-way farmed stage receives 1/k of the stream)
// and cv is the coefficient of variation of per-item service demand
// (0 = deterministic service → M/D/1, 1 = exponential → M/M/1).
//
// Approximations, in the spirit of the throughput model:
//   - nodes are independent M/G/1 queues (Jackson-style decomposition);
//   - a c-core node is approximated as a single server of c× speed —
//     exact for c=1, optimistic for small ρ on c>1;
//   - transfer times enter as pure delay (links are far from
//     saturation at the λ where this model is useful).
//
// Experiment T5 validates all of this against the discrete-event
// executor.
func PredictLatency(g *grid.Grid, spec PipelineSpec, m Mapping, loads []float64, lambda, cv float64) (LatencyPrediction, error) {
	if err := spec.Validate(); err != nil {
		return LatencyPrediction{}, err
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		return LatencyPrediction{}, err
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return LatencyPrediction{}, fmt.Errorf("model: PredictLatency with invalid rate %v", lambda)
	}
	if cv < 0 {
		return LatencyPrediction{}, fmt.Errorf("model: negative cv %v", cv)
	}
	loadOf := func(n grid.NodeID) float64 {
		if loads == nil {
			return 0
		}
		l := loads[n]
		if l < 0 {
			return 0
		}
		if l > 0.99 {
			return 0.99
		}
		return l
	}
	if loads != nil && len(loads) != g.NumNodes() {
		return LatencyPrediction{}, fmt.Errorf("model: %d load estimates for %d nodes", len(loads), g.NumNodes())
	}

	// Aggregate per-node arrival rate and service moments over stage
	// visits. A visit of stage i on replica-node n occurs at rate
	// λ/len(replicas) with service s = work_i / (c·eff-speed).
	type mom struct {
		rate float64 // total visit rate λ_n
		es   float64 // Σ rate·E[S] (→ divide by rate)
		es2  float64 // Σ rate·E[S²]
	}
	moms := make([]mom, g.NumNodes())
	scale := 1 + cv*cv // E[S²] = (1+cv²)·E[S]² per visit class
	for i, st := range spec.Stages {
		if st.Work == 0 {
			continue
		}
		replicas := m.Assign[i]
		vRate := lambda / float64(len(replicas))
		for _, n := range replicas {
			node := g.Node(n)
			eff := node.Speed * (1 - loadOf(n)) * float64(node.Cores)
			s := st.Work / eff
			moms[n].rate += vRate
			moms[n].es += vRate * s
			moms[n].es2 += vRate * s * s * scale
		}
	}

	// Per-node P-K waiting time.
	wait := make([]float64, g.NumNodes())
	maxRho := 0.0
	for n := range moms {
		if moms[n].rate == 0 {
			continue
		}
		rho := moms[n].es // λ_n · E[S] summed per class = utilisation
		if rho > maxRho {
			maxRho = rho
		}
		if rho >= 1 {
			return LatencyPrediction{MaxUtilisation: rho}, fmt.Errorf(
				"model: node %d saturated (utilisation %.3f) at rate %v", n, rho, lambda)
		}
		wait[n] = moms[n].es2 / (2 * (1 - rho))
	}

	// Walk the first-replica path: per-visit service + the visited
	// node's waiting time + transfers.
	service := 0.0
	totalWait := 0.0
	prev := spec.Source
	prevBytes := spec.InBytes
	for i, st := range spec.Stages {
		replicas := m.Assign[i]
		// Expected wait/service averaged across replicas (the item is
		// dealt to one uniformly).
		var s, w float64
		for _, n := range replicas {
			node := g.Node(n)
			eff := node.Speed * (1 - loadOf(n)) * float64(node.Cores)
			s += st.Work / eff / float64(len(replicas))
			w += wait[n] / float64(len(replicas))
		}
		service += s
		totalWait += w
		n0 := replicas[0]
		if prev != n0 {
			service += g.Link(prev, n0).TransferDuration(prevBytes, 0)
		}
		prev, prevBytes = n0, st.OutBytes
	}
	if prev != spec.Sink {
		service += g.Link(prev, spec.Sink).TransferDuration(prevBytes, 0)
	}

	return LatencyPrediction{
		Mean:           service + totalWait,
		ServicePart:    service,
		WaitPart:       totalWait,
		MaxUtilisation: maxRho,
	}, nil
}
