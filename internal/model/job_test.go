package model

import (
	"strings"
	"testing"

	"gridpipe/internal/grid"
)

func validJob() JobSpec {
	return JobSpec{Name: "j", Spec: Balanced(2, 0.1, 0), Items: 10}
}

func TestJobSpecValidate(t *testing.T) {
	if err := validJob().Validate(4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"negative weight", func(j *JobSpec) { j.Weight = -1 }, "negative weight"},
		{"negative floor", func(j *JobSpec) { j.FloorNodes = -1 }, "negative floor"},
		{"floor over grid", func(j *JobSpec) { j.FloorNodes = 5 }, "exceeds"},
		{"negative arrival", func(j *JobSpec) { j.Arrival = -1 }, "arrival"},
		{"no items", func(j *JobSpec) { j.Items = 0 }, "item count"},
		{"empty pipeline", func(j *JobSpec) { j.Spec = PipelineSpec{} }, "no stages"},
	}
	for _, tc := range cases {
		j := validJob()
		tc.mut(&j)
		err := j.Validate(4)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestJobSpecDefaults(t *testing.T) {
	j := JobSpec{}
	if j.NormWeight() != 1 || j.Floor() != 1 {
		t.Fatalf("zero-value defaults: weight=%v floor=%d, want 1/1", j.NormWeight(), j.Floor())
	}
	j.Weight, j.FloorNodes = 2.5, 3
	if j.NormWeight() != 2.5 || j.Floor() != 3 {
		t.Fatalf("explicit values not preserved: %v/%d", j.NormWeight(), j.Floor())
	}
}

func TestCapacityMask(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 4}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCapacityMask(3)
	if m.Count() != 3 {
		t.Fatalf("full mask count=%d", m.Count())
	}
	if got := m.Capacity(g); got != 7 {
		t.Fatalf("capacity=%v, want 7 (speeds 1+2+4)", got)
	}
	m[1] = false
	if m.Count() != 2 || m.Capacity(g) != 5 {
		t.Fatalf("after dropping node 1: count=%d cap=%v", m.Count(), m.Capacity(g))
	}
	if got := m.String(); got != "{0,2}" {
		t.Fatalf("String=%q, want {0,2}", got)
	}
	other := CapacityMask{true, true, false}
	both := m.Intersect(other)
	if both.Count() != 1 || !both[0] {
		t.Fatalf("intersect={%v}, want only node 0", both)
	}
}
