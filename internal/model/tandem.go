package model

import (
	"fmt"
	"math"
)

// DepartureTag marks the CTMC transitions in which an item leaves the
// last stage of a tandem line.
const DepartureTag = "departure"

// stage statuses in the tandem-line state vector.
const (
	stEmpty = iota
	stBusy
	stBlocked
)

// tandemState is the full state of a blocking tandem line: the status
// of each stage plus the occupancy of each inter-stage buffer.
type tandemState struct {
	status []int
	buf    []int
}

func (s tandemState) clone() tandemState {
	return tandemState{
		status: append([]int(nil), s.status...),
		buf:    append([]int(nil), s.buf...),
	}
}

// key encodes the state uniquely for deduplication.
func (s tandemState) key(bufCap int) uint64 {
	k := uint64(0)
	for _, st := range s.status {
		k = k*3 + uint64(st)
	}
	for _, b := range s.buf {
		k = k*uint64(bufCap+1) + uint64(b)
	}
	return k
}

// normalize advances all instantaneous moves to a fixpoint: the source
// refills stage 0, buffers feed empty stages, and blocked stages push
// into free buffer slots. Move times are treated as negligible relative
// to service times — the regime in which the analytic model is expected
// to hold, which is exactly what T2 probes.
func normalize(s tandemState, bufCap int) tandemState {
	n := len(s.status)
	for changed := true; changed; {
		changed = false
		if s.status[0] == stEmpty {
			s.status[0] = stBusy
			changed = true
		}
		for g := 0; g+1 < n; g++ {
			if s.buf[g] > 0 && s.status[g+1] == stEmpty {
				s.buf[g]--
				s.status[g+1] = stBusy
				changed = true
			}
			if s.status[g] == stBlocked && s.buf[g] < bufCap {
				s.buf[g]++
				s.status[g] = stEmpty
				changed = true
			}
			// Direct handoff when there is no buffering in between
			// (bufCap may be zero, or the buffer just drained): a
			// blocked stage feeds its now-empty successor.
			if s.status[g] == stBlocked && s.status[g+1] == stEmpty && s.buf[g] == 0 {
				s.status[g] = stEmpty
				s.status[g+1] = stBusy
				changed = true
			}
		}
		// The last stage never blocks: the sink always accepts.
		if s.status[n-1] == stBlocked {
			s.status[n-1] = stEmpty
			changed = true
		}
	}
	return s
}

// TandemResult bundles the exact solution of a blocking tandem line.
type TandemResult struct {
	Throughput float64
	States     int
}

// SolveTandem builds and solves the CTMC of a saturated tandem line of
// exponential stages with rates mus and bufCap buffer slots between
// consecutive stages, returning its exact steady-state throughput.
//
// Classic closed forms it reproduces (checked in tests):
//   - one stage: throughput = µ;
//   - two equal stages, no buffer: 2µ/3;
//   - throughput is monotone in bufCap and approaches min(µ) from
//     below as buffers grow.
func SolveTandem(mus []float64, bufCap int) (TandemResult, error) {
	n := len(mus)
	if n == 0 {
		return TandemResult{}, fmt.Errorf("model: SolveTandem with no stages")
	}
	if bufCap < 0 {
		return TandemResult{}, fmt.Errorf("model: negative buffer capacity")
	}
	for i, mu := range mus {
		if mu <= 0 || math.IsNaN(mu) {
			return TandemResult{}, fmt.Errorf("model: stage %d has invalid rate %v", i, mu)
		}
	}

	// Breadth-first state-space exploration from the all-busy start.
	init := normalize(tandemState{status: make([]int, n), buf: make([]int, maxInt(n-1, 0))}, bufCap)
	index := map[uint64]int{init.key(bufCap): 0}
	states := []tandemState{init}
	type trans struct {
		from, to int
		rate     float64
		depart   bool
	}
	var transitions []trans
	for head := 0; head < len(states); head++ {
		cur := states[head]
		for i := 0; i < n; i++ {
			if cur.status[i] != stBusy {
				continue
			}
			next := cur.clone()
			next.status[i] = stBlocked
			next = normalize(next, bufCap)
			k := next.key(bufCap)
			idx, ok := index[k]
			if !ok {
				idx = len(states)
				index[k] = idx
				states = append(states, next)
			}
			transitions = append(transitions, trans{head, idx, mus[i], i == n-1})
		}
	}

	c := NewCTMC(len(states))
	realEdges := 0
	for _, tr := range transitions {
		tag := ""
		if tr.depart {
			tag = DepartureTag
		}
		if tr.from == tr.to {
			// A completion that leaves the (normalized) state unchanged
			// still represents a departure; a CTMC self-loop has no
			// effect on the stationary distribution, so we account for
			// it in the flow directly below instead of adding an edge.
			continue
		}
		c.AddTagged(tr.from, tr.to, tr.rate, tag)
		realEdges++
	}
	var pi []float64
	if realEdges == 0 {
		// Degenerate single-recurrent-state chain (e.g. a one-stage
		// line, which refills instantly on every completion).
		pi = make([]float64, len(states))
		pi[0] = 1
	} else {
		var err error
		pi, err = c.SteadyState()
		if err != nil {
			return TandemResult{}, err
		}
	}
	tp := c.FlowTag(pi, DepartureTag)
	// Add back departure self-loops (possible for n == 1, where a
	// completion refills instantly and the state never changes).
	for _, tr := range transitions {
		if tr.depart && tr.from == tr.to {
			tp += pi[tr.from] * tr.rate
		}
	}
	return TandemResult{Throughput: tp, States: len(states)}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
