package model

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/topo"
)

func diamondSpec(t *testing.T) PipelineSpec {
	t.Helper()
	g, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.1, OutBytes: 1e5, Replicable: true},
		[]topo.Stage{
			{Name: "left", Work: 0.3, OutBytes: 1e5, Replicable: true},
			{Name: "right", Work: 0.3, OutBytes: 1e5, Replicable: true},
		},
		topo.Stage{Name: "tail", Work: 0.1, OutBytes: 1e4, Replicable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := FromGraph(g, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// An explicit chain topology must predict exactly what the implicit
// linear spec predicts — the Linearize fast path is the identity.
func TestPredictChainTopoIdentity(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 1.5}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	linear := Balanced(3, 0.2, 1e5)
	withTopo := linear
	withTopo.Topo = linear.Graph()
	m := FromNodes(0, 1, 2)
	loads := []float64{0.1, 0, 0.3}

	p1, err := Predict(g, linear, m, loads)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Predict(g, withTopo, m, loads)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Throughput != p2.Throughput || p1.Latency != p2.Latency ||
		p1.LinkBound != p2.LinkBound || p1.BottleneckNode != p2.BottleneckNode {
		t.Fatalf("chain-topo prediction diverged:\nimplicit %+v\nexplicit %+v", p1, p2)
	}
}

// The diamond's branches overlap in time, so its empty-pipeline
// latency beats a linear chain of the same stages, while its
// saturation throughput matches (same bottleneck stage work).
func TestPredictDiamondLatencyBeatsChain(t *testing.T) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	dia := diamondSpec(t)
	chain := PipelineSpec{InBytes: dia.InBytes, Stages: dia.Stages}
	m := OneToOne(4)

	pd, err := Predict(g, dia, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Predict(g, chain, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd.Throughput-pc.Throughput) > 1e-9 {
		t.Fatalf("throughput: diamond %v vs chain %v (same bottleneck expected)", pd.Throughput, pc.Throughput)
	}
	// One branch's service (0.3) overlaps the other's: latency should
	// shrink by just under that much (transfers differ slightly).
	if pd.Latency >= pc.Latency-0.25 {
		t.Fatalf("latency: diamond %v not sufficiently below chain %v", pd.Latency, pc.Latency)
	}
}

// A split charges its payload to every out-edge: with both branches on
// remote nodes, the head's outbound traffic doubles versus a chain,
// which the link bound must reflect.
func TestPredictSplitChargesEveryEdge(t *testing.T) {
	dia := diamondSpec(t)
	g, err := grid.Homogeneous(4, 1, grid.Link{Latency: 0, Bandwidth: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// All stages on node 0 except the branches on nodes 1 and 2: the
	// head sends 1e5 to each branch over distinct links, each branch
	// returns 1e5 to the tail.
	m := FromNodes(0, 1, 2, 0)
	p, err := Predict(g, dia, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Busiest links carry exactly one branch payload: bound = 1e6/1e5.
	if want := 10.0; math.Abs(p.LinkBound-want) > 1e-9 {
		t.Fatalf("link bound = %v, want %v", p.LinkBound, want)
	}

	// Merge in-bytes: the tail's migration payload is both parts.
	if got := dia.Graph().InBytesOf(3, dia.InBytes); got != 2e5 {
		t.Fatalf("merge in-bytes = %v", got)
	}
}

func TestValidateTopoMismatch(t *testing.T) {
	spec := diamondSpec(t)
	spec.Stages = spec.Stages[:3] // drop a stage but keep the graph
	if err := spec.Validate(); err == nil {
		t.Fatal("stage/topology length mismatch accepted")
	}
}

// Mapping search over a diamond: replication improvement still honours
// the graph (bottleneck branches replicate, throughput prediction
// rises).
func TestBestOverDiamond(t *testing.T) {
	dia := diamondSpec(t)
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Mapping{
		SingleNode(4, 0),
		OneToOne(4),
		FromNodes(0, 1, 2, 3),
	}
	idx, pred, err := Best(g, dia, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx == 0 {
		t.Fatalf("Best picked the single-node mapping (pred %+v)", pred)
	}
	if pred.Throughput <= 1/0.4 {
		t.Fatalf("spread mapping throughput = %v, want > %v", pred.Throughput, 1/0.4)
	}
}
