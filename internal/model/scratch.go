// Prediction scratch: the reusable buffers behind PredictInto, so the
// scheduler's search loops — thousands of analytic evaluations per
// adaptation decision — run without allocating per candidate. A
// sync.Pool keeps warm scratches available to every strategy without
// threading an explicit context through each call site; hot loops that
// evaluate many candidates should Acquire once and Release when done
// rather than pay the pool round-trip per evaluation.
package model

import (
	"sync"

	"gridpipe/internal/grid"
)

// flowEntry is one directed link's accumulated per-item bytes. gr is
// the batch size the model charges per-message link latency at: when
// flows crossing the same node pair travel at different grains (a
// per-boundary grain vector), the finest grain dominates — it sends
// the most messages — so merging keeps the minimum.
type flowEntry struct {
	a, b  grid.NodeID
	bytes float64
	gr    float64
}

// PredictScratch holds every intermediate buffer one analytic
// evaluation needs: per-node busy times, the link-flow accumulator,
// and the critical-path table for stage graphs. The zero value is
// ready to use; buffers grow on first use and are retained across
// evaluations.
type PredictScratch struct {
	busy  []float64
	flows []flowEntry
	ready []float64
}

// NewPredictScratch returns an empty scratch. Prefer
// AcquirePredictScratch/ReleasePredictScratch in steady-state loops so
// warmed buffers are shared.
func NewPredictScratch() *PredictScratch { return &PredictScratch{} }

var predictScratchPool = sync.Pool{New: func() any { return &PredictScratch{} }}

// AcquirePredictScratch takes a warm scratch from the package pool.
func AcquirePredictScratch() *PredictScratch {
	return predictScratchPool.Get().(*PredictScratch)
}

// ReleasePredictScratch returns a scratch to the pool. The caller must
// not use the scratch — or any Prediction.NodeBusy aliasing it — after
// release.
func ReleasePredictScratch(s *PredictScratch) { predictScratchPool.Put(s) }

// busyFor returns the per-node busy buffer sized and zeroed for np
// nodes.
func (s *PredictScratch) busyFor(np int) []float64 {
	if cap(s.busy) < np {
		s.busy = make([]float64, np)
	}
	s.busy = s.busy[:np]
	for i := range s.busy {
		s.busy[i] = 0
	}
	return s.busy
}

// readyFor returns the critical-path table sized (not zeroed: every
// entry is written before read) for ns stages.
func (s *PredictScratch) readyFor(ns int) []float64 {
	if cap(s.ready) < ns {
		s.ready = make([]float64, ns)
	}
	return s.ready[:ns]
}

// addFlow accumulates bytes onto the directed pair (a, b), keeping the
// finest grain seen for the pair. Linear search keeps the accumulator
// allocation-free; the distinct-pair count is bounded by the stage
// graph's edges times replica fan, which is small in every workload
// the searches rate.
func (s *PredictScratch) addFlow(a, b grid.NodeID, bytes, gr float64) {
	for i := range s.flows {
		if s.flows[i].a == a && s.flows[i].b == b {
			s.flows[i].bytes += bytes
			if gr < s.flows[i].gr {
				s.flows[i].gr = gr
			}
			return
		}
	}
	s.flows = append(s.flows, flowEntry{a: a, b: b, bytes: bytes, gr: gr})
}

// CloneBusyInto copies the prediction's NodeBusy into dst (grown as
// needed) and repoints the prediction at the copy — the way callers
// detach a retained Prediction from a scratch they are about to reuse
// or release. It returns the (possibly regrown) dst for reuse.
func (p *Prediction) CloneBusyInto(dst []float64) []float64 {
	dst = append(dst[:0], p.NodeBusy...)
	p.NodeBusy = dst
	return dst
}

// BestVisitor is the streaming argmin over candidate mappings: feed it
// to VisitMappings (or call Offer per candidate) and read the winner
// from Mapping/Pred when done. Ties break towards the earlier
// candidate, exactly like Best over a materialized slice — so
// VisitMappings + BestVisitor replaces EnumerateOver + Best without
// changing any chosen mapping, while holding one candidate in memory
// instead of np^ns.
//
// The zero value is NOT ready: construct with NewBestVisitor. The
// visitor owns its result storage and reuses it across Reset, so a
// steady-state caller allocates nothing per enumeration.
type BestVisitor struct {
	g     *grid.Grid
	spec  PipelineSpec
	loads []float64

	scratch *PredictScratch
	pooled  bool

	found     bool
	pred      Prediction
	bestBusy  []float64
	backing   []grid.NodeID
	rows      [][]grid.NodeID
	err       error
	evaluated int
}

// NewBestVisitor returns a streaming argmin rating candidates for spec
// on g under the given load estimates, drawing its prediction scratch
// from the package pool. Call Close when done to return the scratch.
func NewBestVisitor(g *grid.Grid, spec PipelineSpec, loads []float64) *BestVisitor {
	return &BestVisitor{g: g, spec: spec, loads: loads,
		scratch: AcquirePredictScratch(), pooled: true}
}

// Reset rearms the visitor for a new enumeration over the same grid,
// spec and loads, keeping its grown buffers.
func (bv *BestVisitor) Reset(loads []float64) {
	bv.loads = loads
	bv.found = false
	bv.err = nil
	bv.evaluated = 0
}

// Close releases the pooled scratch. The winner's Mapping and Pred
// remain valid: they live in visitor-owned storage.
func (bv *BestVisitor) Close() {
	if bv.pooled && bv.scratch != nil {
		ReleasePredictScratch(bv.scratch)
		bv.scratch = nil
		bv.pooled = false
	}
}

// Visit rates one candidate and keeps it if it strictly beats the
// incumbent. It is the func(Mapping) bool VisitMappings expects:
// enumeration stops early only on an evaluation error.
func (bv *BestVisitor) Visit(m Mapping) bool {
	p, err := PredictInto(bv.g, bv.spec, m, bv.loads, bv.scratch)
	if err != nil {
		bv.err = err
		return false
	}
	bv.evaluated++
	if bv.found && p.Throughput <= bv.pred.Throughput {
		return true
	}
	bv.keep(m, p)
	return true
}

// keep copies the candidate and its prediction into visitor-owned
// storage (the candidate is reused by the enumerator).
func (bv *BestVisitor) keep(m Mapping, p Prediction) {
	bv.found = true
	ns := len(m.Assign)
	total := 0
	for _, nodes := range m.Assign {
		total += len(nodes)
	}
	if cap(bv.backing) < total {
		bv.backing = make([]grid.NodeID, total)
	}
	bv.backing = bv.backing[:0]
	if cap(bv.rows) < ns {
		bv.rows = make([][]grid.NodeID, ns)
	}
	bv.rows = bv.rows[:ns]
	for i, nodes := range m.Assign {
		start := len(bv.backing)
		bv.backing = append(bv.backing, nodes...)
		bv.rows[i] = bv.backing[start:len(bv.backing):len(bv.backing)]
	}
	bv.bestBusy = p.CloneBusyInto(bv.bestBusy)
	bv.pred = p
}

// Found reports whether any candidate was evaluated successfully.
func (bv *BestVisitor) Found() bool { return bv.found }

// Err returns the evaluation error that stopped the enumeration, if
// any.
func (bv *BestVisitor) Err() error { return bv.err }

// Evaluated returns how many candidates were rated.
func (bv *BestVisitor) Evaluated() int { return bv.evaluated }

// Mapping returns the winning candidate. It aliases visitor-owned
// storage that the next Visit improvement or Reset may rewrite; Clone
// to retain it past the visitor's lifetime.
func (bv *BestVisitor) Mapping() Mapping { return Mapping{Assign: bv.rows} }

// Pred returns the winner's prediction (NodeBusy in visitor-owned
// storage, same caveat as Mapping).
func (bv *BestVisitor) Pred() Prediction { return bv.pred }
