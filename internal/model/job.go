package model

import (
	"fmt"

	"gridpipe/internal/grid"
)

// JobSpec describes one tenant of a shared cluster: a pipeline plus
// the job-level attributes the admission controller and the arbiter
// plan with. The single-job world is the degenerate case — one JobSpec
// with Weight 1 and no floor — and every field beyond Spec defaults to
// it.
type JobSpec struct {
	// Name labels the job in tables and admission errors.
	Name string
	// Spec is the job's pipeline.
	Spec PipelineSpec
	// Weight is the job's fairness weight for weighted max-min
	// arbitration (default 1). A weight-2 job is entitled to twice the
	// capacity of a weight-1 job when both are backlogged.
	Weight float64
	// FloorNodes is the minimum number of nodes the job needs to run
	// at all — its admission floor. Zero means one node.
	FloorNodes int
	// Arrival is the virtual time at which the job enters the cluster.
	Arrival float64
	// Items is how many items the job processes to completion.
	Items int
	// CV is the coefficient of variation of per-item service demand.
	CV float64
}

// Validate reports specification errors. np is the cluster's node
// count; a floor above it can never be met and is rejected here so
// admission control fails cleanly instead of queueing forever.
func (j JobSpec) Validate(np int) error {
	if err := j.Spec.Validate(); err != nil {
		return fmt.Errorf("model: job %q: %w", j.Name, err)
	}
	if j.Weight < 0 {
		return fmt.Errorf("model: job %q has negative weight %v", j.Name, j.Weight)
	}
	if j.FloorNodes < 0 {
		return fmt.Errorf("model: job %q has negative floor %d", j.Name, j.FloorNodes)
	}
	if np > 0 && j.FloorNodes > np {
		return fmt.Errorf("model: job %q floor of %d nodes exceeds the %d-node grid", j.Name, j.FloorNodes, np)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("model: job %q has negative arrival time %v", j.Name, j.Arrival)
	}
	if j.Items <= 0 {
		return fmt.Errorf("model: job %q has non-positive item count %d", j.Name, j.Items)
	}
	return nil
}

// NormWeight returns the job's fairness weight with the default
// applied (zero means 1).
func (j JobSpec) NormWeight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// Floor returns the job's admission floor with the default applied
// (zero means 1 node).
func (j JobSpec) Floor() int {
	if j.FloorNodes <= 0 {
		return 1
	}
	return j.FloorNodes
}

// CapacityMask is a per-node lease: Mask[n] true means the job may
// place stages on node n. It is the cluster arbiter's currency — the
// sched layer consumes it directly as a SearchAvail availability mask.
type CapacityMask []bool

// NewCapacityMask returns a mask admitting every one of np nodes.
func NewCapacityMask(np int) CapacityMask {
	m := make(CapacityMask, np)
	for i := range m {
		m[i] = true
	}
	return m
}

// Count returns the number of admitted nodes.
func (m CapacityMask) Count() int {
	c := 0
	for _, ok := range m {
		if ok {
			c++
		}
	}
	return c
}

// Capacity returns the total speed×cores capacity the mask admits on
// the grid.
func (m CapacityMask) Capacity(g *grid.Grid) float64 {
	total := 0.0
	for i, ok := range m {
		if ok {
			n := g.Node(grid.NodeID(i))
			total += n.Speed * float64(n.Cores)
		}
	}
	return total
}

// Intersect returns the element-wise AND of two masks (nil acts as
// all-true).
func (m CapacityMask) Intersect(o CapacityMask) CapacityMask {
	if m == nil {
		return append(CapacityMask(nil), o...)
	}
	out := append(CapacityMask(nil), m...)
	if o == nil {
		return out
	}
	for i := range out {
		out[i] = out[i] && i < len(o) && o[i]
	}
	return out
}

// String renders the mask as the admitted node list, e.g. "{0,2,3}".
func (m CapacityMask) String() string {
	s := "{"
	first := true
	for i, ok := range m {
		if !ok {
			continue
		}
		if !first {
			s += ","
		}
		first = false
		s += fmt.Sprintf("%d", i)
	}
	return s + "}"
}
