package model

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
)

// A zero-valued batch spec (Grain 0/1, BatchOverhead 0) must take the
// legacy arithmetic paths exactly: same throughput, busy vector, link
// bound, and latency bit for bit.
func TestPredictUnbatchedBitIdentical(t *testing.T) {
	g := testGrid(t, 1, 0.5, 2)
	spec := Balanced(3, 0.1, 4096)
	base, err := Predict(g, spec, OneToOne(3), []float64{0.2, 0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, grain := range []int{0, 1} {
		got, err := Predict(g, spec.AtGrain(grain), OneToOne(3), []float64{0.2, 0, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Throughput != base.Throughput || got.LinkBound != base.LinkBound ||
			got.Latency != base.Latency || got.BottleneckNode != base.BottleneckNode {
			t.Fatalf("grain %d: prediction diverged from legacy: %+v vs %+v", grain, got, base)
		}
		for n := range got.NodeBusy {
			if got.NodeBusy[n] != base.NodeBusy[n] {
				t.Fatalf("grain %d: busy[%d] = %v, want %v", grain, n, got.NodeBusy[n], base.NodeBusy[n])
			}
		}
	}
}

// Per-batch overhead h charged as h/grain per item: larger grains
// amortize it away and throughput approaches the overhead-free rate.
func TestPredictGrainAmortizesOverhead(t *testing.T) {
	g := testGrid(t, 1, 1, 1)
	spec := Balanced(3, 0.01, 0)
	spec.BatchOverhead = 0.09 // 9× the per-item work

	// Grain 1 with overhead live: each item pays work + h = 0.1 s.
	spec1 := spec.AtGrain(1)
	p1, err := Predict(g, spec1, OneToOne(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Throughput-10) > 1e-9 {
		t.Fatalf("grain-1 throughput = %v, want 10", p1.Throughput)
	}
	// Grain 9: work + h/9 = 0.02 s per item → 50 items/s.
	p9, err := Predict(g, spec.AtGrain(9), OneToOne(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p9.Throughput-50) > 1e-9 {
		t.Fatalf("grain-9 throughput = %v, want 50", p9.Throughput)
	}
	// Monotone towards (but never past) the overhead-free bound.
	if !(p9.Throughput > p1.Throughput) {
		t.Fatal("larger grain should raise throughput under fixed overhead")
	}
	// Never past the overhead-free ceiling.
	spec.BatchOverhead = 0
	free, err := Predict(g, spec, OneToOne(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p9.Throughput >= free.Throughput {
		t.Fatalf("amortized rate %v should stay below overhead-free %v", p9.Throughput, free.Throughput)
	}
}

// Batched link transfers pay the link latency once per batch: at grain
// g the per-item link charge is bytes/bw + Latency/g.
func TestPredictBatchLinkLatency(t *testing.T) {
	link := grid.Link{Latency: 1e-3, Bandwidth: 1e9}
	g, err := grid.Homogeneous(2, 1, link)
	if err != nil {
		t.Fatal(err)
	}
	spec := Balanced(2, 1e-6, 1000) // 1000 B per hop, near-zero work
	spec.Grain = 10
	p, err := Predict(g, spec, OneToOne(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLink := 1 / (1000/1e9 + 1e-3/10)
	if math.Abs(p.LinkBound-wantLink)/wantLink > 1e-9 {
		t.Fatalf("link bound = %v, want %v", p.LinkBound, wantLink)
	}
	// Raising the grain weakens the latency term and raises the bound.
	p2, err := Predict(g, spec.AtGrain(100), OneToOne(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(p2.LinkBound > p.LinkBound) {
		t.Fatalf("grain 100 bound %v should beat grain 10 bound %v", p2.LinkBound, p.LinkBound)
	}
}

func TestSpecBatchValidation(t *testing.T) {
	spec := Balanced(2, 0.1, 0)
	spec.BatchOverhead = -1
	if err := spec.Validate(); err == nil {
		t.Fatal("negative batch overhead should fail validation")
	}
	spec.BatchOverhead = 0
	spec.Grain = -2
	if err := spec.Validate(); err == nil {
		t.Fatal("negative grain should fail validation")
	}
}
