package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCTMCTwoStateBirthDeath(t *testing.T) {
	// 0 -λ-> 1, 1 -µ-> 0: π0 = µ/(λ+µ).
	c := NewCTMC(2)
	lambda, mu := 3.0, 7.0
	c.AddRate(0, 1, lambda)
	c.AddRate(1, 0, mu)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-mu/(lambda+mu)) > 1e-9 {
		t.Fatalf("pi0 = %v, want %v", pi[0], mu/(lambda+mu))
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-9 {
		t.Fatal("distribution does not sum to 1")
	}
}

func TestCTMCMM1K(t *testing.T) {
	// M/M/1/K queue with λ=1, µ=2, K=4: π_i ∝ ρ^i, ρ=0.5.
	const K = 4
	lambda, mu := 1.0, 2.0
	c := NewCTMC(K + 1)
	for i := 0; i < K; i++ {
		c.AddRate(i, i+1, lambda)
		c.AddRate(i+1, i, mu)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm := 0.0
	for i := 0; i <= K; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for i := 0; i <= K; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-8 {
			t.Fatalf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
	// Flow check: departure rate = µ·P(queue non-empty) = arrival
	// acceptance rate = λ·P(not full).
	dep := c.Flow(pi, func(from, to int) bool { return to == from-1 })
	acc := c.Flow(pi, func(from, to int) bool { return to == from+1 })
	if math.Abs(dep-acc) > 1e-8 {
		t.Fatalf("flow balance violated: dep=%v acc=%v", dep, acc)
	}
}

func TestCTMCPanics(t *testing.T) {
	c := NewCTMC(2)
	for _, bad := range []func(){
		func() { NewCTMC(0) },
		func() { c.AddRate(0, 0, 1) },
		func() { c.AddRate(0, 5, 1) },
		func() { c.AddRate(-1, 0, 1) },
		func() { c.AddRate(0, 1, 0) },
		func() { c.AddRate(0, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestCTMCNoTransitionsError(t *testing.T) {
	c := NewCTMC(3)
	if _, err := c.SteadyState(); err == nil {
		t.Fatal("expected error for empty chain")
	}
}

func TestFlowTag(t *testing.T) {
	c := NewCTMC(2)
	c.AddTagged(0, 1, 2, "up")
	c.AddTagged(1, 0, 2, "down")
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	up := c.FlowTag(pi, "up")
	down := c.FlowTag(pi, "down")
	if math.Abs(up-1) > 1e-9 || math.Abs(down-1) > 1e-9 {
		t.Fatalf("tagged flows = %v, %v, want 1, 1", up, down)
	}
	if c.FlowTag(pi, "absent") != 0 {
		t.Fatal("unknown tag should have zero flow")
	}
}

func TestSolveTandemSingleStage(t *testing.T) {
	res, err := SolveTandem([]float64{5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-5) > 1e-9 {
		t.Fatalf("single-stage throughput = %v, want 5", res.Throughput)
	}
}

func TestSolveTandemTwoEqualStagesNoBuffer(t *testing.T) {
	// Classic closed form: X = 2µ/3.
	mu := 4.0
	res, err := SolveTandem([]float64{mu, mu}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-2*mu/3) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", res.Throughput, 2*mu/3)
	}
	if res.States != 3 {
		t.Fatalf("states = %d, want 3", res.States)
	}
}

func TestSolveTandemAsymmetricTwoStages(t *testing.T) {
	// Known closed form for the 0-buffer 2-stage line:
	// X = µ1µ2(µ1+µ2) / (µ1²+µ1µ2+µ2²).
	mu1, mu2 := 2.0, 5.0
	res, err := SolveTandem([]float64{mu1, mu2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := mu1 * mu2 * (mu1 + mu2) / (mu1*mu1 + mu1*mu2 + mu2*mu2)
	if math.Abs(res.Throughput-want) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", res.Throughput, want)
	}
}

func TestSolveTandemBuffersHelp(t *testing.T) {
	mus := []float64{3, 3, 3}
	prev := 0.0
	for buf := 0; buf <= 4; buf++ {
		res, err := SolveTandem(mus, buf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput < prev-1e-9 {
			t.Fatalf("throughput decreased with more buffer: %v -> %v at buf=%d",
				prev, res.Throughput, buf)
		}
		if res.Throughput > 3+1e-9 {
			t.Fatalf("throughput %v exceeds bottleneck rate", res.Throughput)
		}
		prev = res.Throughput
	}
	// With generous buffers the line should get close to the
	// bottleneck bound.
	res, _ := SolveTandem(mus, 8)
	if res.Throughput < 2.5 {
		t.Fatalf("buffered line too slow: %v", res.Throughput)
	}
}

func TestSolveTandemBottleneckDominates(t *testing.T) {
	// One very slow stage: throughput ≈ its rate, regardless of buffer.
	res, err := SolveTandem([]float64{100, 0.5, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 0.5 || res.Throughput < 0.45 {
		t.Fatalf("throughput = %v, want just under 0.5", res.Throughput)
	}
}

func TestSolveTandemErrors(t *testing.T) {
	if _, err := SolveTandem(nil, 0); err == nil {
		t.Fatal("no stages accepted")
	}
	if _, err := SolveTandem([]float64{1}, -1); err == nil {
		t.Fatal("negative buffer accepted")
	}
	if _, err := SolveTandem([]float64{0}, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// Property: the exact tandem throughput never exceeds the analytic
// bottleneck bound min(µ), and is positive.
func TestSolveTandemBoundedProperty(t *testing.T) {
	f := func(r1, r2, r3 uint8, buf uint8) bool {
		mus := []float64{
			0.5 + float64(r1%40)/4,
			0.5 + float64(r2%40)/4,
			0.5 + float64(r3%40)/4,
		}
		b := int(buf % 3)
		res, err := SolveTandem(mus, b)
		if err != nil {
			return false
		}
		bound := math.Min(mus[0], math.Min(mus[1], mus[2]))
		return res.Throughput > 0 && res.Throughput <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
