// Package model defines the pipeline/mapping vocabulary shared by the
// scheduler, executor and adaptivity engine, and implements two
// performance models over it:
//
//   - an analytic bottleneck (saturation) model that predicts the
//     steady-state throughput of a mapped pipeline from per-stage work,
//     node speeds/loads and link bandwidths (throughput.go), and
//   - an exact continuous-time Markov-chain solver for small blocking
//     tandem lines (ctmc.go, tandem.go) used to validate the analytic
//     model's assumptions in experiment T2.
package model

import (
	"fmt"
	"strings"

	"gridpipe/internal/grid"
)

// Mapping assigns every pipeline stage to one or more grid nodes.
// Assign[i] lists the nodes hosting stage i; more than one node means
// the stage is replicated (farmed) with items dealt round-robin.
type Mapping struct {
	Assign [][]grid.NodeID
}

// NumStages returns the number of stages the mapping covers.
func (m Mapping) NumStages() int { return len(m.Assign) }

// SingleNode maps all ns stages onto one node.
func SingleNode(ns int, node grid.NodeID) Mapping {
	a := make([][]grid.NodeID, ns)
	for i := range a {
		a[i] = []grid.NodeID{node}
	}
	return Mapping{Assign: a}
}

// OneToOne maps stage i onto node i.
func OneToOne(ns int) Mapping {
	a := make([][]grid.NodeID, ns)
	for i := range a {
		a[i] = []grid.NodeID{grid.NodeID(i)}
	}
	return Mapping{Assign: a}
}

// FromNodes builds an unreplicated mapping from a per-stage node list,
// the tuple notation of the era's mapping tables: FromNodes(0, 0, 1)
// puts stages 1-2 on node 0 and stage 3 on node 1.
func FromNodes(nodes ...grid.NodeID) Mapping {
	a := make([][]grid.NodeID, len(nodes))
	for i, n := range nodes {
		a[i] = []grid.NodeID{n}
	}
	return Mapping{Assign: a}
}

// Contiguous maps a partition of stages into consecutive groups onto
// the given nodes: sizes[i] stages go to nodes[i]. It panics if the
// sizes and nodes disagree.
func Contiguous(sizes []int, nodes []grid.NodeID) Mapping {
	if len(sizes) != len(nodes) {
		panic("model: Contiguous sizes/nodes length mismatch")
	}
	var a [][]grid.NodeID
	for gi, sz := range sizes {
		if sz <= 0 {
			panic("model: Contiguous with non-positive group size")
		}
		for k := 0; k < sz; k++ {
			a = append(a, []grid.NodeID{nodes[gi]})
		}
	}
	return Mapping{Assign: a}
}

// WithReplicas returns a copy of m with stage i replicated across the
// given nodes.
func (m Mapping) WithReplicas(stage int, nodes ...grid.NodeID) Mapping {
	out := m.Clone()
	ns := make([]grid.NodeID, len(nodes))
	copy(ns, nodes)
	out.Assign[stage] = ns
	return out
}

// Clone returns a deep copy.
func (m Mapping) Clone() Mapping {
	a := make([][]grid.NodeID, len(m.Assign))
	for i, ns := range m.Assign {
		a[i] = append([]grid.NodeID(nil), ns...)
	}
	return Mapping{Assign: a}
}

// Validate checks the mapping against a pipeline of ns stages on a grid
// of np nodes.
func (m Mapping) Validate(ns, np int) error {
	if len(m.Assign) != ns {
		return fmt.Errorf("model: mapping covers %d stages, pipeline has %d", len(m.Assign), ns)
	}
	for i, nodes := range m.Assign {
		if len(nodes) == 0 {
			return fmt.Errorf("model: stage %d has no nodes", i)
		}
		// Duplicate detection by pairwise scan: replica lists are a
		// handful of nodes, and the quadratic check keeps Validate — on
		// the search hot path via PredictInto — free of allocations.
		for k, n := range nodes {
			if int(n) < 0 || int(n) >= np {
				return fmt.Errorf("model: stage %d mapped to invalid node %d", i, n)
			}
			for _, prev := range nodes[:k] {
				if prev == n {
					return fmt.Errorf("model: stage %d lists node %d twice", i, n)
				}
			}
		}
	}
	return nil
}

// Equal reports whether two mappings are identical.
func (m Mapping) Equal(o Mapping) bool {
	if len(m.Assign) != len(o.Assign) {
		return false
	}
	for i := range m.Assign {
		if len(m.Assign[i]) != len(o.Assign[i]) {
			return false
		}
		for j := range m.Assign[i] {
			if m.Assign[i][j] != o.Assign[i][j] {
				return false
			}
		}
	}
	return true
}

// UsesNode reports whether any stage is placed on the given node.
func (m Mapping) UsesNode(id grid.NodeID) bool {
	for _, nodes := range m.Assign {
		for _, n := range nodes {
			if n == id {
				return true
			}
		}
	}
	return false
}

// NodesUsed returns the distinct nodes the mapping touches.
func (m Mapping) NodesUsed() []grid.NodeID {
	seen := map[grid.NodeID]bool{}
	var out []grid.NodeID
	for _, nodes := range m.Assign {
		for _, n := range nodes {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// String renders the mapping in tuple notation, e.g. "(0,0,1)" or
// "(0,{1,2},3)" when stage 2 is replicated on nodes 1 and 2.
func (m Mapping) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, nodes := range m.Assign {
		if i > 0 {
			b.WriteByte(',')
		}
		if len(nodes) == 1 {
			fmt.Fprintf(&b, "%d", nodes[0])
		} else {
			b.WriteByte('{')
			for j, n := range nodes {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", n)
			}
			b.WriteByte('}')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// EnumerationLimit caps the *materialized* enumerations
// (EnumerateAll/EnumerateOver); np^ns grows fast and a slice of every
// mapping is only meant for the small configurations of the validation
// tables. The streaming VisitMappings has no such cliff: it holds one
// mapping at a time.
const EnumerationLimit = 1 << 20

// VisitMappings streams every unreplicated mapping of ns stages onto
// the given candidate nodes (len(nodes)^ns mappings) to the visitor,
// in the same lexicographic order EnumerateOver materializes them
// (stage 0 varies slowest). The visitor returns false to stop early.
//
// The Mapping passed to the visitor is REUSED between calls: its
// Assign rows alias one backing array that the enumerator rewrites in
// place. A visitor that needs to retain a candidate must Clone it.
// Because nothing is materialized there is no enumeration limit — the
// memory cost is O(ns) regardless of the space's size.
func VisitMappings(ns int, nodes []grid.NodeID, visit func(Mapping) bool) error {
	if ns <= 0 {
		return fmt.Errorf("model: VisitMappings with %d stages", ns)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("model: VisitMappings with no candidate nodes")
	}
	// One reusable mapping: rows[i] is a one-element window over
	// backing, so rewriting backing rewrites the candidate in place.
	backing := make([]grid.NodeID, ns)
	rows := make([][]grid.NodeID, ns)
	for i := range rows {
		backing[i] = nodes[0]
		rows[i] = backing[i : i+1]
	}
	m := Mapping{Assign: rows}
	// idx[i] is the odometer position of stage i in nodes.
	idx := make([]int, ns)
	for {
		if !visit(m) {
			return nil
		}
		// Advance the odometer (last stage varies fastest, matching the
		// recursive EnumerateOver order).
		i := ns - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(nodes) {
				backing[i] = nodes[idx[i]]
				break
			}
			idx[i] = 0
			backing[i] = nodes[0]
		}
		if i < 0 {
			return nil
		}
	}
}

// EnumerateAll returns every unreplicated mapping of ns stages onto np
// nodes (np^ns mappings). It errors if the count would exceed
// EnumerationLimit; larger spaces must stream through VisitMappings or
// use the heuristic searches in internal/sched.
//
// Deprecated: materializing the space costs O(np^ns) memory. New call
// sites should use VisitMappings, which streams candidates and has no
// size cliff.
func EnumerateAll(ns, np int) ([]Mapping, error) {
	if np <= 0 {
		return nil, fmt.Errorf("model: EnumerateAll with %d nodes", np)
	}
	nodes := make([]grid.NodeID, np)
	for i := range nodes {
		nodes[i] = grid.NodeID(i)
	}
	return EnumerateOver(ns, nodes)
}

// EnumerateOver returns every unreplicated mapping of ns stages onto
// the given candidate nodes (len(nodes)^ns mappings) — the restricted
// enumeration the fault-aware search uses to exclude Down nodes. It
// errors if the count would exceed EnumerationLimit.
//
// Deprecated: materializing the space costs O(np^ns) memory. New call
// sites should use VisitMappings, which streams candidates and has no
// size cliff.
func EnumerateOver(ns int, nodes []grid.NodeID) ([]Mapping, error) {
	if ns <= 0 || len(nodes) == 0 {
		return nil, fmt.Errorf("model: EnumerateOver with non-positive dimensions")
	}
	np := len(nodes)
	count := 1
	for i := 0; i < ns; i++ {
		count *= np
		if count > EnumerationLimit {
			return nil, fmt.Errorf("model: enumeration of %d^%d mappings exceeds the %d limit (stream with VisitMappings instead)", np, ns, EnumerationLimit)
		}
	}
	out := make([]Mapping, 0, count)
	err := VisitMappings(ns, nodes, func(m Mapping) bool {
		out = append(out, m.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
