package model

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/topo"
)

// StageSpec describes one pipeline stage for modelling purposes.
type StageSpec struct {
	// Name labels the stage in tables and logs.
	Name string
	// Work is the mean per-item service demand in reference-seconds
	// (seconds on an unloaded speed-1.0 node).
	Work float64
	// OutBytes is the size of the message each processed item sends to
	// the next stage (or to the sink for the last stage).
	OutBytes float64
	// Replicable marks stages that keep no inter-item state and may be
	// farmed across several nodes by the adaptivity engine.
	Replicable bool
}

// PipelineSpec describes a whole pipeline for modelling: the stages
// plus where inputs originate and outputs must be delivered.
//
// By default the stages form a linear chain (stage i feeds stage
// i+1). Setting Topo generalises the data flow to a validated stage
// DAG (fan-out splits, fan-in merges — see internal/topo); Stages must
// then mirror the graph's node list one-for-one, which FromGraph
// guarantees.
type PipelineSpec struct {
	Stages []StageSpec
	// InBytes is the size of each raw input entering stage 1 from the
	// source.
	InBytes float64
	// Source and Sink are the nodes holding the input and collecting
	// the output (the "user" endpoints of the era's models).
	Source, Sink grid.NodeID
	// Topo, when non-nil, is the stage graph the data flows along. Nil
	// means the historical linear chain over Stages.
	Topo *topo.Graph
	// BatchOverhead is the fixed per-batch cost h at every stage
	// boundary in reference-seconds: the channel/limiter/reorderer
	// synchronization a batch pays once regardless of how many items
	// it carries. Amortized as h/Grain per item. Zero (the default)
	// models a free boundary, which keeps legacy predictions
	// bit-identical.
	BatchOverhead float64
	// Grain is the number of items crossing each boundary together.
	// 0 and 1 both mean the historical per-item transfer. Larger
	// grains divide BatchOverhead and per-transfer link latency across
	// Grain items.
	Grain int
	// Grains, when non-empty, gives every stage boundary its own batch
	// size: Grains[i] is the grain of the batches entering stage i
	// (Grains[0] = the head batcher's grain). Length must equal the
	// stage count. It overrides Grain; empty means the single
	// pipeline-wide Grain, whose arithmetic stays bit-identical to
	// earlier releases. This is the model-side mirror of the live
	// runtime's EnableBatchEdges.
	Grains []int
	// BatchOverheads, when non-empty, gives every stage boundary its
	// own per-batch cost (BatchOverheads[i] entering stage i),
	// overriding BatchOverhead. Length must equal the stage count.
	BatchOverheads []float64
}

// EffGrain returns the batch size the model charges: Grain, floored
// at 1 so a zero-valued spec behaves per-item.
func (p PipelineSpec) EffGrain() float64 {
	if p.Grain < 1 {
		return 1
	}
	return float64(p.Grain)
}

// EffGrainAt returns the batch size the model charges at stage i's
// input boundary: the per-boundary vector entry when Grains is set,
// otherwise the single pipeline-wide EffGrain — so a vectorless spec
// reproduces the scalar arithmetic operand-for-operand.
func (p PipelineSpec) EffGrainAt(i int) float64 {
	if len(p.Grains) == 0 {
		return p.EffGrain()
	}
	if g := p.Grains[i]; g > 1 {
		return float64(g)
	}
	return 1
}

// OverheadAt returns the per-batch cost at stage i's input boundary,
// falling back to the pipeline-wide BatchOverhead like EffGrainAt.
func (p PipelineSpec) OverheadAt(i int) float64 {
	if len(p.BatchOverheads) == 0 {
		return p.BatchOverhead
	}
	return p.BatchOverheads[i]
}

// Batched reports whether the batch-aware cost terms are live: any
// spec with a grain above 1 or a nonzero per-batch overhead. An
// unbatched spec takes the legacy arithmetic paths exactly, so its
// predictions stay bit-identical to earlier releases.
func (p PipelineSpec) Batched() bool {
	if p.Grain > 1 || p.BatchOverhead > 0 {
		return true
	}
	for _, g := range p.Grains {
		if g > 1 {
			return true
		}
	}
	for _, h := range p.BatchOverheads {
		if h > 0 {
			return true
		}
	}
	return false
}

// AtGrain returns a copy of the spec evaluated at batch size n — the
// grain axis of the scheduler's search (see sched.SearchGrain). Any
// per-boundary vector is dropped: the copy is uniformly grained.
func (p PipelineSpec) AtGrain(n int) PipelineSpec {
	p.Grain = n
	p.Grains = nil
	return p
}

// AtGrains returns a copy of the spec evaluated at the per-boundary
// grain vector (grains[i] entering stage i) — the per-edge grain axis
// of the scheduler's search (see sched.SearchGrainVector). The slice
// is copied, so callers may reuse their buffer across candidates.
func (p PipelineSpec) AtGrains(grains []int) PipelineSpec {
	p.Grains = append([]int(nil), grains...)
	return p
}

// FromGraph builds a spec whose Stages mirror the graph's nodes and
// whose data flow follows the graph's edges.
func FromGraph(g *topo.Graph, inBytes float64) (PipelineSpec, error) {
	if g == nil {
		return PipelineSpec{}, fmt.Errorf("model: FromGraph with nil graph")
	}
	if err := g.Validate(); err != nil {
		return PipelineSpec{}, err
	}
	spec := PipelineSpec{InBytes: inBytes, Topo: g}
	for _, st := range g.Stages {
		spec.Stages = append(spec.Stages, StageSpec{
			Name:       st.Name,
			Work:       st.Work,
			OutBytes:   st.OutBytes,
			Replicable: st.Replicable,
		})
	}
	return spec, nil
}

// Graph returns the spec's stage graph: Topo when set, otherwise the
// linear chain over Stages (freshly built; the chain case allocates
// but involves no validation surprises).
func (p PipelineSpec) Graph() *topo.Graph {
	if p.Topo != nil {
		return p.Topo
	}
	stages := make([]topo.Stage, len(p.Stages))
	for i, st := range p.Stages {
		stages[i] = topo.Stage{
			Name:       st.Name,
			Work:       st.Work,
			OutBytes:   st.OutBytes,
			Replicable: st.Replicable,
		}
	}
	return topo.Chain(stages...)
}

// NumStages returns the number of stages.
func (p PipelineSpec) NumStages() int { return len(p.Stages) }

// TotalWork returns the summed per-item service demand across stages.
func (p PipelineSpec) TotalWork() float64 {
	s := 0.0
	for _, st := range p.Stages {
		s += st.Work
	}
	return s
}

// Validate reports specification errors.
func (p PipelineSpec) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("model: pipeline has no stages")
	}
	for i, st := range p.Stages {
		if st.Work < 0 {
			return fmt.Errorf("model: stage %d (%s) has negative work %v", i, st.Name, st.Work)
		}
		if st.OutBytes < 0 {
			return fmt.Errorf("model: stage %d (%s) has negative output size %v", i, st.Name, st.OutBytes)
		}
	}
	if p.InBytes < 0 {
		return fmt.Errorf("model: negative input size %v", p.InBytes)
	}
	if p.BatchOverhead < 0 {
		return fmt.Errorf("model: negative batch overhead %v", p.BatchOverhead)
	}
	if p.Grain < 0 {
		return fmt.Errorf("model: negative grain %d", p.Grain)
	}
	if len(p.Grains) != 0 && len(p.Grains) != len(p.Stages) {
		return fmt.Errorf("model: grain vector has %d entries, spec has %d stages", len(p.Grains), len(p.Stages))
	}
	for i, g := range p.Grains {
		if g < 0 {
			return fmt.Errorf("model: negative grain %d at boundary %d", g, i)
		}
	}
	if len(p.BatchOverheads) != 0 && len(p.BatchOverheads) != len(p.Stages) {
		return fmt.Errorf("model: batch-overhead vector has %d entries, spec has %d stages", len(p.BatchOverheads), len(p.Stages))
	}
	for i, h := range p.BatchOverheads {
		if h < 0 {
			return fmt.Errorf("model: negative batch overhead %v at boundary %d", h, i)
		}
	}
	if p.Topo != nil {
		if err := p.Topo.Validate(); err != nil {
			return err
		}
		if p.Topo.NumStages() != len(p.Stages) {
			return fmt.Errorf("model: topology has %d stages, spec has %d",
				p.Topo.NumStages(), len(p.Stages))
		}
	}
	return nil
}

// Balanced returns a pipeline of ns identical stages, a standard
// fixture across tests and scalability experiments.
func Balanced(ns int, work, bytes float64) PipelineSpec {
	stages := make([]StageSpec, ns)
	for i := range stages {
		stages[i] = StageSpec{
			Name:       fmt.Sprintf("stage%d", i),
			Work:       work,
			OutBytes:   bytes,
			Replicable: true,
		}
	}
	return PipelineSpec{Stages: stages, InBytes: bytes}
}
