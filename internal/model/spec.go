package model

import (
	"fmt"

	"gridpipe/internal/grid"
)

// StageSpec describes one pipeline stage for modelling purposes.
type StageSpec struct {
	// Name labels the stage in tables and logs.
	Name string
	// Work is the mean per-item service demand in reference-seconds
	// (seconds on an unloaded speed-1.0 node).
	Work float64
	// OutBytes is the size of the message each processed item sends to
	// the next stage (or to the sink for the last stage).
	OutBytes float64
	// Replicable marks stages that keep no inter-item state and may be
	// farmed across several nodes by the adaptivity engine.
	Replicable bool
}

// PipelineSpec describes a whole pipeline for modelling: the stages
// plus where inputs originate and outputs must be delivered.
type PipelineSpec struct {
	Stages []StageSpec
	// InBytes is the size of each raw input entering stage 1 from the
	// source.
	InBytes float64
	// Source and Sink are the nodes holding the input and collecting
	// the output (the "user" endpoints of the era's models).
	Source, Sink grid.NodeID
}

// NumStages returns the number of stages.
func (p PipelineSpec) NumStages() int { return len(p.Stages) }

// TotalWork returns the summed per-item service demand across stages.
func (p PipelineSpec) TotalWork() float64 {
	s := 0.0
	for _, st := range p.Stages {
		s += st.Work
	}
	return s
}

// Validate reports specification errors.
func (p PipelineSpec) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("model: pipeline has no stages")
	}
	for i, st := range p.Stages {
		if st.Work < 0 {
			return fmt.Errorf("model: stage %d (%s) has negative work %v", i, st.Name, st.Work)
		}
		if st.OutBytes < 0 {
			return fmt.Errorf("model: stage %d (%s) has negative output size %v", i, st.Name, st.OutBytes)
		}
	}
	if p.InBytes < 0 {
		return fmt.Errorf("model: negative input size %v", p.InBytes)
	}
	return nil
}

// Balanced returns a pipeline of ns identical stages, a standard
// fixture across tests and scalability experiments.
func Balanced(ns int, work, bytes float64) PipelineSpec {
	stages := make([]StageSpec, ns)
	for i := range stages {
		stages[i] = StageSpec{
			Name:       fmt.Sprintf("stage%d", i),
			Work:       work,
			OutBytes:   bytes,
			Replicable: true,
		}
	}
	return PipelineSpec{Stages: stages, InBytes: bytes}
}
