package model

import (
	"testing"

	"gridpipe/internal/grid"
)

func TestMappingConstructors(t *testing.T) {
	m := SingleNode(3, 2)
	if m.NumStages() != 3 {
		t.Fatalf("NumStages = %d", m.NumStages())
	}
	for i := 0; i < 3; i++ {
		if len(m.Assign[i]) != 1 || m.Assign[i][0] != 2 {
			t.Fatalf("stage %d: %v", i, m.Assign[i])
		}
	}
	o := OneToOne(4)
	for i := 0; i < 4; i++ {
		if o.Assign[i][0] != grid.NodeID(i) {
			t.Fatalf("OneToOne stage %d on %d", i, o.Assign[i][0])
		}
	}
	f := FromNodes(0, 0, 1)
	if f.Assign[1][0] != 0 || f.Assign[2][0] != 1 {
		t.Fatalf("FromNodes wrong: %v", f)
	}
}

func TestContiguous(t *testing.T) {
	m := Contiguous([]int{2, 1}, []grid.NodeID{3, 5})
	if m.NumStages() != 3 {
		t.Fatalf("NumStages = %d", m.NumStages())
	}
	if m.Assign[0][0] != 3 || m.Assign[1][0] != 3 || m.Assign[2][0] != 5 {
		t.Fatalf("Contiguous wrong: %v", m)
	}
	for _, bad := range []func(){
		func() { Contiguous([]int{1}, []grid.NodeID{1, 2}) },
		func() { Contiguous([]int{0}, []grid.NodeID{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestWithReplicasDoesNotAliasOriginal(t *testing.T) {
	m := FromNodes(0, 1, 2)
	r := m.WithReplicas(1, 1, 3)
	if len(r.Assign[1]) != 2 {
		t.Fatalf("replicas not applied: %v", r)
	}
	if len(m.Assign[1]) != 1 {
		t.Fatal("WithReplicas mutated the original")
	}
	r.Assign[0][0] = 9
	if m.Assign[0][0] == 9 {
		t.Fatal("Clone is shallow")
	}
}

func TestMappingValidate(t *testing.T) {
	if err := FromNodes(0, 1).Validate(2, 2); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	cases := []struct {
		name string
		m    Mapping
		ns   int
		np   int
	}{
		{"wrongStageCount", FromNodes(0), 2, 2},
		{"emptyStage", Mapping{Assign: [][]grid.NodeID{{}}}, 1, 2},
		{"badNode", FromNodes(5), 1, 2},
		{"negativeNode", FromNodes(-1), 1, 2},
		{"duplicateReplica", Mapping{Assign: [][]grid.NodeID{{0, 0}}}, 1, 2},
	}
	for _, c := range cases {
		if err := c.m.Validate(c.ns, c.np); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMappingEqualAndString(t *testing.T) {
	a := FromNodes(0, 1, 1)
	b := FromNodes(0, 1, 1)
	if !a.Equal(b) {
		t.Fatal("identical mappings not Equal")
	}
	if a.Equal(FromNodes(0, 1)) || a.Equal(FromNodes(0, 1, 2)) {
		t.Fatal("different mappings Equal")
	}
	if a.Equal(a.WithReplicas(2, 1, 2)) {
		t.Fatal("replicated mapping Equal to plain")
	}
	if got := a.String(); got != "(0,1,1)" {
		t.Fatalf("String = %q", got)
	}
	if got := a.WithReplicas(1, 1, 2).String(); got != "(0,{1,2},1)" {
		t.Fatalf("replicated String = %q", got)
	}
}

func TestNodesUsed(t *testing.T) {
	m := FromNodes(0, 2, 0).WithReplicas(1, 2, 3)
	used := m.NodesUsed()
	want := map[grid.NodeID]bool{0: true, 2: true, 3: true}
	if len(used) != 3 {
		t.Fatalf("NodesUsed = %v", used)
	}
	for _, n := range used {
		if !want[n] {
			t.Fatalf("unexpected node %d", n)
		}
	}
}

func TestEnumerateAll(t *testing.T) {
	ms, err := EnumerateAll(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 {
		t.Fatalf("count = %d, want 8", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if err := m.Validate(3, 2); err != nil {
			t.Fatalf("invalid enumerated mapping %s: %v", m, err)
		}
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mapping %s", s)
		}
		seen[s] = true
	}
	if !seen["(0,0,0)"] || !seen["(1,1,1)"] || !seen["(0,1,0)"] {
		t.Fatalf("missing expected mappings: %v", seen)
	}
}

// The over-limit regression: a space past EnumerationLimit must come
// back as a clean error, not a panic (the seed behavior) — callers on
// the adaptation hot path handle it, they cannot recover a panic.
func TestEnumerateAllErrorsOnExplosion(t *testing.T) {
	if _, err := EnumerateAll(30, 10); err == nil {
		t.Fatal("expected an enumeration-limit error, got nil")
	}
	nodes := []grid.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, err := EnumerateOver(30, nodes); err == nil {
		t.Fatal("expected an enumeration-limit error, got nil")
	}
	// Degenerate dimensions error too (the seed panicked on these).
	if _, err := EnumerateAll(3, 0); err == nil {
		t.Fatal("expected an error for zero nodes")
	}
	if _, err := EnumerateOver(0, nodes); err == nil {
		t.Fatal("expected an error for zero stages")
	}
}

// VisitMappings must stream the exact sequence EnumerateOver
// materializes, reusing one Mapping, and honour an early stop.
func TestVisitMappingsMatchesEnumerateOver(t *testing.T) {
	nodes := []grid.NodeID{0, 2, 3}
	want, err := EnumerateOver(3, nodes)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	var prev Mapping
	err = VisitMappings(3, nodes, func(m Mapping) bool {
		if i >= len(want) {
			t.Fatalf("visitor saw more than %d mappings", len(want))
		}
		if !m.Equal(want[i]) {
			t.Fatalf("candidate %d = %s, want %s", i, m, want[i])
		}
		if i > 0 && &m.Assign[0][0] != &prev.Assign[0][0] {
			t.Fatal("visitor candidate is not reusing its backing storage")
		}
		prev = m
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("visited %d of %d mappings", i, len(want))
	}

	// Early stop.
	count := 0
	if err := VisitMappings(3, nodes, func(Mapping) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}

	// Errors on degenerate dimensions instead of panicking.
	if err := VisitMappings(0, nodes, func(Mapping) bool { return true }); err == nil {
		t.Fatal("expected an error for zero stages")
	}
	if err := VisitMappings(2, nil, func(Mapping) bool { return true }); err == nil {
		t.Fatal("expected an error for no nodes")
	}
}
