package model

import (
	"fmt"
	"math"
)

// CTMC is a finite continuous-time Markov chain described by its
// transition rates. It supports exact steady-state solution for the
// small chains used to validate the analytic pipeline model.
type CTMC struct {
	n     int
	edges []ctmcEdge
}

type ctmcEdge struct {
	from, to int
	rate     float64
	tag      string
}

// NewCTMC returns an empty chain over n states. It panics for n <= 0.
func NewCTMC(n int) *CTMC {
	if n <= 0 {
		panic("model: NewCTMC with non-positive state count")
	}
	return &CTMC{n: n}
}

// NumStates returns the number of states.
func (c *CTMC) NumStates() int { return c.n }

// AddRate adds a transition from → to with the given rate. Multiple
// calls for the same pair accumulate. It panics on invalid states,
// self-loops, or non-positive rates.
func (c *CTMC) AddRate(from, to int, rate float64) {
	c.AddTagged(from, to, rate, "")
}

// AddTagged is AddRate with a label attached to the transition; flows
// can then be computed per tag (e.g. "departure") with FlowTag.
func (c *CTMC) AddTagged(from, to int, rate float64, tag string) {
	if from < 0 || from >= c.n || to < 0 || to >= c.n {
		panic(fmt.Sprintf("model: AddRate with invalid states %d->%d", from, to))
	}
	if from == to {
		panic("model: AddRate self-loop")
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("model: AddRate with invalid rate %v", rate))
	}
	c.edges = append(c.edges, ctmcEdge{from, to, rate, tag})
}

// SteadyState returns the stationary distribution π solving πQ = 0,
// Σπ = 1, computed by power iteration on the uniformised chain
// P = I + Q/Λ. It returns an error if the iteration fails to converge
// (e.g. the chain is reducible with the probability mass split across
// components — the pipeline chains we build are always irreducible).
func (c *CTMC) SteadyState() ([]float64, error) {
	// Exit rates and uniformisation constant.
	exit := make([]float64, c.n)
	for _, e := range c.edges {
		exit[e.from] += e.rate
	}
	lambda := 0.0
	for _, r := range exit {
		if r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		return nil, fmt.Errorf("model: chain has no transitions")
	}
	lambda *= 1.05 // strictly dominate so P has self-loops everywhere (aperiodicity)

	pi := make([]float64, c.n)
	next := make([]float64, c.n)
	for i := range pi {
		pi[i] = 1 / float64(c.n)
	}
	const (
		maxIter = 200000
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = pi[i] * (1 - exit[i]/lambda)
		}
		for _, e := range c.edges {
			next[e.to] += pi[e.from] * e.rate / lambda
		}
		// Normalise to damp accumulation error.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		diff := 0.0
		for i := range next {
			next[i] /= sum
			d := math.Abs(next[i] - pi[i])
			if d > diff {
				diff = d
			}
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("model: steady-state iteration did not converge")
}

// Flow returns the steady-state rate of transitions selected by keep:
// Σ_{edges e: keep(e)} π[e.from]·rate(e).
func (c *CTMC) Flow(pi []float64, keep func(from, to int) bool) float64 {
	total := 0.0
	for _, e := range c.edges {
		if keep(e.from, e.to) {
			total += pi[e.from] * e.rate
		}
	}
	return total
}

// FlowTag returns the steady-state rate of all transitions carrying the
// given tag; with tag "departure" on last-stage completions this is the
// chain's exact throughput.
func (c *CTMC) FlowTag(pi []float64, tag string) float64 {
	total := 0.0
	for _, e := range c.edges {
		if e.tag == tag {
			total += pi[e.from] * e.rate
		}
	}
	return total
}
