package model

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
)

func latGrid(t *testing.T, speeds ...float64) *grid.Grid {
	t.Helper()
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPredictLatencyMD1ClosedForm(t *testing.T) {
	// Single deterministic stage, s = 0.1, λ = 2 → ρ = 0.2.
	// M/D/1: Wq = λ E[S²]/(2(1-ρ)) = 2·0.01/(2·0.8) = 0.0125.
	g := latGrid(t, 1)
	spec := Balanced(1, 0.1, 0)
	p, err := PredictLatency(g, spec, SingleNode(1, 0), nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.WaitPart-0.0125) > 1e-9 {
		t.Fatalf("WaitPart = %v, want 0.0125", p.WaitPart)
	}
	if math.Abs(p.Mean-0.1125) > 1e-6 {
		t.Fatalf("Mean = %v, want 0.1125", p.Mean)
	}
	if math.Abs(p.MaxUtilisation-0.2) > 1e-9 {
		t.Fatalf("rho = %v, want 0.2", p.MaxUtilisation)
	}
}

func TestPredictLatencyMM1ClosedForm(t *testing.T) {
	// Exponential service (cv=1): M/M/1 W = s/(1-ρ).
	g := latGrid(t, 1)
	spec := Balanced(1, 0.1, 0)
	lambda := 5.0 // ρ = 0.5
	p, err := PredictLatency(g, spec, SingleNode(1, 0), nil, lambda, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 / (1 - 0.5)
	if math.Abs(p.Mean-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v (M/M/1)", p.Mean, want)
	}
}

func TestPredictLatencyGrowsWithLoadAndRate(t *testing.T) {
	g := latGrid(t, 1, 1)
	spec := Balanced(2, 0.1, 0)
	m := OneToOne(2)
	low, err := PredictLatency(g, spec, m, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := PredictLatency(g, spec, m, nil, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if high.Mean <= low.Mean {
		t.Fatalf("latency did not grow with rate: %v vs %v", low.Mean, high.Mean)
	}
	loaded, err := PredictLatency(g, spec, m, []float64{0.5, 0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Mean <= low.Mean {
		t.Fatalf("latency did not grow with background load: %v vs %v", low.Mean, loaded.Mean)
	}
}

func TestPredictLatencySaturationError(t *testing.T) {
	g := latGrid(t, 1)
	spec := Balanced(1, 0.1, 0)
	if _, err := PredictLatency(g, spec, SingleNode(1, 0), nil, 11, 0); err == nil {
		t.Fatal("saturated node accepted")
	}
}

func TestPredictLatencyReplicationReducesWait(t *testing.T) {
	g := latGrid(t, 1, 1, 1)
	spec := PipelineSpec{Stages: []StageSpec{{Name: "h", Work: 0.2, Replicable: true}}}
	lambda := 4.0 // ρ = 0.8 unreplicated
	plain, err := PredictLatency(g, spec, SingleNode(1, 0), nil, lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := PredictLatency(g, spec, SingleNode(1, 0).WithReplicas(0, 0, 1), nil, lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	if repl.WaitPart >= plain.WaitPart {
		t.Fatalf("replication did not reduce waiting: %v vs %v", repl.WaitPart, plain.WaitPart)
	}
}

func TestPredictLatencyColocationAggregates(t *testing.T) {
	// Both stages on one node double that node's utilisation; the
	// model must see ρ = λ(s1+s2).
	g := latGrid(t, 1)
	spec := Balanced(2, 0.1, 0)
	p, err := PredictLatency(g, spec, SingleNode(2, 0), nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.MaxUtilisation-0.6) > 1e-9 {
		t.Fatalf("rho = %v, want 0.6", p.MaxUtilisation)
	}
}

func TestPredictLatencyValidation(t *testing.T) {
	g := latGrid(t, 1)
	spec := Balanced(1, 0.1, 0)
	m := SingleNode(1, 0)
	if _, err := PredictLatency(g, spec, m, nil, 0, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := PredictLatency(g, spec, m, nil, 1, -1); err == nil {
		t.Fatal("negative cv accepted")
	}
	if _, err := PredictLatency(g, spec, m, []float64{0.1, 0.1}, 1, 0); err == nil {
		t.Fatal("wrong loads length accepted")
	}
	if _, err := PredictLatency(g, PipelineSpec{}, Mapping{}, nil, 1, 0); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestPredictLatencyTransferFloor(t *testing.T) {
	g := latGrid(t, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.3, Bandwidth: 1e9}); err != nil {
		t.Fatal(err)
	}
	spec := PipelineSpec{
		Stages: []StageSpec{
			{Name: "a", Work: 0.05, OutBytes: 10},
			{Name: "b", Work: 0.05},
		},
		Source: 0, Sink: 0,
	}
	p, err := PredictLatency(g, spec, OneToOne(2), nil, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Floor: 0.05 + 0.3 + 0.05 + 0.3 = 0.7.
	if p.ServicePart < 0.69 || p.ServicePart > 0.72 {
		t.Fatalf("ServicePart = %v, want ~0.7", p.ServicePart)
	}
}
