package model

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
)

// Prediction is the analytic model's estimate for one mapping.
type Prediction struct {
	// Throughput is the predicted steady-state output rate in items/s.
	Throughput float64
	// NodeBusy[n] is the predicted busy time per pipeline item on node
	// n in seconds (already divided by the node's core count).
	NodeBusy []float64
	// BottleneckNode is the node limiting throughput, or -1 when a
	// link is the bottleneck.
	BottleneckNode grid.NodeID
	// LinkBound is the throughput bound imposed by the most loaded
	// link (+Inf when no inter-node traffic).
	LinkBound float64
	// Latency is the predicted one-item traversal time of an empty
	// pipeline: service + transfer along the critical path of the
	// stage graph (for a chain, simply the path), the model's
	// pipeline-fill estimate.
	Latency float64
}

// Predict estimates the steady-state throughput of the pipeline under
// the given mapping.
//
// loads[n] is the background-load estimate for node n (from the
// forecaster battery at run time, or time-averaged traces offline); nil
// means all idle. The model is a saturation analysis:
//
//   - each node is a server processing its stages' aggregate per-item
//     work at effective speed; throughput ≤ cores / busy-per-item;
//   - each directed link is a pipe moving the per-item bytes crossing
//     it (one flow per stage-graph edge, so a split charges every
//     branch and a merge's in-edges each carry their own part);
//     throughput ≤ bandwidth / bytes-per-item;
//   - the pipeline rate is the minimum bound — the saturation cut of
//     the stage graph (latency affects fill time, not steady-state
//     rate).
//
// Replicated stages deal items round-robin, so each of k replicas
// receives 1/k of the per-item work and each replica pair link 1/(k·k')
// of the traffic.
func Predict(g *grid.Grid, spec PipelineSpec, m Mapping, loads []float64) (Prediction, error) {
	return PredictInto(g, spec, m, loads, nil)
}

// PredictInto is Predict evaluated over a reusable scratch: all
// intermediate buffers (per-node busy times, link-flow accumulators,
// the critical-path table) come from s, so a steady-state caller —
// a search strategy rating thousands of candidates — performs zero
// allocations per evaluation. A nil scratch allocates fresh buffers,
// which is exactly Predict.
//
// The returned Prediction's NodeBusy slice ALIASES the scratch and is
// only valid until the next PredictInto on the same scratch; callers
// that retain predictions across evaluations must copy it (see
// Prediction.CloneBusyInto).
func PredictInto(g *grid.Grid, spec PipelineSpec, m Mapping, loads []float64, s *PredictScratch) (Prediction, error) {
	if err := spec.Validate(); err != nil {
		return Prediction{}, err
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		return Prediction{}, err
	}
	if loads != nil && len(loads) != g.NumNodes() {
		return Prediction{}, fmt.Errorf("model: %d load estimates for %d nodes", len(loads), g.NumNodes())
	}
	loadOf := func(n grid.NodeID) float64 {
		if loads == nil {
			return 0
		}
		l := loads[n]
		if l < 0 {
			return 0
		}
		if l > 0.99 {
			return 0.99
		}
		return l
	}
	if s == nil {
		s = NewPredictScratch()
	}

	// Per-node busy seconds per item. At grain gr, every batch pays
	// the fixed boundary overhead h once, so each item carries h/gr of
	// it on top of its own work — the paper's amortized-overhead term.
	// Per-boundary vectors charge each stage at its own input grain;
	// scalar specs hit the fallback accessors, which return the exact
	// operands the legacy expression used, so those predictions stay
	// bit-identical. The unbatched case skips the term entirely.
	batched := spec.Batched()
	busy := s.busyFor(g.NumNodes())
	for i, st := range spec.Stages {
		replicas := m.Assign[i]
		share := 1 / float64(len(replicas))
		work := st.Work
		if batched {
			work += spec.OverheadAt(i) / spec.EffGrainAt(i)
		}
		for _, n := range replicas {
			node := g.Node(n)
			eff := node.Speed * (1 - loadOf(n))
			busy[n] += share * work / eff
		}
	}

	// Per-directed-link bytes per item. The accumulator is a small
	// linear-probed slice rather than a map: the number of distinct
	// node pairs is bounded by the stage graph's edges times replica
	// fan, and per-pair additions happen in the same program order as
	// the old map accumulation, so the sums are bit-identical.
	s.flows = s.flows[:0]
	addFlow := func(from, to []grid.NodeID, bytes, gr float64) {
		if bytes == 0 {
			return
		}
		share := bytes / float64(len(from)*len(to))
		for _, a := range from {
			for _, b := range to {
				if a != b {
					s.addFlow(a, b, share, gr)
				}
			}
		}
	}
	// Data flows follow the stage graph: source → entry, one flow per
	// edge (a split duplicates its payload onto every out-edge, a
	// merge's in-edges each carry their own part), exit → sink. Each
	// flow travels at the grain of the boundary it crosses — the
	// receiving stage's input grain, with the exit → sink flow at the
	// exit's own grain. A nil Topo is the implicit chain — the
	// Linearize identity — walked directly so the scheduler's search
	// loops (one Predict per candidate mapping) stay free of per-call
	// graph allocations.
	exit := len(spec.Stages) - 1 // the structural contract pins entry=0, exit=n-1
	source := []grid.NodeID{spec.Source}
	sink := []grid.NodeID{spec.Sink}
	addFlow(source, m.Assign[0], spec.InBytes, spec.EffGrainAt(0))
	if spec.Topo == nil {
		for i := 0; i+1 < len(spec.Stages); i++ {
			addFlow(m.Assign[i], m.Assign[i+1], spec.Stages[i].OutBytes, spec.EffGrainAt(i+1))
		}
	} else {
		for _, ed := range spec.Topo.Edges {
			addFlow(m.Assign[ed.From], m.Assign[ed.To], ed.Bytes, spec.EffGrainAt(ed.To))
		}
	}
	addFlow(m.Assign[exit], sink, spec.Stages[exit].OutBytes, spec.EffGrainAt(exit))

	// Bounds.
	tp := math.Inf(1)
	bottleneck := grid.NodeID(-1)
	for n := range busy {
		if busy[n] <= 0 {
			continue
		}
		perCore := busy[n] / float64(g.Node(grid.NodeID(n)).Cores)
		busy[n] = perCore
		if bound := 1 / perCore; bound < tp {
			tp = bound
			bottleneck = grid.NodeID(n)
		}
	}
	// Link bounds. Unbatched, a link saturates at bandwidth/bytes
	// (latency pipelines away). Batched, each transfer is one message
	// per gr items, so every item also carries Latency/gr of the
	// per-message link latency — small batches on a high-latency link
	// are charged for it, which is exactly the amortization the grain
	// search trades against batching delay. Each flow carries the grain
	// of its boundary (the finest one, if several flows merged onto the
	// same node pair).
	linkBound := math.Inf(1)
	for _, f := range s.flows {
		lk := g.Link(f.a, f.b)
		var bound float64
		if batched {
			bound = 1 / (f.bytes/lk.Bandwidth + lk.Latency/f.gr)
		} else {
			bound = lk.Bandwidth / f.bytes
		}
		if bound < linkBound {
			linkBound = bound
		}
	}
	if linkBound < tp {
		tp = linkBound
		bottleneck = -1
	}

	// One-item latency through an empty pipeline: the critical
	// (longest) path through the stage graph, with service on the
	// first replica of each stage and transfers along first-replica
	// edges. A merge stage starts when its latest part arrives, so its
	// ready time is the max over in-edges. The nil-Topo chain walks
	// sequentially (allocation-free); on a chain topology the DP
	// performs the same additions in the same order, so both paths are
	// bit-identical.
	var lat float64
	if spec.Topo == nil {
		prev := spec.Source
		prevBytes := spec.InBytes
		for i, st := range spec.Stages {
			n := m.Assign[i][0]
			if prev != n {
				lat += g.Link(prev, n).TransferDuration(prevBytes, 0)
			}
			node := g.Node(n)
			work := st.Work
			if batched {
				work += spec.OverheadAt(i) / spec.EffGrainAt(i)
			}
			lat += work / (node.Speed * (1 - loadOf(n)))
			prev, prevBytes = n, st.OutBytes
		}
		if prev != spec.Sink {
			lat += g.Link(prev, spec.Sink).TransferDuration(prevBytes, 0)
		}
	} else {
		graph := spec.Topo
		ready := s.readyFor(len(spec.Stages)) // output-ready time per stage
		for i, st := range spec.Stages {
			n := m.Assign[i][0]
			t := 0.0
			if ins := graph.InEdges(i); len(ins) == 0 {
				if spec.Source != n {
					t += g.Link(spec.Source, n).TransferDuration(spec.InBytes, 0)
				}
			} else {
				for _, ei := range ins {
					ed := graph.Edges[ei]
					prev := m.Assign[ed.From][0]
					arr := ready[ed.From]
					if prev != n {
						arr += g.Link(prev, n).TransferDuration(ed.Bytes, 0)
					}
					if arr > t {
						t = arr
					}
				}
			}
			node := g.Node(n)
			work := st.Work
			if batched {
				work += spec.OverheadAt(i) / spec.EffGrainAt(i)
			}
			ready[i] = t + work/(node.Speed*(1-loadOf(n)))
		}
		lat = ready[exit]
		if last := m.Assign[exit][0]; last != spec.Sink {
			lat += g.Link(last, spec.Sink).TransferDuration(spec.Stages[exit].OutBytes, 0)
		}
	}

	return Prediction{
		Throughput:     tp,
		NodeBusy:       busy,
		BottleneckNode: bottleneck,
		LinkBound:      linkBound,
		Latency:        lat,
	}, nil
}

// Best evaluates every candidate and returns the index and prediction
// of the highest-throughput mapping. Ties break towards the earlier
// candidate, which makes the choice deterministic. Evaluations run
// through one pooled scratch, so the cost is one retained-busy copy
// per improvement rather than a fresh allocation per candidate.
func Best(g *grid.Grid, spec PipelineSpec, candidates []Mapping, loads []float64) (int, Prediction, error) {
	if len(candidates) == 0 {
		return -1, Prediction{}, fmt.Errorf("model: no candidate mappings")
	}
	s := AcquirePredictScratch()
	defer ReleasePredictScratch(s)
	bestIdx := -1
	var bestPred Prediction
	var bestBusy []float64
	for i, m := range candidates {
		p, err := PredictInto(g, spec, m, loads, s)
		if err != nil {
			return -1, Prediction{}, fmt.Errorf("candidate %d (%s): %w", i, m, err)
		}
		if bestIdx < 0 || p.Throughput > bestPred.Throughput {
			bestIdx = i
			bestBusy = append(bestBusy[:0], p.NodeBusy...)
			bestPred = p
			bestPred.NodeBusy = bestBusy
		}
	}
	return bestIdx, bestPred, nil
}
