package adaptive

import (
	"fmt"
	"math"
	"testing"
)

// stubSub is a scriptable substrate: one struct implements Sensor,
// Actuator, and Clock so the core loop can be exercised without a
// simulator or goroutine runtime behind it.
type stubSub struct {
	loads     []float64
	obs       float64 // observed throughput
	slow      []float64
	reference float64
	hyst      float64
	proposal  *Proposal
	searched  bool
	applied   int
	sampled   int
	lastMode  LoadMode

	ticks []func(now float64)
}

type stubPlacement string

func (s stubPlacement) String() string { return string(s) }

func (s *stubSub) Sample(now float64) { s.sampled++ }
func (s *stubSub) Loads(mode LoadMode, now float64) []float64 {
	s.lastMode = mode
	return s.loads
}
func (s *stubSub) Throughput(window, now float64) float64 { return s.obs }
func (s *stubSub) Slowdowns() []float64                   { return s.slow }

func (s *stubSub) Expected(loads []float64) (float64, float64) { return s.reference, s.hyst }
func (s *stubSub) Propose(loads []float64) (*Proposal, bool)   { return s.proposal, s.searched }
func (s *stubSub) Apply(p *Proposal) Actuation {
	s.applied++
	return Actuation{Changed: true, Moved: 1}
}

func (s *stubSub) Tick(interval float64, fn func(now float64)) func() {
	s.ticks = append(s.ticks, fn)
	return func() { s.ticks = nil }
}

// fire delivers one tick at time now.
func (s *stubSub) fire(now float64) {
	for _, fn := range s.ticks {
		fn(now)
	}
}

func newStub() *stubSub {
	return &stubSub{
		obs:       math.NaN(),
		reference: 10, hyst: 10,
		searched: true,
		proposal: &Proposal{From: stubPlacement("a"), To: stubPlacement("b"), Predicted: 20},
	}
}

func mustNew(t *testing.T, s *stubSub, cfg Config) *Controller {
	t.Helper()
	c, err := New(s, s, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStaticInstallsNoTick(t *testing.T) {
	s := newStub()
	c := mustNew(t, s, Config{Policy: PolicyStatic})
	c.Start()
	if len(s.ticks) != 0 {
		t.Fatal("static policy armed the clock")
	}
	c.Stop()
}

func TestPeriodicSearchesEveryTick(t *testing.T) {
	s := newStub()
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1})
	c.Start()
	s.fire(1)
	s.fire(2)
	st := c.Stats()
	if st.Ticks != 2 || st.Searches != 2 || st.Remaps != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if s.sampled != 2 {
		t.Fatalf("sampled %d times", s.sampled)
	}
	if len(st.Events) != 2 || st.Events[0].From.String() != "a" || st.Events[0].To.String() != "b" {
		t.Fatalf("events: %+v", st.Events)
	}
}

func TestHysteresisBlocksMarginalGain(t *testing.T) {
	s := newStub()
	s.proposal.Predicted = 10.5 // < 1.15 × 10
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1})
	c.Start()
	s.fire(1)
	if st := c.Stats(); st.Searches != 1 || st.Remaps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCooldownSuppressesSearch(t *testing.T) {
	s := newStub()
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1, Cooldown: 5})
	c.Start()
	s.fire(1) // remap at t=1
	s.fire(2) // inside cooldown
	s.fire(7) // cooldown expired
	if st := c.Stats(); st.Remaps != 2 || st.Searches != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReactiveTriggers(t *testing.T) {
	cases := []struct {
		name string
		prep func(s *stubSub)
		want bool
	}{
		{"no signal", func(s *stubSub) {}, false},
		{"healthy", func(s *stubSub) { s.obs = 9.9 }, false},
		{"degraded", func(s *stubSub) { s.obs = 5 }, true}, // < 0.7×10
		{"imbalance", func(s *stubSub) { s.slow = []float64{1, 4} }, true},
		{"balanced", func(s *stubSub) { s.slow = []float64{1, 1.5} }, false},
		{"one-stage imbalance is no signal", func(s *stubSub) { s.slow = []float64{4, math.NaN()} }, false},
	}
	for _, tc := range cases {
		s := newStub()
		tc.prep(s)
		c := mustNew(t, s, Config{Policy: PolicyReactive, Interval: 1})
		c.Start()
		s.fire(1)
		if got := c.Stats().Searches == 1; got != tc.want {
			t.Errorf("%s: searched=%t, want %t", tc.name, got, tc.want)
		}
	}
}

func TestPredictivepromiseTrigger(t *testing.T) {
	s := newStub()
	s.obs = 9.9 // healthy vs reference
	c := mustNew(t, s, Config{Policy: PolicyPredictive, Interval: 1})
	c.Start()
	s.fire(1) // no trigger: healthy, no events yet
	if st := c.Stats(); st.Searches != 0 {
		t.Fatalf("premature search: %+v", st)
	}
	// Degrade so the first remap happens, promising 20.
	s.obs = 5
	s.fire(2)
	if st := c.Stats(); st.Remaps != 1 {
		t.Fatalf("no initial remap: %+v", st)
	}
	// Healthy observation, but the forecast expectation collapses far
	// below the 20 promised: the promise trigger must fire.
	s.obs = math.NaN()
	s.reference = 8 // < 0.7 × 20
	s.proposal = &Proposal{From: stubPlacement("b"), To: stubPlacement("c"), Predicted: 40}
	s.fire(3)
	if st := c.Stats(); st.Searches != 2 {
		t.Fatalf("promise trigger did not fire: %+v", st)
	}
}

func TestFaultBypassesHysteresisAndCooldown(t *testing.T) {
	s := newStub()
	s.proposal.Predicted = 1 // far below any hysteresis bar
	c := mustNew(t, s, Config{Policy: PolicyReactive, Interval: 1, Cooldown: 100})
	c.Start()
	c.Fault(2.5)
	st := c.Stats()
	if st.Remaps != 1 || st.FaultRemaps != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !st.Events[0].Fault || st.Events[0].Time != 2.5 {
		t.Fatalf("event: %+v", st.Events[0])
	}
}

func TestNoSearchWhenSubstrateCannotPlan(t *testing.T) {
	s := newStub()
	s.searched = false
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1})
	c.Start()
	s.fire(1)
	if st := c.Stats(); st.Searches != 0 || st.Remaps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNilProposalCountsAsSearch(t *testing.T) {
	s := newStub()
	s.proposal = nil
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1})
	c.Start()
	s.fire(1)
	if st := c.Stats(); st.Searches != 1 || st.Remaps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLoadModePerPolicy(t *testing.T) {
	want := map[Policy]LoadMode{
		PolicyPeriodic:   LoadLast,
		PolicyReactive:   LoadLast,
		PolicyPredictive: LoadPredicted,
		PolicyOracle:     LoadOracle,
	}
	for pol, mode := range want {
		s := newStub()
		c := mustNew(t, s, Config{Policy: pol, Interval: 1})
		c.Start()
		s.fire(1)
		if s.lastMode != mode {
			t.Errorf("%v: mode %v, want %v", pol, s.lastMode, mode)
		}
	}
}

func TestStatsIsolatedCopy(t *testing.T) {
	s := newStub()
	c := mustNew(t, s, Config{Policy: PolicyPeriodic, Interval: 1})
	c.Start()
	s.fire(1)
	st := c.Stats()
	st.Events[0].Time = -1
	if c.Stats().Events[0].Time == -1 {
		t.Fatal("Stats returned a shared slice")
	}
}

func TestNewRejectsNilParts(t *testing.T) {
	s := newStub()
	if _, err := New(nil, s, s, Config{}); err == nil {
		t.Fatal("nil sensor accepted")
	}
	if _, err := New(s, nil, s, Config{}); err == nil {
		t.Fatal("nil actuator accepted")
	}
	if _, err := New(s, s, nil, Config{}); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicyStatic:     "static",
		PolicyPeriodic:   "periodic",
		PolicyReactive:   "reactive",
		PolicyPredictive: "predictive",
		PolicyOracle:     "oracle",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
		rt, err := ParsePolicy(s)
		if err != nil || rt != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, rt, err)
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy should render")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
	if len(Policies()) != 5 {
		t.Errorf("Policies() = %v", Policies())
	}
}

func TestPolicyStringRoundTripsThroughFmt(t *testing.T) {
	if got := fmt.Sprintf("%v", PolicyReactive); got != "reactive" {
		t.Fatalf("fmt rendering = %q", got)
	}
}
