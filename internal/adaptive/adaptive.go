// Package adaptive implements the adaptive pipeline controller — the
// primary contribution reproduced from the paper. It closes the loop
//
//	sense performance → forecast the near future → predict candidate
//	configurations → reconfigure when the predicted gain clears a
//	hysteresis bar
//
// over an abstract substrate: the controller itself knows nothing
// about discrete-event simulation, grids, or goroutines. One substrate
// (internal/adaptive/simadapt) runs the loop in virtual time over the
// simulated executor — that is how the repository reproduces the
// paper's experiments. A second (internal/adaptive/liveadapt) runs the
// same loop on a wall clock over the live goroutine runtime, resizing
// per-stage worker pools under real CPU contention — that is the paper's
// claim done live.
//
// A substrate plugs in through three interfaces:
//
//   - Sensor: per-stage service/throughput snapshots plus per-resource
//     load estimates (last-measured, forecast, or oracle);
//   - Actuator: predicts the current configuration's throughput,
//     proposes a better configuration, and applies it (remap in
//     simulation, SetReplicas/SetWorkers live);
//   - Clock: schedules the periodic sensing/decision tick (virtual
//     time in simulation, a time.Ticker live).
//
// Three trigger policies are compared in experiment A1:
//
//   - Periodic: re-evaluate the configuration every interval regardless
//     of symptoms (the simplest correct policy, but it churns).
//   - Reactive: re-evaluate only when observed throughput degrades
//     against the substrate's expectation for the current
//     configuration, or the stage service times become imbalanced.
//   - Predictive: like Reactive, but decisions use the forecaster
//     battery's near-future estimates instead of the last measurement,
//     so the controller moves before a building load spike fully lands.
//
// An Oracle mode (true instantaneous loads, no forecast error) gives
// the upper bound reported in figure F1; only substrates that can see
// ground truth (the simulator) support it.
package adaptive

import (
	"fmt"
	"math"
	"sync"
)

// Policy selects the controller's trigger-and-estimate strategy.
type Policy int

const (
	// PolicyStatic never adapts (baseline; the controller is inert).
	PolicyStatic Policy = iota
	// PolicyPeriodic re-evaluates every interval using last-measured
	// loads.
	PolicyPeriodic
	// PolicyReactive re-evaluates when throughput degrades or stages
	// become imbalanced, using last-measured loads.
	PolicyReactive
	// PolicyPredictive is reactive triggering plus forecasted loads
	// for both the trigger and the decision.
	PolicyPredictive
	// PolicyOracle re-evaluates every interval with exact
	// instantaneous loads (no sensing or forecasting error).
	PolicyOracle
)

// String renders the policy name used in experiment tables.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyPeriodic:
		return "periodic"
	case PolicyReactive:
		return "reactive"
	case PolicyPredictive:
		return "predictive"
	case PolicyOracle:
		return "oracle"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name as printed by Policy.String.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if name == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("adaptive: unknown policy %q", name)
}

// Policies returns every policy in menu order.
func Policies() []Policy {
	return []Policy{PolicyStatic, PolicyPeriodic, PolicyReactive, PolicyPredictive, PolicyOracle}
}

// LoadMode is how a Sensor turns its measurement history into the
// estimates a decision uses; it is derived from the policy.
type LoadMode int

const (
	// LoadLast uses the most recent measurement.
	LoadLast LoadMode = iota
	// LoadPredicted uses the forecaster battery's near-future estimate.
	LoadPredicted
	// LoadOracle uses ground truth (simulation only).
	LoadOracle
)

// Mode returns the load-estimation mode the policy decides with.
func (p Policy) Mode() LoadMode {
	switch p {
	case PolicyOracle:
		return LoadOracle
	case PolicyPredictive:
		return LoadPredicted
	default:
		return LoadLast
	}
}

// Sensor is the observation side of one substrate.
type Sensor interface {
	// Sample takes one measurement round at time now, feeding any
	// forecasters. The controller calls it exactly once per decision.
	Sample(now float64)
	// Loads returns the per-resource estimates the actuator plans with:
	// background load per grid node in simulation, per-stage service
	// time live. The slice is owned by the caller.
	Loads(mode LoadMode, now float64) []float64
	// Throughput returns the observed pipeline exit rate over the
	// trailing window ending at now, or NaN when there is no signal.
	Throughput(window, now float64) float64
	// Slowdowns returns the per-stage ratio of observed service time to
	// nominal demand (NaN for stages without a nominal demand or
	// without samples). A healthy configuration keeps all slowdowns
	// comparable; the imbalance trigger fires on their spread.
	Slowdowns() []float64
}

// Placement renders one substrate configuration — a grid mapping, a
// replica vector — for the event log.
type Placement interface{ String() string }

// Proposal is one candidate reconfiguration returned by an Actuator.
type Proposal struct {
	// From and To describe the old and new configurations.
	From, To Placement
	// Predicted is the expected throughput after actuation, in the
	// same units as the hysteresis base returned by Expected.
	Predicted float64
	// Ref is the substrate's handle for Apply.
	Ref any
}

// Actuation reports what applying a proposal did.
type Actuation struct {
	// Moved is the number of queued items migrated (simulation).
	Moved int
	// Killed is the number of in-service items aborted (kill-restart).
	Killed int
	// RedoneWork is the reference-seconds of service discarded.
	RedoneWork float64
	// Changed reports whether the configuration actually changed.
	Changed bool
}

// Actuator is the prediction-and-actuation side of one substrate.
type Actuator interface {
	// Expected returns the current configuration's predicted
	// throughput in two roles: reference is what degradation triggers
	// compare observations against (the throughput this configuration
	// should deliver), and hysteresis is the base a candidate's
	// predicted gain is measured from. A substrate whose model already
	// accounts for current conditions returns the same value for both;
	// the live substrate anchors reference to unloaded baselines so a
	// uniform slowdown is visible as degradation.
	Expected(loads []float64) (reference, hysteresis float64)
	// Propose searches for a better configuration under the load
	// estimates. searched=false means no search could run (no live
	// resources, no measurements yet); a nil proposal with
	// searched=true means the search found nothing different from the
	// current configuration.
	Propose(loads []float64) (p *Proposal, searched bool)
	// Apply actuates a proposal returned by Propose.
	Apply(p *Proposal) Actuation
}

// Clock schedules the controller's periodic tick on the substrate's
// timeline.
type Clock interface {
	// Tick arranges fn(now) to fire every interval time units, first
	// one interval from now. The returned function cancels future
	// ticks; it must not return while an invocation of fn is running.
	Tick(interval float64, fn func(now float64)) (stop func())
}

// Config tunes a Controller. All thresholds are substrate-neutral;
// substrate-specific knobs (remap protocol, searcher, worker budget)
// live on the substrate's own config.
type Config struct {
	Policy Policy
	// Interval is the sensing/decision period in the substrate's time
	// unit — virtual seconds simulated, wall seconds live (default 1).
	Interval float64
	// DegradationFactor triggers re-evaluation when observed
	// throughput falls below this fraction of the substrate's
	// expectation for the current configuration (default 0.7).
	DegradationFactor float64
	// ImbalanceThreshold triggers re-evaluation when the max/min stage
	// slowdown ratio exceeds it (default 3).
	ImbalanceThreshold float64
	// HysteresisGain is the minimum predicted throughput ratio
	// new/current required to actually reconfigure (default 1.15). It
	// is the knob that stops oscillation; experiments F3 and A3 sweep
	// the regime where it matters.
	HysteresisGain float64
	// Cooldown is the minimum time between two reconfigurations
	// (default 0 = none). A second anti-churn guard, independent of
	// the predicted gain.
	Cooldown float64
	// ThroughputWindow is the trailing window for observed throughput
	// (default 5×Interval).
	ThroughputWindow float64
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.DegradationFactor <= 0 {
		c.DegradationFactor = 0.7
	}
	if c.ImbalanceThreshold <= 0 {
		c.ImbalanceThreshold = 3
	}
	if c.HysteresisGain <= 0 {
		c.HysteresisGain = 1.15
	}
	if c.ThroughputWindow <= 0 {
		c.ThroughputWindow = 5 * c.Interval
	}
}

// Event records one actual reconfiguration.
type Event struct {
	Time         float64
	From, To     Placement
	PredictedOld float64
	PredictedNew float64
	Stats        Actuation
	// Fault marks a reconfiguration forced by a resource failure
	// (hysteresis and trigger thresholds bypassed).
	Fault bool
}

// Stats summarises a controller's activity.
type Stats struct {
	Ticks    int
	Searches int
	Remaps   int
	// FaultRemaps counts remaps forced by resource failures, a subset
	// of Remaps.
	FaultRemaps int
	Events      []Event
}

// Controller drives adaptation of one substrate. Build with New; the
// same controller core runs simulated (deterministic, single-threaded)
// and live (ticks fire on a clock goroutine), so its entry points are
// mutex-guarded.
type Controller struct {
	sensor Sensor
	act    Actuator
	clock  Clock
	cfg    Config

	mu    sync.Mutex
	stop  func()
	stats Stats
}

// New builds a controller over one substrate's sensor, actuator, and
// clock. Call Start to begin the decision loop.
func New(sensor Sensor, act Actuator, clock Clock, cfg Config) (*Controller, error) {
	if sensor == nil || act == nil || clock == nil {
		return nil, fmt.Errorf("adaptive: nil substrate part (sensor=%t actuator=%t clock=%t)",
			sensor != nil, act != nil, clock != nil)
	}
	cfg.fillDefaults()
	return &Controller{sensor: sensor, act: act, clock: clock, cfg: cfg}, nil
}

// Policy returns the controller's trigger policy.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

// Stats returns a copy of the controller's activity counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Events = append([]Event(nil), c.stats.Events...)
	return out
}

// Start installs the periodic sensing/decision tick. A static
// controller installs nothing: it neither adapts to load nor reacts to
// failures, which is exactly the baseline the experiments measure
// against.
func (c *Controller) Start() {
	if c.cfg.Policy == PolicyStatic {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = c.clock.Tick(c.cfg.Interval, c.tick)
}

// Stop cancels the decision loop.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop := c.stop
	c.stop = nil
	c.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// tick is one sensing/decision round.
func (c *Controller) tick(now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Ticks++
	c.sensor.Sample(now)
	loads := c.sensor.Loads(c.cfg.Policy.Mode(), now)
	reference, hysteresis := c.act.Expected(loads)

	if c.cfg.Cooldown > 0 && len(c.stats.Events) > 0 &&
		now-c.stats.Events[len(c.stats.Events)-1].Time < c.cfg.Cooldown {
		return
	}
	if !c.shouldSearch(now, reference) {
		return
	}
	c.searchAndActuate(now, loads, hysteresis, false)
}

// Fault forces an immediate search-and-actuate at time now, bypassing
// the trigger thresholds, the hysteresis bar, and the cooldown.
// Substrates call it when a resource the current placement uses dies:
// any feasible configuration beats the current one, and waiting for
// the reactive throughput trigger would not even fire on a total
// stall, since a window with zero completions reads as "no signal"
// rather than "zero".
func (c *Controller) Fault(now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sensor.Sample(now)
	loads := c.sensor.Loads(c.cfg.Policy.Mode(), now)
	// The old prediction is the substrate's view of the configuration
	// the fault just invalidated, recorded for the events table only —
	// the fault path never gates on it.
	_, hysteresis := c.act.Expected(loads)
	c.searchAndActuate(now, loads, hysteresis, true)
}

// searchAndActuate runs one configuration search and actuates when
// warranted: the shared tail of the periodic tick and the fault path.
// oldPred is the substrate's view of the current configuration,
// recorded in the event; fault bypasses the hysteresis bar (a dead
// replica already invalidated the placement) and marks the event.
func (c *Controller) searchAndActuate(now float64, loads []float64, oldPred float64, fault bool) {
	p, searched := c.act.Propose(loads)
	if !searched {
		return // nothing to plan over; wait for capacity or signal
	}
	c.stats.Searches++
	if p == nil {
		return // the search found nothing different
	}
	if !fault && p.Predicted < c.cfg.HysteresisGain*oldPred {
		return // not worth the disruption
	}
	st := c.act.Apply(p)
	if !st.Changed {
		return
	}
	c.stats.Remaps++
	if fault {
		c.stats.FaultRemaps++
	}
	c.stats.Events = append(c.stats.Events, Event{
		Time:         now,
		From:         p.From,
		To:           p.To,
		PredictedOld: oldPred,
		PredictedNew: p.Predicted,
		Stats:        st,
		Fault:        fault,
	})
}

// imbalance returns the ratio of the largest to the smallest per-stage
// slowdown reported by the sensor, or NaN until at least two stages
// have a signal. A loaded or slow resource inflates its stages'
// slowdowns only, so the spread separates placement problems from the
// pipeline simply having unequal stages.
func (c *Controller) imbalance() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range c.sensor.Slowdowns() {
		if math.IsNaN(s) {
			continue
		}
		n++
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if n < 2 || min <= 0 {
		return math.NaN()
	}
	return max / min
}

// shouldSearch evaluates the trigger for the current policy. expected
// is the reference throughput of the current configuration.
func (c *Controller) shouldSearch(now, expected float64) bool {
	switch c.cfg.Policy {
	case PolicyPeriodic, PolicyOracle:
		return true
	case PolicyReactive, PolicyPredictive:
		// Degradation trigger: observed vs the substrate's expectation.
		obs := c.sensor.Throughput(c.cfg.ThroughputWindow, now)
		if !math.IsNaN(obs) && expected > 0 && obs < c.cfg.DegradationFactor*expected {
			return true
		}
		// Imbalance trigger: one stage's slowdown far exceeds
		// another's — a placement problem.
		if imb := c.imbalance(); !math.IsNaN(imb) && imb > c.cfg.ImbalanceThreshold {
			return true
		}
		// Predictive additionally searches when the forecast makes the
		// current configuration look substantially worse than it was
		// promised at the last remap — i.e. trouble is coming even if
		// throughput has not collapsed yet.
		if c.cfg.Policy == PolicyPredictive {
			if len(c.stats.Events) > 0 {
				last := c.stats.Events[len(c.stats.Events)-1]
				if expected < c.cfg.DegradationFactor*last.PredictedNew {
					return true
				}
			} else if obsNaN := math.IsNaN(obs); !obsNaN && expected > 0 && obs < expected*c.cfg.DegradationFactor {
				return true
			}
		}
		return false
	default:
		return false
	}
}
