// Package adaptive implements the adaptive pipeline controller — the
// primary contribution reproduced from the paper. It closes the loop
// between monitoring (internal/monitor), forecasting
// (internal/forecast), modelling (internal/model), mapping search
// (internal/sched) and actuation (internal/exec.Remap):
//
//	sense node loads → forecast near-future performance →
//	re-evaluate candidate mappings under the analytic model →
//	remap/replicate when the predicted gain clears a hysteresis bar.
//
// Three trigger policies are compared in experiment A1:
//
//   - Periodic: re-evaluate the mapping every interval regardless of
//     symptoms (the simplest correct policy, but it churns).
//   - Reactive: re-evaluate only when observed throughput degrades
//     against the model's expectation for the current mapping, or the
//     stage service times become imbalanced.
//   - Predictive: like Reactive, but decisions use the forecaster
//     battery's near-future load estimates instead of the last
//     measurement, so the controller moves before a building load
//     spike fully lands.
//
// An Oracle mode (true instantaneous loads, no forecast error) gives
// the upper bound reported in figure F1.
package adaptive

import (
	"fmt"
	"math"

	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
)

// Policy selects the controller's trigger-and-estimate strategy.
type Policy int

const (
	// PolicyStatic never adapts (baseline; the controller is inert).
	PolicyStatic Policy = iota
	// PolicyPeriodic re-evaluates every interval using last-measured
	// loads.
	PolicyPeriodic
	// PolicyReactive re-evaluates when throughput degrades or stages
	// become imbalanced, using last-measured loads.
	PolicyReactive
	// PolicyPredictive is reactive triggering plus forecasted loads
	// for both the trigger and the decision.
	PolicyPredictive
	// PolicyOracle re-evaluates every interval with exact
	// instantaneous loads (no sensing or forecasting error).
	PolicyOracle
)

// String renders the policy name used in experiment tables.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyPeriodic:
		return "periodic"
	case PolicyReactive:
		return "reactive"
	case PolicyPredictive:
		return "predictive"
	case PolicyOracle:
		return "oracle"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config tunes a Controller.
type Config struct {
	Policy Policy
	// Interval is the sensing/decision period in virtual seconds
	// (default 1).
	Interval float64
	// DegradationFactor triggers re-evaluation when observed
	// throughput falls below this fraction of the model's expectation
	// for the current mapping (default 0.7).
	DegradationFactor float64
	// ImbalanceThreshold triggers re-evaluation when the max/min stage
	// service-time ratio exceeds it (default 3).
	ImbalanceThreshold float64
	// HysteresisGain is the minimum predicted throughput ratio
	// new/current required to actually remap (default 1.15). It is the
	// knob that stops oscillation; experiments F3 and A3 sweep the
	// regime where it matters.
	HysteresisGain float64
	// Cooldown is the minimum virtual time between two remaps
	// (default 0 = none). A second anti-churn guard, independent of the
	// predicted gain.
	Cooldown float64
	// Protocol is how in-flight work is handled on remap.
	Protocol exec.RemapProtocol
	// MaxReplicas bounds stage replication width (0 = grid size).
	MaxReplicas int
	// Searcher finds candidate mappings (default LocalSearch).
	Searcher sched.Searcher
	// ThroughputWindow is the trailing window for observed throughput
	// (default 5×Interval).
	ThroughputWindow float64
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.DegradationFactor <= 0 {
		c.DegradationFactor = 0.7
	}
	if c.ImbalanceThreshold <= 0 {
		c.ImbalanceThreshold = 3
	}
	if c.HysteresisGain <= 0 {
		c.HysteresisGain = 1.15
	}
	if c.Searcher == nil {
		c.Searcher = sched.LocalSearch{Seed: 1}
	}
	if c.ThroughputWindow <= 0 {
		c.ThroughputWindow = 5 * c.Interval
	}
}

// Event records one actual reconfiguration.
type Event struct {
	Time         float64
	From, To     model.Mapping
	PredictedOld float64
	PredictedNew float64
	Stats        exec.RemapStats
	// Fault marks a remap forced by a node crash (hysteresis and
	// trigger thresholds bypassed).
	Fault bool
}

// Stats summarises a controller's activity.
type Stats struct {
	Ticks    int
	Searches int
	Remaps   int
	// FaultRemaps counts remaps forced by node crashes, a subset of
	// Remaps.
	FaultRemaps int
	Events      []Event
}

// Controller drives adaptation of one executor.
type Controller struct {
	eng  *sim.Engine
	g    *grid.Grid
	ex   *exec.Executor
	spec model.PipelineSpec
	cfg  Config

	sensors []*monitor.NodeSensor
	ticker  *sim.Ticker
	stats   Stats
	// availBuf is the reusable availability mask handed to the search;
	// it stays nil (and the search unrestricted) until churn actually
	// takes a node out.
	availBuf []bool
}

// NewController builds a controller. Call Start before running the
// engine. The executor must run the same spec on the same grid.
func NewController(eng *sim.Engine, g *grid.Grid, ex *exec.Executor, spec model.PipelineSpec, cfg Config) (*Controller, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	c := &Controller{eng: eng, g: g, ex: ex, spec: spec, cfg: cfg}
	c.sensors = make([]*monitor.NodeSensor, g.NumNodes())
	for i := range c.sensors {
		c.sensors[i] = monitor.NewNodeSensor(g.Node(grid.NodeID(i)), nil)
	}
	return c, nil
}

// Stats returns a copy of the controller's activity counters.
func (c *Controller) Stats() Stats {
	out := c.stats
	out.Events = append([]Event(nil), c.stats.Events...)
	return out
}

// Start installs the periodic sensing/decision tick and the fault
// hook. A static controller installs nothing: it neither adapts to
// load nor reacts to crashes, which is exactly the baseline the churn
// experiments measure against.
func (c *Controller) Start() {
	if c.cfg.Policy == PolicyStatic {
		return
	}
	c.ex.SetLifecycleHook(c.onLifecycle)
	c.ticker = sim.NewTicker(c.eng, c.cfg.Interval, c.tick)
}

// Stop cancels the decision loop.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// loadEstimates returns the per-node load vector the current policy
// decides with.
func (c *Controller) loadEstimates(now float64) []float64 {
	loads := make([]float64, len(c.sensors))
	for i, s := range c.sensors {
		switch c.cfg.Policy {
		case PolicyOracle:
			n := c.g.Node(grid.NodeID(i))
			if n.Load != nil {
				loads[i] = n.Load.At(now)
			}
		case PolicyPredictive:
			loads[i] = s.PredictedLoad()
		default: // periodic, reactive
			l := s.LastLoad()
			if math.IsNaN(l) {
				l = 0
			}
			loads[i] = l
		}
	}
	return loads
}

// tick is one sensing/decision round.
func (c *Controller) tick(now float64) {
	c.stats.Ticks++
	for _, s := range c.sensors {
		s.Sample(now)
	}
	loads := c.loadEstimates(now)

	currentPred, err := model.Predict(c.g, c.spec, c.ex.Mapping(), loads)
	if err != nil {
		// The spec and mapping were validated at construction; a
		// failure here is a programming error worth surfacing loudly
		// in simulation.
		panic(fmt.Sprintf("adaptive: predict current mapping: %v", err))
	}

	if c.cfg.Cooldown > 0 && len(c.stats.Events) > 0 &&
		now-c.stats.Events[len(c.stats.Events)-1].Time < c.cfg.Cooldown {
		return
	}
	if !c.shouldSearch(now, currentPred.Throughput) {
		return
	}
	c.searchAndActuate(now, loads, currentPred.Throughput, false)
}

// searchAndActuate runs one mapping search over the available nodes
// and remaps when warranted: the shared tail of the periodic tick and
// the fault path. oldPred is the model's view of the current mapping,
// recorded in the event; fault bypasses the hysteresis bar (a dead or
// draining replica already invalidated the placement) and marks the
// event. The search excludes Down/Draining nodes, and a node that
// rejoined (or joined fresh) since the last search is simply in the
// mask again — "folded into the next search" with no special casing.
// When churn has taken every node out, the search is skipped entirely:
// parts park in the executor until a rejoin restores capacity.
func (c *Controller) searchAndActuate(now float64, loads []float64, oldPred float64, fault bool) {
	avail := c.availMask()
	if avail != nil {
		any := false
		for _, ok := range avail {
			if ok {
				any = true
				break
			}
		}
		if !any {
			return // nothing to map onto; wait for a rejoin
		}
	}
	c.stats.Searches++
	cand, candPred, err := sched.SearchAvailable(c.cfg.Searcher, c.g, c.spec, loads, avail)
	if err != nil {
		panic(fmt.Sprintf("adaptive: search: %v", err))
	}
	cand, candPred, err = sched.ImproveWithReplicationAvail(c.g, c.spec, cand, loads, c.cfg.MaxReplicas, avail)
	if err != nil {
		panic(fmt.Sprintf("adaptive: replication: %v", err))
	}

	if !fault && candPred.Throughput < c.cfg.HysteresisGain*oldPred {
		return // not worth the disruption
	}
	old := c.ex.Mapping()
	if cand.Equal(old) {
		return
	}
	st, err := c.ex.Remap(cand, c.cfg.Protocol)
	if err != nil {
		panic(fmt.Sprintf("adaptive: remap: %v", err))
	}
	if !st.Changed {
		return
	}
	c.stats.Remaps++
	if fault {
		c.stats.FaultRemaps++
	}
	c.stats.Events = append(c.stats.Events, Event{
		Time:         now,
		From:         old,
		To:           cand,
		PredictedOld: oldPred,
		PredictedNew: candPred.Throughput,
		Stats:        st,
		Fault:        fault,
	})
}

// availMask returns the executor's current availability as a search
// mask, or nil while every node is up (the common case, which keeps
// the no-churn decision path identical to the pre-lifecycle
// controller).
func (c *Controller) availMask() []bool {
	if c.ex.AllAvailable() {
		return nil
	}
	if c.availBuf == nil {
		c.availBuf = make([]bool, c.g.NumNodes())
	}
	for i := range c.availBuf {
		c.availBuf[i] = c.ex.Available(grid.NodeID(i))
	}
	return c.availBuf
}

// onLifecycle is the executor's fault hook. A crash — or a drain,
// which is a planned evacuation — of a node the current mapping uses
// triggers an immediate remap: no waiting for the next tick, no
// hysteresis bar, no cooldown. With a replica dead (or refusing new
// work), any feasible placement beats the current one; waiting for the
// reactive throughput trigger would not even fire on a total stall,
// since a window with zero completions reads as "no signal" rather
// than "zero". Rejoins and joins need no immediate action; the
// periodic tick's search mask already includes them.
func (c *Controller) onLifecycle(now float64, n grid.NodeID, s grid.NodeState) {
	if s == grid.Up {
		return
	}
	if !c.ex.Mapping().UsesNode(n) {
		return
	}
	c.faultRemap(now)
}

// faultRemap searches over the live nodes and actuates unconditionally
// (the crash already invalidated the current mapping). The old
// prediction is the model's view of the placement the crash just
// invalidated (its loads cannot see the dead node), recorded for the
// events table only — the fault path never gates on it.
func (c *Controller) faultRemap(now float64) {
	for _, s := range c.sensors {
		s.Sample(now)
	}
	loads := c.loadEstimates(now)
	oldPred, err := model.Predict(c.g, c.spec, c.ex.Mapping(), loads)
	if err != nil {
		panic(fmt.Sprintf("adaptive: predict pre-fault mapping: %v", err))
	}
	c.searchAndActuate(now, loads, oldPred.Throughput, true)
}

// normalizedImbalance returns the ratio of the largest to the smallest
// per-stage slowdown, where slowdown is windowed mean service time
// divided by the stage's specified demand. A healthy mapping keeps all
// slowdowns comparable; a loaded or slow node inflates its stages'
// slowdowns only.
func (c *Controller) normalizedImbalance() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	n := 0
	for i, st := range c.spec.Stages {
		if st.Work <= 0 {
			continue
		}
		v := c.ex.Monitor().Stage(i).MeanService()
		if math.IsNaN(v) {
			continue
		}
		s := v / st.Work
		n++
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if n < 2 || min <= 0 {
		return math.NaN()
	}
	return max / min
}

// shouldSearch evaluates the trigger for the current policy.
func (c *Controller) shouldSearch(now, expected float64) bool {
	switch c.cfg.Policy {
	case PolicyPeriodic, PolicyOracle:
		return true
	case PolicyReactive, PolicyPredictive:
		// Degradation trigger: observed vs model expectation.
		obs := c.ex.Monitor().RecentThroughput(c.cfg.ThroughputWindow, now)
		if !math.IsNaN(obs) && expected > 0 && obs < c.cfg.DegradationFactor*expected {
			return true
		}
		// Imbalance trigger: one stage's *slowdown* (observed service
		// over specified demand) far exceeds another's — a placement
		// problem, as opposed to the pipeline simply having unequal
		// stages.
		if imb := c.normalizedImbalance(); !math.IsNaN(imb) && imb > c.cfg.ImbalanceThreshold {
			return true
		}
		// Predictive additionally searches when the forecast loads make
		// the current mapping look substantially worse than it was
		// promised at the last remap — i.e. trouble is coming even if
		// throughput has not collapsed yet.
		if c.cfg.Policy == PolicyPredictive {
			if len(c.stats.Events) > 0 {
				last := c.stats.Events[len(c.stats.Events)-1]
				if expected < c.cfg.DegradationFactor*last.PredictedNew {
					return true
				}
			} else if obsNaN := math.IsNaN(obs); !obsNaN && expected > 0 && obs < expected*c.cfg.DegradationFactor {
				return true
			}
		}
		return false
	default:
		return false
	}
}
