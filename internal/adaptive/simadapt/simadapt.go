// Package simadapt is the simulated substrate of the adaptive
// controller (internal/adaptive): it wires the substrate-agnostic
// monitor → forecast → decide → actuate loop to the discrete-event
// executor, so the loop runs in virtual time over a modelled grid.
//
//   - Sensor: one NWS-style monitor.NodeSensor per grid node plus the
//     executor's per-stage service and completion monitors;
//   - Actuator: the analytic throughput model (internal/model) rates
//     the current mapping, the mapping search (internal/sched)
//     proposes a better one over the currently-available nodes, and
//     exec.Remap actuates it under the configured protocol;
//   - Clock: a sim.Ticker in virtual time.
//
// This wiring is behaviourally identical to the pre-refactor
// controller: golden churn digests and the F1–F10 experiment tables
// are bit-for-bit unchanged.
package simadapt

import (
	"fmt"
	"math"
	"sync"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
)

// Config tunes a simulated controller: the substrate-neutral
// thresholds plus the simulation-only knobs (remap protocol, mapping
// searcher, replication bound).
type Config struct {
	Policy adaptive.Policy
	// Interval is the sensing/decision period in virtual seconds
	// (default 1).
	Interval float64
	// DegradationFactor, ImbalanceThreshold, HysteresisGain, Cooldown,
	// and ThroughputWindow tune the shared trigger machinery; see
	// adaptive.Config for semantics and defaults.
	DegradationFactor  float64
	ImbalanceThreshold float64
	HysteresisGain     float64
	Cooldown           float64
	ThroughputWindow   float64
	// Protocol is how in-flight work is handled on remap.
	Protocol exec.RemapProtocol
	// MaxReplicas bounds stage replication width (0 = grid size).
	MaxReplicas int
	// Searcher finds candidate mappings (default LocalSearch).
	Searcher sched.Searcher
	// AdaptGrain adds the granularity axis to every decision: the
	// search sweeps candidate batch sizes (sched.SearchGrain) alongside
	// placements, and the winning grain is applied to the spec the
	// controller plans and rates with from then on. A remap triggered
	// by a load spike can therefore change the grain as well as the
	// mapping.
	AdaptGrain bool
	// PerEdgeGrain upgrades the grain axis to one batch size per stage
	// boundary (sched.SearchGrainVector's coordinate descent). Implies
	// nothing unless AdaptGrain is set.
	PerEdgeGrain bool
	// Grains is the candidate ladder the grain search sweeps
	// (default sched.DefaultGrains).
	Grains []int
}

// Controller drives adaptation of one simulated executor. It wraps the
// substrate-agnostic core with the executor's fault hook: a crash or
// drain of a node the current mapping uses triggers an immediate
// remap, off-tick and regardless of hysteresis.
type Controller struct {
	*adaptive.Controller
	ex  *exec.Executor
	act *actuator
}

// New builds a controller. Call Start before running the engine. The
// executor must run the same spec on the same grid.
func New(eng *sim.Engine, g *grid.Grid, ex *exec.Executor, spec model.PipelineSpec, cfg Config) (*Controller, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Searcher == nil {
		cfg.Searcher = sched.LocalSearch{Seed: 1}
	}
	sensors := make([]*monitor.NodeSensor, g.NumNodes())
	for i := range sensors {
		sensors[i] = monitor.NewNodeSensor(g.Node(grid.NodeID(i)), nil)
	}
	act := &actuator{g: g, ex: ex, spec: spec, cfg: cfg}
	core, err := adaptive.New(
		&sensor{g: g, ex: ex, spec: spec, sensors: sensors},
		act,
		clock{eng: eng},
		adaptive.Config{
			Policy:             cfg.Policy,
			Interval:           cfg.Interval,
			DegradationFactor:  cfg.DegradationFactor,
			ImbalanceThreshold: cfg.ImbalanceThreshold,
			HysteresisGain:     cfg.HysteresisGain,
			Cooldown:           cfg.Cooldown,
			ThroughputWindow:   cfg.ThroughputWindow,
		})
	if err != nil {
		return nil, err
	}
	return &Controller{Controller: core, ex: ex, act: act}, nil
}

// Grains returns the per-boundary batch sizes of the spec the
// controller currently plans with: all ones until an AdaptGrain
// decision coarsens a boundary. Entry i is the grain entering stage i.
func (c *Controller) Grains() []int {
	c.act.mu.Lock()
	spec := c.act.spec
	c.act.mu.Unlock()
	out := make([]int, spec.NumStages())
	for i := range out {
		out[i] = int(spec.EffGrainAt(i))
	}
	return out
}

// Start installs the periodic sensing/decision tick and the fault
// hook. A static controller installs nothing (see adaptive.Start).
func (c *Controller) Start() {
	if c.Policy() != adaptive.PolicyStatic {
		c.ex.SetLifecycleHook(c.onLifecycle)
	}
	c.Controller.Start()
}

// onLifecycle is the executor's fault hook. A crash — or a drain,
// which is a planned evacuation — of a node the current mapping uses
// triggers an immediate remap via the core's fault path. Rejoins and
// joins need no immediate action; the periodic tick's search mask
// already includes them.
func (c *Controller) onLifecycle(now float64, n grid.NodeID, s grid.NodeState) {
	if s == grid.Up {
		return
	}
	if !c.ex.Mapping().UsesNode(n) {
		return
	}
	c.Fault(now)
}

// sensor implements adaptive.Sensor over the grid's node sensors and
// the executor's pipeline monitor.
type sensor struct {
	g       *grid.Grid
	ex      *exec.Executor
	spec    model.PipelineSpec
	sensors []*monitor.NodeSensor
	slowBuf []float64
}

func (s *sensor) Sample(now float64) {
	for _, ns := range s.sensors {
		ns.Sample(now)
	}
}

// Loads returns the per-node load vector the current policy decides
// with, through the one shared estimate path (monitor.Estimate).
func (s *sensor) Loads(mode adaptive.LoadMode, now float64) []float64 {
	m := monitor.EstimateLast
	switch mode {
	case adaptive.LoadPredicted:
		m = monitor.EstimatePredicted
	case adaptive.LoadOracle:
		m = monitor.EstimateOracle
	}
	loads := make([]float64, len(s.sensors))
	for i, ns := range s.sensors {
		loads[i] = ns.Estimate(m, now)
	}
	return loads
}

func (s *sensor) Throughput(window, now float64) float64 {
	return s.ex.Monitor().RecentThroughput(window, now)
}

// Slowdowns reports windowed mean service time over specified demand
// per stage (NaN for stages with no demand or no samples yet).
func (s *sensor) Slowdowns() []float64 {
	if s.slowBuf == nil {
		s.slowBuf = make([]float64, len(s.spec.Stages))
	}
	for i, st := range s.spec.Stages {
		if st.Work <= 0 {
			s.slowBuf[i] = math.NaN()
			continue
		}
		s.slowBuf[i] = s.ex.Monitor().Stage(i).MeanService() / st.Work
	}
	return s.slowBuf
}

// actuator implements adaptive.Actuator: the analytic model rates
// configurations and exec.Remap applies them.
type actuator struct {
	g  *grid.Grid
	ex *exec.Executor
	// mu guards spec against Controller.Grains readers; the Actuator
	// methods themselves run under the core controller's mutex.
	mu   sync.Mutex
	spec model.PipelineSpec
	cfg  Config
	// availBuf is the reusable availability mask handed to the search;
	// it stays nil (and the search unrestricted) until churn actually
	// takes a node out.
	availBuf []bool
}

// proposalRef is the actuator's Apply handle: the winning mapping plus
// the spec (with its chosen grain) it was rated at.
type proposalRef struct {
	m    model.Mapping
	spec model.PipelineSpec
}

// Expected rates the current mapping under the load estimates. The
// analytic model already accounts for current conditions, so the
// trigger reference and the hysteresis base coincide. The spec and
// mapping were validated at construction; a failure here is a
// programming error worth surfacing loudly in simulation.
func (a *actuator) Expected(loads []float64) (reference, hysteresis float64) {
	pred, err := model.Predict(a.g, a.spec, a.ex.Mapping(), loads)
	if err != nil {
		panic(fmt.Sprintf("adaptive: predict current mapping: %v", err))
	}
	return pred.Throughput, pred.Throughput
}

// Propose runs one mapping search over the available nodes. The search
// excludes Down/Draining nodes, and a node that rejoined (or joined
// fresh) since the last search is simply in the mask again — "folded
// into the next search" with no special casing. When churn has taken
// every node out, the search is skipped entirely: parts park in the
// executor until a rejoin restores capacity.
func (a *actuator) Propose(loads []float64) (*adaptive.Proposal, bool) {
	avail := a.availMask()
	if avail != nil {
		any := false
		for _, ok := range avail {
			if ok {
				any = true
				break
			}
		}
		if !any {
			return nil, false // nothing to map onto; wait for a rejoin
		}
	}
	// With AdaptGrain the search runs over placements × batch sizes;
	// the replication pass then widens stages with the winning grain
	// priced in. Without it, the legacy placement-only path runs
	// verbatim (and the goldens stay bit-identical).
	var cand model.Mapping
	var candPred model.Prediction
	var err error
	spec := a.spec
	switch {
	case a.cfg.AdaptGrain && a.cfg.PerEdgeGrain:
		var vec []int
		vec, cand, candPred, err = sched.SearchGrainVectorAvail(a.cfg.Searcher, a.g, a.spec, loads, a.cfg.Grains, avail)
		if err == nil {
			spec = a.spec.AtGrains(vec)
		}
	case a.cfg.AdaptGrain:
		var gr int
		gr, cand, candPred, err = sched.SearchGrainAvail(a.cfg.Searcher, a.g, a.spec, loads, a.cfg.Grains, avail)
		if err == nil {
			spec = a.spec.AtGrain(gr)
		}
	default:
		cand, candPred, err = sched.SearchAvailable(a.cfg.Searcher, a.g, a.spec, loads, avail)
	}
	if err != nil {
		panic(fmt.Sprintf("adaptive: search: %v", err))
	}
	cand, candPred, err = sched.ImproveWithReplicationAvail(a.g, spec, cand, loads, a.cfg.MaxReplicas, avail)
	if err != nil {
		panic(fmt.Sprintf("adaptive: replication: %v", err))
	}
	old := a.ex.Mapping()
	// A grain-only change is still a change: the mapping may be equal
	// while the spec the controller should plan with moved on.
	if cand.Equal(old) && grainsEqual(spec, a.spec) {
		return nil, true
	}
	return &adaptive.Proposal{
		From:      old,
		To:        cand,
		Predicted: candPred.Throughput,
		Ref:       proposalRef{m: cand, spec: spec},
	}, true
}

// grainsEqual reports whether two variants of the same base spec carry
// the same effective grain at every boundary.
func grainsEqual(x, y model.PipelineSpec) bool {
	for i := range x.Stages {
		if x.EffGrainAt(i) != y.EffGrainAt(i) {
			return false
		}
	}
	return true
}

func (a *actuator) Apply(p *adaptive.Proposal) adaptive.Actuation {
	ref := p.Ref.(proposalRef)
	a.mu.Lock()
	grainChanged := !grainsEqual(ref.spec, a.spec)
	a.spec = ref.spec
	a.mu.Unlock()
	st, err := a.ex.Remap(ref.m, a.cfg.Protocol)
	if err != nil {
		panic(fmt.Sprintf("adaptive: remap: %v", err))
	}
	return adaptive.Actuation{
		Moved:      st.Moved,
		Killed:     st.Killed,
		RedoneWork: st.RedoneWork,
		Changed:    st.Changed || grainChanged,
	}
}

// availMask returns the executor's current availability as a search
// mask, or nil while every node is up (the common case, which keeps
// the no-churn decision path identical to the pre-lifecycle
// controller).
func (a *actuator) availMask() []bool {
	if a.ex.AllAvailable() {
		return nil
	}
	if a.availBuf == nil {
		a.availBuf = make([]bool, a.g.NumNodes())
	}
	for i := range a.availBuf {
		a.availBuf[i] = a.ex.Available(grid.NodeID(i))
	}
	return a.availBuf
}

// clock schedules ticks in virtual time.
type clock struct{ eng *sim.Engine }

func (c clock) Tick(interval float64, fn func(now float64)) (stop func()) {
	t := sim.NewTicker(c.eng, interval, fn)
	return t.Stop
}
