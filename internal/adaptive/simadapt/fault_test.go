package simadapt

import (
	"testing"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
)

// faultFixture builds a 4-node grid, 3-stage pipeline, executor and
// controller with churn installed.
func faultFixture(t *testing.T, policy adaptive.Policy, evs ...grid.ChurnEvent) (*sim.Engine, *exec.Executor, *Controller) {
	t.Helper()
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.1, 1e4)
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.FromNodes(0, 1, 2), exec.Options{MaxInFlight: 6})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := grid.NewChurnSchedule(evs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.InstallChurn(churn); err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{
		Policy:   policy,
		Interval: 1,
		Searcher: sched.LocalSearch{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ex, ctrl
}

// TestCrashTriggersImmediateRemap: the fault hook remaps at the crash
// instant, off-tick and regardless of hysteresis.
func TestCrashTriggersImmediateRemap(t *testing.T) {
	// Crash between ticks (ticks at 1, 2, ...; crash at 2.5).
	_, ex, ctrl := faultFixture(t, adaptive.PolicyReactive, grid.Outage("node1", 2.5, 20)...)
	ctrl.Start()
	done := ex.RunUntil(10)
	ctrl.Stop()

	st := ctrl.Stats()
	if st.FaultRemaps == 0 {
		t.Fatalf("no fault remap recorded (remaps=%d)", st.Remaps)
	}
	var fault *adaptive.Event
	for i := range st.Events {
		if st.Events[i].Fault {
			fault = &st.Events[i]
			break
		}
	}
	if fault == nil {
		t.Fatal("no Fault event recorded")
	}
	if fault.Time != 2.5 {
		t.Fatalf("fault remap at t=%v, want 2.5 (the crash instant, not the next tick)", fault.Time)
	}
	for _, nodes := range fault.To.(model.Mapping).Assign {
		for _, n := range nodes {
			if n == 1 {
				t.Fatalf("fault remap kept the dead node: %s", fault.To)
			}
		}
	}
	if done == 0 {
		t.Fatal("pipeline stalled despite the fault remap")
	}
	if ex.Lost() != 0 {
		t.Fatalf("lost %d items; the remap should have preserved them", ex.Lost())
	}
}

// TestStaticControllerIgnoresCrash: the static policy registers no
// fault hook — the baseline really is inert.
func TestStaticControllerIgnoresCrash(t *testing.T) {
	_, ex, ctrl := faultFixture(t, adaptive.PolicyStatic, grid.Outage("node1", 2.5, 8)...)
	ctrl.Start()
	ex.RunUntil(15)
	ctrl.Stop()
	st := ctrl.Stats()
	if st.Remaps != 0 || st.FaultRemaps != 0 {
		t.Fatalf("static controller remapped: %+v", st)
	}
	// Work bound for the dead node parks until the rejoin at t=8.
	if ex.Retries() == 0 {
		t.Fatal("expected crash retries under the static mapping")
	}
}

// TestRejoinFoldedIntoNextSearch: after a rejoin the node is eligible
// again — a later tick may map back onto it (and at minimum the search
// mask no longer excludes it; we assert remapping activity resumes
// without a fault event).
func TestRejoinFoldedIntoNextSearch(t *testing.T) {
	_, ex, ctrl := faultFixture(t, adaptive.PolicyPeriodic, grid.Outage("node1", 2.5, 4)...)
	ctrl.Start()
	ex.RunUntil(12)
	ctrl.Stop()
	st := ctrl.Stats()
	// The periodic policy searches every tick; after t=4 its searches
	// run with a nil mask again. Verify the controller saw post-rejoin
	// ticks and did not crash or stall.
	if st.Ticks < 10 {
		t.Fatalf("ticks = %d, want ~12", st.Ticks)
	}
	if ex.Done() == 0 {
		t.Fatal("no completions")
	}
	// Post-rejoin the executor must report full availability.
	if !ex.AllAvailable() {
		t.Fatal("executor still reports unavailable nodes after rejoin")
	}
}

// TestAllNodesDownDoesNotPanic: a valid schedule may take every node
// out at once; the controller must skip the search (nothing to map
// onto), let work park, and recover at the rejoins.
func TestAllNodesDownDoesNotPanic(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 1e4)
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.FromNodes(0, 1), exec.Options{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := grid.NewChurnSchedule(
		append(grid.Outage("node0", 3, 8), grid.Outage("node1", 3, 9)...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.InstallChurn(churn); err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{
		Policy:   adaptive.PolicyReactive,
		Interval: 1,
		Searcher: sched.LocalSearch{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	done := ex.RunUntil(20) // must not panic while the whole grid is dark
	ctrl.Stop()
	if done == 0 {
		t.Fatal("no completions after the grid came back")
	}
	if !ex.AllAvailable() {
		t.Fatal("grid should be fully back by t=20")
	}
}

// TestCrashOfUnusedNodeNoRemap: a crash of a node the mapping does not
// use must not force a remap.
func TestCrashOfUnusedNodeNoRemap(t *testing.T) {
	_, ex, ctrl := faultFixture(t, adaptive.PolicyReactive, grid.Outage("node3", 2.5, 20)...)
	ctrl.Start()
	ex.RunUntil(6)
	ctrl.Stop()
	if st := ctrl.Stats(); st.FaultRemaps != 0 {
		t.Fatalf("fault remap for an unused node: %+v", st)
	}
}
