package simadapt

import (
	"math"
	"testing"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
	"gridpipe/internal/trace"
)

// spikeGrid returns a 2-node grid where node 0 is hit by a heavy load
// step at the given time.
func spikeGrid(t *testing.T, spikeAt float64) *grid.Grid {
	t.Helper()
	g, err := grid.NewGrid(grid.LANLink,
		&grid.Node{Name: "a", Speed: 1, Cores: 1,
			Load: trace.NewSteps(0, trace.StepChange{T: spikeAt, Load: 0.9})},
		&grid.Node{Name: "b", Speed: 1, Cores: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runPolicy runs a 2-stage pipeline on the spike grid for the given
// virtual duration and returns (items done, controller stats).
func runPolicy(t *testing.T, policy adaptive.Policy, duration float64) (int, adaptive.Stats) {
	t.Helper()
	g := spikeGrid(t, 20)
	spec := model.Balanced(2, 0.1, 100)
	eng := &sim.Engine{}
	// Start from the mapping that is optimal while the grid is idle, so
	// any adaptation is a response to the spike rather than a repair of
	// a bad initial placement.
	ex, err := exec.New(eng, g, spec, model.OneToOne(2), exec.Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{Policy: policy, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	done := ex.RunUntil(duration)
	ctrl.Stop()
	return done, ctrl.Stats()
}

func TestStaticNeverAdapts(t *testing.T) {
	done, st := runPolicy(t, adaptive.PolicyStatic, 60)
	if st.Ticks != 0 || st.Remaps != 0 {
		t.Fatalf("static controller acted: %+v", st)
	}
	// Sanity: pipeline still ran.
	if done == 0 {
		t.Fatal("no items completed")
	}
}

func TestAdaptiveBeatsStaticUnderSpike(t *testing.T) {
	staticDone, _ := runPolicy(t, adaptive.PolicyStatic, 60)
	for _, p := range []adaptive.Policy{adaptive.PolicyPeriodic, adaptive.PolicyReactive, adaptive.PolicyPredictive, adaptive.PolicyOracle} {
		done, st := runPolicy(t, p, 60)
		if st.Remaps == 0 {
			t.Errorf("%v: no remap happened", p)
			continue
		}
		if done <= staticDone {
			t.Errorf("%v: done %d not better than static %d", p, done, staticDone)
		}
	}
}

func TestAdaptiveEscapesLoadedNode(t *testing.T) {
	_, st := runPolicy(t, adaptive.PolicyReactive, 60)
	if len(st.Events) == 0 {
		t.Fatal("no adaptation events")
	}
	ev := st.Events[0]
	if ev.Time < 20 {
		t.Fatalf("remap at %v, before the spike at 20", ev.Time)
	}
	// The new mapping must avoid node 0 (the loaded one).
	for si, nodes := range ev.To.(model.Mapping).Assign {
		for _, n := range nodes {
			if n == 0 {
				t.Fatalf("stage %d still on loaded node after remap: %s", si, ev.To)
			}
		}
	}
	if ev.PredictedNew <= ev.PredictedOld {
		t.Fatalf("remap predicted no gain: %v -> %v", ev.PredictedOld, ev.PredictedNew)
	}
}

// A reactive controller with the grain axis enabled must leave the
// grain alone while the grid is healthy (no search ever runs) and, when
// the load spike fires the remap, come back with a coarser grain on the
// boundary whose per-batch cost the coarsening amortizes — while the
// free head boundary stays per-item.
func TestSpikeTriggeredRemapChangesGrainOnLoadedEdge(t *testing.T) {
	g := spikeGrid(t, 20)
	spec := model.Balanced(2, 0.1, 100)
	// Only the inter-stage edge pays a per-batch cost; the head
	// boundary is free and should stay at grain 1.
	spec.BatchOverheads = []float64{0, 0.05}
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.OneToOne(2), exec.Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	// ThroughputWindow 1: the default 5 s window reads the first few
	// ramp-up seconds as a throughput collapse and would fire the
	// trigger (and coarsen the grain) before the spike.
	ctrl, err := New(eng, g, ex, spec, Config{
		Policy: adaptive.PolicyReactive, Interval: 1, ThroughputWindow: 1,
		AdaptGrain: true, PerEdgeGrain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ex.RunUntil(19)
	if gr := ctrl.Grains(); gr[0] != 1 || gr[1] != 1 {
		t.Fatalf("grain moved to %v before the spike", gr)
	}
	ex.RunUntil(60)
	ctrl.Stop()
	st := ctrl.Stats()
	if st.Remaps == 0 {
		t.Fatal("spike did not trigger a remap")
	}
	if st.Events[0].Time < 20 {
		t.Fatalf("remap at %v, before the spike at 20", st.Events[0].Time)
	}
	gr := ctrl.Grains()
	if gr[1] < 2 {
		t.Fatalf("remap kept the costly edge at grain %d, want coarse (grains %v)", gr[1], gr)
	}
	if gr[0] != 1 {
		t.Fatalf("free head boundary coarsened to %d (grains %v)", gr[0], gr)
	}
}

func TestHysteresisPreventsChurnOnStableGrid(t *testing.T) {
	// Stable, perfectly balanced system: no remap should ever fire,
	// even under the periodic policy, because the hysteresis bar is
	// never cleared.
	g, err := grid.Heterogeneous([]float64{1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 100)
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.OneToOne(2), exec.Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{Policy: adaptive.PolicyPeriodic, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ex.RunUntil(50)
	ctrl.Stop()
	if st := ctrl.Stats(); st.Remaps != 0 {
		t.Fatalf("stable system remapped %d times", st.Remaps)
	}
}

func TestReactiveSearchesLessThanPeriodic(t *testing.T) {
	_, per := runPolicy(t, adaptive.PolicyPeriodic, 60)
	_, rea := runPolicy(t, adaptive.PolicyReactive, 60)
	if rea.Searches >= per.Searches {
		t.Fatalf("reactive searched %d times, periodic %d — trigger not selective",
			rea.Searches, per.Searches)
	}
	if per.Ticks == 0 || rea.Ticks == 0 {
		t.Fatal("controllers did not tick")
	}
}

func TestOracleAtLeastAsGoodAsReactive(t *testing.T) {
	oDone, _ := runPolicy(t, adaptive.PolicyOracle, 60)
	rDone, _ := runPolicy(t, adaptive.PolicyReactive, 60)
	// Allow a whisker of slack: the oracle pays the same remap costs.
	if float64(oDone) < 0.95*float64(rDone) {
		t.Fatalf("oracle (%d) clearly worse than reactive (%d)", oDone, rDone)
	}
}

func TestControllerReplicatesBottleneck(t *testing.T) {
	// 1 light + 1 heavy replicable stage on 4 idle nodes: the
	// controller should discover a replicated mapping.
	g, err := grid.Heterogeneous([]float64{1, 1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "light", Work: 0.02},
		{Name: "heavy", Work: 0.3, Replicable: true},
	}}
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.FromNodes(0, 1), exec.Options{MaxInFlight: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{Policy: adaptive.PolicyPeriodic, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ex.RunUntil(40)
	ctrl.Stop()
	st := ctrl.Stats()
	if st.Remaps == 0 {
		t.Fatal("no remap to a replicated mapping")
	}
	final := ex.Mapping()
	if len(final.Assign[1]) < 2 {
		t.Fatalf("heavy stage not replicated: %s", final)
	}
	// Throughput should approach the replicated bound (~10/s with 3
	// replicas at 0.1 s each, or better).
	if tail := ex.Monitor().RecentThroughput(10, 40); tail < 6 {
		t.Fatalf("tail throughput %v too low for a replicated mapping", tail)
	}
}

func TestMaxReplicasRespected(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1, 1, 1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "heavy", Work: 0.5, Replicable: true},
	}}
	eng := &sim.Engine{}
	ex, err := exec.New(eng, g, spec, model.FromNodes(0), exec.Options{MaxInFlight: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(eng, g, ex, spec, Config{Policy: adaptive.PolicyPeriodic, Interval: 1, MaxReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ex.RunUntil(30)
	ctrl.Stop()
	if got := len(ex.Mapping().Assign[0]); got > 2 {
		t.Fatalf("replica cap ignored: %d replicas", got)
	}
}

func TestCooldownLimitsRemapRate(t *testing.T) {
	// Rapidly alternating load on two nodes makes the periodic
	// controller want to flip constantly with zero hysteresis; a
	// cooldown must bound the remap rate regardless.
	mk := func() *grid.Grid {
		g, err := grid.NewGrid(grid.LANLink,
			&grid.Node{Name: "a", Speed: 1, Cores: 1,
				Load: trace.Sine{Base: 0.45, Amp: 0.45, Period: 8}},
			&grid.Node{Name: "b", Speed: 1, Cores: 1,
				Load: trace.Sine{Base: 0.45, Amp: 0.45, Period: 8, Phase: math.Pi}},
		)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	spec := model.Balanced(2, 0.1, 100)
	run := func(cooldown float64) adaptive.Stats {
		eng := &sim.Engine{}
		ex, err := exec.New(eng, mk(), spec, model.OneToOne(2), exec.Options{MaxInFlight: 8})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(eng, mk(), ex, spec, Config{
			Policy: adaptive.PolicyOracle, Interval: 1,
			HysteresisGain: 1.01,
			Cooldown:       cooldown,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Start()
		ex.RunUntil(100)
		ctrl.Stop()
		return ctrl.Stats()
	}
	free := run(0)
	damped := run(20)
	if free.Remaps == 0 {
		t.Skip("scenario produced no churn to damp")
	}
	if damped.Remaps > 100/20+1 {
		t.Fatalf("cooldown 20s allowed %d remaps in 100s", damped.Remaps)
	}
	if damped.Remaps >= free.Remaps {
		t.Fatalf("cooldown did not reduce remaps: %d vs %d", damped.Remaps, free.Remaps)
	}
}

func TestNewValidatesSpec(t *testing.T) {
	g, _ := grid.Heterogeneous([]float64{1}, grid.LANLink)
	eng := &sim.Engine{}
	if _, err := New(eng, g, nil, model.PipelineSpec{}, Config{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestStatsIsolatedCopy(t *testing.T) {
	_, st := runPolicy(t, adaptive.PolicyPeriodic, 40)
	if len(st.Events) > 0 {
		st.Events[0].Time = -1
		// Mutating the copy must not corrupt controller state — we
		// can't reach the controller anymore here, but at minimum the
		// copy semantics must hold for the slice header.
	}
}

func TestAdaptationRecoversAfterTransientSpike(t *testing.T) {
	// Load spike on node 0 during [20, 40) only; controller may migrate
	// away and (optionally) back. Total completions must beat static.
	g, err := grid.NewGrid(grid.LANLink,
		&grid.Node{Name: "a", Speed: 2, Cores: 1,
			Load: trace.NewSteps(0,
				trace.StepChange{T: 20, Load: 0.9},
				trace.StepChange{T: 40, Load: 0})},
		&grid.Node{Name: "b", Speed: 1, Cores: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 100)
	run := func(policy adaptive.Policy) int {
		eng := &sim.Engine{}
		ex, err := exec.New(eng, g, spec, model.SingleNode(2, 0), exec.Options{MaxInFlight: 8})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(eng, g, ex, spec, Config{Policy: policy, Interval: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Start()
		done := ex.RunUntil(80)
		ctrl.Stop()
		return done
	}
	static := run(adaptive.PolicyStatic)
	adapted := run(adaptive.PolicyReactive)
	if adapted <= static {
		t.Fatalf("adaptive %d vs static %d under transient spike", adapted, static)
	}
	if math.IsNaN(float64(adapted)) {
		t.Fatal("unreachable")
	}
}
