package liveadapt

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/farm"
	"gridpipe/internal/pipeline"
)

// fakeTarget is a scripted Target for exercising the sensor/actuator
// without wall time.
type fakeTarget struct {
	mu     sync.Mutex
	reps   []int
	counts []int64
	sums   []time.Duration
}

func (f *fakeTarget) NumStages() int { return len(f.reps) }
func (f *fakeTarget) Replicas(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reps[i]
}
func (f *fakeTarget) SetReplicas(i, n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reps[i] = n
	return nil
}
func (f *fakeTarget) Totals(i int) (int64, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[i], f.sums[i]
}

// observe advances stage i by n items of mean service d.
func (f *fakeTarget) observe(i int, n int64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[i] += n
	f.sums[i] += time.Duration(n) * d
}

func newFake(reps ...int) *fakeTarget {
	return &fakeTarget{
		reps:   append([]int(nil), reps...),
		counts: make([]int64, len(reps)),
		sums:   make([]time.Duration, len(reps)),
	}
}

func subFor(t *testing.T, target Target, info []StageInfo, cfg Config) *liveSub {
	t.Helper()
	ctrl, err := newController(target, info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl.sub
}

func TestProposeNeedsSignalOnEveryReplicableStage(t *testing.T) {
	f := newFake(1, 1)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyPeriodic, MaxWorkers: 8})
	f.observe(0, 10, 2*time.Millisecond) // stage 1 never observed
	s.Sample(1)
	if p, searched := s.Propose(s.Loads(adaptive.LoadLast, 1)); searched || p != nil {
		t.Fatalf("proposed with an unobserved stage: %+v searched=%t", p, searched)
	}
}

func TestProposeApportionsBudgetProportionally(t *testing.T) {
	f := newFake(1, 1, 1)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyPeriodic, MaxWorkers: 8})
	f.observe(0, 10, 2*time.Millisecond)
	f.observe(1, 10, 20*time.Millisecond)
	f.observe(2, 10, 2*time.Millisecond)
	s.Sample(1)
	loads := s.Loads(adaptive.LoadLast, 1)
	p, searched := s.Propose(loads)
	if !searched || p == nil {
		t.Fatalf("no proposal: searched=%t", searched)
	}
	next := p.Ref.(Replicas)
	if next[1] < 5 || next[0] < 1 || next[2] < 1 {
		t.Fatalf("apportionment %v did not favour the heavy stage", next)
	}
	if total := next[0] + next[1] + next[2]; total != 8 {
		t.Fatalf("budget not fully used: %v (total %d)", next, total)
	}
	if p.Predicted <= 0 || math.IsNaN(p.Predicted) {
		t.Fatalf("predicted = %v", p.Predicted)
	}
	if p.From.String() != "[1 1 1]" || p.To.String() != next.String() {
		t.Fatalf("placements: %s -> %s", p.From, p.To)
	}
}

func TestProposeKeepsNonReplicableStages(t *testing.T) {
	f := newFake(2, 1)
	info := []StageInfo{
		{Name: "pin", Weight: 1, Replicable: false},
		{Name: "flex", Weight: 1, Replicable: true},
	}
	s := subFor(t, f, info, Config{Policy: adaptive.PolicyPeriodic, MaxWorkers: 6})
	f.observe(0, 10, 5*time.Millisecond)
	f.observe(1, 10, 5*time.Millisecond)
	s.Sample(1)
	p, searched := s.Propose(s.Loads(adaptive.LoadLast, 1))
	if !searched || p == nil {
		t.Fatalf("no proposal: searched=%t", searched)
	}
	next := p.Ref.(Replicas)
	if next[0] != 2 {
		t.Fatalf("non-replicable stage resized: %v", next)
	}
	if next[1] != 4 { // 6 budget - 2 pinned
		t.Fatalf("flex stage got %d of the remaining budget", next[1])
	}
}

func TestProposeNeverExceedsBudget(t *testing.T) {
	// Tight budget, skewed shares: flooring each proportional share at
	// one worker must not overshoot MaxWorkers (3.5/0.3/0.2 ms shares
	// over a 4-worker budget previously allocated 3+1+1 = 5).
	f := newFake(1, 1, 1)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyPeriodic, MaxWorkers: 4})
	f.observe(0, 10, 3500*time.Microsecond)
	f.observe(1, 10, 300*time.Microsecond)
	f.observe(2, 10, 200*time.Microsecond)
	s.Sample(1)
	p, searched := s.Propose(s.Loads(adaptive.LoadLast, 1))
	if !searched || p == nil {
		t.Fatalf("no proposal: searched=%t", searched)
	}
	next := p.Ref.(Replicas)
	total := 0
	for _, w := range next {
		if w < 1 {
			t.Fatalf("stage starved: %v", next)
		}
		total += w
	}
	if total != 4 {
		t.Fatalf("allocation %v totals %d, want exactly the budget 4", next, total)
	}
	if next[0] != 2 {
		t.Fatalf("heavy stage got %d of the budget: %v", next[0], next)
	}
}

func TestProposeNilWhenAlreadyOptimal(t *testing.T) {
	f := newFake(4, 4)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyPeriodic, MaxWorkers: 8})
	f.observe(0, 10, 5*time.Millisecond)
	f.observe(1, 10, 5*time.Millisecond)
	s.Sample(1)
	p, searched := s.Propose(s.Loads(adaptive.LoadLast, 1))
	if !searched {
		t.Fatal("search should have run")
	}
	if p != nil {
		t.Fatalf("proposal for an already-apportioned vector: %v", p.Ref)
	}
}

func TestExpectedAnchorsReferenceToBaseline(t *testing.T) {
	f := newFake(2)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyReactive, MaxWorkers: 4})
	f.observe(0, 10, 10*time.Millisecond) // unloaded baseline: 100 items/s/worker
	s.Sample(1)
	f.observe(0, 10, 40*time.Millisecond) // contention inflates service 4×
	s.Sample(2)
	ref, hyst := s.Expected(s.Loads(adaptive.LoadLast, 2))
	if math.Abs(ref-200) > 1e-9 { // 2 workers / 10ms baseline
		t.Fatalf("reference = %v, want 200", ref)
	}
	if math.Abs(hyst-50) > 1e-9 { // 2 workers / 40ms current
		t.Fatalf("hysteresis base = %v, want 50", hyst)
	}
}

func TestThroughputWindowSemantics(t *testing.T) {
	f := newFake(1)
	s := subFor(t, f, nil, Config{Policy: adaptive.PolicyReactive})
	if v := s.Throughput(1, 0); !math.IsNaN(v) {
		t.Fatalf("throughput with no completions = %v, want NaN", v)
	}
	for i := 0; i < 10; i++ {
		s.done.Add(1)
	}
	s.Sample(1)
	for i := 0; i < 20; i++ {
		s.done.Add(1)
	}
	// Window (1, 2]: 20 completions after the t=1 sample.
	if v := s.Throughput(1, 2); math.Abs(v-20) > 1e-9 {
		t.Fatalf("throughput = %v, want 20", v)
	}
	// A window longer than the run counts everything over the elapsed
	// time, not the full window — a young run is not a degraded run.
	if v := s.Throughput(4, 2); math.Abs(v-30.0/2) > 1e-9 {
		t.Fatalf("young-run throughput = %v, want 15", v)
	}
}

func TestOracleRejectedLive(t *testing.T) {
	p, err := pipeline.New(pipeline.Stage{Fn: func(ctx context.Context, v any) (any, error) { return v, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForPipeline(p, nil, Config{Policy: adaptive.PolicyOracle}); err == nil {
		t.Fatal("oracle accepted on the live substrate")
	}
	if _, err := ForPipeline(p, []StageInfo{{}, {}}, Config{}); err == nil {
		t.Fatal("stage-info length mismatch accepted")
	}
}

// TestLivePipelineGrowsBottleneck closes the loop end to end: a
// pipeline with one heavy stage at one worker must be grown by the
// controller while streaming, and ordered 1-for-1 delivery must hold
// throughout.
func TestLivePipelineGrowsBottleneck(t *testing.T) {
	sleepStage := func(d time.Duration) pipeline.Func {
		return func(ctx context.Context, v any) (any, error) {
			time.Sleep(d)
			return v, nil
		}
	}
	p, err := pipeline.New(
		pipeline.Stage{Name: "light", Fn: sleepStage(500 * time.Microsecond), Buffer: 8},
		pipeline.Stage{Name: "heavy", Fn: sleepStage(8 * time.Millisecond), Buffer: 8},
		pipeline.Stage{Name: "tail", Fn: sleepStage(500 * time.Microsecond), Buffer: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ForPipeline(p, nil, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   40 * time.Millisecond,
		MaxWorkers: 12,
	})
	if err != nil {
		t.Fatal(err)
	}

	const items = 400
	in := make(chan any, items)
	for i := 0; i < items; i++ {
		in <- i
	}
	close(in)
	out, errs := p.Run(context.Background(), in)
	ctrl.Start()
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("out of order: got %v at position %d", v, seen)
		}
		seen++
		ctrl.NoteCompletion()
	}
	ctrl.Stop()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != items {
		t.Fatalf("completed %d of %d", seen, items)
	}
	st := ctrl.Stats()
	if st.Remaps == 0 {
		t.Fatalf("controller never resized: %+v", st)
	}
	reps := ctrl.Replicas()
	if reps[1] < 4 {
		t.Fatalf("heavy stage not grown: %v (events %+v)", reps, st.Events)
	}
}

// TestLiveFarmGrowsWorkers: the degenerate one-stage case actuates via
// SetWorkers.
func TestLiveFarmGrowsWorkers(t *testing.T) {
	fm, err := farm.New(func(ctx context.Context, v any) (any, error) {
		time.Sleep(4 * time.Millisecond)
		return v, nil
	}, farm.Options{Workers: 1, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ForFarm(fm, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   30 * time.Millisecond,
		MaxWorkers: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 200
	in := make(chan any, tasks)
	for i := 0; i < tasks; i++ {
		in <- i
	}
	close(in)
	out, errs := fm.Run(context.Background(), in)
	ctrl.Start()
	seen := 0
	for v := range out {
		if v.(int) != seen {
			t.Fatalf("out of order: got %v at position %d", v, seen)
		}
		seen++
		ctrl.NoteCompletion()
	}
	ctrl.Stop()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if seen != tasks {
		t.Fatalf("completed %d of %d", seen, tasks)
	}
	if w := fm.Workers(); w != 6 {
		t.Fatalf("farm workers = %d, want the full budget 6", w)
	}
}
