// Package liveadapt is the live substrate of the adaptive controller
// (internal/adaptive): the same monitor → forecast → decide → actuate
// loop that drives the simulator, wired to the goroutine runtime so a
// running pipeline rebalances its per-stage worker pools under real
// CPU contention.
//
//   - Sensor: a wall-clock ticker diffs each stage's conc.Meter totals
//     into windowed mean service times, feeds them through the same
//     monitor.Estimator forecaster batteries the simulated node
//     sensors use, and tracks the pipeline's observed exit rate;
//   - Actuator: a worker-budget apportioner — replicable stages
//     receive workers proportional to their (forecast) service times,
//     bounded by MaxWorkers — actuating via pipeline.SetReplicas (or
//     farm.SetWorkers for the degenerate one-stage case);
//   - Clock: a time.Ticker.
//
// Because the live substrate has no load-aware analytic model, the
// degradation trigger's reference throughput is anchored to the best
// (least-loaded) service times ever observed per stage: a uniform
// slowdown — exactly what background CPU load inflicts — is then
// visible as observed-vs-reference degradation, where a model that
// re-rates the current configuration under current conditions would
// chase the degradation downwards and never trigger. The hysteresis
// base, by contrast, uses current service times so a candidate's
// predicted gain is measured under the conditions it would actually
// run in. Experiment F11 demonstrates the closed loop recovering
// throughput that injected background load took away.
package liveadapt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/farm"
	"gridpipe/internal/monitor"
	"gridpipe/internal/pipeline"
)

// Target is the live resize surface the actuator drives: the stage-
// graph pipeline, or a farm as the degenerate one-stage case.
type Target interface {
	// NumStages returns the number of resizable stages.
	NumStages() int
	// Replicas returns stage i's current worker limit.
	Replicas(i int) int
	// SetReplicas changes stage i's worker limit while running.
	SetReplicas(i, n int) error
	// Totals returns stage i's cumulative completed-item count and
	// summed service time (diffed into windowed means by the sensor).
	Totals(i int) (count int64, sum time.Duration)
}

// pipelineTarget adapts *pipeline.Pipeline.
type pipelineTarget struct{ p *pipeline.Pipeline }

func (t pipelineTarget) NumStages() int                      { return t.p.NumStages() }
func (t pipelineTarget) Replicas(i int) int                  { return t.p.Replicas(i) }
func (t pipelineTarget) SetReplicas(i, n int) error          { return t.p.SetReplicas(i, n) }
func (t pipelineTarget) Totals(i int) (int64, time.Duration) { return t.p.StageTotals(i) }

// farmTarget adapts *farm.Farm as a single resizable stage.
type farmTarget struct{ f *farm.Farm }

func (t farmTarget) NumStages() int                    { return 1 }
func (t farmTarget) Replicas(int) int                  { return t.f.Workers() }
func (t farmTarget) SetReplicas(_, n int) error        { return t.f.SetWorkers(n) }
func (t farmTarget) Totals(int) (int64, time.Duration) { return t.f.Totals() }

// StageInfo describes one stage to the live controller.
type StageInfo struct {
	// Name labels the stage in the event log.
	Name string
	// Weight is the stage's nominal per-item demand in any consistent
	// unit (the facade's reference-seconds); only ratios matter. It
	// normalises observed service times for the imbalance trigger
	// (default 1).
	Weight float64
	// Replicable marks the stage resizable; non-replicable stages keep
	// their current worker count and only consume budget.
	Replicable bool
}

// Config tunes a live controller.
type Config struct {
	Policy adaptive.Policy
	// Interval is the wall-clock sensing/decision period
	// (default 250 ms).
	Interval time.Duration
	// DegradationFactor, ImbalanceThreshold, and HysteresisGain tune
	// the shared trigger machinery; see adaptive.Config.
	DegradationFactor  float64
	ImbalanceThreshold float64
	HysteresisGain     float64
	// Cooldown is the minimum wall time between two resizes
	// (default 2×Interval). Live resizes are cheap but worker-pool
	// growth ramps over items, so back-to-back decisions act on stale
	// evidence without this guard.
	Cooldown time.Duration
	// ThroughputWindow is the trailing window for the observed exit
	// rate (default 5×Interval).
	ThroughputWindow time.Duration
	// MaxWorkers is the total worker budget across all stages
	// (default 2×GOMAXPROCS). It is the live counterpart of the
	// simulator's elastic reserves: capacity the controller may fold
	// in when the observed throughput degrades.
	MaxWorkers int
	// BudgetCap, when non-nil, overrides MaxWorkers at every decision:
	// it is consulted per proposal, so a shared cluster budget
	// (conc.WorkerBudget) re-divided among concurrent runs takes
	// effect at the controller's next tick.
	BudgetCap func() int
	// AdaptGrain enables the granularity actuator: the controller
	// walks the target's boundary batch size (pipeline grain / farm
	// batch) in doubling and halving steps paced by Cooldown, keeping
	// a step whose observed throughput clears the hysteresis margin
	// and reverting one that costs it (see grainWalk). Requires a
	// target whose grain is actuable — a pipeline with EnableBatch or
	// a farm. PolicyStatic never ticks, so grain stays fixed under it.
	AdaptGrain bool
	// MaxGrain bounds the walked batch size (default 256).
	MaxGrain int
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxGrain <= 0 {
		c.MaxGrain = 256
	}
}

// Replicas is a worker-count vector; it is the live substrate's
// adaptive.Placement.
type Replicas []int

// String renders the vector like "[1 4 2 1]".
func (r Replicas) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, n := range r {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte(']')
	return b.String()
}

// Controller drives live adaptation of one pipeline or farm.
type Controller struct {
	*adaptive.Controller
	sub *liveSub
}

// ForPipeline builds a live controller over a pipeline. info describes
// the stages (nil = every stage replicable at weight 1) and must match
// the pipeline's stage count. PolicyOracle is rejected: the live
// substrate has no ground truth to consult.
func ForPipeline(p *pipeline.Pipeline, info []StageInfo, cfg Config) (*Controller, error) {
	return newController(pipelineTarget{p: p}, info, cfg)
}

// ForFarm builds a live controller over a farm: the degenerate
// one-stage pipeline, resized via SetWorkers.
func ForFarm(f *farm.Farm, cfg Config) (*Controller, error) {
	return newController(farmTarget{f: f}, []StageInfo{{Name: "farm", Weight: 1, Replicable: true}}, cfg)
}

func newController(target Target, info []StageInfo, cfg Config) (*Controller, error) {
	if cfg.Policy == adaptive.PolicyOracle {
		return nil, fmt.Errorf("liveadapt: PolicyOracle needs ground-truth loads; the live substrate has none")
	}
	cfg.fillDefaults()
	n := target.NumStages()
	if info == nil {
		info = make([]StageInfo, n)
		for i := range info {
			info[i] = StageInfo{Name: fmt.Sprintf("stage%d", i), Weight: 1, Replicable: true}
		}
	}
	if len(info) != n {
		return nil, fmt.Errorf("liveadapt: %d stage infos for %d stages", len(info), n)
	}
	anyReplicable := false
	for i := range info {
		if info[i].Weight <= 0 {
			info[i].Weight = 1
		}
		anyReplicable = anyReplicable || info[i].Replicable
	}
	if !anyReplicable && cfg.Policy != adaptive.PolicyStatic {
		return nil, fmt.Errorf("liveadapt: no replicable stage to adapt")
	}
	sub := &liveSub{
		target: target,
		info:   info,
		cfg:    cfg,
		ests:   make([]*monitor.Estimator, n),
		lastN:  make([]int64, n),
		lastS:  make([]time.Duration, n),
		base:   make([]float64, n),
		loads:  make([]float64, n),
		slow:   make([]float64, n),
		epoch:  time.Now(),
	}
	for i := range sub.ests {
		sub.ests[i] = monitor.NewEstimator(nil)
		sub.base[i] = math.NaN()
	}
	if cfg.AdaptGrain {
		gt, ok := target.(GrainTarget)
		if !ok {
			return nil, fmt.Errorf("liveadapt: AdaptGrain target exposes no grain surface")
		}
		// Probe actuability now: an unbatched pipeline rejects SetGrain,
		// and failing at construction beats panicking mid-run.
		if err := gt.SetGrain(gt.Grain()); err != nil {
			return nil, fmt.Errorf("liveadapt: AdaptGrain: %w (enable batching first)", err)
		}
		hg := cfg.HysteresisGain
		if hg <= 1 {
			hg = 1.15 // the shared trigger default (adaptive.Config)
		}
		df := cfg.DegradationFactor
		if df <= 0 || df >= 1 {
			df = 0.7
		}
		sub.grain = &grainWalk{
			target: gt,
			nb:     1,
			max:    cfg.MaxGrain,
			// Accepting a grain step is cheaper than a remapping, so
			// the walk demands a quarter of the resize margin.
			margin:  1 + (hg-1)/4,
			degrade: df,
			rate:    math.NaN(),
		}
		// A per-edge target turns the walk into a coordinate descent
		// over its boundaries; a single-boundary (uniform) target
		// degenerates to the scalar walk.
		if et, ok := target.(EdgeGrainTarget); ok && et.GrainBoundaries() > 1 {
			sub.grain.et = et
			sub.grain.nb = et.GrainBoundaries()
		}
		sub.grain.dirs = make([]int, sub.grain.nb)
		for b := range sub.grain.dirs {
			sub.grain.dirs[b] = 1
		}
	}
	core, err := adaptive.New(sub, sub, &wallClock{epoch: sub.epoch}, adaptive.Config{
		Policy:             cfg.Policy,
		Interval:           cfg.Interval.Seconds(),
		DegradationFactor:  cfg.DegradationFactor,
		ImbalanceThreshold: cfg.ImbalanceThreshold,
		HysteresisGain:     cfg.HysteresisGain,
		Cooldown:           cfg.Cooldown.Seconds(),
		ThroughputWindow:   cfg.ThroughputWindow.Seconds(),
	})
	if err != nil {
		return nil, err
	}
	return &Controller{Controller: core, sub: sub}, nil
}

// NoteCompletion records that one item left the pipeline; callers tap
// their output stream with it so the degradation trigger has an
// observed exit rate. Safe for concurrent use.
func (c *Controller) NoteCompletion() { c.sub.done.Add(1) }

// Grain returns the target's current boundary batch size, or 1 when
// the target has no grain surface.
func (c *Controller) Grain() int {
	if gt, ok := c.sub.target.(GrainTarget); ok {
		return gt.Grain()
	}
	return 1
}

// Grains returns the per-boundary batch sizes the controller is
// walking: one entry per tunable boundary for a per-edge target, a
// single entry for a uniform one.
func (c *Controller) Grains() []int {
	if et, ok := c.sub.target.(EdgeGrainTarget); ok {
		out := make([]int, et.GrainBoundaries())
		for b := range out {
			out[b] = et.GrainAt(b)
		}
		return out
	}
	return []int{c.Grain()}
}

// Replicas returns the current worker-count vector.
func (c *Controller) Replicas() Replicas {
	out := make(Replicas, c.sub.target.NumStages())
	for i := range out {
		out[i] = c.sub.target.Replicas(i)
	}
	return out
}

// rateSample is one (time, cumulative completions) observation.
type rateSample struct {
	t float64
	n int64
}

// liveSub implements adaptive.Sensor and adaptive.Actuator over one
// Target. Its methods are called under the core controller's mutex;
// only the completion counter is touched concurrently.
type liveSub struct {
	target Target
	info   []StageInfo
	cfg    Config
	epoch  time.Time

	ests  []*monitor.Estimator // per-stage windowed-mean service forecasters
	lastN []int64              // previous Totals count per stage
	lastS []time.Duration      // previous Totals sum per stage
	base  []float64            // best (least-loaded) windowed mean seen per stage
	loads []float64            // reusable Loads buffer
	slow  []float64            // reusable Slowdowns buffer

	done    atomic.Int64 // completions (fed by NoteCompletion)
	samples []rateSample // pruned completion-rate history

	grain *grainWalk // granularity actuator (nil unless AdaptGrain)
}

// Sample diffs each stage's meter totals into this window's mean
// service time, feeds the forecaster battery, and tracks the best mean
// ever seen as the stage's unloaded baseline.
func (s *liveSub) Sample(now float64) {
	for i := range s.ests {
		n, sum := s.target.Totals(i)
		if dn := n - s.lastN[i]; dn > 0 {
			d := (sum - s.lastS[i]).Seconds() / float64(dn)
			if d <= 0 {
				d = 1e-9 // sub-resolution service; keep rates finite
			}
			s.ests[i].Observe(d)
			if math.IsNaN(s.base[i]) || d < s.base[i] {
				s.base[i] = d
			}
		}
		s.lastN[i], s.lastS[i] = n, sum
	}
	s.samples = append(s.samples, rateSample{t: now, n: s.done.Load()})
	// Prune history beyond any window a trigger could ask about.
	keep := 4 * math.Max(s.cfg.ThroughputWindow.Seconds(), 5*s.cfg.Interval.Seconds())
	cut := 0
	for cut < len(s.samples)-1 && s.samples[cut].t < now-keep {
		cut++
	}
	if cut > 0 {
		s.samples = append(s.samples[:0], s.samples[cut:]...)
	}
	s.grain.step(s, now)
}

// Loads returns the per-stage service-time estimates (seconds/item)
// the apportionment plans with: last windowed mean, or the forecaster
// battery's near-future estimate for the predictive policy.
func (s *liveSub) Loads(mode adaptive.LoadMode, now float64) []float64 {
	for i, e := range s.ests {
		if mode == adaptive.LoadPredicted {
			s.loads[i] = e.Predicted(1e-9, math.Inf(1))
			if e.Last() != e.Last() { // never observed: Predicted's lo fallback is fiction
				s.loads[i] = math.NaN()
			}
		} else {
			s.loads[i] = e.Last()
		}
	}
	return s.loads
}

// Throughput returns the exit rate over the trailing window, or NaN
// when nothing completed in it (matching the simulated monitor's
// "no signal" semantics). While the run is younger than the window,
// the rate divides by the elapsed time instead — dividing a young
// run's completions by the full window would read as a throughput
// collapse and spuriously fire the degradation trigger at startup.
func (s *liveSub) Throughput(window, now float64) float64 {
	nNow := s.done.Load()
	start := now - window
	var nStart int64
	if len(s.samples) == 0 || start < s.samples[0].t {
		// The run is younger than the window: everything counts.
		nStart = 0
		if now > 0 && now < window {
			window = now
		}
	} else {
		for i := len(s.samples) - 1; i >= 0; i-- {
			if s.samples[i].t <= start {
				nStart = s.samples[i].n
				break
			}
		}
	}
	if nNow == nStart {
		return math.NaN()
	}
	return float64(nNow-nStart) / window
}

// Slowdowns reports observed service over nominal weight per stage.
func (s *liveSub) Slowdowns() []float64 {
	for i, e := range s.ests {
		s.slow[i] = e.Last() / s.info[i].Weight
	}
	return s.slow
}

// Expected rates the current worker vector twice: against the unloaded
// baseline service times (the degradation trigger's reference — what
// this configuration should deliver) and against current service
// times (the hysteresis base — what it delivers now).
func (s *liveSub) Expected(loads []float64) (reference, hysteresis float64) {
	reference, hysteresis = math.NaN(), math.NaN()
	for i := range s.ests {
		reps := float64(s.target.Replicas(i))
		if !math.IsNaN(s.base[i]) && s.base[i] > 0 {
			if r := reps / s.base[i]; math.IsNaN(reference) || r < reference {
				reference = r
			}
		}
		if l := loads[i]; !math.IsNaN(l) && l > 0 {
			if r := reps / l; math.IsNaN(hysteresis) || r < hysteresis {
				hysteresis = r
			}
		}
	}
	return reference, hysteresis
}

// Propose apportions the worker budget over the replicable stages
// proportionally to their service-time estimates (largest-remainder,
// each stage at least one worker, ties to the earlier stage).
// Non-replicable stages keep their current workers and only consume
// budget. No proposal is made until every replicable stage has been
// observed at least once.
func (s *liveSub) Propose(loads []float64) (*adaptive.Proposal, bool) {
	n := s.target.NumStages()
	cur := make(Replicas, n)
	fixed, weightSum := 0, 0.0
	replicable := 0
	for i := 0; i < n; i++ {
		cur[i] = s.target.Replicas(i)
		if !s.info[i].Replicable {
			fixed += cur[i]
			continue
		}
		replicable++
		if math.IsNaN(loads[i]) || loads[i] <= 0 {
			return nil, false // not enough signal to plan yet
		}
		weightSum += loads[i]
	}
	if replicable == 0 {
		return nil, false
	}
	budget := s.cfg.MaxWorkers
	if s.cfg.BudgetCap != nil {
		if b := s.cfg.BudgetCap(); b > 0 {
			budget = b
		}
	}
	avail := budget - fixed
	if avail < replicable {
		avail = replicable // budget floor: one worker per replicable stage
	}

	// Apportion avail ∝ service time: one worker per replicable stage
	// up front, the rest by largest remainder. Allocating the floor
	// first (rather than flooring each proportional share at 1) keeps
	// the total exactly at avail — share-flooring could overshoot the
	// budget when many light stages round up.
	next := make(Replicas, n)
	copy(next, cur)
	extra := avail - replicable
	type frac struct {
		i int
		f float64
	}
	var rem []frac
	assigned := 0
	for i := 0; i < n; i++ {
		if !s.info[i].Replicable {
			continue
		}
		share := float64(extra) * loads[i] / weightSum
		w := int(share)
		next[i] = 1 + w
		assigned += w
		rem = append(rem, frac{i: i, f: share - float64(w)})
	}
	// Hand leftovers to the largest remainders, earlier stage on ties.
	sort.SliceStable(rem, func(a, b int) bool { return rem[a].f > rem[b].f })
	for j := 0; assigned < extra; j = (j + 1) % len(rem) {
		next[rem[j].i]++
		assigned++
	}

	same := true
	for i := range next {
		if next[i] != cur[i] {
			same = false
			break
		}
	}
	if same {
		return nil, true
	}
	predicted := math.NaN()
	for i := 0; i < n; i++ {
		if l := loads[i]; !math.IsNaN(l) && l > 0 {
			if r := float64(next[i]) / l; math.IsNaN(predicted) || r < predicted {
				predicted = r
			}
		}
	}
	return &adaptive.Proposal{From: cur, To: next, Predicted: predicted, Ref: next}, true
}

// Apply resizes every stage whose worker count changed.
func (s *liveSub) Apply(p *adaptive.Proposal) adaptive.Actuation {
	next := p.Ref.(Replicas)
	changed := false
	for i, w := range next {
		if w == s.target.Replicas(i) {
			continue
		}
		if err := s.target.SetReplicas(i, w); err != nil {
			// Stages and bounds were validated at construction; a
			// failure here is a programming error.
			panic(fmt.Sprintf("liveadapt: SetReplicas(%d, %d): %v", i, w, err))
		}
		changed = true
	}
	return adaptive.Actuation{Changed: changed}
}

// wallClock schedules ticks on real time, reported as seconds since
// the controller's epoch. Stop waits out any in-flight tick.
type wallClock struct{ epoch time.Time }

func (c *wallClock) Tick(interval float64, fn func(now float64)) (stop func()) {
	t := time.NewTicker(time.Duration(interval * float64(time.Second)))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				fn(now.Sub(c.epoch).Seconds())
			}
		}
	}()
	return func() {
		t.Stop()
		close(done)
		wg.Wait()
	}
}
