package liveadapt

import (
	"math"
)

// GrainTarget is the optional second actuator surface: targets whose
// stage boundaries move batches expose their batch size for the
// controller to walk. *pipeline.Pipeline (with EnableBatch) and
// *farm.Farm both satisfy it.
type GrainTarget interface {
	// Grain returns the current boundary batch size.
	Grain() int
	// SetGrain changes the batch size while running.
	SetGrain(n int) error
}

// EdgeGrainTarget is the per-edge refinement of GrainTarget: targets
// whose boundaries are independently grained (a pipeline under
// EnableBatchEdges) expose each one for the controller to walk
// separately. A target reporting a single boundary behaves exactly
// like its GrainTarget surface.
type EdgeGrainTarget interface {
	GrainTarget
	// GrainBoundaries returns how many independently tunable
	// boundaries the target has (1 under uniform batching).
	GrainBoundaries() int
	// GrainAt returns boundary b's current batch size.
	GrainAt(b int) int
	// SetGrainAt changes boundary b's batch size while running.
	SetGrainAt(b, n int) error
}

func (t pipelineTarget) Grain() int                { return t.p.Grain() }
func (t pipelineTarget) SetGrain(n int) error      { return t.p.SetGrain(n) }
func (t pipelineTarget) GrainBoundaries() int      { return t.p.GrainBoundaries() }
func (t pipelineTarget) GrainAt(b int) int         { return t.p.GrainAt(b) }
func (t pipelineTarget) SetGrainAt(b, n int) error { return t.p.SetGrainAt(b, n) }

func (t farmTarget) Grain() int           { return t.f.Batch() }
func (t farmTarget) SetGrain(n int) error { return t.f.SetBatch(n) }

// grainWalk is the granularity hill-climber's state, owned by liveSub
// and advanced once per sensor tick (so it runs under the core
// controller's mutex and never races the replica actuator).
//
// The walk is the paper's amortized-overhead argument run empirically:
// double the grain while the observed exit rate keeps clearing the
// hysteresis margin, revert the step that costs throughput, and stop.
// A settled walk re-arms when throughput later degrades below the
// degradation factor of the rate the settled grain delivered — the
// same trigger discipline the replica controller uses, so a workload
// shift re-opens both actuators.
//
// Per-edge targets turn the walk into a coordinate descent: the same
// double-or-halve probe runs against one boundary at a time, moving to
// the next boundary when a step is reverted, lands within the margin,
// or hits a rail, and settling only once every boundary in a row has
// yielded nothing. With a single boundary the rotation is the identity
// and the walk is exactly the uniform one.
type grainWalk struct {
	target  GrainTarget
	et      EdgeGrainTarget // non-nil when walking boundaries separately
	nb      int             // boundary count (1 without et)
	max     int             // grain ceiling
	margin  float64         // accept threshold (derived from HysteresisGain)
	degrade float64         // re-arm threshold (DegradationFactor)

	last    float64 // time of the last grain change (cooldown anchor)
	b       int     // boundary currently being probed
	dirs    []int   // per-boundary direction: +1 doubling, -1 halving
	quiet   int     // consecutive boundaries that yielded no accepted step
	prev    int     // grain before the pending step (revert point)
	rate    float64 // best throughput attributed to the current grains
	pending bool    // a step awaits its post-cooldown evaluation
	settled bool    // walk converged; waiting for degradation
}

// grainAt reads the probed boundary's current batch size.
func (w *grainWalk) grainAt(b int) int {
	if w.et != nil {
		return w.et.GrainAt(b)
	}
	return w.target.Grain()
}

// step advances the walker one tick: evaluate a pending grain change
// against the pre-change rate, then (unless settled) take the next
// doubling/halving step. Called from Sample with the same clock the
// triggers use.
func (w *grainWalk) step(s *liveSub, now float64) {
	if w == nil || w.target == nil {
		return
	}
	cool := s.cfg.Cooldown.Seconds()
	if now-w.last < cool {
		return
	}
	window := math.Max(s.cfg.ThroughputWindow.Seconds(), cool)
	tput := s.Throughput(window, now)
	if math.IsNaN(tput) {
		return
	}
	cur := w.grainAt(w.b)

	if w.pending {
		w.pending = false
		switch {
		case tput >= w.rate*w.margin:
			// The step paid for itself: keep it, keep walking this
			// boundary.
			w.rate = tput
			w.quiet = 0
		case tput*w.margin < w.rate:
			// The step cost throughput: revert and move on. The
			// direction flips so a later pass over this boundary
			// probes the other side first.
			w.actuate(w.b, w.prev, now)
			w.dirs[w.b] = -w.dirs[w.b]
			w.advance()
			return
		default:
			// Within the margin either way: keep the grain (it did
			// not hurt) but stop probing this boundary.
			w.rate = tput
			w.advance()
			return
		}
	}

	if w.settled {
		if tput >= w.rate*w.degrade {
			if tput > w.rate {
				w.rate = tput // track the high-water mark while settled
			}
			return
		}
		// Observed rate collapsed below the settled grains' record:
		// re-open the walk from current conditions.
		w.settled = false
		w.quiet = 0
		w.rate = tput
	}

	next := cur
	if w.dirs[w.b] >= 0 {
		next = cur * 2
	} else {
		next = cur / 2
	}
	if next < 1 {
		next = 1
	}
	if next > w.max {
		next = w.max
	}
	if next == cur {
		// Hit a rail: probe this boundary's other direction on the
		// next pass, move on now.
		w.dirs[w.b] = -w.dirs[w.b]
		w.advance()
		return
	}
	w.prev = cur
	if math.IsNaN(w.rate) {
		w.rate = tput
	}
	w.actuate(w.b, next, now)
	w.pending = true
}

// advance rotates to the next boundary, settling once a full rotation
// has yielded no accepted step. With one boundary this settles
// immediately — the uniform walk's behaviour.
func (w *grainWalk) advance() {
	w.quiet++
	if w.quiet >= w.nb {
		w.settled = true
		return
	}
	w.b = (w.b + 1) % w.nb
}

func (w *grainWalk) actuate(b, n int, now float64) {
	var err error
	if w.et != nil {
		err = w.et.SetGrainAt(b, n)
	} else {
		err = w.target.SetGrain(n)
	}
	if err != nil {
		// The target's grain surface was probed at construction; a
		// failure here is a programming error.
		panic("liveadapt: SetGrain: " + err.Error())
	}
	w.last = now
}
