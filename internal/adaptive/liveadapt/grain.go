package liveadapt

import (
	"math"
)

// GrainTarget is the optional second actuator surface: targets whose
// stage boundaries move batches expose their batch size for the
// controller to walk. *pipeline.Pipeline (with EnableBatch) and
// *farm.Farm both satisfy it.
type GrainTarget interface {
	// Grain returns the current boundary batch size.
	Grain() int
	// SetGrain changes the batch size while running.
	SetGrain(n int) error
}

func (t pipelineTarget) Grain() int          { return t.p.Grain() }
func (t pipelineTarget) SetGrain(n int) error { return t.p.SetGrain(n) }

func (t farmTarget) Grain() int          { return t.f.Batch() }
func (t farmTarget) SetGrain(n int) error { return t.f.SetBatch(n) }

// grainWalk is the granularity hill-climber's state, owned by liveSub
// and advanced once per sensor tick (so it runs under the core
// controller's mutex and never races the replica actuator).
//
// The walk is the paper's amortized-overhead argument run empirically:
// double the grain while the observed exit rate keeps clearing the
// hysteresis margin, revert the step that costs throughput, and stop.
// A settled walk re-arms when throughput later degrades below the
// degradation factor of the rate the settled grain delivered — the
// same trigger discipline the replica controller uses, so a workload
// shift re-opens both actuators.
type grainWalk struct {
	target  GrainTarget
	max     int     // grain ceiling
	margin  float64 // accept threshold (derived from HysteresisGain)
	degrade float64 // re-arm threshold (DegradationFactor)

	last    float64 // time of the last grain change (cooldown anchor)
	dir     int     // +1 doubling, -1 halving
	prev    int     // grain before the pending step (revert point)
	rate    float64 // best throughput attributed to the current grain
	pending bool    // a step awaits its post-cooldown evaluation
	settled bool    // walk converged; waiting for degradation
}

// step advances the walker one tick: evaluate a pending grain change
// against the pre-change rate, then (unless settled) take the next
// doubling/halving step. Called from Sample with the same clock the
// triggers use.
func (w *grainWalk) step(s *liveSub, now float64) {
	if w == nil || w.target == nil {
		return
	}
	cool := s.cfg.Cooldown.Seconds()
	if now-w.last < cool {
		return
	}
	window := math.Max(s.cfg.ThroughputWindow.Seconds(), cool)
	tput := s.Throughput(window, now)
	if math.IsNaN(tput) {
		return
	}
	cur := w.target.Grain()

	if w.pending {
		w.pending = false
		switch {
		case tput >= w.rate*w.margin:
			// The step paid for itself: keep it, keep walking.
			w.rate = tput
		case tput*w.margin < w.rate:
			// The step cost throughput: revert and settle. The
			// direction flips so a later re-armed walk probes the
			// other side first.
			w.actuate(w.prev, now)
			w.dir = -w.dir
			w.settled = true
			return
		default:
			// Within the margin either way: keep the grain (it did
			// not hurt) but stop walking.
			w.rate = tput
			w.settled = true
			return
		}
	}

	if w.settled {
		if tput >= w.rate*w.degrade {
			if tput > w.rate {
				w.rate = tput // track the high-water mark while settled
			}
			return
		}
		// Observed rate collapsed below the settled grain's record:
		// re-open the walk from current conditions.
		w.settled = false
		w.rate = tput
	}

	next := cur
	if w.dir >= 0 {
		next = cur * 2
	} else {
		next = cur / 2
	}
	if next < 1 {
		next = 1
	}
	if next > w.max {
		next = w.max
	}
	if next == cur {
		// Hit a rail: try the other direction next time, or settle if
		// the range is degenerate.
		w.dir = -w.dir
		w.settled = true
		return
	}
	w.prev = cur
	if math.IsNaN(w.rate) {
		w.rate = tput
	}
	w.actuate(next, now)
	w.pending = true
}

func (w *grainWalk) actuate(n int, now float64) {
	if err := w.target.SetGrain(n); err != nil {
		// The target's grain surface was probed at construction; a
		// failure here is a programming error.
		panic("liveadapt: SetGrain: " + err.Error())
	}
	w.last = now
}
