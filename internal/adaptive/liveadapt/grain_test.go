package liveadapt

import (
	"context"
	"math"
	"testing"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/pipeline"
)

func identityFn(_ context.Context, v any) (any, error) { return v, nil }

// grainFake extends the scripted target with a grain surface whose
// "observed" throughput is a function the test controls: rate(grain)
// items per second, fed to the sensor via NoteCompletion-equivalent
// counter bumps between ticks.
type grainFake struct {
	*fakeTarget
	grain int
}

func (f *grainFake) Grain() int { return f.grain }
func (f *grainFake) SetGrain(n int) error {
	f.grain = n
	return nil
}

// drive advances the walker through ticks spaced one cooldown apart,
// crediting completions at rate(grain) between ticks.
func drive(s *liveSub, f *grainFake, rate func(grain int) float64, from, ticks int) float64 {
	cool := s.cfg.Cooldown.Seconds()
	now := float64(from) * cool
	for i := 0; i < ticks; i++ {
		now += cool
		s.done.Add(int64(rate(f.grain) * cool))
		s.Sample(now)
	}
	return now
}

func TestGrainWalkClimbsUnderFixedOverhead(t *testing.T) {
	f := &grainFake{fakeTarget: newFake(1), grain: 1}
	s := subFor(t, f, nil, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   time.Second,
		Cooldown:   2 * time.Second,
		AdaptGrain: true,
		MaxGrain:   64,
	})
	if s.grain == nil {
		t.Fatal("AdaptGrain should arm the walker")
	}
	// Amortized-overhead throughput curve: work 1 ms/item, fixed
	// 9 ms/batch → rate(g) = 1000/(1 + 9/g) items/s, monotone in g.
	rate := func(g int) float64 { return 1000 / (1 + 9/float64(g)) }
	drive(s, f, rate, 1, 40)
	if f.grain < 32 {
		t.Fatalf("walker stopped at grain %d; monotone curve should reach the high rungs", f.grain)
	}
}

func TestGrainWalkRevertsHarmfulStep(t *testing.T) {
	f := &grainFake{fakeTarget: newFake(1), grain: 1}
	s := subFor(t, f, nil, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   time.Second,
		Cooldown:   2 * time.Second,
		AdaptGrain: true,
		MaxGrain:   256,
	})
	// Peaked curve: best at grain 8, collapsing beyond it.
	rate := func(g int) float64 {
		if g <= 8 {
			return 1000 / (1 + 7/float64(g))
		}
		return 200
	}
	drive(s, f, rate, 1, 40)
	if f.grain != 8 {
		t.Fatalf("walker settled at grain %d, want the peak 8", f.grain)
	}
	if !s.grain.settled {
		t.Fatal("walker should settle after reverting a harmful step")
	}
}

func TestGrainWalkReArmsOnDegradation(t *testing.T) {
	f := &grainFake{fakeTarget: newFake(1), grain: 1}
	s := subFor(t, f, nil, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   time.Second,
		Cooldown:   2 * time.Second,
		AdaptGrain: true,
		MaxGrain:   16,
	})
	rate := func(g int) float64 { return 1000 / (1 + 9/float64(g)) }
	drive(s, f, rate, 1, 30)
	if !s.grain.settled || f.grain != 16 {
		t.Fatalf("expected settled walk at the rail, got settled=%v grain=%d", s.grain.settled, f.grain)
	}
	// The workload shifts: throughput collapses below the settled
	// record and the optimum moves to per-item transfer. The walk must
	// re-arm and descend to the new optimum.
	shifted := func(g int) float64 { return 400 / (1 + 0.2*float64(g)) }
	drive(s, f, shifted, 31, 30)
	if f.grain > 2 {
		t.Fatalf("after the shift the walk sits at grain %d, want near 1", f.grain)
	}
}

// edgeFake scripts a two-boundary EdgeGrainTarget.
type edgeFake struct {
	*fakeTarget
	grains []int
}

func (f *edgeFake) Grain() int { return f.grains[0] }
func (f *edgeFake) SetGrain(n int) error {
	for b := range f.grains {
		f.grains[b] = n
	}
	return nil
}
func (f *edgeFake) GrainBoundaries() int { return len(f.grains) }
func (f *edgeFake) GrainAt(b int) int    { return f.grains[b] }
func (f *edgeFake) SetGrainAt(b, n int) error {
	f.grains[b] = n
	return nil
}

func TestGrainWalkCoordinateDescentPerBoundary(t *testing.T) {
	f := &edgeFake{fakeTarget: newFake(1), grains: []int{1, 1}}
	s := subFor(t, f, nil, Config{
		Policy:     adaptive.PolicyPeriodic,
		Interval:   time.Second,
		Cooldown:   2 * time.Second,
		AdaptGrain: true,
		MaxGrain:   64,
	})
	if s.grain.et == nil || s.grain.nb != 2 {
		t.Fatalf("walker should descend over 2 boundaries, got nb=%d", s.grain.nb)
	}
	// Boundary 0 amortizes a heavy per-batch overhead; coarsening
	// boundary 1 only costs throughput. The descent must coarsen the
	// first and keep the second fine.
	rate := func(int) float64 {
		r := 1000 / (1 + 9/float64(f.grains[0]))
		return r / (1 + 0.5*float64(f.grains[1]-1))
	}
	drive2 := func(from, ticks int) {
		cool := s.cfg.Cooldown.Seconds()
		now := float64(from) * cool
		for i := 0; i < ticks; i++ {
			now += cool
			s.done.Add(int64(rate(0) * cool))
			s.Sample(now)
		}
	}
	drive2(1, 80)
	if f.grains[0] < 32 {
		t.Fatalf("overhead-dominated boundary stuck at grain %d, want coarse (grains %v)", f.grains[0], f.grains)
	}
	if f.grains[1] != 1 {
		t.Fatalf("penalized boundary coarsened to %d, want 1 (grains %v)", f.grains[1], f.grains)
	}
	if !s.grain.settled {
		t.Fatal("descent should settle once every boundary yields nothing")
	}
}

func TestAdaptGrainConstructionChecks(t *testing.T) {
	// A plain fake has no grain surface.
	if _, err := newController(newFake(1), nil, Config{Policy: adaptive.PolicyPeriodic, AdaptGrain: true}); err == nil {
		t.Fatal("AdaptGrain over a grainless target should fail")
	}
	// An unbatched pipeline rejects SetGrain → construction error.
	p, err := pipeline.New(pipeline.Stage{Name: "s", Fn: pipeline.Func(identityFn), Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForPipeline(p, nil, Config{Policy: adaptive.PolicyPeriodic, AdaptGrain: true}); err == nil {
		t.Fatal("AdaptGrain over an unbatched pipeline should fail")
	}
	// A batched pipeline arms it.
	p2, err := pipeline.New(pipeline.Stage{Name: "s", Fn: pipeline.Func(identityFn), Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.EnableBatch(4, 0); err != nil {
		t.Fatal(err)
	}
	ctrl, err := ForPipeline(p2, nil, Config{Policy: adaptive.PolicyPeriodic, AdaptGrain: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Grain() != 4 {
		t.Fatalf("Grain() = %d, want 4", ctrl.Grain())
	}
	if math.IsNaN(float64(ctrl.sub.grain.margin)) || ctrl.sub.grain.margin <= 1 {
		t.Fatalf("walker margin %v should exceed 1", ctrl.sub.grain.margin)
	}
}
