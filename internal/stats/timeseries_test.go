package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAppendAndValueAt(t *testing.T) {
	s := NewSeries("load")
	if !math.IsNaN(s.ValueAt(0)) {
		t.Fatal("empty series should be NaN")
	}
	s.Append(0, 1)
	s.Append(10, 2)
	s.Append(20, 3)
	cases := []struct{ t, want float64 }{
		{-5, 1}, {0, 1}, {5, 1}, {10, 2}, {15, 2}, {20, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.ValueAt(c.t); got != c.want {
			t.Errorf("ValueAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesAppendMonotone(t *testing.T) {
	s := NewSeries("x")
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for backwards time")
		}
	}()
	s.Append(4, 1)
}

func TestSeriesResample(t *testing.T) {
	s := NewSeries("x")
	s.Append(0, 0)
	s.Append(1, 10)
	r := s.Resample(0, 2, 0.5)
	want := []float64{0, 0, 10, 10, 10}
	if r.Len() != len(want) {
		t.Fatalf("resampled len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if r.At(i).V != w {
			t.Errorf("point %d = %v, want %v", i, r.At(i).V, w)
		}
	}
}

func TestWindowRate(t *testing.T) {
	// 10 events uniformly in [0,10): one per unit time.
	var events []float64
	for i := 0; i < 10; i++ {
		events = append(events, float64(i)+0.5)
	}
	r := WindowRate(events, 0, 10, 2)
	if r.Len() != 5 {
		t.Fatalf("windows = %d, want 5", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if r.At(i).V != 1.0 {
			t.Errorf("window %d rate = %v, want 1", i, r.At(i).V)
		}
	}
}

func TestWindowRateUnsortedInput(t *testing.T) {
	events := []float64{9, 1, 5, 3, 7}
	r := WindowRate(events, 0, 10, 10)
	if r.Len() != 1 || r.At(0).V != 0.5 {
		t.Fatalf("rate = %+v, want single window 0.5", r.Points())
	}
}

func TestIntegrateAndTimeAverage(t *testing.T) {
	s := NewSeries("util")
	s.Append(0, 1)
	s.Append(10, 3)
	// integral over [0,20] = 1*10 + 3*10 = 40
	if got := s.Integrate(0, 20); !almostEq(got, 40, 1e-9) {
		t.Fatalf("Integrate = %v, want 40", got)
	}
	if got := s.TimeAverage(0, 20); !almostEq(got, 2, 1e-9) {
		t.Fatalf("TimeAverage = %v, want 2", got)
	}
	// Partial interval starting mid-series.
	if got := s.Integrate(5, 15); !almostEq(got, 1*5+3*5, 1e-9) {
		t.Fatalf("partial Integrate = %v, want 20", got)
	}
	if !math.IsNaN(s.TimeAverage(5, 5)) {
		t.Fatal("degenerate interval should be NaN")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("tp")
	s.Append(1, 2)
	got := s.CSV()
	if !strings.HasPrefix(got, "t,tp\n") || !strings.Contains(got, "1.000000,2.000000") {
		t.Fatalf("CSV output malformed:\n%s", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(11) // overflow
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	lo, hi := h.BinBounds(3)
	if lo != 3 || hi != 4 {
		t.Fatalf("BinBounds(3) = %v,%v", lo, hi)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median estimate %v out of tolerance", med)
	}
	if !math.IsNaN(NewHistogram(0, 1, 1).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramEdgeValueGoesToOverflow(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(10) // hi is exclusive
	if h.Overflow() != 1 {
		t.Fatalf("value at hi should overflow, got %d", h.Overflow())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("expected bars in output:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRowf("alpha", 1.23456)
	tb.AddRow("beta", "x")
	tb.AddNote("n=%d", 2)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "1.235", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if got := tb.Row(1)[0]; got != "beta" {
		t.Fatalf("Row(1)[0] = %q", got)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	got := tb.CSV()
	if !strings.Contains(got, `"has,comma"`) || !strings.Contains(got, `"has""quote"`) {
		t.Fatalf("CSV quoting wrong:\n%s", got)
	}
}
