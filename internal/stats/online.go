package stats

import "math"

// Online accumulates mean and variance incrementally using Welford's
// algorithm. It is the accumulator behind every monitor probe: samples
// arrive one at a time from the running pipeline and we never want to
// retain them all.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN before any sample.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased sample variance, or NaN before
// two samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample seen, or NaN before any sample.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest sample seen, or NaN before any sample.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Reset clears the accumulator.
func (o *Online) Reset() { *o = Online{} }

// Merge combines another accumulator into this one (parallel Welford,
// Chan et al.). Afterwards o summarises the union of both sample sets.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	mean := o.mean + d*float64(b.n)/float64(n)
	m2 := o.m2 + b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	min := o.min
	if b.min < min {
		min = b.min
	}
	max := o.max
	if b.max > max {
		max = b.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}

// EWMA is an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]; larger alpha weights recent samples more.
// The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics
// if alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates x and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average, or NaN before any sample.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Ring is a fixed-capacity ring buffer of float64 samples. It backs the
// sliding-window forecasters and monitor windows.
type Ring struct {
	buf  []float64
	head int // next write position
	full bool
}

// NewRing returns a ring buffer holding up to n samples. It panics if
// n <= 0.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("stats: NewRing with non-positive capacity")
	}
	return &Ring{buf: make([]float64, n)}
}

// Add appends x, evicting the oldest sample when full.
func (r *Ring) Add(x float64) {
	r.buf[r.head] = x
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.full = true
	}
}

// Len returns the number of samples currently held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.head
}

// Cap returns the capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Values returns the samples oldest-first in a freshly allocated slice.
func (r *Ring) Values() []float64 {
	n := r.Len()
	out := make([]float64, 0, n)
	if r.full {
		out = append(out, r.buf[r.head:]...)
	}
	out = append(out, r.buf[:r.head]...)
	return out
}

// Last returns the most recent sample, or NaN when empty.
func (r *Ring) Last() float64 {
	if r.Len() == 0 {
		return math.NaN()
	}
	i := r.head - 1
	if i < 0 {
		i = len(r.buf) - 1
	}
	return r.buf[i]
}

// Mean returns the mean of the held samples, or NaN when empty.
func (r *Ring) Mean() float64 {
	n := r.Len()
	if n == 0 {
		return math.NaN()
	}
	s := 0.0
	if r.full {
		for _, v := range r.buf {
			s += v
		}
		return s / float64(len(r.buf))
	}
	for _, v := range r.buf[:r.head] {
		s += v
	}
	return s / float64(n)
}

// Reset empties the ring.
func (r *Ring) Reset() {
	r.head = 0
	r.full = false
}
