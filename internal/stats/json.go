package stats

import "encoding/json"

// TableDoc is the machine-readable rendering of a Table: the same
// cells the text renderer aligns, as JSON-marshalable data. Cells stay
// strings — the table layer formats, the consumer parses — so the
// JSON output is exactly as reproducible as the printed tables.
type TableDoc struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Doc returns the table's machine-readable form.
func (t *Table) Doc() TableDoc {
	d := TableDoc{Title: t.Title, Headers: t.headers, Rows: t.rows, Notes: t.notes}
	if d.Rows == nil {
		d.Rows = [][]string{}
	}
	return d
}

// MarshalJSON renders the table as its TableDoc.
func (t *Table) MarshalJSON() ([]byte, error) { return json.Marshal(t.Doc()) }

// SeriesDoc is the machine-readable rendering of a Series.
type SeriesDoc struct {
	Name string `json:"name"`
	// Points holds [t, v] pairs in time order.
	Points [][2]float64 `json:"points"`
}

// Doc returns the series' machine-readable form.
func (s *Series) Doc() SeriesDoc {
	d := SeriesDoc{Name: s.Name, Points: make([][2]float64, len(s.pts))}
	for i, p := range s.pts {
		d.Points[i] = [2]float64{p.T, p.V}
	}
	return d
}

// MarshalJSON renders the series as its SeriesDoc.
func (s *Series) MarshalJSON() ([]byte, error) { return json.Marshal(s.Doc()) }
