package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	// Sample variance of this classic set is 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) ||
		!math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty-input statistics should be NaN")
	}
}

func TestVarianceSingleSampleNaN(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("variance of one sample should be NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("min/max/sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); !almostEq(got, 5, 1e-12) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q out of range")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileUnsortedInput(t *testing.T) {
	if got := Quantile([]float64{5, 1, 3, 2, 4}, 0.5); !almostEq(got, 3, 1e-12) {
		t.Fatalf("median of unsorted = %v, want 3", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEq(s.P50, 50, 1e-9) || !almostEq(s.P95, 95, 1e-9) || !almostEq(s.P99, 99, 1e-9) {
		t.Fatalf("bad quantiles: %+v", s)
	}
	if !almostEq(s.Mean, 50, 1e-9) {
		t.Fatalf("bad mean: %v", s.Mean)
	}
}

func TestMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{1, 4, 3}
	if got := MSE(pred, act); !almostEq(got, 4.0/3.0, 1e-12) {
		t.Fatalf("MSE = %v", got)
	}
	if got := MAE(pred, act); !almostEq(got, 2.0/3.0, 1e-12) {
		t.Fatalf("MAE = %v", got)
	}
	if !math.IsNaN(MSE([]float64{1}, []float64{1, 2})) {
		t.Fatal("mismatched lengths should give NaN")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("RelErr = %v", got)
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Fatal("RelErr with zero want should be NaN")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{1.5, 2.5, 2.5, 9, -3, 4.25, 0}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != -3 || o.Max() != 9 {
		t.Fatalf("online min/max %v %v", o.Min(), o.Max())
	}
}

func TestOnlineMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var left, right, merged Online
		// Huge magnitudes (≈1e308) overflow the squared-deviation sum
		// and are not representative of the timing samples this
		// accumulator holds; bound the domain instead.
		ok := func(x float64) bool {
			return !math.IsNaN(x) && math.Abs(x) < 1e9
		}
		for _, x := range a {
			if !ok(x) {
				return true
			}
			left.Add(x)
		}
		for _, x := range b {
			if !ok(x) {
				return true
			}
			right.Add(x)
		}
		left.Merge(&right)
		all := append(append([]float64{}, a...), b...)
		for _, x := range all {
			merged.Add(x)
		}
		if left.N() != merged.N() {
			return false
		}
		if left.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(merged.Mean()))
		if !almostEq(left.Mean(), merged.Mean(), tol) {
			return false
		}
		if left.N() >= 2 {
			vtol := 1e-6 * (1 + math.Abs(merged.Variance()))
			if !almostEq(left.Variance(), merged.Variance(), vtol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineReset(t *testing.T) {
	var o Online
	o.Add(5)
	o.Reset()
	if o.N() != 0 || !math.IsNaN(o.Mean()) {
		t.Fatal("reset did not clear accumulator")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatal("EWMA before samples should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should initialise: %v", e.Value())
	}
	e.Add(20)
	if !almostEq(e.Value(), 15, 1e-12) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMAPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for alpha=%v", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatal("fresh ring wrong")
	}
	if !math.IsNaN(r.Last()) || !math.IsNaN(r.Mean()) {
		t.Fatal("empty ring should report NaN")
	}
	r.Add(1)
	r.Add(2)
	if got := r.Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Values = %v", got)
	}
	r.Add(3)
	r.Add(4) // evicts 1
	if got := r.Values(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("Values after wrap = %v", got)
	}
	if r.Last() != 4 {
		t.Fatalf("Last = %v", r.Last())
	}
	if !almostEq(r.Mean(), 3, 1e-12) {
		t.Fatalf("Mean = %v", r.Mean())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRingWrapProperty(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		c := int(capRaw%16) + 1
		r := NewRing(c)
		var want []float64
		for i := 0; i < int(n); i++ {
			x := float64(i)
			r.Add(x)
			want = append(want, x)
			if len(want) > c {
				want = want[1:]
			}
		}
		got := r.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
