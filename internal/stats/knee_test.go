package stats

import "testing"

func TestKneeIndexDetectsSaturation(t *testing.T) {
	// Linear to 20, hard plateau past index 4. The window-2 rolling
	// mean still holds one full-slope sample at index 5, so the
	// detector confirms the collapse one step later, at index 6.
	offered := []float64{4, 8, 12, 16, 20, 24, 28, 32}
	achieved := []float64{4, 8, 12, 16, 20, 20.2, 20.3, 20.3}
	if got := KneeIndex(offered, achieved, 2, 0.5); got != 6 {
		t.Fatalf("knee at %d, want 6", got)
	}
	// An unsmoothed detector (window 1) fires at the first plateau
	// sample.
	if got := KneeIndex(offered, achieved, 1, 0.5); got != 5 {
		t.Fatalf("window-1 knee at %d, want 5", got)
	}
}

func TestKneeIndexLinearHasNoKnee(t *testing.T) {
	offered := []float64{1, 2, 3, 4, 5, 6}
	achieved := []float64{1, 2, 3, 4, 5, 6}
	if got := KneeIndex(offered, achieved, 2, 0.5); got != -1 {
		t.Fatalf("knee %d on a perfectly linear ramp", got)
	}
}

func TestKneeIndexWindowSmoothsNoise(t *testing.T) {
	// One noisy dip at index 3 recovers immediately; a window of 3
	// must not fire on it, but the true plateau from index 5 on still
	// registers.
	offered := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	achieved := []float64{2, 4, 6, 6.5, 10, 10.4, 10.5, 10.5}
	got := KneeIndex(offered, achieved, 3, 0.5)
	if got <= 3 {
		t.Fatalf("window did not smooth the transient dip: knee %d", got)
	}
	if got == -1 {
		t.Fatal("missed the real plateau")
	}
}

func TestKneeIndexRejectsBadInput(t *testing.T) {
	lin := []float64{1, 2, 3}
	cases := []struct {
		name              string
		offered, achieved []float64
		window            int
		frac              float64
	}{
		{"too short", []float64{1, 2}, []float64{1, 2}, 2, 0.5},
		{"length mismatch", lin, []float64{1, 2}, 2, 0.5},
		{"non-increasing offered", []float64{1, 3, 2}, lin, 2, 0.5},
		{"repeated offered", []float64{1, 1, 2}, lin, 2, 0.5},
		{"frac zero", lin, lin, 2, 0},
		{"frac one", lin, lin, 2, 1},
		{"flat initial slope", []float64{1, 2, 3}, []float64{5, 5, 5}, 2, 0.5},
	}
	for _, c := range cases {
		if got := KneeIndex(c.offered, c.achieved, c.window, c.frac); got != -1 {
			t.Errorf("%s: got %d, want -1", c.name, got)
		}
	}
}
