// Package stats provides the descriptive-statistics toolkit used across
// gridpipe: batch and online moments, quantiles, histograms, time
// series with resampling, and fixed-width table rendering for the
// experiment harness.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN when
// fewer than two samples are available.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN for an empty slice and panics if q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// sortedQuantile computes the type-7 quantile of an already sorted
// slice.
func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics reported in the
// experiment tables.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, P50      float64
	P95, P99, Max float64
}

// Summarize computes a Summary of xs in one pass over a single sorted
// copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{0, nan, nan, nan, nan, nan, nan, nan}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		StdDev: StdDev(s),
		Min:    s[0],
		P50:    sortedQuantile(s, 0.5),
		P95:    sortedQuantile(s, 0.95),
		P99:    sortedQuantile(s, 0.99),
		Max:    s[len(s)-1],
	}
}

// MSE returns the mean squared error between predictions and actuals.
// The slices must have equal non-zero length.
func MSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred))
}

// RelErr returns |got-want|/|want|, or NaN if want is zero.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.NaN()
	}
	return math.Abs(got-want) / math.Abs(want)
}
