package stats

import "math"

// KneeIndex locates the saturation knee of a load/throughput ramp:
// the first step at which the marginal throughput gain per unit of
// offered load — smoothed over a rolling window of the preceding
// steps' slopes — collapses below frac of the ramp's initial slope.
// It is the detector behind the pipebench stress ramp: below the knee
// added load buys proportional throughput, past it the system is
// saturated and added load only buys queueing.
//
// offered must be strictly increasing; achieved is the measured
// throughput at each offered level. window is the rolling-slope
// window in steps (minimum 1; a small window rides out single-step
// measurement noise without smearing the knee), and frac in (0, 1) is
// the collapse threshold. Returns the index into the ramp of the
// first saturated step, or -1 when the ramp never knees (every
// smoothed slope holds above the threshold) or the inputs are too
// short or malformed to call.
func KneeIndex(offered, achieved []float64, window int, frac float64) int {
	n := len(offered)
	if n != len(achieved) || n < 3 || frac <= 0 || frac >= 1 {
		return -1
	}
	if window < 1 {
		window = 1
	}
	for i := 1; i < n; i++ {
		if !(offered[i] > offered[i-1]) { // also rejects NaN
			return -1
		}
	}
	// The reference slope is the ramp's first marginal gain — the
	// unsaturated region's exchange rate of offered load for
	// throughput.
	initial := (achieved[1] - achieved[0]) / (offered[1] - offered[0])
	if math.IsNaN(initial) || initial <= 0 {
		return -1
	}
	roll := NewRing(window)
	roll.Add(initial)
	for i := 2; i < n; i++ {
		roll.Add((achieved[i] - achieved[i-1]) / (offered[i] - offered[i-1]))
		if m := roll.Mean(); !math.IsNaN(m) && m < frac*initial {
			return i
		}
	}
	return -1
}
