package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are counted in dedicated underflow/overflow bins so totals are
// never silently lost.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []int
	under  int
	over   int
	total  int
}

// NewHistogram returns a histogram with n equal bins over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // guard against float rounding at hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// NumBins returns the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int { return h.under }
func (h *Histogram) Overflow() int  { return h.over }

// BinBounds returns the [lo, hi) range of bin i.
func (h *Histogram) BinBounds(i int) (float64, float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// Quantile estimates the q-quantile from the binned counts assuming a
// uniform distribution within each bin. Out-of-range samples are
// clamped to the histogram bounds. It returns NaN for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: histogram quantile out of [0,1]")
	}
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target && h.under > 0 {
		return h.lo
	}
	for i, c := range h.bins {
		if cum+float64(c) >= target && c > 0 {
			lo, _ := h.BinBounds(i)
			frac := (target - cum) / float64(c)
			return lo + frac*h.width
		}
		cum += float64(c)
	}
	return h.hi
}

// String renders a compact ASCII sketch of the histogram, one line per
// non-empty bin, suitable for debug logs.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	const barWidth = 40
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		lo, hi := h.BinBounds(i)
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxCount)*barWidth)))
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %8d %s\n", lo, hi, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}
