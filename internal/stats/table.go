package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned
// fixed-width columns. The experiment harness uses it to print every
// reproduced table in a form directly comparable with the paper's.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept; short
// rows are padded when rendering.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with %v, using %.4g for
// floats so tables stay narrow.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// AddNote appends a footnote line printed after the table body.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	for i := 0; i < ncols; i++ {
		w := len(cell(t.headers, i))
		for _, r := range t.rows {
			if l := len(cell(r, i)); l > w {
				w = l
			}
		}
		widths[i] = w
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell(r, i))
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas), for machine post-processing of experiment output.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
