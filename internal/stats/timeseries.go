package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) observation. Time is in seconds of
// simulated or wall-clock time depending on the producer.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series. Producers must append in
// non-decreasing time order; Append enforces this.
type Series struct {
	Name string
	pts  []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds an observation. It panics if t precedes the last
// appended time, because every consumer (resampling, rate computation)
// assumes monotone time.
func (s *Series) Append(t, v float64) {
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		panic(fmt.Sprintf("stats: series %q time went backwards: %v after %v", s.Name, t, s.pts[n-1].T))
	}
	s.pts = append(s.pts, Point{t, v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th point.
func (s *Series) At(i int) Point { return s.pts[i] }

// Points returns the underlying points (not a copy; callers must not
// mutate).
func (s *Series) Points() []Point { return s.pts }

// Values returns just the values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.V
	}
	return out
}

// ValueAt returns the value in effect at time t under step
// (zero-order-hold) interpolation: the value of the latest point with
// T <= t. Before the first point it returns the first value; on an
// empty series it returns NaN.
func (s *Series) ValueAt(t float64) float64 {
	if len(s.pts) == 0 {
		return math.NaN()
	}
	// Binary search for the first point with T > t.
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return s.pts[0].V
	}
	return s.pts[i-1].V
}

// Resample returns the series sampled at fixed dt intervals over
// [t0, t1] using step interpolation. It is used to align measured
// throughput timelines from different policies onto a common grid for
// figure output.
func (s *Series) Resample(t0, t1, dt float64) *Series {
	if dt <= 0 {
		panic("stats: Resample with non-positive dt")
	}
	out := NewSeries(s.Name)
	for t := t0; t <= t1+dt/2; t += dt {
		out.Append(t, s.ValueAt(t))
	}
	return out
}

// WindowRate converts a series of event times (value ignored) into a
// rate series: events per unit time within each consecutive window of
// the given width. It is the throughput-timeline primitive for figure
// F1.
func WindowRate(eventTimes []float64, t0, t1, window float64) *Series {
	if window <= 0 {
		panic("stats: WindowRate with non-positive window")
	}
	out := NewSeries("rate")
	times := make([]float64, len(eventTimes))
	copy(times, eventTimes)
	sort.Float64s(times)
	idx := 0
	for start := t0; start < t1; start += window {
		end := start + window
		count := 0
		for idx < len(times) && times[idx] < end {
			if times[idx] >= start {
				count++
			}
			idx++
		}
		out.Append(start+window/2, float64(count)/window)
	}
	return out
}

// Integrate returns the time integral of the series over [t0, t1]
// under step interpolation. Dividing by (t1-t0) gives the time-average
// value, used for mean utilisation.
func (s *Series) Integrate(t0, t1 float64) float64 {
	if len(s.pts) == 0 || t1 <= t0 {
		return 0
	}
	total := 0.0
	prevT := t0
	prevV := s.ValueAt(t0)
	for _, p := range s.pts {
		if p.T <= t0 {
			continue
		}
		if p.T >= t1 {
			break
		}
		total += prevV * (p.T - prevT)
		prevT, prevV = p.T, p.V
	}
	total += prevV * (t1 - prevT)
	return total
}

// TimeAverage returns Integrate(t0,t1)/(t1-t0), or NaN for an empty
// interval.
func (s *Series) TimeAverage(t0, t1 float64) float64 {
	if t1 <= t0 {
		return math.NaN()
	}
	return s.Integrate(t0, t1) / (t1 - t0)
}

// CSV renders the series as "t,v" lines with a header, for offline
// plotting of the figures.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t,%s\n", s.Name)
	for _, p := range s.pts {
		fmt.Fprintf(&b, "%.6f,%.6f\n", p.T, p.V)
	}
	return b.String()
}
