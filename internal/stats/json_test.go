package stats

import (
	"encoding/json"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRowf("x", 1.5)
	tb.AddNote("a note")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var d TableDoc
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Title != "demo" || len(d.Headers) != 2 || len(d.Rows) != 1 || len(d.Notes) != 1 {
		t.Fatalf("round trip lost data: %+v", d)
	}
	if d.Rows[0][1] != "1.5" {
		t.Fatalf("cell formatting changed: %q", d.Rows[0][1])
	}
}

func TestEmptyTableJSONHasRows(t *testing.T) {
	data, err := json.Marshal(NewTable("empty"))
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Rows []any `json:"rows"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Rows == nil {
		t.Fatal(`an empty table must marshal "rows": [], not null`)
	}
}

func TestSeriesJSON(t *testing.T) {
	s := NewSeries("thr")
	s.Append(0, 1)
	s.Append(1, 2.5)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var d SeriesDoc
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Name != "thr" || len(d.Points) != 2 || d.Points[1] != [2]float64{1, 2.5} {
		t.Fatalf("round trip lost data: %+v", d)
	}
}
