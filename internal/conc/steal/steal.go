// Package steal is the shared work-stealing executor behind the live
// skeletons: a fixed, GOMAXPROCS-sized set of persistent workers, each
// owning a bounded LIFO deque, fed through a global injection queue and
// balanced by steal-half.
//
// Before this executor, every pipeline stage (and every farm) ran its
// own dedicated worker pool, so a machine hosting a 6-stage pipeline
// carried the sum of all stage replica counts as runnable goroutines —
// and the Go scheduler's handoffs between them dominated the per-item
// hot path (DESIGN.md, "Granularity & batching", post-mortem). With
// the shared executor, replica counts become pure in-flight limits
// (conc.Limiter, actuated by the same SetReplicas/SetWorkers) and the
// goroutines that actually run stage work are exactly the worker set
// here, sized to the CPUs that exist.
//
// Design:
//
//   - Submit pushes the task onto the global injection queue (a grown-
//     once ring) and wakes one parked worker. External producers never
//     touch worker deques, so Submit is a queue push + a conditional
//     channel send — no allocation in steady state (tasks are values;
//     their Arg is the caller's already-pooled slab).
//   - A worker looks for work in LIFO-local, global-batch, steal-half
//     order: pop its own deque (cache-warm, most recently stolen or
//     grabbed), else grab a batch of qlen/nworkers+1 tasks from the
//     global queue into the deque, else steal half of a sibling's
//     deque (victims probed in a per-worker pseudorandom order). The
//     batch grab is what makes stealing meaningful: a worker that
//     grabbed more than it can chew is relieved by its idle siblings.
//   - An idle worker spins briefly (a few runtime.Gosched rounds, so a
//     task completing on another P can hand over without a park/unpark
//     round trip), then parks: it announces itself on the parked
//     stack, re-checks every queue (announce-then-recheck closes the
//     lost-wakeup window), and blocks on its wake channel.
//   - Deques are mutex-guarded rings rather than lock-free Chase-Lev:
//     the owner's pop and a thief's steal contend only when the deque
//     is nearly empty, both critical sections are a few word moves,
//     and the mutex version is obviously correct under the race
//     detector — the allocation profile (zero) is the same either way.
//     Steals and grabs move tasks through a small stack buffer in two
//     phases (lock victim, copy out; lock self, copy in) so no two
//     deque locks are ever held at once and lock ordering is trivial.
//
// Tasks are expected not to block on executor progress: the skeletons
// arrange their stage tasks to finish into reorder rings (a mutex-
// guarded put) and leave every blocking channel send to plain drainer
// goroutines, so in steady state the fleet stays exactly CPU-sized.
// Tasks that block anyway — a stage function doing I/O, or a test
// rendezvous that needs N items inside the function at once — are
// covered by a monitor (the same thread-injection idea as the Go
// runtime's sysmon): when queued work exists but no task has completed
// for a tick, it spawns a temporary spill worker. Spill workers take
// one task at a time (no private deque, so they never hide work from
// the fleet) and exit as soon as the queues are dry, which keeps the
// injection strictly a liveness valve, not a second pool.
package steal

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gridpipe/internal/ring"
)

// Task is one unit of work: Fn applied to Arg. It is a value (two
// words of interface each) so queues of tasks move no pointers through
// the heap; submitters keep Fn to one long-lived closure per stage and
// pass the per-item state through Arg (a pooled slab or carrier).
type Task struct {
	Fn  func(arg any)
	Arg any
}

// dequeCap bounds each worker's local deque. Grabs and steals fill at
// most half of it, so the owner-push overflow path never triggers in
// practice; 256 matches the Go runtime's per-P run queue.
const dequeCap = 256

// spinRounds is how many Gosched rounds an idle worker spins before
// parking. Small: on the 1-CPU container a spinning worker only
// delays the producer it is waiting for.
const spinRounds = 4

// monitorTick is how often the stall monitor samples the progress
// counter; a task blocking the fleet costs one tick of latency per
// spill worker injected.
const monitorTick = 100 * time.Microsecond

// maxSpill caps concurrently live spill workers — far above anything a
// healthy program needs, low enough to turn a leak of forever-blocking
// tasks into backpressure instead of unbounded goroutine growth.
const maxSpill = 8192

// Deque is one worker's bounded local queue: the owner pushes and pops
// at the tail (LIFO, cache-warm), thieves take from the head (the
// oldest tasks, FIFO-ish, which preserves rough submission order
// across the fleet). It is exported for the steal/local_pop and
// steal/steal_half micro-benchmarks; the executor is the only other
// client.
type Deque struct {
	mu   sync.Mutex
	head int // index of the oldest task
	n    int // live task count
	buf  [dequeCap]Task
}

// Push appends a task at the tail. It reports false when the deque is
// full (the caller then falls back to the global queue).
func (d *Deque) Push(t Task) bool {
	d.mu.Lock()
	if d.n == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.n)%dequeCap] = t
	d.n++
	d.mu.Unlock()
	return true
}

// Pop removes and returns the most recently pushed task (LIFO).
func (d *Deque) Pop() (Task, bool) {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return Task{}, false
	}
	d.n--
	i := (d.head + d.n) % dequeCap
	t := d.buf[i]
	d.buf[i] = Task{}
	d.mu.Unlock()
	return t, true
}

// Len returns the current task count.
func (d *Deque) Len() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

// stealHalf moves up to half of the deque's tasks (at least one, from
// the head — the oldest) into dst and returns how many it took. dst is
// the thief's private buffer, so only one deque lock is held.
func (d *Deque) stealHalf(dst []Task) int {
	d.mu.Lock()
	k := (d.n + 1) / 2
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k; i++ {
		j := (d.head + i) % dequeCap
		dst[i] = d.buf[j]
		d.buf[j] = Task{}
	}
	d.head = (d.head + k) % dequeCap
	d.n -= k
	d.mu.Unlock()
	return k
}

// Steal moves up to half of the deque's tasks (at least one, from the
// head — the oldest) into dst and returns how many it took. It is the
// exported entry point for the steal/steal_half micro-benchmark; the
// executor's workers call the same path internally.
func (d *Deque) Steal(dst []Task) int {
	return d.stealHalf(dst)
}

// Stats is a snapshot of the executor's counters: where tasks came
// from (local pops vs global grabs vs steals) and how often workers
// parked. Pops+Grabbed+Stolen ≥ tasks executed is not an identity —
// grabbed and stolen tasks are re-popped locally — but the ratios
// expose the handoff profile the DESIGN.md post-mortem tracks.
type Stats struct {
	Injects int64 // tasks submitted to the global queue
	Pops    int64 // tasks taken from a worker's own deque
	Grabbed int64 // tasks moved global→local in batch grabs
	Steals  int64 // steal-half operations that found work
	Parks   int64 // times a worker went to sleep
	Spills  int64 // spill workers the stall monitor ever injected
}

// Executor is a fixed-size work-stealing worker set. Create with New
// (or use the process-wide Default); Submit from any goroutine; Close
// drains submitted tasks and stops the workers.
type Executor struct {
	workers []*worker

	injectMu sync.Mutex
	inject   ring.FIFO[Task]
	injects  atomic.Int64

	parkMu sync.Mutex
	parked []*worker // stack of sleeping workers
	stop   atomic.Bool

	// Stall-monitor state: progress counts completed tasks fleet-wide,
	// spills the live spill workers, spillsEver the cumulative count.
	progress   atomic.Int64
	spills     atomic.Int64
	spillsEver atomic.Int64

	wg sync.WaitGroup
}

type worker struct {
	e    *Executor
	id   int
	dq   Deque
	wake chan struct{} // buffered(1); send under parkMu after de-listing
	// asleep is guarded by e.parkMu: true while the worker is on the
	// parked stack (a waker that pops it flips this before sending).
	asleep bool
	seed   uint64 // victim-order xorshift state
	buf    [dequeCap / 2]Task

	pops   atomic.Int64
	grabs  atomic.Int64
	steals atomic.Int64
	parks  atomic.Int64
}

// New starts an executor with n workers (n < 1 takes GOMAXPROCS).
func New(n int) *Executor {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Executor{workers: make([]*worker, n)}
	for i := range e.workers {
		e.workers[i] = &worker{
			e:    e,
			id:   i,
			wake: make(chan struct{}, 1),
			seed: uint64(i)*0x9e3779b97f4a7c15 + 1,
		}
	}
	e.wg.Add(n + 1)
	for _, w := range e.workers {
		go w.run()
	}
	go e.monitor()
	return e
}

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor, sized to GOMAXPROCS at
// first use and never closed: every pipeline and farm in the process
// shares one worker set, which is the point — the goroutines doing
// stage work match the CPUs, no matter how many skeletons run.
func Default() *Executor {
	defaultOnce.Do(func() { defaultExec = New(0) })
	return defaultExec
}

// Workers returns the worker-set size.
func (e *Executor) Workers() int { return len(e.workers) }

// Submit queues one task. It must not be called after Close.
func (e *Executor) Submit(t Task) {
	if t.Fn == nil {
		panic("steal: Submit with nil Fn")
	}
	e.injectMu.Lock()
	e.inject.Push(t)
	e.injectMu.Unlock()
	e.injects.Add(1)
	e.wakeOne()
}

// Close stops the workers after every previously submitted task has
// run. The caller must guarantee no Submit races or follows Close
// (the skeletons' dispatchers await their in-flight tasks with their
// own WaitGroup before tearing anything down).
func (e *Executor) Close() {
	e.stop.Store(true)
	e.parkMu.Lock()
	for _, w := range e.parked {
		w.asleep = false
		w.wake <- struct{}{}
	}
	e.parked = e.parked[:0]
	e.parkMu.Unlock()
	e.wg.Wait()
}

// Stats sums the executor's counters.
func (e *Executor) Stats() Stats {
	s := Stats{Injects: e.injects.Load(), Spills: e.spillsEver.Load()}
	for _, w := range e.workers {
		s.Pops += w.pops.Load()
		s.Grabbed += w.grabs.Load()
		s.Steals += w.steals.Load()
		s.Parks += w.parks.Load()
	}
	return s
}

// wakeOne pops one parked worker and wakes it. The wake channel send
// happens under parkMu with the worker already de-listed, so the
// worker's own unpark path (which also runs under parkMu) can tell a
// delivered wake from a pending one without a race.
func (e *Executor) wakeOne() {
	e.parkMu.Lock()
	if n := len(e.parked); n > 0 {
		w := e.parked[n-1]
		e.parked = e.parked[:n-1]
		w.asleep = false
		w.wake <- struct{}{}
	}
	e.parkMu.Unlock()
}

func (w *worker) run() {
	defer w.e.wg.Done()
	for {
		t, ok := w.find()
		if !ok {
			return
		}
		t.Fn(t.Arg)
		w.e.progress.Add(1)
	}
}

// monitor is the executor's liveness valve: if a full tick passes with
// work queued but not one task completed, every worker is wedged
// inside a blocking task, and a spill worker is injected to keep the
// queues draining (and to let K tasks that rendezvous with each other
// all get on CPU even when K exceeds the fleet). One injection per
// tick: bursts of blockers escalate linearly, a healthy fleet never
// escalates at all.
func (e *Executor) monitor() {
	defer e.wg.Done()
	last := int64(-1)
	for !e.stop.Load() {
		time.Sleep(monitorTick)
		cur := e.progress.Load()
		if cur != last {
			last = cur
			continue
		}
		if !e.queued() || e.spills.Load() >= maxSpill {
			continue
		}
		e.spills.Add(1)
		e.spillsEver.Add(1)
		// Safe Add-during-Wait: the monitor's own wg slot holds the
		// counter above zero until after its last possible spawn.
		e.wg.Add(1)
		go e.spillWorker()
	}
}

// queued reports whether any task is waiting anywhere.
func (e *Executor) queued() bool {
	e.injectMu.Lock()
	n := e.inject.Len()
	e.injectMu.Unlock()
	if n > 0 {
		return true
	}
	for _, w := range e.workers {
		if w.dq.Len() > 0 {
			return true
		}
	}
	return false
}

// spillWorker drains one task at a time — never into a private deque,
// so nothing it holds is ever invisible to the fleet — and retires the
// moment the queues are dry.
func (e *Executor) spillWorker() {
	defer e.wg.Done()
	defer e.spills.Add(-1)
	for {
		t, ok := e.takeOne()
		if !ok {
			return
		}
		t.Fn(t.Arg)
		e.progress.Add(1)
	}
}

// takeOne pops a single task from the global queue or, failing that,
// the head of some worker's deque.
func (e *Executor) takeOne() (Task, bool) {
	e.injectMu.Lock()
	if e.inject.Len() > 0 {
		t, _ := e.inject.Pop()
		e.injectMu.Unlock()
		return t, true
	}
	e.injectMu.Unlock()
	var buf [1]Task
	for _, w := range e.workers {
		if w.dq.stealHalf(buf[:]) == 1 {
			return buf[0], true
		}
	}
	return Task{}, false
}

// find returns the next task, blocking through the spin-then-park
// ladder; false means the executor closed and every queue is dry.
func (w *worker) find() (Task, bool) {
	for {
		if t, ok := w.dq.Pop(); ok {
			w.pops.Add(1)
			return t, true
		}
		if t, ok := w.grabGlobal(); ok {
			return t, true
		}
		if t, ok := w.stealAny(); ok {
			return t, true
		}
		if w.e.stop.Load() {
			return Task{}, false
		}
		// Spin: give the scheduler a few chances to run a producer
		// before paying the park/unpark round trip.
		found := false
		for i := 0; i < spinRounds; i++ {
			runtime.Gosched()
			if w.anyWork() {
				found = true
				break
			}
		}
		if found {
			continue
		}
		// Park: announce first, then re-check. A Submit that lands
		// between the re-check and the channel receive sees the
		// announcement and wakes us; one that landed before the
		// re-check is caught by the re-check itself.
		e := w.e
		e.parkMu.Lock()
		e.parked = append(e.parked, w)
		w.asleep = true
		e.parkMu.Unlock()
		if w.anyWork() || e.stop.Load() {
			w.unpark()
			continue
		}
		w.parks.Add(1)
		<-w.wake
	}
}

// unpark withdraws a just-announced park: de-list if still listed,
// otherwise absorb the wake a waker has (with the send under parkMu
// already completed) delivered.
func (w *worker) unpark() {
	e := w.e
	e.parkMu.Lock()
	if w.asleep {
		for i, pw := range e.parked {
			if pw == w {
				e.parked = append(e.parked[:i], e.parked[i+1:]...)
				break
			}
		}
		w.asleep = false
		e.parkMu.Unlock()
		return
	}
	e.parkMu.Unlock()
	<-w.wake
}

// anyWork reports whether any queue anywhere holds a task.
func (w *worker) anyWork() bool {
	e := w.e
	e.injectMu.Lock()
	n := e.inject.Len()
	e.injectMu.Unlock()
	if n > 0 {
		return true
	}
	for _, v := range e.workers {
		if v != w && v.dq.Len() > 0 {
			return true
		}
	}
	return false
}

// grabGlobal moves a batch of qlen/nworkers+1 tasks (capped at half
// the deque) from the global queue into the worker, returning the
// first. Two phases through the private buffer: no deque lock is held
// under the inject lock.
func (w *worker) grabGlobal() (Task, bool) {
	e := w.e
	e.injectMu.Lock()
	qlen := e.inject.Len()
	if qlen == 0 {
		e.injectMu.Unlock()
		return Task{}, false
	}
	k := qlen/len(e.workers) + 1
	if k > qlen {
		k = qlen
	}
	if k > len(w.buf) {
		k = len(w.buf)
	}
	for i := 0; i < k; i++ {
		w.buf[i], _ = e.inject.Pop()
	}
	e.injectMu.Unlock()
	w.grabs.Add(int64(k))
	t := w.buf[0]
	w.requeue(k)
	return t, true
}

// stealAny probes the sibling deques in a per-worker pseudorandom
// order and takes half of the first non-empty one.
func (w *worker) stealAny() (Task, bool) {
	e := w.e
	n := len(e.workers)
	if n == 1 {
		return Task{}, false
	}
	// xorshift64: cheap, allocation-free victim shuffling.
	w.seed ^= w.seed << 13
	w.seed ^= w.seed >> 7
	w.seed ^= w.seed << 17
	start := int(w.seed % uint64(n))
	for i := 0; i < n; i++ {
		v := e.workers[(start+i)%n]
		if v == w {
			continue
		}
		if k := v.dq.stealHalf(w.buf[:]); k > 0 {
			w.steals.Add(1)
			t := w.buf[0]
			w.requeue(k)
			return t, true
		}
	}
	return Task{}, false
}

// requeue pushes buf[1:k] into the local deque (buf[0] is returned to
// the caller to run immediately) and clears the buffer. The deque is
// empty when grabs and steals happen and k is at most half its
// capacity, so the global fallback is defensive only.
func (w *worker) requeue(k int) {
	for i := 1; i < k; i++ {
		if !w.dq.Push(w.buf[i]) {
			w.e.injectMu.Lock()
			w.e.inject.Push(w.buf[i])
			w.e.injectMu.Unlock()
		}
		w.buf[i] = Task{}
	}
	w.buf[0] = Task{}
}

// String renders the stats compactly for logs and the bench report.
func (s Stats) String() string {
	return fmt.Sprintf("injects=%d pops=%d grabbed=%d steals=%d parks=%d spills=%d",
		s.Injects, s.Pops, s.Grabbed, s.Steals, s.Parks, s.Spills)
}
