package steal

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDequeLIFOAndStealFIFO(t *testing.T) {
	var d Deque
	for i := 0; i < 10; i++ {
		i := i
		if !d.Push(Task{Fn: func(any) {}, Arg: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Owner pops newest first.
	if tk, ok := d.Pop(); !ok || tk.Arg.(int) != 9 {
		t.Fatalf("pop = %v, %v", tk.Arg, ok)
	}
	// A thief takes half from the head: the oldest (9+1)/2 = 5 tasks.
	buf := make([]Task, dequeCap/2)
	k := d.stealHalf(buf)
	if k != 5 {
		t.Fatalf("stole %d", k)
	}
	for i := 0; i < k; i++ {
		if buf[i].Arg.(int) != i {
			t.Fatalf("stolen[%d] = %v", i, buf[i].Arg)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len after steal = %d", d.Len())
	}
}

func TestDequeFullPush(t *testing.T) {
	var d Deque
	for i := 0; i < dequeCap; i++ {
		if !d.Push(Task{Fn: func(any) {}}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.Push(Task{Fn: func(any) {}}) {
		t.Fatal("push beyond capacity succeeded")
	}
}

func TestExecutorRunsEverySubmittedTask(t *testing.T) {
	e := New(4)
	const tasks = 10000
	var done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(tasks)
	fn := func(arg any) {
		done.Add(int64(arg.(int)))
		wg.Done()
	}
	want := int64(0)
	for i := 0; i < tasks; i++ {
		want += int64(i)
		e.Submit(Task{Fn: fn, Arg: i})
	}
	wg.Wait()
	e.Close()
	if done.Load() != want {
		t.Fatalf("sum = %d, want %d", done.Load(), want)
	}
	st := e.Stats()
	if st.Injects != tasks {
		t.Fatalf("injects = %d", st.Injects)
	}
	if st.Pops+st.Grabbed == 0 {
		t.Fatal("no work ever reached a worker")
	}
}

func TestExecutorConcurrentSubmitters(t *testing.T) {
	e := New(3)
	defer e.Close()
	const producers, each = 8, 500
	var done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers * each)
	fn := func(any) {
		done.Add(1)
		wg.Done()
	}
	var start sync.WaitGroup
	start.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			start.Done()
			start.Wait()
			for i := 0; i < each; i++ {
				e.Submit(Task{Fn: fn})
			}
		}()
	}
	wg.Wait()
	if done.Load() != producers*each {
		t.Fatalf("done = %d", done.Load())
	}
}

func TestExecutorBlockedTaskDoesNotStallSiblings(t *testing.T) {
	// One task blocks on a channel only the test drains; the remaining
	// workers must keep executing. This is the liveness shape the
	// pipeline relies on: stage tasks may block sending downstream,
	// and the drain always comes from a plain goroutine.
	e := New(2)
	defer e.Close()
	gate := make(chan struct{})
	blocked := make(chan struct{})
	e.Submit(Task{Fn: func(any) {
		close(blocked)
		<-gate
	}})
	<-blocked
	var done atomic.Int64
	var wg sync.WaitGroup
	const tasks = 100
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		e.Submit(Task{Fn: func(any) {
			done.Add(1)
			wg.Done()
		}})
	}
	wg.Wait()
	close(gate)
	if done.Load() != tasks {
		t.Fatalf("done = %d with one worker blocked", done.Load())
	}
}

func TestExecutorCloseDrainsQueuedTasks(t *testing.T) {
	e := New(2)
	var done atomic.Int64
	slow := func(any) {
		time.Sleep(time.Millisecond)
		done.Add(1)
	}
	const tasks = 50
	for i := 0; i < tasks; i++ {
		e.Submit(Task{Fn: slow})
	}
	e.Close()
	if done.Load() != tasks {
		t.Fatalf("Close returned with %d of %d tasks done", done.Load(), tasks)
	}
}

func TestExecutorStealHappensUnderImbalance(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no CPU")
	}
	// Many quick tasks through few workers: batch grabs load one
	// worker's deque and its siblings relieve it. On a 1-CPU machine
	// steals still happen — goroutine interleaving, not parallelism,
	// drives them — but assert only that the counters are consistent,
	// not a specific steal count.
	e := New(4)
	var wg sync.WaitGroup
	const tasks = 20000
	wg.Add(tasks)
	fn := func(any) { wg.Done() }
	for i := 0; i < tasks; i++ {
		e.Submit(Task{Fn: fn})
	}
	wg.Wait()
	e.Close()
	st := e.Stats()
	if st.Grabbed+st.Pops < tasks/2 {
		t.Fatalf("counters inconsistent: %v", st)
	}
}

func TestDefaultIsSharedAndSized(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default not a singleton")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default workers = %d, GOMAXPROCS = %d", a.Workers(), runtime.GOMAXPROCS(0))
	}
}
