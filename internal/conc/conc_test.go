package conc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterCeiling(t *testing.T) {
	l := NewLimiter(3)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Acquire()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			l.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d over limit 3", p)
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after drain", l.InUse())
	}
}

// TestLimiterGrowWakesAllWaiters is the regression test for the
// SetLimit/Release semantics: Release wakes one waiter (a release frees
// one slot), so a grow that legalises several waiters at once MUST
// broadcast — a Signal-based SetLimit strands all but one of them until
// unrelated releases trickle in, which deadlocks when no holder
// remains.
func TestLimiterGrowWakesAllWaiters(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire() // occupy the only slot
	const waiters = 8
	var entered sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < waiters; i++ {
		entered.Add(1)
		go func() {
			l.Acquire()
			admitted.Add(1)
			entered.Done()
		}()
	}
	// Let every goroutine reach the wait loop.
	for l.InUse() != 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	// Grow with NO release: only SetLimit's broadcast can admit them.
	l.SetLimit(waiters + 1)
	done := make(chan struct{})
	go func() { entered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("grow stranded waiters: %d of %d admitted", admitted.Load(), waiters)
	}
}

// TestLimiterShrinkGrowChurn hammers SetLimit against a pool of
// workers: no deadlock, and the limiter drains to zero.
func TestLimiterShrinkGrowChurn(t *testing.T) {
	l := NewLimiter(4)
	const items = 2000
	var processed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for processed.Add(1) <= items {
				l.Acquire()
				l.Release()
			}
		}()
	}
	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		limits := []int{1, 8, 2, 16, 1, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				l.SetLimit(limits[i%len(limits)])
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	resizer.Wait()
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after drain", l.InUse())
	}
}

func TestLimiterShrinkTakesEffect(t *testing.T) {
	l := NewLimiter(4)
	for i := 0; i < 4; i++ {
		l.Acquire()
	}
	l.SetLimit(1)
	acquired := make(chan struct{})
	go func() {
		l.Acquire()
		close(acquired)
	}()
	// Three releases leave 1 in use — at the new limit, so the waiter
	// must stay blocked.
	for i := 0; i < 3; i++ {
		l.Release()
	}
	select {
	case <-acquired:
		t.Fatal("acquired above shrunken limit")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release() // now 0 in use: the waiter gets the single slot
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted after drain")
	}
	l.Release()
}

func TestPoolProcessesAllAndBoundsConcurrency(t *testing.T) {
	lim := NewLimiter(3)
	var cur, peak, sum atomic.Int64
	pool := NewPool(lim, 8, func(v int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		sum.Add(int64(v))
		cur.Add(-1)
	})
	const items = 500
	want := int64(0)
	for i := 0; i < items; i++ {
		pool.Submit(i)
		want += int64(i)
	}
	pool.Close()
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d over limit 3", p)
	}
	if lim.InUse() != 0 {
		t.Fatalf("InUse = %d after Close", lim.InUse())
	}
}

func TestPoolGrowsWithResize(t *testing.T) {
	lim := NewLimiter(1)
	release := make(chan struct{})
	var cur, peak atomic.Int64
	pool := NewPool(lim, 0, func(v int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		<-release
		cur.Add(-1)
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		lim.SetLimit(4)
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	for i := 0; i < 8; i++ {
		pool.Submit(i)
	}
	pool.Close()
	if p := peak.Load(); p < 2 || p > 4 {
		t.Fatalf("peak concurrency %d, want in [2,4] after grow to 4", p)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if c, mean, max := m.Snapshot(); c != 0 || mean != 0 || max != 0 {
		t.Fatalf("zero meter snapshot = %d,%v,%v", c, mean, max)
	}
	m.Record(2 * time.Millisecond)
	m.Record(4 * time.Millisecond)
	m.Record(3 * time.Millisecond)
	c, mean, max := m.Snapshot()
	if c != 3 || mean != 3*time.Millisecond || max != 4*time.Millisecond {
		t.Fatalf("snapshot = %d,%v,%v", c, mean, max)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	c, _, max := m.Snapshot()
	if c != 8000 {
		t.Fatalf("count = %d", c)
	}
	if max != 8*time.Microsecond {
		t.Fatalf("max = %v", max)
	}
}
