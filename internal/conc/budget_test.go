package conc

import "testing"

func TestBudgetSoleLeaseGetsAll(t *testing.T) {
	b := NewWorkerBudget(8)
	l := b.Lease(1)
	if got := l.Cap(); got != 8 {
		t.Fatalf("sole lease cap=%d, want 8", got)
	}
	l.Release()
	if b.Leases() != 0 {
		t.Fatalf("leases=%d after release", b.Leases())
	}
}

func TestBudgetEqualSplit(t *testing.T) {
	b := NewWorkerBudget(8)
	l1, l2 := b.Lease(1), b.Lease(1)
	if l1.Cap() != 4 || l2.Cap() != 4 {
		t.Fatalf("equal weights over 8 workers: %d/%d, want 4/4", l1.Cap(), l2.Cap())
	}
	l2.Release()
	if got := l1.Cap(); got != 8 {
		t.Fatalf("after the peer released, cap=%d, want the whole budget", got)
	}
}

func TestBudgetWeightsAndFloor(t *testing.T) {
	b := NewWorkerBudget(10)
	heavy, light := b.Lease(3), b.Lease(1)
	if heavy.Cap() != 7 || light.Cap() != 3 {
		t.Fatalf("3:1 weights over 10: %d/%d, want 7/3", heavy.Cap(), light.Cap())
	}
	// Caps always sum to the total and never drop below 1 per lease,
	// even when leases outnumber workers.
	tiny := NewWorkerBudget(2)
	leases := []*BudgetLease{tiny.Lease(1), tiny.Lease(1), tiny.Lease(1)}
	for i, l := range leases {
		if l.Cap() < 1 {
			t.Fatalf("lease %d starved: cap=%d", i, l.Cap())
		}
	}
}

func TestBudgetReleaseTwice(t *testing.T) {
	b := NewWorkerBudget(4)
	l := b.Lease(1)
	other := b.Lease(1)
	l.Release()
	l.Release() // must be a no-op
	if got := other.Cap(); got != 4 {
		t.Fatalf("surviving lease cap=%d, want 4", got)
	}
}
