package conc

import "sync"

// WorkerBudget splits one total worker count among concurrent live
// tenants by weight — the live runtime's counterpart of the simulated
// cluster's capacity arbiter. Each concurrent pipeline run takes a
// Lease; Cap answers "how many workers may this tenant use right now"
// under largest-remainder apportionment of the total over the live
// leases (every lease gets at least one). Leases joining and leaving
// re-divide the budget implicitly: Cap is computed against the current
// lease set on every call, so the per-tenant adaptive controllers pick
// up the new split at their next decision tick.
type WorkerBudget struct {
	mu     sync.Mutex
	total  int
	leases []*BudgetLease
}

// NewWorkerBudget returns a budget of total workers (minimum 1).
func NewWorkerBudget(total int) *WorkerBudget {
	if total < 1 {
		total = 1
	}
	return &WorkerBudget{total: total}
}

// Total returns the budget's worker count.
func (b *WorkerBudget) Total() int { return b.total }

// Leases returns the number of live leases.
func (b *WorkerBudget) Leases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.leases)
}

// BudgetLease is one tenant's claim on a WorkerBudget.
type BudgetLease struct {
	b      *WorkerBudget
	weight float64
}

// Lease joins the budget with the given fairness weight (≤0 means 1).
// Release it when the tenant's run ends.
func (b *WorkerBudget) Lease(weight float64) *BudgetLease {
	if weight <= 0 {
		weight = 1
	}
	l := &BudgetLease{b: b, weight: weight}
	b.mu.Lock()
	b.leases = append(b.leases, l)
	b.mu.Unlock()
	return l
}

// Release returns the lease's share to the pool. Releasing twice is a
// no-op.
func (l *BudgetLease) Release() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.leases {
		if x == l {
			b.leases = append(b.leases[:i], b.leases[i+1:]...)
			return
		}
	}
}

// Cap returns the lease's current worker allowance: its weighted
// largest-remainder share of the total, at least 1. A released or
// sole lease gets the whole budget.
func (l *BudgetLease) Cap() int {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.leases)
	if n <= 1 {
		return b.total
	}
	weightSum := 0.0
	for _, x := range b.leases {
		weightSum += x.weight
	}
	// Floor of one worker per lease; the remainder apportioned by
	// weight, leftovers to the largest fractional parts (earlier lease
	// on ties).
	extra := b.total - n
	if extra < 0 {
		extra = 0
	}
	caps := make([]int, n)
	fracs := make([]float64, n)
	assigned := 0
	self := -1
	for i, x := range b.leases {
		share := float64(extra) * x.weight / weightSum
		w := int(share)
		caps[i] = 1 + w
		fracs[i] = share - float64(w)
		assigned += w
		if x == l {
			self = i
		}
	}
	for assigned < extra {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		caps[best]++
		fracs[best] = -1
		assigned++
	}
	if self < 0 {
		return b.total // released mid-call: no longer constrained
	}
	return caps[self]
}
