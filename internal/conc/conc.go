// Package conc provides the small concurrency primitives shared by the
// live skeletons (pipeline and farm): a resizable concurrency limiter
// and an atomic service-time meter. Both are tuned for the per-item hot
// path — the limiter wakes exactly one waiter per release instead of
// broadcasting to all of them, and the meter records a sample with
// three atomic operations instead of taking a mutex.
package conc

import (
	"sync"
	"sync/atomic"
	"time"
)

// Limiter is a resizable concurrency limiter: Acquire blocks while the
// number of holders is at or above the current limit. SetLimit may
// shrink or grow the limit while goroutines hold or wait; shrinking
// takes effect as holders release, growing wakes every waiter so all
// newly legal slots fill at once.
type Limiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	inUse int
}

// NewLimiter returns a limiter admitting n concurrent holders.
func NewLimiter(n int) *Limiter {
	l := &Limiter{limit: n}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Acquire blocks until a slot is free, then takes it, returning the
// number of slots now held (this one included). The count lets a
// dispatcher size a worker pool without a second lock acquisition.
func (l *Limiter) Acquire() int {
	l.mu.Lock()
	for l.inUse >= l.limit {
		l.cond.Wait()
	}
	l.inUse++
	n := l.inUse
	l.mu.Unlock()
	return n
}

// Release frees a slot, waking one waiter. Waking exactly one is
// enough: a release frees exactly one slot, and every waiter re-checks
// the limit under the mutex, so a waiter woken into a shrunken limit
// simply waits again. Resize wake-ups are SetLimit's job.
func (l *Limiter) Release() {
	l.mu.Lock()
	l.inUse--
	l.cond.Signal()
	l.mu.Unlock()
}

// SetLimit resizes the limiter. It must broadcast, not signal: growing
// from n to n+k legalises k waiters at once, and waking only one would
// strand the rest until the next Release dribbles them in.
func (l *Limiter) SetLimit(n int) {
	l.mu.Lock()
	l.limit = n
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Limit returns the current limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// InUse returns the number of currently held slots.
func (l *Limiter) InUse() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Pool is a lazily-grown pool of persistent workers bounded by a
// Limiter: Submit admits an item through the limiter, growing the
// pool by one worker whenever every live worker is busy, so the pool
// converges on the limit's high-water mark and no goroutine is ever
// spawned per item in steady state.
//
// Submit must be called from a single dispatcher goroutine; workers
// run the process function concurrently. The limiter may be resized
// while the pool runs. Close after the last Submit; it waits for all
// submitted items to finish processing.
type Pool[T any] struct {
	lim     *Limiter
	work    chan T
	workers sync.WaitGroup
	spawned int
	process func(T)
}

// NewPool builds a pool whose workers run process on each submitted
// item. The buffer lets the dispatcher run ahead of the workers; the
// limiter, not the buffer, bounds concurrency.
func NewPool[T any](lim *Limiter, buffer int, process func(T)) *Pool[T] {
	return &Pool[T]{lim: lim, work: make(chan T, buffer), process: process}
}

// Submit blocks until the limiter admits the item, then queues it for
// a worker. The worker releases the limiter slot when process returns.
func (p *Pool[T]) Submit(v T) {
	if inUse := p.lim.Acquire(); p.spawned < inUse {
		// Fewer workers than admitted in-flight items: grow by one.
		p.workers.Add(1)
		go p.worker()
		p.spawned++
	}
	p.work <- v
}

func (p *Pool[T]) worker() {
	defer p.workers.Done()
	for v := range p.work {
		p.process(v)
		p.lim.Release()
	}
}

// Close stops intake and waits for every submitted item to finish.
func (p *Pool[T]) Close() {
	close(p.work)
	p.workers.Wait()
}

// Meter is a goroutine-safe service-time accumulator with atomic
// fields: count, sum, and max of recorded durations. The zero value is
// ready for use.
type Meter struct {
	count atomic.Int64
	sumNs atomic.Int64
	maxNs atomic.Int64
}

// Record adds one sample.
func (m *Meter) Record(d time.Duration) {
	ns := int64(d)
	m.count.Add(1)
	m.sumNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// RecordN adds n samples that completed together in total time d — the
// batched boundary's one-call-per-batch counterpart of Record. The
// count grows by n and the sum by d, so per-item means diffed from
// Totals stay correct at any grain; the max is compared against the
// batch's per-item mean, because the batch path cannot see individual
// item times and charging the whole batch duration as one sample's max
// would make larger grains look pathologically slow.
func (m *Meter) RecordN(n int64, d time.Duration) {
	if n <= 0 {
		return
	}
	m.count.Add(n)
	m.sumNs.Add(int64(d))
	per := int64(d) / n
	for {
		cur := m.maxNs.Load()
		if per <= cur || m.maxNs.CompareAndSwap(cur, per) {
			return
		}
	}
}

// Totals returns the cumulative sample count and summed service time.
// Samplers that want windowed means (the live adaptive sensor) diff
// two Totals readings instead of re-deriving them from the lossy
// rounded mean Snapshot reports. The two loads are individually atomic
// but not mutually consistent — fine for monitoring reads.
func (m *Meter) Totals() (count int64, sum time.Duration) {
	return m.count.Load(), time.Duration(m.sumNs.Load())
}

// Snapshot returns the sample count, mean, and max. The three loads are
// individually atomic but not mutually consistent — fine for the
// monitoring read-side, which only ever sees a slightly stale mean.
func (m *Meter) Snapshot() (count int, mean, max time.Duration) {
	n := m.count.Load()
	if n == 0 {
		return 0, 0, 0
	}
	return int(n), time.Duration(m.sumNs.Load() / n), time.Duration(m.maxNs.Load())
}
