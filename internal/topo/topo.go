// Package topo defines the stage-graph intermediate representation
// shared by every layer of the system: the analytic model predicts on
// it, the scheduler searches mappings over its stages, the simulated
// executor routes completions along its edges, and the live runtime
// wires goroutine stages along them.
//
// A Graph is a DAG of stages listed in topological order. Data-flow
// semantics are carried by the node degrees:
//
//   - out-degree 1: plain forwarding (the linear-pipeline case);
//   - out-degree > 1: a SPLIT — each completed item emits one part
//     along every out-edge, and the parts travel independently;
//   - in-degree > 1: a MERGE — the stage joins exactly one part per
//     in-edge for each item before it starts service, so the skeleton
//     stays 1-for-1 end to end (one output leaves the exit stage per
//     item admitted at the entry stage).
//
// Each edge is typed by its payload size (Bytes per item), which is
// what the model charges to links and the executor pays as a transfer.
//
// Structural contract (enforced by Validate): stages are listed in a
// topological order (every edge goes from a lower to a higher index),
// there is exactly one entry stage (index 0) and one exit stage (the
// last index), every stage lies on some entry→exit path, and edges are
// not duplicated. The linear pipelines of the original reproduction
// are the special case where the edge set is exactly {i → i+1}; for
// them Linearize is the identity, and consumers keep their historical
// (bit-for-bit deterministic) behaviour.
package topo

import (
	"fmt"
	"strings"
)

// Stage is one node of the graph: a unit of per-item computation.
type Stage struct {
	// Name labels the stage in tables and logs.
	Name string
	// Work is the mean per-item service demand in reference-seconds
	// (seconds on an unloaded speed-1.0 node).
	Work float64
	// OutBytes is the default size of the message each processed item
	// emits (used for edges that do not override Bytes, and for the
	// exit stage's message to the sink).
	OutBytes float64
	// Replicable marks stages that keep no inter-item state and may be
	// farmed across several nodes by the adaptivity engine.
	Replicable bool
}

// Edge is one typed data-flow arc between two stages.
type Edge struct {
	// From and To are stage indices; From < To (stages are listed in
	// topological order).
	From, To int
	// Bytes is the per-item payload size on this edge. The Chain and
	// facade builders default it to the producing stage's OutBytes.
	Bytes float64
}

// Graph is a validated stage DAG. Build with Chain or New; call
// Validate before handing a hand-assembled Graph to a consumer.
type Graph struct {
	Stages []Stage
	Edges  []Edge

	// Derived adjacency, built lazily by the accessors below and by
	// Validate. Indexed by stage; values are indices into Edges.
	out, in [][]int
}

// Chain builds the linear pipeline graph: stage i feeds stage i+1,
// each edge carrying the producer's OutBytes. This is the identity
// embedding of the original linear model into the IR.
func Chain(stages ...Stage) *Graph {
	g := &Graph{Stages: append([]Stage(nil), stages...)}
	for i := 0; i+1 < len(stages); i++ {
		g.Edges = append(g.Edges, Edge{From: i, To: i + 1, Bytes: stages[i].OutBytes})
	}
	return g
}

// New assembles a graph from stages and explicit edges. Edges with
// Bytes < 0 inherit the producing stage's OutBytes. The result is
// validated.
func New(stages []Stage, edges []Edge) (*Graph, error) {
	g := &Graph{
		Stages: append([]Stage(nil), stages...),
		Edges:  append([]Edge(nil), edges...),
	}
	for i := range g.Edges {
		if g.Edges[i].Bytes < 0 {
			if f := g.Edges[i].From; f >= 0 && f < len(g.Stages) {
				g.Edges[i].Bytes = g.Stages[f].OutBytes
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// NumStages returns the stage count.
func (g *Graph) NumStages() int { return len(g.Stages) }

// TotalWork returns the summed per-item service demand across stages.
func (g *Graph) TotalWork() float64 {
	s := 0.0
	for _, st := range g.Stages {
		s += st.Work
	}
	return s
}

// buildAdj (re)derives the adjacency lists from Edges.
func (g *Graph) buildAdj() {
	n := len(g.Stages)
	g.out = make([][]int, n)
	g.in = make([][]int, n)
	for ei, e := range g.Edges {
		if e.From >= 0 && e.From < n {
			g.out[e.From] = append(g.out[e.From], ei)
		}
		if e.To >= 0 && e.To < n {
			g.in[e.To] = append(g.in[e.To], ei)
		}
	}
}

func (g *Graph) adjReady() {
	if g.out == nil || len(g.out) != len(g.Stages) {
		g.buildAdj()
	}
}

// OutEdges returns the indices (into Edges) of stage i's out-edges, in
// edge-list order. Shared slice; do not mutate.
func (g *Graph) OutEdges(i int) []int { g.adjReady(); return g.out[i] }

// InEdges returns the indices (into Edges) of stage i's in-edges, in
// edge-list order. Shared slice; do not mutate.
func (g *Graph) InEdges(i int) []int { g.adjReady(); return g.in[i] }

// OutDegree returns the number of out-edges of stage i.
func (g *Graph) OutDegree(i int) int { g.adjReady(); return len(g.out[i]) }

// InDegree returns the number of in-edges of stage i.
func (g *Graph) InDegree(i int) int { g.adjReady(); return len(g.in[i]) }

// Entry returns the entry stage index (always 0 on a valid graph).
func (g *Graph) Entry() int { return 0 }

// Exit returns the exit stage index (always NumStages-1 on a valid
// graph).
func (g *Graph) Exit() int { return len(g.Stages) - 1 }

// InBytesOf returns the total per-item payload entering stage i over
// its in-edges (for the entry stage, which has none, it returns the
// provided source message size). It is what a consumer pays to move a
// fully-joined item of that stage, e.g. on a migration.
func (g *Graph) InBytesOf(i int, sourceBytes float64) float64 {
	g.adjReady()
	if len(g.in[i]) == 0 {
		return sourceBytes
	}
	b := 0.0
	for _, ei := range g.in[i] {
		b += g.Edges[ei].Bytes
	}
	return b
}

// Linear reports whether the graph is the plain chain {i → i+1}: the
// fast path on which every consumer preserves the historical linear-
// pipeline behaviour (and its golden traces) bit for bit.
func (g *Graph) Linear() bool {
	if len(g.Edges) != len(g.Stages)-1 {
		return false
	}
	for i, e := range g.Edges {
		if e.From != i || e.To != i+1 {
			return false
		}
	}
	return true
}

// Linearize returns the stages in topological order. Because Validate
// requires the stage list itself to be topologically ordered, this is
// always the identity permutation; the boolean reports whether the
// graph is moreover a pure chain (no splits or merges), in which case
// the order is the unique data-flow order of the original linear
// model.
func (g *Graph) Linearize() ([]int, bool) {
	order := make([]int, len(g.Stages))
	for i := range order {
		order[i] = i
	}
	return order, g.Linear()
}

// Validate checks the structural contract documented on the package.
func (g *Graph) Validate() error {
	n := len(g.Stages)
	if n == 0 {
		return fmt.Errorf("topo: graph has no stages")
	}
	for i, st := range g.Stages {
		if st.Work < 0 {
			return fmt.Errorf("topo: stage %d (%s) has negative work %v", i, st.Name, st.Work)
		}
		if st.OutBytes < 0 {
			return fmt.Errorf("topo: stage %d (%s) has negative output size %v", i, st.Name, st.OutBytes)
		}
	}
	seen := make(map[[2]int]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("topo: edge %d→%d out of range (stages: %d)", e.From, e.To, n)
		}
		if e.From >= e.To {
			return fmt.Errorf("topo: edge %d→%d violates topological stage order (need From < To)", e.From, e.To)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("topo: edge %d→%d has negative payload %v", e.From, e.To, e.Bytes)
		}
		k := [2]int{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("topo: duplicate edge %d→%d", e.From, e.To)
		}
		seen[k] = true
	}
	g.buildAdj()
	if n == 1 {
		return nil
	}
	// Exactly one entry (stage 0) and one exit (stage n-1); everything
	// lies on an entry→exit path.
	for i := 0; i < n; i++ {
		if len(g.in[i]) == 0 && i != 0 {
			return fmt.Errorf("topo: stage %d (%s) is unreachable (no in-edges; only stage 0 may be the entry)", i, g.Stages[i].Name)
		}
		if len(g.out[i]) == 0 && i != n-1 {
			return fmt.Errorf("topo: stage %d (%s) is a dead end (no out-edges; only the last stage may be the exit)", i, g.Stages[i].Name)
		}
	}
	if len(g.in[0]) != 0 {
		// Impossible given From < To, but keep the invariant explicit.
		return fmt.Errorf("topo: entry stage 0 has in-edges")
	}
	if len(g.out[n-1]) != 0 {
		return fmt.Errorf("topo: exit stage %d has out-edges", n-1)
	}
	return nil
}

// String renders the graph compactly: "a → {b, c} → d" style per-edge
// listing, for logs and experiment tables.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(%d stages", len(g.Stages))
	if g.Linear() {
		b.WriteString(", linear")
	}
	b.WriteString("): ")
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s", g.name(e.From), g.name(e.To))
	}
	return b.String()
}

func (g *Graph) name(i int) string {
	if g.Stages[i].Name != "" {
		return g.Stages[i].Name
	}
	return fmt.Sprintf("#%d", i)
}

// Diamond builds the canonical fan-out/fan-in fixture used by tests
// and experiment F8: head → {k parallel branch stages} → tail. Each
// branch stage gets branchWork demand; edge payloads default to the
// producers' OutBytes.
func Diamond(head Stage, branches []Stage, tail Stage) (*Graph, error) {
	if len(branches) < 2 {
		return nil, fmt.Errorf("topo: diamond needs at least 2 branches, got %d", len(branches))
	}
	stages := make([]Stage, 0, len(branches)+2)
	stages = append(stages, head)
	stages = append(stages, branches...)
	stages = append(stages, tail)
	var edges []Edge
	tailIdx := len(stages) - 1
	for bi := range branches {
		b := 1 + bi
		edges = append(edges, Edge{From: 0, To: b, Bytes: head.OutBytes})
		edges = append(edges, Edge{From: b, To: tailIdx, Bytes: branches[bi].OutBytes})
	}
	return New(stages, edges)
}
