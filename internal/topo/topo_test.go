package topo

import (
	"strings"
	"testing"
)

func stage(name string, work, out float64) Stage {
	return Stage{Name: name, Work: work, OutBytes: out, Replicable: true}
}

func TestChainIsLinearAndValid(t *testing.T) {
	g := Chain(stage("a", 0.1, 100), stage("b", 0.2, 200), stage("c", 0.3, 0))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Linear() {
		t.Fatal("chain not recognised as linear")
	}
	order, chain := g.Linearize()
	if !chain {
		t.Fatal("Linearize: chain flag false")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("Linearize order[%d] = %d, want identity", i, v)
		}
	}
	if g.Edges[0].Bytes != 100 || g.Edges[1].Bytes != 200 {
		t.Fatalf("chain edge bytes = %+v", g.Edges)
	}
	if g.Entry() != 0 || g.Exit() != 2 {
		t.Fatalf("entry/exit = %d/%d", g.Entry(), g.Exit())
	}
}

func TestSingleStageGraph(t *testing.T) {
	g := Chain(stage("only", 0.5, 10))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Linear() {
		t.Fatal("single stage should be linear")
	}
}

func TestDiamond(t *testing.T) {
	g, err := Diamond(
		stage("head", 0.1, 1000),
		[]Stage{stage("left", 0.3, 500), stage("right", 0.3, 700)},
		stage("tail", 0.1, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Linear() {
		t.Fatal("diamond reported linear")
	}
	if _, chain := g.Linearize(); chain {
		t.Fatal("Linearize chain flag true for diamond")
	}
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("head out-degree = %d", d)
	}
	if d := g.InDegree(3); d != 2 {
		t.Fatalf("tail in-degree = %d", d)
	}
	// Split edges carry the head's full message; the merge's inbound
	// payload is the sum of the branch parts.
	if got := g.InBytesOf(1, 0); got != 1000 {
		t.Fatalf("branch in-bytes = %v", got)
	}
	if got := g.InBytesOf(3, 0); got != 1200 {
		t.Fatalf("merge in-bytes = %v", got)
	}
	if got := g.InBytesOf(0, 42); got != 42 {
		t.Fatalf("entry in-bytes = %v", got)
	}
	if tw := g.TotalWork(); tw < 0.79 || tw > 0.81 {
		t.Fatalf("total work = %v", tw)
	}
	if s := g.String(); !strings.Contains(s, "head→left") || strings.Contains(s, "linear") {
		t.Fatalf("String = %q", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		stages []Stage
		edges  []Edge
		want   string
	}{
		{"empty", nil, nil, "no stages"},
		{"negative work", []Stage{{Name: "a", Work: -1}}, nil, "negative work"},
		{"edge out of range", []Stage{stage("a", 1, 0), stage("b", 1, 0)},
			[]Edge{{From: 0, To: 5}}, "out of range"},
		{"backward edge", []Stage{stage("a", 1, 0), stage("b", 1, 0)},
			[]Edge{{From: 1, To: 0}}, "topological"},
		{"self edge", []Stage{stage("a", 1, 0), stage("b", 1, 0)},
			[]Edge{{From: 0, To: 0}}, "topological"},
		{"duplicate edge", []Stage{stage("a", 1, 0), stage("b", 1, 0)},
			[]Edge{{From: 0, To: 1}, {From: 0, To: 1}}, "duplicate"},
		{"unreachable stage", []Stage{stage("a", 1, 0), stage("b", 1, 0), stage("c", 1, 0)},
			[]Edge{{From: 0, To: 2}}, "unreachable"},
		{"dead end", []Stage{stage("a", 1, 0), stage("b", 1, 0), stage("c", 1, 0)},
			[]Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 1, To: 1}}, "topological"},
		{"negative edge bytes", []Stage{stage("a", 1, 0), stage("b", 1, 0)},
			[]Edge{{From: 0, To: 1, Bytes: -5}}, "negative payload"},
	}
	for _, c := range cases {
		g := &Graph{Stages: c.stages, Edges: c.edges}
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}

	// A stage with out-edges but no in-edges besides the entry.
	g := &Graph{
		Stages: []Stage{stage("a", 1, 0), stage("mid", 1, 0), stage("z", 1, 0)},
		Edges:  []Edge{{From: 0, To: 2}, {From: 1, To: 2}},
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("second entry: err = %v", err)
	}
	// A dead-end interior stage.
	g = &Graph{
		Stages: []Stage{stage("a", 1, 0), stage("dead", 1, 0), stage("z", 1, 0)},
		Edges:  []Edge{{From: 0, To: 1}, {From: 0, To: 2}},
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "dead end") {
		t.Errorf("dead end: err = %v", err)
	}
}

func TestNewDefaultsEdgeBytes(t *testing.T) {
	g, err := New(
		[]Stage{stage("a", 1, 123), stage("b", 1, 0)},
		[]Edge{{From: 0, To: 1, Bytes: -1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].Bytes != 123 {
		t.Fatalf("defaulted bytes = %v", g.Edges[0].Bytes)
	}
}

func TestDiamondNeedsTwoBranches(t *testing.T) {
	if _, err := Diamond(stage("h", 1, 0), []Stage{stage("b", 1, 0)}, stage("t", 1, 0)); err == nil {
		t.Fatal("single-branch diamond accepted")
	}
}
