// Package rng provides a small, deterministic pseudo-random number
// generator and a battery of distributions used by the gridpipe
// workload generators and load traces.
//
// The generator is SplitMix64: it is fast, has a full 2^64 period per
// stream, passes the statistical batteries relevant for simulation
// workloads, and — unlike math/rand's global source — is trivially
// reproducible across runs and across goroutines (each component of the
// simulator derives its own stream from a root seed). Determinism is a
// hard requirement: every experiment in the harness must regenerate the
// exact same table from the same seed.
package rng

import "math"

// Rand is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New, which
// avalanche-mixes the seed so that nearby seeds yield unrelated streams.
type Rand struct {
	state uint64
	// cached second normal variate from the Box-Muller transform.
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded with seed. Two generators created with
// different seeds (even consecutive integers) produce statistically
// independent streams thanks to the SplitMix64 output mix.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Derive returns a new independent generator whose stream is a pure
// function of the parent seed and the given label. It is the way
// simulator components (one per grid node, one per trace, ...) obtain
// private streams without consuming numbers from the parent.
func (r *Rand) Derive(label uint64) *Rand {
	// Mix the label in with two rounds so Derive(1) and Derive(2)
	// diverge immediately.
	s := r.state + 0x9e3779b97f4a7c15*(label+1)
	s = mix(s)
	s = mix(s + 0xbf58476d1ce4e5b9)
	return &Rand{state: s}
}

// SeedFor derives the seed of an independent keyed sub-stream from a
// root seed: rng.New(SeedFor(root, label)) produces exactly the stream
// rng.New(root).Derive(label) does. Components that take a plain seed
// (work samplers, searchers, per-job arrival processes) use it so a
// multi-job run's randomness is a pure function of (root, label) — the
// cluster scheduler derives one label per job, which keeps every job's
// stream identical regardless of how jobs interleave on the grid.
func SeedFor(root uint64, label uint64) uint64 {
	return New(root).Derive(label).state
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is below 2^-40 for the n used in the simulator, but we
	// still use the high-bits multiply trick because it is branch-free.
	return int((uint64(uint32(r.Uint64())) * uint64(n)) >> 32)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Float64() * float64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, via the Box-Muller transform (the second variate
// of each pair is cached).
func (r *Rand) Normal(mean, stddev float64) float64 {
	if r.haveGauss {
		r.haveGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return mean + stddev*u*f
}

// LogNormal returns a log-normally distributed variate where the
// underlying normal has parameters mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto(shape, scale) variate with minimum value
// scale. Heavy-tailed service times in grid workloads are traditionally
// modelled with shape in (1, 2].
func (r *Rand) Pareto(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/shape)
}

// TruncNormal returns a normal variate clamped to [lo, hi]. Clamping
// (rather than rejection) is deliberate: load fractions must stay in
// bounds and the distortion is irrelevant for the traces generated.
func (r *Rand) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	return math.Min(hi, math.Max(lo, v))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place using the Fisher-Yates algorithm.
func Shuffle[T any](r *Rand, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Pick returns a uniformly random element of s. It panics on an empty
// slice.
func Pick[T any](r *Rand, s []T) T {
	if len(s) == 0 {
		panic("rng: Pick from empty slice")
	}
	return s[r.Intn(len(s))]
}
