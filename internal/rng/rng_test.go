package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d times in 1000 draws", same)
	}
}

func TestDeriveIndependent(t *testing.T) {
	root := New(7)
	a := root.Derive(0)
	b := root.Derive(1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams with different labels should differ")
	}
	// Deriving must not consume from the parent.
	p1 := New(7).Uint64()
	root2 := New(7)
	_ = root2.Derive(99)
	if root2.Uint64() != p1 {
		t.Fatal("Derive consumed parent state")
	}
}

func TestDeriveReproducible(t *testing.T) {
	a := New(7).Derive(5)
	b := New(7).Derive(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d never generated in 10000 draws", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const rate = 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean %v, want ~%v", mean, 1/rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const mu, sigma = 3.0, 2.0
	sum, sumsq := 0.0, 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.02 {
		t.Fatalf("normal mean %v, want ~%v", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.02 {
		t.Fatalf("normal stddev %v, want ~%v", math.Sqrt(variance), sigma)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal variate %v not positive", v)
		}
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(19)
	const shape, scale = 1.5, 2.0
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(shape, scale); v < scale {
			t.Fatalf("pareto variate %v below scale %v", v, scale)
		}
	}
}

func TestParetoMean(t *testing.T) {
	r := New(23)
	// shape > 1 so the mean exists: mean = shape*scale/(shape-1).
	const shape, scale = 3.0, 1.0
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		sum += r.Pareto(shape, scale)
	}
	want := shape * scale / (shape - 1)
	if math.Abs(sum/n-want) > 0.02 {
		t.Fatalf("pareto mean %v, want ~%v", sum/n, want)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for n := 1; n <= 20; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(37)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	Shuffle(r, s)
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 || len(s) != 8 {
		t.Fatalf("shuffle altered multiset: %v", s)
	}
}

func TestPick(t *testing.T) {
	r := New(41)
	s := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, s)]++
	}
	for _, k := range s {
		if counts[k] < 700 {
			t.Fatalf("Pick heavily biased: %v", counts)
		}
	}
}

func TestRangeProperty(t *testing.T) {
	r := New(43)
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		// Skip degenerate inputs and spans so wide that hi-lo
		// overflows; simulation parameters never approach 1e300.
		if !(lo < hi) || math.IsNaN(lo) || math.Abs(lo) > 1e150 || math.Abs(hi) > 1e150 {
			return true
		}
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(47)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[1] {
		t.Fatalf("rank 0 (%d) should dominate rank 1 (%d)", counts[0], counts[1])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(53)
	z := NewZipf(r, 7, 0.9)
	if z.N() != 7 {
		t.Fatalf("N = %d, want 7", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("zipf rank %d out of range", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {5, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for n=%d s=%v", c.n, c.s)
				}
			}()
			NewZipf(New(1), c.n, c.s)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(59)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) fired %v of the time", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal(0, 1)
	}
	_ = sink
}

// TestSeedForMatchesDerive pins the keyed-stream contract: a component
// seeded with SeedFor(root, label) produces exactly the stream
// New(root).Derive(label) does, so per-job sub-streams built from
// plain seeds stay independent of draw order anywhere else.
func TestSeedForMatchesDerive(t *testing.T) {
	for _, root := range []uint64{0, 1, 42, 1 << 60} {
		for label := uint64(0); label < 8; label++ {
			a := New(SeedFor(root, label))
			b := New(root).Derive(label)
			for i := 0; i < 16; i++ {
				if x, y := a.Uint64(), b.Uint64(); x != y {
					t.Fatalf("SeedFor(%d,%d) diverged from Derive at draw %d: %x vs %x", root, label, i, x, y)
				}
			}
		}
	}
	// Nearby labels must yield unrelated streams.
	if SeedFor(7, 0) == SeedFor(7, 1) {
		t.Fatal("adjacent labels collided")
	}
	if SeedFor(7, 0) == SeedFor(8, 0) {
		t.Fatal("adjacent roots collided")
	}
}
