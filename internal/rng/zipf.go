package rng

import "math"

// Zipf generates Zipf-distributed ranks in [0, n) with exponent s > 0.
// Rank k is drawn with probability proportional to 1/(k+1)^s. Grid
// workload skew (a few hot stages or hot inputs) is modelled with it.
//
// The implementation precomputes the CDF and samples by binary search,
// which is exact and fast for the n (≤ a few thousand) used in the
// simulator.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf returns a Zipf sampler over n ranks with exponent s.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	// Force the last entry to exactly 1 so search never falls off the end.
	cdf[n-1] = 1
	return &Zipf{r: r, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next Zipf-distributed rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
