package workload

import (
	"math"
	"testing"
)

// allProcesses builds one instance of every arrival family at the
// given mean rate and seed.
func allProcesses(rate float64, seed uint64) []ArrivalProcess {
	return []ArrivalProcess{
		NewPoisson(rate, seed),
		NewUniform(rate, 0.5, seed),
		NewBursty(rate/2, 2*rate, 20, 10, seed),
		NewDiurnal(rate, 0.6*rate, 120, 0, seed),
		NewPareto(rate, 1.5, seed),
	}
}

// Every process's empirical mean rate must land within tolerance of
// its configured Rate over a long stream. The heavy-tailed Pareto
// converges slowly (stable-law tails), so it gets a looser band.
func TestArrivalEmpiricalMeanRate(t *testing.T) {
	const rate = 2.0
	for _, p := range allProcesses(rate, 7) {
		const n = 200000
		total := 0.0
		for i := 0; i < n; i++ {
			gap := p.Next()
			if gap < 0 || math.IsNaN(gap) {
				t.Fatalf("%s: invalid gap %v", p.Name(), gap)
			}
			total += gap
		}
		if want := p.Rate(); math.Abs(want-rate) > 1e-9 {
			t.Errorf("%s: Rate() = %v, configured %v", p.Name(), want, rate)
		}
		empirical := float64(n) / total
		tol := 0.05
		if p.Name() == "pareto" {
			tol = 0.25
		}
		if math.Abs(empirical-rate)/rate > tol {
			t.Errorf("%s: empirical rate %v, want %v ± %.0f%%", p.Name(), empirical, rate, 100*tol)
		}
	}
}

// Same-seed streams must be bit-identical, across instances and across
// Reset.
func TestArrivalSameSeedIdentical(t *testing.T) {
	a := allProcesses(1.5, 99)
	b := allProcesses(1.5, 99)
	for i := range a {
		var gaps [500]float64
		for j := range gaps {
			gaps[j] = a[i].Next()
			if got := b[i].Next(); got != gaps[j] {
				t.Fatalf("%s: same-seed instances diverge at draw %d: %v vs %v", a[i].Name(), j, gaps[j], got)
			}
		}
		a[i].Reset()
		for j := range gaps {
			if got := a[i].Next(); got != gaps[j] {
				t.Fatalf("%s: Reset does not replay the stream at draw %d: %v vs %v", a[i].Name(), j, gaps[j], got)
			}
		}
	}
}

func TestArrivalDifferentSeedsDiverge(t *testing.T) {
	a := allProcesses(1.5, 1)
	b := allProcesses(1.5, 2)
	for i := range a {
		same := true
		for j := 0; j < 20; j++ {
			if a[i].Next() != b[i].Next() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produce the same stream", a[i].Name())
		}
	}
}

// Next must be allocation-free: the generator runs inside benchmark
// and simulation hot loops under the -maxallocs 0 gate.
func TestArrivalNextAllocationFree(t *testing.T) {
	for _, p := range allProcesses(3, 5) {
		allocs := testing.AllocsPerRun(200, func() { p.Next() })
		if allocs != 0 {
			t.Errorf("%s: Next allocates %v per call", p.Name(), allocs)
		}
	}
}

func TestNewArrivalFactory(t *testing.T) {
	for _, name := range ArrivalFamilies() {
		p, err := NewArrival(name, 2, 1)
		if err != nil {
			t.Fatalf("NewArrival(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewArrival(%q).Name() = %q", name, p.Name())
		}
		if math.Abs(p.Rate()-2) > 1e-9 {
			t.Errorf("%s: factory rate %v, want 2", name, p.Rate())
		}
	}
	if _, err := NewArrival("bogus", 1, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := NewArrival("poisson", 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestArrivalConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"poisson rate", func() { NewPoisson(0, 1) }},
		{"uniform rate", func() { NewUniform(-1, 0.5, 1) }},
		{"uniform spread", func() { NewUniform(1, 1, 1) }},
		{"bursty burst", func() { NewBursty(1, 0, 10, 10, 1) }},
		{"bursty sojourn", func() { NewBursty(1, 2, 0, 10, 1) }},
		{"diurnal amp", func() { NewDiurnal(1, 2, 120, 0, 1) }},
		{"pareto shape", func() { NewPareto(1, 1, 1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid parameter accepted", c.name)
				}
			}()
			c.fn()
		}()
	}
}

// The modulated processes must actually modulate: a bursty stream's
// gap distribution should be far more variable than Poisson at the
// same mean rate, and a diurnal stream's windowed rate should swing
// with the configured period.
func TestBurstyIsBurstier(t *testing.T) {
	cv2 := func(p ArrivalProcess, n int) float64 {
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			g := p.Next()
			sum += g
			sumsq += g * g
		}
		mean := sum / float64(n)
		return (sumsq/float64(n) - mean*mean) / (mean * mean)
	}
	const n = 100000
	pois := cv2(NewPoisson(1, 3), n)
	burst := cv2(NewBursty(0.2, 4, 30, 10, 3), n)
	if burst < 1.5*pois {
		t.Errorf("bursty gap CV² %v not clearly above poisson %v", burst, pois)
	}
}

func TestDiurnalModulation(t *testing.T) {
	// Rate 2 ± 1.8 with a 100 s period: count arrivals in the high and
	// low half-cycles over many periods and expect a clear imbalance.
	d := NewDiurnal(2, 1.8, 100, 0, 11)
	t1, high, low := 0.0, 0, 0
	for t1 < 20000 {
		t1 += d.Next()
		phase := math.Mod(t1, 100)
		if phase < 50 {
			high++ // sin > 0: above-base rate
		} else {
			low++
		}
	}
	if float64(high) < 1.5*float64(low) {
		t.Errorf("diurnal high-phase arrivals %d not clearly above low-phase %d", high, low)
	}
}
