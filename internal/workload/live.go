// Live-execution support: the bundled workloads' stage functions for
// the goroutine runtime, and the harness behind experiment F11 and
// adaptpipe -live.
//
// A grid pipeline's stage executes on a backing resource (a cluster
// node, a remote service); the live stage function models that as
// occupancy — the worker goroutine is held for the stage's service
// time, which inflates by 1/(1-load) when background load lands on the
// resource, exactly the CPU-availability semantics of the simulator's
// load traces (grid.Node.Load). Replicating a stage adds concurrent
// occupancy — the live counterpart of farming the stage across nodes —
// so throughput recovers when the controller folds reserve workers in.
//
// Injected load comes in two forms: SpikeLoad places background load
// on the victim stage's backing resource (deterministic, the F11
// scenario), and BgLoad additionally starts real CPU hogs in-process
// (meaningful contention colour on multi-core hosts).
package workload

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/liveadapt"
	"gridpipe/internal/pipeline"
)

// spinSink absorbs the spin kernels' results so the work cannot be
// optimised away.
var spinSink atomic.Uint64

// spinChunk is the spin quantum between the hogs' scheduling points
// (~tens of microseconds of xorshift).
const spinChunk = 1 << 14

// spin burns the given number of xorshift iterations of CPU.
func spin(iters int64) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := int64(0); i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Add(x)
}

// Resource models one stage's backing resource for live execution: a
// service whose response time inflates with the background load on it.
// SetLoad is safe to call while stage functions occupy the resource —
// it is how a live run injects the simulator's load-spike scenario.
type Resource struct {
	loadBits atomic.Uint64 // float64 bits of the current load in [0, 1)
}

// SetLoad sets the resource's background load (clamped to [0, 0.95]).
func (r *Resource) SetLoad(x float64) {
	r.loadBits.Store(math.Float64bits(math.Min(math.Max(x, 0), 0.95)))
}

// Load returns the current background load.
func (r *Resource) Load() float64 {
	return math.Float64frombits(r.loadBits.Load())
}

// Occupy holds the caller for base/(1-load): the stage's service time
// on this resource under its current background load.
func (r *Resource) Occupy(base time.Duration) {
	time.Sleep(time.Duration(float64(base) / (1 - r.Load())))
}

// Fn returns a live stage function occupying the resource for
// baseSeconds (unloaded) per item, passing its input through.
func (r *Resource) Fn(baseSeconds float64) func(ctx context.Context, v any) (any, error) {
	d := time.Duration(baseSeconds * float64(time.Second))
	return func(ctx context.Context, v any) (any, error) {
		r.Occupy(d)
		return v, nil
	}
}

// Auto is the explicit "pick the default" sentinel for
// LiveOptions.Victim (the heaviest stage) and
// LiveOptions.InjectAtItem (one third of the stream). The sentinel is
// negative so the zero values stay meaningful: stage 0 is a real
// victim and item 0 a real injection point — before the sentinel,
// zero meant "unset" and neither could be targeted.
const Auto = -1

// LiveOptions tunes RunLive.
type LiveOptions struct {
	// Policy drives the live controller (PolicyStatic = inert
	// baseline).
	Policy adaptive.Policy
	// Items is the stream length (default 2400).
	Items int
	// SpikeLoad is the background load injected onto the victim
	// stage's backing resource after InjectAtItem completions
	// (0 or negative = no spike; 0.6 inflates its service time 2.5×).
	SpikeLoad float64
	// Victim is the stage whose resource the spike hits: a stage index
	// (0 targets the first stage) or Auto for the heaviest stage.
	// Callers that inject should set it explicitly — the zero value
	// means stage 0 (it is only consulted when a spike or background
	// load is configured).
	Victim int
	// InjectAtItem is the completion count at which injection happens:
	// an item index (0 injects before the first completion) or Auto
	// for Items/3. Like Victim, the zero value is a real position.
	InjectAtItem int
	// BgLoad additionally starts this many in-process CPU hogs at the
	// injection point (default 0; real scheduler contention on top of
	// the resource spike).
	BgLoad int
	// MaxWorkers is the controller's total worker budget (default 16).
	// The initial deployment apportions half of it, so the other half
	// is the reserve capacity adaptation can fold in.
	MaxWorkers int
	// Interval is the controller's decision period (default 100 ms).
	Interval time.Duration
	// Scale is wall-seconds of stage occupancy per reference-second of
	// modelled work (default 0.025: the genome align stage's 0.35
	// ref-s becomes 8.75 ms).
	Scale float64
	// Batch makes batches of this many items the unit crossing stage
	// boundaries (0 = per-item transfer; Auto = start at 1 and let the
	// controller's granularity actuator walk it — requires a
	// non-static policy).
	Batch int
}

// LiveEvent is one resize the live controller performed.
type LiveEvent struct {
	Time         float64
	From, To     string
	PredictedOld float64
	PredictedNew float64
}

// LiveOutcome reports one live run.
type LiveOutcome struct {
	Items      int
	Elapsed    float64 // seconds
	Throughput float64 // items/s overall
	// ThroughputBefore/Under split the rate at the injection point
	// (both zero when nothing was injected).
	ThroughputBefore float64
	ThroughputUnder  float64
	Events           []LiveEvent
	Replicas         []int
	// Victim is the stage the spike hit (-1 when no spike).
	Victim int
	// Grain is the final boundary batch size (1 when unbatched).
	Grain int
}

// initialReplicas apportions budget workers over the spec's stages
// proportionally to their work (largest remainder, each stage at least
// one) — the deployment-time allocation a scheduler without run-time
// information would pick.
func initialReplicas(app App, budget int) []int {
	n := app.Spec.NumStages()
	reps := make([]int, n)
	total := app.Spec.TotalWork()
	if budget < n {
		budget = n
	}
	type frac struct {
		i int
		f float64
	}
	var rem []frac
	assigned := 0
	for i := 0; i < n; i++ {
		share := float64(budget) * app.Spec.Stages[i].Work / total
		w := int(share)
		if w < 1 {
			w = 1
		}
		reps[i] = w
		assigned += w
		rem = append(rem, frac{i: i, f: share - float64(w)})
	}
	sort.SliceStable(rem, func(a, b int) bool { return rem[a].f > rem[b].f })
	for j := 0; assigned < budget; j = (j + 1) % len(rem) {
		reps[rem[j].i]++
		assigned++
	}
	return reps
}

// heaviestStage returns the index of the stage with the largest work.
func heaviestStage(app App) int {
	best, bestW := 0, 0.0
	for i, st := range app.Spec.Stages {
		if st.Work > bestW {
			best, bestW = i, st.Work
		}
	}
	return best
}

// RunLive executes the app's pipeline live on this machine under the
// given adaptation policy: the scenario behind experiment F11 and
// adaptpipe -live. Each stage occupies its own backing Resource for
// its modelled work; at the injection point, SpikeLoad lands on the
// victim stage's resource (and BgLoad CPU hogs start, if requested).
// The outcome splits throughput at the injection point so the recovery
// the controller achieved is directly readable.
func RunLive(app App, opts LiveOptions) (LiveOutcome, error) {
	if opts.Items <= 0 {
		opts.Items = 2400
	}
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = 16
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.025
	}
	if opts.SpikeLoad < 0 {
		opts.SpikeLoad = 0
	}
	if opts.Victim < 0 {
		opts.Victim = heaviestStage(app)
	} else if opts.Victim >= app.Spec.NumStages() {
		return LiveOutcome{}, fmt.Errorf("workload: victim stage %d out of range (app has %d stages)", opts.Victim, app.Spec.NumStages())
	}
	if opts.InjectAtItem < 0 {
		opts.InjectAtItem = opts.Items / 3
	} else if opts.InjectAtItem >= opts.Items {
		return LiveOutcome{}, fmt.Errorf("workload: injection point %d beyond the %d-item stream", opts.InjectAtItem, opts.Items)
	}
	inject := opts.SpikeLoad > 0 || opts.BgLoad > 0

	reps := initialReplicas(app, opts.MaxWorkers/2)
	resources := make([]*Resource, app.Spec.NumStages())
	stages := make([]pipeline.Stage, app.Spec.NumStages())
	info := make([]liveadapt.StageInfo, len(stages))
	for i, st := range app.Spec.Stages {
		resources[i] = &Resource{}
		stages[i] = pipeline.Stage{
			Name:     st.Name,
			Fn:       resources[i].Fn(st.Work * opts.Scale),
			Replicas: reps[i],
			Buffer:   8,
		}
		info[i] = liveadapt.StageInfo{Name: st.Name, Weight: st.Work, Replicable: st.Replicable}
	}
	pl, err := pipeline.New(stages...)
	if err != nil {
		return LiveOutcome{}, err
	}
	cfg := liveadapt.Config{
		Policy:     opts.Policy,
		Interval:   opts.Interval,
		MaxWorkers: opts.MaxWorkers,
	}
	if opts.Batch != 0 {
		grain := opts.Batch
		if grain == Auto {
			if opts.Policy == adaptive.PolicyStatic {
				return LiveOutcome{}, fmt.Errorf("workload: Batch=Auto needs a non-static policy")
			}
			grain = 1
			cfg.AdaptGrain = true
		}
		if err := pl.EnableBatch(grain, 0); err != nil {
			return LiveOutcome{}, err
		}
	}
	ctrl, err := liveadapt.ForPipeline(pl, info, cfg)
	if err != nil {
		return LiveOutcome{}, err
	}

	in := make(chan any, 64)
	go func() {
		defer close(in)
		for i := 0; i < opts.Items; i++ {
			in <- i
		}
	}()
	out, errs := pl.Run(context.Background(), in)
	ctrl.Start()
	t0 := time.Now()
	var (
		seen     int
		injected bool
		bgStop   func()
		tBefore  float64
	)
	doInject := func() {
		injected = true
		tBefore = time.Since(t0).Seconds()
		if opts.SpikeLoad > 0 {
			resources[opts.Victim].SetLoad(opts.SpikeLoad)
		}
		if opts.BgLoad > 0 {
			bgStop = BackgroundLoad(opts.BgLoad)
		}
	}
	if inject && opts.InjectAtItem == 0 {
		// Item 0: the spike is present from the very first completion.
		doInject()
	}
	for v := range out {
		if v.(int) != seen {
			ctrl.Stop()
			return LiveOutcome{}, fmt.Errorf("workload: live run out of order (%v at %d)", v, seen)
		}
		seen++
		ctrl.NoteCompletion()
		if inject && !injected && seen == opts.InjectAtItem {
			doInject()
		}
	}
	ctrl.Stop()
	if bgStop != nil {
		bgStop()
	}
	if err := <-errs; err != nil {
		return LiveOutcome{}, err
	}
	elapsed := time.Since(t0).Seconds()

	outc := LiveOutcome{
		Items:      seen,
		Elapsed:    elapsed,
		Throughput: float64(seen) / elapsed,
		Replicas:   ctrl.Replicas(),
		Victim:     -1,
		Grain:      ctrl.Grain(),
	}
	if opts.SpikeLoad > 0 {
		outc.Victim = opts.Victim
	}
	if injected && elapsed > tBefore {
		if tBefore > 0 {
			outc.ThroughputBefore = float64(opts.InjectAtItem) / tBefore
		}
		outc.ThroughputUnder = float64(seen-opts.InjectAtItem) / (elapsed - tBefore)
	}
	for _, ev := range ctrl.Stats().Events {
		outc.Events = append(outc.Events, LiveEvent{
			Time:         ev.Time,
			From:         ev.From.String(),
			To:           ev.To.String(),
			PredictedOld: ev.PredictedOld,
			PredictedNew: ev.PredictedNew,
		})
	}
	return outc, nil
}

// BackgroundLoad starts n goroutines of injected CPU contention. The
// hogs run in pairs that ping-pong a token over a channel, spinning
// between handoffs: a stand-in for a co-tenant workload rather than a
// bare busy-loop, because the Go scheduler services channel-woken
// goroutines from the local run queue and largely starves goroutines
// that never block — a bare spinner would barely contend. The returned
// stop function halts the hogs and waits for their exit.
func BackgroundLoad(n int) (stop func()) {
	if n%2 == 1 {
		n++ // pairs
	}
	quit := make(chan struct{})
	done := make(chan struct{}, n)
	for i := 0; i < n; i += 2 {
		a, b := make(chan struct{}, 1), make(chan struct{}, 1)
		hog := func(in, out chan struct{}) {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-quit:
					return
				case <-in:
					spin(spinChunk)
					out <- struct{}{}
				}
			}
		}
		go hog(a, b)
		go hog(b, a)
		a <- struct{}{}
	}
	return func() {
		close(quit)
		for i := 0; i < n; i++ {
			<-done
		}
	}
}
