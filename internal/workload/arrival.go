// Open-loop arrival processes: the generators behind the traffic
// engine's job streams. An ArrivalProcess emits inter-arrival gaps —
// offered load that does not wait for the system, the open-loop
// discipline every serious load generator uses (closed loops hide
// saturation because a slow system slows its own clients down).
//
// Every process is a pure function of its seed: constructors derive
// private rng sub-streams (rng.Derive) for each random role (gaps,
// state sojourns, thinning, mix selection), so a same-seed stream
// replays bit-identically, and Next is allocation-free per event.

package workload

import (
	"fmt"
	"math"

	"gridpipe/internal/rng"
)

// Derive labels for the traffic engine's rng sub-streams: one label
// per random role so streams never interfere.
const (
	gapStream     = 0 // inter-arrival gap draws
	sojournStream = 1 // bursty on/off state durations
	thinStream    = 2 // non-homogeneous thinning acceptance
	mixStream     = 3 // GenerateTrace's job-mix selection
)

// ArrivalProcess generates the inter-arrival gaps of an open-loop
// traffic stream. Processes are sequential generators: each Next call
// advances the stream by the returned gap (rate-modulated processes
// track the stream time internally). Implementations are deterministic
// in their construction seed and allocation-free per Next call; Reset
// rewinds to the initial state so the same stream replays
// bit-identically.
type ArrivalProcess interface {
	// Name identifies the process family ("poisson", "uniform",
	// "bursty", "diurnal", "pareto").
	Name() string
	// Rate is the configured long-run mean arrival rate in events per
	// second of stream time.
	Rate() float64
	// Next returns the gap in seconds to the next arrival.
	Next() float64
	// Reset rewinds the process to its initial seeded state.
	Reset()
}

// Poisson is the memoryless arrival process: exponential inter-arrival
// gaps at a constant rate — the classic open-loop baseline.
type Poisson struct {
	rate float64
	seed uint64
	r    rng.Rand
}

// NewPoisson returns a Poisson process at the given mean rate. It
// panics on a non-positive rate.
func NewPoisson(rate float64, seed uint64) *Poisson {
	if rate <= 0 {
		panic("workload: NewPoisson with non-positive rate")
	}
	p := &Poisson{rate: rate, seed: seed}
	p.Reset()
	return p
}

// Name implements ArrivalProcess.
func (p *Poisson) Name() string { return "poisson" }

// Rate implements ArrivalProcess.
func (p *Poisson) Rate() float64 { return p.rate }

// Next implements ArrivalProcess.
func (p *Poisson) Next() float64 { return p.r.Exp(p.rate) }

// Reset implements ArrivalProcess.
func (p *Poisson) Reset() { p.r = *rng.New(p.seed).Derive(gapStream) }

// Uniform draws gaps uniformly in [m·(1-spread), m·(1+spread)] around
// the mean gap m = 1/rate: low-variance, near-paced traffic (a
// rate-limited client fleet).
type Uniform struct {
	rate   float64
	spread float64
	seed   uint64
	r      rng.Rand
}

// NewUniform returns a uniform-gap process at the given mean rate with
// the given relative spread in [0, 1). It panics on a non-positive
// rate or a spread outside [0, 1).
func NewUniform(rate, spread float64, seed uint64) *Uniform {
	if rate <= 0 {
		panic("workload: NewUniform with non-positive rate")
	}
	if spread < 0 || spread >= 1 {
		panic("workload: NewUniform spread outside [0, 1)")
	}
	u := &Uniform{rate: rate, spread: spread, seed: seed}
	u.Reset()
	return u
}

// Name implements ArrivalProcess.
func (u *Uniform) Name() string { return "uniform" }

// Rate implements ArrivalProcess.
func (u *Uniform) Rate() float64 { return u.rate }

// Next implements ArrivalProcess.
func (u *Uniform) Next() float64 {
	m := 1 / u.rate
	return u.r.Range(m*(1-u.spread), m*(1+u.spread))
}

// Reset implements ArrivalProcess.
func (u *Uniform) Reset() { u.r = *rng.New(u.seed).Derive(gapStream) }

// Bursty is a two-state Markov-modulated Poisson process: exponential
// sojourns in an off state (rate Base) and an on state (rate Burst) —
// a quiet stream punctuated by flash crowds.
type Bursty struct {
	base, burst     float64
	offMean, onMean float64
	seed            uint64
	gaps, sojourns  rng.Rand
	t, stateEnd     float64
	on              bool
}

// NewBursty returns an on/off modulated process: rate base during off
// sojourns (mean offMean seconds) and rate burst during on sojourns
// (mean onMean seconds). It panics on non-positive burst rate, sojourn
// means, or a negative base rate (a zero base — fully silent between
// bursts — is valid).
func NewBursty(base, burst, offMean, onMean float64, seed uint64) *Bursty {
	if base < 0 || burst <= 0 || offMean <= 0 || onMean <= 0 {
		panic("workload: NewBursty with invalid parameter")
	}
	b := &Bursty{base: base, burst: burst, offMean: offMean, onMean: onMean, seed: seed}
	b.Reset()
	return b
}

// Name implements ArrivalProcess.
func (b *Bursty) Name() string { return "bursty" }

// Rate implements ArrivalProcess: the time-weighted mean rate over the
// on/off cycle.
func (b *Bursty) Rate() float64 {
	return (b.base*b.offMean + b.burst*b.onMean) / (b.offMean + b.onMean)
}

// Next implements ArrivalProcess. Within a sojourn the process is
// Poisson at the state's rate; a draw that crosses the sojourn
// boundary is discarded and redrawn at the next state's rate (the
// exponential's memorylessness makes the truncation exact).
func (b *Bursty) Next() float64 {
	start := b.t
	for {
		rate := b.base
		if b.on {
			rate = b.burst
		}
		gap := math.Inf(1)
		if rate > 0 {
			gap = b.gaps.Exp(rate)
		}
		if b.t+gap <= b.stateEnd {
			b.t += gap
			return b.t - start
		}
		b.t = b.stateEnd
		b.on = !b.on
		mean := b.offMean
		if b.on {
			mean = b.onMean
		}
		b.stateEnd = b.t + b.sojourns.Exp(1/mean)
	}
}

// Reset implements ArrivalProcess.
func (b *Bursty) Reset() {
	root := rng.New(b.seed)
	b.gaps = *root.Derive(gapStream)
	b.sojourns = *root.Derive(sojournStream)
	b.t = 0
	b.on = false
	b.stateEnd = b.sojourns.Exp(1 / b.offMean)
}

// Diurnal is a sinusoidally rate-modulated Poisson process — the
// day/night cycle of user-facing traffic: rate(t) = Base +
// Amp·sin(2πt/Period + Phase), realised by thinning against the peak
// rate. Spans where the modulated rate dips to zero simply emit no
// arrivals.
type Diurnal struct {
	base, amp     float64
	period, phase float64
	peak          float64
	seed          uint64
	gaps, thin    rng.Rand
	t             float64
}

// NewDiurnal returns a sinusoid-modulated process with long-run mean
// rate base. It panics on non-positive base or period, a negative amp,
// or amp > base (the modulated rate would go negative for a nonzero
// fraction of the cycle — clamped tails would bias the mean).
func NewDiurnal(base, amp, period, phase float64, seed uint64) *Diurnal {
	if base <= 0 || period <= 0 || amp < 0 || amp > base {
		panic("workload: NewDiurnal with invalid parameter")
	}
	d := &Diurnal{base: base, amp: amp, period: period, phase: phase, peak: base + amp, seed: seed}
	d.Reset()
	return d
}

// Name implements ArrivalProcess.
func (d *Diurnal) Name() string { return "diurnal" }

// Rate implements ArrivalProcess: the sinusoid integrates to zero over
// a period, so the long-run mean rate is the base.
func (d *Diurnal) Rate() float64 { return d.base }

// Next implements ArrivalProcess (Lewis-Shedler thinning: candidate
// arrivals at the peak rate, accepted with probability rate(t)/peak).
func (d *Diurnal) Next() float64 {
	start := d.t
	for {
		d.t += d.gaps.Exp(d.peak)
		r := d.base + d.amp*math.Sin(2*math.Pi*d.t/d.period+d.phase)
		if r < 0 {
			r = 0
		}
		if d.thin.Float64()*d.peak < r {
			return d.t - start
		}
	}
}

// Reset implements ArrivalProcess.
func (d *Diurnal) Reset() {
	root := rng.New(d.seed)
	d.gaps = *root.Derive(gapStream)
	d.thin = *root.Derive(thinStream)
	d.t = 0
}

// ParetoArrivals draws heavy-tailed inter-arrival gaps from a
// Pareto(shape, scale) with the scale matched so the mean gap is
// 1/rate: long silences punctuated by dense arrival clumps, the
// self-similar traffic shape measured on real networks.
type ParetoArrivals struct {
	rate  float64
	shape float64
	scale float64
	seed  uint64
	r     rng.Rand
}

// NewPareto returns a heavy-tailed process at the given mean rate with
// the given tail shape. It panics on a non-positive rate or a shape
// <= 1 (the mean gap would be infinite and no rate could be matched).
func NewPareto(rate, shape float64, seed uint64) *ParetoArrivals {
	if rate <= 0 {
		panic("workload: NewPareto with non-positive rate")
	}
	if shape <= 1 {
		panic("workload: NewPareto with shape <= 1 (infinite mean gap)")
	}
	p := &ParetoArrivals{rate: rate, shape: shape, scale: (shape - 1) / (shape * rate), seed: seed}
	p.Reset()
	return p
}

// Name implements ArrivalProcess.
func (p *ParetoArrivals) Name() string { return "pareto" }

// Rate implements ArrivalProcess.
func (p *ParetoArrivals) Rate() float64 { return p.rate }

// Next implements ArrivalProcess.
func (p *ParetoArrivals) Next() float64 { return p.r.Pareto(p.shape, p.scale) }

// Reset implements ArrivalProcess.
func (p *ParetoArrivals) Reset() { p.r = *rng.New(p.seed).Derive(gapStream) }

// NewArrival builds a process by family name at the given mean rate
// with the family's default shape parameters: "poisson"; "uniform"
// (±50% spread); "bursty" (off rate rate/2 for a mean 20 s, burst
// rate 2·rate for a mean 10 s — same long-run mean); "diurnal"
// (amplitude 0.6·rate, 120 s period); "pareto" (tail shape 1.5). It
// is the factory behind the CLI -traffic/-stress flags.
func NewArrival(name string, rate float64, seed uint64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	switch name {
	case "poisson":
		return NewPoisson(rate, seed), nil
	case "uniform":
		return NewUniform(rate, 0.5, seed), nil
	case "bursty":
		return NewBursty(rate/2, 2*rate, 20, 10, seed), nil
	case "diurnal":
		return NewDiurnal(rate, 0.6*rate, 120, 0, seed), nil
	case "pareto":
		return NewPareto(rate, 1.5, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (have poisson, uniform, bursty, diurnal, pareto)", name)
	}
}

// ArrivalFamilies lists the process names NewArrival accepts, for CLI
// menus.
func ArrivalFamilies() []string {
	return []string{"poisson", "uniform", "bursty", "diurnal", "pareto"}
}
