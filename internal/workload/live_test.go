package workload

import (
	"strings"
	"testing"
)

// fastLive keeps the wall-clock cost of a live test run tiny.
func fastLive(items int) LiveOptions {
	return LiveOptions{
		Items:        items,
		MaxWorkers:   8,
		Scale:        0.0005,
		Victim:       Auto,
		InjectAtItem: Auto,
	}
}

// Victim: 0 must target the first stage — before the Auto sentinel,
// zero meant "unset" and stage 0 could never be spiked.
func TestRunLiveVictimZeroTargetsFirstStage(t *testing.T) {
	app := Genome() // heaviest stage is align (index 1), not 0
	opts := fastLive(60)
	opts.SpikeLoad = 0.5
	opts.Victim = 0
	out, err := RunLive(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Victim != 0 {
		t.Fatalf("Victim: 0 hit stage %d, want stage 0", out.Victim)
	}
}

func TestRunLiveAutoVictimPicksHeaviest(t *testing.T) {
	app := Genome()
	opts := fastLive(60)
	opts.SpikeLoad = 0.5
	out, err := RunLive(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := heaviestStage(app); out.Victim != want {
		t.Fatalf("Auto victim hit stage %d, want heaviest %d", out.Victim, want)
	}
}

// InjectAtItem: 0 injects before the first completion: the whole run
// executes under load, so there is no pre-injection throughput split.
func TestRunLiveInjectAtItemZero(t *testing.T) {
	opts := fastLive(60)
	opts.SpikeLoad = 0.5
	opts.Victim = 0
	opts.InjectAtItem = 0
	out, err := RunLive(Genome(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Items != 60 {
		t.Fatalf("completed %d of 60", out.Items)
	}
	if out.ThroughputBefore != 0 {
		t.Errorf("pre-injection throughput %v for injection at item 0", out.ThroughputBefore)
	}
	if out.ThroughputUnder <= 0 {
		t.Errorf("under-load throughput %v", out.ThroughputUnder)
	}
}

func TestRunLiveRejectsOutOfRange(t *testing.T) {
	opts := fastLive(10)
	opts.SpikeLoad = 0.5
	opts.Victim = 99
	if _, err := RunLive(Genome(), opts); err == nil || !strings.Contains(err.Error(), "victim") {
		t.Fatalf("out-of-range victim: %v", err)
	}
	opts = fastLive(10)
	opts.SpikeLoad = 0.5
	opts.InjectAtItem = 10
	if _, err := RunLive(Genome(), opts); err == nil || !strings.Contains(err.Error(), "injection") {
		t.Fatalf("out-of-range injection point: %v", err)
	}
}
