package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func genTrace(t *testing.T, seed uint64) Trace {
	t.Helper()
	p := NewPoisson(0.5, seed)
	mix := []MixEntry{
		{App: "genome", Share: 2, Items: 40},
		{App: "image", Share: 1, Items: 25, Weight: 2, Floor: 2},
	}
	tr, err := GenerateTrace(p, mix, 300, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	return tr
}

// Record → replay must round-trip the trace exactly, bit for bit:
// float64 times survive Go's JSON encoding unchanged.
func TestTraceRoundTripExact(t *testing.T) {
	tr := genTrace(t, 42)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip changed the trace:\n want %+v\n got  %+v", tr[:3], back[:3])
	}
	// And a second encode of the replayed trace is byte-identical.
	var buf2 bytes.Buffer
	if err := back.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := tr.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded trace differs byte-wise")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a, b := genTrace(t, 7), genTrace(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed generation differs")
	}
	c := genTrace(t, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same trace")
	}
}

func TestGenerateTraceMix(t *testing.T) {
	tr := genTrace(t, 3)
	counts := map[string]int{}
	prev := -1.0
	for _, ev := range tr {
		if ev.T < prev {
			t.Fatal("arrivals out of order")
		}
		prev = ev.T
		counts[ev.App]++
		switch ev.App {
		case "genome":
			if ev.Items != 40 || ev.Weight != 0 || ev.Floor != 0 {
				t.Fatalf("genome event got wrong shape: %+v", ev)
			}
		case "image":
			if ev.Items != 25 || ev.Weight != 2 || ev.Floor != 2 {
				t.Fatalf("image event got wrong shape: %+v", ev)
			}
		default:
			t.Fatalf("unexpected app %q", ev.App)
		}
	}
	if counts["genome"] == 0 || counts["image"] == 0 {
		t.Fatalf("mix not exercised: %v", counts)
	}
	// 2:1 shares — expect genome clearly ahead.
	if counts["genome"] <= counts["image"] {
		t.Errorf("share weighting ignored: %v", counts)
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := `# recorded by gridsim -traffic poisson
{"t":1,"app":"genome","items":10}

  # mid-stream comment
{"t":2.5,"app":"image","items":5,"weight":2}
`
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || tr[0].App != "genome" || tr[1].Weight != 2 {
		t.Fatalf("parsed %+v", tr)
	}
}

func TestTraceValidate(t *testing.T) {
	bad := []Trace{
		{{T: -1, App: "genome", Items: 1}},
		{{T: 2, App: "genome", Items: 1}, {T: 1, App: "genome", Items: 1}},
		{{T: 1, App: "bogus", Items: 1}},
		{{T: 1, App: "genome", Items: 0}},
		{{T: 1, App: "genome", Items: 1, Weight: -1}},
		{{T: 1, App: "genome", Items: 1, Floor: -1}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted: %+v", i, tr)
		}
	}
	if err := (Trace{}).Validate(); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

func TestTraceJobSpecs(t *testing.T) {
	tr := Trace{
		{T: 0, App: "genome", Items: 10},
		{T: 0, App: "image", Items: 20, Weight: 3, Floor: 2},
	}
	specs, err := tr.JobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Name != "genome-0" || specs[1].Name != "image-1" {
		t.Errorf("names %q, %q", specs[0].Name, specs[1].Name)
	}
	if specs[1].Weight != 3 || specs[1].FloorNodes != 2 || specs[1].Items != 20 {
		t.Errorf("spec fields lost: %+v", specs[1])
	}
	if specs[0].CV != Genome().CV {
		t.Errorf("app CV not carried: %v", specs[0].CV)
	}
	if err := specs[0].Validate(8); err != nil {
		t.Errorf("generated spec invalid: %v", err)
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	p := NewPoisson(1, 1)
	if _, err := GenerateTrace(nil, nil, 10, 1); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := GenerateTrace(p, nil, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateTrace(p, []MixEntry{{App: "bogus", Share: 1}}, 10, 1); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := GenerateTrace(p, []MixEntry{{App: "genome", Share: 0}}, 10, 1); err == nil {
		t.Error("zero share accepted")
	}
}
