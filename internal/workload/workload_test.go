package workload

import (
	"math"
	"testing"

	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
)

func TestBundledAppsValid(t *testing.T) {
	for _, app := range All() {
		if err := app.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if app.Spec.NumStages() < 3 {
			t.Errorf("%s: only %d stages", app.Name, app.Spec.NumStages())
		}
		if app.Spec.TotalWork() <= 0 {
			t.Errorf("%s: no work", app.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"image", "genome", "video"} {
		app, err := ByName(name)
		if err != nil || app.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, app.Name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSamplerMeanMatchesSpec(t *testing.T) {
	app := Genome()
	s := app.Sampler(7)
	const n = 20000
	for stage := range app.Spec.Stages {
		sum := 0.0
		for seq := 0; seq < n; seq++ {
			w := s(stage, seq)
			if w < 0 {
				t.Fatalf("negative work %v", w)
			}
			sum += w
		}
		mean := sum / n
		want := app.Spec.Stages[stage].Work
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("stage %d sampled mean %v, spec %v", stage, mean, want)
		}
	}
}

func TestSamplerCV(t *testing.T) {
	app := Image() // CV 0.25
	s := app.Sampler(3)
	const n = 30000
	var sum, sumsq float64
	for seq := 0; seq < n; seq++ {
		w := s(1, seq)
		sum += w
		sumsq += w * w
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	cv := sd / mean
	if math.Abs(cv-0.25) > 0.03 {
		t.Fatalf("sampled CV %v, want ~0.25", cv)
	}
}

func TestSamplerDeterministicPerItem(t *testing.T) {
	app := Video()
	a, b := app.Sampler(11), app.Sampler(11)
	for stage := range app.Spec.Stages {
		for seq := 0; seq < 50; seq++ {
			if a(stage, seq) != b(stage, seq) {
				t.Fatalf("sampler not deterministic at (%d,%d)", stage, seq)
			}
		}
	}
	// Independent of call order.
	c := app.Sampler(11)
	want := c(2, 40)
	d := app.Sampler(11)
	_ = d(0, 0)
	_ = d(1, 7)
	if got := d(2, 40); got != want {
		t.Fatalf("sampler depends on call order: %v vs %v", got, want)
	}
}

// Regression: the sampler's derive key used to be
// stage<<32 | uint32(seq), truncating seq to 32 bits — items whose
// sequence numbers differ by 2^32 drew identical demand under
// open-loop streams.
func TestSamplerNoSeqAliasing(t *testing.T) {
	app := Genome()
	s := app.Sampler(5)
	const wrap = 1 << 32
	for stage := range app.Spec.Stages {
		for _, seq := range []int{0, 1, 12345} {
			if s(stage, seq) == s(stage, seq+wrap) {
				t.Errorf("stage %d: seq %d and %d draw identical demand (32-bit aliasing)", stage, seq, seq+wrap)
			}
		}
	}
}

// Distinct (stage, seq) pairs must get distinct streams across the
// full 64-bit seq range, including the bit positions the old packed
// key could collide on.
func TestSamplerDistinctPairsDistinctDraws(t *testing.T) {
	app := Genome()
	s := app.Sampler(9)
	seqs := []int{0, 1, 2, 65535, 65536, 1 << 31, 1 << 32, 1<<32 + 1, 1 << 40}
	type pair struct{ stage, seq int }
	seen := map[float64]pair{}
	for stage := range app.Spec.Stages {
		for _, seq := range seqs {
			w := s(stage, seq)
			if prev, dup := seen[w]; dup {
				t.Errorf("(%d,%d) and (%d,%d) draw identical demand %v", prev.stage, prev.seq, stage, seq, w)
			}
			seen[w] = pair{stage, seq}
		}
	}
}

func TestDeterministicAppHasNilSampler(t *testing.T) {
	app := Balanced(4, 0.1, 100)
	if app.Sampler(1) != nil {
		t.Fatal("zero-CV app should use deterministic spec work")
	}
}

func TestBalanced(t *testing.T) {
	app := Balanced(6, 0.2, 500)
	if app.Spec.NumStages() != 6 {
		t.Fatalf("stages = %d", app.Spec.NumStages())
	}
	if app.Spec.TotalWork() != 1.2 {
		t.Fatalf("total work = %v", app.Spec.TotalWork())
	}
}

// End-to-end: every bundled app runs on a small grid and its measured
// throughput lands within a sane band of the model's prediction.
func TestAppsRunOnGrid(t *testing.T) {
	for _, app := range All() {
		g, err := grid.Homogeneous(app.Spec.NumStages(), 1, grid.LANLink)
		if err != nil {
			t.Fatal(err)
		}
		m := model.OneToOne(app.Spec.NumStages())
		pred, err := model.Predict(g, app.Spec, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{}
		e, err := exec.New(eng, g, app.Spec, m, exec.Options{
			MaxInFlight: 4 * app.Spec.NumStages(),
			WorkSampler: app.Sampler(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 800
		makespan, err := e.RunItems(n)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		measured := float64(n) / makespan
		// Variable service times push measured throughput below the
		// deterministic saturation bound; allow a broad but meaningful
		// band. The upper check needs slack too: the sampled mean
		// demand over 800 items at CV 0.8 wanders a few percent below
		// the spec mean, letting measured throughput edge past the
		// spec-mean bound.
		if measured > pred.Throughput*1.05 {
			t.Errorf("%s: measured %v exceeds model bound %v", app.Name, measured, pred.Throughput)
		}
		if measured < pred.Throughput*0.5 {
			t.Errorf("%s: measured %v implausibly far below bound %v", app.Name, measured, pred.Throughput)
		}
	}
}
