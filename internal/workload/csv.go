// CSV import of real invocation traces. Two layouts arrive from the
// wild and both land in the same workload.Trace:
//
//   - Long layout: one row per job arrival with a header naming
//     t/app/items (weight and floor optional) — the CSV twin of the
//     JSON-lines format in traffic.go.
//
//   - Wide layout (invitro / Azure Functions style): one row per
//     function with metadata columns followed by numeric bucket
//     columns ("1","2",...,"1440") holding per-bucket invocation
//     counts. Each count expands to that many arrivals spread evenly
//     inside its bucket, so the imported trace reproduces the
//     production stream's burst structure at bucket resolution.
//
// The layout is auto-detected from the header: any all-digit column
// name means wide; otherwise a t/time column is required and the file
// is long. Imported traces feed cluster.SubmitTrace/ProcessTrace and
// the pipebench stress ramp (-stress-trace), which replays the real
// arrival pattern rescaled to each step's offered load.

package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CSVTraceOptions tune TraceFromCSV. The zero value picks defaults.
type CSVTraceOptions struct {
	// App is the workload bound to arrivals when the file has no app
	// column (required for the wide layout; default "genome").
	App string
	// Items is the per-job item count when the file has no items
	// column (default 50, matching GenerateTrace's default shape).
	Items int
	// BucketSeconds is the wide layout's bucket width (default 60,
	// the Azure trace's per-minute resolution).
	BucketSeconds float64
	// MaxEvents caps the imported arrival count (default 1_000_000;
	// production wide traces can hold billions of invocations, and an
	// accidental full-file import should fail loudly, not OOM).
	MaxEvents int
}

func (o *CSVTraceOptions) fillDefaults() {
	if o.App == "" {
		o.App = "genome"
	}
	if o.Items <= 0 {
		o.Items = 50
	}
	if o.BucketSeconds <= 0 {
		o.BucketSeconds = 60
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 1_000_000
	}
}

// TraceFromCSV parses a CSV invocation trace, auto-detecting the long
// and wide layouts, and returns a validated Trace sorted by arrival
// time.
func TraceFromCSV(r io.Reader, opts CSVTraceOptions) (Trace, error) {
	opts.fillDefaults()
	if _, err := ByName(opts.App); err != nil {
		return nil, fmt.Errorf("workload: csv trace: %w", err)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.Comment = '#'
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: csv trace: reading header: %w", err)
	}
	wide := false
	for _, col := range header {
		if isAllDigits(strings.TrimSpace(col)) {
			wide = true
			break
		}
	}
	var tr Trace
	if wide {
		tr, err = csvWide(cr, header, opts)
	} else {
		tr, err = csvLong(cr, header, opts)
	}
	if err != nil {
		return nil, err
	}
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// csvLong parses the one-row-per-arrival layout. Column names are
// case-insensitive; t/time/timestamp name the arrival time, app the
// workload, items the job size, weight and floor the fairness fields.
func csvLong(cr *csv.Reader, header []string, opts CSVTraceOptions) (Trace, error) {
	col := map[string]int{}
	for i, name := range header {
		col[strings.ToLower(strings.TrimSpace(name))] = i
	}
	tIdx, ok := firstOf(col, "t", "time", "timestamp")
	if !ok {
		return nil, fmt.Errorf("workload: csv trace: no t/time column in header %v (and no numeric bucket columns)", header)
	}
	appIdx, hasApp := col["app"]
	itemsIdx, hasItems := col["items"]
	weightIdx, hasWeight := col["weight"]
	floorIdx, hasFloor := col["floor"]
	var tr Trace
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv trace: line %d: %w", line, err)
		}
		ev := TraceEvent{App: opts.App, Items: opts.Items}
		ev.T, err = strconv.ParseFloat(strings.TrimSpace(rec[tIdx]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: csv trace: line %d: bad time %q", line, rec[tIdx])
		}
		if hasApp {
			ev.App = strings.TrimSpace(rec[appIdx])
		}
		if hasItems {
			ev.Items, err = strconv.Atoi(strings.TrimSpace(rec[itemsIdx]))
			if err != nil {
				return nil, fmt.Errorf("workload: csv trace: line %d: bad items %q", line, rec[itemsIdx])
			}
		}
		if hasWeight && strings.TrimSpace(rec[weightIdx]) != "" {
			ev.Weight, err = strconv.ParseFloat(strings.TrimSpace(rec[weightIdx]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: csv trace: line %d: bad weight %q", line, rec[weightIdx])
			}
		}
		if hasFloor && strings.TrimSpace(rec[floorIdx]) != "" {
			ev.Floor, err = strconv.Atoi(strings.TrimSpace(rec[floorIdx]))
			if err != nil {
				return nil, fmt.Errorf("workload: csv trace: line %d: bad floor %q", line, rec[floorIdx])
			}
		}
		tr = append(tr, ev)
		if len(tr) > opts.MaxEvents {
			return nil, fmt.Errorf("workload: csv trace: more than %d events (raise CSVTraceOptions.MaxEvents)", opts.MaxEvents)
		}
	}
}

// csvWide parses the per-function bucket-count layout. The all-digit
// header columns are the buckets, ordered by their numeric value;
// every other column is function metadata and ignored. A count k in
// bucket b becomes k arrivals evenly spaced in the interior of
// [(b-1)·w, b·w) — deterministic, no sampling randomness.
func csvWide(cr *csv.Reader, header []string, opts CSVTraceOptions) (Trace, error) {
	type bucket struct {
		col   int
		index int // 1-based bucket number from the header
	}
	var buckets []bucket
	for i, name := range header {
		name = strings.TrimSpace(name)
		if isAllDigits(name) {
			n, err := strconv.Atoi(name)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("workload: csv trace: bad bucket column %q", name)
			}
			buckets = append(buckets, bucket{col: i, index: n})
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].index < buckets[j].index })
	w := opts.BucketSeconds
	var tr Trace
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv trace: line %d: %w", line, err)
		}
		for _, b := range buckets {
			cell := strings.TrimSpace(rec[b.col])
			if cell == "" || cell == "0" {
				continue
			}
			k, err := strconv.Atoi(cell)
			if err != nil || k < 0 {
				return nil, fmt.Errorf("workload: csv trace: line %d: bad count %q in bucket %d", line, cell, b.index)
			}
			start := float64(b.index-1) * w
			gap := w / float64(k+1)
			for j := 0; j < k; j++ {
				tr = append(tr, TraceEvent{
					T:     start + float64(j+1)*gap,
					App:   opts.App,
					Items: opts.Items,
				})
			}
			if len(tr) > opts.MaxEvents {
				return nil, fmt.Errorf("workload: csv trace: more than %d events (raise CSVTraceOptions.MaxEvents)", opts.MaxEvents)
			}
		}
	}
}

func firstOf(col map[string]int, names ...string) (int, bool) {
	for _, n := range names {
		if i, ok := col[n]; ok {
			return i, true
		}
	}
	return 0, false
}

// ScaleTime returns a copy of the trace with every arrival time
// multiplied by factor — the rescaling the stress ramp uses to replay
// one recorded stream at several offered loads while preserving its
// burst structure.
func (tr Trace) ScaleTime(factor float64) (Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: ScaleTime factor must be positive, got %v", factor)
	}
	out := make(Trace, len(tr))
	for i, ev := range tr {
		ev.T *= factor
		out[i] = ev
	}
	return out, nil
}

// Span returns the time of the last arrival, and TotalItems the summed
// item count — together the trace's native offered load.
func (tr Trace) Span() float64 {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].T
}

// TotalItems sums the per-job item counts.
func (tr Trace) TotalItems() int {
	n := 0
	for _, ev := range tr {
		n += ev.Items
	}
	return n
}
