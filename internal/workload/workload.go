// Package workload defines the synthetic applications the experiments
// run through the pipeline: stage structures, per-item service-demand
// distributions, and message sizes. They stand in for the streaming
// applications grid pipelines were motivated by (image processing,
// sequence matching, video transcoding), calibrated so the simulated
// runs exhibit the same bottleneck structure.
package workload

import (
	"fmt"
	"math"

	"gridpipe/internal/model"
	"gridpipe/internal/rng"
)

// App bundles a pipeline specification with a per-item service-demand
// sampler.
type App struct {
	// Name labels the workload in tables.
	Name string
	// Spec is the modelled pipeline (mean work per stage).
	Spec model.PipelineSpec
	// CV is the coefficient of variation of per-item service demand
	// (0 = deterministic).
	CV float64
}

// Sampler returns a work sampler for exec.Options: per (stage, seq) it
// draws a lognormal demand with the stage's mean and the app's CV.
// The sampler is deterministic in (seed, stage, seq) so repeated runs
// of the same experiment see identical demands.
func (a App) Sampler(seed uint64) func(stage, seq int) float64 {
	if a.CV <= 0 {
		return nil // deterministic: exec falls back to spec work
	}
	// Lognormal parameterised by mean m and cv: sigma² = ln(1+cv²),
	// mu = ln(m) - sigma²/2.
	sigma2 := math.Log(1 + a.CV*a.CV)
	sigma := math.Sqrt(sigma2)
	root := rng.New(seed)
	return func(stage, seq int) float64 {
		mean := a.Spec.Stages[stage].Work
		if mean == 0 {
			return 0
		}
		// A private stream per (stage, seq) keeps sampling independent
		// of processing order. The label is a full 64-bit key mix —
		// packing stage and seq into bit ranges would truncate seq to
		// 32 bits, aliasing items 2^32 apart under open-loop streams.
		r := root.Derive(rng.SeedFor(uint64(stage), uint64(seq)))
		mu := math.Log(mean) - sigma2/2
		return r.LogNormal(mu, sigma)
	}
}

// Image is a 4-stage image-processing pipeline: decode, filter (the
// heavy, stateless bottleneck), sharpen, encode. Items are ~1 MB
// frames shrinking through the chain.
func Image() App {
	return App{
		Name: "image",
		CV:   0.25,
		Spec: model.PipelineSpec{
			InBytes: 1e6,
			Stages: []model.StageSpec{
				{Name: "decode", Work: 0.05, OutBytes: 4e6, Replicable: false},
				{Name: "filter", Work: 0.20, OutBytes: 4e6, Replicable: true},
				{Name: "sharpen", Work: 0.10, OutBytes: 4e6, Replicable: true},
				{Name: "encode", Work: 0.08, OutBytes: 0.8e6, Replicable: false},
			},
		},
	}
}

// Genome is a 3-stage sequence-matching pipeline: parse, align (heavy
// and highly variable, the classic farming candidate), score.
func Genome() App {
	return App{
		Name: "genome",
		CV:   0.8, // alignment cost varies wildly with sequence content
		Spec: model.PipelineSpec{
			InBytes: 0.2e6,
			Stages: []model.StageSpec{
				{Name: "parse", Work: 0.02, OutBytes: 0.2e6, Replicable: true},
				{Name: "align", Work: 0.35, OutBytes: 0.05e6, Replicable: true},
				{Name: "score", Work: 0.05, OutBytes: 0.01e6, Replicable: true},
			},
		},
	}
}

// Video is a 5-stage transcoding pipeline with two heavy stages.
func Video() App {
	return App{
		Name: "video",
		CV:   0.3,
		Spec: model.PipelineSpec{
			InBytes: 2e6,
			Stages: []model.StageSpec{
				{Name: "demux", Work: 0.01, OutBytes: 2e6, Replicable: false},
				{Name: "decode", Work: 0.12, OutBytes: 8e6, Replicable: true},
				{Name: "transform", Work: 0.08, OutBytes: 8e6, Replicable: true},
				{Name: "encode", Work: 0.25, OutBytes: 1e6, Replicable: true},
				{Name: "mux", Work: 0.01, OutBytes: 1e6, Replicable: false},
			},
		},
	}
}

// Balanced is a tunable-grain pipeline of ns identical stages; grain is
// the per-stage work in reference-seconds and bytes the inter-stage
// message size. Used by the scalability sweeps.
func Balanced(ns int, grain, bytes float64) App {
	return App{
		Name: fmt.Sprintf("balanced-%d", ns),
		Spec: model.Balanced(ns, grain, bytes),
	}
}

// ByName returns a bundled workload by name ("image", "genome",
// "video").
func ByName(name string) (App, error) {
	switch name {
	case "image":
		return Image(), nil
	case "genome":
		return Genome(), nil
	case "video":
		return Video(), nil
	default:
		return App{}, fmt.Errorf("workload: unknown app %q", name)
	}
}

// All returns the bundled domain workloads.
func All() []App {
	return []App{Image(), Genome(), Video()}
}
