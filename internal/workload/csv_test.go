package workload

import (
	"math"
	"strings"
	"testing"
)

func TestTraceFromCSVLongLayout(t *testing.T) {
	in := `t,app,items,weight,floor
0.5,genome,20,2,1
1.25,image,10,,
3.0,video,5,0.5,2
`
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{
		{T: 0.5, App: "genome", Items: 20, Weight: 2, Floor: 1},
		{T: 1.25, App: "image", Items: 10},
		{T: 3.0, App: "video", Items: 5, Weight: 0.5, Floor: 2},
	}
	if len(tr) != len(want) {
		t.Fatalf("got %d events, want %d", len(tr), len(want))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, tr[i], want[i])
		}
	}
}

func TestTraceFromCSVLongDefaultsAndSorting(t *testing.T) {
	// No app/items columns: rows fall back to the options' app and
	// item count. Out-of-order rows are sorted by time on import.
	in := "time\n4.0\n1.0\n2.5\n"
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{App: "image", Items: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("got %d events, want 3", len(tr))
	}
	prev := math.Inf(-1)
	for i, ev := range tr {
		if ev.T < prev {
			t.Fatalf("event %d out of order: %v after %v", i, ev.T, prev)
		}
		prev = ev.T
		if ev.App != "image" || ev.Items != 7 {
			t.Errorf("event %d: got %+v, want image/7 defaults", i, ev)
		}
	}
}

func TestTraceFromCSVWideLayout(t *testing.T) {
	// invitro/Azure shape: metadata columns then per-minute buckets.
	// Bucket 1 holds 2 invocations, bucket 3 holds 1; counts expand to
	// evenly spaced arrivals inside their bucket.
	in := `HashOwner,HashFunction,Trigger,1,2,3
o1,f1,http,2,0,1
`
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{App: "genome", Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantT := []float64{20, 40, 150} // 60/3, 2*60/3, 120+60/2
	if len(tr) != len(wantT) {
		t.Fatalf("got %d events, want %d: %+v", len(tr), len(wantT), tr)
	}
	for i, ev := range tr {
		if math.Abs(ev.T-wantT[i]) > 1e-9 {
			t.Errorf("event %d at t=%v, want %v", i, ev.T, wantT[i])
		}
		if ev.App != "genome" || ev.Items != 4 {
			t.Errorf("event %d: got %+v, want genome/4", i, ev)
		}
	}
}

func TestTraceFromCSVWideBucketSeconds(t *testing.T) {
	in := "f,1,2\nx,1,1\n"
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{BucketSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || math.Abs(tr[0].T-5) > 1e-9 || math.Abs(tr[1].T-15) > 1e-9 {
		t.Fatalf("got %+v, want arrivals at t=5 and t=15", tr)
	}
}

func TestTraceFromCSVWideMergesRows(t *testing.T) {
	// Two functions invoking in the same bucket interleave by time.
	in := "f,1\nx,1\ny,2\n"
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("got %d events, want 3", len(tr))
	}
	prev := math.Inf(-1)
	for i, ev := range tr {
		if ev.T < prev {
			t.Fatalf("event %d out of order", i)
		}
		prev = ev.T
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		opts CSVTraceOptions
	}{
		"no time column":    {in: "a,b\n1,2\n", opts: CSVTraceOptions{}},
		"bad time":          {in: "t\nnope\n", opts: CSVTraceOptions{}},
		"negative time":     {in: "t\n-1\n", opts: CSVTraceOptions{}},
		"unknown app":       {in: "t,app\n1,bogus\n", opts: CSVTraceOptions{}},
		"unknown opts app":  {in: "t\n1\n", opts: CSVTraceOptions{App: "bogus"}},
		"bad items":         {in: "t,items\n1,x\n", opts: CSVTraceOptions{}},
		"bad bucket count":  {in: "f,1\nx,-3\n", opts: CSVTraceOptions{}},
		"too many events":   {in: "f,1\nx,9\n", opts: CSVTraceOptions{MaxEvents: 4}},
		"long event cap":    {in: "t\n1\n2\n3\n", opts: CSVTraceOptions{MaxEvents: 2}},
		"ragged row":        {in: "t,app\n1\n", opts: CSVTraceOptions{}},
	}
	for name, tc := range cases {
		if _, err := TraceFromCSV(strings.NewReader(tc.in), tc.opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTraceFromCSVFeedsJobSpecs(t *testing.T) {
	in := "t,app,items\n0,genome,5\n1,image,3\n"
	tr, err := TraceFromCSV(strings.NewReader(in), CSVTraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.JobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Items != 5 || specs[1].Items != 3 {
		t.Fatalf("unexpected specs %+v", specs)
	}
}

func TestScaleTime(t *testing.T) {
	tr := Trace{{T: 1, App: "genome", Items: 2}, {T: 3, App: "genome", Items: 4}}
	scaled, err := tr.ScaleTime(2)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].T != 2 || scaled[1].T != 6 {
		t.Fatalf("got %+v, want times doubled", scaled)
	}
	if tr[0].T != 1 {
		t.Fatal("ScaleTime mutated its receiver")
	}
	if tr.Span() != 3 || tr.TotalItems() != 6 {
		t.Fatalf("Span/TotalItems: got %v/%d", tr.Span(), tr.TotalItems())
	}
	if _, err := tr.ScaleTime(0); err == nil {
		t.Fatal("expected error for zero factor")
	}
	if _, err := tr.ScaleTime(-1); err == nil {
		t.Fatal("expected error for negative factor")
	}
}
