// Record/replay traffic traces: the interchange format between the
// arrival processes and the cluster layers. A Trace is the full
// description of an open-loop job stream — arrival time, app, items,
// weight, floor — serialised as JSON lines so streams can be recorded
// from any generator, inspected with standard tools, and replayed
// bit-identically into cluster.Submit (virtual time) or the live
// runtime (wall clock, scaled).

package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gridpipe/internal/model"
	"gridpipe/internal/rng"
)

// TraceEvent is one job arrival in a traffic trace.
type TraceEvent struct {
	// T is the arrival time in seconds from the start of the trace.
	T float64 `json:"t"`
	// App names the workload (ByName: "image", "genome", "video").
	App string `json:"app"`
	// Items is the job's item count.
	Items int `json:"items"`
	// Weight is the job's fairness weight (0 = default 1).
	Weight float64 `json:"weight,omitempty"`
	// Floor is the job's admission floor in nodes (0 = default 1).
	Floor int `json:"floor,omitempty"`
}

// Trace is an open-loop job stream: arrivals in nondecreasing time
// order. float64 times survive the JSON round trip exactly (Go
// marshals floats with the shortest representation that parses back
// to the same bits), so record → replay reproduces the generating
// stream bit-identically.
type Trace []TraceEvent

// Validate reports structural errors: out-of-order or negative times,
// unknown apps, non-positive item counts.
func (tr Trace) Validate() error {
	prev := math.Inf(-1)
	for i, ev := range tr {
		if ev.T < 0 || math.IsNaN(ev.T) {
			return fmt.Errorf("workload: trace event %d has invalid time %v", i, ev.T)
		}
		if ev.T < prev {
			return fmt.Errorf("workload: trace event %d at t=%v precedes event %d at t=%v", i, ev.T, i-1, prev)
		}
		prev = ev.T
		if _, err := ByName(ev.App); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		if ev.Items <= 0 {
			return fmt.Errorf("workload: trace event %d has non-positive items %d", i, ev.Items)
		}
		if ev.Weight < 0 {
			return fmt.Errorf("workload: trace event %d has negative weight %v", i, ev.Weight)
		}
		if ev.Floor < 0 {
			return fmt.Errorf("workload: trace event %d has negative floor %d", i, ev.Floor)
		}
	}
	return nil
}

// Write records the trace as JSON lines, one event per line.
func (tr Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tr {
		if err := enc.Encode(&tr[i]); err != nil {
			return fmt.Errorf("workload: writing trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON-lines trace and validates it. Blank lines
// and lines starting with '#' are skipped so recorded traces can carry
// provenance comments.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		trimmed := false
		for _, c := range b {
			if c != ' ' && c != '\t' {
				trimmed = c == '#'
				break
			}
		}
		if len(b) == 0 || trimmed {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		tr = append(tr, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// JobSpecs converts the trace into cluster job specifications, one per
// event, named "<app>-<index>" in trace order. Each spec carries the
// app's pipeline and CV plus the event's items/weight/floor; submitting
// them in order reproduces the stream (the cluster derives per-job
// seeds from submit order, so a replayed trace is bit-identical to the
// generating run under the same cluster seed).
func (tr Trace) JobSpecs() ([]model.JobSpec, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	specs := make([]model.JobSpec, 0, len(tr))
	for i, ev := range tr {
		app, err := ByName(ev.App)
		if err != nil {
			return nil, err
		}
		specs = append(specs, model.JobSpec{
			Name:       fmt.Sprintf("%s-%d", ev.App, i),
			Spec:       app.Spec,
			Weight:     ev.Weight,
			FloorNodes: ev.Floor,
			Arrival:    ev.T,
			Items:      ev.Items,
			CV:         app.CV,
		})
	}
	return specs, nil
}

// MixEntry is one app class in a generated traffic mix: the app, its
// selection share, and the job shape every arrival of that class gets.
type MixEntry struct {
	// App names the workload (ByName).
	App string
	// Share is the class's relative selection probability (must be
	// positive; shares are normalised over the mix).
	Share float64
	// Items is the per-job item count (0 = default 50).
	Items int
	// Weight and Floor are the job's fairness weight and admission
	// floor (0 = cluster defaults).
	Weight float64
	// Floor is the job's admission floor in nodes.
	Floor int
}

// DefaultMix is the single-class genome mix the CLI tools fall back
// to.
func DefaultMix() []MixEntry {
	return []MixEntry{{App: "genome", Share: 1, Items: 50}}
}

// GenerateTrace drives an arrival process over the given horizon and
// records one job arrival per event, drawing each event's app class
// from the mix (selection randomness comes from a private sub-stream
// of seed, independent of the process's gap stream). The process is
// Reset first, so generation is a pure function of (process seed, mix,
// horizon, seed).
func GenerateTrace(p ArrivalProcess, mix []MixEntry, horizon float64, seed uint64) (Trace, error) {
	if p == nil {
		return nil, fmt.Errorf("workload: GenerateTrace with nil process")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: GenerateTrace horizon must be positive, got %v", horizon)
	}
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	total := 0.0
	for i, m := range mix {
		if _, err := ByName(m.App); err != nil {
			return nil, fmt.Errorf("workload: mix entry %d: %w", i, err)
		}
		if m.Share <= 0 {
			return nil, fmt.Errorf("workload: mix entry %d (%s) has non-positive share %v", i, m.App, m.Share)
		}
		if m.Items < 0 || m.Weight < 0 || m.Floor < 0 {
			return nil, fmt.Errorf("workload: mix entry %d (%s) has a negative field", i, m.App)
		}
		total += m.Share
	}
	pick := rng.New(seed).Derive(mixStream)
	p.Reset()
	var tr Trace
	for t := p.Next(); t <= horizon; t += p.Next() {
		m := mix[0]
		if len(mix) > 1 {
			u := pick.Float64() * total
			for _, cand := range mix {
				m = cand
				if u < cand.Share {
					break
				}
				u -= cand.Share
			}
		}
		items := m.Items
		if items == 0 {
			items = 50
		}
		tr = append(tr, TraceEvent{T: t, App: m.App, Items: items, Weight: m.Weight, Floor: m.Floor})
	}
	return tr, nil
}
