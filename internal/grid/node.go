// Package grid models the computational substrate: heterogeneous
// processors with time-varying background load, connected by a network
// with per-pair latency and bandwidth. It is the simulated stand-in for
// the grid testbed of the original evaluation (see DESIGN.md,
// reconstruction decision 1).
//
// Conventions:
//   - Work is measured in reference-seconds: the time the job takes on
//     an unloaded node of speed 1.0.
//   - A node of speed s with background load l(t) progresses through
//     work at rate s*(1-l(t)) reference-seconds per second.
//   - Message cost between nodes i and j is latency(i,j) +
//     bytes/bandwidth(i,j); intra-node transfers are free.
package grid

import (
	"fmt"
	"math"

	"gridpipe/internal/trace"
)

// NodeID identifies a processor within a Grid.
type NodeID int

// DefaultQuantum is the integration step used when computing service
// durations under time-varying load. Completion times are exact for
// load that is constant over the quantum (all bundled traces are
// piecewise constant at ≥ quantum resolution or smooth enough that the
// error is far below scheduling noise).
const DefaultQuantum = 0.05

// Node is one grid processor.
type Node struct {
	ID    NodeID
	Name  string
	Speed float64 // relative speed; 1.0 is the reference processor
	Cores int     // tasks that may run concurrently at full speed

	// Load is the background-load trace; nil means permanently idle.
	Load trace.Trace

	// Quantum is the service-time integration step; zero means
	// DefaultQuantum.
	Quantum float64

	// state is the node's run-time availability (zero value Up). It is
	// mutated by the executor's churn driver; a grid must not be shared
	// by concurrently running executors.
	state NodeState
}

// State returns the node's current availability.
func (n *Node) State() NodeState { return n.state }

// SetState transitions the node's availability. The executor's churn
// driver is the intended caller; it keeps the routing/search layers in
// sync with the transition.
func (n *Node) SetState(s NodeState) { n.state = s }

// Available reports whether the node accepts new work (state Up).
func (n *Node) Available() bool { return n.state == Up }

// EffectiveSpeed returns the instantaneous processing rate at time t in
// reference-seconds of work per second.
func (n *Node) EffectiveSpeed(t float64) float64 {
	l := 0.0
	if n.Load != nil {
		l = n.Load.At(t)
	}
	return n.Speed * (1 - l)
}

// ServiceDuration returns how long the node takes to execute work
// reference-seconds starting at time start, integrating the
// time-varying effective speed. It panics on negative work; zero work
// completes instantly.
func (n *Node) ServiceDuration(work, start float64) float64 {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("grid: ServiceDuration with invalid work %v", work))
	}
	if work == 0 {
		return 0
	}
	q := n.Quantum
	if q <= 0 {
		q = DefaultQuantum
	}
	remaining := work
	t := start
	// Hard cap so a (buggy) zero-speed node cannot hang the simulator;
	// MaxLoad guarantees speed ≥ 2% of nominal, so this is generous.
	const maxIter = 50_000_000
	for iter := 0; iter < maxIter; iter++ {
		sp := n.EffectiveSpeed(t)
		if sp <= 0 {
			// Node fully stalled (outage); skip forward one quantum.
			t += q
			continue
		}
		finish := remaining / sp
		if finish <= q {
			return t + finish - start
		}
		remaining -= sp * q
		t += q
	}
	panic(fmt.Sprintf("grid: node %q made no progress on %v work", n.Name, work))
}

// WorkIn returns the reference-seconds of work the node processes in
// [start, start+dur] at full capacity, integrating the time-varying
// effective speed with the same quantum as ServiceDuration — its
// inverse, up to quantisation at the interval tail. The cluster
// executor uses it to account partial service when a task's capacity
// share changes mid-service (see exec.NodeShares).
func (n *Node) WorkIn(start, dur float64) float64 {
	if dur <= 0 || math.IsNaN(dur) {
		return 0
	}
	q := n.Quantum
	if q <= 0 {
		q = DefaultQuantum
	}
	done := 0.0
	t := start
	left := dur
	for left > q {
		done += n.EffectiveSpeed(t) * q
		t += q
		left -= q
	}
	return done + n.EffectiveSpeed(t)*left
}

// MeanLoad returns the node's time-averaged background load over
// [t0, t1], sampled at the quantum. The analytic mapping model uses it
// as the load estimate when no forecaster is plugged in.
func (n *Node) MeanLoad(t0, t1 float64) float64 {
	if n.Load == nil {
		return 0
	}
	q := n.Quantum
	if q <= 0 {
		q = DefaultQuantum
	}
	if t1 <= t0 {
		return n.Load.At(t0)
	}
	sum, cnt := 0.0, 0
	for t := t0; t < t1; t += q {
		sum += n.Load.At(t)
		cnt++
	}
	if cnt == 0 {
		return n.Load.At(t0)
	}
	return sum / float64(cnt)
}

// validate reports configuration errors; the Grid builder calls it.
func (n *Node) validate() error {
	if n.Speed <= 0 || math.IsNaN(n.Speed) {
		return fmt.Errorf("grid: node %q has non-positive speed %v", n.Name, n.Speed)
	}
	if n.Cores <= 0 {
		return fmt.Errorf("grid: node %q has non-positive cores %d", n.Name, n.Cores)
	}
	return nil
}
