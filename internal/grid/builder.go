package grid

import (
	"fmt"

	"gridpipe/internal/trace"
)

// Standard link presets, calibrated to the interconnect classes of a
// 2008-era grid: a cluster switch, a campus backbone, and a wide-area
// path between sites.
var (
	LANLink    = Link{Latency: 100e-6, Bandwidth: 125e6} // 1 Gb/s, 0.1 ms
	CampusLink = Link{Latency: 1e-3, Bandwidth: 12.5e6}  // 100 Mb/s, 1 ms
	WANLink    = Link{Latency: 30e-3, Bandwidth: 1.25e6} // 10 Mb/s, 30 ms
)

// Homogeneous builds a grid of n identical idle nodes of the given
// speed connected by link.
func Homogeneous(n int, speed float64, link Link) (*Grid, error) {
	if n <= 0 {
		return nil, fmt.Errorf("grid: Homogeneous with %d nodes", n)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Name: fmt.Sprintf("node%d", i), Speed: speed, Cores: 1}
	}
	return NewGrid(link, nodes...)
}

// Heterogeneous builds a grid with one idle single-core node per speed.
func Heterogeneous(speeds []float64, link Link) (*Grid, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("grid: Heterogeneous with no speeds")
	}
	nodes := make([]*Node, len(speeds))
	for i, s := range speeds {
		nodes[i] = &Node{Name: fmt.Sprintf("node%d", i), Speed: s, Cores: 1}
	}
	return NewGrid(link, nodes...)
}

// Site describes one cluster of a multi-site grid.
type Site struct {
	Name  string
	Nodes int
	Speed float64
	Cores int
	Load  trace.Trace // applied to every node of the site; may be nil
}

// MultiSite builds a grid of several sites: nodes within a site are
// joined by intra; nodes of different sites by inter. This reproduces
// the cluster-of-clusters topology grid pipelines were mapped onto.
func MultiSite(sites []Site, intra, inter Link) (*Grid, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("grid: MultiSite with no sites")
	}
	var nodes []*Node
	var siteOf []int
	for si, s := range sites {
		if s.Nodes <= 0 {
			return nil, fmt.Errorf("grid: site %q has %d nodes", s.Name, s.Nodes)
		}
		cores := s.Cores
		if cores == 0 {
			cores = 1
		}
		for i := 0; i < s.Nodes; i++ {
			nodes = append(nodes, &Node{
				Name:  fmt.Sprintf("%s-%d", s.Name, i),
				Speed: s.Speed,
				Cores: cores,
				Load:  s.Load,
			})
			siteOf = append(siteOf, si)
		}
	}
	g, err := NewGrid(inter, nodes...)
	if err != nil {
		return nil, err
	}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if siteOf[i] == siteOf[j] {
				if err := g.SetLink(NodeID(i), NodeID(j), intra); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Saturate returns a trace that drives load to the maximum (node
// nearly stopped, but still Up) during [t0, t1) on top of a base load.
// It was called Outage until the node-lifecycle subsystem landed — a
// misnomer, since the node kept crawling through work at 2% speed
// instead of going Down; the name Outage now belongs to the true
// crash/rejoin primitive in lifecycle.go (see DESIGN.md, "Node
// lifecycle & churn").
func Saturate(base trace.Trace, t0, t1 float64) trace.Trace {
	if base == nil {
		base = trace.Constant(0)
	}
	return windowTrace{base: base, t0: t0, t1: t1, level: trace.MaxLoad}
}

// Quiet returns a trace that clears the background load to zero during
// [t0, t1): a guaranteed-idle window, the inverse scenario primitive of
// Saturate (e.g. an off-peak reservation on a shared node).
func Quiet(base trace.Trace, t0, t1 float64) trace.Trace {
	if base == nil {
		base = trace.Constant(0)
	}
	return windowTrace{base: base, t0: t0, t1: t1, level: 0}
}

// windowTrace overrides the base load with a fixed level inside
// [t0, t1).
type windowTrace struct {
	base   trace.Trace
	t0, t1 float64
	level  float64
}

func (o windowTrace) At(t float64) float64 {
	if t >= o.t0 && t < o.t1 {
		return o.level
	}
	return o.base.At(t)
}

// SpeedRatio returns max/min nominal node speed, the heterogeneity
// measure swept in experiment F5.
func SpeedRatio(g *Grid) float64 {
	min, max := g.nodes[0].Speed, g.nodes[0].Speed
	for _, n := range g.nodes[1:] {
		if n.Speed < min {
			min = n.Speed
		}
		if n.Speed > max {
			max = n.Speed
		}
	}
	return max / min
}
