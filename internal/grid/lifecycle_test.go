package grid

import (
	"math"
	"testing"

	"gridpipe/internal/trace"
)

func TestNodeStateZeroValueIsUp(t *testing.T) {
	n := &Node{Name: "a", Speed: 1, Cores: 1}
	if n.State() != Up || !n.Available() {
		t.Fatalf("fresh node state = %v", n.State())
	}
	n.SetState(Down)
	if n.Available() {
		t.Fatal("down node reports available")
	}
	if Up.String() != "up" || Draining.String() != "draining" || Down.String() != "down" {
		t.Fatal("state names wrong")
	}
}

func TestChurnScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		evs  []ChurnEvent
		ok   bool
	}{
		{"empty", nil, true},
		{"crash+rejoin", Outage("a", 1, 2), true},
		{"join", []ChurnEvent{Join("a", 5)}, true},
		{"drain", []ChurnEvent{Drain("a", 5)}, true},
		{"crash of draining node", []ChurnEvent{Drain("a", 1), {T: 2, Node: "a", Kind: ChurnCrash}}, true},
		{"two disjoint outages", append(Outage("a", 1, 2), Outage("a", 3, 4)...), true},
		{"overlapping outages", []ChurnEvent{
			{T: 1, Node: "a", Kind: ChurnCrash}, {T: 2, Node: "a", Kind: ChurnCrash}}, false},
		{"rejoin before crash", []ChurnEvent{{T: 1, Node: "a", Kind: ChurnRejoin}}, false},
		{"join of existing node", []ChurnEvent{
			{T: 1, Node: "a", Kind: ChurnCrash}, {T: 2, Node: "a", Kind: ChurnJoin}}, false},
		{"rejoin of never-up node", []ChurnEvent{Join("a", 5), {T: 1, Node: "a", Kind: ChurnDrain}}, false},
		{"drain of down node", []ChurnEvent{
			{T: 1, Node: "a", Kind: ChurnCrash}, {T: 2, Node: "a", Kind: ChurnDrain}}, false},
		{"empty node name", []ChurnEvent{{T: 1, Kind: ChurnCrash}}, false},
		{"negative time", []ChurnEvent{{T: -1, Node: "a", Kind: ChurnCrash}}, false},
		{"NaN time", []ChurnEvent{{T: math.NaN(), Node: "a", Kind: ChurnCrash}}, false},
		{"unknown kind", []ChurnEvent{{T: 1, Node: "a", Kind: ChurnKind(99)}}, false},
	}
	for _, c := range cases {
		_, err := NewChurnSchedule(c.evs...)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid schedule accepted", c.name)
		}
	}
}

func TestChurnScheduleSortsStably(t *testing.T) {
	cs, err := NewChurnSchedule(
		ChurnEvent{T: 5, Node: "b", Kind: ChurnCrash},
		ChurnEvent{T: 1, Node: "a", Kind: ChurnCrash},
		ChurnEvent{T: 5, Node: "a", Kind: ChurnRejoin},
	)
	if err != nil {
		t.Fatal(err)
	}
	evs := cs.Events()
	if evs[0].Node != "a" || evs[1].Node != "b" || evs[2].Node != "a" {
		t.Fatalf("sort order wrong: %v", evs)
	}
}

func TestInitiallyDown(t *testing.T) {
	cs, err := NewChurnSchedule(
		Join("fresh", 10),
		ChurnEvent{T: 1, Node: "old", Kind: ChurnCrash},
		ChurnEvent{T: 2, Node: "old", Kind: ChurnRejoin},
	)
	if err != nil {
		t.Fatal(err)
	}
	down := cs.InitiallyDown()
	if len(down) != 1 || down[0] != "fresh" {
		t.Fatalf("InitiallyDown = %v, want [fresh]", down)
	}
}

func TestChurnValidateAgainstGrid(t *testing.T) {
	g := mustGrid(Homogeneous(2, 1, LANLink))
	ok, err := NewChurnSchedule(Outage("node1", 1, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.ValidateAgainst(g); err != nil {
		t.Fatal(err)
	}
	if err := g.SetChurn(ok); err != nil {
		t.Fatal(err)
	}
	if g.Churn() != ok {
		t.Fatal("schedule not attached")
	}
	bad, err := NewChurnSchedule(Outage("ghost", 1, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetChurn(bad); err == nil {
		t.Fatal("crash of unknown node accepted")
	}
}

func TestResetLifecycle(t *testing.T) {
	g := mustGrid(Homogeneous(2, 1, LANLink))
	g.Node(0).SetState(Down)
	g.Node(1).SetState(Draining)
	g.ResetLifecycle()
	for _, n := range g.Nodes() {
		if n.State() != Up {
			t.Fatalf("node %s state %v after reset", n.Name, n.State())
		}
	}
}

func TestAvailability(t *testing.T) {
	cs, err := NewChurnSchedule(append(Outage("a", 25, 75), Join("b", 50))...)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.Availability("a", 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("a availability = %v, want 0.5", got)
	}
	if got := cs.Availability("b", 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("b availability = %v, want 0.5", got)
	}
	if got := cs.Availability("untouched", 100); got != 1 {
		t.Fatalf("untouched availability = %v, want 1", got)
	}
	g := mustGrid(Heterogeneous([]float64{1, 1}, LANLink))
	g.Nodes()[0].Name, g.Nodes()[1].Name = "a", "b"
	if got := cs.MeanAvailability(g, 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean availability = %v, want 0.5", got)
	}
}

func TestOutagePanicsOnEmptyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inverted window")
		}
	}()
	Outage("a", 5, 5)
}

func TestRandomChurnDeterministicAndValid(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	cs1, err := RandomChurn(42, 100, names, 0.8, 10)
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := RandomChurn(42, 100, names, 0.8, 10)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := cs1.Events(), cs2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	// The first node is the designated survivor.
	for _, ev := range e1 {
		if ev.Node == "a" {
			t.Fatal("RandomChurn churned the designated survivor")
		}
	}
	if _, err := RandomChurn(1, -5, names, 0.5, 1); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := RandomChurn(1, 5, names, 0.5, 0); err == nil {
		t.Fatal("zero mean downtime accepted")
	}
}

func TestQuietClearsLoad(t *testing.T) {
	tr := Quiet(trace.Constant(0.6), 10, 20)
	if tr.At(5) != 0.6 || tr.At(25) != 0.6 {
		t.Fatal("outside window should be base load")
	}
	if tr.At(10) != 0 || tr.At(19.99) != 0 {
		t.Fatal("inside window should be idle")
	}
	if Quiet(nil, 0, 1).At(0.5) != 0 {
		t.Fatal("nil base should default to idle")
	}
}
