package grid

import (
	"math"
	"strings"
	"testing"

	"gridpipe/internal/trace"
)

// mustGrid unwraps a (grid, error) pair; construction failures in
// fixtures are programming errors, so it panics.
func mustGrid(g *Grid, err error) *Grid {
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewGridAssignsIDsAndNames(t *testing.T) {
	g := mustGrid(NewGrid(LANLink,
		&Node{Speed: 1, Cores: 1},
		&Node{Name: "big", Speed: 2, Cores: 4},
	))
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.Node(0).Name != "node0" || g.Node(1).Name != "big" {
		t.Fatalf("names: %q %q", g.Node(0).Name, g.Node(1).Name)
	}
	if g.Node(1).ID != 1 {
		t.Fatalf("ID = %d", g.Node(1).ID)
	}
	if g.NodeByName("big") != g.Node(1) || g.NodeByName("nope") != nil {
		t.Fatal("NodeByName wrong")
	}
}

func TestNewGridRejectsBadInput(t *testing.T) {
	if _, err := NewGrid(LANLink); err == nil {
		t.Fatal("no nodes should fail")
	}
	if _, err := NewGrid(LANLink, &Node{Name: "a", Speed: 0, Cores: 1}); err == nil {
		t.Fatal("zero speed should fail")
	}
	if _, err := NewGrid(LANLink, &Node{Name: "a", Speed: 1, Cores: 0}); err == nil {
		t.Fatal("zero cores should fail")
	}
	if _, err := NewGrid(LANLink,
		&Node{Name: "a", Speed: 1, Cores: 1},
		&Node{Name: "a", Speed: 1, Cores: 1}); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if _, err := NewGrid(Link{Latency: -1, Bandwidth: 1},
		&Node{Speed: 1, Cores: 1}); err == nil {
		t.Fatal("bad default link should fail")
	}
}

func TestSelfLinkIsLocal(t *testing.T) {
	g := mustGrid(Homogeneous(2, 1, WANLink))
	l := g.Link(0, 0)
	if l.Latency != LocalLink.Latency {
		t.Fatalf("self link = %+v", l)
	}
	if d := g.TransferDuration(0, 0, 1e6, 0); d > 1e-3 {
		t.Fatalf("local transfer too slow: %v", d)
	}
}

func TestSetLinkSymmetric(t *testing.T) {
	g := mustGrid(Homogeneous(3, 1, LANLink))
	fast := Link{Latency: 1e-6, Bandwidth: 1e9}
	if err := g.SetLink(0, 2, fast); err != nil {
		t.Fatal(err)
	}
	if g.Link(0, 2).Bandwidth != 1e9 || g.Link(2, 0).Bandwidth != 1e9 {
		t.Fatal("SetLink not symmetric")
	}
	if g.Link(0, 1).Bandwidth != LANLink.Bandwidth {
		t.Fatal("SetLink affected unrelated pair")
	}
	if err := g.SetLink(1, 1, fast); err == nil {
		t.Fatal("self-link override should fail")
	}
	if err := g.SetLink(0, 9, fast); err == nil {
		t.Fatal("invalid id should fail")
	}
}

func TestSetLinkOneWay(t *testing.T) {
	g := mustGrid(Homogeneous(2, 1, LANLink))
	slow := Link{Latency: 0.5, Bandwidth: 1e3}
	if err := g.SetLinkOneWay(0, 1, slow); err != nil {
		t.Fatal(err)
	}
	if g.Link(0, 1).Latency != 0.5 {
		t.Fatal("one-way override not applied")
	}
	if g.Link(1, 0).Latency == 0.5 {
		t.Fatal("one-way override leaked to reverse direction")
	}
}

func TestTransferDuration(t *testing.T) {
	l := Link{Latency: 0.01, Bandwidth: 1000}
	if got := l.TransferDuration(500, 0); math.Abs(got-0.51) > 1e-12 {
		t.Fatalf("transfer = %v, want 0.51", got)
	}
	degraded := Link{Latency: 0, Bandwidth: 1000, Quality: trace.Constant(0.5)}
	if got := degraded.TransferDuration(500, 0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("degraded transfer = %v, want 1.0", got)
	}
}

func TestEffectiveSpeed(t *testing.T) {
	n := &Node{Speed: 2, Cores: 1, Load: trace.Constant(0.25)}
	if got := n.EffectiveSpeed(0); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("effective speed = %v, want 1.5", got)
	}
	idle := &Node{Speed: 3, Cores: 1}
	if idle.EffectiveSpeed(10) != 3 {
		t.Fatal("nil load should mean idle")
	}
}

func TestServiceDurationConstantLoad(t *testing.T) {
	n := &Node{Speed: 2, Cores: 1, Load: trace.Constant(0.5)}
	// effective speed 1 → 3 units of work take 3 s.
	if got := n.ServiceDuration(3, 0); math.Abs(got-3) > 1e-9 {
		t.Fatalf("duration = %v, want 3", got)
	}
	if n.ServiceDuration(0, 5) != 0 {
		t.Fatal("zero work should be instant")
	}
}

func TestServiceDurationStepLoad(t *testing.T) {
	// Load jumps from 0 to 0.5 at t=10: first 10 s at speed 1, then
	// speed 0.5. 15 units of work → 10 + (15-10)/0.5 = 20 s.
	n := &Node{
		Speed: 1, Cores: 1,
		Load: trace.NewSteps(0, trace.StepChange{T: 10, Load: 0.5}),
	}
	got := n.ServiceDuration(15, 0)
	if math.Abs(got-20) > 0.2 { // quantum-resolution tolerance
		t.Fatalf("duration = %v, want ~20", got)
	}
}

func TestServiceDurationStartsMidTrace(t *testing.T) {
	n := &Node{
		Speed: 1, Cores: 1,
		Load: trace.NewSteps(0, trace.StepChange{T: 10, Load: 0.5}),
	}
	// Starting after the step: everything at speed 0.5.
	got := n.ServiceDuration(5, 100)
	if math.Abs(got-10) > 0.2 {
		t.Fatalf("duration = %v, want ~10", got)
	}
}

func TestServiceDurationPanicsOnNegativeWork(t *testing.T) {
	n := &Node{Speed: 1, Cores: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.ServiceDuration(-1, 0)
}

func TestServiceDurationSurvivesSaturation(t *testing.T) {
	n := &Node{
		Speed: 1, Cores: 1,
		Load: Saturate(trace.Constant(0), 0, 5),
	}
	// 1 unit of work starting inside the outage: stalls (speed 0.02)
	// until t=5 then runs at full speed. Progress during outage is
	// 5*0.02 = 0.1 units, so completion ≈ 5 + 0.9 = 5.9.
	got := n.ServiceDuration(1, 0)
	if got < 5 || got > 6.2 {
		t.Fatalf("duration through outage = %v, want ~5.9", got)
	}
}

func TestMeanLoad(t *testing.T) {
	n := &Node{
		Speed: 1, Cores: 1,
		Load: trace.NewSteps(0.2, trace.StepChange{T: 10, Load: 0.6}),
	}
	got := n.MeanLoad(0, 20)
	if math.Abs(got-0.4) > 0.02 {
		t.Fatalf("mean load = %v, want ~0.4", got)
	}
	if (&Node{Speed: 1, Cores: 1}).MeanLoad(0, 10) != 0 {
		t.Fatal("idle node mean load should be 0")
	}
	if got := n.MeanLoad(5, 5); got != 0.2 {
		t.Fatalf("degenerate interval = %v, want instantaneous 0.2", got)
	}
}

func TestHomogeneousAndHeterogeneous(t *testing.T) {
	g := mustGrid(Homogeneous(4, 2.5, LANLink))
	for _, n := range g.Nodes() {
		if n.Speed != 2.5 || n.Cores != 1 {
			t.Fatalf("bad node %+v", n)
		}
	}
	h := mustGrid(Heterogeneous([]float64{1, 2, 4}, LANLink))
	if SpeedRatio(h) != 4 {
		t.Fatalf("SpeedRatio = %v", SpeedRatio(h))
	}
	if _, err := Homogeneous(0, 1, LANLink); err == nil {
		t.Fatal("0 nodes should fail")
	}
	if _, err := Heterogeneous(nil, LANLink); err == nil {
		t.Fatal("no speeds should fail")
	}
}

func TestMultiSite(t *testing.T) {
	g := mustGrid(MultiSite([]Site{
		{Name: "edi", Nodes: 2, Speed: 1},
		{Name: "bcn", Nodes: 2, Speed: 2, Cores: 2},
	}, LANLink, WANLink))
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NodeByName("edi-0") == nil || g.NodeByName("bcn-1") == nil {
		t.Fatal("site node names wrong")
	}
	// Intra-site: LAN. Inter-site: WAN.
	if g.Link(0, 1).Latency != LANLink.Latency {
		t.Fatalf("intra-site link = %+v", g.Link(0, 1))
	}
	if g.Link(0, 2).Latency != WANLink.Latency {
		t.Fatalf("inter-site link = %+v", g.Link(0, 2))
	}
	if g.NodeByName("bcn-0").Cores != 2 {
		t.Fatal("site cores not applied")
	}
	if _, err := MultiSite(nil, LANLink, WANLink); err == nil {
		t.Fatal("no sites should fail")
	}
	if _, err := MultiSite([]Site{{Name: "x", Nodes: 0, Speed: 1}}, LANLink, WANLink); err == nil {
		t.Fatal("empty site should fail")
	}
}

func TestSaturateTrace(t *testing.T) {
	tr := Saturate(trace.Constant(0.1), 10, 20)
	if tr.At(5) != 0.1 || tr.At(25) != 0.1 {
		t.Fatal("outside outage should be base")
	}
	if tr.At(10) != trace.MaxLoad || tr.At(19.99) != trace.MaxLoad {
		t.Fatal("inside outage should be MaxLoad")
	}
	if Saturate(nil, 0, 1).At(2) != 0 {
		t.Fatal("nil base should default to idle")
	}
}

func TestGridString(t *testing.T) {
	g := mustGrid(Homogeneous(2, 1, LANLink))
	s := g.String()
	if !strings.Contains(s, "2 nodes") || !strings.Contains(s, "node1") {
		t.Fatalf("String:\n%s", s)
	}
}

func TestNodePanicsOnBadID(t *testing.T) {
	g := mustGrid(Homogeneous(1, 1, LANLink))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Node(5)
}

func TestQuantumOverride(t *testing.T) {
	// A coarser quantum changes integration granularity but not the
	// constant-load result.
	n := &Node{Speed: 1, Cores: 1, Load: trace.Constant(0.5), Quantum: 1.0}
	if got := n.ServiceDuration(2, 0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("duration = %v, want 4", got)
	}
}

func TestTransferDurationPanicsOnNegativeBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LANLink.TransferDuration(-1, 0)
}
