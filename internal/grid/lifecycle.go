package grid

import (
	"fmt"
	"math"
	"sort"

	"gridpipe/internal/rng"
)

// NodeState is the availability of one grid processor. The zero value
// is Up. State is per-run mutable; the executor's churn driver owns the
// transitions (see internal/exec and DESIGN.md, "Node lifecycle &
// churn").
type NodeState int32

const (
	// Up: the node serves work normally.
	Up NodeState = iota
	// Draining: the node finishes the work it already accepted but
	// takes no new items; schedulers exclude it from new mappings. The
	// graceful counterpart of a crash.
	Draining
	// Down: the node has crashed or left the grid. In-flight work on it
	// is lost; queued work must be rerouted.
	Down
)

// String renders the state name used in logs and experiment tables.
func (s NodeState) String() string {
	switch s {
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ChurnKind is the type of one node-lifecycle transition.
type ChurnKind uint8

const (
	// ChurnCrash takes an Up or Draining node Down abruptly: in-service
	// work on it is lost and re-dispatched from the last stage boundary.
	ChurnCrash ChurnKind = iota
	// ChurnRejoin brings a previously crashed node back Up.
	ChurnRejoin
	// ChurnJoin brings a brand-new node Up: the node is declared in the
	// grid topology but starts Down and first becomes available at the
	// join time (elastic capacity).
	ChurnJoin
	// ChurnDrain moves an Up node to Draining: a scheduled, graceful
	// leave.
	ChurnDrain
)

// String renders the kind's config-file spelling.
func (k ChurnKind) String() string {
	switch k {
	case ChurnCrash:
		return "crash"
	case ChurnRejoin:
		return "rejoin"
	case ChurnJoin:
		return "join"
	case ChurnDrain:
		return "drain"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseChurnKind parses a config-file kind name.
func ParseChurnKind(s string) (ChurnKind, error) {
	switch s {
	case "crash":
		return ChurnCrash, nil
	case "rejoin":
		return ChurnRejoin, nil
	case "join":
		return ChurnJoin, nil
	case "drain":
		return ChurnDrain, nil
	default:
		return 0, fmt.Errorf("grid: unknown churn kind %q (want crash|rejoin|join|drain)", s)
	}
}

// ChurnEvent is one scheduled lifecycle transition of a named node.
type ChurnEvent struct {
	T    float64
	Node string
	Kind ChurnKind
}

// ChurnSchedule is a validated, time-ordered script of node lifecycle
// transitions — the deterministic churn axis of a scenario. Build with
// NewChurnSchedule (or RandomChurn for a seeded random scenario); the
// executor replays it in virtual time, so two runs with the same
// schedule and seed are bit-identical.
type ChurnSchedule struct {
	events []ChurnEvent
}

// NewChurnSchedule sorts the events by time (stably, so same-instant
// events keep their given order) and validates them as a per-node state
// machine: crash needs an Up or Draining node, rejoin needs a Down
// node that was up before, join needs a node that has never been up,
// and drain needs an Up node. A node whose first event is a join
// starts Down (it has not entered the grid yet); every other node
// starts Up.
func NewChurnSchedule(events ...ChurnEvent) (*ChurnSchedule, error) {
	evs := append([]ChurnEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })

	state := map[string]NodeState{}
	wasUp := map[string]bool{}
	for _, ev := range evs {
		if ev.Node == "" {
			return nil, fmt.Errorf("grid: churn event at t=%v has no node name", ev.T)
		}
		if ev.T < 0 || math.IsNaN(ev.T) || math.IsInf(ev.T, 0) {
			return nil, fmt.Errorf("grid: churn event for %q has invalid time %v", ev.Node, ev.T)
		}
		if ev.Kind > ChurnDrain {
			return nil, fmt.Errorf("grid: churn event for %q at t=%v has unknown kind %d", ev.Node, ev.T, ev.Kind)
		}
		st, seen := state[ev.Node]
		if !seen {
			if ev.Kind == ChurnJoin {
				st = Down // declared but not yet part of the grid
			} else {
				st = Up
				wasUp[ev.Node] = true
			}
		}
		switch ev.Kind {
		case ChurnCrash:
			if st == Down {
				return nil, fmt.Errorf("grid: node %q is already down at t=%v (overlapping outage windows?)", ev.Node, ev.T)
			}
			st = Down
		case ChurnRejoin:
			if st != Down {
				return nil, fmt.Errorf("grid: rejoin of node %q at t=%v before any crash", ev.Node, ev.T)
			}
			if !wasUp[ev.Node] {
				return nil, fmt.Errorf("grid: node %q has never been up at t=%v; use a join event for new nodes", ev.Node, ev.T)
			}
			st = Up
		case ChurnJoin:
			if st != Down || wasUp[ev.Node] {
				return nil, fmt.Errorf("grid: join of node %q at t=%v but it is already part of the grid; use rejoin after a crash", ev.Node, ev.T)
			}
			st = Up
			wasUp[ev.Node] = true
		case ChurnDrain:
			if st != Up {
				return nil, fmt.Errorf("grid: drain of node %q at t=%v but it is %s", ev.Node, ev.T, st)
			}
			st = Draining
		}
		state[ev.Node] = st
	}
	return &ChurnSchedule{events: evs}, nil
}

// Events returns the time-ordered transitions (shared slice; do not
// mutate).
func (cs *ChurnSchedule) Events() []ChurnEvent { return cs.events }

// InitiallyDown returns the names of nodes that have not joined the
// grid at t=0: nodes whose first scheduled event is a join.
func (cs *ChurnSchedule) InitiallyDown() []string {
	seen := map[string]bool{}
	var out []string
	for _, ev := range cs.events {
		if seen[ev.Node] {
			continue
		}
		seen[ev.Node] = true
		if ev.Kind == ChurnJoin {
			out = append(out, ev.Node)
		}
	}
	return out
}

// InitialAvail returns the t=0 availability mask for g under this
// schedule — false for nodes that have not joined yet — or nil when
// every node starts Up, so callers can hand the result straight to an
// unrestricted search. Nodes named by the schedule must exist in g
// (ValidateAgainst).
func (cs *ChurnSchedule) InitialAvail(g *Grid) []bool {
	down := cs.InitiallyDown()
	if len(down) == 0 {
		return nil
	}
	avail := make([]bool, g.NumNodes())
	for i := range avail {
		avail[i] = true
	}
	for _, name := range down {
		avail[g.NodeByName(name).ID] = false
	}
	return avail
}

// ValidateAgainst checks that every event names a node of g.
func (cs *ChurnSchedule) ValidateAgainst(g *Grid) error {
	for _, ev := range cs.events {
		if g.NodeByName(ev.Node) == nil {
			return fmt.Errorf("grid: churn event at t=%v references unknown node %q", ev.T, ev.Node)
		}
	}
	return nil
}

// Availability returns the fraction of [0, horizon] the named node is
// Up (Draining counts as unavailable: it takes no new work). A node
// with no events is available throughout.
func (cs *ChurnSchedule) Availability(name string, horizon float64) float64 {
	if horizon <= 0 {
		return 1
	}
	up := true
	for _, ev := range cs.events {
		if ev.Node != name {
			continue
		}
		if ev.Kind == ChurnJoin {
			up = false // joins later; starts outside the grid
		}
		break
	}
	avail, last := 0.0, 0.0
	for _, ev := range cs.events {
		if ev.Node != name || ev.T > horizon {
			continue
		}
		if up {
			avail += ev.T - last
		}
		last = ev.T
		up = ev.Kind == ChurnRejoin || ev.Kind == ChurnJoin
	}
	if up {
		avail += horizon - last
	}
	return avail / horizon
}

// MeanAvailability returns the node-averaged Up fraction of the grid
// over [0, horizon] under this schedule.
func (cs *ChurnSchedule) MeanAvailability(g *Grid, horizon float64) float64 {
	if g.NumNodes() == 0 {
		return 1
	}
	sum := 0.0
	for _, n := range g.Nodes() {
		sum += cs.Availability(n.Name, horizon)
	}
	return sum / float64(g.NumNodes())
}

// Outage returns the crash/rejoin event pair taking the named node
// Down during [t0, t1) — the true node-failure primitive. (The old
// trace-based helper of the same name, which only saturated the node's
// background load, is now Saturate; see DESIGN.md, "Node lifecycle &
// churn".) It panics on an inverted window; schedule-level validation
// catches everything else.
func Outage(node string, t0, t1 float64) []ChurnEvent {
	if !(t1 > t0) {
		panic(fmt.Sprintf("grid: Outage window [%v, %v) is empty", t0, t1))
	}
	return []ChurnEvent{
		{T: t0, Node: node, Kind: ChurnCrash},
		{T: t1, Node: node, Kind: ChurnRejoin},
	}
}

// Join returns the event bringing a declared-but-absent node into the
// grid at t — the elastic-capacity primitive of experiment F10.
func Join(node string, t float64) ChurnEvent {
	return ChurnEvent{T: t, Node: node, Kind: ChurnJoin}
}

// Drain returns the event gracefully retiring a node at t.
func Drain(node string, t float64) ChurnEvent {
	return ChurnEvent{T: t, Node: node, Kind: ChurnDrain}
}

// RandomChurn generates a seeded random crash/rejoin schedule over the
// given nodes: each node independently crashes with probability crashP
// at a uniform time in (0.05, 0.7)·horizon and stays down for an
// exponential time of the given mean (clamped inside the horizon). The
// first listed node never crashes, so the grid always retains capacity
// to drain. The same seed always yields the same schedule.
func RandomChurn(seed uint64, horizon float64, nodes []string, crashP, meanDown float64) (*ChurnSchedule, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("grid: RandomChurn needs a positive horizon")
	}
	if meanDown <= 0 {
		return nil, fmt.Errorf("grid: RandomChurn needs a positive mean downtime")
	}
	r := rng.New(seed)
	var evs []ChurnEvent
	for i, name := range nodes {
		if i == 0 || !r.Bool(crashP) {
			continue
		}
		t0 := r.Range(0.05, 0.7) * horizon
		down := r.Exp(1 / meanDown)
		t1 := t0 + down
		if t1 >= horizon {
			t1 = 0.99 * horizon
		}
		if t1 <= t0 {
			continue
		}
		evs = append(evs, Outage(name, t0, t1)...)
	}
	return NewChurnSchedule(evs...)
}
