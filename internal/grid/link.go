package grid

import (
	"fmt"
	"math"

	"gridpipe/internal/trace"
)

// Link describes the connection between an ordered pair of nodes.
type Link struct {
	Latency   float64 // one-way latency in seconds
	Bandwidth float64 // bytes per second

	// Quality optionally degrades bandwidth over time: effective
	// bandwidth at t is Bandwidth*(1-Quality.At(t)). Nil means stable.
	Quality trace.Trace
}

// LocalLink is the implicit link of a node to itself: effectively free.
// A tiny non-zero latency keeps event ordering stable and mirrors the
// "really high rate" intra-machine transfers of the era's models.
var LocalLink = Link{Latency: 1e-7, Bandwidth: 100e9}

// TransferDuration returns the time to move the given number of bytes
// across the link starting at time t.
func (l Link) TransferDuration(bytes, t float64) float64 {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("grid: TransferDuration with invalid size %v", bytes))
	}
	bw := l.Bandwidth
	if l.Quality != nil {
		bw *= 1 - l.Quality.At(t)
	}
	if bw <= 0 {
		// A degraded link never fully stops; floor at 1 byte/s so the
		// simulation cannot deadlock on a transfer.
		bw = 1
	}
	return l.Latency + bytes/bw
}

func (l Link) validate() error {
	if l.Latency < 0 || math.IsNaN(l.Latency) {
		return fmt.Errorf("grid: negative link latency %v", l.Latency)
	}
	if l.Bandwidth <= 0 || math.IsNaN(l.Bandwidth) {
		return fmt.Errorf("grid: non-positive link bandwidth %v", l.Bandwidth)
	}
	return nil
}
