package grid

import (
	"encoding/json"
	"fmt"
	"io"

	"gridpipe/internal/rng"
	"gridpipe/internal/trace"
)

// TraceSpec is the JSON description of a load trace, a tagged union on
// Kind. It exists so CLI tools can describe grid scenarios in plain
// config files.
type TraceSpec struct {
	Kind string `json:"kind"` // constant|steps|ramp|sine|walk|burst

	// constant
	Load float64 `json:"load,omitempty"`

	// steps
	Initial float64         `json:"initial,omitempty"`
	Changes []TraceSpecStep `json:"changes,omitempty"`

	// ramp
	T0   float64 `json:"t0,omitempty"`
	T1   float64 `json:"t1,omitempty"`
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`

	// sine
	Base   float64 `json:"base,omitempty"`
	Amp    float64 `json:"amp,omitempty"`
	Period float64 `json:"period,omitempty"`
	Phase  float64 `json:"phase,omitempty"`

	// walk & burst (stochastic, pre-sampled over Horizon at Dt)
	Horizon float64 `json:"horizon,omitempty"`
	Dt      float64 `json:"dt,omitempty"`
	Mean    float64 `json:"mean,omitempty"`
	Sigma   float64 `json:"sigma,omitempty"`
	Theta   float64 `json:"theta,omitempty"`
	Burst   float64 `json:"burst,omitempty"`
	OffMean float64 `json:"offMean,omitempty"`
	OnMean  float64 `json:"onMean,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// TraceSpecStep is one breakpoint of a "steps" TraceSpec.
type TraceSpecStep struct {
	T    float64 `json:"t"`
	Load float64 `json:"load"`
}

// Build materialises the spec into a Trace.
func (ts *TraceSpec) Build() (trace.Trace, error) {
	switch ts.Kind {
	case "", "constant":
		return trace.Constant(ts.Load), nil
	case "steps":
		cs := make([]trace.StepChange, len(ts.Changes))
		for i, c := range ts.Changes {
			cs[i] = trace.StepChange{T: c.T, Load: c.Load}
		}
		return trace.NewSteps(ts.Initial, cs...), nil
	case "ramp":
		return trace.Ramp{T0: ts.T0, T1: ts.T1, From: ts.From, To: ts.To}, nil
	case "sine":
		return trace.Sine{Base: ts.Base, Amp: ts.Amp, Period: ts.Period, Phase: ts.Phase}, nil
	case "walk":
		if ts.Horizon <= 0 || ts.Dt <= 0 {
			return nil, fmt.Errorf("grid: walk trace needs positive horizon and dt")
		}
		return trace.NewRandomWalk(rng.New(ts.Seed), ts.Horizon, ts.Dt, ts.Mean, ts.Sigma, ts.Theta), nil
	case "burst":
		if ts.Horizon <= 0 || ts.Dt <= 0 || ts.OffMean <= 0 || ts.OnMean <= 0 {
			return nil, fmt.Errorf("grid: burst trace needs positive horizon, dt, offMean, onMean")
		}
		return trace.NewMarkovBurst(rng.New(ts.Seed), ts.Horizon, ts.Dt, ts.Base, ts.Burst, ts.OffMean, ts.OnMean), nil
	default:
		return nil, fmt.Errorf("grid: unknown trace kind %q", ts.Kind)
	}
}

// NodeSpec is the JSON description of one processor.
type NodeSpec struct {
	Name  string     `json:"name"`
	Speed float64    `json:"speed"`
	Cores int        `json:"cores,omitempty"` // default 1
	Load  *TraceSpec `json:"load,omitempty"`
}

// LinkSpec is the JSON description of a link override between two named
// nodes (applied symmetrically).
type LinkSpec struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	Latency   float64 `json:"latency"`
	Bandwidth float64 `json:"bandwidth"`
}

// ChurnEventSpec is the JSON description of one node-lifecycle
// transition.
type ChurnEventSpec struct {
	T    float64 `json:"t"`
	Node string  `json:"node"`
	Kind string  `json:"kind"` // crash|rejoin|join|drain
}

// ChurnSpec is the JSON description of a node-lifecycle schedule: the
// scenario's churn axis. Events are validated as a per-node state
// machine (no crash of an unknown or already-down node, no rejoin
// before a crash); see NewChurnSchedule.
type ChurnSpec struct {
	Events []ChurnEventSpec `json:"events"`
}

// Build materialises the spec into a validated schedule.
func (cs *ChurnSpec) Build() (*ChurnSchedule, error) {
	evs := make([]ChurnEvent, len(cs.Events))
	for i, es := range cs.Events {
		kind, err := ParseChurnKind(es.Kind)
		if err != nil {
			return nil, err
		}
		evs[i] = ChurnEvent{T: es.T, Node: es.Node, Kind: kind}
	}
	return NewChurnSchedule(evs...)
}

// Config is the JSON description of a whole grid.
type Config struct {
	DefaultLink LinkSpec   `json:"defaultLink"`
	Nodes       []NodeSpec `json:"nodes"`
	Links       []LinkSpec `json:"links,omitempty"`
	Churn       *ChurnSpec `json:"churn,omitempty"`
}

// Build materialises the configuration into a Grid.
func (c *Config) Build() (*Grid, error) {
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("grid: config has no nodes")
	}
	def := Link{Latency: c.DefaultLink.Latency, Bandwidth: c.DefaultLink.Bandwidth}
	if def.Bandwidth == 0 {
		def = LANLink
	}
	nodes := make([]*Node, len(c.Nodes))
	for i, ns := range c.Nodes {
		cores := ns.Cores
		if cores == 0 {
			cores = 1
		}
		var ld trace.Trace
		if ns.Load != nil {
			var err error
			ld, err = ns.Load.Build()
			if err != nil {
				return nil, fmt.Errorf("node %q: %w", ns.Name, err)
			}
		}
		nodes[i] = &Node{Name: ns.Name, Speed: ns.Speed, Cores: cores, Load: ld}
	}
	g, err := NewGrid(def, nodes...)
	if err != nil {
		return nil, err
	}
	for _, ls := range c.Links {
		na, nb := g.NodeByName(ls.A), g.NodeByName(ls.B)
		if na == nil || nb == nil {
			return nil, fmt.Errorf("grid: link references unknown node %q or %q", ls.A, ls.B)
		}
		if err := g.SetLink(na.ID, nb.ID, Link{Latency: ls.Latency, Bandwidth: ls.Bandwidth}); err != nil {
			return nil, err
		}
	}
	if c.Churn != nil {
		cs, err := c.Churn.Build()
		if err != nil {
			return nil, err
		}
		if err := g.SetChurn(cs); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// LoadConfig parses a JSON grid configuration.
func LoadConfig(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("grid: parsing config: %w", err)
	}
	return &c, nil
}
