package grid

import (
	"strings"
	"testing"
)

// FuzzLoadConfig feeds arbitrary JSON through the full config path
// (parse + Build, including ChurnSpec validation): it must error
// cleanly on anything malformed — overlapping outage windows, churn of
// unknown nodes, rejoin before crash, hostile trace parameters — and
// never panic.
func FuzzLoadConfig(f *testing.F) {
	seeds := []string{
		// Minimal valid grid.
		`{"nodes":[{"name":"a","speed":1}]}`,
		// Valid grid with a full churn schedule.
		`{"nodes":[{"name":"a","speed":1},{"name":"b","speed":2},{"name":"c","speed":1}],
		  "churn":{"events":[
		    {"t":10,"node":"b","kind":"crash"},
		    {"t":20,"node":"b","kind":"rejoin"},
		    {"t":5,"node":"c","kind":"join"},
		    {"t":30,"node":"a","kind":"drain"}]}}`,
		// Crash of an unknown node.
		`{"nodes":[{"name":"a","speed":1}],"churn":{"events":[{"t":1,"node":"zz","kind":"crash"}]}}`,
		// Rejoin before any crash.
		`{"nodes":[{"name":"a","speed":1}],"churn":{"events":[{"t":1,"node":"a","kind":"rejoin"}]}}`,
		// Overlapping outage windows.
		`{"nodes":[{"name":"a","speed":1},{"name":"b","speed":1}],
		  "churn":{"events":[{"t":1,"node":"a","kind":"crash"},{"t":2,"node":"a","kind":"crash"}]}}`,
		// Unknown kind, negative time, missing fields.
		`{"nodes":[{"name":"a","speed":1}],"churn":{"events":[{"t":1,"node":"a","kind":"explode"}]}}`,
		`{"nodes":[{"name":"a","speed":1}],"churn":{"events":[{"t":-3,"node":"a","kind":"crash"}]}}`,
		`{"nodes":[{"name":"a","speed":1}],"churn":{"events":[{}]}}`,
		// Join of a node that is already part of the grid.
		`{"nodes":[{"name":"a","speed":1},{"name":"b","speed":1}],
		  "churn":{"events":[{"t":1,"node":"a","kind":"crash"},{"t":2,"node":"a","kind":"join"}]}}`,
		// Trace specs and link overrides, valid and broken.
		`{"nodes":[{"name":"a","speed":1,"load":{"kind":"sine","base":0.2,"amp":0.1,"period":60}}]}`,
		`{"nodes":[{"name":"a","speed":1,"load":{"kind":"walk"}}]}`,
		`{"nodes":[{"name":"a","speed":0}]}`,
		`{"nodes":[{"name":"a","speed":1},{"name":"a","speed":1}]}`,
		`{"bogus":1}`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cfg, err := LoadConfig(strings.NewReader(in))
		if err != nil {
			return // malformed JSON must simply error
		}
		// Keep the fuzzer away from resource blow-ups that are not
		// interesting here: huge node counts allocate an n^2 link
		// matrix, and stochastic traces pre-sample horizon/dt points.
		if len(cfg.Nodes) > 64 {
			t.Skip("node count out of fuzz scope")
		}
		for _, ns := range cfg.Nodes {
			if ns.Load != nil && ns.Load.Dt > 0 && ns.Load.Horizon/ns.Load.Dt > 1e6 {
				t.Skip("trace resolution out of fuzz scope")
			}
		}
		g, err := cfg.Build()
		if err != nil {
			return // invalid configs must error cleanly, never panic
		}
		// A successfully built grid with churn must have a coherent
		// schedule: validation against the grid already passed.
		if cs := g.Churn(); cs != nil {
			if err := cs.ValidateAgainst(g); err != nil {
				t.Fatalf("built grid carries an invalid schedule: %v", err)
			}
			cs.MeanAvailability(g, 100) // must not panic either
		}
	})
}
