package grid

import (
	"strings"
	"testing"

	"gridpipe/internal/trace"
)

func TestTraceSpecBuildAllKinds(t *testing.T) {
	cases := []struct {
		name string
		spec TraceSpec
	}{
		{"default", TraceSpec{}},
		{"constant", TraceSpec{Kind: "constant", Load: 0.3}},
		{"steps", TraceSpec{Kind: "steps", Initial: 0.1, Changes: []TraceSpecStep{{T: 5, Load: 0.5}}}},
		{"ramp", TraceSpec{Kind: "ramp", T0: 0, T1: 10, From: 0, To: 0.5}},
		{"sine", TraceSpec{Kind: "sine", Base: 0.4, Amp: 0.2, Period: 60}},
		{"walk", TraceSpec{Kind: "walk", Horizon: 100, Dt: 1, Mean: 0.3, Sigma: 0.05, Theta: 0.2, Seed: 1}},
		{"burst", TraceSpec{Kind: "burst", Horizon: 100, Dt: 1, Base: 0.1, Burst: 0.5, OffMean: 10, OnMean: 5, Seed: 2}},
	}
	for _, c := range cases {
		tr, err := c.spec.Build()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if err := trace.Validate(tr, 100); err != nil {
			t.Errorf("%s: built trace invalid: %v", c.name, err)
		}
	}
}

func TestTraceSpecBuildErrors(t *testing.T) {
	bad := []TraceSpec{
		{Kind: "nope"},
		{Kind: "walk"},                                  // missing horizon/dt
		{Kind: "burst", Horizon: 10, Dt: 1},             // missing means
		{Kind: "burst", Horizon: 10, Dt: 1, OffMean: 1}, // missing onMean
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConfigBuild(t *testing.T) {
	in := `{
		"defaultLink": {"latency": 0.001, "bandwidth": 1e7},
		"nodes": [
			{"name": "a", "speed": 1},
			{"name": "b", "speed": 2, "cores": 4, "load": {"kind": "constant", "load": 0.25}},
			{"name": "c", "speed": 0.5}
		],
		"links": [
			{"a": "a", "b": "c", "latency": 0.05, "bandwidth": 1e6}
		]
	}`
	cfg, err := LoadConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	b := g.NodeByName("b")
	if b.Cores != 4 || b.EffectiveSpeed(0) != 1.5 {
		t.Fatalf("node b wrong: cores=%d speed=%v", b.Cores, b.EffectiveSpeed(0))
	}
	if g.NodeByName("a").Cores != 1 {
		t.Fatal("default cores should be 1")
	}
	a, c := g.NodeByName("a"), g.NodeByName("c")
	if g.Link(a.ID, c.ID).Latency != 0.05 {
		t.Fatal("link override not applied")
	}
	if g.Link(a.ID, b.ID).Latency != 0.001 {
		t.Fatal("default link not applied")
	}
}

func TestConfigBuildErrors(t *testing.T) {
	cases := []string{
		`{"nodes": []}`,
		`{"nodes": [{"name":"a","speed":1}], "links":[{"a":"a","b":"zz","latency":1,"bandwidth":1}]}`,
		`{"nodes": [{"name":"a","speed":1,"load":{"kind":"bogus"}}]}`,
		`{"nodes": [{"name":"a","speed":-1}]}`,
	}
	for i, in := range cases {
		cfg, err := LoadConfig(strings.NewReader(in))
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := cfg.Build(); err == nil {
			t.Errorf("case %d: expected build error", i)
		}
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
}

func TestConfigDefaultLinkFallback(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"nodes":[{"name":"a","speed":1},{"name":"b","speed":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Link(0, 1).Bandwidth != LANLink.Bandwidth {
		t.Fatal("missing default link should fall back to LAN")
	}
}
