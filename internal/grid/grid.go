package grid

import (
	"fmt"
	"strings"
)

// Grid is a set of nodes plus a full link matrix. Construct with
// NewGrid or the builders in builder.go; the zero value is unusable.
type Grid struct {
	nodes []*Node
	// links[i][j] is the link from node i to node j; links[i][i] is
	// LocalLink.
	links [][]Link
	// churn is the optional node-lifecycle script attached to this
	// grid's scenario (see lifecycle.go); the executor replays it.
	churn *ChurnSchedule
}

// NewGrid assembles a grid from nodes, assigning IDs in order, with
// every inter-node link set to def. Customise pairs afterwards with
// SetLink.
func NewGrid(def Link, nodes ...*Node) (*Grid, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("grid: no nodes")
	}
	if err := def.validate(); err != nil {
		return nil, err
	}
	g := &Grid{nodes: nodes}
	seen := map[string]bool{}
	for i, n := range nodes {
		n.ID = NodeID(i)
		if n.Name == "" {
			n.Name = fmt.Sprintf("node%d", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("grid: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if err := n.validate(); err != nil {
			return nil, err
		}
	}
	g.links = make([][]Link, len(nodes))
	for i := range g.links {
		g.links[i] = make([]Link, len(nodes))
		for j := range g.links[i] {
			if i == j {
				g.links[i][j] = LocalLink
			} else {
				g.links[i][j] = def
			}
		}
	}
	return g, nil
}

// NumNodes returns the number of processors.
func (g *Grid) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given ID. It panics on an invalid ID.
func (g *Grid) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("grid: invalid node id %d", id))
	}
	return g.nodes[id]
}

// Nodes returns all nodes in ID order (shared slice; do not mutate).
func (g *Grid) Nodes() []*Node { return g.nodes }

// NodeByName returns the named node, or nil.
func (g *Grid) NodeByName(name string) *Node {
	for _, n := range g.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Link returns the link from a to b (LocalLink when a == b).
func (g *Grid) Link(a, b NodeID) Link {
	return g.links[a][b]
}

// SetLink overrides the link between a and b in both directions.
// It panics on a self-link override or invalid IDs.
func (g *Grid) SetLink(a, b NodeID, l Link) error {
	if a == b {
		return fmt.Errorf("grid: cannot override self-link of node %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.nodes) || int(b) < 0 || int(b) >= len(g.nodes) {
		return fmt.Errorf("grid: SetLink with invalid ids %d,%d", a, b)
	}
	if err := l.validate(); err != nil {
		return err
	}
	g.links[a][b] = l
	g.links[b][a] = l
	return nil
}

// SetLinkOneWay overrides only the a→b direction, for asymmetric
// wide-area paths.
func (g *Grid) SetLinkOneWay(a, b NodeID, l Link) error {
	if a == b {
		return fmt.Errorf("grid: cannot override self-link of node %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.nodes) || int(b) < 0 || int(b) >= len(g.nodes) {
		return fmt.Errorf("grid: SetLinkOneWay with invalid ids %d,%d", a, b)
	}
	if err := l.validate(); err != nil {
		return err
	}
	g.links[a][b] = l
	return nil
}

// SetChurn attaches a node-lifecycle schedule to the grid's scenario
// after validating that every event names a node of this grid. A nil
// schedule detaches churn.
func (g *Grid) SetChurn(cs *ChurnSchedule) error {
	if cs != nil {
		if err := cs.ValidateAgainst(g); err != nil {
			return err
		}
	}
	g.churn = cs
	return nil
}

// Churn returns the attached lifecycle schedule, or nil.
func (g *Grid) Churn() *ChurnSchedule { return g.churn }

// ResetLifecycle returns every node to Up — the start-of-run state
// before a churn schedule's initial joins are applied.
func (g *Grid) ResetLifecycle() {
	for _, n := range g.nodes {
		n.state = Up
	}
}

// TransferDuration returns the time to move bytes from node a to node b
// starting at time t.
func (g *Grid) TransferDuration(a, b NodeID, bytes, t float64) float64 {
	return g.links[a][b].TransferDuration(bytes, t)
}

// String renders a short summary for logs and the gridsim tool.
func (g *Grid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid: %d nodes\n", len(g.nodes))
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  %-12s speed=%.2f cores=%d\n", n.Name, n.Speed, n.Cores)
	}
	return b.String()
}
