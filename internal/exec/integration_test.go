package exec

import (
	"bytes"
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sim"
	"gridpipe/internal/trace"
)

// TestReplayedTraceDrivesExecution closes the loop of the
// measure-offline/replay-online workflow: a stochastic load trace is
// serialised to CSV (as an operator would export NWS logs), read back,
// attached to a grid node, and must slow the pipeline exactly as the
// original trace does.
func TestReplayedTraceDrivesExecution(t *testing.T) {
	orig := trace.NewRandomWalk(rng.New(5), 200, 1, 0.5, 0.1, 0.2)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(tr trace.Trace) float64 {
		g, err := grid.NewGrid(grid.LANLink,
			&grid.Node{Name: "a", Speed: 1, Cores: 1, Load: tr},
			&grid.Node{Name: "b", Speed: 1, Cores: 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{}
		e, err := New(eng, g, model.Balanced(2, 0.1, 100), model.OneToOne(2), Options{MaxInFlight: 8})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := e.RunItems(400)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}

	msOrig := runWith(orig)
	msReplay := runWith(replayed)
	if rel := math.Abs(msOrig-msReplay) / msOrig; rel > 0.01 {
		t.Fatalf("replayed trace diverges: %v vs %v (rel %v)", msOrig, msReplay, rel)
	}

	// And the load must actually have slowed things relative to idle.
	msIdle := runWith(trace.Constant(0))
	if msOrig < msIdle*1.3 {
		t.Fatalf("walk load (mean 0.5) barely slowed the run: %v vs idle %v", msOrig, msIdle)
	}
}

// TestDegradingLinkSlowsTransfers exercises the link Quality trace end
// to end: a link whose effective bandwidth halves mid-run stretches the
// makespan of a transfer-bound pipeline.
func TestDegradingLinkSlowsTransfers(t *testing.T) {
	mk := func(q trace.Trace) float64 {
		g, err := grid.Heterogeneous([]float64{1, 1}, grid.LANLink)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetLink(0, 1, grid.Link{Latency: 1e-3, Bandwidth: 1e6, Quality: q}); err != nil {
			t.Fatal(err)
		}
		spec := model.PipelineSpec{Stages: []model.StageSpec{
			{Name: "a", Work: 0.001, OutBytes: 0.5e6},
			{Name: "b", Work: 0.001},
		}}
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, model.OneToOne(2), Options{MaxInFlight: 4})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := e.RunItems(100)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	stable := mk(nil)
	degraded := mk(trace.Constant(0.5))
	ratio := degraded / stable
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("50%% link degradation should ~double a transfer-bound run: ratio %v", ratio)
	}
}

// TestSaturatedVsOracleMakespanOrdering: for any deterministic
// instance, the mapping chosen by exhaustive search must yield a
// makespan no worse (beyond transient noise) than an arbitrary
// alternative — the executor must respect the model's ordering on
// clearly separated mappings.
func TestModelOrderingRespectedBySimulator(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 4}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 0)
	good := model.SingleNode(2, 1) // 4x node: 20/s
	bad := model.SingleNode(2, 0)  // 1x node: 5/s
	run := func(m model.Mapping) float64 {
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, m, Options{MaxInFlight: 8})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := e.RunItems(400)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	if gm, bm := run(good), run(bad); gm >= bm {
		t.Fatalf("simulator contradicts model ordering: good=%v bad=%v", gm, bm)
	}
}
