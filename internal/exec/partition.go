package exec

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// PartitionPlan assigns grid nodes to simulation partitions and
// carries the conservative lookahead the partitioned engine needs:
// the minimum network latency of any link crossing a partition
// boundary. Anything one partition does to another must ride such a
// link, so no cross-partition event can land sooner than the
// lookahead — the bound that lets sim.ParallelEngine advance all
// partitions concurrently within a window.
type PartitionPlan struct {
	// Parts is the partition count.
	Parts int
	// Assign maps node ID to partition index; -1 marks a node outside
	// every partition (it must host no work during a partitioned run).
	Assign []int
	// Lookahead is the minimum cross-partition link latency, 0 when
	// nothing crosses a boundary (a single partition, or fully
	// disconnected tenant islands — the caller picks a transfer bound).
	Lookahead float64
}

// PartitionOf returns the partition of node n (-1 if unassigned).
func (p PartitionPlan) PartitionOf(n grid.NodeID) int { return p.Assign[n] }

// String renders a short summary for logs and gridsim.
func (p PartitionPlan) String() string {
	sizes := make([]int, p.Parts)
	unassigned := 0
	for _, pt := range p.Assign {
		if pt < 0 {
			unassigned++
			continue
		}
		sizes[pt]++
	}
	s := fmt.Sprintf("partition plan: %d partitions, lookahead %.3gs, sizes %v", p.Parts, p.Lookahead, sizes)
	if unassigned > 0 {
		s += fmt.Sprintf(", %d unassigned", unassigned)
	}
	return s
}

// PlanPartitions splits the grid's nodes into parts contiguous blocks
// of near-equal size — the node-seam partitioning of a homogeneous
// run. It errors on a non-positive count or one exceeding the node
// count (an empty partition advances no events and only costs barrier
// traffic).
func PlanPartitions(g *grid.Grid, parts int) (PartitionPlan, error) {
	np := g.NumNodes()
	if parts < 1 {
		return PartitionPlan{}, fmt.Errorf("exec: PlanPartitions with %d partitions", parts)
	}
	if parts > np {
		return PartitionPlan{}, fmt.Errorf("exec: %d partitions for %d nodes (at most one partition per node)", parts, np)
	}
	plan := PartitionPlan{Parts: parts, Assign: make([]int, np)}
	for n := 0; n < np; n++ {
		// Block n*parts/np: the first np%parts blocks get the extra node.
		plan.Assign[n] = n * parts / np
	}
	plan.Lookahead = crossLookahead(g, plan.Assign)
	return plan, nil
}

// PlanByMasks partitions along tenant seams: masks[i] is partition
// i's node set (a cluster lease). Masks must be pairwise disjoint;
// nodes covered by no mask stay unassigned (-1) and must host no
// work. The lease boundaries are the natural partition seams of a
// multi-tenant run — tenants only interact through the arbiter, whose
// notifications ride cross-partition links.
func PlanByMasks(g *grid.Grid, masks []model.CapacityMask) (PartitionPlan, error) {
	np := g.NumNodes()
	if len(masks) == 0 {
		return PartitionPlan{}, fmt.Errorf("exec: PlanByMasks with no masks")
	}
	plan := PartitionPlan{Parts: len(masks), Assign: make([]int, np)}
	for n := range plan.Assign {
		plan.Assign[n] = -1
	}
	for i, m := range masks {
		for n, ok := range m {
			if !ok {
				continue
			}
			if n >= np {
				return PartitionPlan{}, fmt.Errorf("exec: mask %d names node %d of a %d-node grid", i, n, np)
			}
			if prev := plan.Assign[n]; prev >= 0 {
				return PartitionPlan{}, fmt.Errorf("exec: node %d leased to partitions %d and %d (masks must be disjoint)", n, prev, i)
			}
			plan.Assign[n] = i
		}
	}
	plan.Lookahead = crossLookahead(g, plan.Assign)
	return plan, nil
}

// crossLookahead returns the minimum latency of a link between
// assigned nodes of different partitions (+Inf collapsed to 0 when no
// pair crosses).
func crossLookahead(g *grid.Grid, assign []int) float64 {
	min := math.Inf(1)
	for a := range assign {
		if assign[a] < 0 {
			continue
		}
		for b := range assign {
			if assign[b] < 0 || assign[a] == assign[b] {
				continue
			}
			if l := g.Link(grid.NodeID(a), grid.NodeID(b)).Latency; l < min {
				min = l
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
