package exec

import (
	"math"
	"testing"
	"testing/quick"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sim"
)

// randomInstance builds a random small grid + spec + valid mapping from
// three bytes of quick-check entropy.
func randomInstance(a, b, c uint8) (*grid.Grid, model.PipelineSpec, model.Mapping, error) {
	r := rng.New(uint64(a)<<16 | uint64(b)<<8 | uint64(c))
	np := 1 + r.Intn(4)
	ns := 1 + r.Intn(4)
	speeds := make([]float64, np)
	for i := range speeds {
		speeds[i] = 0.5 + 2*r.Float64()
	}
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		return nil, model.PipelineSpec{}, model.Mapping{}, err
	}
	stages := make([]model.StageSpec, ns)
	for i := range stages {
		stages[i] = model.StageSpec{
			Name:     "s",
			Work:     0.02 + 0.2*r.Float64(),
			OutBytes: float64(r.Intn(100000)),
		}
	}
	spec := model.PipelineSpec{Stages: stages, InBytes: float64(r.Intn(100000))}
	nodes := make([]grid.NodeID, ns)
	for i := range nodes {
		nodes[i] = grid.NodeID(r.Intn(np))
	}
	return g, spec, model.FromNodes(nodes...), nil
}

// Property: every admitted item completes, and the measured saturated
// throughput never beats the analytic bound (for deterministic work the
// bound is tight from above).
func TestConservationAndModelBoundProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g, spec, m, err := randomInstance(a, b, c)
		if err != nil {
			return false
		}
		pred, err := model.Predict(g, spec, m, nil)
		if err != nil {
			return false
		}
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, m, Options{MaxInFlight: 4 * spec.NumStages()})
		if err != nil {
			return false
		}
		const n = 300
		makespan, err := e.RunItems(n)
		if err != nil {
			return false
		}
		if e.Done() != n || e.InFlight() != 0 || e.Admitted() != n {
			return false
		}
		measured := float64(n) / makespan
		// 2% tolerance for the finite-run fill transient.
		return measured <= pred.Throughput*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-item latency is never below the no-contention service
// floor of its path.
func TestLatencyFloorProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g, spec, m, err := randomInstance(a, b, c)
		if err != nil {
			return false
		}
		// Service floor: work of each stage on its slowest replica.
		floor := 0.0
		for i, st := range spec.Stages {
			slowest := math.Inf(1)
			for _, nid := range m.Assign[i] {
				if s := g.Node(nid).Speed; s < slowest {
					slowest = s
				}
			}
			floor += st.Work / slowest
		}
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, m, Options{})
		if err != nil {
			return false
		}
		if _, err := e.RunItems(100); err != nil {
			return false
		}
		for _, l := range e.Latencies() {
			// Floor uses the *slowest* replica; items on faster
			// replicas may finish quicker, so recompute a weak floor:
			// fastest replica everywhere.
			_ = l
		}
		weakFloor := 0.0
		for i, st := range spec.Stages {
			fastest := 0.0
			for _, nid := range m.Assign[i] {
				if s := g.Node(nid).Speed; s > fastest {
					fastest = s
				}
			}
			weakFloor += st.Work / fastest
		}
		for _, l := range e.Latencies() {
			if l < weakFloor-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a remap at an arbitrary time, under either protocol, to an
// arbitrary valid mapping never loses or duplicates items.
func TestRemapNeverLosesItemsProperty(t *testing.T) {
	f := func(a, b, c uint8, when uint8, kill bool) bool {
		g, spec, m, err := randomInstance(a, b, c)
		if err != nil {
			return false
		}
		_, spec2, m2, err := randomInstance(c, a, b)
		if err != nil {
			return false
		}
		// Reuse the second instance's mapping if it is valid for the
		// first instance's dimensions; otherwise remap to single-node.
		target := m2
		if target.Validate(spec.NumStages(), g.NumNodes()) != nil {
			target = model.SingleNode(spec.NumStages(), 0)
		}
		_ = spec2
		proto := DrainSafe
		if kill {
			proto = KillRestart
		}
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, m, Options{MaxInFlight: 8, TotalItems: 200})
		if err != nil {
			return false
		}
		remapT := float64(when) * 0.05
		eng.Schedule(remapT, func() {
			if _, err := e.Remap(target, proto); err != nil {
				t.Errorf("remap: %v", err)
			}
		})
		e.Start()
		for e.Done() < 200 && eng.Step() {
		}
		return e.Done() == 200 && e.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: search strategies always return mappings that validate and
// whose predictions are self-consistent (positive, finite).
func TestSearchersSoundOnRandomInstancesProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g, spec, _, err := randomInstance(a, b, c)
		if err != nil {
			return false
		}
		pred, err := model.Predict(g, spec, model.SingleNode(spec.NumStages(), 0), nil)
		if err != nil {
			return false
		}
		return pred.Throughput > 0 && !math.IsInf(pred.Throughput, 0) && !math.IsNaN(pred.Throughput)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
