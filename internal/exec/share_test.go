package exec

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
)

// oneStageSpec is a single unit-work stage with no transfer costs.
func oneStageSpec() model.PipelineSpec {
	return model.PipelineSpec{
		Stages: []model.StageSpec{{Name: "s", Work: 1}},
	}
}

// TestShareSingleTenantIdentical pins the degenerate case: one
// executor attached to a NodeShares behaves exactly like one without —
// a lone tenant never exceeds the node's cores, so its share is always
// 1 and no rescale ever fires.
func TestShareSingleTenantIdentical(t *testing.T) {
	run := func(share bool) float64 {
		g, err := grid.Homogeneous(2, 1, grid.LANLink)
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{}
		opts := Options{MaxInFlight: 2}
		if share {
			opts.Share = NewNodeShares(g)
		}
		ex, err := New(eng, g, oneStageSpec(), model.FromNodes(0), opts)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := ex.RunItems(10)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	plain, shared := run(false), run(true)
	if plain != shared {
		t.Fatalf("single-tenant makespan diverged: plain=%v shared=%v", plain, shared)
	}
}

// TestShareTwoTenantsHalveCapacity pins the proportional-sharing
// model: two executors pushing one-stage unit-work items through the
// same 1-core node each progress at half speed, so both finish in
// twice the solo time.
func TestShareTwoTenantsHalveCapacity(t *testing.T) {
	g, err := grid.Homogeneous(1, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	sh := NewNodeShares(g)
	mk := func() *Executor {
		ex, err := New(eng, g, oneStageSpec(), model.FromNodes(0), Options{
			MaxInFlight: 1, TotalItems: 5, Share: sh,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	a, b := mk(), mk()
	a.Start()
	b.Start()
	for eng.Step() {
	}
	if a.Done() != 5 || b.Done() != 5 {
		t.Fatalf("done=%d/%d, want 5/5", a.Done(), b.Done())
	}
	// 10 unit-work items through one speed-1 core: exactly 10 seconds,
	// not 5 — the tenants shared, they did not each get a full node.
	if got := eng.Now(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("two tenants × 5 unit items on one core ended at t=%v, want 10", got)
	}
}

// TestShareRescaleBanksProgress pins the mid-service rescale: a task
// half-done at full speed when a second tenant arrives finishes the
// remaining half at half speed.
func TestShareRescaleBanksProgress(t *testing.T) {
	g, err := grid.Homogeneous(1, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	sh := NewNodeShares(g)
	a, err := New(eng, g, oneStageSpec(), model.FromNodes(0), Options{
		MaxInFlight: 1, TotalItems: 1, Share: sh,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(eng, g, oneStageSpec(), model.FromNodes(0), Options{
		MaxInFlight: 1, TotalItems: 1, Share: sh,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start() // a's item starts service at t=0 under share 1
	eng.RunUntil(0.5)
	b.Start() // b arrives mid-service: both drop to share 1/2
	for eng.Step() {
	}
	// a: 0.5 work banked by t=0.5, 0.5 left at half speed → t=1.5.
	// b: 1.0 work at half speed from 0.5 → rescaled to full speed when
	// a leaves at 1.5 (0.5 work left) → t=2.0.
	lats := a.Latencies()
	if len(lats) != 1 || math.Abs(lats[0]-1.5) > 1e-9 {
		t.Fatalf("tenant a latency %v, want 1.5 (half the work at half speed)", lats)
	}
	if got := eng.Now(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("run ended at t=%v, want 2.0", got)
	}
}
