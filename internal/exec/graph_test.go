package exec

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
	"gridpipe/internal/topo"
)

func diamondSpec(t *testing.T) model.PipelineSpec {
	t.Helper()
	g, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.1, OutBytes: 1e5, Replicable: true},
		[]topo.Stage{
			{Name: "left", Work: 0.3, OutBytes: 1e5, Replicable: true},
			{Name: "right", Work: 0.3, OutBytes: 1e5, Replicable: true},
		},
		topo.Stage{Name: "tail", Work: 0.1, OutBytes: 1e4, Replicable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := model.FromGraph(g, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// A diamond run is conservative: every admitted item is serviced once
// by every stage (both branches) and completes exactly once.
func TestDiamondConservation(t *testing.T) {
	spec := diamondSpec(t)
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, model.OneToOne(4), Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const items = 200
	if _, err := e.RunItems(items); err != nil {
		t.Fatal(err)
	}
	if e.Done() != items || e.InFlight() != 0 {
		t.Fatalf("done=%d inflight=%d", e.Done(), e.InFlight())
	}
	for s := 0; s < spec.NumStages(); s++ {
		if c := e.Monitor().Stage(s).Count(); c != items {
			t.Fatalf("stage %d serviced %d items, want %d", s, c, items)
		}
	}
}

// The two branches overlap: a lone item's traversal time must be well
// below the summed stage works, and a saturated diamond must sustain
// the branch-bound throughput.
func TestDiamondBranchesOverlap(t *testing.T) {
	spec := diamondSpec(t)
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}

	eng := &sim.Engine{}
	e, err := New(eng, g, spec, model.OneToOne(4), Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunItems(1); err != nil {
		t.Fatal(err)
	}
	lat := e.Latencies()[0]
	// Serial work is 0.8; the overlapped critical path is 0.5 plus
	// small transfers.
	if lat > 0.6 {
		t.Fatalf("single-item latency %v suggests branches ran serially", lat)
	}

	eng2 := &sim.Engine{}
	e2, err := New(eng2, g, spec, model.OneToOne(4), Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const items = 400
	ms, err := e2.RunItems(items)
	if err != nil {
		t.Fatal(err)
	}
	thr := float64(items) / ms
	want := 1 / 0.3 // each branch stage bounds the rate
	if math.Abs(thr-want)/want > 0.1 {
		t.Fatalf("diamond throughput %v, want ≈ %v", thr, want)
	}
}

// Fan-in replica choice is sticky: with the merge stage replicated,
// both parts of each item must land on one replica and the join never
// deadlocks.
func TestDiamondReplicatedMergeJoins(t *testing.T) {
	spec := diamondSpec(t)
	g, err := grid.Homogeneous(6, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1}, {2}, {3, 4, 5}}}
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 12})
	if err != nil {
		t.Fatal(err)
	}
	const items = 300
	if _, err := e.RunItems(items); err != nil {
		t.Fatal(err)
	}
	if c := e.Monitor().Stage(3).Count(); c != items {
		t.Fatalf("merge stage serviced %d, want %d", c, items)
	}
}

// A mid-run remap of a diamond (both protocols) neither loses nor
// duplicates items, including parts split across branches at the
// moment of the switch.
func TestDiamondRemapSafe(t *testing.T) {
	for _, proto := range []RemapProtocol{DrainSafe, KillRestart} {
		spec := diamondSpec(t)
		g, err := grid.Homogeneous(5, 1, grid.LANLink)
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, model.OneToOne(4), Options{MaxInFlight: 10})
		if err != nil {
			t.Fatal(err)
		}
		nm := model.Mapping{Assign: [][]grid.NodeID{{4}, {2, 3}, {0}, {1}}}
		eng.Schedule(3, func() {
			if _, err := e.Remap(nm, proto); err != nil {
				t.Errorf("%v: remap: %v", proto, err)
			}
		})
		const items = 150
		if _, err := e.RunItems(items); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if e.Done() != items {
			t.Fatalf("%v: done=%d", proto, e.Done())
		}
	}
}

// A remap that lands between a fan-in's part arrivals must pay to
// relocate the parts already joined at the stale replica: the item
// still completes exactly once and the move is counted as a migration
// (it is not teleported for free).
func TestDiamondMidJoinRemapPaysRelocation(t *testing.T) {
	g, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.01, OutBytes: 1e5, Replicable: true},
		[]topo.Stage{
			{Name: "fast", Work: 0.01, OutBytes: 1e5, Replicable: true},
			{Name: "slow", Work: 1.0, OutBytes: 1e5, Replicable: true},
		},
		topo.Stage{Name: "merge", Work: 0.01, OutBytes: 1e4, Replicable: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := model.FromGraph(g, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := grid.Homogeneous(5, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	e, err := New(eng, gr, spec, model.OneToOne(4), Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// At t=0.5 the fast part has joined at node 3 while the slow part
	// is still in service; move the merge stage to node 4.
	var rst RemapStats
	eng.Schedule(0.5, func() {
		nm := model.Mapping{Assign: [][]grid.NodeID{{0}, {1}, {2}, {4}}}
		var err error
		rst, err = e.Remap(nm, DrainSafe)
		if err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	if _, err := e.RunItems(1); err != nil {
		t.Fatal(err)
	}
	if e.Done() != 1 {
		t.Fatalf("done = %d", e.Done())
	}
	if e.Migrations() < 1 {
		t.Fatal("mid-join relocation was not counted as a migration")
	}
	if !rst.Changed {
		t.Fatal("remap reported unchanged")
	}
}

// The explicit chain topology reproduces the implicit linear executor
// exactly: same latency trace, same makespan.
func TestChainTopoMatchesLinearExecutor(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 1.5}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec model.PipelineSpec) []float64 {
		eng := &sim.Engine{}
		e, err := New(eng, g, spec, model.FromNodes(0, 1, 2), Options{MaxInFlight: 6})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunItems(80); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), e.Latencies()...)
	}
	linear := model.Balanced(3, 0.2, 1e5)
	withTopo := linear
	withTopo.Topo = linear.Graph()
	a, b := run(linear), run(withTopo)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency[%d]: linear %v vs chain-topo %v", i, a[i], b[i])
		}
	}
}
