package exec

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
	"gridpipe/internal/trace"
)

func het(t *testing.T, speeds ...float64) *grid.Grid {
	t.Helper()
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newExec(t *testing.T, g *grid.Grid, spec model.PipelineSpec, m model.Mapping, opts Options) (*sim.Engine, *Executor) {
	t.Helper()
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, e
}

func TestRunItemsCompletesAll(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.1, 1000)
	_, e := newExec(t, g, spec, model.OneToOne(3), Options{})
	makespan, err := e.RunItems(50)
	if err != nil {
		t.Fatal(err)
	}
	if e.Done() != 50 || e.InFlight() != 0 {
		t.Fatalf("done=%d inflight=%d", e.Done(), e.InFlight())
	}
	if makespan <= 0 {
		t.Fatalf("makespan = %v", makespan)
	}
	if len(e.Latencies()) != 50 {
		t.Fatalf("latencies = %d", len(e.Latencies()))
	}
}

func TestThroughputMatchesAnalyticBalanced(t *testing.T) {
	g := het(t, 1, 1, 1, 1)
	spec := model.Balanced(4, 0.1, 0)
	m := model.OneToOne(4)
	pred, err := model.Predict(g, spec, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, e := newExec(t, g, spec, m, Options{MaxInFlight: 16})
	const n = 2000
	makespan, err := e.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(n) / makespan
	if rel := math.Abs(measured-pred.Throughput) / pred.Throughput; rel > 0.05 {
		t.Fatalf("measured %v vs predicted %v (rel err %v)", measured, pred.Throughput, rel)
	}
}

func TestThroughputBoundedByBottleneck(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "fast", Work: 0.01},
		{Name: "slow", Work: 0.2},
	}}
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{MaxInFlight: 8})
	const n = 500
	makespan, err := e.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(n) / makespan
	if measured > 5.01 {
		t.Fatalf("throughput %v exceeds bottleneck bound 5", measured)
	}
	if measured < 4.5 {
		t.Fatalf("throughput %v far below bottleneck bound 5", measured)
	}
}

func TestColocationMatchesAnalytic(t *testing.T) {
	g := het(t, 1, 2)
	spec := model.Balanced(3, 0.1, 0)
	m := model.FromNodes(0, 1, 1)
	pred, _ := model.Predict(g, spec, m, nil)
	_, e := newExec(t, g, spec, m, Options{MaxInFlight: 12})
	const n = 1500
	makespan, err := e.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(n) / makespan
	if rel := math.Abs(measured-pred.Throughput) / pred.Throughput; rel > 0.06 {
		t.Fatalf("measured %v vs predicted %v", measured, pred.Throughput)
	}
}

func TestLoadedNodeSlowsPipeline(t *testing.T) {
	gIdle := het(t, 1, 1)
	spec := model.Balanced(2, 0.1, 0)
	_, eIdle := newExec(t, gIdle, spec, model.OneToOne(2), Options{})
	msIdle, err := eIdle.RunItems(300)
	if err != nil {
		t.Fatal(err)
	}

	gLoaded, err := grid.NewGrid(grid.LANLink,
		&grid.Node{Name: "a", Speed: 1, Cores: 1, Load: trace.Constant(0.5)},
		&grid.Node{Name: "b", Speed: 1, Cores: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, eLoaded := newExec(t, gLoaded, spec, model.OneToOne(2), Options{})
	msLoaded, err := eLoaded.RunItems(300)
	if err != nil {
		t.Fatal(err)
	}
	ratio := msLoaded / msIdle
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("50%% load should ~double makespan, ratio = %v", ratio)
	}
}

func TestReplicatedStageScales(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "light", Work: 0.02},
		{Name: "heavy", Work: 0.2, Replicable: true},
	}}
	plain := model.FromNodes(0, 1)
	_, e1 := newExec(t, g, spec, plain, Options{MaxInFlight: 12})
	ms1, err := e1.RunItems(600)
	if err != nil {
		t.Fatal(err)
	}
	repl := plain.WithReplicas(1, 1, 2)
	_, e2 := newExec(t, g, spec, repl, Options{MaxInFlight: 12})
	ms2, err := e2.RunItems(600)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ms1 / ms2
	if speedup < 1.7 {
		t.Fatalf("2-way replication speedup = %v, want ~2", speedup)
	}
}

func TestSlowLinkBoundsThroughput(t *testing.T) {
	g := het(t, 1, 1)
	if err := g.SetLink(0, 1, grid.Link{Latency: 0.001, Bandwidth: 1e6}); err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "a", Work: 0.01, OutBytes: 0.5e6},
		{Name: "b", Work: 0.01},
	}}
	pred, _ := model.Predict(g, spec, model.OneToOne(2), nil)
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{MaxInFlight: 8})
	const n = 200
	makespan, err := e.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(n) / makespan
	if rel := math.Abs(measured-pred.Throughput) / pred.Throughput; rel > 0.1 {
		t.Fatalf("link-bound: measured %v vs predicted %v", measured, pred.Throughput)
	}
}

func TestMonitorSeesServiceTimes(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.25, 0)
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{})
	if _, err := e.RunItems(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ms := e.Monitor().Stage(i).MeanService()
		if math.Abs(ms-0.25) > 0.01 {
			t.Fatalf("stage %d mean service = %v, want 0.25", i, ms)
		}
		if e.Monitor().Stage(i).Count() != 100 {
			t.Fatalf("stage %d count = %d", i, e.Monitor().Stage(i).Count())
		}
	}
	if e.Monitor().Done() != 100 {
		t.Fatalf("monitor completions = %d", e.Monitor().Done())
	}
}

func TestWorkSamplerUsedAndCached(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.1, 0)
	calls := 0
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{
		WorkSampler: func(stage, seq int) float64 {
			calls++
			return 0.05
		},
	})
	makespan, err := e.RunItems(50)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 50 {
		t.Fatalf("sampler called %d times, want 50", calls)
	}
	if math.Abs(makespan-50*0.05) > 0.1 {
		t.Fatalf("makespan = %v, want ~2.5", makespan)
	}
}

func TestPoissonArrivalsLowUtilisation(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.1, 0)
	// λ=2 items/s against capacity 10/s: latency should be close to
	// service time, completions ≈ λ·T.
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{
		ArrivalRate: 2, Seed: 1,
	})
	done := e.RunUntil(200)
	if done < 300 || done > 500 {
		t.Fatalf("done = %d, want ~400", done)
	}
	lat := e.Latencies()
	mean := 0.0
	for _, l := range lat {
		mean += l
	}
	mean /= float64(len(lat))
	// M/D/1 at ρ=0.2: W = s(1 + ρ/(2(1-ρ))) = 0.1·1.125 = 0.1125.
	if mean < 0.1 || mean > 0.2 {
		t.Fatalf("mean latency = %v, want ~0.11", mean)
	}
}

func TestRunUntilSaturated(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.1, 0)
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{})
	done := e.RunUntil(100)
	if done < 950 || done > 1001 {
		t.Fatalf("done = %d, want ~1000", done)
	}
}

func TestRunItemsErrors(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.1, 0)
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{})
	if _, err := e.RunItems(0); err == nil {
		t.Fatal("RunItems(0) accepted")
	}
}

func TestNewValidates(t *testing.T) {
	g := het(t, 1)
	eng := &sim.Engine{}
	if _, err := New(eng, g, model.PipelineSpec{}, model.Mapping{}, Options{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	spec := model.Balanced(2, 0.1, 0)
	if _, err := New(eng, g, spec, model.FromNodes(0, 5), Options{}); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

func TestOrderingStatsSane(t *testing.T) {
	// Latency of every item must be at least the total service demand.
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.1, 0)
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{})
	if _, err := e.RunItems(100); err != nil {
		t.Fatal(err)
	}
	for i, l := range e.Latencies() {
		if l < 0.2-1e-9 {
			t.Fatalf("item %d latency %v below service floor 0.2", i, l)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g1 := het(t, 1, 2)
	g2 := het(t, 1, 2)
	spec := model.Balanced(2, 0.1, 100)
	_, e1 := newExec(t, g1, spec, model.OneToOne(2), Options{})
	_, e2 := newExec(t, g2, spec, model.OneToOne(2), Options{})
	m1, err := e1.RunItems(200)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e2.RunItems(200)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("same configuration, different makespans: %v vs %v", m1, m2)
	}
}

func TestCoresAllowParallelService(t *testing.T) {
	quad, err := grid.NewGrid(grid.LANLink, &grid.Node{Name: "q", Speed: 1, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "only", Work: 0.1, Replicable: true},
	}}
	_, e := newExec(t, quad, spec, model.SingleNode(1, 0), Options{MaxInFlight: 8})
	const n = 400
	makespan, err := e.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(n) / makespan
	if measured < 35 {
		t.Fatalf("quad-core throughput = %v, want ~40", measured)
	}
}

func TestPoissonWithTotalItems(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.01, 0)
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{
		ArrivalRate: 5, Seed: 3, TotalItems: 50,
	})
	e.Start()
	e.eng.Run()
	if e.Done() != 50 || e.Admitted() != 50 {
		t.Fatalf("done=%d admitted=%d, want 50", e.Done(), e.Admitted())
	}
}

func TestWorkSamplerPanicsOnInvalid(t *testing.T) {
	g := het(t, 1)
	spec := model.Balanced(1, 0.1, 0)
	_, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{
		WorkSampler: func(stage, seq int) float64 { return -1 },
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative sampled work")
		}
	}()
	e.RunItems(1)
}
