package exec

import (
	"gridpipe/internal/grid"
	"gridpipe/internal/rng"
)

// nodeServer is the FCFS multi-slot server of one grid node. All
// stages mapped to the node share its Cores service slots, which is the
// executable counterpart of the analytic model's "aggregate busy time
// per node" assumption.
type nodeServer struct {
	e     *Executor
	node  *grid.Node
	queue []*task
	busy  int
	// inService tracks tasks currently holding a slot, for the
	// kill-restart protocol.
	inService map[*task]struct{}
}

func newNodeServer(e *Executor, n *grid.Node) *nodeServer {
	return &nodeServer{e: e, node: n, inService: map[*task]struct{}{}}
}

// enqueue adds an item for service at its current stage.
func (s *nodeServer) enqueue(it *item) {
	t := &task{it: it, node: s.node.ID}
	s.queue = append(s.queue, t)
	s.dispatch()
}

// dispatch starts service while slots and work are available.
func (s *nodeServer) dispatch() {
	for s.busy < s.node.Cores && len(s.queue) > 0 {
		t := s.queue[0]
		s.queue = s.queue[1:]
		s.start(t)
	}
}

func (s *nodeServer) start(t *task) {
	s.busy++
	s.inService[t] = struct{}{}
	now := s.e.eng.Now()
	t.serviceT0 = now
	work := s.e.serviceWork(t.it)
	dur := s.node.ServiceDuration(work, now)
	t.completion = s.e.eng.Schedule(dur, func() {
		s.finish(t)
	})
}

func (s *nodeServer) finish(t *task) {
	delete(s.inService, t)
	s.busy--
	now := s.e.eng.Now()
	s.e.stageFinished(t.it, s.node.ID, now-t.serviceT0)
	s.dispatch()
}

// abort cancels an in-service task (kill-restart protocol) and frees
// its slot. The caller re-routes the item.
func (s *nodeServer) abort(t *task) {
	if t.completion != nil {
		t.completion.Cancel()
		t.completion = nil
	}
	delete(s.inService, t)
	s.busy--
	s.dispatch()
}

// removeQueued extracts every queued task whose item's current stage
// satisfies the predicate, without disturbing relative order of the
// rest.
func (s *nodeServer) removeQueued(pred func(*item) bool) []*task {
	var removed []*task
	kept := s.queue[:0]
	for _, t := range s.queue {
		if pred(t.it) {
			removed = append(removed, t)
		} else {
			kept = append(kept, t)
		}
	}
	// Zero the tail so removed tasks are not retained by the backing
	// array.
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	return removed
}

// linkServer serialises transfers over one directed link: the
// bandwidth term occupies the link FCFS, the latency term is a pure
// trailing delay (transfers pipeline behind each other as on a real
// path).
type linkServer struct {
	e    *Executor
	link grid.Link
	// dest is the receiving node: one linkServer exists per directed
	// node pair. Redirects on arrival are handled by deliver.
	dest  grid.NodeID
	queue []pendingTx
	busy  bool
}

type pendingTx struct {
	it    *item
	bytes float64
}

func newLinkServer(e *Executor, l grid.Link, dest grid.NodeID) *linkServer {
	return &linkServer{e: e, link: l, dest: dest}
}

func (s *linkServer) enqueue(it *item, bytes float64) {
	s.queue = append(s.queue, pendingTx{it: it, bytes: bytes})
	s.pump()
}

func (s *linkServer) pump() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	tx := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	now := s.e.eng.Now()
	// Occupy the link for the serialisation time only.
	serial := s.link.TransferDuration(tx.bytes, now) - s.link.Latency
	if serial < 0 {
		serial = 0
	}
	s.e.eng.Schedule(serial, func() {
		s.busy = false
		s.pump()
		// Latency is pure delay after the wire is free again.
		total := serial + s.link.Latency
		s.e.eng.Schedule(s.link.Latency, func() {
			s.e.deliver(tx.it, s.dest, total)
		})
	})
}

// poissonSource generates exponential inter-arrival gaps.
type poissonSource struct {
	r    *rng.Rand
	rate float64
}

func newPoissonSource(seed uint64, rate float64) *poissonSource {
	return &poissonSource{r: rng.New(seed), rate: rate}
}

func (p *poissonSource) next() float64 { return p.r.Exp(p.rate) }
