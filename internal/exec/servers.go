package exec

import (
	"gridpipe/internal/grid"
	"gridpipe/internal/ring"
	"gridpipe/internal/rng"
	"gridpipe/internal/sim"
)

// nodeServer is the FCFS multi-slot server of one grid node. All
// stages mapped to the node share its Cores service slots, which is the
// executable counterpart of the analytic model's "aggregate busy time
// per node" assumption.
//
// The server is allocation-free in steady state: its queue is a ring
// buffer, tasks come from the executor's pool, in-service tasks sit in
// a swap-remove slice (a deterministic order — unlike the seed's map —
// though not insertion order, since removal swaps the tail in), and
// completions are scheduled through one bound callback instead of a
// per-task closure.
type nodeServer struct {
	e     *Executor
	node  *grid.Node
	queue ring.FIFO[*task]
	busy  int
	// inService tracks tasks currently holding a slot, for the
	// kill-restart protocol. Each task records its index for O(1)
	// swap-removal.
	inService []*task
	finishFn  func(any) // bound once: finish(task) without a closure per event
}

func newNodeServer(e *Executor, n *grid.Node) *nodeServer {
	s := &nodeServer{e: e, node: n}
	s.finishFn = func(arg any) { s.finish(arg.(*task)) }
	return s
}

// enqueue adds an item for service at the given stage.
func (s *nodeServer) enqueue(it *item, stage int) {
	t := s.e.getTask(it, stage, s.node.ID)
	s.queue.Push(t)
	s.dispatch()
}

// dispatch starts service while slots and work are available. A Down
// node serves nothing; a Draining node keeps serving the queue it
// already accepted.
func (s *nodeServer) dispatch() {
	if s.e.unavail > 0 && s.node.State() == grid.Down {
		return
	}
	for s.busy < s.node.Cores {
		t, ok := s.queue.Pop()
		if !ok {
			break
		}
		s.start(t)
	}
}

func (s *nodeServer) start(t *task) {
	now := s.e.eng.Now()
	work := s.e.serviceWork(t.it, t.stage)
	if sh := s.e.share; sh != nil {
		// Account the newcomer before it joins the in-service slice so
		// the rescale pass touches only the tasks already running.
		mult := sh.beginService(s.node.ID, now)
		t.rem, t.lastT, t.mult = work, now, mult
		work = work / mult
	}
	s.busy++
	t.svcIdx = int32(len(s.inService))
	s.inService = append(s.inService, t)
	t.serviceT0 = now
	dur := s.node.ServiceDuration(work, now)
	t.completion = s.e.eng.ScheduleArg(dur, s.finishFn, t)
}

// unservice removes t from the in-service set by swap-removal.
func (s *nodeServer) unservice(t *task) {
	last := len(s.inService) - 1
	moved := s.inService[last]
	s.inService[t.svcIdx] = moved
	moved.svcIdx = t.svcIdx
	s.inService[last] = nil
	s.inService = s.inService[:last]
}

func (s *nodeServer) finish(t *task) {
	s.unservice(t)
	s.busy--
	now := s.e.eng.Now()
	if sh := s.e.share; sh != nil {
		sh.endService(s.node.ID, now)
	}
	it, stage, dur := t.it, t.stage, now-t.serviceT0
	// Recycle before routing: the transfer/delivery below may enqueue
	// the item's next stage and reuse this very task.
	s.e.putTask(t)
	if it.dropped {
		// A sibling part exhausted the item's retry budget while this
		// one was in service; the result is discarded.
		s.dispatch()
		return
	}
	s.e.stageFinished(it, stage, s.node.ID, dur)
	s.dispatch()
}

// abort cancels an in-service task (kill-restart protocol) and frees
// its slot. The caller re-routes the item and recycles the task.
func (s *nodeServer) abort(t *task) {
	t.completion.Cancel()
	t.completion = sim.Event{}
	s.unservice(t)
	s.busy--
	if sh := s.e.share; sh != nil {
		sh.endService(s.node.ID, s.e.eng.Now())
	}
	s.dispatch()
}

// removeQueued extracts every queued task satisfying the predicate,
// without disturbing relative order of the rest.
func (s *nodeServer) removeQueued(pred func(*task) bool) []*task {
	return s.queue.RemoveIf(pred)
}

// linkServer serialises transfers over one directed link: the
// bandwidth term occupies the link FCFS, the latency term is a pure
// trailing delay (transfers pipeline behind each other as on a real
// path).
type linkServer struct {
	e    *Executor
	link grid.Link
	// dest is the receiving node: one linkServer exists per directed
	// node pair. Redirects on arrival are handled by deliver.
	dest  grid.NodeID
	queue ring.FIFO[*transfer]
	busy  bool
	// Bound once: the wire-free and delivery callbacks take the pooled
	// *transfer as their event argument — no closure per hop.
	wireFreeFn func(any)
	deliverFn  func(any)
}

// transfer is one pooled part movement over a link: queued with its
// destination stage and size, then in flight carrying its
// serialisation time.
type transfer struct {
	it     *item
	stage  int // destination stage (NumStages = the sink)
	bytes  float64
	serial float64
}

func newLinkServer(e *Executor, l grid.Link, dest grid.NodeID) *linkServer {
	s := &linkServer{e: e, link: l, dest: dest}
	s.wireFreeFn = func(arg any) { s.wireFree(arg.(*transfer)) }
	s.deliverFn = func(arg any) { s.deliverTx(arg.(*transfer)) }
	return s
}

func (s *linkServer) enqueue(it *item, stage int, bytes float64) {
	s.queue.Push(s.e.getTransfer(it, stage, bytes))
	s.pump()
}

func (s *linkServer) pump() {
	if s.busy {
		return
	}
	tx, ok := s.queue.Pop()
	if !ok {
		return
	}
	s.busy = true
	now := s.e.eng.Now()
	// Occupy the link for the serialisation time only.
	serial := s.link.TransferDuration(tx.bytes, now) - s.link.Latency
	if serial < 0 {
		serial = 0
	}
	tx.serial = serial
	s.e.eng.ScheduleArg(serial, s.wireFreeFn, tx)
}

// wireFree fires when the serialisation slot frees: the next transfer
// may start while this one rides out its latency as a pure delay.
func (s *linkServer) wireFree(tx *transfer) {
	s.busy = false
	s.pump()
	s.e.eng.ScheduleArg(s.link.Latency, s.deliverFn, tx)
}

func (s *linkServer) deliverTx(tx *transfer) {
	it, stage, bytes, total := tx.it, tx.stage, tx.bytes, tx.serial+s.link.Latency
	s.e.putTransfer(tx)
	s.e.deliver(it, stage, s.dest, bytes, total)
}

// poissonSource generates exponential inter-arrival gaps.
type poissonSource struct {
	r    *rng.Rand
	rate float64
}

func newPoissonSource(seed uint64, rate float64) *poissonSource {
	return &poissonSource{r: rng.New(seed), rate: rate}
}

func (p *poissonSource) next() float64 { return p.r.Exp(p.rate) }
