package exec

import (
	"math"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/trace"
)

// runWithMidwayRemap runs n items, remapping at the given completion
// count, and returns (makespan, executor).
func runWithMidwayRemap(t *testing.T, g *grid.Grid, spec model.PipelineSpec,
	start, target model.Mapping, remapAt float64, proto RemapProtocol, n int) (float64, *Executor, RemapStats) {
	t.Helper()
	eng, e := newExec(t, g, spec, start, Options{MaxInFlight: 8, TotalItems: n})
	var st RemapStats
	eng.Schedule(remapAt, func() {
		var err error
		st, err = e.Remap(target, proto)
		if err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	e.Start()
	eng.Run()
	if e.Done() != n {
		t.Fatalf("completed %d of %d", e.Done(), n)
	}
	return eng.Now(), e, st
}

func TestRemapNoopForSameMapping(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.1, 0)
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{})
	st, err := e.Remap(model.OneToOne(2), DrainSafe)
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed || st.Moved != 0 || st.Killed != 0 {
		t.Fatalf("no-op remap reported %+v", st)
	}
}

func TestRemapRejectsInvalidMapping(t *testing.T) {
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.1, 0)
	_, e := newExec(t, g, spec, model.OneToOne(2), Options{})
	if _, err := e.Remap(model.FromNodes(0, 9), DrainSafe); err == nil {
		t.Fatal("invalid mapping accepted")
	}
	if _, err := e.Remap(model.FromNodes(0), DrainSafe); err == nil {
		t.Fatal("wrong stage count accepted")
	}
}

func TestRemapAllItemsComplete(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.1, 1000)
	for _, proto := range []RemapProtocol{DrainSafe, KillRestart} {
		_, e, st := runWithMidwayRemap(t, g, spec,
			model.SingleNode(3, 0), model.OneToOne(3), 2.0, proto, 200)
		if !st.Changed {
			t.Fatalf("%v: remap reported unchanged", proto)
		}
		if e.Done() != 200 || e.InFlight() != 0 {
			t.Fatalf("%v: items lost: done=%d inflight=%d", proto, e.Done(), e.InFlight())
		}
	}
}

func TestRemapEscapingLoadedNodeHelps(t *testing.T) {
	// Node 0 becomes heavily loaded at t=5; moving both stages to
	// node 1 should beat staying.
	mk := func() *grid.Grid {
		g, err := grid.NewGrid(grid.LANLink,
			&grid.Node{Name: "a", Speed: 1, Cores: 1,
				Load: trace.NewSteps(0, trace.StepChange{T: 5, Load: 0.9})},
			&grid.Node{Name: "b", Speed: 1, Cores: 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	spec := model.Balanced(2, 0.1, 100)
	const n = 300

	_, eStay := newExec(t, mk(), spec, model.SingleNode(2, 0), Options{MaxInFlight: 8})
	msStay, err := eStay.RunItems(n)
	if err != nil {
		t.Fatal(err)
	}

	msMove, _, _ := runWithMidwayRemap(t, mk(), spec,
		model.SingleNode(2, 0), model.SingleNode(2, 1), 6.0, DrainSafe, n)

	if msMove >= msStay {
		t.Fatalf("remap away from loaded node did not help: stay=%v move=%v", msStay, msMove)
	}
	if msMove > 0.6*msStay {
		t.Fatalf("remap helped too little: stay=%v move=%v", msStay, msMove)
	}
}

func TestDrainSafeNeverKills(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.Balanced(3, 0.2, 1000)
	_, e, st := runWithMidwayRemap(t, g, spec,
		model.SingleNode(3, 0), model.OneToOne(3), 1.0, DrainSafe, 100)
	if st.Killed != 0 || st.RedoneWork != 0 {
		t.Fatalf("drain-safe killed work: %+v", st)
	}
	if e.RedoneWork() != 0 {
		t.Fatalf("executor recorded redone work %v", e.RedoneWork())
	}
}

func TestKillRestartRedoesWork(t *testing.T) {
	// Long service times guarantee something is in service at remap
	// time.
	g := het(t, 1, 1)
	spec := model.Balanced(1, 1.0, 0)
	_, e, st := runWithMidwayRemap(t, g, spec,
		model.SingleNode(1, 0), model.SingleNode(1, 1), 0.5, KillRestart, 20)
	if st.Killed == 0 {
		t.Fatalf("expected kills, got %+v", st)
	}
	if st.RedoneWork <= 0 || e.RedoneWork() != st.RedoneWork {
		t.Fatalf("redone work accounting wrong: %+v vs %v", st, e.RedoneWork())
	}
}

func TestKillRestartSlowerThanDrainSafe(t *testing.T) {
	// With chunky service times, killing in-service items costs real
	// time compared to draining them.
	g := het(t, 1, 1)
	spec := model.Balanced(2, 0.5, 0)
	msDrain, _, _ := runWithMidwayRemap(t, g, spec,
		model.SingleNode(2, 0), model.SingleNode(2, 1), 2.25, DrainSafe, 60)
	msKill, _, stKill := runWithMidwayRemap(t, g, spec,
		model.SingleNode(2, 0), model.SingleNode(2, 1), 2.25, KillRestart, 60)
	if stKill.Killed == 0 {
		t.Skip("nothing was in service at the remap instant")
	}
	if msKill < msDrain-1e-9 {
		t.Fatalf("kill-restart (%v) beat drain-safe (%v)", msKill, msDrain)
	}
}

func TestRemapMovesQueuedItems(t *testing.T) {
	// Single slow node with a deep queue; remapping to the other node
	// must migrate the queued items.
	g := het(t, 1, 1)
	spec := model.Balanced(1, 0.5, 100)
	eng, e := newExec(t, g, spec, model.SingleNode(1, 0), Options{MaxInFlight: 10, TotalItems: 40})
	var st RemapStats
	eng.Schedule(0.6, func() {
		var err error
		st, err = e.Remap(model.SingleNode(1, 1), DrainSafe)
		if err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	e.Start()
	eng.Run()
	if st.Moved == 0 {
		t.Fatalf("expected queued items to move, got %+v", st)
	}
	if e.Migrations() != st.Moved {
		t.Fatalf("migration accounting mismatch: %d vs %d", e.Migrations(), st.Moved)
	}
	if e.Done() != 40 {
		t.Fatalf("items lost: %d", e.Done())
	}
}

func TestRemapToReplicatedMapping(t *testing.T) {
	g := het(t, 1, 1, 1)
	spec := model.PipelineSpec{Stages: []model.StageSpec{
		{Name: "light", Work: 0.02},
		{Name: "heavy", Work: 0.2, Replicable: true},
	}}
	start := model.FromNodes(0, 1)
	_, e := newExec(t, g, spec, start, Options{MaxInFlight: 10, TotalItems: 500})
	eng := e.eng
	eng.Schedule(2, func() {
		if _, err := e.Remap(start.WithReplicas(1, 1, 2), DrainSafe); err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	e.Start()
	eng.Run()
	if e.Done() != 500 {
		t.Fatalf("done = %d", e.Done())
	}
	// After the remap both replicas must have seen service.
	if e.Monitor().Stage(1).Count() != 500 {
		t.Fatalf("stage 1 count = %d", e.Monitor().Stage(1).Count())
	}
	makespan := eng.Now()
	// Unreplicated bound is 0.2 s/item → 100 s for 500 items; the remap
	// at t=2 should land well under that.
	if makespan > 75 {
		t.Fatalf("makespan %v suggests replication never engaged", makespan)
	}
}

func TestRemapThroughputRecovers(t *testing.T) {
	// After remapping to a strictly better mapping, measured throughput
	// over the tail should approach the new mapping's prediction.
	g := het(t, 1, 4)
	spec := model.Balanced(2, 0.2, 0)
	eng, e := newExec(t, g, spec, model.SingleNode(2, 0), Options{MaxInFlight: 8})
	eng.Schedule(10, func() {
		if _, err := e.Remap(model.SingleNode(2, 1), DrainSafe); err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	e.Start()
	done := e.RunUntil(110)
	// Old mapping: 2.5/s. New: 10/s. 10 s at 2.5 + 100 s at 10 ≈ 1025.
	if done < 900 {
		t.Fatalf("done = %d, remap did not recover throughput", done)
	}
	tail := e.Monitor().RecentThroughput(20, 110)
	if math.Abs(tail-10) > 1.5 {
		t.Fatalf("tail throughput = %v, want ~10", tail)
	}
}

func TestProtocolString(t *testing.T) {
	if DrainSafe.String() != "drain-safe" || KillRestart.String() != "kill-restart" {
		t.Fatal("protocol names wrong")
	}
	if RemapProtocol(9).String() == "" {
		t.Fatal("unknown protocol should still render")
	}
}
