package exec

import (
	"fmt"
	"hash/fnv"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sim"
)

// TestGoldenExecutorTrace pins the complete per-item latency trace of a
// heterogeneous run with a mid-run kill-restart remap. The digest was
// recorded against the seed engine/executor; the event-calendar and
// scheduling rewrites must not perturb a single completion time.
func TestGoldenExecutorTrace(t *testing.T) {
	const (
		goldenDigest   = "5672d309194629a2"
		goldenMakespan = "33.8685"
	)

	g, err := grid.Heterogeneous([]float64{1, 2, 1.5, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(4, 0.3, 2e5)
	m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1, 2}, {3}, {0}}}
	eng := &sim.Engine{}
	sampler := func(stage, seq int) float64 {
		// Deterministic jitter: distinct per (stage, seq), no RNG.
		return 0.2 + 0.01*float64((stage*31+seq*17)%13)
	}
	e, err := New(eng, g, spec, m, Options{
		MaxInFlight: 12,
		WorkSampler: sampler,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mid-run remap with kills: exercises Cancel on in-service events.
	eng.Schedule(5, func() {
		nm := model.Mapping{Assign: [][]grid.NodeID{{1}, {2, 3}, {0}, {1}}}
		if _, err := e.Remap(nm, KillRestart); err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	makespan, err := e.RunItems(120)
	if err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	for i, l := range e.Latencies() {
		fmt.Fprintf(h, "%d:%.12g;", i, l)
	}
	if got := fmt.Sprintf("%016x", h.Sum64()); got != goldenDigest {
		t.Fatalf("latency-trace digest = %s, want %s", got, goldenDigest)
	}
	if got := fmt.Sprintf("%.12g", makespan); got != goldenMakespan {
		t.Fatalf("makespan = %s, want %s", got, goldenMakespan)
	}
}
