package exec

import (
	"fmt"
	"hash/fnv"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sim"
	"gridpipe/internal/topo"
)

// mustChurn builds a schedule or fails the test.
func mustChurn(t testing.TB, evs ...grid.ChurnEvent) *grid.ChurnSchedule {
	t.Helper()
	cs, err := grid.NewChurnSchedule(evs...)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// latencyDigest hashes the per-item latency trace plus the churn
// counters: any divergence in completion times, losses, or retries
// changes it.
func latencyDigest(e *Executor) string {
	h := fnv.New64a()
	for i, l := range e.Latencies() {
		fmt.Fprintf(h, "%d:%.12g;", i, l)
	}
	fmt.Fprintf(h, "lost=%d;retries=%d;migr=%d;", e.Lost(), e.Retries(), e.Migrations())
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestCrashParksAndRejoinResumes: a static mapping whose middle stage
// lives only on the crashed node. Work bound for it parks during the
// outage and drains after the rejoin; nothing is lost or duplicated.
func TestCrashParksAndRejoinResumes(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.1, 1e4)
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, model.OneToOne(3), Options{MaxInFlight: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallChurn(mustChurn(t, grid.Outage("node1", 1, 4)...)); err != nil {
		t.Fatal(err)
	}
	completedAt := map[int]int{}
	e.onComplete = func(seq int) { completedAt[seq]++ }

	makespan, err := e.RunItems(50)
	if err != nil {
		t.Fatal(err)
	}
	if e.Lost() != 0 {
		t.Fatalf("Lost = %d, want 0 (everything parks and resumes)", e.Lost())
	}
	if e.Retries() == 0 {
		t.Fatal("expected crash-induced retries")
	}
	if e.Done() != 50 || e.Admitted() != 50 || e.InFlight() != 0 {
		t.Fatalf("done=%d admitted=%d inflight=%d, want 50/50/0", e.Done(), e.Admitted(), e.InFlight())
	}
	for seq, n := range completedAt {
		if n != 1 {
			t.Fatalf("item %d completed %d times", seq, n)
		}
	}
	// The outage window [1,4) stalls the pipeline: the makespan must
	// reflect the dead time.
	if makespan < 4 {
		t.Fatalf("makespan = %v, want > 4 (run spans the outage)", makespan)
	}
	if e.Parked() != 0 {
		t.Fatalf("Parked = %d at end of run", e.Parked())
	}
}

// TestCrashReroutesToLiveReplica: the heavy stage is replicated; when
// one replica crashes, queued and in-service work re-dispatches to the
// survivor and the run never stalls on parking.
func TestCrashReroutesToLiveReplica(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.1, 1e4)
	m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1, 2}, {3}}}
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	// node1 dies at t=1 and never comes back.
	if err := e.InstallChurn(mustChurn(t, grid.ChurnEvent{T: 1, Node: "node1", Kind: grid.ChurnCrash})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunItems(80); err != nil {
		t.Fatal(err)
	}
	if e.Lost() != 0 {
		t.Fatalf("Lost = %d, want 0", e.Lost())
	}
	if e.Retries() == 0 {
		t.Fatal("expected retries for the crashed replica's in-flight work")
	}
	if e.Done() != 80 {
		t.Fatalf("done = %d, want 80", e.Done())
	}
}

// TestDrainFinishesAcceptedWork: draining a replica reroutes new items
// to the survivor without losing or retrying anything.
func TestDrainFinishesAcceptedWork(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(3, 0.1, 1e4)
	m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1, 2}, {3}}}
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallChurn(mustChurn(t, grid.Drain("node1", 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunItems(60); err != nil {
		t.Fatal(err)
	}
	if e.Lost() != 0 || e.Retries() != 0 {
		t.Fatalf("lost=%d retries=%d, want 0/0 for a graceful drain", e.Lost(), e.Retries())
	}
	if e.Done() != 60 {
		t.Fatalf("done = %d, want 60", e.Done())
	}
}

// TestRetryBudgetDropsItems: with a retry budget of 1, a second crash
// hitting the same items drops them; the ledger still balances.
func TestRetryBudgetDropsItems(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	// Slow stage: items sit in service long enough for both crashes to
	// hit them.
	spec := model.Balanced(2, 1.0, 1e4)
	m := model.FromNodes(0, 1)
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 4, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Items reach stage 1 only after stage 0's first unit of work, so
	// both windows sit after t=1; the second crash catches items
	// already retried once.
	churn := mustChurn(t,
		append(grid.Outage("node1", 1.2, 1.4), grid.Outage("node1", 1.6, 1.8)...)...)
	if err := e.InstallChurn(churn); err != nil {
		t.Fatal(err)
	}
	lostSeqs := map[int]int{}
	completedSeqs := map[int]int{}
	e.onLost = func(seq int) { lostSeqs[seq]++ }
	e.onComplete = func(seq int) { completedSeqs[seq]++ }

	if _, err := e.RunItems(30); err != nil {
		t.Fatal(err)
	}
	if e.Lost() == 0 {
		t.Fatal("expected dropped items with MaxRetries=1 and two crashes")
	}
	if e.Done()+e.Lost() != 30 {
		t.Fatalf("done %d + lost %d != 30", e.Done(), e.Lost())
	}
	for seq := range lostSeqs {
		if completedSeqs[seq] != 0 {
			t.Fatalf("item %d both lost and completed", seq)
		}
	}
	for seq, n := range completedSeqs {
		if n != 1 {
			t.Fatalf("item %d completed %d times", seq, n)
		}
	}
}

// TestCrashInvalidatesHalfJoin: a fan-in replica that crashes mid-join
// and rejoins must not resurrect the parts it had accumulated — they
// died with it and are re-fetched from the upstream boundary (counted
// on the retry ledger). Pinned because the naive path (stale
// joined/pending counters surviving the crash) completes the join for
// free.
func TestCrashInvalidatesHalfJoin(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1, 1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	// Diamond with very unequal branches: the fast branch's part lands
	// at the join (on node3, its sole replica) long before the slow
	// branch's part, leaving a wide half-join window for the crash.
	dg, err := topo.Diamond(
		topo.Stage{Name: "head", Work: 0.05, OutBytes: 1e5},
		[]topo.Stage{
			{Name: "fast", Work: 0.05, OutBytes: 1e5},
			{Name: "slow", Work: 2.0, OutBytes: 1e5},
		},
		topo.Stage{Name: "join", Work: 0.05, OutBytes: 1e3},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := model.FromGraph(dg, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	m := model.FromNodes(0, 1, 2, 3)
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Crash the join host inside the first item's half-join window
	// (fast part arrives ≈0.1s, slow part ≈2.1s) and rejoin before the
	// slow part lands: the join completes on the same node.
	if err := e.InstallChurn(mustChurn(t, grid.Outage("node3", 0.5, 1.0)...)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunItems(10); err != nil {
		t.Fatal(err)
	}
	if e.Done() != 10 || e.Lost() != 0 {
		t.Fatalf("done=%d lost=%d, want 10/0", e.Done(), e.Lost())
	}
	// The fast parts joined before the crash must have been re-fetched:
	// without the epoch check the retry ledger here is 0.
	if e.Retries() == 0 {
		t.Fatal("half-joined parts survived the crash for free (no re-fetch recorded)")
	}
}

// TestChurnConservationProperty is the conservation law under random
// churn: across randomized schedules, topologies, mappings and retry
// budgets, every admitted item is exactly once either completed or
// counted lost — no duplicates, no leaks.
func TestChurnConservationProperty(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed*977 + 13)
			np := 3 + r.Intn(3)
			speeds := make([]float64, np)
			names := make([]string, np)
			for i := range speeds {
				speeds[i] = 0.5 + 2*r.Float64()
				names[i] = fmt.Sprintf("node%d", i)
			}
			g, err := grid.Heterogeneous(speeds, grid.LANLink)
			if err != nil {
				t.Fatal(err)
			}

			// Topology: linear chain or diamond, randomly.
			var spec model.PipelineSpec
			if r.Bool(0.5) {
				spec = model.Balanced(2+r.Intn(3), 0.05+0.2*r.Float64(), 1e4)
			} else {
				dg, err := topo.Diamond(
					topo.Stage{Name: "head", Work: 0.05, OutBytes: 1e4},
					[]topo.Stage{
						{Name: "left", Work: 0.1, OutBytes: 1e4},
						{Name: "right", Work: 0.15, OutBytes: 1e4},
					},
					topo.Stage{Name: "tail", Work: 0.05, OutBytes: 1e3},
				)
				if err != nil {
					t.Fatal(err)
				}
				spec, err = model.FromGraph(dg, 1e4)
				if err != nil {
					t.Fatal(err)
				}
			}

			// Random valid mapping; replicate one stage sometimes.
			ns := spec.NumStages()
			assign := make([]grid.NodeID, ns)
			for i := range assign {
				assign[i] = grid.NodeID(r.Intn(np))
			}
			m := model.FromNodes(assign...)
			if r.Bool(0.5) && np >= 2 {
				si := r.Intn(ns)
				a := grid.NodeID(r.Intn(np))
				b := grid.NodeID((int(a) + 1 + r.Intn(np-1)) % np)
				m = m.WithReplicas(si, a, b)
			}

			churn, err := grid.RandomChurn(seed*31+7, 20, names, 0.7, 4)
			if err != nil {
				t.Fatal(err)
			}
			maxRetries := []int{-1, 1, 8}[r.Intn(3)]

			eng := &sim.Engine{}
			e, err := New(eng, g, spec, m, Options{MaxInFlight: 6, MaxRetries: maxRetries})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.InstallChurn(churn); err != nil {
				t.Fatal(err)
			}
			completed := map[int]int{}
			lost := map[int]int{}
			e.onComplete = func(seq int) { completed[seq]++ }
			e.onLost = func(seq int) { lost[seq]++ }

			const items = 120
			if _, err := e.RunItems(items); err != nil {
				t.Fatalf("churn=%v: %v", churn.Events(), err)
			}
			if e.Admitted() != items {
				t.Fatalf("admitted = %d, want %d", e.Admitted(), items)
			}
			if e.Done()+e.Lost() != items {
				t.Fatalf("done %d + lost %d != %d", e.Done(), e.Lost(), items)
			}
			if e.InFlight() != 0 {
				t.Fatalf("inFlight = %d at end", e.InFlight())
			}
			for seq := 0; seq < items; seq++ {
				c, l := completed[seq], lost[seq]
				if c+l != 1 {
					t.Fatalf("item %d: completed %d times, lost %d times (want exactly one of either)", seq, c, l)
				}
			}
		})
	}
}

// TestChurnDeterminism: two fresh engines with the same seed and churn
// schedule must produce identical latency traces and churn counters.
func TestChurnDeterminism(t *testing.T) {
	run := func() string {
		g, err := grid.Heterogeneous([]float64{1, 2, 1.5, 1}, grid.LANLink)
		if err != nil {
			t.Fatal(err)
		}
		spec := model.Balanced(4, 0.3, 2e5)
		m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1, 2}, {3}, {0}}}
		eng := &sim.Engine{}
		sampler := func(stage, seq int) float64 {
			return 0.2 + 0.01*float64((stage*31+seq*17)%13)
		}
		e, err := New(eng, g, spec, m, Options{MaxInFlight: 12, WorkSampler: sampler})
		if err != nil {
			t.Fatal(err)
		}
		churn := mustChurn(t,
			grid.ChurnEvent{T: 5, Node: "node1", Kind: grid.ChurnCrash},
			grid.ChurnEvent{T: 9, Node: "node3", Kind: grid.ChurnCrash},
			grid.ChurnEvent{T: 14, Node: "node1", Kind: grid.ChurnRejoin},
			grid.ChurnEvent{T: 20, Node: "node3", Kind: grid.ChurnRejoin},
		)
		if err := e.InstallChurn(churn); err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunItems(120); err != nil {
			t.Fatal(err)
		}
		return latencyDigest(e)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed and churn schedule diverged: %s vs %s", a, b)
	}
}

// TestGoldenChurnTrace pins the canonical crash/rejoin run's event
// sequence byte for byte: the digest covers every per-item latency and
// the loss/retry/migration counters. Any change to lifecycle routing,
// retry accounting, or parking order shows up here.
func TestGoldenChurnTrace(t *testing.T) {
	const (
		goldenDigest   = "f2f92f133e03966e"
		goldenMakespan = "62.34"
	)
	g, err := grid.Heterogeneous([]float64{1, 2, 1.5, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(4, 0.3, 2e5)
	m := model.Mapping{Assign: [][]grid.NodeID{{0}, {1, 2}, {3}, {0}}}
	eng := &sim.Engine{}
	sampler := func(stage, seq int) float64 {
		return 0.2 + 0.01*float64((stage*31+seq*17)%13)
	}
	e, err := New(eng, g, spec, m, Options{MaxInFlight: 12, WorkSampler: sampler})
	if err != nil {
		t.Fatal(err)
	}
	// The canonical churn scenario: one replica of the farmed stage
	// crashes mid-run and rejoins; its sibling replica drains late (the
	// rejoined node finishes the stage alone).
	churn := mustChurn(t,
		grid.ChurnEvent{T: 5, Node: "node1", Kind: grid.ChurnCrash},
		grid.ChurnEvent{T: 15, Node: "node1", Kind: grid.ChurnRejoin},
		grid.Drain("node2", 22),
	)
	if err := e.InstallChurn(churn); err != nil {
		t.Fatal(err)
	}
	makespan, err := e.RunItems(120)
	if err != nil {
		t.Fatal(err)
	}
	if got := latencyDigest(e); got != goldenDigest {
		t.Fatalf("churn-trace digest = %s, want %s", got, goldenDigest)
	}
	if got := fmt.Sprintf("%.12g", makespan); got != goldenMakespan {
		t.Fatalf("makespan = %s, want %s", got, goldenMakespan)
	}
}

// TestInstallChurnErrors: installing twice or against unknown nodes
// fails cleanly.
func TestInstallChurnErrors(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 1}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Balanced(2, 0.1, 1e4)
	eng := &sim.Engine{}
	e, err := New(eng, g, spec, model.FromNodes(0, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallChurn(mustChurn(t, grid.Outage("nodeX", 1, 2)...)); err == nil {
		t.Fatal("churn referencing an unknown node should fail")
	}
	ok := mustChurn(t, grid.Outage("node1", 1, 2)...)
	if err := e.InstallChurn(ok); err != nil {
		t.Fatal(err)
	}
	if err := e.InstallChurn(ok); err == nil {
		t.Fatal("double install should fail")
	}
}
