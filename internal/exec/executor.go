// Package exec runs a mapped pipeline on the simulated grid in virtual
// time. It is the measurement substrate of every experiment: the
// analytic model predicts, exec measures.
//
// Execution model
//
//   - Each grid node is a FCFS server with Cores service slots shared
//     by all stages mapped to it; service durations integrate the
//     node's time-varying effective speed.
//   - Each directed node pair is a FCFS link whose occupancy is the
//     bandwidth term of a transfer; the latency term is a pure delay
//     that overlaps with subsequent transfers (a pipelined network).
//   - Input admission is CONWIP-style: a bounded number of items is in
//     flight at once (a saturated source behind a window), which is the
//     discrete-event analogue of the bounded inter-stage buffers of the
//     real skeleton. An optional Poisson arrival process replaces the
//     saturated source for latency studies.
//   - Replicated stages deal items round-robin across replicas.
//
// Reconfiguration (Remap) supports two protocols measured in
// experiment A2: drain-safe (queued items migrate with a paid transfer,
// in-service items finish where they run — nothing is lost) and
// kill-restart (in-service items on re-mapped stages are aborted and
// redone at the new location).
package exec

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
	"gridpipe/internal/sim"
)

// Options tune an Executor.
type Options struct {
	// MaxInFlight is the CONWIP window: the number of items admitted
	// into the pipeline at once. Zero means 2× the stage count.
	MaxInFlight int
	// TotalItems bounds the run; zero means unlimited (use RunUntil).
	TotalItems int
	// ArrivalRate, when positive, replaces the saturated source with a
	// Poisson process of that rate (items/s).
	ArrivalRate float64
	// WorkSampler returns the service demand in reference-seconds of
	// item seq at stage. Nil means the deterministic spec work.
	WorkSampler func(stage, seq int) float64
	// MonitorWindow is the per-stage sample window (0 = default).
	MonitorWindow int
	// Seed drives the Poisson arrival stream.
	Seed uint64
}

// RemapProtocol selects how in-flight work is handled during a remap.
type RemapProtocol int

const (
	// DrainSafe migrates queued items (paying their transfer) and lets
	// in-service items complete where they run. No work is lost.
	DrainSafe RemapProtocol = iota
	// KillRestart aborts in-service items of stages whose placement
	// changed and redoes them at the new location.
	KillRestart
)

// String renders the protocol name.
func (p RemapProtocol) String() string {
	switch p {
	case DrainSafe:
		return "drain-safe"
	case KillRestart:
		return "kill-restart"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// RemapStats reports what one reconfiguration did.
type RemapStats struct {
	// Moved is the number of queued items migrated to new nodes.
	Moved int
	// Killed is the number of in-service items aborted (KillRestart).
	Killed int
	// RedoneWork is the reference-seconds of service discarded.
	RedoneWork float64
	// Changed reports whether any stage actually moved.
	Changed bool
}

// item is one unit flowing through the pipeline. Items are pooled on
// the executor: admitted from the free list, recycled at completion.
type item struct {
	seq     int
	stage   int       // current stage index
	work    []float64 // sampled service demand per stage (lazily filled)
	started float64   // admission time
}

// task is an item waiting for or receiving service at a stage replica.
// Tasks are pooled alongside items.
type task struct {
	it         *item
	node       grid.NodeID
	completion sim.Event // pending while in service
	serviceT0  float64
	svcIdx     int32 // position in the node's in-service slice
}

// Executor simulates one pipeline run.
type Executor struct {
	eng     *sim.Engine
	g       *grid.Grid
	spec    model.PipelineSpec
	mapping model.Mapping
	opts    Options

	mon   *monitor.Monitor
	nodes []*nodeServer
	links map[linkKey]*linkServer

	rr []int // round-robin counters per stage

	admitted   int
	inFlight   int
	completed  int
	migrations int     // items moved by remaps
	redone     float64 // reference-seconds redone after kills

	latencies []float64 // per-item pipeline traversal times
	poisson   *poissonSource

	// Free lists: steady-state admission, service, and transfer reuse
	// these instead of allocating per item/task/hop.
	itemFree []*item
	taskFree []*task
	txFree   []*transfer
}

type linkKey struct{ a, b grid.NodeID }

// New builds an executor; the pipeline starts admitting items when
// Start is called.
func New(eng *sim.Engine, g *grid.Grid, spec model.PipelineSpec, m model.Mapping, opts Options) (*Executor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		return nil, err
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * spec.NumStages()
	}
	e := &Executor{
		eng:     eng,
		g:       g,
		spec:    spec,
		mapping: m.Clone(),
		opts:    opts,
		mon:     monitor.New(spec.NumStages(), opts.MonitorWindow),
		links:   map[linkKey]*linkServer{},
		rr:      make([]int, spec.NumStages()),
	}
	e.nodes = make([]*nodeServer, g.NumNodes())
	for i := range e.nodes {
		e.nodes[i] = newNodeServer(e, g.Node(grid.NodeID(i)))
	}
	if opts.ArrivalRate > 0 {
		e.poisson = newPoissonSource(opts.Seed, opts.ArrivalRate)
	}
	return e, nil
}

// Monitor exposes the run-time instrumentation.
func (e *Executor) Monitor() *monitor.Monitor { return e.mon }

// Mapping returns a copy of the current mapping.
func (e *Executor) Mapping() model.Mapping { return e.mapping.Clone() }

// Done returns the number of completed items.
func (e *Executor) Done() int { return e.completed }

// Admitted returns the number of items that entered the pipeline.
func (e *Executor) Admitted() int { return e.admitted }

// InFlight returns the number of items currently inside the pipeline.
func (e *Executor) InFlight() int { return e.inFlight }

// Migrations returns how many queued items remaps have moved.
func (e *Executor) Migrations() int { return e.migrations }

// RedoneWork returns the reference-seconds discarded by kill-restart
// remaps.
func (e *Executor) RedoneWork() float64 { return e.redone }

// Latencies returns per-item pipeline traversal times in completion
// order (shared slice).
func (e *Executor) Latencies() []float64 { return e.latencies }

// Start begins admitting items. With a Poisson source it schedules the
// first arrival; with the saturated source it fills the CONWIP window.
func (e *Executor) Start() {
	if e.poisson != nil {
		e.scheduleNextArrival()
		return
	}
	for e.canAdmit() {
		e.admit()
	}
}

func (e *Executor) canAdmit() bool {
	if e.opts.TotalItems > 0 && e.admitted >= e.opts.TotalItems {
		return false
	}
	return e.inFlight < e.opts.MaxInFlight
}

// poissonArrival is the shared arrival trampoline: one bound function
// for all executors keeps the arrival stream allocation-free.
func poissonArrival(arg any) {
	e := arg.(*Executor)
	// Poisson arrivals ignore the window: queueing is the point.
	e.admit()
	e.scheduleNextArrival()
}

func (e *Executor) scheduleNextArrival() {
	if e.opts.TotalItems > 0 && e.admitted >= e.opts.TotalItems {
		return
	}
	gap := e.poisson.next()
	e.eng.ScheduleArg(gap, poissonArrival, e)
}

// admit injects the next item at the source node.
func (e *Executor) admit() {
	it := e.getItem()
	it.seq = e.admitted
	it.stage = 0
	it.started = e.eng.Now()
	for i := range it.work {
		it.work[i] = math.NaN() // sampled lazily at first service
	}
	e.admitted++
	e.inFlight++
	dest := e.pickReplica(0)
	e.transfer(it, e.spec.Source, dest, e.spec.InBytes)
}

// getItem takes an item from the pool, with its work slice sized for
// the spec; the caller fills the per-run fields.
func (e *Executor) getItem() *item {
	if n := len(e.itemFree); n > 0 {
		it := e.itemFree[n-1]
		e.itemFree = e.itemFree[:n-1]
		return it
	}
	return &item{work: make([]float64, e.spec.NumStages())}
}

func (e *Executor) putItem(it *item) {
	e.itemFree = append(e.itemFree, it)
}

// getTask takes a task from the pool, bound to an item and node.
func (e *Executor) getTask(it *item, node grid.NodeID) *task {
	if n := len(e.taskFree); n > 0 {
		t := e.taskFree[n-1]
		e.taskFree = e.taskFree[:n-1]
		t.it, t.node = it, node
		return t
	}
	return &task{it: it, node: node}
}

func (e *Executor) putTask(t *task) {
	t.it = nil
	t.completion = sim.Event{}
	e.taskFree = append(e.taskFree, t)
}

// getTransfer takes a link transfer from the pool.
func (e *Executor) getTransfer(it *item, bytes float64) *transfer {
	if n := len(e.txFree); n > 0 {
		tx := e.txFree[n-1]
		e.txFree = e.txFree[:n-1]
		tx.it, tx.bytes, tx.serial = it, bytes, 0
		return tx
	}
	return &transfer{it: it, bytes: bytes}
}

func (e *Executor) putTransfer(tx *transfer) {
	tx.it = nil
	e.txFree = append(e.txFree, tx)
}

// pickReplica deals the next item of a stage round-robin.
func (e *Executor) pickReplica(stage int) grid.NodeID {
	replicas := e.mapping.Assign[stage]
	n := replicas[e.rr[stage]%len(replicas)]
	e.rr[stage]++
	return n
}

// transfer moves an item (or its result) from node a towards node b,
// then delivers it. Intra-node movement is effectively free.
func (e *Executor) transfer(it *item, a, b grid.NodeID, bytes float64) {
	if a == b {
		e.deliver(it, b, 0)
		return
	}
	e.link(a, b).enqueue(it, bytes)
}

func (e *Executor) link(a, b grid.NodeID) *linkServer {
	k := linkKey{a, b}
	ls, ok := e.links[k]
	if !ok {
		ls = newLinkServer(e, e.g.Link(a, b), b)
		e.links[k] = ls
	}
	return ls
}

// deliver hands an item to a node. If the item's current stage is no
// longer mapped there (the mapping changed while it was in flight), it
// is forwarded to a live replica — an extra hop, exactly what a real
// redirect costs.
func (e *Executor) deliver(it *item, n grid.NodeID, transferDur float64) {
	if it.stage >= e.spec.NumStages() {
		// Arrived at the sink: the item is done.
		e.complete(it)
		return
	}
	if transferDur > 0 {
		e.mon.Stage(it.stage).RecordTransfer(transferDur)
	}
	if !onNode(e.mapping.Assign[it.stage], n) {
		dest := e.pickReplica(it.stage)
		e.transfer(it, n, dest, e.bytesInto(it.stage))
		return
	}
	e.nodes[n].enqueue(it)
}

// bytesInto returns the message size entering the given stage.
func (e *Executor) bytesInto(stage int) float64 {
	if stage == 0 {
		return e.spec.InBytes
	}
	return e.spec.Stages[stage-1].OutBytes
}

// serviceWork returns (sampling if needed) the service demand of an
// item at its current stage.
func (e *Executor) serviceWork(it *item) float64 {
	w := it.work[it.stage]
	if math.IsNaN(w) {
		if e.opts.WorkSampler != nil {
			w = e.opts.WorkSampler(it.stage, it.seq)
			if w < 0 || math.IsNaN(w) {
				panic(fmt.Sprintf("exec: work sampler returned %v", w))
			}
		} else {
			w = e.spec.Stages[it.stage].Work
		}
		it.work[it.stage] = w
	}
	return w
}

// stageFinished is called when a node completes service for an item.
func (e *Executor) stageFinished(it *item, n grid.NodeID, serviceDur float64) {
	e.mon.Stage(it.stage).RecordService(serviceDur, e.eng.Now())
	out := e.spec.Stages[it.stage].OutBytes
	it.stage++
	if it.stage >= e.spec.NumStages() {
		e.transfer(it, n, e.spec.Sink, out)
		return
	}
	dest := e.pickReplica(it.stage)
	e.transfer(it, n, dest, out)
}

func (e *Executor) complete(it *item) {
	e.completed++
	e.inFlight--
	now := e.eng.Now()
	e.mon.RecordCompletion(now)
	e.latencies = append(e.latencies, now-it.started)
	e.putItem(it)
	if e.poisson == nil {
		for e.canAdmit() {
			e.admit()
		}
	}
}

// RunItems admits and processes exactly n items to completion,
// returning the virtual makespan. It must be called before any events
// have run. It steps the engine only until the n-th completion, so
// perpetual background events (an adaptive controller's ticker, load
// sensors) do not keep the run alive.
func (e *Executor) RunItems(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("exec: RunItems with n=%d", n)
	}
	e.opts.TotalItems = n
	e.Start()
	start := e.eng.Now()
	for e.completed < n && e.eng.Step() {
	}
	if e.completed != n {
		return 0, fmt.Errorf("exec: completed %d of %d items (deadlock?)", e.completed, n)
	}
	return e.eng.Now() - start, nil
}

// RunUntil processes items (saturated or Poisson source) until virtual
// time t, returning the number completed.
func (e *Executor) RunUntil(t float64) int {
	e.Start()
	e.eng.RunUntil(t)
	return e.completed
}

func onNode(nodes []grid.NodeID, id grid.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
