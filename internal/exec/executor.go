// Package exec runs a mapped pipeline on the simulated grid in virtual
// time. It is the measurement substrate of every experiment: the
// analytic model predicts, exec measures.
//
// Execution model
//
//   - Each grid node is a FCFS server with Cores service slots shared
//     by all stages mapped to it; service durations integrate the
//     node's time-varying effective speed.
//   - Each directed node pair is a FCFS link whose occupancy is the
//     bandwidth term of a transfer; the latency term is a pure delay
//     that overlaps with subsequent transfers (a pipelined network).
//   - Input admission is CONWIP-style: a bounded number of items is in
//     flight at once (a saturated source behind a window), which is the
//     discrete-event analogue of the bounded inter-stage buffers of the
//     real skeleton. An optional Poisson arrival process replaces the
//     saturated source for latency studies.
//   - Replicated stages deal items round-robin across replicas.
//
// Routing follows the spec's stage graph (internal/topo): a completed
// stage emits one part per out-edge (each paying its own transfer), a
// fan-in stage joins one part per in-edge before starting service, and
// all parts of one item converge on the same replica of a fan-in stage
// so the join is local. Linear pipelines take the Linearize fast path —
// the successor list of stage i is exactly {i+1} — and reproduce the
// pre-graph executor's event sequence bit for bit (pinned by
// golden_test.go).
//
// Reconfiguration (Remap) supports two protocols measured in
// experiment A2: drain-safe (queued items migrate with a paid transfer,
// in-service items finish where they run — nothing is lost) and
// kill-restart (in-service items on re-mapped stages are aborted and
// redone at the new location).
package exec

import (
	"fmt"
	"math"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
	"gridpipe/internal/sim"
	"gridpipe/internal/topo"
)

// Options tune an Executor.
type Options struct {
	// MaxInFlight is the CONWIP window: the number of items admitted
	// into the pipeline at once. Zero means 2× the stage count.
	MaxInFlight int
	// TotalItems bounds the run; zero means unlimited (use RunUntil).
	TotalItems int
	// ArrivalRate, when positive, replaces the saturated source with a
	// Poisson process of that rate (items/s).
	ArrivalRate float64
	// WorkSampler returns the service demand in reference-seconds of
	// item seq at stage. Nil means the deterministic spec work.
	WorkSampler func(stage, seq int) float64
	// MonitorWindow is the per-stage sample window (0 = default).
	MonitorWindow int
	// Seed drives the Poisson arrival stream.
	Seed uint64
	// MaxRetries is how many crash-induced re-dispatches an item
	// survives before it is dropped and counted lost. Zero means the
	// default (8); negative means never drop.
	MaxRetries int
	// Share, when non-nil, is the cluster-wide contention ledger this
	// executor multiplexes through: several executors attached to one
	// NodeShares split each node's capacity proportionally (see
	// share.go). Nil — the single-job case — keeps the executor
	// bit-identical to the pre-cluster behaviour.
	Share *NodeShares
}

// RemapProtocol selects how in-flight work is handled during a remap.
type RemapProtocol int

const (
	// DrainSafe migrates queued items (paying their transfer) and lets
	// in-service items complete where they run. No work is lost.
	DrainSafe RemapProtocol = iota
	// KillRestart aborts in-service items of stages whose placement
	// changed and redoes them at the new location.
	KillRestart
)

// String renders the protocol name.
func (p RemapProtocol) String() string {
	switch p {
	case DrainSafe:
		return "drain-safe"
	case KillRestart:
		return "kill-restart"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// RemapStats reports what one reconfiguration did.
type RemapStats struct {
	// Moved is the number of queued items migrated to new nodes.
	Moved int
	// Killed is the number of in-service items aborted (KillRestart).
	Killed int
	// RedoneWork is the reference-seconds of service discarded.
	RedoneWork float64
	// Changed reports whether any stage actually moved.
	Changed bool
}

// item is one unit flowing through the pipeline. Items are pooled on
// the executor: admitted from the free list, recycled at completion.
// On a stage graph with splits an item is in several places at once;
// its location lives in the tasks/transfers referencing it (each of
// which carries an explicit stage), not on the item itself.
type item struct {
	seq     int
	work    []float64 // sampled service demand per stage (lazily filled)
	started float64   // admission time
	// pending[s] counts the in-edge parts still to arrive before
	// fan-in stage s may start service; dest[s] is the replica all of
	// the item's parts converge on (-1 until first routed); joined[s]
	// is the payload already accumulated there (what a relocation must
	// move if a remap invalidates the replica mid-join). All three are
	// allocated only when the graph has fan-in stages — linear
	// pipelines never touch them.
	pending []int32
	dest    []grid.NodeID
	joined  []float64
	// joinEpoch[s] records the node crash-epoch under which the item's
	// join at stage s accumulated its parts: if the replica crashed and
	// rejoined mid-join, the epochs disagree and the accumulated parts
	// (which died with the crash) are re-fetched from the upstream
	// boundary. Allocated alongside pending/dest/joined.
	joinEpoch []uint32
	// tries counts crash-induced re-dispatches (per-item retry
	// accounting); dropped tombstones an item counted lost so sibling
	// parts still in flight are discarded on sight. Both reset at
	// admission.
	tries   int32
	dropped bool
}

// task is an item waiting for or receiving service at a stage replica.
// Tasks are pooled alongside items.
type task struct {
	it         *item
	stage      int // the stage this task serves
	node       grid.NodeID
	completion sim.Event // pending while in service
	serviceT0  float64
	svcIdx     int32 // position in the node's in-service slice
	// Multi-tenant share accounting (cluster runs only; see share.go):
	// remaining reference-seconds, the time progress was last banked,
	// and the capacity share it is progressing under.
	rem   float64
	lastT float64
	mult  float64
}

// edgeHop is one precomputed routing entry: successor stage and the
// per-item payload the connecting edge carries.
type edgeHop struct {
	to    int
	bytes float64
}

// Executor simulates one pipeline run.
type Executor struct {
	eng     *sim.Engine
	g       *grid.Grid
	spec    model.PipelineSpec
	mapping model.Mapping
	opts    Options

	// Routing tables derived from the spec's stage graph. succ[s]
	// lists stage s's out-edges; indeg[s] is the fan-in width;
	// inbytes[s] is the total inbound payload of a joined item
	// (charged on migrations/redirects); exit is the unique exit
	// stage; hasMerge is false on the linear fast path.
	graph    *topo.Graph
	succ     [][]edgeHop
	indeg    []int32
	inbytes  []float64
	exit     int
	hasMerge bool
	// pred[s] lists stage s's in-edges (edgeHop.to holds the
	// predecessor stage); multiPart is true when the graph can put one
	// item in several places at once (any fan-out or fan-in).
	pred      [][]edgeHop
	multiPart bool

	mon   *monitor.Monitor
	nodes []*nodeServer
	links map[linkKey]*linkServer
	// share is the cluster contention ledger (nil for single-job runs;
	// every multi-tenant branch is guarded on it).
	share *NodeShares

	rr []int // round-robin counters per stage

	admitted   int
	inFlight   int
	completed  int
	migrations int     // items moved by remaps
	redone     float64 // reference-seconds redone after kills

	// Node lifecycle state (see churn.go). unavail counts nodes not
	// accepting new work (Down or Draining): the hot-path guard — every
	// churn branch is skipped while it is zero, keeping no-churn runs
	// bit-identical to the pre-lifecycle executor.
	unavail       int
	epoch         []uint32 // per-node crash epoch (bumped by nodeDown)
	churnEvs      []churnEv
	lifecycleHook func(now float64, n grid.NodeID, s grid.NodeState)
	maxRetries    int
	lost          int
	retries       int
	lostWork      float64
	parked        []parkedPart
	parkedAlt     []parkedPart
	// Test hooks for the conservation property tests: exactly-once
	// completion/loss per admitted sequence number.
	onComplete func(seq int)
	onLost     func(seq int)

	latencies []float64 // per-item pipeline traversal times
	poisson   *poissonSource

	// Free lists: steady-state admission, service, and transfer reuse
	// these instead of allocating per item/task/hop.
	itemFree []*item
	taskFree []*task
	txFree   []*transfer
}

type linkKey struct{ a, b grid.NodeID }

// New builds an executor; the pipeline starts admitting items when
// Start is called.
func New(eng *sim.Engine, g *grid.Grid, spec model.PipelineSpec, m model.Mapping, opts Options) (*Executor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(spec.NumStages(), g.NumNodes()); err != nil {
		return nil, err
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * spec.NumStages()
	}
	e := &Executor{
		eng:     eng,
		g:       g,
		spec:    spec,
		mapping: m.Clone(),
		opts:    opts,
		mon:     monitor.New(spec.NumStages(), opts.MonitorWindow),
		links:   map[linkKey]*linkServer{},
		rr:      make([]int, spec.NumStages()),
	}
	e.graph = spec.Graph()
	ns := spec.NumStages()
	e.exit = e.graph.Exit()
	e.succ = make([][]edgeHop, ns)
	e.indeg = make([]int32, ns)
	e.inbytes = make([]float64, ns)
	e.pred = make([][]edgeHop, ns)
	for i := 0; i < ns; i++ {
		for _, ei := range e.graph.OutEdges(i) {
			ed := e.graph.Edges[ei]
			e.succ[i] = append(e.succ[i], edgeHop{to: ed.To, bytes: ed.Bytes})
		}
		for _, ei := range e.graph.InEdges(i) {
			ed := e.graph.Edges[ei]
			e.pred[i] = append(e.pred[i], edgeHop{to: ed.From, bytes: ed.Bytes})
		}
		e.indeg[i] = int32(e.graph.InDegree(i))
		e.inbytes[i] = e.graph.InBytesOf(i, spec.InBytes)
		if e.indeg[i] > 1 {
			e.hasMerge = true
		}
		if len(e.succ[i]) > 1 {
			e.multiPart = true
		}
	}
	if e.hasMerge {
		e.multiPart = true
	}
	e.maxRetries = opts.MaxRetries
	if e.maxRetries == 0 {
		e.maxRetries = 8
	} else if e.maxRetries < 0 {
		e.maxRetries = 0 // unlimited
	}
	e.nodes = make([]*nodeServer, g.NumNodes())
	e.epoch = make([]uint32, g.NumNodes())
	for i := range e.nodes {
		e.nodes[i] = newNodeServer(e, g.Node(grid.NodeID(i)))
	}
	if opts.ArrivalRate > 0 {
		e.poisson = newPoissonSource(opts.Seed, opts.ArrivalRate)
	}
	if opts.Share != nil {
		if err := opts.Share.attach(e); err != nil {
			return nil, err
		}
		e.share = opts.Share
	}
	return e, nil
}

// SetItemHooks registers exactly-once callbacks fired when an item
// completes or is dropped (by admitted sequence number). The cluster
// layer uses them to track per-job progress while several executors
// share one engine; the churn conservation tests use them to pin the
// admitted == completed + lost + in-flight invariant.
func (e *Executor) SetItemHooks(onComplete, onLost func(seq int)) {
	e.onComplete = onComplete
	e.onLost = onLost
}

// Monitor exposes the run-time instrumentation.
func (e *Executor) Monitor() *monitor.Monitor { return e.mon }

// Mapping returns a copy of the current mapping.
func (e *Executor) Mapping() model.Mapping { return e.mapping.Clone() }

// Done returns the number of completed items.
func (e *Executor) Done() int { return e.completed }

// Admitted returns the number of items that entered the pipeline.
func (e *Executor) Admitted() int { return e.admitted }

// InFlight returns the number of items currently inside the pipeline.
func (e *Executor) InFlight() int { return e.inFlight }

// Migrations returns how many queued items remaps have moved.
func (e *Executor) Migrations() int { return e.migrations }

// RedoneWork returns the reference-seconds discarded by kill-restart
// remaps.
func (e *Executor) RedoneWork() float64 { return e.redone }

// Latencies returns per-item pipeline traversal times in completion
// order (shared slice).
func (e *Executor) Latencies() []float64 { return e.latencies }

// Start begins admitting items. With a Poisson source it schedules the
// first arrival; with the saturated source it fills the CONWIP window.
func (e *Executor) Start() {
	if e.poisson != nil {
		e.scheduleNextArrival()
		return
	}
	for e.canAdmit() {
		e.admit()
	}
}

func (e *Executor) canAdmit() bool {
	if e.opts.TotalItems > 0 && e.admitted >= e.opts.TotalItems {
		return false
	}
	return e.inFlight < e.opts.MaxInFlight
}

// poissonArrival is the shared arrival trampoline: one bound function
// for all executors keeps the arrival stream allocation-free.
func poissonArrival(arg any) {
	e := arg.(*Executor)
	// Poisson arrivals ignore the window: queueing is the point.
	e.admit()
	e.scheduleNextArrival()
}

func (e *Executor) scheduleNextArrival() {
	if e.opts.TotalItems > 0 && e.admitted >= e.opts.TotalItems {
		return
	}
	gap := e.poisson.next()
	e.eng.ScheduleArg(gap, poissonArrival, e)
}

// admit injects the next item at the source node.
func (e *Executor) admit() {
	it := e.getItem()
	it.seq = e.admitted
	it.started = e.eng.Now()
	it.tries = 0
	it.dropped = false
	for i := range it.work {
		it.work[i] = math.NaN() // sampled lazily at first service
	}
	if e.hasMerge {
		for i := range it.pending {
			it.pending[i] = e.indeg[i]
			it.dest[i] = -1
			it.joined[i] = 0
		}
	}
	e.admitted++
	e.inFlight++
	entry := e.graph.Entry()
	dest := e.pickReplica(entry)
	e.transfer(it, entry, e.spec.Source, dest, e.spec.InBytes)
}

// getItem takes an item from the pool, with its work slice sized for
// the spec; the caller fills the per-run fields.
func (e *Executor) getItem() *item {
	if n := len(e.itemFree); n > 0 {
		it := e.itemFree[n-1]
		e.itemFree = e.itemFree[:n-1]
		return it
	}
	it := &item{work: make([]float64, e.spec.NumStages())}
	if e.hasMerge {
		it.pending = make([]int32, e.spec.NumStages())
		it.dest = make([]grid.NodeID, e.spec.NumStages())
		it.joined = make([]float64, e.spec.NumStages())
		it.joinEpoch = make([]uint32, e.spec.NumStages())
	}
	return it
}

func (e *Executor) putItem(it *item) {
	e.itemFree = append(e.itemFree, it)
}

// getTask takes a task from the pool, bound to an item, stage and
// node.
func (e *Executor) getTask(it *item, stage int, node grid.NodeID) *task {
	if n := len(e.taskFree); n > 0 {
		t := e.taskFree[n-1]
		e.taskFree = e.taskFree[:n-1]
		t.it, t.stage, t.node = it, stage, node
		return t
	}
	return &task{it: it, stage: stage, node: node}
}

func (e *Executor) putTask(t *task) {
	t.it = nil
	t.completion = sim.Event{}
	e.taskFree = append(e.taskFree, t)
}

// getTransfer takes a link transfer from the pool.
func (e *Executor) getTransfer(it *item, stage int, bytes float64) *transfer {
	if n := len(e.txFree); n > 0 {
		tx := e.txFree[n-1]
		e.txFree = e.txFree[:n-1]
		tx.it, tx.stage, tx.bytes, tx.serial = it, stage, bytes, 0
		return tx
	}
	return &transfer{it: it, stage: stage, bytes: bytes}
}

func (e *Executor) putTransfer(tx *transfer) {
	tx.it = nil
	e.txFree = append(e.txFree, tx)
}

// pickReplica deals the next item of a stage round-robin. While any
// node is unavailable the dealer skips non-Up replicas; if none is
// live it falls back to the blind pick, so the part bounces at
// delivery and parks until capacity returns.
func (e *Executor) pickReplica(stage int) grid.NodeID {
	replicas := e.mapping.Assign[stage]
	if e.unavail > 0 {
		for range replicas {
			n := replicas[e.rr[stage]%len(replicas)]
			e.rr[stage]++
			if e.isUp(n) {
				return n
			}
		}
	}
	n := replicas[e.rr[stage]%len(replicas)]
	e.rr[stage]++
	return n
}

// replicaFor picks the destination replica for routing one of it's
// parts into stage. Fan-in stages get a sticky choice — every part of
// one item must converge on the same replica so the join is local —
// advancing the round-robin dealer once per item, not once per part.
func (e *Executor) replicaFor(it *item, stage int) grid.NodeID {
	if !e.hasMerge || e.indeg[stage] <= 1 {
		return e.pickReplica(stage)
	}
	if it.dest[stage] < 0 {
		it.dest[stage] = e.pickReplica(stage)
	}
	return it.dest[stage]
}

// redirectDest picks where to send a part whose stage is no longer
// mapped to the node it reached (the mapping changed in flight). For
// fan-in stages the sticky choice is reused while it still points at a
// live replica, so parts separated by a remap still converge; when the
// sticky replica went stale, any parts already joined there relocate
// to the new replica as one consolidated part — a real transfer the
// join waits for, counted as a migration.
func (e *Executor) redirectDest(it *item, stage int) grid.NodeID {
	if e.hasMerge && e.indeg[stage] > 1 {
		old := it.dest[stage]
		if old >= 0 && onNode(e.mapping.Assign[stage], old) {
			// The sticky replica survives while it is Up, or while it is
			// Draining with this item's join already in progress (a
			// draining node finishes joins it accepted).
			st := grid.Up
			if e.unavail > 0 {
				st = e.g.Node(old).State()
			}
			if st == grid.Up || (st == grid.Draining && e.joinInProgress(it, stage)) {
				return old
			}
		}
		d := e.pickReplica(stage)
		it.dest[stage] = d
		it.joinEpoch[stage] = e.epoch[d]
		if old >= 0 && old != d && e.joinInProgress(it, stage) {
			moved := it.joined[stage]
			it.joined[stage] = 0
			it.pending[stage]++ // the join must wait for the relocation
			e.migrations++
			// Parts joined at a crashed replica are gone with it; they
			// are conservatively re-fetched from the upstream boundary
			// instead of "moving" off the dead node.
			src := old
			if e.unavail > 0 && e.g.Node(old).State() == grid.Down {
				src = e.boundarySrc(stage)
			}
			e.transfer(it, stage, src, d, moved)
		}
		return d
	}
	return e.pickReplica(stage)
}

// transfer moves one part of an item bound for the given stage (or the
// sink, stage == NumStages) from node a towards node b, then delivers
// it. Intra-node movement is effectively free.
func (e *Executor) transfer(it *item, stage int, a, b grid.NodeID, bytes float64) {
	if a == b {
		e.deliver(it, stage, b, bytes, 0)
		return
	}
	e.link(a, b).enqueue(it, stage, bytes)
}

func (e *Executor) link(a, b grid.NodeID) *linkServer {
	k := linkKey{a, b}
	ls, ok := e.links[k]
	if !ok {
		ls = newLinkServer(e, e.g.Link(a, b), b)
		e.links[k] = ls
	}
	return ls
}

// deliver hands one part (carrying bytes of payload) bound for the
// given stage to a node. If the stage is no longer mapped there (the
// mapping changed while the part was in flight), the part is forwarded
// to a live replica — an extra hop of the same payload, exactly what a
// real redirect costs. At a fan-in stage the part joins the item's
// tally and service starts only when the last part has arrived.
func (e *Executor) deliver(it *item, stage int, n grid.NodeID, bytes, transferDur float64) {
	if it.dropped {
		return // tombstoned: a sibling part exhausted the retry budget
	}
	if stage >= e.spec.NumStages() {
		// Arrived at the sink: the item is done.
		e.complete(it)
		return
	}
	if transferDur > 0 {
		e.mon.Stage(stage).RecordTransfer(transferDur)
	}
	if !e.accepts(it, stage, n) {
		if e.unavail > 0 && !e.stageHasLive(stage) {
			// No live replica anywhere: the part returns to its stage
			// boundary and waits for a rejoin, join, or remap.
			e.park(it, stage, bytes)
			return
		}
		dest := e.redirectDest(it, stage)
		e.transfer(it, stage, n, dest, bytes)
		return
	}
	if e.hasMerge && e.indeg[stage] > 1 {
		if it.pending[stage] == e.indeg[stage] {
			// First part opens the join under the node's current crash
			// epoch.
			it.joinEpoch[stage] = e.epoch[n]
		} else if it.joinEpoch[stage] != e.epoch[n] {
			// The replica crashed (and rejoined) mid-join: the parts it
			// had accumulated died with it. Re-fetch them from the
			// upstream boundary as one consolidated part the join must
			// wait for; crash recovery, so it counts on the retry
			// ledger (not against the item's drop budget — no service
			// progress is redone, only payload re-moved).
			moved := it.joined[stage]
			it.joined[stage] = 0
			it.joinEpoch[stage] = e.epoch[n]
			if moved > 0 {
				it.pending[stage]++
				e.retries++
				e.transfer(it, stage, e.boundarySrc(stage), n, moved)
			}
		}
		it.joined[stage] += bytes
		it.pending[stage]--
		if it.pending[stage] > 0 {
			return // waiting for the item's remaining parts
		}
	}
	e.nodes[n].enqueue(it, stage)
}

// joinInProgress reports whether the item has a fan-in join open at
// stage: some but not all parts arrived. Routing (redirectDest) and
// acceptance (accepts) share it so a draining replica's obligations
// cannot diverge between the two.
func (e *Executor) joinInProgress(it *item, stage int) bool {
	return it.pending[stage] > 0 && it.pending[stage] < e.indeg[stage]
}

// accepts reports whether node n takes a part of it bound for stage:
// the stage must be mapped there and the node Up — or Draining with
// this item's fan-in join already in progress, since a draining node
// finishes the joins it accepted.
func (e *Executor) accepts(it *item, stage int, n grid.NodeID) bool {
	if !onNode(e.mapping.Assign[stage], n) {
		return false
	}
	if e.unavail == 0 {
		return true
	}
	switch e.g.Node(n).State() {
	case grid.Up:
		return true
	case grid.Draining:
		return e.hasMerge && e.indeg[stage] > 1 && it.dest[stage] == n &&
			e.joinInProgress(it, stage)
	default:
		return false
	}
}

// bytesInto returns the total message size entering the given stage:
// the source payload for the entry, otherwise the sum over in-edges (a
// fan-in stage's migrations move the whole joined item).
func (e *Executor) bytesInto(stage int) float64 {
	return e.inbytes[stage]
}

// serviceWork returns (sampling if needed) the service demand of an
// item at the given stage.
func (e *Executor) serviceWork(it *item, stage int) float64 {
	w := it.work[stage]
	if math.IsNaN(w) {
		if e.opts.WorkSampler != nil {
			w = e.opts.WorkSampler(stage, it.seq)
			if w < 0 || math.IsNaN(w) {
				panic(fmt.Sprintf("exec: work sampler returned %v", w))
			}
		} else {
			w = e.spec.Stages[stage].Work
		}
		it.work[stage] = w
	}
	return w
}

// stageFinished is called when a node completes service for an item at
// a stage: the exit stage ships its result to the sink, every other
// stage emits one part per out-edge, each paying that edge's transfer.
func (e *Executor) stageFinished(it *item, stage int, n grid.NodeID, serviceDur float64) {
	e.mon.Stage(stage).RecordService(serviceDur, e.eng.Now())
	if stage == e.exit {
		e.transfer(it, e.spec.NumStages(), n, e.spec.Sink, e.spec.Stages[stage].OutBytes)
		return
	}
	for _, hop := range e.succ[stage] {
		dest := e.replicaFor(it, hop.to)
		e.transfer(it, hop.to, n, dest, hop.bytes)
	}
}

func (e *Executor) complete(it *item) {
	e.completed++
	e.inFlight--
	now := e.eng.Now()
	e.mon.RecordCompletion(now)
	e.latencies = append(e.latencies, now-it.started)
	if e.onComplete != nil {
		e.onComplete(it.seq)
	}
	e.putItem(it)
	if e.poisson == nil {
		for e.canAdmit() {
			e.admit()
		}
	}
}

// RunItems admits and processes exactly n items to completion,
// returning the virtual makespan. It must be called before any events
// have run. It steps the engine only until the n-th completion, so
// perpetual background events (an adaptive controller's ticker, load
// sensors) do not keep the run alive.
func (e *Executor) RunItems(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("exec: RunItems with n=%d", n)
	}
	e.opts.TotalItems = n
	e.Start()
	start := e.eng.Now()
	// Items dropped by churn count against the target: the run ends
	// when every admitted item is accounted for (completed or lost).
	for e.completed+e.lost < n && e.eng.Step() {
	}
	if e.completed+e.lost != n {
		return 0, fmt.Errorf("exec: completed %d and lost %d of %d items (deadlock?)",
			e.completed, e.lost, n)
	}
	return e.eng.Now() - start, nil
}

// RunUntil processes items (saturated or Poisson source) until virtual
// time t, returning the number completed.
func (e *Executor) RunUntil(t float64) int {
	e.Start()
	e.eng.RunUntil(t)
	return e.completed
}

func onNode(nodes []grid.NodeID, id grid.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
