package exec

import (
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// Remap switches the executor to a new mapping at the current virtual
// time, handling in-flight work according to the protocol:
//
//   - queued items whose stage left their node migrate, paying a real
//     transfer of their inbound message (both protocols);
//   - in-service items finish where they run under DrainSafe, or are
//     aborted and redone at the new location under KillRestart;
//   - items in transit are untouched and redirect on arrival.
//
// It returns what the reconfiguration did; remapping to the current
// mapping is a no-op.
func (e *Executor) Remap(nm model.Mapping, protocol RemapProtocol) (RemapStats, error) {
	if err := nm.Validate(e.spec.NumStages(), e.g.NumNodes()); err != nil {
		return RemapStats{}, err
	}
	var st RemapStats
	if nm.Equal(e.mapping) {
		return st, nil
	}
	st.Changed = true
	// Moved is reported as the migration delta so that fan-in part
	// relocations (redirectDest consolidating a half-joined item onto
	// a live replica) are counted alongside queued-task migrations.
	mig0 := e.migrations

	changed := make([]bool, e.spec.NumStages())
	for i := range e.mapping.Assign {
		changed[i] = !sameNodes(e.mapping.Assign[i], nm.Assign[i])
	}

	e.mapping = nm.Clone()
	// Restart round-robin dealing cleanly over the new replica sets.
	for i := range e.rr {
		e.rr[i] = 0
	}
	// Windowed samples describe the old placement; drop them so the
	// monitor reflects the new one.
	e.mon.ResetStages()

	for _, ns := range e.nodes {
		nodeID := ns.node.ID
		removed := ns.removeQueued(func(t *task) bool {
			return changed[t.stage] && !onNode(e.mapping.Assign[t.stage], nodeID)
		})
		for _, t := range removed {
			e.migrations++
			it, stage := t.it, t.stage
			e.putTask(t)
			// A queued item is fully joined, so the migration pays the
			// stage's whole inbound payload. redirectDest keeps the
			// parts of any not-yet-joined sibling converging on the
			// same (live) replica.
			dest := e.redirectDest(it, stage)
			e.transfer(it, stage, nodeID, dest, e.bytesInto(stage))
		}

		if protocol == KillRestart {
			// The in-service slice has a deterministic (swap-remove)
			// order, so victim order — and with it the whole
			// post-remap event sequence — is reproducible across
			// runs, unlike the seed's map iteration.
			var victims []*task
			for _, t := range ns.inService {
				if changed[t.stage] && !onNode(e.mapping.Assign[t.stage], nodeID) {
					victims = append(victims, t)
				}
			}
			for _, t := range victims {
				it, stage := t.it, t.stage
				ns.abort(t)
				e.putTask(t)
				st.Killed++
				st.RedoneWork += it.work[stage]
				e.redone += it.work[stage]
				dest := e.redirectDest(it, stage)
				e.transfer(it, stage, nodeID, dest, e.bytesInto(stage))
			}
		}
	}
	st.Moved = e.migrations - mig0
	// A remap can give a previously dead stage live replicas again:
	// parts parked behind a crash re-dispatch onto the new placement.
	e.flushParked()
	return st, nil
}

func sameNodes(a, b []grid.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
