// Multi-tenant contention: NodeShares models proportional capacity
// sharing when several executors (one per cluster job) run on the same
// grid in one virtual-time engine.
//
// Each executor still gates its own concurrency at a node's core count
// (busy < Cores), so a single-tenant node behaves exactly as before.
// When tenants overlap, the node's cores are shared processor-style:
// with k in-service tasks cluster-wide on a C-core node, every task
// progresses at min(1, C/k) of the node's effective speed. A share
// change mid-service rescales every in-service task on the node — the
// work done so far under the old share is banked (grid.Node.WorkIn,
// the same quantised integral ServiceDuration uses) and the remaining
// work is rescheduled under the new share.
//
// Single-job runs never construct a NodeShares: every branch in the
// executor hot path is guarded by e.share != nil, so the one-tenant
// event sequence stays bit-identical to the pre-cluster executor
// (pinned by the F1–F11 goldens and golden_test.go).
package exec

import (
	"fmt"

	"gridpipe/internal/grid"
)

// NodeShares is the shared contention ledger of one cluster: per node,
// the number of in-service tasks across every attached executor.
type NodeShares struct {
	g     *grid.Grid
	execs []*Executor
	count []int
}

// NewNodeShares returns an empty ledger for the grid. Pass it as
// Options.Share to every executor multiplexed onto the grid; executors
// attach themselves at construction, in New order (which fixes the
// deterministic rescale order).
func NewNodeShares(g *grid.Grid) *NodeShares {
	return &NodeShares{g: g, count: make([]int, g.NumNodes())}
}

// attach registers an executor; called by New when Options.Share is
// set.
func (sh *NodeShares) attach(e *Executor) error {
	if e.g != sh.g {
		return fmt.Errorf("exec: NodeShares built for a different grid")
	}
	sh.execs = append(sh.execs, e)
	return nil
}

// InService returns the cluster-wide in-service task count on node n.
func (sh *NodeShares) InService(n grid.NodeID) int { return sh.count[n] }

// Mult returns the current capacity share of each in-service task on
// node n: min(1, Cores/k).
func (sh *NodeShares) Mult(n grid.NodeID) float64 {
	c := sh.g.Node(n).Cores
	if sh.count[n] <= c {
		return 1
	}
	return float64(c) / float64(sh.count[n])
}

// beginService accounts one task entering service on node n at time
// now, rescaling the tasks already in service if their share shrinks,
// and returns the share the new task starts under.
func (sh *NodeShares) beginService(n grid.NodeID, now float64) float64 {
	c := sh.g.Node(n).Cores
	sh.count[n]++
	if sh.count[n] > c {
		sh.rescale(n, now)
	}
	return sh.Mult(n)
}

// endService accounts one task leaving service on node n at time now,
// rescaling the remaining tasks if their share grows.
func (sh *NodeShares) endService(n grid.NodeID, now float64) {
	c := sh.g.Node(n).Cores
	over := sh.count[n] > c
	sh.count[n]--
	if over {
		sh.rescale(n, now)
	}
}

// rescale re-banks and reschedules every in-service task on node n
// under the node's current share. Iteration order — executors in
// attach order, tasks in in-service slice order — is deterministic,
// so the rescheduled event sequence is reproducible.
func (sh *NodeShares) rescale(n grid.NodeID, now float64) {
	node := sh.g.Node(n)
	mult := sh.Mult(n)
	for _, e := range sh.execs {
		ns := e.nodes[n]
		for _, t := range ns.inService {
			if t.mult == mult {
				continue
			}
			done := t.mult * node.WorkIn(t.lastT, now-t.lastT)
			t.rem -= done
			if t.rem < 0 {
				t.rem = 0
			}
			t.lastT = now
			t.mult = mult
			t.completion.Cancel()
			dur := node.ServiceDuration(t.rem/mult, now)
			t.completion = e.eng.ScheduleArg(dur, ns.finishFn, t)
		}
	}
}
