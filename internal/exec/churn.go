// Node lifecycle handling: the executor-side half of the churn
// subsystem (the schedule itself lives in internal/grid).
//
// A crash (node Down) loses everything physically on the node: queued
// and in-service tasks, and any half-joined fan-in parts. Items are
// not lost with it — the stage-boundary data is retained upstream (the
// sending side keeps an item's input until the receiving stage
// completes, the classic upstream-backup recovery of streaming
// dataflows) — so every affected item is re-dispatched from its last
// stage boundary: a fresh transfer of the stage's inbound payload from
// the predecessor stage's first live replica (the pipeline source for
// the entry stage). Each re-dispatch counts one retry against the
// item; an item whose retries exceed Options.MaxRetries is dropped and
// counted lost, preserving the conservation invariant
//
//	admitted == completed + lost + in-flight
//
// at every instant (the churn property tests pin it).
//
// When a stage has no live replica at all — its only nodes are Down,
// or Draining with no join in progress — parts bound for it park in a
// pooled holding list and re-dispatch when capacity returns: a rejoin,
// a join of a new node, or a remap that maps the stage onto live
// nodes. Parking models the real behaviour of a static mapping under
// failure (work backs up behind the dead node until it returns), which
// is exactly the baseline the fault-aware adaptive policy is measured
// against in experiment F9.
//
// A drain (node Draining) is the graceful counterpart: the node
// finishes its queue and in-service work, but accepts no new parts
// (only the remaining parts of fan-in joins it already started), and
// the mapping search excludes it like a Down node.
//
// All of this is pooled like the rest of the executor: churn event
// args are preallocated at install time, parked parts reuse a
// double-buffered slice, and the per-item retry counter lives on the
// pooled item — the no-churn hot path stays 0 allocs/item and is
// guarded by a single e.unavail == 0 check, so churn-free runs remain
// bit-identical to the pre-lifecycle executor (pinned by
// golden_test.go).
package exec

import (
	"fmt"

	"gridpipe/internal/grid"
)

// churnEv is the pooled argument of one scheduled lifecycle event.
type churnEv struct {
	e    *Executor
	node grid.NodeID
	kind grid.ChurnKind
}

// churnFire is the shared lifecycle trampoline: one bound function for
// all events keeps the schedule allocation-free after install.
func churnFire(arg any) {
	c := arg.(*churnEv)
	switch c.kind {
	case grid.ChurnCrash:
		c.e.nodeDown(c.node)
	case grid.ChurnRejoin, grid.ChurnJoin:
		c.e.nodeUp(c.node)
	case grid.ChurnDrain:
		c.e.nodeDrain(c.node)
	}
}

// InstallChurn arms the lifecycle schedule: every node is reset to Up,
// nodes that have not yet joined start Down, and each transition is
// scheduled on the engine at its virtual time. Call it after New and
// before any events have run. A nil or empty schedule is a no-op.
func (e *Executor) InstallChurn(cs *grid.ChurnSchedule) error {
	if cs == nil || len(cs.Events()) == 0 {
		return nil
	}
	if err := e.validateChurnInstall(); err != nil {
		return err
	}
	if err := cs.ValidateAgainst(e.g); err != nil {
		return err
	}
	e.g.ResetLifecycle()
	e.unavail = 0
	for _, name := range cs.InitiallyDown() {
		e.g.NodeByName(name).SetState(grid.Down)
		e.unavail++
	}
	evs := cs.Events()
	e.churnEvs = make([]churnEv, len(evs))
	for i, ev := range evs {
		e.churnEvs[i] = churnEv{e: e, node: e.g.NodeByName(ev.Node).ID, kind: ev.Kind}
		e.eng.AtArg(ev.T, churnFire, &e.churnEvs[i])
	}
	return nil
}

// SetLifecycleHook registers a callback fired after the executor has
// processed a lifecycle transition (tasks re-dispatched, parked parts
// flushed). The adaptive controller uses it to remap immediately on a
// crash instead of waiting for its next tick.
func (e *Executor) SetLifecycleHook(fn func(now float64, n grid.NodeID, s grid.NodeState)) {
	e.lifecycleHook = fn
}

// Lost returns the number of items dropped after exhausting their
// crash-retry budget.
func (e *Executor) Lost() int { return e.lost }

// Retries returns the number of crash-induced re-dispatches from stage
// boundaries.
func (e *Executor) Retries() int { return e.retries }

// LostWork returns the reference-seconds of service progress destroyed
// by crashes (analogous to RedoneWork for kill-restart remaps).
func (e *Executor) LostWork() float64 { return e.lostWork }

// Parked returns the number of parts currently waiting for a live
// replica of their stage.
func (e *Executor) Parked() int { return len(e.parked) }

// Available reports whether node n currently accepts new work.
func (e *Executor) Available(n grid.NodeID) bool {
	return e.g.Node(n).State() == grid.Up
}

// AllAvailable reports whether every node is Up — the fast no-churn
// check the controller uses to skip building an availability mask.
func (e *Executor) AllAvailable() bool { return e.unavail == 0 }

// isUp is the hot-path availability check.
func (e *Executor) isUp(n grid.NodeID) bool {
	return e.g.Node(n).State() == grid.Up
}

// stageHasLive reports whether any replica of the stage accepts new
// work.
func (e *Executor) stageHasLive(stage int) bool {
	for _, n := range e.mapping.Assign[stage] {
		if e.isUp(n) {
			return true
		}
	}
	return false
}

// liveReplicaOf returns the stage's first live replica, falling back
// to the pipeline source (where stage-boundary data is always safe)
// when none is live.
func (e *Executor) liveReplicaOf(stage int) grid.NodeID {
	for _, n := range e.mapping.Assign[stage] {
		if e.isUp(n) {
			return n
		}
	}
	return e.spec.Source
}

// boundarySrc returns the node holding the stage's input boundary
// data: the predecessor stage's first live replica, or the pipeline
// source for the entry stage.
func (e *Executor) boundarySrc(stage int) grid.NodeID {
	if len(e.pred[stage]) == 0 {
		return e.spec.Source
	}
	return e.liveReplicaOf(e.pred[stage][0].to)
}

// nodeDown crashes a node: everything physically on it is lost.
// In-service tasks are aborted (their progress is destroyed), queued
// tasks are flushed, and every affected item is re-dispatched from its
// last stage boundary.
func (e *Executor) nodeDown(n grid.NodeID) {
	node := e.g.Node(n)
	st := node.State()
	if st == grid.Down {
		return
	}
	if st == grid.Up {
		e.unavail++
	}
	node.SetState(grid.Down)
	// Invalidate every fan-in join accumulating here: parts joined
	// under the old epoch are re-fetched if the node serves the same
	// join again after a rejoin (see deliver).
	e.epoch[n]++
	ns := e.nodes[n]
	// Abort in-service tasks from the tail: swap-removal keeps the
	// victim order deterministic, and abort's dispatch() is inert on a
	// Down node.
	for len(ns.inService) > 0 {
		t := ns.inService[len(ns.inService)-1]
		it, stage := t.it, t.stage
		e.lostWork += it.work[stage]
		ns.abort(t)
		e.putTask(t)
		e.retryFromBoundary(it, stage)
	}
	// Flush the queue in FIFO order.
	for {
		t, ok := ns.queue.Pop()
		if !ok {
			break
		}
		it, stage := t.it, t.stage
		e.putTask(t)
		e.retryFromBoundary(it, stage)
	}
	if e.lifecycleHook != nil {
		e.lifecycleHook(e.eng.Now(), n, grid.Down)
	}
}

// nodeUp brings a node (back) into service and re-dispatches any parts
// that were waiting for capacity.
func (e *Executor) nodeUp(n grid.NodeID) {
	node := e.g.Node(n)
	if node.State() == grid.Up {
		return
	}
	node.SetState(grid.Up)
	e.unavail--
	e.flushParked()
	e.nodes[n].dispatch()
	if e.lifecycleHook != nil {
		e.lifecycleHook(e.eng.Now(), n, grid.Up)
	}
}

// nodeDrain starts a graceful leave: accepted work keeps draining, new
// work is refused, schedulers exclude the node.
func (e *Executor) nodeDrain(n grid.NodeID) {
	node := e.g.Node(n)
	if node.State() != grid.Up {
		return
	}
	node.SetState(grid.Draining)
	e.unavail++
	if e.lifecycleHook != nil {
		e.lifecycleHook(e.eng.Now(), n, grid.Draining)
	}
}

// retryFromBoundary charges one retry against the item and re-enters
// it at the given stage's input boundary, dropping the item once its
// retry budget is exhausted.
func (e *Executor) retryFromBoundary(it *item, stage int) {
	if it.dropped {
		// A sibling part of the same item (e.g. a co-located task on
		// this very crash) already exhausted the budget: nothing to
		// re-dispatch, nothing to charge.
		return
	}
	it.tries++
	if e.maxRetries > 0 && int(it.tries) > e.maxRetries {
		// Budget exhausted: the item is dropped, nothing is
		// re-dispatched, so the retries ledger does not count this
		// attempt.
		e.drop(it)
		return
	}
	e.retries++
	e.retryDispatch(it, stage)
}

// retryDispatch routes one boundary re-entry (it does not count a
// retry; flushParked reuses it). Fan-in stages lose their join state
// with the crashed replica, so every in-edge part is re-requested from
// its producing stage's live replica.
func (e *Executor) retryDispatch(it *item, stage int) {
	if !e.stageHasLive(stage) {
		if e.hasMerge && e.indeg[stage] > 1 {
			e.park(it, stage, rejoinAll)
		} else {
			e.park(it, stage, e.bytesInto(stage))
		}
		return
	}
	if e.hasMerge && e.indeg[stage] > 1 {
		d := e.pickReplica(stage)
		it.dest[stage] = d
		it.pending[stage] = e.indeg[stage]
		it.joined[stage] = 0
		it.joinEpoch[stage] = e.epoch[d]
		for _, ph := range e.pred[stage] {
			src := e.liveReplicaOf(ph.to)
			e.transfer(it, stage, src, d, ph.bytes)
		}
		return
	}
	d := e.pickReplica(stage)
	e.transfer(it, stage, e.boundarySrc(stage), d, e.bytesInto(stage))
}

// rejoinAll marks a parked entry as a whole-item fan-in re-request
// rather than a single part of known size.
const rejoinAll = -1

// parkedPart is one part (or fan-in re-request) waiting for a live
// replica of its stage.
type parkedPart struct {
	it    *item
	stage int32
	bytes float64 // rejoinAll = re-request every in-edge part
}

// park shelves a part until capacity for its stage returns.
func (e *Executor) park(it *item, stage int, bytes float64) {
	e.parked = append(e.parked, parkedPart{it: it, stage: int32(stage), bytes: bytes})
}

// flushParked re-dispatches every parked part once; parts that still
// have no live replica re-park (into the double buffer, so one flush
// is a single pass and cannot loop).
func (e *Executor) flushParked() {
	if len(e.parked) == 0 {
		return
	}
	pend := e.parked
	e.parked = e.parkedAlt[:0]
	for _, p := range pend {
		if p.it.dropped {
			continue
		}
		if p.bytes == rejoinAll {
			e.retryDispatch(p.it, int(p.stage))
			continue
		}
		e.deliver(p.it, int(p.stage), e.boundarySrc(int(p.stage)), p.bytes, 0)
	}
	e.parkedAlt = pend[:0]
}

// drop removes an item from the run and counts it lost. Single-part
// items (linear pipelines) recycle immediately; an item that may have
// sibling parts still in flight across a split is tombstoned instead —
// every later part of it is discarded on sight — and intentionally not
// pooled, since a stale reference could otherwise corrupt its next
// life.
func (e *Executor) drop(it *item) {
	if it.dropped {
		return
	}
	it.dropped = true
	e.lost++
	e.inFlight--
	if e.onLost != nil {
		e.onLost(it.seq)
	}
	if !e.multiPart {
		e.putItem(it)
	}
	if e.poisson == nil {
		for e.canAdmit() {
			e.admit()
		}
	}
}

// validateChurnInstall guards against installing churn twice (the
// schedule owns the grid's lifecycle state for the run).
func (e *Executor) validateChurnInstall() error {
	if e.churnEvs != nil {
		return fmt.Errorf("exec: churn schedule already installed")
	}
	return nil
}
