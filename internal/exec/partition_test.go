package exec

import (
	"strings"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

func TestPlanPartitionsBlocks(t *testing.T) {
	g, err := grid.Homogeneous(10, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanPartitions(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parts != 3 {
		t.Fatalf("Parts=%d, want 3", plan.Parts)
	}
	sizes := make([]int, 3)
	prev := 0
	for n, p := range plan.Assign {
		if p < prev {
			t.Fatalf("assignment not contiguous at node %d: %v", n, plan.Assign)
		}
		prev = p
		sizes[p]++
	}
	// 10 nodes over 3 blocks: the first gets the extra node.
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("block sizes %v, want [4 3 3]", sizes)
	}
	if plan.Lookahead != grid.LANLink.Latency {
		t.Fatalf("lookahead %v, want LAN latency %v", plan.Lookahead, grid.LANLink.Latency)
	}
	if plan.PartitionOf(0) != 0 || plan.PartitionOf(9) != 2 {
		t.Fatalf("PartitionOf endpoints: %d, %d", plan.PartitionOf(0), plan.PartitionOf(9))
	}
}

func TestPlanPartitionsErrors(t *testing.T) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanPartitions(g, 0); err == nil {
		t.Fatal("0 partitions must error")
	}
	if _, err := PlanPartitions(g, 5); err == nil {
		t.Fatal("more partitions than nodes must error")
	}
	// One partition per node is the legal extreme.
	plan, err := PlanPartitions(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for n, p := range plan.Assign {
		if p != n {
			t.Fatalf("1-node blocks: Assign=%v", plan.Assign)
		}
	}
}

func TestPlanByMasksSeams(t *testing.T) {
	// Two sites, LAN inside, WAN between: partitioning along the site
	// seam yields the WAN latency as lookahead; splitting inside a site
	// collapses it to the LAN latency.
	g, err := grid.MultiSite([]grid.Site{
		{Name: "a", Nodes: 3, Speed: 1},
		{Name: "b", Nodes: 3, Speed: 1},
	}, grid.LANLink, grid.WANLink)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(ns ...int) model.CapacityMask {
		m := make(model.CapacityMask, g.NumNodes())
		for _, n := range ns {
			m[n] = true
		}
		return m
	}

	plan, err := PlanByMasks(g, []model.CapacityMask{mask(0, 1, 2), mask(3, 4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Lookahead != grid.WANLink.Latency {
		t.Fatalf("site-seam lookahead %v, want WAN %v", plan.Lookahead, grid.WANLink.Latency)
	}

	plan, err = PlanByMasks(g, []model.CapacityMask{mask(0, 1), mask(2, 3, 4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Lookahead != grid.LANLink.Latency {
		t.Fatalf("intra-site seam lookahead %v, want LAN %v", plan.Lookahead, grid.LANLink.Latency)
	}

	// Uncovered nodes stay unassigned and out of the lookahead scan.
	plan, err = PlanByMasks(g, []model.CapacityMask{mask(0, 1), mask(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PartitionOf(2) != -1 || plan.PartitionOf(5) != -1 {
		t.Fatalf("uncovered nodes assigned: %v", plan.Assign)
	}
	if !strings.Contains(plan.String(), "2 unassigned") {
		t.Fatalf("summary misses unassigned count: %q", plan.String())
	}
}

func TestPlanByMasksErrors(t *testing.T) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(ns ...int) model.CapacityMask {
		m := make(model.CapacityMask, 4)
		for _, n := range ns {
			m[n] = true
		}
		return m
	}
	if _, err := PlanByMasks(g, nil); err == nil {
		t.Fatal("no masks must error")
	}
	if _, err := PlanByMasks(g, []model.CapacityMask{mask(0, 1), mask(1, 2)}); err == nil {
		t.Fatal("overlapping masks must error")
	}
	long := make(model.CapacityMask, 6)
	long[5] = true
	if _, err := PlanByMasks(g, []model.CapacityMask{long}); err == nil {
		t.Fatal("out-of-range mask must error")
	}
}
