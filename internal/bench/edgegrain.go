package bench

// The per-edge grain sweep: live throughput of a two-stage pipeline
// whose boundaries carry independent grains (EnableBatchEdges), over
// the corner vectors of the [fine, coarse] lattice plus the vector
// sched.SearchGrainVector picks on an asymmetric model spec. The
// asymmetry is the interesting part: the head boundary has zero
// per-batch overhead (coarsening buys nothing and costs sojourn) while
// the stage 0→1 edge pays a heavy per-batch synchronization charge
// (coarsening amortizes it), so the model should land on a mixed
// vector — fine head, coarse edge — rather than a uniform grain.
// pipebench embeds the result in the BENCH_*.json `edge_grains`
// section.

import (
	"context"
	"fmt"
	"time"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/pipeline"
	"gridpipe/internal/sched"
)

// EdgeGrainPoint is one grain vector's live measurement.
type EdgeGrainPoint struct {
	// Grains is the boundary vector: grains[0] the head batcher,
	// grains[1] the stage 0→1 bridge edge.
	Grains []int `json:"grains"`
	// ItemsPerSec is the saturated live boundary throughput.
	ItemsPerSec float64 `json:"items_per_s"`
	// Chosen marks the vector sched.SearchGrainVector selected on the
	// asymmetric model spec.
	Chosen bool `json:"chosen,omitempty"`
}

// EdgeGrainResult is the sweep's machine-readable outcome.
type EdgeGrainResult struct {
	Points []EdgeGrainPoint `json:"points"`
	// Chosen is the grain vector the coordinate-descent search picked
	// on the asymmetric spec (head overhead 0, edge overhead heavy).
	Chosen []int `json:"chosen"`
	// PredictedItemsPerSec is the model's throughput at Chosen.
	PredictedItemsPerSec float64 `json:"predicted_items_per_s"`
}

// EdgeGrainSweepConfig tunes EdgeGrainSweep. Zero values pick the
// defaults.
type EdgeGrainSweepConfig struct {
	// Vectors are the boundary vectors to measure live (default the
	// four corners [1,1] [64,64] [1,64] [64,1]).
	Vectors [][]int
	// Items per throughput measurement (default 200_000).
	Items int
	// Linger is the batchers' partial-batch timeout (default
	// pipeline.DefaultLinger).
	Linger time.Duration
}

func (c *EdgeGrainSweepConfig) fillDefaults() {
	if len(c.Vectors) == 0 {
		c.Vectors = [][]int{{1, 1}, {64, 64}, {1, 64}, {64, 1}}
	}
	if c.Items <= 0 {
		c.Items = 200_000
	}
	if c.Linger <= 0 {
		c.Linger = pipeline.DefaultLinger
	}
}

// edgeGrainLadder caps the searched rungs at 64 so the chosen vector
// is comparable with the measured corners.
var edgeGrainLadder = []int{1, 2, 4, 8, 16, 32, 64}

// edgeGrainSpec is the asymmetric model instance the search runs on: a
// two-stage chain where batching is free at the head and expensive on
// the inter-stage edge, so the per-boundary optimum is mixed.
func edgeGrainSpec() model.PipelineSpec {
	spec := model.Balanced(2, 0.001, 100)
	spec.BatchOverheads = []float64{0, 0.05}
	return spec
}

// EdgeGrainSweep measures every configured boundary vector on a live
// two-stage pipeline and runs sched.SearchGrainVector on the
// asymmetric spec, measuring the chosen vector too when it is not
// already a corner.
func EdgeGrainSweep(cfg EdgeGrainSweepConfig) (*EdgeGrainResult, error) {
	cfg.fillDefaults()

	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		return nil, err
	}
	chosen, _, pred, err := sched.SearchGrainVector(sched.Exhaustive{}, g, edgeGrainSpec(), nil, edgeGrainLadder)
	if err != nil {
		return nil, err
	}

	vectors := cfg.Vectors
	chosenIdx := -1
	for i, v := range vectors {
		if vecEqual(v, chosen) {
			chosenIdx = i
			break
		}
	}
	if chosenIdx < 0 {
		vectors = append(append([][]int(nil), vectors...), chosen)
		chosenIdx = len(vectors) - 1
	}

	res := &EdgeGrainResult{
		Chosen:               chosen,
		PredictedItemsPerSec: pred.Throughput,
	}
	for i, v := range vectors {
		tput, err := edgeGrainThroughput(v, cfg)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, EdgeGrainPoint{
			Grains:      append([]int(nil), v...),
			ItemsPerSec: tput,
			Chosen:      i == chosenIdx,
		})
	}
	return res, nil
}

// edgeGrainThroughput pushes Items through the two-stage identity
// pipeline armed with the given boundary vector and returns items/s.
func edgeGrainThroughput(grains []int, cfg EdgeGrainSweepConfig) (float64, error) {
	if len(grains) != 2 {
		return 0, fmt.Errorf("bench: edge grain vector %v must have 2 boundaries", grains)
	}
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(
		pipeline.Stage{Name: "a", Fn: ident, Replicas: 4, Buffer: 64},
		pipeline.Stage{Name: "b", Fn: ident, Replicas: 4, Buffer: 64},
	)
	if err != nil {
		return 0, err
	}
	if err := p.EnableBatchEdges(grains, cfg.Linger); err != nil {
		return 0, err
	}
	in := make(chan any, 256)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < cfg.Items; i++ {
			in <- nil
		}
		close(in)
	}()
	t0 := time.Now()
	count := 0
	for range out {
		count++
	}
	elapsed := time.Since(t0)
	if err := <-errs; err != nil {
		return 0, err
	}
	if count != cfg.Items {
		return 0, fmt.Errorf("bench: edge grains %v lost items (%d of %d)", grains, count, cfg.Items)
	}
	return float64(count) / elapsed.Seconds(), nil
}

func vecEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
