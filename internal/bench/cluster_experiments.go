package bench

import (
	"fmt"
	"sort"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/cluster"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{ID: "F12", Title: "Two tenants, staggered arrival: arbitrated adaptive vs static halves", Run: runF12})
	register(Experiment{ID: "F13", Title: "Open job stream: admission queue vs over-admission collapse", Run: runF13})
}

// clusterJob builds the F12/F13 job description.
func clusterJob(name string, app workload.App, arrival float64, items int) model.JobSpec {
	return model.JobSpec{
		Name:    name,
		Spec:    app.Spec,
		Arrival: arrival,
		Items:   items,
		CV:      app.CV,
	}
}

// F12: a genome job owns an 8-node grid, a longer image job arrives
// at t=15, and at t=40 a 90% background-load step hits node 0. Static
// halves pins each tenant to a fixed half of the grid for its whole
// life — the partitioning a cluster without an arbiter deploys.
// Arbitration gives the early tenant the full grid, shrinks it to a
// fair share when the second arrives, and folds freed nodes back as
// tenants finish; the adaptive variant additionally re-divides when a
// tenant's observed throughput degrades — here, steering leases off
// the loaded node. Makespan drops and the weighted max-min floor
// rises.
func runF12(seed uint64) (*Result, error) {
	const (
		items1  = 600
		items2  = 900
		arrive2 = 15.0
		spikeAt = 40.0
		level   = 0.9
	)
	type variant struct {
		name   string
		policy adaptive.Policy
		pinned bool
	}
	variants := []variant{
		{"static-halves", adaptive.PolicyStatic, true},
		{"arbitrated", adaptive.PolicyStatic, false},
		{"arbitrated-adaptive", adaptive.PolicyReactive, false},
	}

	res := &Result{ID: "F12", Title: "arbitrated adaptive vs static halves"}
	tb := stats.NewTable("F12 two tenants on 8 nodes (genome@0 ×600, image@15 ×900, spike on node0 at t=40)",
		"variant", "job", "admit", "finish", "makespan", "thr", "remaps")
	sum := stats.NewTable("F12 summary",
		"variant", "total makespan", "min weighted share", "Jain", "arbitrations")
	for _, v := range variants {
		g, err := spikeGrid(8, 0, spikeAt, level)
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(g, cluster.Config{Policy: v.policy, Seed: seed})
		if err != nil {
			return nil, err
		}
		j1 := clusterJob("genome", workload.Genome(), 0, items1)
		j2 := clusterJob("image", workload.Image(), arrive2, items2)
		if v.pinned {
			if _, err := c.SubmitPinned(j1, []grid.NodeID{0, 1, 2, 3}); err != nil {
				return nil, err
			}
			if _, err := c.SubmitPinned(j2, []grid.NodeID{4, 5, 6, 7}); err != nil {
				return nil, err
			}
		} else {
			if _, err := c.Submit(j1); err != nil {
				return nil, err
			}
			if _, err := c.Submit(j2); err != nil {
				return nil, err
			}
		}
		rep, err := c.Run()
		if err != nil {
			return nil, err
		}
		for _, jr := range rep.Jobs {
			tb.AddRowf(v.name, jr.Name, jr.Admitted, jr.Finished, jr.Makespan, jr.Throughput, jr.Remaps)
		}
		sum.AddRowf(v.name, rep.Makespan, rep.MinWeightedShare, rep.Jain, rep.Arbitrations)
		series := stats.NewSeries(v.name + "-makespan")
		for i, jr := range rep.Jobs {
			series.Append(float64(i), jr.Makespan)
		}
		res.Series = append(res.Series, series)
	}
	tb.AddNote("expected shape: arbitration lets each tenant use the whole grid while alone; static halves strand half the nodes")
	sum.AddNote("expected shape: arbitrated beats static halves on total makespan and on the weighted max-min floor")
	res.Tables = []*stats.Table{tb, sum}
	return res, nil
}

// F13: an open stream of ten genome jobs (one every 6 s, floor 2) hits
// a 4-node grid that fits two at a time. Queued admission holds
// arrivals until a lease frees, so admitted jobs run at near-nominal
// speed; over-admission starts everyone immediately on overlapping
// leases and proportional sharing stretches every job — the classic
// thrashing collapse admission control exists to prevent.
func runF13(seed uint64) (*Result, error) {
	const (
		jobs     = 10
		spacing  = 6.0
		items    = 150
		jobFloor = 2
	)
	type variant struct {
		name string
		mode cluster.Admission
	}
	variants := []variant{
		{"admission-queue", cluster.AdmitQueue},
		{"over-admission", cluster.AdmitAll},
	}

	res := &Result{ID: "F13", Title: "admission queue vs over-admission"}
	tb := stats.NewTable("F13 open stream on 4 nodes (10 genome jobs, one every 6 s, floor 2)",
		"variant", "done jobs", "mean wait", "mean makespan", "p95 makespan", "mean job thr", "last finish")
	for _, v := range variants {
		g, err := grid.Homogeneous(4, 1, grid.LANLink)
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(g, cluster.Config{Seed: seed, Admission: v.mode})
		if err != nil {
			return nil, err
		}
		for i := 0; i < jobs; i++ {
			js := clusterJob(fmt.Sprintf("job%d", i), workload.Genome(), float64(i)*spacing, items)
			js.FloorNodes = jobFloor
			if _, err := c.Submit(js); err != nil {
				return nil, err
			}
		}
		rep, err := c.Run()
		if err != nil {
			return nil, err
		}
		var waits, spans, finishes []float64
		doneJobs := 0
		for _, jr := range rep.Jobs {
			if jr.State != cluster.JobDone {
				continue
			}
			doneJobs++
			waits = append(waits, jr.Waited)
			spans = append(spans, jr.Makespan)
			finishes = append(finishes, jr.Finished)
		}
		// Jobs finish out of arrival order; the completion-count series
		// walks the sorted finish times.
		sort.Float64s(finishes)
		series := stats.NewSeries(v.name + "-finish")
		for i, f := range finishes {
			series.Append(f, float64(i+1))
		}
		res.Series = append(res.Series, series)
		// Sustained per-job throughput: items/s while resident — the
		// service rate an admitted tenant actually experiences.
		jobThr := float64(items) / stats.Mean(spans)
		tb.AddRowf(v.name, doneJobs, stats.Mean(waits), stats.Mean(spans),
			stats.Quantile(spans, 0.95), jobThr, rep.Makespan)
	}
	tb.AddNote("expected shape: admission control sustains near-nominal per-job throughput (jobs wait, then run fast); over-admission collapses it ~3× (every job resident, every node thrashed)")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
