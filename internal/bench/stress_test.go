package bench

import (
	"reflect"
	"strings"
	"testing"

	"gridpipe/internal/workload"
)

// smallRamp keeps stress tests fast: a short ramp over a small grid
// with modest horizons, sized so the later steps clearly saturate.
func smallRamp() StressConfig {
	return StressConfig{
		Nodes:       4,
		ItemsPerJob: 10,
		StartRPS:    2,
		StepRPS:     3,
		Steps:       5,
		Horizon:     120,
		Seed:        7,
	}
}

func TestStressRampShape(t *testing.T) {
	res, err := StressRamp(smallRamp())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("got %d steps", len(res.Steps))
	}
	for i, s := range res.Steps {
		if want := 2 + float64(i)*3; s.OfferedRPS != want {
			t.Errorf("step %d offered %v, want %v", i, s.OfferedRPS, want)
		}
		if s.Jobs <= 0 || s.Items != s.Jobs*10 {
			t.Errorf("step %d jobs=%d items=%d", i, s.Jobs, s.Items)
		}
		if s.AchievedRPS <= 0 || s.MakespanSec <= 0 {
			t.Errorf("step %d achieved=%v makespan=%v", i, s.AchievedRPS, s.MakespanSec)
		}
		// Open loop: achieved throughput can never exceed offered by
		// more than arrival noise, and never exceeds cluster capacity.
		if s.AchievedRPS > 1.5*s.OfferedRPS {
			t.Errorf("step %d achieved %v wildly above offered %v", i, s.AchievedRPS, s.OfferedRPS)
		}
	}
	// The 4-node genome cluster caps out near 9.5 items/s, so a ramp
	// to 14 offered must saturate: the last step cannot achieve its
	// offered load.
	last := res.Steps[len(res.Steps)-1]
	if last.AchievedRPS > 0.9*last.OfferedRPS {
		t.Errorf("ramp never saturated: last step achieved %v of %v offered", last.AchievedRPS, last.OfferedRPS)
	}
	if res.KneeIndex >= 0 && res.KneeRPS != res.Steps[res.KneeIndex].OfferedRPS {
		t.Errorf("KneeRPS %v does not match step %d offered %v", res.KneeRPS, res.KneeIndex, res.Steps[res.KneeIndex].OfferedRPS)
	}
}

func TestStressRampDeterministic(t *testing.T) {
	a, err := StressRamp(smallRamp())
	if err != nil {
		t.Fatal(err)
	}
	b, err := StressRamp(smallRamp())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed ramps differ")
	}
	cfg := smallRamp()
	cfg.Seed = 8
	c, err := StressRamp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical ramps")
	}
}

func TestStressRampValidation(t *testing.T) {
	cfg := smallRamp()
	cfg.App = "bogus"
	if _, err := StressRamp(cfg); err == nil {
		t.Error("unknown app accepted")
	}
	cfg = smallRamp()
	cfg.Process = "bogus"
	if _, err := StressRamp(cfg); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

func TestStressRampTraceReplay(t *testing.T) {
	// A recorded bursty trace: 12 jobs of 10 items over 40 s, native
	// load 3 items/s. Each step must replay exactly these jobs with
	// arrival times rescaled to the step's offered rate.
	var tr workload.Trace
	for i := 0; i < 12; i++ {
		// Three bursts of four back-to-back jobs.
		tr = append(tr, workload.TraceEvent{
			T:     float64(i/4)*18 + float64(i%4),
			App:   "genome",
			Items: 10,
		})
	}
	cfg := smallRamp()
	cfg.Trace = tr
	res, err := StressRamp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Process != "trace-replay" {
		t.Errorf("process %q, want trace-replay", res.Process)
	}
	if len(res.Steps) != cfg.Steps {
		t.Fatalf("got %d steps", len(res.Steps))
	}
	for i, s := range res.Steps {
		if s.Jobs != len(tr) || s.Items != tr.TotalItems() {
			t.Errorf("step %d replayed jobs=%d items=%d, want %d/%d",
				i, s.Jobs, s.Items, len(tr), tr.TotalItems())
		}
		if s.AchievedRPS <= 0 || s.MakespanSec <= 0 {
			t.Errorf("step %d achieved=%v makespan=%v", i, s.AchievedRPS, s.MakespanSec)
		}
	}
	// Replay is deterministic: no generation randomness at all.
	again, err := StressRamp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("trace replay is not deterministic")
	}

	cfg.Trace = workload.Trace{{T: 0, App: "genome", Items: 5}}
	if _, err := StressRamp(cfg); err == nil {
		t.Error("zero-span trace accepted")
	}
}

func TestStressTable(t *testing.T) {
	res, err := StressRamp(smallRamp())
	if err != nil {
		t.Fatal(err)
	}
	out := StressTable(res).String()
	if !strings.Contains(out, "offered") || !strings.Contains(out, "achieved") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	if res.KneeIndex >= 0 && !strings.Contains(out, "knee") {
		t.Fatalf("knee not marked:\n%s", out)
	}
}
