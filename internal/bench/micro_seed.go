package bench

// Reference implementations of the seed's hot-path designs, kept so
// the allocation claims in BENCH_*.json stay measurable in-tree
// forever rather than requiring a checkout of the old commit:
//
//   - seedCalendar is the seed's event calendar — container/heap over
//     *seedEvent, one heap allocation per Schedule plus interface
//     boxing on every push/pop;
//   - benchSeedReorderStage is the seed's replicated-stage boundary —
//     one spawned goroutine (and closure) per item and a map[int]any
//     pending buffer in the reorderer.
//
// They are benchmark references only; nothing outside the micro suite
// uses them.

import (
	"container/heap"
	"context"
	"sync"
	"testing"
	"time"
)

type seedEvent struct {
	time float64
	seq  uint64
	fn   func()
}

type seedHeap []*seedEvent

func (h seedHeap) Len() int { return len(h) }
func (h seedHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h seedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *seedHeap) Push(x any)   { *h = append(*h, x.(*seedEvent)) }
func (h *seedHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type seedCalendar struct {
	now   float64
	seq   uint64
	queue seedHeap
}

func (c *seedCalendar) schedule(delay float64, fn func()) {
	heap.Push(&c.queue, &seedEvent{time: c.now + delay, seq: c.seq, fn: fn})
	c.seq++
}

func (c *seedCalendar) step() bool {
	if len(c.queue) == 0 {
		return false
	}
	ev := heap.Pop(&c.queue).(*seedEvent)
	c.now = ev.time
	ev.fn()
	return true
}

func benchSeedCalendar(b *testing.B) {
	var cal seedCalendar
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			cal.schedule(float64(j&7), fn)
		}
		for cal.step() {
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

// seedLimiter is the seed pipeline's limiter verbatim: mutex + cond,
// Broadcast on every release.
type seedLimiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	inUse int
}

func (l *seedLimiter) acquire() {
	l.mu.Lock()
	for l.inUse >= l.limit {
		l.cond.Wait()
	}
	l.inUse++
	l.mu.Unlock()
}

func (l *seedLimiter) release() {
	l.mu.Lock()
	l.inUse--
	l.cond.Broadcast()
	l.mu.Unlock()
}

// seedMeter is the seed pipeline's mutex-guarded accumulator shape.
type seedMeter struct {
	mu  sync.Mutex
	n   int
	sum float64
	max float64
}

func (m *seedMeter) record(d time.Duration) {
	m.mu.Lock()
	s := d.Seconds()
	m.n++
	m.sum += s
	if s > m.max {
		m.max = s
	}
	m.mu.Unlock()
}

// benchSeedReorderStage replays the seed pipeline's runStage faithfully:
// a dispatcher that spawns one goroutine (and closure) per item under a
// broadcast-on-release limiter, a mutex meter, the hard-coded 16-slot
// done channel, and a reorderer draining a map[int]any pending buffer.
func benchSeedReorderStage(b *testing.B) {
	const replicas = 8
	ctx := context.Background()
	type seqItem struct {
		seq int
		v   any
	}
	in := make(chan seqItem, 256)
	out := make(chan seqItem, 64)
	done := make(chan seqItem, 16)
	lim := &seedLimiter{limit: replicas}
	lim.cond = sync.NewCond(&lim.mu)
	met := &seedMeter{}

	reordered := make(chan struct{})
	go func() { // reorderer, as seeded: map pending buffer
		defer close(reordered)
		pending := map[int]any{}
		next := 0
		for it := range done {
			pending[it.seq] = it.v
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- seqItem{next, v}:
					next++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	go func() { // dispatcher, as seeded: goroutine per item
		var workers sync.WaitGroup
		for {
			var it seqItem
			var ok bool
			select {
			case it, ok = <-in:
			case <-ctx.Done():
				ok = false
			}
			if !ok {
				break
			}
			lim.acquire()
			workers.Add(1)
			go func(it seqItem) {
				defer workers.Done()
				defer lim.release()
				t0 := time.Now()
				v := it.v // identity stage function
				met.record(time.Since(t0))
				select {
				case done <- seqItem{it.seq, v}:
				case <-ctx.Done():
				}
			}(it)
		}
		workers.Wait()
		close(done)
		<-reordered
		close(out)
	}()

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			in <- seqItem{seq: i}
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if count != b.N {
		b.Fatalf("lost items: %d of %d", count, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
}
