package bench

import (
	"fmt"
	"sync"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

// enginePool recycles simulation engines across experiment runs: a
// Reset engine keeps its event-slab capacity, so the thousands of runs
// behind a sweep re-enter allocation-free steady state immediately
// instead of re-growing a calendar each time.
var enginePool = sync.Pool{New: func() any { return new(sim.Engine) }}

// acquireEngine returns a zeroed engine (clock at 0, empty calendar)
// with whatever slab capacity its previous run grew.
func acquireEngine() *sim.Engine {
	e := enginePool.Get().(*sim.Engine)
	e.Reset()
	return e
}

// releaseEngine resets an engine and returns it to the pool. The Reset
// here (acquire resets again, harmlessly) drops the finished run's
// un-fired events — controller tickers, queued arrivals — whose
// callbacks would otherwise keep the whole executor reachable from
// the pool.
func releaseEngine(e *sim.Engine) {
	e.Reset()
	enginePool.Put(e)
}

// stepTrace is a zero load that jumps to level at t.
func stepTrace(t, level float64) trace.Trace {
	return trace.NewSteps(0, trace.StepChange{T: t, Load: level})
}

// rngFor returns a fresh deterministic generator for a seed.
func rngFor(seed uint64) *rng.Rand { return rng.New(seed) }

// runOutcome is what one policy run of a scenario produced.
type runOutcome struct {
	Policy   adaptive.Policy
	Done     int
	Makespan float64 // only for fixed-item runs
	Exec     *exec.Executor
	Ctrl     adaptive.Stats
	// Lost/Retries are the churn ledger (zero without a schedule).
	Lost    int
	Retries int
}

// runConfig describes one simulated pipeline run.
type runConfig struct {
	Grid     *grid.Grid
	App      workload.App
	Initial  model.Mapping
	Policy   adaptive.Policy
	Protocol exec.RemapProtocol
	Interval float64 // controller period (default 1)
	Seed     uint64
	// Exactly one of Items / Duration must be set.
	Items       int
	Duration    float64
	MaxInFlight int
	// Sampler overrides the app's per-item work sampler when non-nil.
	Sampler func(stage, seq int) float64
	// Churn is the optional node-lifecycle schedule replayed during the
	// run.
	Churn *grid.ChurnSchedule
	// MaxRetries is the per-item crash-retry budget (see exec.Options).
	MaxRetries int
}

// run executes the configuration and returns the outcome.
func run(c runConfig) (runOutcome, error) {
	if (c.Items > 0) == (c.Duration > 0) {
		return runOutcome{}, fmt.Errorf("bench: set exactly one of Items/Duration")
	}
	eng := acquireEngine()
	defer releaseEngine(eng)
	maxIF := c.MaxInFlight
	if maxIF <= 0 {
		maxIF = 4 * c.App.Spec.NumStages()
	}
	sampler := c.Sampler
	if sampler == nil {
		sampler = c.App.Sampler(c.Seed)
	}
	ex, err := exec.New(eng, c.Grid, c.App.Spec, c.Initial, exec.Options{
		MaxInFlight: maxIF,
		WorkSampler: sampler,
		Seed:        c.Seed,
		MaxRetries:  c.MaxRetries,
	})
	if err != nil {
		return runOutcome{}, err
	}
	if c.Churn != nil {
		if err := ex.InstallChurn(c.Churn); err != nil {
			return runOutcome{}, err
		}
	}
	ctrl, err := simadapt.New(eng, c.Grid, ex, c.App.Spec, simadapt.Config{
		Policy:   c.Policy,
		Interval: c.Interval,
		Protocol: c.Protocol,
		Searcher: sched.LocalSearch{Seed: c.Seed + 1},
	})
	if err != nil {
		return runOutcome{}, err
	}
	ctrl.Start()
	out := runOutcome{Policy: c.Policy, Exec: ex}
	if c.Items > 0 {
		ms, err := ex.RunItems(c.Items)
		if err != nil {
			return runOutcome{}, err
		}
		out.Makespan = ms
		out.Done = ex.Done()
	} else {
		out.Done = ex.RunUntil(c.Duration)
	}
	ctrl.Stop()
	out.Ctrl = ctrl.Stats()
	out.Lost = ex.Lost()
	out.Retries = ex.Retries()
	return out, nil
}

// initialMapping searches a good zero-load mapping: the placement a
// deployment-time scheduler would pick before any dynamism appears.
func initialMapping(g *grid.Grid, app workload.App, seed uint64) (model.Mapping, error) {
	m, _, err := (sched.LocalSearch{Seed: seed}).Search(g, app.Spec, nil)
	if err != nil {
		return model.Mapping{}, err
	}
	m, _, err = sched.ImproveWithReplication(g, app.Spec, m, nil, 0)
	return m, err
}

// spikeGrid builds an n-node homogeneous grid where the given node is
// hit by a background-load step of the given level at spikeAt.
func spikeGrid(n int, victim int, spikeAt, level float64) (*grid.Grid, error) {
	nodes := make([]*grid.Node, n)
	for i := range nodes {
		nodes[i] = &grid.Node{Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1}
	}
	if victim >= 0 && victim < n {
		nodes[victim].Load = stepTrace(spikeAt, level)
	}
	return grid.NewGrid(grid.LANLink, nodes...)
}

// mainPolicies is the policy set compared across the figures.
var mainPolicies = []adaptive.Policy{
	adaptive.PolicyStatic,
	adaptive.PolicyReactive,
	adaptive.PolicyPredictive,
	adaptive.PolicyOracle,
}
