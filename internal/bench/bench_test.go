package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "F1", "F10", "F11", "F12", "F13", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "T1", "T2", "T3", "T4", "T5"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("ZZ"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// runExp runs one experiment and does generic sanity checks.
func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id {
		t.Fatalf("result id %s, want %s", res.ID, id)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables produced")
	}
	out := res.String()
	if !strings.Contains(out, id) {
		t.Fatal("render does not mention the experiment id")
	}
	return res
}

// cell parses a float out of a table cell.
func cell(t *testing.T, tb interface{ Row(int) []string }, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Row(row)[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number", row, col, tb.Row(row)[col])
	}
	return v
}

func TestF1Shape(t *testing.T) {
	res := runExp(t, "F1")
	tb := res.Tables[0]
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Row 0 is static. After-spike throughput of every adaptive policy
	// must beat static's.
	staticAfter := cell(t, tb, 0, 3)
	for r := 1; r < 4; r++ {
		if after := cell(t, tb, r, 3); after <= staticAfter*1.2 {
			t.Errorf("%s after-spike %v not clearly above static %v", tb.Row(r)[0], after, staticAfter)
		}
		if remaps := cell(t, tb, r, 4); remaps < 1 {
			t.Errorf("%s never remapped", tb.Row(r)[0])
		}
	}
	if remaps := cell(t, tb, 0, 4); remaps != 0 {
		t.Error("static remapped")
	}
}

func TestF8Shape(t *testing.T) {
	res := runExp(t, "F8")
	tb := res.Tables[0]
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Rows: linear-static, linear-reactive, diamond-static,
	// diamond-reactive. Columns: topology, policy, done, before,
	// after, fill latency, remaps, migrated.
	linStatic, linReact, diaStatic, diaReact := 0, 1, 2, 3
	// Equal pre-spike throughput across topologies (equal total work).
	lb, db := cell(t, tb, linStatic, 3), cell(t, tb, diaStatic, 3)
	if lb <= 0 || db <= 0 || db < lb*0.9 || db > lb*1.1 {
		t.Errorf("pre-spike throughput: linear %v vs diamond %v, want equal", lb, db)
	}
	// The diamond's branches overlap: lower fill latency.
	if lf, df := cell(t, tb, linStatic, 5), cell(t, tb, diaStatic, 5); df >= lf {
		t.Errorf("fill latency: diamond %v not below linear %v", df, lf)
	}
	// The adaptive controller remaps the DAG and recovers the spike.
	for _, r := range []int{linReact, diaReact} {
		if remaps := cell(t, tb, r, 6); remaps < 1 {
			t.Errorf("row %d: reactive never remapped", r)
		}
		staticAfter := cell(t, tb, r-1, 4)
		if after := cell(t, tb, r, 4); after <= staticAfter*1.5 {
			t.Errorf("row %d: after-spike %v not clearly above static %v", r, after, staticAfter)
		}
	}
}

func TestF2Shape(t *testing.T) {
	res := runExp(t, "F2")
	tb := res.Tables[0]
	if tb.NumRows() != 7 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Speedup grows with Np then saturates ≤ stage count (+ slack for
	// load variance); adaptive ≥ static on the largest grid.
	lastStatic := cell(t, tb, tb.NumRows()-1, 3)
	lastAdaptive := cell(t, tb, tb.NumRows()-1, 4)
	if lastStatic > 8 {
		t.Errorf("static speedup %v exceeds plausible bound", lastStatic)
	}
	if lastAdaptive < lastStatic*0.9 {
		t.Errorf("adaptive speedup %v below static %v", lastAdaptive, lastStatic)
	}
	firstStatic := cell(t, tb, 0, 3)
	if firstStatic < 0.99 || firstStatic > 1.01 {
		t.Errorf("Np=1 static speedup = %v, want 1", firstStatic)
	}
}

func TestF3Shape(t *testing.T) {
	res := runExp(t, "F3")
	tb := res.Tables[0]
	// Zero spike: ratio ≈ 1. Largest spike: ratio clearly > 1.
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, tb.NumRows()-1, 3)
	if first < 0.9 || first > 1.1 {
		t.Errorf("no-spike benefit ratio = %v, want ~1", first)
	}
	if last < 1.3 {
		t.Errorf("max-spike benefit ratio = %v, want > 1.3", last)
	}
}

func TestF4Shape(t *testing.T) {
	res := runExp(t, "F4")
	tb := res.Tables[0]
	// Speedup at k=3 should be near 3 (align dominates), and the
	// model's relative error should be modest everywhere.
	if sp := cell(t, tb, 2, 4); sp < 2.2 {
		t.Errorf("3-replica speedup = %v, want ~3", sp)
	}
	for r := 0; r < tb.NumRows(); r++ {
		if re := cell(t, tb, r, 3); re > 0.35 {
			t.Errorf("row %d rel err %v too large", r, re)
		}
	}
	// Saturation: last speedup close to previous (diminishing returns).
	k5 := cell(t, tb, 4, 4)
	k6 := cell(t, tb, 5, 4)
	if k6 > k5*1.25 {
		t.Errorf("no saturation: k5=%v k6=%v", k5, k6)
	}
}

func TestF5Shape(t *testing.T) {
	res := runExp(t, "F5")
	tb := res.Tables[0]
	// Benefit should never be clearly below 1, and the heterogeneous
	// end must clearly beat the homogeneous end (a blind mapping wastes
	// more of the fast nodes as the ratio grows).
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, tb.NumRows()-1, 3)
	if first < 0.85 {
		t.Errorf("homogeneous benefit = %v, adaptation hurt", first)
	}
	if last < first {
		t.Errorf("benefit did not grow with heterogeneity: %v -> %v", first, last)
	}
	if last < 1.5 {
		t.Errorf("benefit at ratio 16 = %v, want > 1.5", last)
	}
}

func TestF6Shape(t *testing.T) {
	res := runExp(t, "F6")
	tb := res.Tables[0]
	for r := 0; r < tb.NumRows(); r++ {
		if eff := cell(t, tb, r, 3); eff < 0.7 || eff > 1.05 {
			t.Errorf("row %d efficiency %v outside [0.7, 1.05]", r, eff)
		}
	}
	// Fill latency grows with stage count.
	if l0, l4 := cell(t, tb, 0, 4), cell(t, tb, tb.NumRows()-1, 4); l4 <= l0 {
		t.Errorf("fill latency did not grow: %v -> %v", l0, l4)
	}
}

func TestT1Shape(t *testing.T) {
	res := runExp(t, "T1")
	tb := res.Tables[0]
	vals := map[string]string{}
	for r := 0; r < tb.NumRows(); r++ {
		vals[tb.Row(r)[0]] = tb.Row(r)[1]
	}
	if vals["redone work (ref-s)"] != "0" {
		t.Errorf("drain-safe redone work = %s, want 0", vals["redone work (ref-s)"])
	}
	det, err := strconv.ParseFloat(vals["detection latency (s)"], 64)
	if err != nil || det < 0 || det > 30 {
		t.Errorf("detection latency = %s, want small positive", vals["detection latency (s)"])
	}
}

func TestT2Shape(t *testing.T) {
	res := runExp(t, "T2")
	if len(res.Tables) != 2 {
		t.Fatalf("T2 should have main + CTMC tables")
	}
	tb := res.Tables[0]
	agree := 0
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Row(r)[3] == "true" {
			agree++
		}
		if re := cell(t, tb, r, 6); re > 0.15 {
			t.Errorf("row %d model rel err %v > 15%%", r, re)
		}
	}
	if agree < tb.NumRows()-1 {
		t.Errorf("model agreed on only %d of %d sets", agree, tb.NumRows())
	}
	ct := res.Tables[1]
	for r := 0; r < ct.NumRows(); r++ {
		exact := cell(t, ct, r, 2)
		bound := cell(t, ct, r, 3)
		simv := cell(t, ct, r, 4)
		if exact > bound+1e-9 {
			t.Errorf("CTMC row %d: exact %v exceeds analytic bound %v", r, exact, bound)
		}
		if ratio := simv / exact; ratio < 0.8 || ratio > 1.25 {
			t.Errorf("CTMC row %d: sim/CTMC = %v, want ≈1", r, ratio)
		}
	}
}

func TestT3Shape(t *testing.T) {
	res := runExp(t, "T3")
	tb := res.Tables[0]
	if tb.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7 forecasters", tb.NumRows())
	}
	// NWS property: the adaptive row is within 3× of the column best
	// for every signal class.
	adaptiveRow := -1
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Row(r)[0] == "adaptive" {
			adaptiveRow = r
		}
	}
	if adaptiveRow < 0 {
		t.Fatal("no adaptive row")
	}
	for col := 1; col <= 6; col++ {
		best := cell(t, tb, 0, col)
		for r := 1; r < tb.NumRows(); r++ {
			if v := cell(t, tb, r, col); v < best {
				best = v
			}
		}
		if v := cell(t, tb, adaptiveRow, col); v > 3*best+1e-3 {
			t.Errorf("column %d: adaptive MSE %v vs best %v", col, v, best)
		}
	}
}

func TestT4Shape(t *testing.T) {
	res := runExp(t, "T4")
	tb := res.Tables[0]
	if tb.NumRows() < 12 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		q := cell(t, tb, r, 3)
		if q <= 0 || q > 1.0001 {
			t.Errorf("row %d quality %v outside (0, 1]", r, q)
		}
		// Local search should always be within 10% of the best found.
		if tb.Row(r)[2] == "local-search" && q < 0.9 {
			t.Errorf("local search quality %v < 0.9", q)
		}
		// Exhaustive is exact by construction.
		if tb.Row(r)[2] == "exhaustive" && q < 0.9999 {
			t.Errorf("exhaustive quality %v != 1", q)
		}
	}
}

func TestA1Shape(t *testing.T) {
	res := runExp(t, "A1")
	tb := res.Tables[0]
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var periodicSearches, reactiveSearches float64
	for r := 0; r < tb.NumRows(); r++ {
		switch tb.Row(r)[0] {
		case "periodic":
			periodicSearches = cell(t, tb, r, 2)
		case "reactive":
			reactiveSearches = cell(t, tb, r, 2)
		}
		if done := cell(t, tb, r, 1); done <= 0 {
			t.Errorf("%s did no work", tb.Row(r)[0])
		}
	}
	if reactiveSearches >= periodicSearches {
		t.Errorf("reactive searched %v times vs periodic %v — trigger not selective",
			reactiveSearches, periodicSearches)
	}
}

func TestA2Shape(t *testing.T) {
	res := runExp(t, "A2")
	tb := res.Tables[0]
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Row(0)[0] != "drain-safe" || tb.Row(1)[0] != "kill-restart" {
		t.Fatalf("unexpected protocol rows: %v %v", tb.Row(0)[0], tb.Row(1)[0])
	}
	if redone := cell(t, tb, 0, 4); redone != 0 {
		t.Errorf("drain-safe redone = %v", redone)
	}
	drainDone := cell(t, tb, 0, 1)
	killDone := cell(t, tb, 1, 1)
	if killDone > drainDone*1.05 {
		t.Errorf("kill-restart (%v) should not beat drain-safe (%v)", killDone, drainDone)
	}
}

func TestF7Shape(t *testing.T) {
	res := runExp(t, "F7")
	tb := res.Tables[0]
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	staticDuring := cell(t, tb, 0, 2)
	if staticDuring > 0.5 {
		t.Errorf("static throughput during outage = %v, should collapse", staticDuring)
	}
	for r := 1; r < 4; r++ {
		during := cell(t, tb, r, 2)
		if during < 10*staticDuring {
			t.Errorf("%s during-outage throughput %v not clearly above static %v",
				tb.Row(r)[0], during, staticDuring)
		}
		if remaps := cell(t, tb, r, 4); remaps < 1 {
			t.Errorf("%s never evacuated", tb.Row(r)[0])
		}
	}
}

func TestT5Shape(t *testing.T) {
	res := runExp(t, "T5")
	tb := res.Tables[0]
	if tb.NumRows() != 6 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		cv := cell(t, tb, r, 0)
		pred := cell(t, tb, r, 3)
		meas := cell(t, tb, r, 4)
		relErr := cell(t, tb, r, 5)
		if cv == 1 && relErr > 0.1 {
			t.Errorf("row %d: M/M/1 rel err %v > 10%%", r, relErr)
		}
		if cv == 0 && meas > pred*1.05 {
			t.Errorf("row %d: M/D/1 prediction %v is not an upper bound of %v", r, pred, meas)
		}
	}
	// Latency grows with rho in both regimes.
	if cell(t, tb, 2, 4) <= cell(t, tb, 0, 4) {
		t.Error("cv=0 measured latency did not grow with rho")
	}
	if cell(t, tb, 5, 4) <= cell(t, tb, 3, 4) {
		t.Error("cv=1 measured latency did not grow with rho")
	}
}

func TestA3Shape(t *testing.T) {
	res := runExp(t, "A3")
	tb := res.Tables[0]
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Remaps fall monotonically with gain.
	prev := cell(t, tb, 0, 2)
	for r := 1; r < tb.NumRows(); r++ {
		cur := cell(t, tb, r, 2)
		if cur >= prev {
			t.Errorf("remaps did not fall with gain: %v -> %v", prev, cur)
		}
		prev = cur
	}
	// The default gain (1.15) must not lose to zero hysteresis.
	if cell(t, tb, 1, 1) < cell(t, tb, 0, 1)*0.98 {
		t.Errorf("default hysteresis (%v done) clearly worse than churning (%v done)",
			cell(t, tb, 1, 1), cell(t, tb, 0, 1))
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"F3", "T3"} {
		e, _ := ByID(id)
		a, err := e.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic for fixed seed", id)
		}
	}
}
