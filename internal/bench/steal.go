package bench

// StealProfile: the work-stealing executor's handoff accounting for
// one live pipeline run. A fresh executor (so counters start at zero)
// backs the same 8-replica identity boundary the
// pipeline/reorder_stage micro measures; the returned Stats expose
// how tasks reached workers — local pops vs global grabs vs steals —
// which pipebench folds into the BENCH_*.json `steal` section and the
// DESIGN.md handoff post-mortem cites as handoffs-per-item.

import (
	"context"
	"fmt"
	"runtime"

	"gridpipe/internal/conc/steal"
	"gridpipe/internal/pipeline"
)

// StealProfileResult is one profiled run's outcome.
type StealProfileResult struct {
	Items int         `json:"items"`
	Stats steal.Stats `json:"-"`

	// Per-item handoff ratios, the numbers the post-mortem tracks.
	InjectsPerItem float64 `json:"injects_per_item"`
	PopsPerItem    float64 `json:"pops_per_item"`
	GrabbedPerItem float64 `json:"grabbed_per_item"`
	StealsPerItem  float64 `json:"steals_per_item"`
	ParksPerItem   float64 `json:"parks_per_item"`
}

// StealProfile pushes items through an 8-replica identity stage backed
// by a dedicated executor and returns the executor's counter profile.
func StealProfile(items int) (*StealProfileResult, error) {
	if items <= 0 {
		items = 200_000
	}
	ex := steal.New(runtime.GOMAXPROCS(0))
	defer ex.Close()
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(pipeline.Stage{Name: "r", Fn: ident, Replicas: 8, Buffer: 64})
	if err != nil {
		return nil, err
	}
	p.UseExecutor(ex)
	in := make(chan any, 256)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < items; i++ {
			in <- nil
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		return nil, err
	}
	if count != items {
		return nil, fmt.Errorf("bench: steal profile lost items (%d of %d)", count, items)
	}
	st := ex.Stats()
	n := float64(items)
	return &StealProfileResult{
		Items:          items,
		Stats:          st,
		InjectsPerItem: float64(st.Injects) / n,
		PopsPerItem:    float64(st.Pops) / n,
		GrabbedPerItem: float64(st.Grabbed) / n,
		StealsPerItem:  float64(st.Steals) / n,
		ParksPerItem:   float64(st.Parks) / n,
	}, nil
}
