package bench

import "testing"

// TestF12ArbitrationBeatsStaticHalves pins the experiment's acceptance
// criteria: arbitrated adaptive beats the static-halves partition on
// both total makespan and the weighted max-min fairness floor.
func TestF12ArbitrationBeatsStaticHalves(t *testing.T) {
	res, err := runF12(42)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Tables[1]
	if sum.NumRows() != 3 {
		t.Fatalf("F12 summary rows = %d, want 3", sum.NumRows())
	}
	makespan := tableCol(t, sum, 1)
	minShare := tableCol(t, sum, 2)
	if cellFloat(t, makespan["arbitrated-adaptive"]) >= cellFloat(t, makespan["static-halves"]) {
		t.Fatalf("arbitrated adaptive makespan %s not below static halves %s",
			makespan["arbitrated-adaptive"], makespan["static-halves"])
	}
	if cellFloat(t, minShare["arbitrated-adaptive"]) <= cellFloat(t, minShare["static-halves"]) {
		t.Fatalf("arbitrated adaptive max-min floor %s not above static halves %s",
			minShare["arbitrated-adaptive"], minShare["static-halves"])
	}
	// Plain arbitration (arrival/finish re-division, no adaptive loop)
	// must already beat the static partition on makespan.
	if cellFloat(t, makespan["arbitrated"]) >= cellFloat(t, makespan["static-halves"]) {
		t.Fatalf("arbitrated makespan %s not below static halves %s",
			makespan["arbitrated"], makespan["static-halves"])
	}
}

// TestF13AdmissionSustainsService pins the collapse: over-admission
// must stretch mean job makespan well beyond the queued-admission
// run's, and the queue must still finish every job.
func TestF13AdmissionSustainsService(t *testing.T) {
	res, err := runF13(42)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	done := tableCol(t, tb, 1)
	span := tableCol(t, tb, 3)
	jobThr := tableCol(t, tb, 5)
	if cellFloat(t, done["admission-queue"]) != 10 || cellFloat(t, done["over-admission"]) != 10 {
		t.Fatalf("both variants must finish all 10 jobs, got %s/%s",
			done["admission-queue"], done["over-admission"])
	}
	if cellFloat(t, span["over-admission"]) < 2*cellFloat(t, span["admission-queue"]) {
		t.Fatalf("over-admission mean makespan %s not ≥2× the queued %s (no collapse?)",
			span["over-admission"], span["admission-queue"])
	}
	if cellFloat(t, jobThr["admission-queue"]) < 2*cellFloat(t, jobThr["over-admission"]) {
		t.Fatalf("queued per-job throughput %s not ≥2× over-admitted %s",
			jobThr["admission-queue"], jobThr["over-admission"])
	}
}
