package bench

// Scheduler hot-path micro-benchmarks (PR 7): the pruned exhaustive
// search through a persistent sched.Scratch, and the incremental
// cluster arbitration round through a warm cluster.Divider memo. Both
// run under the -maxallocs 0 gate: a steady-state search or division
// round performs zero allocations.

import (
	"fmt"
	"testing"

	"gridpipe/internal/cluster"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
)

// schedBenchConfig builds the T4 validation configuration the search
// benchmarks and the pruning telemetry share: ns random-work stages
// (0.05 + 0.3·U) moving 100 kB items over a 4-node heterogeneous
// campus grid (speeds 0.5 + 3·U), seed-fixed.
func schedBenchConfig(seed uint64, ns, np int) (*grid.Grid, model.PipelineSpec, error) {
	r := rng.New(seed)
	stages := make([]model.StageSpec, ns)
	for i := range stages {
		stages[i] = model.StageSpec{
			Name: fmt.Sprintf("s%d", i), Work: 0.05 + 0.3*r.Float64(),
			OutBytes: 1e5, Replicable: false,
		}
	}
	spec := model.PipelineSpec{Stages: stages, InBytes: 1e5}
	speeds := make([]float64, np)
	for i := range speeds {
		speeds[i] = 0.5 + 3*r.Float64()
	}
	g, err := grid.Heterogeneous(speeds, grid.CampusLink)
	if err != nil {
		return nil, model.PipelineSpec{}, err
	}
	return g, spec, nil
}

// benchSchedSearch runs the branch-and-bound exhaustive search over
// the T4 8-stage × 4-node configuration through one persistent
// scratch: the scheduler's hottest path, 0 allocs/op once warm.
func benchSchedSearch(b *testing.B) {
	g, spec, err := schedBenchConfig(42, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	var ctr sched.SearchCounters
	var s sched.Searcher = sched.Exhaustive{Counters: &ctr}
	sc := sched.NewScratch()
	// Warm-up: first search grows the scratch buffers.
	if _, _, err := sched.SearchWith(sc, s, g, spec, nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.SearchWith(sc, s, g, spec, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if ctr.Evaluated > 0 {
		// Candidates rated per second and the share the bound pruned:
		// the search's two cost axes.
		b.ReportMetric(float64(ctr.Evaluated)/b.Elapsed().Seconds(), "items/s")
		b.ReportMetric(ctr.PruneRatio(), "prune-ratio")
	}
}

// benchClusterArbitrate runs a steady-state incremental arbitration
// round: three tenants whose leases, loads and upstream reservations
// are unchanged, so every per-tenant search replays from the memo —
// the cluster's per-tick cost when nothing moved, 0 allocs/op.
func benchClusterArbitrate(b *testing.B) {
	g, spec, err := schedBenchConfig(42, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	d := cluster.NewDivider(g, 0)
	tenants := make([]cluster.DividerTenant, 3)
	for i := range tenants {
		tenants[i] = cluster.DividerTenant{
			ID:       i,
			Name:     fmt.Sprintf("job%d", i),
			Tenant:   cluster.Tenant{Weight: 1, Floor: 1},
			Spec:     spec,
			Searcher: sched.LocalSearch{Seed: rng.SeedFor(42, uint64(i))},
		}
	}
	out := make([]cluster.Placement, len(tenants))
	// Warm-up round populates the memo; steady rounds replay it.
	if err := d.Round(nil, tenants, nil, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Round(nil, tenants, nil, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(tenants))/b.Elapsed().Seconds(), "items/s")
	st := d.Stats()
	if st.Searches > len(tenants) {
		b.Fatalf("steady-state rounds re-searched: %d searches for %d tenants", st.Searches, len(tenants))
	}
}

// SchedSearchStats is the BENCH_*.json "sched" section: the pruning
// telemetry of one branch-and-bound exhaustive search on the T4
// validation configuration. Candidates is what an unpruned enumeration
// would rate (the "before"), Evaluated what the bound let through (the
// "after").
type SchedSearchStats struct {
	Config     string  `json:"config"`
	Candidates uint64  `json:"candidates"`
	Evaluated  uint64  `json:"evaluated"`
	PruneRatio float64 `json:"prune_ratio"`
}

// SchedSearchTelemetry runs one pruned exhaustive search on the T4
// 8-stage × 4-node configuration and reports its candidate counts.
func SchedSearchTelemetry() (SchedSearchStats, error) {
	g, spec, err := schedBenchConfig(42, 8, 4)
	if err != nil {
		return SchedSearchStats{}, err
	}
	var ctr sched.SearchCounters
	sc := sched.NewScratch()
	if _, _, err := sched.SearchWith(sc, sched.Exhaustive{Counters: &ctr}, g, spec, nil, nil); err != nil {
		return SchedSearchStats{}, err
	}
	return SchedSearchStats{
		Config:     "T4 validation: 8 stages x 4 nodes, heterogeneous campus grid",
		Candidates: ctr.Candidates,
		Evaluated:  ctr.Evaluated,
		PruneRatio: ctr.PruneRatio(),
	}, nil
}
