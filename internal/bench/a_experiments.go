package bench

import (
	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{ID: "A1", Title: "Ablation: trigger policy (periodic vs reactive vs predictive)", Run: runA1})
	register(Experiment{ID: "A2", Title: "Ablation: reconfiguration protocol (drain-safe vs kill-restart)", Run: runA2})
}

// A1: the F1 spike scenario under every trigger policy, reporting
// throughput alongside controller churn (searches and remaps). The
// interesting trade-off: periodic matches reactive on throughput but
// burns a search every tick; predictive may act earlier.
func runA1(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		spikeAt = 60.0
		level   = 0.85
	)
	app := workload.Image()
	idle, err := spikeGrid(6, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[1][0])

	res := &Result{ID: "A1", Title: "trigger policy ablation"}
	tb := stats.NewTable("A1 trigger policies on the F1 spike scenario",
		"policy", "done", "searches", "remaps", "searches/tick", "first remap after spike (s)")
	policies := []adaptive.Policy{
		adaptive.PolicyPeriodic,
		adaptive.PolicyReactive,
		adaptive.PolicyPredictive,
	}
	for _, p := range policies {
		g, err := spikeGrid(6, victim, spikeAt, level)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{Grid: g, App: app, Initial: m0,
			Policy: p, Interval: 1, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		st := out.Ctrl
		first := -1.0
		for _, ev := range st.Events {
			if ev.Time >= spikeAt {
				first = ev.Time - spikeAt
				break
			}
		}
		perTick := 0.0
		if st.Ticks > 0 {
			perTick = float64(st.Searches) / float64(st.Ticks)
		}
		tb.AddRowf(p.String(), out.Done, st.Searches, st.Remaps, perTick, first)
	}
	tb.AddNote("expected shape: similar throughput; reactive/predictive search far less often than periodic")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// A2: same scenario with chunky service times so items are in service
// at remap time; drain-safe vs kill-restart reconfiguration.
func runA2(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		spikeAt = 60.0
		level   = 0.85
	)
	// Chunky: 1-second stages make the kill penalty visible.
	app := workload.Balanced(3, 1.0, 1e5)
	idle, err := spikeGrid(4, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[0][0])

	res := &Result{ID: "A2", Title: "remap protocol ablation"}
	tb := stats.NewTable("A2 reconfiguration protocols (3×1.0s stages, spike at t=60)",
		"protocol", "done", "remaps", "migrated", "killed+redone (ref-s)")
	for _, proto := range []exec.RemapProtocol{exec.DrainSafe, exec.KillRestart} {
		g, err := spikeGrid(4, victim, spikeAt, level)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{Grid: g, App: app, Initial: m0,
			Policy: adaptive.PolicyReactive, Protocol: proto,
			Interval: 1, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		tb.AddRowf(proto.String(), out.Done, out.Ctrl.Remaps,
			out.Exec.Migrations(), out.Exec.RedoneWork())
	}
	tb.AddNote("expected shape: drain-safe redoes nothing; kill-restart discards in-service work for no throughput gain here")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
