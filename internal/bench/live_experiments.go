package bench

import (
	"fmt"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{
		ID:        "F11",
		Title:     "Live adaptivity under injected background load: worker rebalancing on the goroutine runtime",
		Run:       runF11,
		WallClock: true,
	})
}

// runF11 closes the paper's loop on the live substrate: the genome
// pipeline executes as real goroutines, background load lands on the
// align stage's backing resource one third into the stream (service
// ×2.5), and each policy's wall-clock controller reacts — or, for the
// static baseline, does not. The table splits throughput at the
// injection point, so the recovery each policy bought over static is
// read straight off the "thr under load" column.
//
// Unlike F1–F10 this experiment measures real time on the machine
// running it: its numbers vary between runs and hosts (the seed only
// labels the run), though the ordering static < adaptive is robust —
// the adaptive policies fold the reserve half of the worker budget in,
// the static baseline cannot.
func runF11(seed uint64) (*Result, error) {
	return runF11Sized(1500)
}

// runF11Sized is runF11 with a configurable stream length, so the test
// suite can run the full scenario at a faster grain.
func runF11Sized(items int) (*Result, error) {
	app := workload.Genome()
	policies := []adaptive.Policy{
		adaptive.PolicyStatic,
		adaptive.PolicyReactive,
		adaptive.PolicyPredictive,
	}

	res := &Result{ID: "F11", Title: "live adaptivity under injected background load"}
	tb := stats.NewTable("F11 live goroutine pipeline, load 0.60 on align's resource at 1/3 of the stream (16-worker budget, half deployed)",
		"policy", "items", "thr before", "thr under load", "recovery vs static", "resizes", "final workers")

	var staticUnder float64
	for _, pol := range policies {
		out, err := workload.RunLive(app, workload.LiveOptions{
			Policy:       pol,
			Items:        items,
			SpikeLoad:    0.6,
			Victim:       workload.Auto,
			InjectAtItem: workload.Auto,
		})
		if err != nil {
			return nil, err
		}
		if pol == adaptive.PolicyStatic {
			staticUnder = out.ThroughputUnder
		}
		recovery := "-"
		if pol != adaptive.PolicyStatic && staticUnder > 0 {
			recovery = fmt.Sprintf("%.2f", out.ThroughputUnder/staticUnder)
		}
		tb.AddRowf(pol.String(), out.Items, out.ThroughputBefore, out.ThroughputUnder,
			recovery, len(out.Events), fmt.Sprintf("%v", out.Replicas))
	}
	tb.AddNote("wall-clock measurement on this machine: values vary between runs; expected shape: equal before the injection, adaptive recovers a large fraction of the lost throughput, static cannot")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
