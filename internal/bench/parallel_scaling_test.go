package bench

import (
	"runtime"
	"testing"
)

// TestParallelScalingDigests runs a trimmed sweep and leans on
// ParallelScaling's built-in cross-check: every point's completion
// digest must equal the single-partition golden or the sweep errors.
func TestParallelScalingDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep of a 10k-node workload")
	}
	points, err := ParallelScaling(7, []int{1, 2, 4, 16}, []int{1, runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || points[0].Parts != 1 || points[0].Procs != 1 {
		t.Fatalf("golden point missing or misplaced: %+v", points)
	}
	want := points[0].Events
	for _, p := range points {
		if p.Events != want {
			t.Fatalf("parts=%d procs=%d fired %d events, golden fired %d",
				p.Parts, p.Procs, p.Events, want)
		}
		if p.EventsPerSec <= 0 || p.WallSeconds <= 0 {
			t.Fatalf("degenerate measurement: %+v", p)
		}
	}
}

// TestPartitionWindowMicroAllocs pins the 0-alloc contract of the
// window-protocol hot path outside the pipebench gate.
func TestPartitionWindowMicroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run")
	}
	r := testing.Benchmark(benchPartitionWindow)
	if a := r.AllocsPerOp(); a > 0 {
		t.Fatalf("engine/partition_window allocates %d allocs/op, want 0", a)
	}
}
