package bench

import (
	"testing"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/workload"
)

func TestRunConfigValidation(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Balanced(2, 0.1, 0)
	base := runConfig{Grid: g, App: app, Initial: model.OneToOne(2), Policy: adaptive.PolicyStatic}

	both := base
	both.Items = 10
	both.Duration = 10
	if _, err := run(both); err == nil {
		t.Fatal("both Items and Duration accepted")
	}
	neither := base
	if _, err := run(neither); err == nil {
		t.Fatal("neither Items nor Duration rejected")
	}
}

func TestRunProducesOutcome(t *testing.T) {
	g, err := grid.Homogeneous(2, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Balanced(2, 0.1, 0)
	out, err := run(runConfig{
		Grid: g, App: app, Initial: model.OneToOne(2),
		Policy: adaptive.PolicyStatic, Items: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Done != 50 || out.Makespan <= 0 || out.Exec == nil {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestInitialMappingIsValid(t *testing.T) {
	g, err := grid.Heterogeneous([]float64{1, 2, 4}, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Genome()
	m, err := initialMapping(g, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(app.Spec.NumStages(), g.NumNodes()); err != nil {
		t.Fatal(err)
	}
}

func TestSpikeGridShape(t *testing.T) {
	g, err := spikeGrid(4, 2, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	victim := g.Node(2)
	if victim.Load == nil || victim.Load.At(5) != 0 || victim.Load.At(15) != 0.8 {
		t.Fatal("spike trace wrong")
	}
	if g.Node(0).Load != nil {
		t.Fatal("non-victim has load")
	}
	// Out-of-range victim means no spike anywhere.
	g2, err := spikeGrid(3, -1, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g2.Nodes() {
		if n.Load != nil {
			t.Fatal("victim -1 should mean idle grid")
		}
	}
}

func TestStepTrace(t *testing.T) {
	tr := stepTrace(5, 0.7)
	if tr.At(4.9) != 0 || tr.At(5) != 0.7 {
		t.Fatal("stepTrace wrong")
	}
}
