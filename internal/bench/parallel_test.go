package bench

import (
	"strings"
	"testing"
)

// A parallel sweep must produce cell-identical tables to a sequential
// one: every experiment's randomness hangs off the seed argument
// only. Wall-clock columns (T4's search cost) are the single
// exception — they measure real time and differ even between two
// sequential runs — so the comparison masks them by header.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep ×2")
	}
	seq := RunAll(42, 1)
	par := RunAll(42, 4)
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		id := seq[i].Experiment.ID
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: seq err %v, par err %v", id, seq[i].Err, par[i].Err)
		}
		if par[i].Experiment.ID != id {
			t.Fatalf("order diverged at %d: %s vs %s", i, id, par[i].Experiment.ID)
		}
		sres, pres := seq[i].Result, par[i].Result
		if len(sres.Tables) != len(pres.Tables) || len(sres.Series) != len(pres.Series) {
			t.Fatalf("%s: table/series counts differ", id)
		}
		if seq[i].Experiment.WallClock {
			continue // real-time measurement; cells legitimately differ
		}
		for ti, st := range sres.Tables {
			pt := pres.Tables[ti]
			if st.NumRows() != pt.NumRows() {
				t.Fatalf("%s table %d: row counts differ", id, ti)
			}
			headers := st.Headers()
			for r := 0; r < st.NumRows(); r++ {
				srow, prow := st.Row(r), pt.Row(r)
				for c := range srow {
					if c < len(headers) && strings.Contains(headers[c], "(ms)") {
						continue // wall-clock cell
					}
					if srow[c] != prow[c] {
						t.Errorf("%s table %d cell (%d,%d): sequential %q vs parallel %q",
							id, ti, r, c, srow[c], prow[c])
					}
				}
			}
		}
		for si, ss := range sres.Series {
			ps := pres.Series[si]
			if ss.CSV() != ps.CSV() {
				t.Errorf("%s series %q diverged between sequential and parallel runs", id, ss.Name)
			}
		}
	}
}
