package bench

import (
	"fmt"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/grid"
	"gridpipe/internal/sched"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{ID: "F9", Title: "Node crash and recovery (true churn): fault-aware adaptive vs static", Run: runF9})
	register(Experiment{ID: "F10", Title: "Elastic join under rising load: new nodes folded into the mapping", Run: runF10})
}

// churnPolicies are the contenders of the churn experiments: the inert
// baseline against the fault-aware adaptive policies.
var churnPolicies = []adaptive.Policy{
	adaptive.PolicyStatic,
	adaptive.PolicyReactive,
	adaptive.PolicyPredictive,
}

// F9: true node failure. Unlike F7 (which only saturates a node's
// background load), the node hosting a pipeline stage actually goes
// Down during [60, 150): its in-flight work is lost and re-dispatched
// from the last stage boundary, and work bound for it must be rerouted
// or parked. The static mapping backs up behind the dead node until
// the rejoin; the fault-aware policies remap at the crash instant
// (bypassing hysteresis) and fold the node back in after its rejoin.
// This is the first experiment where correctness under loss — the
// completed/lost ledger — is measured alongside throughput.
func runF9(seed uint64) (*Result, error) {
	const (
		horizon  = 210.0
		crashAt  = 60.0
		rejoinAt = 150.0
		window   = 5.0
	)
	app := workload.Balanced(4, 0.15, 1e5)

	// Deployment-time mapping on an idle copy of the grid; the crash
	// then hits the node hosting the entry stage's first replica.
	idle, err := spikeGrid(6, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[0][0])
	churn, err := grid.NewChurnSchedule(grid.Outage(fmt.Sprintf("node%d", victim), crashAt, rejoinAt)...)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "F9", Title: "node crash and recovery (true churn)"}
	tb := stats.NewTable(fmt.Sprintf("F9 crash of node%d during [%.0f,%.0f) — 6 idle nodes, 4 balanced stages", victim, crashAt, rejoinAt),
		"policy", "done", "lost", "retries", "remaps", "fault remaps", "availability")
	for _, p := range churnPolicies {
		g, err := spikeGrid(6, -1, 0, 0)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{
			Grid: g, App: app, Initial: m0, Policy: p,
			Interval: 1, Seed: seed, Duration: horizon, Churn: churn,
		})
		if err != nil {
			return nil, err
		}
		series := stats.WindowRate(out.Exec.Monitor().Completions(), 0, horizon, window)
		series.Name = p.String()
		res.Series = append(res.Series, series)
		tb.AddRowf(p.String(), out.Done, out.Lost, out.Retries,
			out.Ctrl.Remaps, out.Ctrl.FaultRemaps, churn.MeanAvailability(g, horizon))
	}
	tb.AddNote("expected shape: fault-aware policies evacuate at the crash instant and complete ≥ the static mapping's items; static parks work behind the dead node until the rejoin")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// F10: elastic capacity. Two reserve nodes are declared in the grid
// but join only at t=60 and t=90, while the four founding nodes sink
// under a rising background-load ramp. The static mapping is stuck
// with the founders; the adaptive policies fold each new node into
// their next mapping search the moment it joins.
func runF10(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		join1   = 60.0
		join2   = 90.0
		window  = 5.0
	)
	app := workload.Balanced(4, 0.15, 1e5)

	mk := func() (*grid.Grid, error) {
		nodes := make([]*grid.Node, 6)
		for i := range nodes {
			nodes[i] = &grid.Node{Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1}
			if i < 4 {
				// Founders sink under staggered load ramps (40%–85%
				// terminal load): the spread is what lets a reactive
				// trigger see the trouble as imbalance rather than a
				// uniform slowdown.
				nodes[i].Load = trace.Ramp{T0: 30, T1: 120, From: 0, To: 0.4 + 0.15*float64(i)}
			}
		}
		return grid.NewGrid(grid.LANLink, nodes...)
	}
	churn, err := grid.NewChurnSchedule(
		grid.Join("node4", join1),
		grid.Join("node5", join2),
	)
	if err != nil {
		return nil, err
	}

	// Deployment-time mapping may only use the founders: the reserves
	// have not joined yet.
	idle, err := mk()
	if err != nil {
		return nil, err
	}
	avail := churn.InitialAvail(idle)
	m0, _, err := sched.SearchAvailable(sched.LocalSearch{Seed: seed}, idle, app.Spec, nil, avail)
	if err != nil {
		return nil, err
	}
	m0, _, err = sched.ImproveWithReplicationAvail(idle, app.Spec, m0, nil, 0, avail)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "F10", Title: "elastic join under rising load"}
	tb := stats.NewTable("F10 reserves join at t=60 and t=90 while founder load ramps to 40–85%",
		"policy", "done", "lost", "retries", "remaps", "uses reserves", "availability")
	for _, p := range churnPolicies {
		g, err := mk()
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{
			Grid: g, App: app, Initial: m0, Policy: p,
			Interval: 1, Seed: seed, Duration: horizon, Churn: churn,
		})
		if err != nil {
			return nil, err
		}
		series := stats.WindowRate(out.Exec.Monitor().Completions(), 0, horizon, window)
		series.Name = p.String()
		res.Series = append(res.Series, series)
		final := out.Exec.Mapping()
		usesReserves := final.UsesNode(4) || final.UsesNode(5)
		tb.AddRowf(p.String(), out.Done, out.Lost, out.Retries, out.Ctrl.Remaps,
			usesReserves, churn.MeanAvailability(g, horizon))
	}
	tb.AddNote("expected shape: adaptive policies shift stages onto the fresh idle nodes and finish well ahead of static; a joined node appears in the final mapping")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
