package bench

import (
	"strconv"
	"testing"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/grid"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

// tableCol extracts column col of the first table keyed by the policy
// name in column 0.
func tableCol(t *testing.T, tb *stats.Table, col int) map[string]string {
	t.Helper()
	out := map[string]string{}
	for i := 0; i < tb.NumRows(); i++ {
		r := tb.Row(i)
		out[r[0]] = r[col]
	}
	return out
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// TestF9AdaptiveBeatsStatic pins the experiment's acceptance
// criterion: under a mid-run crash, the fault-aware adaptive policies
// complete at least as many items as the static mapping, and the
// fault remap happens at all.
func TestF9AdaptiveBeatsStatic(t *testing.T) {
	res, err := runF9(42)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	if tb.NumRows() != len(churnPolicies) {
		t.Fatalf("F9 rows = %d, want %d", tb.NumRows(), len(churnPolicies))
	}
	done := tableCol(t, tb, 1)
	faultRemaps := tableCol(t, tb, 5)
	if cellFloat(t, done["reactive"]) < cellFloat(t, done["static"]) {
		t.Fatalf("reactive done %s < static done %s under crash", done["reactive"], done["static"])
	}
	if cellFloat(t, done["predictive"]) < cellFloat(t, done["static"]) {
		t.Fatalf("predictive done %s < static done %s under crash", done["predictive"], done["static"])
	}
	if cellFloat(t, faultRemaps["reactive"]) == 0 {
		t.Fatal("reactive policy recorded no fault remap at the crash")
	}
	if cellFloat(t, faultRemaps["static"]) != 0 {
		t.Fatal("static policy must not remap")
	}
}

// TestF10AdaptiveUsesReserves: the elastic-join experiment must fold a
// joined reserve into the adaptive mapping and beat static.
func TestF10AdaptiveUsesReserves(t *testing.T) {
	res, err := runF10(42)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	done := tableCol(t, tb, 1)
	reserves := tableCol(t, tb, 5)
	if cellFloat(t, done["reactive"]) < cellFloat(t, done["static"]) {
		t.Fatalf("reactive done %s < static done %s with joinable reserves", done["reactive"], done["static"])
	}
	if reserves["reactive"] != "true" {
		t.Fatal("reactive final mapping never used a joined reserve node")
	}
	if reserves["static"] != "false" {
		t.Fatal("static mapping cannot reach the reserves — table disagrees")
	}
}

// TestChurnRunLedger: the scenario runner's churn wiring reports a
// balanced ledger on a fixed-item run.
func TestChurnRunLedger(t *testing.T) {
	app := workload.Balanced(3, 0.1, 1e4)
	g, err := spikeGrid(4, -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := initialMapping(g, app, 7)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := grid.NewChurnSchedule(grid.Outage("node1", 5, 12)...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run(runConfig{
		Grid: g, App: app, Initial: m0, Policy: adaptive.PolicyStatic,
		Seed: 7, Items: 200, Churn: churn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Done+out.Lost != 200 {
		t.Fatalf("done %d + lost %d != 200", out.Done, out.Lost)
	}
	if out.Exec.InFlight() != 0 {
		t.Fatalf("inFlight = %d at end", out.Exec.InFlight())
	}
}
