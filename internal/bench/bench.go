// Package bench is the experiment harness: it regenerates every table
// and figure of the reconstructed evaluation suite (see DESIGN.md's
// experiment index and the mismatch note explaining why the suite is a
// reconstruction).
//
// Each experiment is deterministic for a given seed and returns tables
// (printed like the paper's) and series (the data behind figures,
// exportable as CSV). cmd/pipebench exposes them on the command line;
// bench_test.go wires one testing.B benchmark per experiment.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gridpipe/internal/stats"
)

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Series []*stats.Series
}

// ResultDoc is the machine-readable rendering of one experiment
// result, emitted by pipebench -json.
type ResultDoc struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Tables []stats.TableDoc  `json:"tables"`
	Series []stats.SeriesDoc `json:"series,omitempty"`
}

// Doc returns the result's machine-readable form.
func (r *Result) Doc() ResultDoc {
	d := ResultDoc{ID: r.ID, Title: r.Title, Tables: []stats.TableDoc{}}
	for _, t := range r.Tables {
		d.Tables = append(d.Tables, t.Doc())
	}
	for _, s := range r.Series {
		d.Series = append(d.Series, s.Doc())
	}
	return d
}

// String renders every table and a short series inventory.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "series %q: %d points\n", s.Name, s.Len())
	}
	return b.String()
}

// Experiment is one reproducible table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed uint64) (*Result, error)
	// WallClock marks experiments that measure real time on this
	// machine (the live-runtime experiments): their tables vary
	// between runs, and RunAll keeps them out of the parallel pool so
	// concurrent sweeps cannot pollute their measurements.
	WallClock bool
}

// registry of all experiments, populated by the experiment files.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// RunOutcome is one experiment's result (or failure) from RunAll.
type RunOutcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
}

// RunAll executes every registered experiment at the given seed,
// fanning the runs across a bounded pool of workers goroutines
// (workers <= 1 runs sequentially). Outcomes return in ID order.
//
// Parallelism cannot perturb the tables: every experiment derives all
// of its randomness deterministically from the seed argument alone
// (per-run rng.New streams, per-(stage,seq) derived samplers), and the
// shared engine pool hands out Reset engines, so each outcome is
// byte-identical to what a sequential sweep produces.
func RunAll(seed uint64, workers int) []RunOutcome {
	exps := All()
	out := make([]RunOutcome, len(exps))
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers <= 1 {
		for i, e := range exps {
			res, err := e.Run(seed)
			out[i] = RunOutcome{Experiment: e, Result: res, Err: err}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := exps[i].Run(seed)
				out[i] = RunOutcome{Experiment: exps[i], Result: res, Err: err}
			}
		}()
	}
	for i := range exps {
		if exps[i].WallClock {
			continue // measured on real time; runs alone below
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	// Wall-clock experiments run sequentially on the drained machine:
	// fanning them out with the simulated sweeps would let unrelated
	// CPU work pollute their timings.
	for i := range exps {
		if exps[i].WallClock {
			res, err := exps[i].Run(seed)
			out[i] = RunOutcome{Experiment: exps[i], Result: res, Err: err}
		}
	}
	return out
}
