package bench

// Parallel-scaling benchmarks for the partitioned simulation core: a
// hot-path micro for the window protocol itself (gated at 0 allocs/op
// like every other hot path) and a macro sweep that drives a 10k-node,
// 16-tenant synthetic workload through sim.ParallelEngine across
// partition and GOMAXPROCS counts, reporting events/s per point (the
// `parallel` section of BENCH_*.json). Every sweep point also checks
// its completion digest against the single-partition golden run, so
// the scaling numbers double as a determinism property check.

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"
	"time"

	"gridpipe/internal/rng"
	"gridpipe/internal/sim"
)

// benchPartitionWindow measures the conservative-window protocol on
// the intra-window hot path: 4 partitions, 64 events per op (one
// cross-partition Send per partition, the rest local), windows run
// inline (workers=1) so the number is the protocol cost — outbox
// staging, window-edge exchange, calendar merge — not goroutine
// handoff. Like every hot-path row it must hold 0 allocs/op: the
// outboxes, inbox scratch, and calendar slots are all pooled.
func benchPartitionWindow(b *testing.B) {
	const parts = 4
	pe := sim.NewParallel(parts, 1.0)
	pe.SetWorkers(1)
	noop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < parts; p++ {
			sh := pe.Part(p)
			for j := 0; j < calendarBatch/parts-1; j++ {
				sh.ScheduleArg(0.1*float64(j&7), noop, nil)
			}
			sh.Send((p+1)%parts, 1.0, noop, nil)
		}
		pe.Run()
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

// ParallelPoint is one measurement of the scaling sweep: the synthetic
// multi-tenant run at a (partition count, GOMAXPROCS) combination.
type ParallelPoint struct {
	Parts        int     `json:"parts"`
	Procs        int     `json:"procs"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_s"`
	EventsPerSec float64 `json:"events_per_s"`
	// SpeedupVs1 is events/s relative to the parts=1, procs=1 golden
	// point of the same sweep.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// DefaultParallelParts is the standard partition sweep.
func DefaultParallelParts() []int { return []int{1, 2, 4, 8, 16} }

// DefaultParallelProcs returns the GOMAXPROCS sweep: powers of two up
// to the machine's CPU count ({1} on a single-core box — the sweep
// records what the machine can actually measure).
func DefaultParallelProcs() []int {
	procs := []int{1}
	for p := 2; p <= runtime.NumCPU(); p *= 2 {
		procs = append(procs, p)
	}
	return procs
}

// --- the synthetic workload ---------------------------------------------

// pnet is the sweep workload: tokens flowing fixed random routes over
// a large node set carved into per-tenant blocks, FCFS service at each
// node (a busy-until accumulator), cross-partition hops carrying at
// least the lookahead of latency. All times are drawn with full
// mantissa entropy from a seeded generator, so the event schedule has
// no ties and the completion digest is bit-reproducible across
// partition and worker counts.
type pnet struct {
	nodes  int
	parts  int
	busy   []float64
	routes [][]int32
	svc    [][]float64
	delay  [][]float64
	start  []float64
	finish []float64
	pe     *sim.ParallelEngine
}

type ptok struct {
	net      *pnet
	job, hop int
}

const pnetLookahead = 0.05

// buildPnet lays out tokens-per-tenant routes inside per-tenant node
// blocks. The route tables depend only on (seed, nodes, tenants,
// tokens, hops) — never on the partition count — so every sweep point
// executes the identical workload; only the partition seams differ.
func buildPnet(seed uint64, nodes, tenants, tokens, hops, parts int) *pnet {
	r := rng.New(seed)
	n := &pnet{
		nodes:  nodes,
		parts:  parts,
		busy:   make([]float64, nodes),
		routes: make([][]int32, tokens),
		svc:    make([][]float64, tokens),
		delay:  make([][]float64, tokens),
		start:  make([]float64, tokens),
		finish: make([]float64, tokens),
	}
	block := nodes / tenants
	for j := 0; j < tokens; j++ {
		t := j % tenants
		n.routes[j] = make([]int32, hops)
		n.svc[j] = make([]float64, hops)
		n.delay[j] = make([]float64, hops)
		for h := 0; h < hops; h++ {
			// Mostly within the tenant's block; ~10% of hops reach an
			// arbitrary node (cross-site transfers), so partition seams
			// carry real exchange traffic at every partition count.
			if r.Float64() < 0.1 {
				n.routes[j][h] = int32(r.Intn(nodes))
			} else {
				n.routes[j][h] = int32(t*block + r.Intn(block))
			}
			n.svc[j][h] = 0.001 + 0.05*r.Float64()
		}
		n.start[j] = r.Float64()
		n.finish[j] = math.NaN()
	}
	// Hop delays are classified by tenant-block seams, not partition
	// seams, so the workload — routes, service times, AND delays — is
	// byte-identical at every partition count. Partition boundaries
	// always coincide with block boundaries (parts divides tenants, see
	// ParallelScaling), so every cross-partition hop is a cross-block
	// hop and carries at least the lookahead, as Send requires.
	dr := rng.New(rng.SeedFor(seed, 1))
	for j := range n.routes {
		for h := 1; h < len(n.routes[j]); h++ {
			f := dr.Float64()
			if int(n.routes[j][h-1])/block != int(n.routes[j][h])/block {
				n.delay[j][h] = pnetLookahead * (1 + f)
			} else {
				n.delay[j][h] = 0.0005 * f
			}
		}
	}
	return n
}

func (n *pnet) partOf(node int32) int { return int(node) * n.parts / n.nodes }

func pnetArrive(arg any) {
	tok := arg.(*ptok)
	n := tok.net
	node := n.routes[tok.job][tok.hop]
	sh := n.pe.Part(n.partOf(node))
	now := sh.Now()
	startSvc := now
	if n.busy[node] > startSvc {
		startSvc = n.busy[node]
	}
	done := startSvc + n.svc[tok.job][tok.hop]
	n.busy[node] = done
	sh.ScheduleArg(done-now, pnetDepart, tok)
}

func pnetDepart(arg any) {
	tok := arg.(*ptok)
	n := tok.net
	from := n.routes[tok.job][tok.hop]
	sh := n.pe.Part(n.partOf(from))
	tok.hop++
	if tok.hop >= len(n.routes[tok.job]) {
		n.finish[tok.job] = sh.Now()
		return
	}
	to := n.routes[tok.job][tok.hop]
	d := n.delay[tok.job][tok.hop]
	if dst := n.partOf(to); dst != n.partOf(from) {
		sh.Send(dst, d, pnetArrive, tok)
		return
	}
	sh.ScheduleArg(d, pnetArrive, tok)
}

// run executes the workload on a fresh partitioned engine and returns
// (events fired, wall-clock, completion digest).
func (n *pnet) run(workers int) (uint64, time.Duration, uint64) {
	n.pe = sim.NewParallel(n.parts, pnetLookahead)
	n.pe.SetWorkers(workers)
	for j := range n.routes {
		tok := &ptok{net: n, job: j}
		n.pe.Part(n.partOf(n.routes[j][0])).AtArg(n.start[j], pnetArrive, tok)
	}
	t0 := time.Now()
	n.pe.Run()
	wall := time.Since(t0)
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range n.finish {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return n.pe.Events(), wall, h.Sum64()
}

// ParallelScaling measures the partitioned engine on the synthetic
// 10k-node, 16-tenant workload across the given partition counts and
// GOMAXPROCS settings. The parts=1, procs=1 golden point always runs
// first (added if absent); every other point's completion digest must
// match its — a sweep is also a determinism property check — and its
// events/s anchors SpeedupVs1.
func ParallelScaling(seed uint64, partsList, procsList []int) ([]ParallelPoint, error) {
	const (
		nodes   = 10000
		tenants = 16
		tokens  = 2000
		hops    = 48
	)
	if len(partsList) == 0 {
		partsList = DefaultParallelParts()
	}
	if len(procsList) == 0 {
		procsList = DefaultParallelProcs()
	}
	for _, parts := range partsList {
		// Partition seams must coincide with tenant-block seams so that
		// every cross-partition hop carries the lookahead (see buildPnet).
		if parts < 1 || parts > tenants || tenants%parts != 0 {
			return nil, fmt.Errorf(
				"bench: parallel sweep partition count %d must divide the workload's %d tenants (valid: 1, 2, 4, 8, 16)",
				parts, tenants)
		}
	}

	measure := func(parts, procs int) (ParallelPoint, uint64) {
		net := buildPnet(seed, nodes, tenants, tokens, hops, parts)
		prev := runtime.GOMAXPROCS(procs)
		events, wall, digest := net.run(0)
		runtime.GOMAXPROCS(prev)
		p := ParallelPoint{
			Parts:       parts,
			Procs:       procs,
			Events:      events,
			WallSeconds: wall.Seconds(),
		}
		if p.WallSeconds > 0 {
			p.EventsPerSec = float64(events) / p.WallSeconds
		}
		return p, digest
	}

	golden, goldenDigest := measure(1, 1)
	golden.SpeedupVs1 = 1
	out := []ParallelPoint{golden}
	for _, parts := range partsList {
		for _, procs := range procsList {
			if parts == 1 && procs == 1 {
				continue
			}
			p, digest := measure(parts, procs)
			if digest != goldenDigest {
				return nil, fmt.Errorf(
					"bench: parallel sweep parts=%d procs=%d: completion digest %x != single-partition golden %x",
					parts, procs, digest, goldenDigest)
			}
			if golden.EventsPerSec > 0 {
				p.SpeedupVs1 = p.EventsPerSec / golden.EventsPerSec
			}
			out = append(out, p)
		}
	}
	return out, nil
}
