package bench

import (
	"fmt"
	"math"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/forecast"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{ID: "T1", Title: "Adaptation overhead breakdown", Run: runT1})
	register(Experiment{ID: "T2", Title: "Analytic model vs simulation: mapping choice and throughput error", Run: runT2})
	register(Experiment{ID: "T3", Title: "Forecaster accuracy by trace class", Run: runT3})
	register(Experiment{ID: "T4", Title: "Mapping-search strategies: quality and cost", Run: runT4})
}

// T1: instrument the F1 spike scenario under the reactive policy and
// break the cost of adaptation down: detection latency, migrations,
// redone work, and the throughput dip.
func runT1(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		spikeAt = 60.0
		level   = 0.85
		window  = 5.0
	)
	app := workload.Image()
	idle, err := spikeGrid(6, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[1][0])

	res := &Result{ID: "T1", Title: "adaptation overhead"}
	tb := stats.NewTable("T1 overhead of adaptation (reactive policy, spike at t=60)",
		"metric", "value")
	g, err := spikeGrid(6, victim, spikeAt, level)
	if err != nil {
		return nil, err
	}
	out, err := run(runConfig{Grid: g, App: app, Initial: m0,
		Policy: adaptive.PolicyReactive, Interval: 1, Seed: seed, Duration: horizon})
	if err != nil {
		return nil, err
	}
	st := out.Ctrl
	detection := math.NaN()
	for _, ev := range st.Events {
		if ev.Time >= spikeAt {
			detection = ev.Time - spikeAt
			break
		}
	}
	// Recovery: first window after the spike whose rate reaches 90% of
	// the final steady rate.
	completions := out.Exec.Monitor().Completions()
	steady := meanRateIn(completions, horizon-30, horizon)
	recovery := math.NaN()
	for t := spikeAt; t < horizon-window; t += 1 {
		if meanRateIn(completions, t, t+window) >= 0.9*steady {
			recovery = t - spikeAt
			break
		}
	}
	preRate := meanRateIn(completions, 0, spikeAt)
	tb.AddRowf("items completed", out.Done)
	tb.AddRowf("remaps", st.Remaps)
	tb.AddRowf("searches", st.Searches)
	tb.AddRowf("detection latency (s)", detection)
	tb.AddRowf("recovery time to 90% steady (s)", recovery)
	tb.AddRowf("items migrated", out.Exec.Migrations())
	tb.AddRowf("migrated as % of done", 100*float64(out.Exec.Migrations())/float64(out.Done))
	tb.AddRowf("redone work (ref-s)", out.Exec.RedoneWork())
	tb.AddRowf("pre-spike throughput (items/s)", preRate)
	tb.AddRowf("post-recovery throughput (items/s)", steady)
	tb.AddNote("drain-safe protocol: redone work must be 0")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// T2: the model-validation table. A 3-stage pipeline on 3 nodes under a
// grid of service-time and load parameter sets; for every set the
// analytic model ranks all 27 mappings and the simulator measures each
// one. Reported: whether the model's chosen mapping is measured-best
// (or within 5%), and the relative throughput error on the chosen
// mapping. A CTMC cross-check row family validates the saturation
// assumption itself on a blocking tandem line.
func runT2(seed uint64) (*Result, error) {
	type set struct {
		name  string
		works [3]float64
		loads [3]float64
	}
	sets := []set{
		{"balanced idle", [3]float64{0.1, 0.1, 0.1}, [3]float64{0, 0, 0}},
		{"balanced busy3", [3]float64{0.1, 0.1, 0.1}, [3]float64{0, 0, 0.9}},
		{"heavy mid", [3]float64{0.05, 0.3, 0.05}, [3]float64{0, 0, 0}},
		{"heavy mid busy1", [3]float64{0.05, 0.3, 0.05}, [3]float64{0.8, 0, 0}},
		{"ascending", [3]float64{0.05, 0.1, 0.2}, [3]float64{0, 0, 0}},
		{"descending busy2", [3]float64{0.2, 0.1, 0.05}, [3]float64{0, 0.7, 0}},
	}

	res := &Result{ID: "T2", Title: "model validation"}
	tb := stats.NewTable("T2 model vs simulation over all 27 mappings of 3 stages on 3 nodes",
		"parameter set", "model best", "measured best", "agree", "pred thr", "meas thr", "rel err")
	agreeCount := 0
	for _, s := range sets {
		spec := model.PipelineSpec{Stages: []model.StageSpec{
			{Name: "s1", Work: s.works[0]},
			{Name: "s2", Work: s.works[1]},
			{Name: "s3", Work: s.works[2]},
		}}
		// Nodes carry constant loads matching the estimates, so the
		// model's inputs are exact and the residual error isolates the
		// saturation approximation.
		nodes := make([]*grid.Node, 3)
		for i := range nodes {
			nodes[i] = &grid.Node{Name: fmt.Sprintf("n%d", i), Speed: 1, Cores: 1,
				Load: trace.Constant(s.loads[i])}
		}
		gl, err := grid.NewGrid(grid.LANLink, nodes...)
		if err != nil {
			return nil, err
		}
		loads := s.loads[:]

		cands, err := model.EnumerateAll(3, 3)
		if err != nil {
			return nil, err
		}
		bestIdx, bestPred, err := model.Best(gl, spec, cands, loads)
		if err != nil {
			return nil, err
		}
		// Measure every mapping.
		measured := make([]float64, len(cands))
		for i, m := range cands {
			out, err := run(runConfig{Grid: gl, App: workload.App{Name: "t2", Spec: spec},
				Initial: m, Policy: adaptive.PolicyStatic, Seed: seed, Items: 300})
			if err != nil {
				return nil, err
			}
			measured[i] = 300 / out.Makespan
		}
		measBestIdx := 0
		for i := range measured {
			if measured[i] > measured[measBestIdx] {
				measBestIdx = i
			}
		}
		// Agreement: the model's choice performs within 5% of the
		// measured best (several mappings often tie).
		agree := measured[bestIdx] >= 0.95*measured[measBestIdx]
		if agree {
			agreeCount++
		}
		tb.AddRowf(s.name, cands[bestIdx].String(), cands[measBestIdx].String(),
			agree, bestPred.Throughput, measured[bestIdx],
			stats.RelErr(measured[bestIdx], bestPred.Throughput))
	}
	tb.AddNote("agreement on %d of %d parameter sets", agreeCount, len(sets))

	// CTMC cross-check: exact blocking-tandem throughput vs the
	// analytic saturation bound vs simulation with matching WIP.
	ct := stats.NewTable("T2b CTMC cross-check (3 exponential stages, saturated line)",
		"rates", "buffers", "CTMC exact", "analytic bound", "sim measured", "sim/CTMC")
	for _, row := range []struct {
		mus []float64
		buf int
	}{
		{[]float64{10, 10, 10}, 0},
		{[]float64{10, 10, 10}, 2},
		{[]float64{10, 5, 10}, 0},
		{[]float64{10, 5, 10}, 2},
		{[]float64{20, 10, 5}, 1},
	} {
		exact, err := model.SolveTandem(row.mus, row.buf)
		if err != nil {
			return nil, err
		}
		bound := row.mus[0]
		for _, mu := range row.mus {
			if mu < bound {
				bound = mu
			}
		}
		simThr, err := simulateTandem(seed, row.mus, row.buf)
		if err != nil {
			return nil, err
		}
		ct.AddRowf(fmt.Sprintf("%v", row.mus), row.buf, exact.Throughput, bound,
			simThr, simThr/exact.Throughput)
	}
	ct.AddNote("expected shape: CTMC ≤ analytic bound; simulation tracks the CTMC as WIP matches")
	res.Tables = []*stats.Table{tb, ct}
	return res, nil
}

// simulateTandem measures a saturated exponential tandem line in the
// executor, with CONWIP set to stages+buffers to mirror the CTMC's
// blocking structure.
func simulateTandem(seed uint64, mus []float64, buf int) (float64, error) {
	ns := len(mus)
	g, err := grid.Homogeneous(ns, 1, grid.LANLink)
	if err != nil {
		return 0, err
	}
	stages := make([]model.StageSpec, ns)
	for i, mu := range mus {
		stages[i] = model.StageSpec{Name: fmt.Sprintf("s%d", i), Work: 1 / mu}
	}
	spec := model.PipelineSpec{Stages: stages}
	r := rng.New(seed)
	sampler := func(stage, seq int) float64 {
		// Exponential service with the stage's mean, deterministic per
		// (stage, seq).
		rr := r.Derive(uint64(stage)<<32 | uint64(uint32(seq)))
		return rr.Exp(mus[stage])
	}
	out, err := run(runConfig{
		Grid: g, App: workload.App{Name: "tandem", Spec: spec}, Initial: model.OneToOne(ns),
		Policy: adaptive.PolicyStatic, Seed: seed, Items: 4000,
		MaxInFlight: ns + buf*(ns-1),
		Sampler:     sampler,
	})
	if err != nil {
		return 0, err
	}
	return 4000 / out.Makespan, nil
}

// T3: forecaster accuracy per trace class (the NWS battery table).
func runT3(seed uint64) (*Result, error) {
	r := rng.New(seed)
	const n = 400
	signals := []struct {
		name string
		tr   trace.Trace
	}{
		{"constant", trace.Constant(0.4)},
		{"step", trace.NewSteps(0.2, trace.StepChange{T: n / 2, Load: 0.7})},
		{"ramp", trace.Ramp{T0: 0, T1: n, From: 0.1, To: 0.8}},
		{"sine", trace.Sine{Base: 0.5, Amp: 0.3, Period: 60}},
		{"walk", trace.NewRandomWalk(r.Derive(1), n, 1, 0.4, 0.05, 0.2)},
		{"burst", trace.NewMarkovBurst(r.Derive(2), n, 1, 0.1, 0.6, 30, 10)},
	}
	makers := []func() forecast.Forecaster{
		func() forecast.Forecaster { return forecast.NewLastValue() },
		func() forecast.Forecaster { return forecast.NewRunningMean() },
		func() forecast.Forecaster { return forecast.NewSlidingMean(10) },
		func() forecast.Forecaster { return forecast.NewSlidingMedian(10) },
		func() forecast.Forecaster { return forecast.NewExpSmooth(0.3) },
		func() forecast.Forecaster { return forecast.NewAR1(20) },
		func() forecast.Forecaster { return forecast.NewDefaultBattery() },
	}
	res := &Result{ID: "T3", Title: "forecaster accuracy"}
	tb := stats.NewTable("T3 one-step forecast MSE (×1e-3) by trace class",
		"forecaster", "constant", "step", "ramp", "sine", "walk", "burst")
	type rowT struct {
		name string
		mse  []float64
	}
	var rows []rowT
	for _, mk := range makers {
		row := rowT{}
		for _, sig := range signals {
			series := trace.Sample(sig.tr, 0, n, n)
			ev := forecast.Evaluate(mk, series)
			row.name = ev.Name
			row.mse = append(row.mse, ev.MSE*1e3)
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		cells := []any{row.name}
		for _, v := range row.mse {
			cells = append(cells, v)
		}
		tb.AddRowf(cells...)
	}
	tb.AddNote("expected shape: adaptive row is near the column minimum for every class (NWS property)")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// T4: mapping-search strategy comparison: solution quality (predicted
// throughput vs the best found by any strategy) and search cost.
func runT4(seed uint64) (*Result, error) {
	r := rng.New(seed)
	res := &Result{ID: "T4", Title: "mapping search strategies"}
	tb := stats.NewTable("T4 search quality (predicted thr / best) and cost",
		"Ns", "Np", "strategy", "quality", "cost (ms)", "mapping")
	cases := []struct{ ns, np int }{{4, 4}, {8, 4}, {8, 8}, {12, 8}}
	for _, c := range cases {
		// Random stage works and node speeds, fixed per seed.
		stages := make([]model.StageSpec, c.ns)
		for i := range stages {
			stages[i] = model.StageSpec{
				Name: fmt.Sprintf("s%d", i), Work: 0.05 + 0.3*r.Float64(),
				OutBytes: 1e5, Replicable: false,
			}
		}
		spec := model.PipelineSpec{Stages: stages, InBytes: 1e5}
		speeds := make([]float64, c.np)
		for i := range speeds {
			speeds[i] = 0.5 + 3*r.Float64()
		}
		g, err := grid.Heterogeneous(speeds, grid.CampusLink)
		if err != nil {
			return nil, err
		}
		searchers := []sched.Searcher{
			sched.ContiguousDP{}, sched.Greedy{}, sched.LocalSearch{Seed: seed},
		}
		feasible := math.Pow(float64(c.np), float64(c.ns)) <= 1<<20
		if feasible {
			searchers = append([]sched.Searcher{sched.Exhaustive{}}, searchers...)
		}
		type resT struct {
			name    string
			thr     float64
			cost    time.Duration
			mapping string
		}
		var results []resT
		best := 0.0
		for _, s := range searchers {
			t0 := time.Now()
			m, pred, err := s.Search(g, spec, nil)
			cost := time.Since(t0)
			if err != nil {
				return nil, err
			}
			results = append(results, resT{s.Name(), pred.Throughput, cost, m.String()})
			if pred.Throughput > best {
				best = pred.Throughput
			}
		}
		for _, rr := range results {
			tb.AddRowf(c.ns, c.np, rr.name, rr.thr/best,
				float64(rr.cost.Microseconds())/1000, rr.mapping)
		}
	}
	tb.AddNote("quality 1.0 = the best mapping any strategy found; exhaustive rows are exact optima where present")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
