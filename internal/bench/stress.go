package bench

// The RPS stress ramp behind `pipebench -stress`: walk offered load
// upward in steps, drive each step's open-loop job stream through a
// fresh admission-controlled cluster, and locate the throughput knee —
// the offered rate past which added load buys queueing instead of
// throughput. The result is the `stress` section of BENCH_<n>.json
// (see DESIGN.md, "Benchmark protocol").

import (
	"fmt"

	"gridpipe/internal/cluster"
	"gridpipe/internal/grid"
	"gridpipe/internal/rng"
	"gridpipe/internal/stats"
	"gridpipe/internal/workload"
)

// StressConfig tunes the ramp.
type StressConfig struct {
	// Nodes is the simulated grid size (default 8 homogeneous nodes).
	Nodes int
	// App is the bundled workload every job runs (default genome).
	App string
	// Process is the arrival-process family for the per-step job
	// streams (workload.NewArrival names; default poisson).
	Process string
	// ItemsPerJob is the per-job item count (default 20).
	ItemsPerJob int
	// StartRPS and StepRPS define the offered-load ramp in items/s:
	// step i offers StartRPS + i·StepRPS (defaults 4 and 4).
	StartRPS, StepRPS float64
	// Steps is the ramp length (default 8).
	Steps int
	// Horizon is the arrival window per step in virtual seconds
	// (default 240; the cluster then drains the backlog). Long windows
	// matter: the per-step job count must be large enough that
	// arrival-count noise (±1/sqrt(jobs)) does not fake a knee in the
	// unsaturated region.
	Horizon float64
	// KneeWindow and KneeFrac tune the detector (stats.KneeIndex;
	// defaults 2 and 0.5).
	KneeWindow int
	KneeFrac   float64
	// Seed drives every step's derived randomness.
	Seed uint64
	// Trace, when non-empty, replaces the generated per-step streams:
	// each step replays this recorded trace with arrival times rescaled
	// so its offered load matches the step's, preserving the recorded
	// burst structure (see workload.TraceFromCSV and Trace.ScaleTime).
	// Process, ItemsPerJob, and Horizon are ignored in replay mode.
	Trace workload.Trace
}

func (c *StressConfig) fillDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.App == "" {
		c.App = "genome"
	}
	if c.Process == "" {
		c.Process = "poisson"
	}
	if c.ItemsPerJob <= 0 {
		c.ItemsPerJob = 20
	}
	if c.StartRPS <= 0 {
		c.StartRPS = 4
	}
	if c.StepRPS <= 0 {
		c.StepRPS = 4
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = 240
	}
	if c.KneeWindow <= 0 {
		c.KneeWindow = 2
	}
	if c.KneeFrac <= 0 || c.KneeFrac >= 1 {
		c.KneeFrac = 0.5
	}
}

// StressStep is one offered-load level's measurement.
type StressStep struct {
	// OfferedRPS is the step's offered load in items/s; AchievedRPS is
	// the measured sustained throughput (items completed over the
	// cluster makespan).
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Jobs is the number of job arrivals the step's stream produced;
	// Items the total items across them.
	Jobs  int `json:"jobs"`
	Items int `json:"items"`
	// MeanWaitSec is the mean admission-queue delay — the congestion
	// signal that explodes past the knee.
	MeanWaitSec float64 `json:"mean_wait_s"`
	// MakespanSec is the virtual time to drain the step's stream.
	MakespanSec float64 `json:"makespan_s"`
}

// StressResult is the `stress` section of a BENCH_<n>.json snapshot.
type StressResult struct {
	Nodes       int          `json:"nodes"`
	App         string       `json:"app"`
	Process     string       `json:"process"`
	ItemsPerJob int          `json:"items_per_job"`
	HorizonSec  float64      `json:"horizon_s"`
	Seed        uint64       `json:"seed"`
	Steps       []StressStep `json:"steps"`
	// KneeIndex is the first saturated step (stats.KneeIndex; -1 = no
	// knee detected), and KneeRPS that step's offered load.
	KneeIndex int     `json:"knee_index"`
	KneeRPS   float64 `json:"knee_rps,omitempty"`
}

// StressRamp runs the ramp: per step, an open-loop stream of App jobs
// with Poisson-or-chosen arrivals at the step's offered rate is
// generated as a trace, replayed into a fresh admission-queued
// cluster, and the sustained throughput measured; the knee detector
// then walks the (offered, achieved) curve. Deterministic in
// cfg.Seed: each step derives its own keyed sub-stream.
func StressRamp(cfg StressConfig) (*StressResult, error) {
	cfg.fillDefaults()
	if _, err := workload.ByName(cfg.App); err != nil {
		return nil, err
	}
	replay := len(cfg.Trace) > 0
	var nativeRPS float64
	if replay {
		span, items := cfg.Trace.Span(), cfg.Trace.TotalItems()
		if span <= 0 {
			return nil, fmt.Errorf("bench: stress replay trace has zero span")
		}
		nativeRPS = float64(items) / span
		cfg.Process = "trace-replay"
		cfg.Horizon = span
	}
	res := &StressResult{
		Nodes:       cfg.Nodes,
		App:         cfg.App,
		Process:     cfg.Process,
		ItemsPerJob: cfg.ItemsPerJob,
		HorizonSec:  cfg.Horizon,
		Seed:        cfg.Seed,
		KneeIndex:   -1,
	}
	mix := []workload.MixEntry{{App: cfg.App, Share: 1, Items: cfg.ItemsPerJob}}
	for i := 0; i < cfg.Steps; i++ {
		offered := cfg.StartRPS + float64(i)*cfg.StepRPS
		stepSeed := rng.SeedFor(cfg.Seed, uint64(i))
		var tr workload.Trace
		var err error
		if replay {
			// Stretch or compress the recorded stream until its offered
			// rate matches this step's; burst structure is preserved.
			tr, err = cfg.Trace.ScaleTime(nativeRPS / offered)
		} else {
			// Offered items/s → job arrivals/s at ItemsPerJob items each.
			var proc workload.ArrivalProcess
			proc, err = workload.NewArrival(cfg.Process, offered/float64(cfg.ItemsPerJob), stepSeed)
			if err == nil {
				tr, err = workload.GenerateTrace(proc, mix, cfg.Horizon, stepSeed)
			}
		}
		if err != nil {
			return nil, err
		}
		step := StressStep{OfferedRPS: offered}
		if len(tr) > 0 {
			g, err := grid.Homogeneous(cfg.Nodes, 1, grid.LANLink)
			if err != nil {
				return nil, err
			}
			cl, err := cluster.New(g, cluster.Config{Seed: stepSeed, Admission: cluster.AdmitQueue})
			if err != nil {
				return nil, err
			}
			if _, err := cl.SubmitTrace(tr); err != nil {
				return nil, fmt.Errorf("bench: stress step %d: %w", i, err)
			}
			rep, err := cl.Run()
			if err != nil {
				return nil, fmt.Errorf("bench: stress step %d: %w", i, err)
			}
			done := 0
			waitSum := 0.0
			for _, jr := range rep.Jobs {
				done += jr.Done
				waitSum += jr.Waited
			}
			step.Jobs = len(rep.Jobs)
			for _, ev := range tr {
				step.Items += ev.Items
			}
			step.MakespanSec = rep.Makespan
			if len(rep.Jobs) > 0 {
				step.MeanWaitSec = waitSum / float64(len(rep.Jobs))
			}
			if rep.Makespan > 0 {
				step.AchievedRPS = float64(done) / rep.Makespan
			}
		}
		res.Steps = append(res.Steps, step)
	}
	offered := make([]float64, len(res.Steps))
	achieved := make([]float64, len(res.Steps))
	for i, s := range res.Steps {
		offered[i] = s.OfferedRPS
		achieved[i] = s.AchievedRPS
	}
	res.KneeIndex = stats.KneeIndex(offered, achieved, cfg.KneeWindow, cfg.KneeFrac)
	if res.KneeIndex >= 0 {
		res.KneeRPS = res.Steps[res.KneeIndex].OfferedRPS
	}
	return res, nil
}

// StressTable renders the ramp as a table for the pipebench console
// output.
func StressTable(res *StressResult) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("stress ramp: %s × %d-item jobs, %s arrivals, %d nodes, %.0f s windows",
			res.App, res.ItemsPerJob, res.Process, res.Nodes, res.HorizonSec),
		"offered rps", "achieved rps", "jobs", "items", "mean wait", "makespan", "knee")
	for i, s := range res.Steps {
		knee := ""
		if i == res.KneeIndex {
			knee = "<-- knee"
		}
		tb.AddRowf(s.OfferedRPS, s.AchievedRPS, s.Jobs, s.Items, s.MeanWaitSec, s.MakespanSec, knee)
	}
	if res.KneeIndex < 0 {
		tb.AddNote("no knee detected: the ramp never saturated (raise -stress-steps or -stress-step)")
	} else {
		tb.AddNote("knee at %.4g offered items/s: past it added load buys queueing, not throughput", res.KneeRPS)
	}
	return tb
}
