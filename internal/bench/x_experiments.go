package bench

import (
	"fmt"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"

	"gridpipe/internal/exec"
)

func init() {
	register(Experiment{ID: "F7", Title: "Node load saturation and recovery: static vs adaptive (node stays Up)", Run: runF7})
	register(Experiment{ID: "T5", Title: "Latency model (M/G/1) vs simulation under Poisson arrivals", Run: runT5})
	register(Experiment{ID: "A3", Title: "Ablation: hysteresis gain vs churn", Run: runA3})
}

// F7: the load-saturation experiment. The node hosting two pipeline
// stages is saturated (load pinned at the maximum — it crawls at 2%
// speed but stays Up) during [60, 140) and then recovers. Static
// crawls at the saturation floor; adaptive policies evacuate and may
// return after recovery. True crash/rejoin churn — the node actually
// going Down — is experiment F9.
func runF7(seed uint64) (*Result, error) {
	const (
		horizon  = 240.0
		failAt   = 60.0
		recoverT = 140.0
	)
	app := workload.Balanced(4, 0.15, 1e5)

	mk := func(victim int) (*grid.Grid, error) {
		nodes := make([]*grid.Node, 5)
		for i := range nodes {
			nodes[i] = &grid.Node{Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1}
			if i == victim {
				nodes[i].Load = grid.Saturate(nil, failAt, recoverT)
			}
		}
		return grid.NewGrid(grid.LANLink, nodes...)
	}
	// Initial mapping co-locates two stages on node 0 (so the outage
	// hits hard): stages (0,0,1,2).
	m0 := model.FromNodes(0, 0, 1, 2)

	res := &Result{ID: "F7", Title: "node outage and recovery"}
	tb := stats.NewTable("F7 outage of node0 during [60,140)",
		"policy", "done", "thr during outage", "thr after recovery", "remaps")
	for _, p := range mainPolicies {
		g, err := mk(0)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{Grid: g, App: app, Initial: m0,
			Policy: p, Interval: 1, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		completions := out.Exec.Monitor().Completions()
		during := meanRateIn(completions, failAt+10, recoverT)
		after := meanRateIn(completions, recoverT+20, horizon)
		tb.AddRowf(p.String(), out.Done, during, after, out.Ctrl.Remaps)
	}
	tb.AddNote("expected shape: static collapses for the outage window; adaptive evacuates within seconds")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// T5: validate the M/G/1 latency model against the executor under
// Poisson arrivals, sweeping utilisation and service variability.
func runT5(seed uint64) (*Result, error) {
	res := &Result{ID: "T5", Title: "latency model validation"}
	tb := stats.NewTable("T5 mean latency: M/G/1 prediction vs simulation (3 stages on 3 nodes)",
		"cv", "rho", "lambda", "predicted (s)", "measured (s)", "rel err")

	spec := model.Balanced(3, 0.1, 0)
	m := model.OneToOne(3)
	for _, cv := range []float64{0, 1} {
		for _, rho := range []float64{0.2, 0.5, 0.8} {
			lambda := rho / 0.1 // per-node utilisation = λ·s
			g, err := grid.Homogeneous(3, 1, grid.LANLink)
			if err != nil {
				return nil, err
			}
			pred, err := model.PredictLatency(g, spec, m, nil, lambda, cv)
			if err != nil {
				return nil, err
			}
			measured, err := simulatePoissonLatency(seed, g, spec, m, lambda, cv)
			if err != nil {
				return nil, err
			}
			tb.AddRowf(cv, rho, lambda, pred.Mean, measured, stats.RelErr(measured, pred.Mean))
		}
	}
	tb.AddNote("cv=1 (M/M/1): decomposition is near-exact at every rho")
	tb.AddNote("cv=0 (M/D/1): prediction is an upper bound that loosens with rho — deterministic service smooths departures, so downstream nodes see sub-Poisson arrivals and wait less than the model's per-node M/D/1 assumption")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// simulatePoissonLatency measures mean pipeline latency with Poisson
// arrivals and (optionally) exponential service.
func simulatePoissonLatency(seed uint64, g *grid.Grid, spec model.PipelineSpec, m model.Mapping, lambda, cv float64) (float64, error) {
	eng := acquireEngine()
	defer releaseEngine(eng)
	var sampler func(stage, seq int) float64
	if cv > 0 {
		root := rng.New(seed + 7)
		sampler = func(stage, seq int) float64 {
			r := root.Derive(uint64(stage)<<32 | uint64(uint32(seq)))
			return r.Exp(1 / spec.Stages[stage].Work)
		}
	}
	ex, err := exec.New(eng, g, spec, m, exec.Options{
		ArrivalRate: lambda,
		Seed:        seed,
		WorkSampler: sampler,
	})
	if err != nil {
		return 0, err
	}
	ex.RunUntil(3000)
	lats := ex.Latencies()
	if len(lats) < 100 {
		return 0, fmt.Errorf("bench: only %d completions for latency estimate", len(lats))
	}
	// Drop the warmup third.
	return stats.Mean(lats[len(lats)/3:]), nil
}

// A3: hysteresis sweep. Noisy mean-reverting loads on every node make
// the "best" mapping flicker. Items are heavy (4 MB) and the network is
// a campus backbone, so every remap pays real migration and redirect
// cost; with no hysteresis the periodic controller chases the noise and
// loses throughput to its own churn.
func runA3(seed uint64) (*Result, error) {
	const horizon = 300.0
	app := workload.Balanced(4, 0.15, 4e6)
	gains := []float64{1.0, 1.15, 1.5, 2.0}

	res := &Result{ID: "A3", Title: "hysteresis ablation"}
	tb := stats.NewTable("A3 hysteresis gain vs churn (periodic policy, noisy walk loads, 4 MB items on campus links)",
		"gain", "done", "remaps", "migrations", "done per remap")

	mk := func() (*grid.Grid, error) {
		nodes := make([]*grid.Node, 6)
		for i := range nodes {
			nodes[i] = &grid.Node{
				Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1,
				Load: trace.NewRandomWalk(rng.New(seed+uint64(i)*17), horizon+60, 1, 0.35, 0.12, 0.15),
			}
		}
		return grid.NewGrid(grid.CampusLink, nodes...)
	}
	idle, err := mk()
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}

	for _, gain := range gains {
		g, err := mk()
		if err != nil {
			return nil, err
		}
		eng := acquireEngine()
		ex, err := exec.New(eng, g, app.Spec, m0, exec.Options{
			MaxInFlight: 4 * app.Spec.NumStages(),
			WorkSampler: app.Sampler(seed),
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		ctrl, err := simadapt.New(eng, g, ex, app.Spec, simadapt.Config{
			Policy:         adaptive.PolicyPeriodic,
			Interval:       1,
			HysteresisGain: gain,
			Searcher:       sched.LocalSearch{Seed: seed + 1},
		})
		if err != nil {
			return nil, err
		}
		ctrl.Start()
		done := ex.RunUntil(horizon)
		ctrl.Stop()
		st := ctrl.Stats()
		perRemap := float64(done)
		if st.Remaps > 0 {
			perRemap = float64(done) / float64(st.Remaps)
		}
		tb.AddRowf(gain, done, st.Remaps, ex.Migrations(), perRemap)
		releaseEngine(eng)
	}
	tb.AddNote("expected shape: remaps fall sharply with gain; throughput stays flat or improves — churn buys nothing")
	res.Tables = []*stats.Table{tb}
	return res, nil
}
