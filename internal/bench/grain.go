package bench

// The grain sweep: throughput and p99 item latency of the live
// replicated-stage boundary as a function of batch size. It is the
// repository's direct measurement of the paper's granularity
// trade-off — larger grains amortize per-transfer synchronization
// (throughput rises towards a plateau) while the head batcher's fill
// time adds sojourn latency (p99 rises, capped by the linger flush).
// pipebench embeds the sweep in the BENCH_*.json `batch` section and
// exposes it standalone via -grainsweep.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"gridpipe/internal/pipeline"
)

// GrainPoint is one grain's measurement.
type GrainPoint struct {
	Grain int `json:"grain"`
	// ItemsPerSec is the saturated (unpaced) boundary throughput.
	ItemsPerSec float64 `json:"items_per_s"`
	// P99LatencyNs is the 99th-percentile item sojourn (send→receive)
	// under a paced feed at roughly a fifth of the unbatched
	// boundary's capacity, where batching delay — not queueing — is
	// what the percentile sees.
	P99LatencyNs float64 `json:"p99_latency_ns"`
}

// GrainSweepConfig tunes GrainSweep. Zero values pick the defaults.
type GrainSweepConfig struct {
	// Grains is the batch-size ladder (default 1,2,4,...,256; 1 runs
	// the unbatched wiring and anchors the comparison).
	Grains []int
	// Items per throughput measurement (default 200_000).
	Items int
	// Linger is the head batcher's partial-batch timeout
	// (default pipeline.DefaultLinger).
	Linger time.Duration
	// PaceNs is the paced feed's inter-arrival gap for the latency
	// measurement in nanoseconds (default 8000 ≈ 125k items/s).
	PaceNs int64
}

func (c *GrainSweepConfig) fillDefaults() {
	if len(c.Grains) == 0 {
		c.Grains = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.Items <= 0 {
		c.Items = 200_000
	}
	if c.Linger <= 0 {
		c.Linger = pipeline.DefaultLinger
	}
	if c.PaceNs <= 0 {
		c.PaceNs = 8000
	}
}

// boundaryPipeline builds the sweep's measurement subject: the same
// 8-replica identity stage the pipeline/reorder_stage and
// pipeline/batch_boundary micros run, batched when grain > 1.
func boundaryPipeline(grain int, linger time.Duration) (*pipeline.Pipeline, error) {
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(pipeline.Stage{Name: "r", Fn: ident, Replicas: 8, Buffer: 64})
	if err != nil {
		return nil, err
	}
	if grain > 1 {
		if err := p.EnableBatch(grain, linger); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// GrainSweep measures every grain on the ladder twice: an unpaced run
// for saturated throughput and a paced run for p99 sojourn.
func GrainSweep(cfg GrainSweepConfig) ([]GrainPoint, error) {
	cfg.fillDefaults()
	out := make([]GrainPoint, 0, len(cfg.Grains))
	for _, grain := range cfg.Grains {
		if grain < 1 {
			return nil, fmt.Errorf("bench: grain %d below 1", grain)
		}
		tput, err := grainThroughput(grain, cfg)
		if err != nil {
			return nil, err
		}
		p99, err := grainP99(grain, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, GrainPoint{Grain: grain, ItemsPerSec: tput, P99LatencyNs: p99})
	}
	return out, nil
}

func grainThroughput(grain int, cfg GrainSweepConfig) (float64, error) {
	p, err := boundaryPipeline(grain, cfg.Linger)
	if err != nil {
		return 0, err
	}
	in := make(chan any, 256)
	out, errs := p.Run(context.Background(), in)
	go func() {
		for i := 0; i < cfg.Items; i++ {
			in <- nil
		}
		close(in)
	}()
	t0 := time.Now()
	count := 0
	for range out {
		count++
	}
	elapsed := time.Since(t0)
	if err := <-errs; err != nil {
		return 0, err
	}
	if count != cfg.Items {
		return 0, fmt.Errorf("bench: grain %d lost items (%d of %d)", grain, count, cfg.Items)
	}
	return float64(count) / elapsed.Seconds(), nil
}

// grainP99 paces arrivals at one item per PaceNs (spin-paced: sleep
// granularity swamps microsecond gaps) and measures each item's
// send→receive sojourn. Ordered delivery means output i is input i, so
// send timestamps index directly.
func grainP99(grain int, cfg GrainSweepConfig) (float64, error) {
	items := cfg.Items / 10
	if items < 2000 {
		items = 2000
	}
	p, err := boundaryPipeline(grain, cfg.Linger)
	if err != nil {
		return 0, err
	}
	sendNs := make([]int64, items)
	sojournNs := make([]int64, 0, items)
	in := make(chan any, 1)
	out, errs := p.Run(context.Background(), in)
	epoch := time.Now()
	go func() {
		gap := cfg.PaceNs
		for i := 0; i < items; i++ {
			due := int64(i) * gap
			for time.Since(epoch).Nanoseconds() < due {
				// Yield-paced: the gap is far below sleep granularity,
				// and a hard spin would starve the stage workers of the
				// CPU on a single-core runner.
				runtime.Gosched()
			}
			sendNs[i] = time.Since(epoch).Nanoseconds()
			in <- nil
		}
		close(in)
	}()
	i := 0
	for range out {
		sojournNs = append(sojournNs, time.Since(epoch).Nanoseconds()-sendNs[i])
		i++
	}
	if err := <-errs; err != nil {
		return 0, err
	}
	if i != items {
		return 0, fmt.Errorf("bench: grain %d paced run lost items (%d of %d)", grain, i, items)
	}
	sort.Slice(sojournNs, func(a, b int) bool { return sojournNs[a] < sojournNs[b] })
	idx := (len(sojournNs)*99 + 99) / 100
	if idx >= len(sojournNs) {
		idx = len(sojournNs) - 1
	}
	return float64(sojournNs[idx]), nil
}
