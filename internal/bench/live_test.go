package bench

import (
	"strings"
	"testing"
)

// TestF11LiveRecovery pins the experiment's acceptance criterion: on
// the live goroutine runtime, under background load injected onto the
// bottleneck stage's resource, the adaptive policies resize worker
// pools and sustain measurably higher throughput than the static
// baseline. Run at a reduced stream length to keep the suite quick;
// the thresholds are generous because this is a wall-clock measurement
// (the full-size run is `pipebench -exp F11`).
func TestF11LiveRecovery(t *testing.T) {
	res, err := runF11Sized(900)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
	// Rows: static, reactive, predictive. Columns: policy, items,
	// before, under, recovery, resizes, workers.
	staticUnder := cell(t, tb, 0, 3)
	if staticUnder <= 0 {
		t.Fatalf("static under-load throughput = %v", staticUnder)
	}
	if resizes := cell(t, tb, 0, 5); resizes != 0 {
		t.Fatalf("static policy resized %v times", resizes)
	}
	for r := 1; r < 3; r++ {
		name := tb.Row(r)[0]
		if resizes := cell(t, tb, r, 5); resizes < 1 {
			t.Errorf("%s never resized", name)
			continue
		}
		if under := cell(t, tb, r, 3); under < 1.15*staticUnder {
			t.Errorf("%s under-load throughput %v not measurably above static %v",
				name, under, staticUnder)
		}
		// The final worker vector must have grown beyond the deployed
		// half-budget of 8.
		workers := tb.Row(r)[6]
		if !strings.HasPrefix(workers, "[") {
			t.Errorf("%s worker vector not rendered: %q", name, workers)
		}
	}
}
