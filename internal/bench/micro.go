package bench

// Micro-benchmarks for the hot paths: the event calendar, the live
// skeleton's replicated-stage boundary (dispatch + reorder), the farm,
// and an end-to-end simulated run. They exist in the library (not only
// under _test) so cmd/pipebench can execute them with
// testing.Benchmark and emit machine-readable BENCH_*.json files; the
// root bench_test.go wraps each one as a normal `go test -bench`
// benchmark.
//
// Each benchmark reports allocations and an "items/s" metric (events/s
// for the calendar): the two numbers the perf trajectory tracks from
// PR 1 onward (see DESIGN.md, "Benchmark protocol").

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"gridpipe/internal/conc/steal"
	"gridpipe/internal/exec"
	"gridpipe/internal/farm"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/pipeline"
	"gridpipe/internal/sim"
	"gridpipe/internal/workload"
)

// Micro is one named micro-benchmark.
type Micro struct {
	Name string
	Desc string
	Run  func(b *testing.B)
}

// Micros returns the micro-benchmark suite in a stable order.
func Micros() []Micro {
	return []Micro{
		{
			Name: "engine/schedule_step",
			Desc: "event calendar: 64 Schedule→Step cycles per op (pooled slab + index heap)",
			Run:  benchEngineScheduleStep,
		},
		{
			Name: "engine/seed_calendar",
			Desc: "reference: the seed's container/heap calendar (one *Event alloc per Schedule)",
			Run:  benchSeedCalendar,
		},
		{
			Name: "engine/schedule_cancel",
			Desc: "event calendar: schedule 64, cancel half through handles, drain",
			Run:  benchEngineScheduleCancel,
		},
		{
			Name: "engine/partition_window",
			Desc: "partitioned calendar: 64 events over 4 partitions per op, inline conservative windows + outbox exchange",
			Run:  benchPartitionWindow,
		},
		{
			Name: "pipeline/reorder_stage",
			Desc: "live replicated-stage boundary: persistent workers + ring reorderer, per item",
			Run:  benchPipelineReorderStage,
		},
		{
			Name: "pipeline/batch_boundary",
			Desc: "batched replicated-stage boundary: 64-item pooled slabs through persistent workers + per-batch ring reorderer, per item",
			Run:  benchPipelineBatchBoundary,
		},
		{
			Name: "pipeline/seed_reorder_stage",
			Desc: "reference: the seed's stage boundary (goroutine per item + map[int]any reorderer)",
			Run:  benchSeedReorderStage,
		},
		{
			Name: "farm/unordered",
			Desc: "unordered farm throughput: persistent workers + atomic meter, per item",
			Run:  benchFarmUnordered,
		},
		{
			Name: "exec/run_items",
			Desc: "end-to-end simulated item through a 4-stage mapped pipeline (pooled items/tasks/transfers)",
			Run:  benchExecRunItems,
		},
		{
			Name: "workload/arrival_next",
			Desc: "open-loop arrival generation: 64 Next draws per op across poisson/bursty/diurnal/pareto (items/s = arrival events)",
			Run:  benchArrivalNext,
		},
		{
			Name: "steal/local_pop",
			Desc: "work-stealing deque: 64 owner Push→Pop cycles per op on one deque",
			Run:  benchStealLocalPop,
		},
		{
			Name: "steal/steal_half",
			Desc: "work-stealing deque: fill 64, thief steals half repeatedly until dry, per op",
			Run:  benchStealStealHalf,
		},
		{
			Name: "steal/inject",
			Desc: "executor global inject ring: 64 Submit→complete cycles per op through a live executor",
			Run:  benchStealInject,
		},
		{
			Name: "sched/search",
			Desc: "branch-and-bound exhaustive search, T4 8x4 config through a persistent scratch (items/s = candidates evaluated)",
			Run:  benchSchedSearch,
		},
		{
			Name: "cluster/arbitrate",
			Desc: "steady-state incremental arbitration round, 3 tenants replayed from the divider memo (items/s = tenant placements)",
			Run:  benchClusterArbitrate,
		},
	}
}

// MicroByName returns the named micro-benchmark.
func MicroByName(name string) (Micro, error) {
	for _, m := range Micros() {
		if m.Name == name {
			return m, nil
		}
	}
	return Micro{}, fmt.Errorf("bench: unknown micro-benchmark %q", name)
}

// MicroResult is the machine-readable outcome of one micro-benchmark,
// the row format of BENCH_*.json.
type MicroResult struct {
	Name        string  `json:"name"`
	Desc        string  `json:"desc"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ItemsPerSec float64 `json:"items_per_s,omitempty"`
}

// RunMicros executes the whole suite with testing.Benchmark and
// returns one result per benchmark.
func RunMicros() []MicroResult {
	micros := Micros()
	out := make([]MicroResult, 0, len(micros))
	for _, m := range micros {
		r := testing.Benchmark(m.Run)
		out = append(out, MicroResult{
			Name:        m.Name,
			Desc:        m.Desc,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			ItemsPerSec: r.Extra["items/s"],
		})
	}
	return out
}

// calendarBatch is the number of Schedule→Step cycles per benchmark op:
// large enough that per-op alloc counts are integers, small enough that
// the heap stays realistic.
const calendarBatch = 64

func benchEngineScheduleStep(b *testing.B) {
	var eng sim.Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			eng.Schedule(float64(j&7), fn)
		}
		for eng.Step() {
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

func benchEngineScheduleCancel(b *testing.B) {
	var eng sim.Engine
	fn := func() {}
	var handles [calendarBatch]sim.Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			handles[j] = eng.Schedule(float64(j&7), fn)
		}
		for j := 0; j < calendarBatch; j += 2 {
			handles[j].Cancel()
		}
		for eng.Step() {
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

// stageItems runs b.N pre-boxed items through a 1-stage skeleton run
// function and reports per-item metrics. Values are pre-boxed (nil) so
// the measurement isolates the skeleton machinery from caller-side
// interface boxing.
func stageItems(b *testing.B, run func(ctx context.Context, in <-chan any) (<-chan any, <-chan error)) {
	in := make(chan any, 256)
	out, errs := run(context.Background(), in)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			in <- nil
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
	if count != b.N {
		b.Fatalf("lost items: %d of %d", count, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
}

func benchPipelineReorderStage(b *testing.B) {
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(pipeline.Stage{Name: "r", Fn: ident, Replicas: 8, Buffer: 64})
	if err != nil {
		b.Fatal(err)
	}
	stageItems(b, p.Run)
}

func benchPipelineBatchBoundary(b *testing.B) {
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(pipeline.Stage{Name: "r", Fn: ident, Replicas: 8, Buffer: 64})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.EnableBatch(64, 0); err != nil {
		b.Fatal(err)
	}
	stageItems(b, p.Run)
}

func benchFarmUnordered(b *testing.B) {
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	f, err := farm.New(ident, farm.Options{Workers: 8, Buffer: 64, Unordered: true})
	if err != nil {
		b.Fatal(err)
	}
	stageItems(b, f.Run)
}

func benchArrivalNext(b *testing.B) {
	procs := []workload.ArrivalProcess{
		workload.NewPoisson(10, 1),
		workload.NewBursty(5, 20, 20, 10, 2),
		workload.NewDiurnal(10, 6, 120, 0, 3),
		workload.NewPareto(10, 1.5, 4),
	}
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := procs[i&3]
		for j := 0; j < calendarBatch; j++ {
			sink += p.Next()
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
	if sink < 0 {
		b.Fatal("negative gap sum")
	}
}

func benchStealLocalPop(b *testing.B) {
	var dq steal.Deque
	fn := func(any) {}
	t := steal.Task{Fn: fn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			if !dq.Push(t) {
				b.Fatal("deque full")
			}
		}
		for j := 0; j < calendarBatch; j++ {
			if _, ok := dq.Pop(); !ok {
				b.Fatal("deque empty")
			}
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

func benchStealStealHalf(b *testing.B) {
	var victim steal.Deque
	var buf [calendarBatch]steal.Task
	fn := func(any) {}
	t := steal.Task{Fn: fn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			if !victim.Push(t) {
				b.Fatal("deque full")
			}
		}
		taken := 0
		for taken < calendarBatch {
			k := victim.Steal(buf[:])
			if k == 0 {
				b.Fatal("steal found nothing with work queued")
			}
			taken += k
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

func benchStealInject(b *testing.B) {
	ex := steal.New(2)
	b.Cleanup(ex.Close)
	var done atomic.Int64
	fn := func(any) { done.Add(1) }
	t := steal.Task{Fn: fn}
	// Warm the inject ring so steady state never grows it.
	for j := 0; j < calendarBatch; j++ {
		ex.Submit(t)
	}
	for done.Load() != calendarBatch {
		runtime.Gosched()
	}
	done.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < calendarBatch; j++ {
			ex.Submit(t)
		}
		want := int64(i+1) * calendarBatch
		for done.Load() != want {
			runtime.Gosched()
		}
	}
	b.ReportMetric(float64(b.N*calendarBatch)/b.Elapsed().Seconds(), "items/s")
}

func benchExecRunItems(b *testing.B) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		b.Fatal(err)
	}
	spec := model.Balanced(4, 0.1, 1e5)
	items := b.N
	if items < 10 {
		items = 10
	}
	eng := acquireEngine()
	defer releaseEngine(eng)
	e, err := exec.New(eng, g, spec, model.OneToOne(4), exec.Options{MaxInFlight: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.RunItems(items); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
}
